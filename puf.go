package selfheal

import (
	"errors"
	"fmt"

	"selfheal/internal/fpga"
	"selfheal/internal/puf"
	"selfheal/internal/rng"
	"selfheal/internal/sched"
	"selfheal/internal/stress"
	"selfheal/internal/units"
)

// PUFChip is a chip carrying an enrolled 16-bit ring-oscillator PUF
// (the paper's ref [17]): aging flips response bits; rejuvenation
// reverts them.
type PUFChip struct {
	chip   *fpga.Chip
	engine *stress.Engine
	puf    *puf.PUF
}

// NewPUFChip fabricates a chip with PUF-grade device mismatch, maps and
// enrolls the oscillator pairs, and wires the asymmetric-usage aging
// (one oscillator of each pair free-runs, the other sits frozen).
func NewPUFChip(id string, seed uint64) (*PUFChip, error) {
	if id == "" {
		return nil, errors.New("selfheal: chip id must not be empty")
	}
	src := rng.New(seed)
	params := fpga.DefaultParams()
	params.LocalSigmaFrac = 0.02 // PUF-grade mismatch
	chip, err := fpga.NewChip(id, params, src.Split())
	if err != nil {
		return nil, fmt.Errorf("selfheal: %w", err)
	}
	eng := stress.New(chip)
	eng.StressIdleCells = false
	u, err := puf.New(chip, eng, id+".puf", puf.DefaultParams(), src.Split())
	if err != nil {
		return nil, fmt.Errorf("selfheal: %w", err)
	}
	return &PUFChip{chip: chip, engine: eng, puf: u}, nil
}

// Bits returns the response width.
func (p *PUFChip) Bits() int { return p.puf.Bits() }

// Read evaluates the PUF once (with evaluation jitter).
func (p *PUFChip) Read() ([]bool, error) {
	r, err := p.puf.Read()
	if err != nil {
		return nil, fmt.Errorf("selfheal: %w", err)
	}
	return r, nil
}

// Reliability returns the average fraction of bits matching the
// enrolled response over n evaluations.
func (p *PUFChip) Reliability(n int) (float64, error) {
	r, err := p.puf.Reliability(n)
	if err != nil {
		return 0, fmt.Errorf("selfheal: %w", err)
	}
	return r, nil
}

// FlippedBits returns the noise-free drift from the enrolled response.
func (p *PUFChip) FlippedBits() (int, error) {
	f, err := p.puf.FlippedBits()
	if err != nil {
		return 0, fmt.Errorf("selfheal: %w", err)
	}
	return f, nil
}

// Stress ages the die under the operating condition for hours.
func (p *PUFChip) Stress(cond StressCondition, hours float64) error {
	if hours <= 0 || cond.Vdd <= 0 {
		return errors.New("selfheal: stress needs positive duration and rail")
	}
	if err := p.engine.Step(units.Volt(cond.Vdd), units.Celsius(cond.TempC),
		units.HoursToSeconds(hours)); err != nil {
		return fmt.Errorf("selfheal: %w", err)
	}
	return nil
}

// Rejuvenate sleeps the die under the recovery condition for hours.
func (p *PUFChip) Rejuvenate(cond SleepCondition, hours float64) error {
	if hours <= 0 || cond.Vdd > 0 {
		return errors.New("selfheal: sleep needs positive duration and rail ≤ 0")
	}
	if err := p.engine.Step(units.Volt(cond.Vdd), units.Celsius(cond.TempC),
		units.HoursToSeconds(hours)); err != nil {
		return fmt.Errorf("selfheal: %w", err)
	}
	return nil
}

// AdaptiveClockOutcome reports a run of the virtual-circadian clock
// controller (paper §7): model-predicted per-slot re-timing against a
// known rejuvenation schedule.
type AdaptiveClockOutcome struct {
	Policy string
	// StaticPeriodNS is the worst-case period a conventional design
	// ships; MeanAdaptivePeriodNS is what the controller averaged.
	StaticPeriodNS, MeanAdaptivePeriodNS float64
	// MeanSpeedupPct is the average clock gain of adaptive timing.
	MeanSpeedupPct float64
	// Violations counts slots where true delay exceeded the set
	// period; a sound guard band keeps it at zero.
	Violations int
	ActiveSlot int
}

// SimulateAdaptiveClock runs the §7 controller for horizonDays under a
// proactive α/sleepHours schedule with the given guard band (percent).
func SimulateAdaptiveClock(seed uint64, horizonDays, alpha, sleepHours, guardPct float64,
	cond SleepCondition) (AdaptiveClockOutcome, error) {
	cfg := sched.DefaultAdaptiveConfig()
	cfg.Seed = seed
	cfg.Horizon = units.Seconds(horizonDays) * units.Day
	cfg.GuardPct = guardPct
	out, err := sched.SimulateAdaptive(cfg, sched.Proactive{
		Alpha:    alpha,
		SleepLen: units.HoursToSeconds(sleepHours),
		Cond:     toSleepCond(cond),
	})
	if err != nil {
		return AdaptiveClockOutcome{}, fmt.Errorf("selfheal: %w", err)
	}
	return AdaptiveClockOutcome{
		Policy:               out.Policy,
		StaticPeriodNS:       out.StaticPeriodNS,
		MeanAdaptivePeriodNS: out.MeanAdaptivePeriodNS,
		MeanSpeedupPct:       out.MeanSpeedupPct,
		Violations:           out.Violations,
		ActiveSlot:           out.Slots,
	}, nil
}
