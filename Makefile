GO ?= go

.PHONY: check fmt vet build test race bench bench-engine obs-smoke engine-smoke guard-smoke cluster-smoke telemetry-smoke serve

## check: everything CI needs — gofmt, vet, build, tests with the race detector
check: fmt vet build race

fmt:
	@files="$$(gofmt -l .)"; if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on ./...

## bench: one pass over every paper artifact, the service cache benchmark,
## the registry contention benchmark (single-mutex vs sharded), and the
## engine tick benchmark — which refreshes BENCH_engine.json, the
## machine-readable perf artifact (ns/chip-epoch, chips/sec, allocs/epoch)
bench: bench-engine
	$(GO) run ./cmd/selfheal-bench > /dev/null
	$(GO) test -run '^$$' -bench . -benchtime 1x . ./internal/store

## bench-engine: refresh BENCH_engine.json from the engine tick benchmark
## (10k/100k/1M chips) and the td batch-vs-scalar kernel pair
bench-engine:
	$(GO) run ./scripts/bench-engine

## obs-smoke: boot a durable server with JSON logs and the debug listener,
## drive a batch through it, and verify the telemetry surface end to end —
## both metric expositions, the batch trace (journal commit visible), the
## pprof index, and a structured log line joining to the trace by trace_id
obs-smoke:
	$(GO) run ./scripts/obs-smoke

## engine-smoke: boot the server with the aging engine ticking fast, load
## 50k chips through the batch APIs, let 100 epochs elapse under concurrent
## monotone snapshot readers, and check odometers, epoch lag and the capped
## Prometheus cardinality
engine-smoke:
	$(GO) run ./scripts/engine-smoke

## guard-smoke: boot a defended fleet and an undefended control (10k chips
## each) under the same seeded wearout adversary on manual engine clocks,
## and check bounded detection latency, the per-chip quarantine 503
## contract, ≥90% margin recovery at ≤1/3 the control's stress time, and
## the guard_* Prometheus series
guard-smoke:
	$(GO) run ./scripts/guard-smoke

## cluster-smoke: boot a three-primary fleet (consistent-hash placement,
## node a in semisync replication to a hot standby), load 100k chips via
## the batch APIs, kill -9 node a mid-traffic, promote the standby, and
## audit zero acked-op loss with /readyz converged on all three node ids.
## CLUSTER_SMOKE_CHIPS overrides the scale; CLUSTER_SMOKE_RACE=1 builds
## the server with the race detector (and defaults to 5k chips)
cluster-smoke:
	$(GO) run ./scripts/cluster-smoke

## telemetry-smoke: boot a three-primary engine-ticking fleet plus standby,
## drive a mutation through a 307 wrong_node forward under a hand-minted
## Traceparent, and check the trace id stitches across both nodes'
## /debug/traces, /v1/fleet/telemetry reports every live peer fresh with
## the margin-recovery SLO green, /metrics?federate=1 labels every node,
## and a kill -9'd node shows up stale instead of failing the fleet view.
## TELEMETRY_SMOKE_RACE=1 builds the server with the race detector
telemetry-smoke:
	$(GO) run ./scripts/telemetry-smoke

## serve: run the fleet aging service locally
serve:
	$(GO) run ./cmd/selfheal-serve
