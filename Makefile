GO ?= go

.PHONY: check fmt vet build test race bench obs-smoke serve

## check: everything CI needs — gofmt, vet, build, tests with the race detector
check: fmt vet build race

fmt:
	@files="$$(gofmt -l .)"; if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on ./...

## bench: one pass over every paper artifact, the service cache benchmark,
## and the registry contention benchmark (single-mutex vs sharded) — cheap
## enough (-benchtime 1x) to run as a CI smoke test
bench:
	$(GO) run ./cmd/selfheal-bench > /dev/null
	$(GO) test -run '^$$' -bench . -benchtime 1x . ./internal/store

## obs-smoke: boot a durable server with JSON logs and the debug listener,
## drive a batch through it, and verify the telemetry surface end to end —
## both metric expositions, the batch trace (journal commit visible), the
## pprof index, and a structured log line joining to the trace by trace_id
obs-smoke:
	$(GO) run ./scripts/obs-smoke

## serve: run the fleet aging service locally
serve:
	$(GO) run ./cmd/selfheal-serve
