package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"selfheal/internal/cluster"
	"selfheal/internal/obs"
	"selfheal/internal/serve"
)

// swapTraceHandler lets a httptest server exist before the serve.Server
// it will host: cluster config needs every peer's URL up front.
type swapTraceHandler struct{ h atomic.Pointer[http.Handler] }

func (sw *swapTraceHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := sw.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	http.Error(w, "not wired", http.StatusServiceUnavailable)
}

// startTracePair boots two real cluster-mode serve nodes "a" and "b"
// that know each other's URLs, for end-to-end trace propagation tests.
func startTracePair(t *testing.T) (urls map[string]string) {
	t.Helper()
	swaps := map[string]*swapTraceHandler{"a": {}, "b": {}}
	urls = make(map[string]string, 2)
	for _, id := range []string{"a", "b"} {
		ts := httptest.NewServer(swaps[id])
		t.Cleanup(ts.Close)
		urls[id] = ts.URL
	}
	for _, id := range []string{"a", "b"} {
		s, err := serve.New(serve.Config{
			Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
			Cluster: &serve.ClusterConfig{NodeID: id, Peers: urls},
		})
		if err != nil {
			t.Fatalf("serve.New(%s): %v", id, err)
		}
		t.Cleanup(s.Close)
		var h http.Handler = s.Handler()
		swaps[id].h.Store(&h)
	}
	return urls
}

// chipOwnedByNode finds a chip id the shared ring places on the wanted
// node of the a/b pair.
func chipOwnedByNode(t *testing.T, nodeID string) string {
	t.Helper()
	ring, err := cluster.New([]cluster.Node{{ID: "a", Addr: "x"}, {ID: "b", Addr: "y"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("chip-%d", i)
		if ring.Owner(id).ID == nodeID {
			return id
		}
	}
	t.Fatalf("no chip id hashed to node %s in 1000 tries", nodeID)
	return ""
}

// tracesOn fetches a node's /debug/traces ring.
func tracesOn(t *testing.T, baseURL string) []obs.TraceView {
	t.Helper()
	resp, err := http.Get(baseURL + "/debug/traces?limit=100")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out serve.TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Traces
}

// findTrace returns the node's retained traces with the given id.
func findTrace(views []obs.TraceView, traceID string) []obs.TraceView {
	var hits []obs.TraceView
	for _, v := range views {
		if v.TraceID == traceID {
			hits = append(hits, v)
		}
	}
	return hits
}

// TestForwardStitchesOneTrace is the tentpole's end-to-end check: a
// mutation sent to the NON-owner node 307-forwards to the owner, and
// both nodes' /debug/traces retain a trace under the SAME id — the
// forwarder's with the 307, the owner's with the 201 — distinguished
// by node_id. Before trace propagation each node minted its own id
// and the two halves of one request could not be stitched.
func TestForwardStitchesOneTrace(t *testing.T) {
	urls := startTracePair(t)
	aChip := chipOwnedByNode(t, "a")

	// Talk to b about a chip that lives on a: guaranteed forward.
	cl := New(urls["b"])
	out, err := cl.CreateChip(context.Background(), CreateChipRequest{ID: aChip, Seed: 1})
	if err != nil {
		t.Fatalf("CreateChip via non-owner: %v", err)
	}
	if out.ID != aChip {
		t.Fatalf("created %q, want %q", out.ID, aChip)
	}
	if st := cl.Stats(); st.Forwards != 1 {
		t.Fatalf("Forwards = %d, want 1", st.Forwards)
	}

	// Both nodes must hold the create under one trace id. The client
	// minted the id, so find it by route on the forwarder and assert
	// the owner retained the same id.
	var traceID string
	for _, v := range tracesOn(t, urls["b"]) {
		if v.Route == "POST /v1/chips" && v.Status == http.StatusTemporaryRedirect {
			traceID = v.TraceID
			break
		}
	}
	if !obs.ValidTraceID(traceID) {
		t.Fatalf("forwarder (b) retained no valid trace for the 307, got id %q", traceID)
	}
	onA := findTrace(tracesOn(t, urls["a"]), traceID)
	if len(onA) != 1 {
		t.Fatalf("owner (a) has %d traces with id %s, want 1", len(onA), traceID)
	}
	if onA[0].Status != http.StatusCreated {
		t.Fatalf("owner's half has status %d, want 201", onA[0].Status)
	}
	if onA[0].NodeID != "a" {
		t.Fatalf("owner's trace node_id = %q, want %q", onA[0].NodeID, "a")
	}
	onB := findTrace(tracesOn(t, urls["b"]), traceID)
	if len(onB) != 1 || onB[0].NodeID != "b" {
		t.Fatalf("forwarder's trace = %+v, want one trace with node_id b", onB)
	}
}

// TestClusterFanoutSharesOneTrace: a NewCluster batch create spanning
// both owners is issued as one logical operation — every partition
// carries the same trace id, so each node's ring holds a batch trace
// under a single shared id.
func TestClusterFanoutSharesOneTrace(t *testing.T) {
	urls := startTracePair(t)
	cl, err := NewCluster(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	chips := []CreateChipRequest{
		{ID: chipOwnedByNode(t, "a"), Seed: 1},
		{ID: chipOwnedByNode(t, "b"), Seed: 2},
	}
	resp, err := cl.BatchCreateChips(context.Background(), chips)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Created != 2 {
		t.Fatalf("created %d chips, want 2 (results %+v)", resp.Created, resp.Results)
	}

	batchID := func(views []obs.TraceView) string {
		for _, v := range views {
			if v.Route == "POST /v1/chips:batch" {
				return v.TraceID
			}
		}
		return ""
	}
	idA, idB := batchID(tracesOn(t, urls["a"])), batchID(tracesOn(t, urls["b"]))
	if !obs.ValidTraceID(idA) {
		t.Fatalf("node a retained no batch trace (id %q)", idA)
	}
	if idA != idB {
		t.Fatalf("fan-out split into two trace ids: a=%s b=%s, want one", idA, idB)
	}
}

// TestRetriesKeepStableIDs pins satellite (a): every attempt of one
// logical call — including retries after a 429 — carries the same
// Traceparent and the same X-Request-ID.
func TestRetriesKeepStableIDs(t *testing.T) {
	var tps, rids []string
	var n atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tps = append(tps, r.Header.Get(obs.TraceContextHeader))
		rids = append(rids, r.Header.Get("X-Request-ID"))
		if n.Add(1) == 1 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"chips":[]}`))
	}))
	defer ts.Close()

	cl := New(ts.URL, WithBackoff(1, 2))
	if _, err := cl.ListChips(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(tps) != 2 {
		t.Fatalf("server saw %d attempts, want 2", len(tps))
	}
	if tps[0] == "" || tps[0] != tps[1] {
		t.Fatalf("Traceparent changed across retries: %q then %q", tps[0], tps[1])
	}
	if id, ok := obs.ParseTraceContext(tps[0]); !ok || !obs.ValidTraceID(id) {
		t.Fatalf("Traceparent %q does not parse to a valid trace id", tps[0])
	}
	if rids[0] == "" || rids[0] != rids[1] {
		t.Fatalf("X-Request-ID changed across retries: %q then %q", rids[0], rids[1])
	}
}
