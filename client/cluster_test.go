package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"selfheal/internal/cluster"
)

// TestBreakerIsPerHost is the regression test for the breaker-scope
// fix: one client, two backends — the healthy one 307-forwards some
// chips to a backend that only answers 503. The failing host's
// breaker must open without opening the healthy host's: before the
// fix a single client-wide breaker tripped on the forwarded 503s and
// blocked calls the healthy node would have served fine.
func TestBreakerIsPerHost(t *testing.T) {
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		respond(http.StatusServiceUnavailable, `{"error":"degraded","code":"degraded"}`)(w)
	}))
	defer failing.Close()
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/chips/remote/measure" {
			w.Header().Set("Location", failing.URL+r.URL.Path)
			w.WriteHeader(http.StatusTemporaryRedirect)
			return
		}
		respond(http.StatusOK, `{"chips":[]}`)(w)
	}))
	defer healthy.Close()

	cl := New(healthy.URL, WithMaxAttempts(1), WithBreaker(2, time.Minute))
	ctx := context.Background()
	failingHost := urlHost(failing.URL)

	for i := 0; i < 2; i++ {
		if _, err := cl.Measure(ctx, "remote"); err == nil {
			t.Fatal("forwarded measure against 503 backend succeeded")
		}
	}
	if got := cl.BreakerStateFor(failingHost); got != BreakerOpen {
		t.Fatalf("failing host breaker = %q, want %q", got, BreakerOpen)
	}
	// The healthy host answered every request it saw (the forwards),
	// so its breaker must still be closed and serving.
	if got := cl.BreakerState(); got != BreakerClosed {
		t.Fatalf("healthy host breaker = %q, want %q (one dead node blocked a healthy peer)", got, BreakerClosed)
	}
	if _, err := cl.ListChips(ctx); err != nil {
		t.Fatalf("healthy host refused traffic after peer's breaker opened: %v", err)
	}
	// And the open breaker fails the forwarded path fast.
	if _, err := cl.Measure(ctx, "remote"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen for the failing host", err)
	}
	if st := cl.Stats(); st.Forwards < 2 || st.BreakerOpens != 1 {
		t.Fatalf("stats = %+v, want ≥2 forwards and exactly 1 open", st)
	}
}

// TestForwardFollowed: a 307 with a Location is followed
// transparently and the result decoded from the final host; retries
// stick to the discovered target.
func TestForwardFollowed(t *testing.T) {
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		respond(http.StatusOK, `{"id":"c1","kind":"bench","reading_ns":1.5}`)(w)
	}))
	defer owner.Close()
	var forwards int
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		forwards++
		w.Header().Set("Location", owner.URL+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer front.Close()

	cl := New(front.URL)
	out, err := cl.Measure(context.Background(), "c1")
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != "c1" {
		t.Fatalf("response = %+v", out)
	}
	if forwards != 1 {
		t.Fatalf("front saw %d requests, want 1", forwards)
	}
	if st := cl.Stats(); st.Forwards != 1 {
		t.Fatalf("Forwards = %d, want 1", st.Forwards)
	}
}

// TestForwardLoopCapped: a node that forwards to itself cannot hang
// the client.
func TestForwardLoopCapped(t *testing.T) {
	var ts *httptest.Server
	ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Location", ts.URL+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer ts.Close()
	cl := New(ts.URL, WithMaxAttempts(1))
	_, err := cl.Measure(context.Background(), "c1")
	if err == nil {
		t.Fatal("forward loop did not error")
	}
	if st := cl.Stats(); st.Forwards != maxForwardHops {
		t.Fatalf("Forwards = %d, want %d (capped)", st.Forwards, maxForwardHops)
	}
}

// clusterNode is a fake fleet node for routing tests: it owns chips
// per the shared ring and 307-forwards the rest, like serve does.
type clusterNode struct {
	id   string
	mu   sync.Mutex
	seen []string // chip ids served locally
	ts   *httptest.Server
}

func startFakeCluster(t *testing.T, ids ...string) (map[string]*clusterNode, map[string]string) {
	t.Helper()
	nodes := make(map[string]*clusterNode, len(ids))
	peers := make(map[string]string, len(ids))
	ringNodes := make([]cluster.Node, 0, len(ids))
	var mu sync.Mutex
	addrs := make(map[string]string)
	for _, id := range ids {
		ringNodes = append(ringNodes, cluster.Node{ID: id})
	}
	ring, err := cluster.New(ringNodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		n := &clusterNode{id: id}
		n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// Extract the chip id from /v1/chips/{id}[/op].
			var chip string
			fmt.Sscanf(r.URL.Path, "/v1/chips/%s", &chip)
			for i := 0; i < len(chip); i++ {
				if chip[i] == '/' {
					chip = chip[:i]
					break
				}
			}
			chip, _ = url.PathUnescape(chip)
			if chip != "" && ring.Owner(chip).ID != n.id {
				mu.Lock()
				target := addrs[ring.Owner(chip).ID]
				mu.Unlock()
				w.Header().Set("Location", target+r.URL.RequestURI())
				w.WriteHeader(http.StatusTemporaryRedirect)
				return
			}
			n.mu.Lock()
			n.seen = append(n.seen, chip)
			n.mu.Unlock()
			switch {
			case r.Method == http.MethodGet && r.URL.Path == "/v1/chips":
				respond(http.StatusOK, `{"chips":[]}`)(w)
			case r.URL.Path == "/v1/chips:batch":
				var req struct {
					Chips []CreateChipRequest `json:"chips"`
				}
				json.NewDecoder(r.Body).Decode(&req)
				resp := BatchCreateResponse{Created: len(req.Chips)}
				for _, c := range req.Chips {
					resp.Results = append(resp.Results, BatchCreateResult{ID: c.ID, Chip: &ChipResponse{ID: c.ID, Kind: "bench"}})
					n.mu.Lock()
					n.seen = append(n.seen, c.ID)
					n.mu.Unlock()
				}
				json.NewEncoder(w).Encode(resp)
			default:
				respond(http.StatusOK, fmt.Sprintf(`{"id":%q,"kind":"bench"}`, chip))(w)
			}
		}))
		t.Cleanup(n.ts.Close)
		mu.Lock()
		addrs[id] = n.ts.URL
		mu.Unlock()
		nodes[id] = n
		peers[id] = n.ts.URL
	}
	return nodes, peers
}

func (n *clusterNode) sawChip(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, s := range n.seen {
		if s == id {
			return true
		}
	}
	return false
}

// TestClusterRoutesToOwner: every chip-scoped call lands on the ring
// owner directly — zero forwards on the happy path.
func TestClusterRoutesToOwner(t *testing.T) {
	nodes, peers := startFakeCluster(t, "a", "b", "c")
	cl, err := NewCluster(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		chip := fmt.Sprintf("chip-%03d", i)
		if _, err := cl.Measure(ctx, chip); err != nil {
			t.Fatalf("measure %s: %v", chip, err)
		}
		owner := cl.Owner(chip)
		if !nodes[owner].sawChip(chip) {
			t.Fatalf("chip %s not served by its owner %s", chip, owner)
		}
		for id, n := range nodes {
			if id != owner && n.sawChip(chip) {
				t.Fatalf("chip %s leaked to non-owner %s", chip, id)
			}
		}
	}
	for id := range nodes {
		if st := cl.ClientFor(id).Stats(); st.Forwards != 0 {
			t.Fatalf("node %s client followed %d forwards on the happy path", id, st.Forwards)
		}
	}
}

// TestClusterBatchPartitioning: a batch create is split per owner and
// the merged results come back in input order.
func TestClusterBatchPartitioning(t *testing.T) {
	nodes, peers := startFakeCluster(t, "a", "b", "c")
	cl, err := NewCluster(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	var chips []CreateChipRequest
	for i := 0; i < 40; i++ {
		chips = append(chips, CreateChipRequest{ID: fmt.Sprintf("chip-%03d", i), Seed: uint64(i)})
	}
	resp, err := cl.BatchCreateChips(context.Background(), chips)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Created != len(chips) || resp.Failed != 0 {
		t.Fatalf("created=%d failed=%d, want %d/0", resp.Created, resp.Failed, len(chips))
	}
	owners := make(map[string]bool)
	for i, res := range resp.Results {
		if res.ID != chips[i].ID {
			t.Fatalf("result[%d] = %q, want %q (input order lost)", i, res.ID, chips[i].ID)
		}
		owner := cl.Owner(res.ID)
		owners[owner] = true
		if !nodes[owner].sawChip(res.ID) {
			t.Fatalf("chip %s not created on its owner %s", res.ID, owner)
		}
	}
	if len(owners) < 2 {
		t.Fatalf("40 chips all landed on %d node(s); partitioning broken", len(owners))
	}
}

// TestClusterFallbackOnDeadOwner: with the owner down, an idempotent
// call falls back to another node, which forwards... to the dead
// owner in this fake (no data motion), so instead we verify the walk
// reaches a node that can answer: the fake serves any chip when asked
// directly and the owner is down, so the fallback must succeed.
func TestClusterFallbackOnDeadOwner(t *testing.T) {
	nodes, peers := startFakeCluster(t, "a", "b")
	cl, err := NewCluster(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Find a chip owned by "a", then kill "a". The fake "b" would
	// normally forward it back to the dead "a"; simulate a post-
	// failover world by repointing id "a" at node b's address, the
	// same move the promotion runbook performs.
	chip := ""
	for i := 0; ; i++ {
		c := fmt.Sprintf("chip-%03d", i)
		if cl.Owner(c) == "a" {
			chip = c
			break
		}
	}
	nodes["a"].ts.Close()
	if _, err := cl.Measure(context.Background(), chip); err == nil {
		t.Fatal("measure against dead owner succeeded without repoint")
	}
	if err := cl.SetPeerAddr("a", nodes["b"].ts.URL); err != nil {
		t.Fatal(err)
	}
	// Placement unchanged: "a" still owns the chip, served at b's addr.
	if got := cl.Owner(chip); got != "a" {
		t.Fatalf("owner changed to %s after repoint; placement must be by id", got)
	}
	// The fake node b now receives the call; it consults the 2-node
	// ring which still says "a" owns it, and "a"'s address is b — so
	// it forwards to itself... which the fake treats as a local serve
	// only if ring owner matches its own id. Use a chip b owns to
	// verify routing still works, and the repointed client for direct
	// traffic.
	if err := cl.ClientFor("a").Health(context.Background()); err != nil {
		t.Fatalf("repointed client for id a (addr b) unhealthy: %v", err)
	}
	if err := cl.SetPeerAddr("nope", "x"); err == nil {
		t.Fatal("SetPeerAddr accepted an unknown node id")
	}
}
