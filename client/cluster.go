package client

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"selfheal/internal/cluster"
	"selfheal/internal/obs"
)

// ensureTrace pins one trace id on ctx when the caller brought none,
// so a fan-out (batch partitions, fleet-wide reads) or an owner-
// fallback walk issues every per-node request under the same id and
// the whole operation stitches into one distributed trace. A caller
// that already carries a trace — its own span, or an id adopted from
// an inbound Traceparent — keeps it.
func ensureTrace(ctx context.Context) context.Context {
	if obs.TraceContextValue(ctx) != "" {
		return ctx
	}
	return obs.ContextWithRemoteTrace(ctx, obs.NewTraceID())
}

// Cluster routes calls across a multi-node fleet by consistent-hash
// chip placement: each chip-scoped call goes straight to the chip's
// owner (the same ring the nodes use, so no 307 bounce on the happy
// path), batches are partitioned per owner and the results re-merged
// in input order, and fleet-wide reads fan out to every node.
//
// When the owner is unreachable — dead node, open breaker — the call
// falls back to the next nodes on the ring, which either serve it
// (during a membership change) or 307-forward it to wherever the chip
// lives now; the per-host breakers inside each node's Client keep one
// dead node from blocking the rest. An authoritative answer (any API
// response, success or error) ends the fallback: only transport-level
// failures move on to the next node.
//
// After a promotion, SetPeerAddr repoints a node id at its new
// address; placement is by id, so no chips move.
type Cluster struct {
	opts []Option

	mu    sync.RWMutex
	ring  *cluster.Ring
	peers map[string]*Client // node id -> that node's client

	fallbacks atomic.Uint64 // chip calls answered by a non-owner route
}

// NewCluster builds a routing client over peers (node id -> base URL).
// vnodes ≤ 0 uses cluster.DefaultVNodes; every node of the fleet must
// be configured with the same vnodes for placement to agree. opts
// apply to each per-node Client.
func NewCluster(peers map[string]string, vnodes int, opts ...Option) (*Cluster, error) {
	nodes := make([]cluster.Node, 0, len(peers))
	for id, addr := range peers {
		nodes = append(nodes, cluster.Node{ID: id, Addr: addr})
	}
	ring, err := cluster.New(nodes, vnodes)
	if err != nil {
		return nil, fmt.Errorf("client: cluster: %w", err)
	}
	cl := &Cluster{
		opts:  opts,
		ring:  ring,
		peers: make(map[string]*Client, len(peers)),
	}
	for id, addr := range peers {
		cl.peers[id] = New(addr, opts...)
	}
	return cl, nil
}

// SetPeerAddr repoints node id at addr — the client-side half of a
// promotion: the standby took over the dead primary's id, so traffic
// for that id's shards goes to the standby's address. Placement is by
// id and does not change. Unknown ids are an error; growing the ring
// needs a new Cluster (and a server-side rebalance).
func (cl *Cluster) SetPeerAddr(id, addr string) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if _, ok := cl.peers[id]; !ok {
		return fmt.Errorf("client: cluster: unknown node id %q", id)
	}
	ring, err := cl.ring.WithAddr(id, addr)
	if err != nil {
		return fmt.Errorf("client: cluster: %w", err)
	}
	cl.ring = ring
	cl.peers[id] = New(addr, cl.opts...)
	return nil
}

// Owner reports which node id owns chipID under the current ring.
func (cl *Cluster) Owner(chipID string) string {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	return cl.ring.Owner(chipID).ID
}

// ClientFor returns the Client for a node id (nil if unknown) — an
// escape hatch for node-scoped calls like Metrics.
func (cl *Cluster) ClientFor(id string) *Client {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	return cl.peers[id]
}

// Nodes lists the ring's members sorted by id.
func (cl *Cluster) Nodes() []cluster.Node {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	return cl.ring.Nodes()
}

// Fallbacks counts chip-scoped calls that were answered by a
// non-owner route (owner dead or breaker open).
func (cl *Cluster) Fallbacks() uint64 { return cl.fallbacks.Load() }

// route returns the clients to try for chipID: the owner first, then
// the remaining nodes in ring-walk-independent (sorted id) order.
func (cl *Cluster) route(chipID string) []*Client {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	owner := cl.ring.Owner(chipID).ID
	order := make([]*Client, 0, len(cl.peers))
	order = append(order, cl.peers[owner])
	for _, n := range cl.ring.Nodes() {
		if n.ID != owner {
			order = append(order, cl.peers[n.ID])
		}
	}
	return order
}

// forChip runs fn against the chip's owner; for idempotent calls it
// falls back across the remaining nodes on transport-level failure.
// An *APIError is an authoritative answer (a node processed the
// request) and stops the walk; so does success. Non-idempotent calls
// never fall back: a transport error leaves "did it execute?"
// unanswered, and re-sending via another node could age a die twice —
// the same doctrine as the single-node client's retry policy.
func (cl *Cluster) forChip(ctx context.Context, chipID string, idempotent bool, fn func(c *Client) error) error {
	var lastErr error
	for i, c := range cl.route(chipID) {
		err := fn(c)
		var apiErr *APIError
		if err == nil || errors.As(err, &apiErr) {
			if i > 0 {
				cl.fallbacks.Add(1)
			}
			return err
		}
		lastErr = err
		if !idempotent || ctx.Err() != nil {
			break
		}
	}
	return lastErr
}

// CreateChip fabricates a chip on its owner node.
func (cl *Cluster) CreateChip(ctx context.Context, req CreateChipRequest) (ChipResponse, error) {
	ctx = ensureTrace(ctx)
	var out ChipResponse
	err := cl.forChip(ctx, req.ID, false, func(c *Client) error {
		var e error
		out, e = c.CreateChip(ctx, req)
		return e
	})
	return out, err
}

// DeleteChip retires a chip via its owner node.
func (cl *Cluster) DeleteChip(ctx context.Context, id string) (DeleteChipResponse, error) {
	ctx = ensureTrace(ctx)
	var out DeleteChipResponse
	err := cl.forChip(ctx, id, true, func(c *Client) error {
		var e error
		out, e = c.DeleteChip(ctx, id)
		return e
	})
	return out, err
}

// Stress ages a chip via its owner node.
func (cl *Cluster) Stress(ctx context.Context, id string, req PhaseRequest) (PhaseResponse, error) {
	ctx = ensureTrace(ctx)
	var out PhaseResponse
	err := cl.forChip(ctx, id, false, func(c *Client) error {
		var e error
		out, e = c.Stress(ctx, id, req)
		return e
	})
	return out, err
}

// Rejuvenate heals a chip via its owner node.
func (cl *Cluster) Rejuvenate(ctx context.Context, id string, req PhaseRequest) (PhaseResponse, error) {
	ctx = ensureTrace(ctx)
	var out PhaseResponse
	err := cl.forChip(ctx, id, false, func(c *Client) error {
		var e error
		out, e = c.Rejuvenate(ctx, id, req)
		return e
	})
	return out, err
}

// Measure reads a bench chip's sensor via its owner node.
func (cl *Cluster) Measure(ctx context.Context, id string) (ReadingResponse, error) {
	ctx = ensureTrace(ctx)
	var out ReadingResponse
	err := cl.forChip(ctx, id, true, func(c *Client) error {
		var e error
		out, e = c.Measure(ctx, id)
		return e
	})
	return out, err
}

// Odometer reads a monitored chip's sensor via its owner node.
func (cl *Cluster) Odometer(ctx context.Context, id string) (OdometerResponse, error) {
	ctx = ensureTrace(ctx)
	var out OdometerResponse
	err := cl.forChip(ctx, id, true, func(c *Client) error {
		var e error
		out, e = c.Odometer(ctx, id)
		return e
	})
	return out, err
}

// ListChips fans out to every node and merges the fleet sorted by id.
// Chips double-reported during a rebalance are deduplicated. Nodes
// that fail are skipped; the call errors only when every node does.
func (cl *Cluster) ListChips(ctx context.Context) ([]ChipResponse, error) {
	ctx = ensureTrace(ctx)
	cl.mu.RLock()
	clients := make([]*Client, 0, len(cl.peers))
	for _, c := range cl.peers {
		clients = append(clients, c)
	}
	cl.mu.RUnlock()

	var (
		wg      sync.WaitGroup
		resMu   sync.Mutex
		byID    = make(map[string]ChipResponse)
		errs    []error
		anyGood bool
	)
	for _, c := range clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			chips, err := c.ListChips(ctx)
			resMu.Lock()
			defer resMu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			anyGood = true
			for _, ch := range chips {
				byID[ch.ID] = ch
			}
		}(c)
	}
	wg.Wait()
	if !anyGood {
		return nil, errors.Join(errs...)
	}
	out := make([]ChipResponse, 0, len(byID))
	for _, ch := range byID {
		out = append(out, ch)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// BatchCreateChips partitions a bulk create by owner, issues one
// batch per node concurrently, and re-merges the per-item results in
// input order. A node-level failure is reported per item (Error set)
// so one dead node fails only its own shard's items.
func (cl *Cluster) BatchCreateChips(ctx context.Context, chips []CreateChipRequest) (BatchCreateResponse, error) {
	ctx = ensureTrace(ctx)
	var out BatchCreateResponse
	out.Results = make([]BatchCreateResult, len(chips))
	type part struct {
		idx   []int
		chips []CreateChipRequest
	}
	parts := make(map[string]*part)
	for i, sp := range chips {
		owner := cl.Owner(sp.ID)
		p := parts[owner]
		if p == nil {
			p = &part{}
			parts[owner] = p
		}
		p.idx = append(p.idx, i)
		p.chips = append(p.chips, sp)
	}
	var (
		wg    sync.WaitGroup
		resMu sync.Mutex
	)
	for owner, p := range parts {
		wg.Add(1)
		go func(owner string, p *part) {
			defer wg.Done()
			var (
				resp BatchCreateResponse
				err  error
			)
			ferr := cl.forChip(ctx, p.chips[0].ID, false, func(c *Client) error {
				resp, err = c.BatchCreateChips(ctx, p.chips)
				return err
			})
			resMu.Lock()
			defer resMu.Unlock()
			if ferr != nil || len(resp.Results) != len(p.idx) {
				for _, i := range p.idx {
					msg := fmt.Sprintf("node %s unreachable", owner)
					if ferr != nil {
						msg = ferr.Error()
					}
					out.Results[i] = BatchCreateResult{ID: chips[i].ID, Error: msg, Err: ferr}
					out.Failed++
				}
				return
			}
			for k, i := range p.idx {
				out.Results[i] = resp.Results[k]
				if resp.Results[k].Error != "" {
					out.Failed++
				} else {
					out.Created++
				}
			}
		}(owner, p)
	}
	wg.Wait()
	return out, nil
}

// BatchOps partitions a mixed-operation batch by each item's chip
// owner and re-merges the results in input order, like
// BatchCreateChips.
func (cl *Cluster) BatchOps(ctx context.Context, ops []BatchOpSpec) (BatchOpsResponse, error) {
	ctx = ensureTrace(ctx)
	var out BatchOpsResponse
	out.Results = make([]BatchOpResult, len(ops))
	type part struct {
		idx []int
		ops []BatchOpSpec
	}
	parts := make(map[string]*part)
	for i, op := range ops {
		owner := cl.Owner(op.ID)
		p := parts[owner]
		if p == nil {
			p = &part{}
			parts[owner] = p
		}
		p.idx = append(p.idx, i)
		p.ops = append(p.ops, op)
	}
	var (
		wg    sync.WaitGroup
		resMu sync.Mutex
	)
	for owner, p := range parts {
		wg.Add(1)
		go func(owner string, p *part) {
			defer wg.Done()
			var (
				resp BatchOpsResponse
				err  error
			)
			ferr := cl.forChip(ctx, p.ops[0].ID, false, func(c *Client) error {
				resp, err = c.BatchOps(ctx, p.ops)
				return err
			})
			resMu.Lock()
			defer resMu.Unlock()
			if ferr != nil || len(resp.Results) != len(p.idx) {
				for _, i := range p.idx {
					msg := fmt.Sprintf("node %s unreachable", owner)
					if ferr != nil {
						msg = ferr.Error()
					}
					out.Results[i] = BatchOpResult{Op: ops[i].Op, ID: ops[i].ID, Error: msg, Err: ferr}
					out.Failed++
				}
				return
			}
			for k, i := range p.idx {
				out.Results[i] = resp.Results[k]
				if resp.Results[k].Error != "" {
					out.Failed++
				} else {
					out.Succeeded++
				}
			}
		}(owner, p)
	}
	wg.Wait()
	return out, nil
}

// Health checks liveness of every node; the error joins each failing
// node's report.
func (cl *Cluster) Health(ctx context.Context) error {
	ctx = ensureTrace(ctx)
	cl.mu.RLock()
	clients := make(map[string]*Client, len(cl.peers))
	for id, c := range cl.peers {
		clients[id] = c
	}
	cl.mu.RUnlock()
	var errs []error
	for id, c := range clients {
		if err := c.Health(ctx); err != nil {
			errs = append(errs, fmt.Errorf("node %s: %w", id, err))
		}
	}
	return errors.Join(errs...)
}
