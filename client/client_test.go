package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// script serves canned responses per path: each request pops the next
// step; the last step repeats once the script is exhausted.
type script struct {
	mu    sync.Mutex
	calls map[string]int
	steps map[string][]func(w http.ResponseWriter)
}

func newScript() *script {
	return &script{calls: make(map[string]int), steps: make(map[string][]func(w http.ResponseWriter))}
}

func (s *script) on(path string, steps ...func(w http.ResponseWriter)) { s.steps[path] = steps }

func (s *script) count(path string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls[path]
}

func (s *script) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := s.calls[r.URL.Path]
	s.calls[r.URL.Path] = n + 1
	steps := s.steps[r.URL.Path]
	s.mu.Unlock()
	if len(steps) == 0 {
		http.NotFound(w, r)
		return
	}
	if n >= len(steps) {
		n = len(steps) - 1
	}
	steps[n](w)
}

func respond(status int, body string) func(w http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write([]byte(body))
	}
}

func respond429(retryAfter string) func(w http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		w.Header().Set("Retry-After", retryAfter)
		respond(http.StatusTooManyRequests, `{"error":"fleet saturated"}`)(w)
	}
}

func dropConnection(w http.ResponseWriter) { panic(http.ErrAbortHandler) }

func newTestClient(t *testing.T, sc *script, opts ...Option) *Client {
	t.Helper()
	ts := httptest.NewServer(sc)
	t.Cleanup(ts.Close)
	opts = append([]Option{WithBackoff(time.Millisecond, 20*time.Millisecond), WithJitterSeed(7)}, opts...)
	return New(ts.URL, opts...)
}

func TestShedRetriedWithRetryAfterCap(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips",
		respond429("5"), // 5 s hint must be capped by the 20 ms ceiling
		respond429("1"),
		respond(http.StatusOK, `{"chips":[{"id":"c0","kind":"bench"}]}`),
	)
	cl := newTestClient(t, sc)
	start := time.Now()
	chips, err := cl.ListChips(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(chips) != 1 || chips[0].ID != "c0" {
		t.Fatalf("chips = %+v", chips)
	}
	if got := sc.count("/v1/chips"); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("two shed retries took %v; Retry-After hint not capped", elapsed)
	}
}

// A shed 429 is retried even on non-idempotent calls: the limiter
// rejects before the handler runs, so nothing executed.
func TestShedRetriedForMutations(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips/c0/stress",
		respond429("1"),
		respond(http.StatusOK, `{"id":"c0","phase":"stress","hours":1}`),
	)
	cl := newTestClient(t, sc)
	if _, err := cl.Stress(context.Background(), "c0", PhaseRequest{TempC: 85, Vdd: 1.2, Hours: 1}); err != nil {
		t.Fatal(err)
	}
	if got := sc.count("/v1/chips/c0/stress"); got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
}

func TestMutationNotRetriedAfter500(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips/c0/stress", respond(http.StatusInternalServerError,
		`{"error":"journal: disk failed","request_id":"rid-9"}`))
	cl := newTestClient(t, sc)
	_, err := cl.Stress(context.Background(), "c0", PhaseRequest{TempC: 85, Vdd: 1.2, Hours: 1})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("err = %v, want APIError 500", err)
	}
	if apiErr.RequestID != "rid-9" {
		t.Fatalf("request id = %q, want rid-9", apiErr.RequestID)
	}
	if got := sc.count("/v1/chips/c0/stress"); got != 1 {
		t.Fatalf("attempts = %d; a 500 stress must not be re-sent (the die may have aged)", got)
	}
}

func TestMutationNotRetriedAfterTransportError(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips", dropConnection, respond(http.StatusCreated, `{"id":"c0","kind":"bench"}`))
	cl := newTestClient(t, sc)
	if _, err := cl.CreateChip(context.Background(), CreateChipRequest{ID: "c0", Seed: 1}); err == nil {
		t.Fatal("create succeeded despite dropped connection")
	}
	if got := sc.count("/v1/chips"); got != 1 {
		t.Fatalf("attempts = %d, want 1", got)
	}
}

func TestIdempotentRetriedOn5xxAndTransportError(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips/c0/measure",
		respond(http.StatusInternalServerError, `{"error":"injected"}`),
		dropConnection,
		respond(http.StatusOK, `{"id":"c0","counts":4976,"frequency_hz":4.97e6,"delay_ns":100.5,"degradation_pct":0.3}`),
	)
	cl := newTestClient(t, sc)
	reading, err := cl.Measure(context.Background(), "c0")
	if err != nil {
		t.Fatal(err)
	}
	if reading.Counts != 4976 {
		t.Fatalf("reading = %+v", reading)
	}
	if got := sc.count("/v1/chips/c0/measure"); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}

func Test4xxIsTerminal(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips/ghost/measure", respond(http.StatusNotFound, `{"error":"no chip \"ghost\""}`))
	cl := newTestClient(t, sc)
	_, err := cl.Measure(context.Background(), "ghost")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want APIError 404", err)
	}
	if got := sc.count("/v1/chips/ghost/measure"); got != 1 {
		t.Fatalf("attempts = %d, want 1", got)
	}
}

func TestMaxAttemptsExhausted(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips", respond(http.StatusInternalServerError, `{"error":"still broken"}`))
	cl := newTestClient(t, sc, WithMaxAttempts(3))
	_, err := cl.ListChips(context.Background())
	if err == nil {
		t.Fatal("exhausted retries reported success")
	}
	if got := sc.count("/v1/chips"); got != 3 {
		t.Fatalf("attempts = %d, want exactly maxAttempts (3)", got)
	}
}

func TestContextCancelsBackoffSleep(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips", respond(http.StatusInternalServerError, `{"error":"boom"}`))
	cl := newTestClient(t, sc, WithBackoff(10*time.Second, 10*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.ListChips(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; backoff sleep ignored the context", elapsed)
	}
}

func TestBackoffBounds(t *testing.T) {
	c := New("http://unused", WithBackoff(10*time.Millisecond, 80*time.Millisecond), WithJitterSeed(3))
	for attempt := 1; attempt <= 8; attempt++ {
		want := 10 * time.Millisecond << (attempt - 1)
		if want > 80*time.Millisecond {
			want = 80 * time.Millisecond
		}
		for i := 0; i < 20; i++ {
			d := c.backoffFor(attempt)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
}
