package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// script serves canned responses per path: each request pops the next
// step; the last step repeats once the script is exhausted.
type script struct {
	mu    sync.Mutex
	calls map[string]int
	steps map[string][]func(w http.ResponseWriter)
}

func newScript() *script {
	return &script{calls: make(map[string]int), steps: make(map[string][]func(w http.ResponseWriter))}
}

func (s *script) on(path string, steps ...func(w http.ResponseWriter)) { s.steps[path] = steps }

func (s *script) count(path string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls[path]
}

func (s *script) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := s.calls[r.URL.Path]
	s.calls[r.URL.Path] = n + 1
	steps := s.steps[r.URL.Path]
	s.mu.Unlock()
	if len(steps) == 0 {
		http.NotFound(w, r)
		return
	}
	if n >= len(steps) {
		n = len(steps) - 1
	}
	steps[n](w)
}

func respond(status int, body string) func(w http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write([]byte(body))
	}
}

func respond429(retryAfter string) func(w http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		w.Header().Set("Retry-After", retryAfter)
		respond(http.StatusTooManyRequests, `{"error":"fleet saturated"}`)(w)
	}
}

func dropConnection(w http.ResponseWriter) { panic(http.ErrAbortHandler) }

func newTestClient(t *testing.T, sc *script, opts ...Option) *Client {
	t.Helper()
	ts := httptest.NewServer(sc)
	t.Cleanup(ts.Close)
	opts = append([]Option{WithBackoff(time.Millisecond, 20*time.Millisecond), WithJitterSeed(7)}, opts...)
	return New(ts.URL, opts...)
}

func TestShedRetriedWithRetryAfterCap(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips",
		respond429("5"), // 5 s hint must be capped by the 20 ms ceiling
		respond429("1"),
		respond(http.StatusOK, `{"chips":[{"id":"c0","kind":"bench"}]}`),
	)
	cl := newTestClient(t, sc)
	start := time.Now()
	chips, err := cl.ListChips(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(chips) != 1 || chips[0].ID != "c0" {
		t.Fatalf("chips = %+v", chips)
	}
	if got := sc.count("/v1/chips"); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("two shed retries took %v; Retry-After hint not capped", elapsed)
	}
}

// A shed 429 is retried even on non-idempotent calls: the limiter
// rejects before the handler runs, so nothing executed.
func TestShedRetriedForMutations(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips/c0/stress",
		respond429("1"),
		respond(http.StatusOK, `{"id":"c0","phase":"stress","hours":1}`),
	)
	cl := newTestClient(t, sc)
	if _, err := cl.Stress(context.Background(), "c0", PhaseRequest{TempC: 85, Vdd: 1.2, Hours: 1}); err != nil {
		t.Fatal(err)
	}
	if got := sc.count("/v1/chips/c0/stress"); got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
}

func TestMutationNotRetriedAfter500(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips/c0/stress", respond(http.StatusInternalServerError,
		`{"error":"journal: disk failed","request_id":"rid-9"}`))
	cl := newTestClient(t, sc)
	_, err := cl.Stress(context.Background(), "c0", PhaseRequest{TempC: 85, Vdd: 1.2, Hours: 1})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("err = %v, want APIError 500", err)
	}
	if apiErr.RequestID != "rid-9" {
		t.Fatalf("request id = %q, want rid-9", apiErr.RequestID)
	}
	if got := sc.count("/v1/chips/c0/stress"); got != 1 {
		t.Fatalf("attempts = %d; a 500 stress must not be re-sent (the die may have aged)", got)
	}
}

func TestMutationNotRetriedAfterTransportError(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips", dropConnection, respond(http.StatusCreated, `{"id":"c0","kind":"bench"}`))
	cl := newTestClient(t, sc)
	if _, err := cl.CreateChip(context.Background(), CreateChipRequest{ID: "c0", Seed: 1}); err == nil {
		t.Fatal("create succeeded despite dropped connection")
	}
	if got := sc.count("/v1/chips"); got != 1 {
		t.Fatalf("attempts = %d, want 1", got)
	}
}

func TestIdempotentRetriedOn5xxAndTransportError(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips/c0/measure",
		respond(http.StatusInternalServerError, `{"error":"injected"}`),
		dropConnection,
		respond(http.StatusOK, `{"id":"c0","counts":4976,"frequency_hz":4.97e6,"delay_ns":100.5,"degradation_pct":0.3}`),
	)
	cl := newTestClient(t, sc)
	reading, err := cl.Measure(context.Background(), "c0")
	if err != nil {
		t.Fatal(err)
	}
	if reading.Counts != 4976 {
		t.Fatalf("reading = %+v", reading)
	}
	if got := sc.count("/v1/chips/c0/measure"); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}

func Test4xxIsTerminal(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips/ghost/measure", respond(http.StatusNotFound, `{"error":"no chip \"ghost\""}`))
	cl := newTestClient(t, sc)
	_, err := cl.Measure(context.Background(), "ghost")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want APIError 404", err)
	}
	if got := sc.count("/v1/chips/ghost/measure"); got != 1 {
		t.Fatalf("attempts = %d, want 1", got)
	}
}

func TestMaxAttemptsExhausted(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips", respond(http.StatusInternalServerError, `{"error":"still broken"}`))
	cl := newTestClient(t, sc, WithMaxAttempts(3))
	_, err := cl.ListChips(context.Background())
	if err == nil {
		t.Fatal("exhausted retries reported success")
	}
	if got := sc.count("/v1/chips"); got != 3 {
		t.Fatalf("attempts = %d, want exactly maxAttempts (3)", got)
	}
}

func TestContextCancelsBackoffSleep(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips", respond(http.StatusInternalServerError, `{"error":"boom"}`))
	cl := newTestClient(t, sc, WithBackoff(10*time.Second, 10*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.ListChips(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; backoff sleep ignored the context", elapsed)
	}
}

func TestBackoffBounds(t *testing.T) {
	c := New("http://unused", WithBackoff(10*time.Millisecond, 80*time.Millisecond), WithJitterSeed(3))
	for attempt := 1; attempt <= 8; attempt++ {
		want := 10 * time.Millisecond << (attempt - 1)
		if want > 80*time.Millisecond {
			want = 80 * time.Millisecond
		}
		for i := 0; i < 20; i++ {
			d := c.backoffFor(attempt)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
}

func respondDegraded() func(w http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		w.Header().Set("Retry-After", "1")
		respond(http.StatusServiceUnavailable, `{"error":"serve: degraded read-only mode","code":"degraded"}`)(w)
	}
}

func respondQuarantined(id string) func(w http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		w.Header().Set("Retry-After", "1")
		respond(http.StatusServiceUnavailable,
			`{"error":"fleet: chip `+id+` is quarantined (aging-rate outlier)","code":"quarantined"}`)(w)
	}
}

// TestQuarantinedRetriedForReads: a guard-quarantined 503 rides the
// ordinary 5xx policy — idempotent calls retry after the Retry-After
// hint — and the episode is surfaced in Stats().QuarantinedRetries so
// callers can tell healing chips from a degraded service.
func TestQuarantinedRetriedForReads(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips/c0/odometer",
		respondQuarantined("c0"), // released between the attempts
		respond(http.StatusOK, `{"id":"c0","beat_hz":120,"elapsed_hours":4}`),
	)
	cl := newTestClient(t, sc)
	if _, err := cl.Odometer(context.Background(), "c0"); err != nil {
		t.Fatal(err)
	}
	if got := sc.count("/v1/chips/c0/odometer"); got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
	st := cl.Stats()
	if st.QuarantinedRetries != 1 {
		t.Fatalf("QuarantinedRetries = %d, want 1; stats %+v", st.QuarantinedRetries, st)
	}
	if st.RetryAfterHonored == 0 {
		t.Fatalf("Retry-After hint not honored; stats %+v", st)
	}
}

// TestQuarantinedNotRetriedForMutations: stress against a quarantined
// chip surfaces the typed error immediately — re-sending a mutation
// the guard is refusing would just hammer a healing chip.
func TestQuarantinedNotRetriedForMutations(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips/c0/stress", respondQuarantined("c0"))
	cl := newTestClient(t, sc)
	var apiErr *APIError
	_, err := cl.Stress(context.Background(), "c0", PhaseRequest{TempC: 85, Vdd: 1.2, Hours: 1})
	if !errors.As(err, &apiErr) || apiErr.Code != "quarantined" {
		t.Fatalf("err = %v, want a code=quarantined APIError", err)
	}
	if got := sc.count("/v1/chips/c0/stress"); got != 1 {
		t.Fatalf("attempts = %d, want 1 (no mutation retry)", got)
	}
	if st := cl.Stats(); st.QuarantinedRetries != 0 {
		t.Fatalf("QuarantinedRetries = %d, want 0", st.QuarantinedRetries)
	}
}

// TestBreakerOpensOnConsecutive503s: after the configured number of
// consecutive 503s the breaker opens and the next call fails fast with
// ErrBreakerOpen — no request reaches the wire.
func TestBreakerOpensOnConsecutive503s(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips", respondDegraded())
	cl := newTestClient(t, sc, WithMaxAttempts(1), WithBreaker(2, 50*time.Millisecond))
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		var apiErr *APIError
		if _, err := cl.ListChips(ctx); !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
			t.Fatalf("call %d: err = %v, want a 503 APIError", i, err)
		}
	}
	if got := cl.BreakerState(); got != BreakerOpen {
		t.Fatalf("breaker state = %q, want %q", got, BreakerOpen)
	}
	hits := sc.count("/v1/chips")
	if _, err := cl.ListChips(ctx); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker call: err = %v, want ErrBreakerOpen", err)
	}
	if got := sc.count("/v1/chips"); got != hits {
		t.Fatalf("open breaker let a request through: %d hits, want %d", got, hits)
	}
}

// TestBreakerHalfOpenProbeRecovers: after the cooldown one probe is
// admitted; its success closes the breaker and traffic flows again.
func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips",
		respondDegraded(),
		respondDegraded(),
		respond(http.StatusOK, `{"chips":[]}`),
	)
	cl := newTestClient(t, sc, WithMaxAttempts(1), WithBreaker(2, 5*time.Millisecond))
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		cl.ListChips(ctx)
	}
	if got := cl.BreakerState(); got != BreakerOpen {
		t.Fatalf("breaker state = %q, want %q", got, BreakerOpen)
	}
	time.Sleep(10 * time.Millisecond) // past the cooldown
	if _, err := cl.ListChips(ctx); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if got := cl.BreakerState(); got != BreakerClosed {
		t.Fatalf("breaker state after good probe = %q, want %q", got, BreakerClosed)
	}
	if _, err := cl.ListChips(ctx); err != nil {
		t.Fatalf("post-recovery call: %v", err)
	}
}

// TestBreakerHalfOpenProbeFailureReopens: a failed probe snaps the
// breaker back open for another full cooldown.
func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips", respondDegraded())
	cl := newTestClient(t, sc, WithMaxAttempts(1), WithBreaker(1, 5*time.Millisecond))
	ctx := context.Background()
	cl.ListChips(ctx) // opens (threshold 1)
	if got := cl.BreakerState(); got != BreakerOpen {
		t.Fatalf("breaker state = %q, want %q", got, BreakerOpen)
	}
	time.Sleep(10 * time.Millisecond)
	var apiErr *APIError
	if _, err := cl.ListChips(ctx); !errors.As(err, &apiErr) {
		t.Fatalf("probe err = %v, want the 503 APIError", err)
	}
	if got := cl.BreakerState(); got != BreakerOpen {
		t.Fatalf("breaker state after failed probe = %q, want %q", got, BreakerOpen)
	}
	if _, err := cl.ListChips(ctx); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen during renewed cooldown", err)
	}
}

// TestBreakerResetBySuccessAndOtherStatuses: only *consecutive* 503s
// open the breaker — a success or a non-503 failure resets the streak
// — and a client without WithBreaker never opens.
func TestBreakerResetBySuccessAndOtherStatuses(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips",
		respondDegraded(),
		respond(http.StatusOK, `{"chips":[]}`),
		respondDegraded(),
		respond(http.StatusNotFound, `{"error":"nope"}`),
		respondDegraded(),
		respond(http.StatusOK, `{"chips":[]}`),
	)
	cl := newTestClient(t, sc, WithMaxAttempts(1), WithBreaker(2, time.Minute))
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		cl.ListChips(ctx)
	}
	if got := cl.BreakerState(); got != BreakerClosed {
		t.Fatalf("interleaved failures opened the breaker: %q", got)
	}
	if got := sc.count("/v1/chips"); got != 6 {
		t.Fatalf("server hits = %d, want 6 (no fail-fast)", got)
	}

	// Degraded 503 carries its error code through to the APIError.
	sc2 := newScript()
	sc2.on("/v1/chips", respondDegraded())
	cl2 := newTestClient(t, sc2, WithMaxAttempts(1))
	var apiErr *APIError
	if _, err := cl2.ListChips(ctx); !errors.As(err, &apiErr) || apiErr.Code != "degraded" {
		t.Fatalf("err = %v, want APIError with code \"degraded\"", err)
	}
	if got := cl2.BreakerState(); got != BreakerClosed {
		t.Fatalf("breaker-less client state = %q, want %q", got, BreakerClosed)
	}
}

func TestStatsCountsRetriesAndHints(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips",
		respond429("1"), // hint wins over the 1 ms backoff... capped by 20 ms ceiling
		respond(http.StatusOK, `{"chips":[]}`),
	)
	cl := newTestClient(t, sc)
	if _, err := cl.ListChips(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := cl.Health(context.Background()); err == nil {
		t.Fatal("scripted /healthz should 404")
	}
	st := cl.Stats()
	if st.Requests != 2 {
		t.Fatalf("Requests = %d, want 2", st.Requests)
	}
	if st.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3 (one retried, one terminal 404)", st.Attempts)
	}
	if st.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", st.Retries)
	}
	if st.RetryAfterHonored != 1 {
		t.Fatalf("RetryAfterHonored = %d, want 1", st.RetryAfterHonored)
	}
	if st.RetryWait <= 0 || st.RetryWait > time.Second {
		t.Fatalf("RetryWait = %v, want a small positive duration", st.RetryWait)
	}
	if st.BreakerOpens != 0 || st.BreakerHalfOpens != 0 || st.BreakerState != BreakerClosed {
		t.Fatalf("breaker stats without WithBreaker: %+v", st)
	}
}

func TestStatsCountsBreakerTransitions(t *testing.T) {
	sc := newScript()
	sc.on("/v1/chips/c0/measure", respond(http.StatusServiceUnavailable, `{"error":"degraded","code":"degraded"}`))
	cl := newTestClient(t, sc,
		WithMaxAttempts(1), WithBreaker(2, 10*time.Millisecond))

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := cl.Measure(ctx, "c0"); err == nil {
			t.Fatal("expected 503")
		}
	}
	st := cl.Stats()
	if st.BreakerOpens != 1 || st.BreakerState != BreakerOpen {
		t.Fatalf("after 2 consecutive 503s: %+v", st)
	}

	// Fail fast while open: no attempt issued.
	before := cl.Stats().Attempts
	if _, err := cl.Measure(ctx, "c0"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if cl.Stats().Attempts != before {
		t.Fatal("open breaker still issued an HTTP attempt")
	}

	// After the cooldown the next call is the half-open probe; it fails
	// (the script keeps answering 503), re-opening the breaker.
	time.Sleep(15 * time.Millisecond)
	if _, err := cl.Measure(ctx, "c0"); err == nil {
		t.Fatal("probe should fail")
	}
	st = cl.Stats()
	if st.BreakerHalfOpens != 1 {
		t.Fatalf("BreakerHalfOpens = %d, want 1", st.BreakerHalfOpens)
	}
	if st.BreakerOpens != 2 || st.BreakerState != BreakerOpen {
		t.Fatalf("failed probe should re-open: %+v", st)
	}
}
