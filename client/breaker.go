package client

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// ErrBreakerOpen is returned (wrapped) when the circuit breaker is
// open: the service has answered 503 — degraded mode, route timeouts —
// enough times in a row that hammering it further only slows its
// recovery. Callers fail fast and should try again after the cooldown.
var ErrBreakerOpen = errors.New("client: circuit breaker open")

// Breaker states, reported by Client.BreakerState.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// breaker is a three-state circuit breaker keyed on consecutive 503
// responses — the status the service uses for degraded read-only mode
// and exhausted route budgets. Closed passes everything through; after
// `threshold` consecutive 503s it opens and fails calls locally; after
// `cooldown` it half-opens, letting exactly one probe request through —
// success re-closes it, failure re-opens it for another cooldown. This
// mirrors the service's own probe loop from the outside: the client
// stops sending writes that can only be 503'd, and discovers recovery
// with a single request instead of a stampede. A nil *breaker is inert.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu          sync.Mutex
	state       string
	consecutive int
	openedAt    time.Time
	opens       uint64 // transitions into BreakerOpen (incl. re-opens)
	halfOpens   uint64 // transitions into BreakerHalfOpen
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		return nil
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown, state: BreakerClosed}
}

// allow gates one attempt: nil to proceed, or a wrapped ErrBreakerOpen
// to fail fast. An open breaker past its cooldown transitions to
// half-open and admits the caller as the probe.
func (b *breaker) allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		remaining := b.cooldown - time.Since(b.openedAt)
		if remaining > 0 {
			return fmt.Errorf("%w (service kept answering 503; retry in %v)", ErrBreakerOpen, remaining.Round(time.Millisecond))
		}
		b.state = BreakerHalfOpen
		b.halfOpens++
		return nil
	case BreakerHalfOpen:
		// One probe is already in flight; everyone else keeps failing
		// fast until it reports back.
		return fmt.Errorf("%w (recovery probe in flight)", ErrBreakerOpen)
	default:
		return nil
	}
}

// record feeds one attempt's outcome back. Only 503s count toward
// opening: other API errors prove the service is processing requests
// and reset the streak, while transport errors are ambiguous and do
// neither. In half-open, any failure of the probe re-opens.
func (b *breaker) record(err error) {
	if b == nil {
		return
	}
	var apiErr *APIError
	isAPI := errors.As(err, &apiErr)
	unavailable := isAPI && apiErr.Status == http.StatusServiceUnavailable
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		if err != nil {
			b.state = BreakerOpen
			b.openedAt = time.Now()
			b.opens++
			return
		}
		b.state = BreakerClosed
		b.consecutive = 0
	case BreakerClosed:
		switch {
		case unavailable:
			b.consecutive++
			if b.consecutive >= b.threshold {
				b.state = BreakerOpen
				b.openedAt = time.Now()
				b.opens++
			}
		case err == nil || isAPI:
			b.consecutive = 0
		}
	}
}

// current reports the state without transitioning it.
func (b *breaker) current() string {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// stats reports the transition counters and current state.
func (b *breaker) stats() (opens, halfOpens uint64, state string) {
	if b == nil {
		return 0, 0, BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens, b.halfOpens, b.state
}
