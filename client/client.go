// Package client is the Go client for the fleet aging service
// (cmd/selfheal-serve). It speaks the same wire types the service and
// the -json CLIs share, adds context deadlines, and retries safely:
//
//   - 429 (the service's load shedder) is always retried — the limiter
//     rejects before the handler runs, so nothing was executed — and
//     its Retry-After hint is honored, capped by the backoff ceiling.
//   - Idempotent requests (reads, the pure prediction endpoints, and
//     delete, which converges to the same end state) are additionally
//     retried on transport errors and 5xx responses.
//   - Non-idempotent mutations (create, stress, rejuvenate) are never
//     retried after reaching the server: a 500 may mean "executed but
//     not journaled", and re-stressing a die would age it twice.
//
// Backoff is capped exponential with jitter from a seeded source, so
// tests are reproducible.
//
// An optional circuit breaker (WithBreaker) opens after consecutive
// 503s — the status the service uses for degraded read-only mode — so
// a fleet that is busy healing its storage is not hammered with writes
// it can only reject; after a cooldown a single half-open probe
// discovers recovery. Breakers are scoped per host: in a multi-node
// fleet a request can be 307-forwarded to the chip's owner (the client
// follows the forward transparently), and one dead node must not open
// the breaker for its healthy peers.
//
// Every request carries a Traceparent header and a stable
// X-Request-ID: both are minted once per logical call (the trace id is
// adopted from the caller's context when one is already there), so
// retries, cross-node forward hops, and breaker probes all stitch into
// a single distributed trace across every node's /debug/traces ring.
//
// For chip-id-aware routing over a whole fleet — hitting each chip's
// owner directly instead of bouncing through forwards — see Cluster.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"selfheal/internal/obs"
	"selfheal/internal/serve"
)

// Wire types re-exported so callers need only this package.
type (
	CreateChipRequest  = serve.CreateChipRequest
	ChipResponse       = serve.ChipResponse
	ChipListResponse   = serve.ChipListResponse
	DeleteChipResponse = serve.DeleteChipResponse
	PhaseRequest       = serve.PhaseRequest
	PhaseResponse      = serve.PhaseResponse
	ReadingResponse    = serve.ReadingResponse
	OdometerResponse   = serve.OdometerResponse
	ShiftRequest       = serve.ShiftRequest
	ShiftResponse      = serve.ShiftResponse
	SchedulesRequest   = serve.SchedulesRequest
	SchedulesResponse  = serve.SchedulesResponse
	MulticoreRequest   = serve.MulticoreRequest
	MulticoreResponse  = serve.MulticoreResponse
	MetricsSnapshot    = serve.MetricsSnapshot

	BatchOpSpec         = serve.BatchOpSpec
	BatchCreateResult   = serve.BatchCreateResult
	BatchOpResult       = serve.BatchOpResult
	BatchCreateResponse = serve.BatchCreateResponse
	BatchOpsResponse    = serve.BatchOpsResponse
)

// APIError is a non-2xx response from the service. Code carries the
// service's machine-readable classification when present — "degraded"
// marks a 503 from the fleet's read-only recovery mode, "quarantined"
// a 503 from the guard holding the target chip while it heals. Both
// ride the ordinary 5xx retry policy: idempotent calls re-send after
// the Retry-After hint, mutations surface the error to the caller.
type APIError struct {
	Status    int
	Code      string
	Message   string
	RequestID string

	// retryAfter is the server's Retry-After hint, if any.
	retryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("client: server returned %d: %s (request %s)", e.Status, e.Message, e.RequestID)
	}
	return fmt.Sprintf("client: server returned %d: %s", e.Status, e.Message)
}

// Client talks to one fleet aging service (possibly one node of a
// multi-node fleet, in which case it follows cross-node forwards).
type Client struct {
	base        string
	baseHost    string // host:port of base, the default breaker key
	hc          *http.Client
	maxAttempts int
	baseBackoff time.Duration
	maxBackoff  time.Duration

	// Circuit breakers are per host: following a 307 forward to a
	// wedged owner node must not open the breaker for the healthy node
	// the client normally talks to, and vice versa.
	brkThreshold int
	brkCooldown  time.Duration
	brkMu        sync.Mutex
	breakers     map[string]*breaker

	requests           atomic.Uint64 // logical calls started
	attempts           atomic.Uint64 // HTTP exchanges issued
	retries            atomic.Uint64 // exchanges beyond each call's first
	forwards           atomic.Uint64 // cross-node 307/308 forwards followed
	retryAfterHonored  atomic.Uint64 // retry delays taken from a Retry-After hint
	quarantinedRetries atomic.Uint64 // retries against guard-quarantined chips
	retryWaitNS        atomic.Int64  // total time slept between attempts

	mu  sync.Mutex
	rnd *rand.Rand
}

// Stats is a snapshot of the client's retry and circuit-breaker
// accounting, for callers exporting client-side health alongside the
// service's own /metrics.
type Stats struct {
	// Requests counts logical calls (one per method invocation).
	Requests uint64 `json:"requests"`
	// Attempts counts HTTP exchanges; Attempts-Requests is the volume
	// retries added.
	Attempts uint64 `json:"attempts"`
	// Retries counts exchanges beyond each call's first.
	Retries uint64 `json:"retries"`
	// RetryAfterHonored counts retry delays taken from a server
	// Retry-After hint rather than the client's own backoff.
	RetryAfterHonored uint64 `json:"retry_after_honored"`
	// QuarantinedRetries counts retries whose previous attempt was
	// refused because the guard had quarantined the target chip (503
	// with the "quarantined" code). A climbing value means callers are
	// hammering chips that are healing — back off, or pick another
	// chip.
	QuarantinedRetries uint64 `json:"quarantined_retries"`
	// RetryWait is the total time spent sleeping between attempts.
	RetryWait time.Duration `json:"retry_wait_ns"`
	// Forwards counts 307/308 cross-node forwards followed — nonzero
	// means this client is routing through non-owner nodes and would
	// save a hop per call by using a Cluster.
	Forwards uint64 `json:"forwards"`
	// BreakerOpens counts transitions into the open state (including
	// re-opens after a failed half-open probe) summed over every host
	// this client has contacted; BreakerHalfOpens counts cooldown
	// expiries that admitted a probe. Both stay 0 without WithBreaker.
	BreakerOpens     uint64 `json:"breaker_opens"`
	BreakerHalfOpens uint64 `json:"breaker_half_opens"`
	// BreakerState is the base host's current state ("closed", "open",
	// "half-open"); forwarded-to hosts are reported by BreakerStateFor.
	BreakerState string `json:"breaker_state"`
}

// Stats snapshots the client's accounting. Safe for concurrent use;
// the counters are monotonic over the client's lifetime.
func (c *Client) Stats() Stats {
	var opens, halfOpens uint64
	state := BreakerClosed
	c.brkMu.Lock()
	for host, b := range c.breakers {
		o, h, s := b.stats()
		opens += o
		halfOpens += h
		if host == c.baseHost {
			state = s
		}
	}
	c.brkMu.Unlock()
	return Stats{
		Requests:           c.requests.Load(),
		Attempts:           c.attempts.Load(),
		Retries:            c.retries.Load(),
		RetryAfterHonored:  c.retryAfterHonored.Load(),
		QuarantinedRetries: c.quarantinedRetries.Load(),
		RetryWait:          time.Duration(c.retryWaitNS.Load()),
		Forwards:           c.forwards.Load(),
		BreakerOpens:       opens,
		BreakerHalfOpens:   halfOpens,
		BreakerState:       state,
	}
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (default http.DefaultClient).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithMaxAttempts caps total tries per call, first included (default 4).
func WithMaxAttempts(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.maxAttempts = n
		}
	}
}

// WithBackoff sets the first retry delay and the delay ceiling
// (defaults 100 ms and 2 s). The ceiling also caps how long a
// Retry-After hint is honored, so a saturated server cannot park a
// client beyond its own patience.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) {
		if base > 0 {
			c.baseBackoff = base
		}
		if max > 0 {
			c.maxBackoff = max
		}
	}
}

// WithJitterSeed fixes the jitter stream for reproducible tests.
func WithJitterSeed(seed uint64) Option {
	return func(c *Client) { c.rnd = rand.New(rand.NewSource(int64(seed))) }
}

// WithBreaker enables circuit breaking: after threshold consecutive
// 503 responses from one host the client fails calls to that host
// locally with ErrBreakerOpen instead of sending them, then after
// cooldown lets one probe request through (half-open) to discover
// recovery. Each host a call reaches — the base URL, or a node a 307
// forward lands on — gets its own breaker, so one dead node never
// blocks traffic to healthy peers. threshold ≤ 0 disables; cooldown
// ≤ 0 defaults to 1 s.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *Client) {
		c.brkThreshold = threshold
		c.brkCooldown = cooldown
	}
}

// BreakerState reports the base host's circuit breaker state
// ("closed", "open" or "half-open"); without WithBreaker it is always
// "closed".
func (c *Client) BreakerState() string { return c.breakerFor(c.baseHost).current() }

// BreakerStateFor reports the breaker state for a specific host
// ("host:port"), useful when cross-node forwards have taken this
// client to nodes beyond its base URL. Hosts never contacted report
// "closed".
func (c *Client) BreakerStateFor(host string) string {
	c.brkMu.Lock()
	b := c.breakers[host]
	c.brkMu.Unlock()
	return b.current()
}

// breakerFor returns the breaker guarding host, creating it on first
// contact. Nil (inert) when breaking is disabled.
func (c *Client) breakerFor(host string) *breaker {
	if c.brkThreshold <= 0 {
		return nil
	}
	c.brkMu.Lock()
	defer c.brkMu.Unlock()
	b := c.breakers[host]
	if b == nil {
		b = newBreaker(c.brkThreshold, c.brkCooldown)
		c.breakers[host] = b
	}
	return b
}

// urlHost extracts the host:port breaker key from a request URL.
func urlHost(rawURL string) string {
	if u, err := url.Parse(rawURL); err == nil && u.Host != "" {
		return u.Host
	}
	return rawURL
}

// New returns a client for the service at baseURL (e.g.
// "http://localhost:8040").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:        strings.TrimRight(baseURL, "/"),
		hc:          http.DefaultClient,
		maxAttempts: 4,
		baseBackoff: 100 * time.Millisecond,
		maxBackoff:  2 * time.Second,
		rnd:         rand.New(rand.NewSource(1)),
		breakers:    make(map[string]*breaker),
	}
	for _, opt := range opts {
		opt(c)
	}
	c.baseHost = urlHost(c.base)
	// Redirects are handled in do, not by the transport: a 307 from a
	// non-owner node must surface so the hop can be counted and gated
	// on the target host's own breaker.
	hc := *c.hc
	hc.CheckRedirect = func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse }
	c.hc = &hc
	return c
}

// backoffFor returns the jittered delay before retry number attempt
// (1-based): the exponential term capped at maxBackoff, then jittered
// into [d/2, d) so synchronized clients spread out.
func (c *Client) backoffFor(attempt int) time.Duration {
	d := c.baseBackoff << (attempt - 1)
	if d > c.maxBackoff || d <= 0 {
		d = c.maxBackoff
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return d/2 + time.Duration(c.rnd.Int63n(int64(d/2)+1))
}

// retryAfter parses a Retry-After header as delta-seconds; 0 means
// absent or unusable.
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// maxForwardHops caps how many consecutive 307/308 cross-node
// forwards one attempt follows before giving up — enough for a
// forward chain during a rebalance, small enough to break loops.
const maxForwardHops = 3

// redirectError is once's report of a 307/308 cross-node forward:
// the node answered authoritatively, the resource lives at location.
type redirectError struct {
	status   int
	location string
}

func (e *redirectError) Error() string {
	return fmt.Sprintf("client: %d forward to %s", e.status, e.location)
}

// do issues one logical call with retries. idempotent marks requests
// that are safe to re-send after they may have executed; 429s are
// retried regardless because the shedder rejects before execution.
func (c *Client) do(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	c.requests.Add(1)
	// One trace context and one request id per logical call, stable
	// across retries and forward hops: every attempt of this call — and
	// the forwarder-to-owner hop it may trigger server-side — shows up
	// under a single trace id in every node's /debug/traces, and the
	// server's request-id log field stays constant while the client
	// retries. A caller that already carries a trace (a Cluster fan-out,
	// or code running inside a server span) wins; otherwise mint here.
	tp := obs.TraceContextValue(ctx)
	if tp == "" {
		tp = obs.FormatTraceContext(obs.NewTraceID(), "")
	}
	rid := obs.NewTraceID()
	// target is sticky across retries: once a forward reveals the
	// owner, retries go straight there instead of re-bouncing.
	target := c.base + path
	var lastErr error
	for attempt := 1; ; attempt++ {
		brk := c.breakerFor(urlHost(target))
		if err := brk.allow(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("%w (last error: %v)", err, lastErr)
			}
			return err
		}
		c.attempts.Add(1)
		if attempt > 1 {
			c.retries.Add(1)
		}
		lastErr = c.exchange(ctx, method, &target, body, out, brk, tp, rid)
		if lastErr == nil {
			return nil
		}
		if errors.Is(lastErr, ErrBreakerOpen) {
			// A forward hop landed on a host whose breaker is open;
			// fail fast like the pre-flight allow does.
			return lastErr
		}
		delay, retryable, viaHint := c.retryPlan(lastErr, idempotent, attempt)
		if !retryable || attempt >= c.maxAttempts {
			return lastErr
		}
		if viaHint {
			c.retryAfterHonored.Add(1)
		}
		if apiErr, ok := lastErr.(*APIError); ok && apiErr.Code == serve.CodeQuarantined {
			c.quarantinedRetries.Add(1)
		}
		c.retryWaitNS.Add(int64(delay))
		if err := c.sleep(ctx, delay); err != nil {
			return fmt.Errorf("%w (last error: %v)", err, lastErr)
		}
	}
}

// retryPlan decides whether err warrants another attempt, how long to
// wait first, and whether that wait came from a server Retry-After
// hint (for the Stats accounting).
func (c *Client) retryPlan(err error, idempotent bool, attempt int) (time.Duration, bool, bool) {
	delay := c.backoffFor(attempt)
	apiErr, ok := err.(*APIError)
	if !ok {
		// Transport error: the request may or may not have reached the
		// handler, so only idempotent calls are safe to re-send.
		return delay, idempotent, false
	}
	switch {
	case apiErr.Status == http.StatusTooManyRequests:
		delay, viaHint := c.honorRetryAfter(apiErr, delay)
		return delay, true, viaHint
	case apiErr.Status >= 500:
		// 5xx responses carry Retry-After too when the service knows
		// its own recovery cadence (degraded mode does), so honor it
		// the same way.
		delay, viaHint := c.honorRetryAfter(apiErr, delay)
		return delay, idempotent, viaHint
	default:
		return 0, false, false
	}
}

// honorRetryAfter folds the server's Retry-After hint into the planned
// delay: a shorter hint wins outright, a longer one wins only up to
// the backoff ceiling (a saturated server cannot park a client beyond
// its own patience). The second return reports whether the hint set
// the delay.
func (c *Client) honorRetryAfter(apiErr *APIError, delay time.Duration) (time.Duration, bool) {
	ra := apiErr.retryAfter
	if ra <= 0 {
		return delay, false
	}
	if ra < delay {
		return ra, true
	}
	if ra > delay {
		if ra < c.maxBackoff {
			return ra, true
		}
		return c.maxBackoff, true
	}
	return delay, false
}

// exchange issues one attempt, following cross-node 307/308 forwards
// (up to maxForwardHops), each hop gated on and recorded against the
// breaker of the host it actually hits. target is updated in place so
// the caller's retries go straight to wherever the resource lives.
// brk is the already-admitted breaker for the first hop. tp and rid
// are the call's trace context and request id, identical on every hop.
func (c *Client) exchange(ctx context.Context, method string, target *string, body []byte, out any, brk *breaker, tp, rid string) error {
	for hop := 0; ; hop++ {
		if hop > 0 {
			brk = c.breakerFor(urlHost(*target))
			if err := brk.allow(); err != nil {
				return err
			}
		}
		err := c.once(ctx, method, *target, body, out, tp, rid)
		rd, ok := err.(*redirectError)
		if !ok {
			brk.record(err)
			return err
		}
		// A forward is an authoritative answer from a healthy node:
		// it closes this host's failure streak, never extends it.
		brk.record(nil)
		c.forwards.Add(1)
		if hop+1 >= maxForwardHops {
			return fmt.Errorf("client: gave up after %d cross-node forwards (last to %s); the ring may be looping", hop+1, rd.location)
		}
		*target = rd.location
	}
}

// once issues a single HTTP exchange against an absolute URL.
func (c *Client) once(ctx context.Context, method, target string, body []byte, out any, tp, rid string) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, target, rd)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tp != "" {
		req.Header.Set(obs.TraceContextHeader, tp)
	}
	if rid != "" {
		req.Header.Set("X-Request-ID", rid)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, target, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("client: %s %s: read response: %w", method, target, err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			return nil
		}
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("client: %s %s: decode response: %w", method, target, err)
		}
		return nil
	}
	if resp.StatusCode == http.StatusTemporaryRedirect || resp.StatusCode == http.StatusPermanentRedirect {
		if loc := resp.Header.Get("Location"); loc != "" {
			if u, perr := resp.Request.URL.Parse(loc); perr == nil {
				return &redirectError{status: resp.StatusCode, location: u.String()}
			}
		}
	}
	var eb serve.ErrorResponse
	if err := json.Unmarshal(raw, &eb); err != nil || eb.Error == "" {
		eb.Error = strings.TrimSpace(string(raw))
		if eb.Error == "" {
			eb.Error = http.StatusText(resp.StatusCode)
		}
	}
	return &APIError{
		Status:     resp.StatusCode,
		Code:       eb.Code,
		Message:    eb.Error,
		RequestID:  eb.RequestID,
		retryAfter: retryAfter(resp),
	}
}

// CreateChip fabricates a chip into the fleet. Not retried after
// reaching the server (a duplicate-id 409 would mask the first
// outcome); the service rolls back un-journaled creates, so a caller
// seeing a 5xx may safely issue the call again itself.
func (c *Client) CreateChip(ctx context.Context, req CreateChipRequest) (ChipResponse, error) {
	var out ChipResponse
	err := c.do(ctx, http.MethodPost, "/v1/chips", req, &out, false)
	return out, err
}

// ListChips returns the fleet sorted by id.
func (c *Client) ListChips(ctx context.Context) ([]ChipResponse, error) {
	var out ChipListResponse
	err := c.do(ctx, http.MethodGet, "/v1/chips", nil, &out, true)
	return out.Chips, err
}

// DeleteChip retires a chip. Idempotent: retrying a delete converges
// to the same end state (a retry racing its own success reports 404).
func (c *Client) DeleteChip(ctx context.Context, id string) (DeleteChipResponse, error) {
	var out DeleteChipResponse
	err := c.do(ctx, http.MethodDelete, "/v1/chips/"+url.PathEscape(id), nil, &out, true)
	return out, err
}

// Stress ages a chip. Never retried once sent: a second run would age
// the die twice.
func (c *Client) Stress(ctx context.Context, id string, req PhaseRequest) (PhaseResponse, error) {
	var out PhaseResponse
	err := c.do(ctx, http.MethodPost, "/v1/chips/"+url.PathEscape(id)+"/stress", req, &out, false)
	return out, err
}

// Rejuvenate heals a chip. Never retried once sent.
func (c *Client) Rejuvenate(ctx context.Context, id string, req PhaseRequest) (PhaseResponse, error) {
	var out PhaseResponse
	err := c.do(ctx, http.MethodPost, "/v1/chips/"+url.PathEscape(id)+"/rejuvenate", req, &out, false)
	return out, err
}

// Measure reads a bench chip's ring-oscillator sensor.
func (c *Client) Measure(ctx context.Context, id string) (ReadingResponse, error) {
	var out ReadingResponse
	err := c.do(ctx, http.MethodGet, "/v1/chips/"+url.PathEscape(id)+"/measure", nil, &out, true)
	return out, err
}

// Odometer reads a monitored chip's differential aging sensor.
func (c *Client) Odometer(ctx context.Context, id string) (OdometerResponse, error) {
	var out OdometerResponse
	err := c.do(ctx, http.MethodGet, "/v1/chips/"+url.PathEscape(id)+"/odometer", nil, &out, true)
	return out, err
}

// BatchCreateChips fabricates up to serve.MaxBatchItems chips in one
// round trip. Partial failure is normal: the call returns 200 with a
// per-item Error string for each chip that could not be created, so
// callers must inspect Results (or the Created/Failed tallies) rather
// than rely on the error return alone. Never retried once sent — a
// re-send would report every already-created id as a duplicate and
// mask the first outcome.
func (c *Client) BatchCreateChips(ctx context.Context, chips []CreateChipRequest) (BatchCreateResponse, error) {
	var out BatchCreateResponse
	err := c.do(ctx, http.MethodPost, "/v1/chips:batch", serve.BatchCreateRequest{Chips: chips}, &out, false)
	return out, err
}

// BatchOps applies a mixed batch of stress/rejuvenate/measure/odometer
// operations in one round trip. Items run concurrently across chips
// but in submission order per chip; failures are per item, reported in
// Results. Never retried once sent: stress and rejuvenate items would
// age or heal a die twice.
func (c *Client) BatchOps(ctx context.Context, ops []BatchOpSpec) (BatchOpsResponse, error) {
	var out BatchOpsResponse
	err := c.do(ctx, http.MethodPost, "/v1/ops:batch", serve.BatchOpsRequest{Ops: ops}, &out, false)
	return out, err
}

// PredictShift evaluates the closed-form model. The prediction
// endpoints are pure functions of their request, so they retry as
// idempotent despite being POSTs.
func (c *Client) PredictShift(ctx context.Context, req ShiftRequest) (ShiftResponse, error) {
	var out ShiftResponse
	err := c.do(ctx, http.MethodPost, "/v1/predict/shift", req, &out, true)
	return out, err
}

// PredictSchedules compares rejuvenation policies over a horizon.
func (c *Client) PredictSchedules(ctx context.Context, req SchedulesRequest) (SchedulesResponse, error) {
	var out SchedulesResponse
	err := c.do(ctx, http.MethodPost, "/v1/predict/schedules", req, &out, true)
	return out, err
}

// PredictMulticore runs the 8-core scheduling exploration.
func (c *Client) PredictMulticore(ctx context.Context, req MulticoreRequest) (MulticoreResponse, error) {
	var out MulticoreResponse
	err := c.do(ctx, http.MethodPost, "/v1/predict/multicore", req, &out, true)
	return out, err
}

// Metrics fetches the service's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (MetricsSnapshot, error) {
	var out MetricsSnapshot
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &out, true)
	return out, err
}

// Health checks liveness.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil, true)
}
