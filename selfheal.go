// Package selfheal is a Go reproduction of "Modeling and Experimental
// Demonstration of Accelerated Self-Healing Techniques" (Guo, Burleson,
// Stan — DAC 2014): BTI wearout and *accelerated recovery* modeling for
// electronic systems, demonstrated on a simulated 40 nm LUT-based FPGA
// with ring-oscillator delay sensors.
//
// The paper's thesis: sleep should be an *active recovery period*, not
// idleness. By controlling the active:sleep ratio α and the sleep
// conditions — a negative supply rail (−0.3 V) and elevated temperature
// (110 °C) — stressed chips return to within 90 % of their original
// delay margin while rejuvenating for only a quarter of the stress
// time.
//
// The public API covers five layers:
//
//   - Chips: Chip (the paper's bench: stress / rejuvenate / measure),
//     MonitoredChip (with a ppm-resolution differential aging sensor),
//     PUFChip (an enrolled RO-PUF whose bits drift and heal), and
//     Logic (real circuits technology-mapped onto the fabric, with
//     BTI-aware static timing).
//   - Model: the closed-form TD wearout/recovery device model
//     (Device, StressShiftV, RecoveredFraction) and the stochastic
//     trap ensemble it is validated against (TrapEnsemble).
//   - Schedules: the proactive/reactive rejuvenation policies of
//     Section 2.2 (CompareSchedules) and the Section 7 schedule-aware
//     adaptive clock (SimulateAdaptiveClock).
//   - Systems: the eight-core circadian scheduling exploration of
//     Section 6.2 (RunMulticore) and the cache-SRAM maintenance study
//     (RunCacheSRAM).
//   - Paper: regenerate every table and figure of the evaluation
//     (ReproducePaper), the extension studies (ReproduceExtensions)
//     and the raw measurement CSVs (ExportMeasurements).
//
// Everything is deterministic given a seed and runs on the standard
// library alone.
package selfheal

import (
	"errors"
	"fmt"
	"math"

	"selfheal/internal/measure"
	"selfheal/internal/rng"
	"selfheal/internal/units"
)

// checkFinite rejects NaN and ±Inf with a descriptive error so callers
// (and the HTTP layer in internal/serve) can surface exactly which
// parameter was malformed instead of silently propagating NaNs through
// the physics.
func checkFinite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("selfheal: %s must be finite, got %v", name, v)
	}
	return nil
}

// checkPhaseArgs validates the duration and sampling arguments shared
// by Chip.Stress and Chip.Rejuvenate.
func checkPhaseArgs(phase string, hours, sampleHours float64) error {
	if err := checkFinite(phase+" duration (hours)", hours); err != nil {
		return err
	}
	if hours <= 0 {
		return fmt.Errorf("selfheal: %s duration must be positive, got %v h", phase, hours)
	}
	if err := checkFinite(phase+" sampling period (hours)", sampleHours); err != nil {
		return err
	}
	if sampleHours < 0 {
		return fmt.Errorf("selfheal: %s sampling period must be ≥ 0, got %v h", phase, sampleHours)
	}
	return nil
}

// StressCondition describes an operating (wearout) phase.
type StressCondition struct {
	TempC float64 // die temperature, °C
	Vdd   float64 // supply, volts (> 0)
	// AC reports whether the workload toggles the logic (oscillating
	// CUT); false freezes it — the paper's DC stress, the worst case.
	AC bool
}

// NominalOperation is ordinary hot operation at the nominal 1.2 V rail.
func NominalOperation() StressCondition {
	return StressCondition{TempC: 85, Vdd: 1.2, AC: true}
}

// AcceleratedStress is the paper's accelerated wearout condition:
// 110 °C at 1.2 V with the CUT frozen (DC).
func AcceleratedStress() StressCondition {
	return StressCondition{TempC: 110, Vdd: 1.2, AC: false}
}

// SleepCondition describes a sleep (recovery) phase.
type SleepCondition struct {
	TempC float64 // chamber/die temperature, °C
	Vdd   float64 // rail: 0 = gated, negative = accelerated (e.g. −0.3)
}

// PassiveSleep is conventional power gating at room temperature — the
// slow, incomplete recovery the paper argues is not enough.
func PassiveSleep() SleepCondition { return SleepCondition{TempC: 20, Vdd: 0} }

// NegativeVoltageSleep applies the −0.3 V rail at room temperature.
func NegativeVoltageSleep() SleepCondition { return SleepCondition{TempC: 20, Vdd: -0.3} }

// HotSleep gates the rail at 110 °C.
func HotSleep() SleepCondition { return SleepCondition{TempC: 110, Vdd: 0} }

// AcceleratedSleep combines both knobs — the paper's headline
// condition (110 °C, −0.3 V, 72.4 % margin relaxed).
func AcceleratedSleep() SleepCondition { return SleepCondition{TempC: 110, Vdd: -0.3} }

// Reading is one ring-oscillator measurement (Eqs. 14–15 of the
// paper): the gated 16-bit counter value, the oscillation frequency
// and the circuit-under-test delay, plus the degradation relative to
// the chip's fresh state.
type Reading struct {
	Counts         int
	FrequencyHz    float64
	DelayNS        float64
	DegradationPct float64
}

// TracePoint is one sample of a phase trace.
type TracePoint struct {
	Hours   float64
	DelayNS float64
}

// Chip is a simulated 40 nm LUT-based FPGA carrying the paper's
// 75-stage ring-oscillator sensor, with every pass transistor's aging
// state tracked individually.
type Chip struct {
	bench   *measure.Bench
	freshNS float64
}

// NewChip fabricates a chip. The seed determines its process variation
// and measurement noise; the same seed replays identically. The chip
// receives the paper's 2 h room-temperature burn-in so its fresh
// reference is stable.
func NewChip(id string, seed uint64) (*Chip, error) {
	if id == "" {
		return nil, errors.New("selfheal: chip id must not be empty")
	}
	b, err := measure.NewBench(id, measure.DefaultBenchParams(), rng.New(seed))
	if err != nil {
		return nil, fmt.Errorf("selfheal: %w", err)
	}
	if _, err := b.RunPhase(measure.PhaseSpec{
		Name: "burn-in", Kind: measure.Stress,
		Duration: 2 * units.Hour, TempC: 20, Vdd: 1.2, AC: true,
	}); err != nil {
		return nil, fmt.Errorf("selfheal: burn-in: %w", err)
	}
	m, err := b.Sample()
	if err != nil {
		return nil, fmt.Errorf("selfheal: %w", err)
	}
	return &Chip{bench: b, freshNS: m.DelayNS}, nil
}

// ID returns the chip identifier.
func (c *Chip) ID() string { return c.bench.Chip.ID() }

// FreshDelayNS returns the post-burn-in fresh CUT delay.
func (c *Chip) FreshDelayNS() float64 { return c.freshNS }

// Measure wakes the sensor and reads it once.
func (c *Chip) Measure() (Reading, error) {
	m, err := c.bench.Sample()
	if err != nil {
		return Reading{}, fmt.Errorf("selfheal: %w", err)
	}
	return Reading{
		Counts:         m.Counts,
		FrequencyHz:    float64(m.Fosc),
		DelayNS:        m.DelayNS,
		DegradationPct: (m.DelayNS - c.freshNS) / c.freshNS * 100,
	}, nil
}

// Stress runs the chip under the given operating condition for the
// given number of hours, sampling every sampleHours (0 samples only at
// the boundary), and returns the recorded delay trace.
func (c *Chip) Stress(cond StressCondition, hours, sampleHours float64) ([]TracePoint, error) {
	if err := checkPhaseArgs("stress", hours, sampleHours); err != nil {
		return nil, err
	}
	if err := checkFinite("stress temperature (°C)", cond.TempC); err != nil {
		return nil, err
	}
	if err := checkFinite("stress rail (V)", cond.Vdd); err != nil {
		return nil, err
	}
	if cond.Vdd <= 0 {
		return nil, fmt.Errorf("selfheal: stress condition needs a positive rail, got %v V", cond.Vdd)
	}
	s, err := c.bench.RunPhase(measure.PhaseSpec{
		Name:        "stress",
		Kind:        measure.Stress,
		Duration:    units.HoursToSeconds(hours),
		TempC:       units.Celsius(cond.TempC),
		Vdd:         units.Volt(cond.Vdd),
		AC:          cond.AC,
		FrozenIn0:   true,
		SampleEvery: units.HoursToSeconds(sampleHours),
	})
	if err != nil {
		return nil, fmt.Errorf("selfheal: %w", err)
	}
	return tracePoints(s.Times(), s.Values()), nil
}

// Rejuvenate puts the chip to sleep under the given recovery condition
// for the given number of hours, sampling every sampleHours, and
// returns the recorded delay trace.
func (c *Chip) Rejuvenate(cond SleepCondition, hours, sampleHours float64) ([]TracePoint, error) {
	if err := checkPhaseArgs("sleep", hours, sampleHours); err != nil {
		return nil, err
	}
	if err := checkFinite("sleep temperature (°C)", cond.TempC); err != nil {
		return nil, err
	}
	if err := checkFinite("sleep rail (V)", cond.Vdd); err != nil {
		return nil, err
	}
	if cond.Vdd > 0 {
		return nil, fmt.Errorf("selfheal: sleep rail must be ≤ 0 (gated or negative), got %v V", cond.Vdd)
	}
	s, err := c.bench.RunPhase(measure.PhaseSpec{
		Name:        "sleep",
		Kind:        measure.Recovery,
		Duration:    units.HoursToSeconds(hours),
		TempC:       units.Celsius(cond.TempC),
		Vdd:         units.Volt(cond.Vdd),
		SampleEvery: units.HoursToSeconds(sampleHours),
	})
	if err != nil {
		return nil, fmt.Errorf("selfheal: %w", err)
	}
	return tracePoints(s.Times(), s.Values()), nil
}

func tracePoints(times, values []float64) []TracePoint {
	out := make([]TracePoint, len(times))
	for i := range times {
		out[i] = TracePoint{Hours: times[i] / 3600, DelayNS: values[i]}
	}
	return out
}

// MarginRelaxedPct is the paper's design-margin-relaxed parameter: the
// percentage of the delay degradation accumulated between the fresh
// state and stressedNS that a rejuvenation down to healedNS removed.
func MarginRelaxedPct(freshNS, stressedNS, healedNS float64) (float64, error) {
	v, err := measure.MarginRelaxedPct(freshNS, stressedNS, healedNS)
	if err != nil {
		return 0, fmt.Errorf("selfheal: %w", err)
	}
	return v, nil
}

// RemainingMarginPct reports how much of the chip's delay-margin
// budget (the paper-calibrated 12 % of fresh delay) survives at the
// given delay. 100 = untouched, 0 = timing violated.
func (c *Chip) RemainingMarginPct(delayNS float64) (float64, error) {
	v, err := measure.RemainingMarginPct(c.freshNS, delayNS, measure.DefaultMarginFrac)
	if err != nil {
		return 0, fmt.Errorf("selfheal: %w", err)
	}
	return v, nil
}

// WithinOriginalMargin reports the paper's headline criterion at the
// given delay: at least pct % of the original margin remains.
func (c *Chip) WithinOriginalMargin(delayNS, pct float64) (bool, error) {
	ok, err := measure.WithinOriginalMargin(c.freshNS, delayNS, measure.DefaultMarginFrac, pct)
	if err != nil {
		return false, fmt.Errorf("selfheal: %w", err)
	}
	return ok, nil
}

// MeanVthShiftV returns the die-average threshold-voltage shift in
// volts — a direct view into the device-level damage.
func (c *Chip) MeanVthShiftV() float64 { return c.bench.Chip.MeanVthShift() }

// LeakageNA returns the die's summed subthreshold leakage in nanoamps;
// aging lowers it (the one metric BTI improves).
func (c *Chip) LeakageNA() float64 { return c.bench.Chip.Leakage() }
