// Package margin turns the paper's argument into a sign-off tool: BTI
// guard-band budgeting over a mission profile. A designer asks either
// "how much delay margin must I ship to survive N years under this
// rejuvenation policy?" or the inverse, "how long does a given margin
// last?" — and the answer is what the paper means by *relaxing design
// margins* through accelerated self-healing.
//
// The calculator runs the calibrated first-order model over the mission
// profile (closed form per cycle, so centuries evaluate in
// microseconds) and reports the peak path-delay degradation the margin
// must cover. Rejuvenated missions have a bounded sawtooth whose peak
// creeps only through the irreversible component; no-recovery missions
// grow logarithmically forever.
package margin

import (
	"errors"
	"fmt"
	"math"

	"selfheal/internal/td"
	"selfheal/internal/units"
)

// Mission describes the duty cycle the part will live through.
type Mission struct {
	// ActiveTempC and ActiveVdd describe operation; ActivityDuty the
	// critical path's switching duty.
	ActiveTempC  units.Celsius
	ActiveVdd    units.Volt
	ActivityDuty float64
	// ActiveHours and SleepHours shape one mission cycle; SleepHours
	// of zero means the part never rests (α = ∞).
	ActiveHours, SleepHours float64
	// SleepTempC and SleepVdd are the rejuvenation conditions (ignored
	// when SleepHours is zero).
	SleepTempC units.Celsius
	SleepVdd   units.Volt
}

// Server24x7 is a hot always-on mission — the conventional design
// target.
func Server24x7() Mission {
	return Mission{
		ActiveTempC:  85,
		ActiveVdd:    1.2,
		ActivityDuty: 0.5,
		ActiveHours:  24,
		SleepHours:   0,
	}
}

// CircadianServer is the paper's proposal applied to the same server:
// α = 4 with accelerated sleep.
func CircadianServer() Mission {
	m := Server24x7()
	m.ActiveHours = 24
	m.SleepHours = 6
	m.SleepTempC = 110
	m.SleepVdd = -0.3
	return m
}

// Validate reports whether the mission is well-formed.
func (m Mission) Validate() error {
	switch {
	case m.ActiveVdd <= 0:
		return errors.New("margin: active supply must be positive")
	case m.ActivityDuty <= 0 || m.ActivityDuty > 1:
		return errors.New("margin: activity duty must be in (0,1]")
	case m.ActiveHours <= 0:
		return errors.New("margin: active hours must be positive")
	case m.SleepHours < 0:
		return errors.New("margin: sleep hours must be non-negative")
	case m.SleepHours > 0 && m.SleepVdd > 0:
		return errors.New("margin: sleep rail must be ≤ 0")
	}
	return nil
}

// Alpha returns the mission's active:sleep ratio (Inf when it never
// sleeps).
func (m Mission) Alpha() float64 {
	if m.SleepHours == 0 {
		return math.Inf(1)
	}
	return m.ActiveHours / m.SleepHours
}

// Calculator budgets margins over missions for a calibrated path.
type Calculator struct {
	// TD is the device model; PathGainPctPerV converts the lumped ΔVth
	// into percent path-delay degradation (the RO calibration gives
	// ≈54.7 %/V·ns over a 100 ns path ⇒ 0.547 %/mV… expressed per
	// volt: 54.7 %/V).
	TD              td.Params
	PathGainPctPerV float64
}

// NewCalculator returns the calculator for the calibrated 40 nm path.
func NewCalculator() Calculator {
	return Calculator{TD: td.DefaultParams(), PathGainPctPerV: 54.7}
}

// PeakDegradationPct simulates the mission for the given number of
// years and returns the worst path-delay degradation (percent) the
// margin must cover.
func (c Calculator) PeakDegradationPct(m Mission, years float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if years <= 0 {
		return 0, errors.New("margin: years must be positive")
	}
	var state td.State
	stress := td.StressCond{V: m.ActiveVdd, T: m.ActiveTempC.Kelvin(), Duty: m.ActivityDuty}
	recover := td.RecoveryCond{VRev: -m.SleepVdd, T: m.SleepTempC.Kelvin()}

	cycleH := m.ActiveHours + m.SleepHours
	total := years * 365.25 * 24
	peak := 0.0
	for t := 0.0; t < total; t += cycleH {
		state.Stress(c.TD, stress, units.HoursToSeconds(m.ActiveHours))
		if v := c.PathGainPctPerV * state.Vth(); v > peak {
			peak = v
		}
		if m.SleepHours > 0 {
			state.Recover(c.TD, recover, units.HoursToSeconds(m.SleepHours))
		}
	}
	return peak, nil
}

// RequiredMarginPct returns the delay margin (percent of fresh path
// delay) a design must ship to cover the mission for the given years,
// including a safety factor (e.g. 1.2 for 20 % engineering reserve).
func (c Calculator) RequiredMarginPct(m Mission, years, safetyFactor float64) (float64, error) {
	if safetyFactor < 1 {
		return 0, errors.New("margin: safety factor must be at least 1")
	}
	peak, err := c.PeakDegradationPct(m, years)
	if err != nil {
		return 0, err
	}
	return peak * safetyFactor, nil
}

// LifetimeYears returns how long the mission can run before the peak
// degradation exhausts the given margin (percent of fresh delay). It
// returns +Inf when the bounded envelope never reaches the margin
// within the search horizon (200 years).
func (c Calculator) LifetimeYears(m Mission, marginPct float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if marginPct <= 0 {
		return 0, errors.New("margin: margin must be positive")
	}
	var state td.State
	stress := td.StressCond{V: m.ActiveVdd, T: m.ActiveTempC.Kelvin(), Duty: m.ActivityDuty}
	recover := td.RecoveryCond{VRev: -m.SleepVdd, T: m.SleepTempC.Kelvin()}

	const horizonYears = 200
	cycleH := m.ActiveHours + m.SleepHours
	totalH := horizonYears * 365.25 * 24.0
	for t := 0.0; t < totalH; t += cycleH {
		state.Stress(c.TD, stress, units.HoursToSeconds(m.ActiveHours))
		if c.PathGainPctPerV*state.Vth() >= marginPct {
			return (t + m.ActiveHours) / (365.25 * 24), nil
		}
		if m.SleepHours > 0 {
			state.Recover(c.TD, recover, units.HoursToSeconds(m.SleepHours))
		}
	}
	return math.Inf(1), nil
}

// RelaxationPct returns how much of the baseline mission's required
// margin the rejuvenated mission saves over the given years — the
// paper's design-margin-relaxed parameter at mission scale.
func (c Calculator) RelaxationPct(baseline, rejuvenated Mission, years float64) (float64, error) {
	base, err := c.PeakDegradationPct(baseline, years)
	if err != nil {
		return 0, fmt.Errorf("margin: baseline: %w", err)
	}
	rej, err := c.PeakDegradationPct(rejuvenated, years)
	if err != nil {
		return 0, fmt.Errorf("margin: rejuvenated: %w", err)
	}
	if base == 0 {
		return 0, errors.New("margin: baseline does not degrade")
	}
	return (1 - rej/base) * 100, nil
}
