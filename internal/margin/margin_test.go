package margin

import (
	"math"
	"testing"
)

func TestMissionValidate(t *testing.T) {
	if err := Server24x7().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := CircadianServer().Validate(); err != nil {
		t.Fatal(err)
	}
	mods := []func(*Mission){
		func(m *Mission) { m.ActiveVdd = 0 },
		func(m *Mission) { m.ActivityDuty = 0 },
		func(m *Mission) { m.ActivityDuty = 1.5 },
		func(m *Mission) { m.ActiveHours = 0 },
		func(m *Mission) { m.SleepHours = -1 },
		func(m *Mission) { m.SleepHours = 6; m.SleepVdd = 1.2 },
	}
	for i, mod := range mods {
		m := Server24x7()
		mod(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestAlpha(t *testing.T) {
	if a := CircadianServer().Alpha(); a != 4 {
		t.Errorf("circadian α = %v", a)
	}
	if a := Server24x7().Alpha(); !math.IsInf(a, 1) {
		t.Errorf("always-on α = %v", a)
	}
}

func TestPeakDegradationValidation(t *testing.T) {
	c := NewCalculator()
	if _, err := c.PeakDegradationPct(Server24x7(), 0); err == nil {
		t.Error("zero years accepted")
	}
	bad := Server24x7()
	bad.ActiveVdd = 0
	if _, err := c.PeakDegradationPct(bad, 1); err == nil {
		t.Error("bad mission accepted")
	}
}

// TestRejuvenationBoundsPeak is the core claim at sign-off scale: over
// a 10-year mission the circadian server's peak degradation sits far
// below the always-on server's.
func TestRejuvenationBoundsPeak(t *testing.T) {
	c := NewCalculator()
	base, err := c.PeakDegradationPct(Server24x7(), 10)
	if err != nil {
		t.Fatal(err)
	}
	rej, err := c.PeakDegradationPct(CircadianServer(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if rej >= base {
		t.Fatalf("rejuvenation did not reduce the peak: %v vs %v", rej, base)
	}
	relax, err := c.RelaxationPct(Server24x7(), CircadianServer(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if relax < 30 {
		t.Errorf("10-year margin relaxation = %.1f %%, expected substantial", relax)
	}
}

func TestPeakGrowsWithYears(t *testing.T) {
	c := NewCalculator()
	prev := 0.0
	for _, years := range []float64{1, 3, 10} {
		peak, err := c.PeakDegradationPct(Server24x7(), years)
		if err != nil {
			t.Fatal(err)
		}
		if peak <= prev {
			t.Errorf("peak not increasing at %v years: %v", years, peak)
		}
		prev = peak
	}
}

func TestRequiredMargin(t *testing.T) {
	c := NewCalculator()
	plain, err := c.RequiredMarginPct(Server24x7(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	reserved, err := c.RequiredMarginPct(Server24x7(), 5, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(reserved/plain-1.2) > 1e-9 {
		t.Errorf("safety factor not applied: %v vs %v", reserved, plain)
	}
	if _, err := c.RequiredMarginPct(Server24x7(), 5, 0.9); err == nil {
		t.Error("safety factor below 1 accepted")
	}
}

// TestLifetimeExtension: for the same shipped margin, the circadian
// mission lives substantially longer — the paper's "improve lifetime"
// claim quantified.
func TestLifetimeExtension(t *testing.T) {
	c := NewCalculator()
	// Ship exactly the margin a 5-year always-on mission needs (no
	// reserve): the baseline then dies around year five, give or take
	// the cycle quantization.
	fiveYearPeak, err := c.PeakDegradationPct(Server24x7(), 5)
	if err != nil {
		t.Fatal(err)
	}
	marginPct := fiveYearPeak * 0.99
	baseLife, err := c.LifetimeYears(Server24x7(), marginPct)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(baseLife, 1) || baseLife > 5.1 {
		t.Fatalf("baseline lifetime = %v years, want ≈5", baseLife)
	}
	rejLife, err := c.LifetimeYears(CircadianServer(), marginPct)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(rejLife, 1) && rejLife < 2*baseLife {
		t.Errorf("lifetime extension weak: %v vs %v years", rejLife, baseLife)
	}
}

func TestLifetimeValidation(t *testing.T) {
	c := NewCalculator()
	if _, err := c.LifetimeYears(Server24x7(), 0); err == nil {
		t.Error("zero margin accepted")
	}
	bad := Server24x7()
	bad.ActiveHours = 0
	if _, err := c.LifetimeYears(bad, 1); err == nil {
		t.Error("bad mission accepted")
	}
}

func TestLifetimeMonotoneInMargin(t *testing.T) {
	c := NewCalculator()
	// Anchor the margins to the mission's own 5-year peak so each one
	// is actually exhausted within the search horizon.
	peak, err := c.PeakDegradationPct(Server24x7(), 5)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, frac := range []float64{0.90, 0.95, 0.99} {
		life, err := c.LifetimeYears(Server24x7(), peak*frac)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(life, 1) {
			t.Fatalf("margin %.3f %% never exhausted", peak*frac)
		}
		if life <= prev {
			t.Errorf("lifetime not increasing at %.0f %% of peak: %v", frac*100, life)
		}
		prev = life
	}
}

func TestRelaxationValidation(t *testing.T) {
	c := NewCalculator()
	bad := Server24x7()
	bad.ActiveHours = 0
	if _, err := c.RelaxationPct(bad, CircadianServer(), 1); err == nil {
		t.Error("bad baseline accepted")
	}
	if _, err := c.RelaxationPct(Server24x7(), bad, 1); err == nil {
		t.Error("bad rejuvenated mission accepted")
	}
}

// TestMarginMonotoneInAlpha: more sleep per cycle (smaller α) always
// buys a smaller required margin, approaching but never beating the
// irreversible floor.
func TestMarginMonotoneInAlpha(t *testing.T) {
	c := NewCalculator()
	prev := 0.0
	for _, alpha := range []float64{16, 8, 4, 2, 1} {
		m := CircadianServer()
		m.ActiveHours = alpha * m.SleepHours
		peak, err := c.PeakDegradationPct(m, 3)
		if err != nil {
			t.Fatal(err)
		}
		if prev != 0 && peak >= prev {
			t.Errorf("α=%g: peak %v not below α-larger %v", alpha, peak, prev)
		}
		if peak <= 0 {
			t.Errorf("α=%g: no degradation at all", alpha)
		}
		prev = peak
	}
}

func BenchmarkPeakDegradation10y(b *testing.B) {
	c := NewCalculator()
	m := CircadianServer()
	for i := 0; i < b.N; i++ {
		if _, err := c.PeakDegradationPct(m, 10); err != nil {
			b.Fatal(err)
		}
	}
}
