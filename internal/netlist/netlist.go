// Package netlist lets aging experiments run on *real logic* instead of
// inverter chains: it provides a small gate-level netlist builder, a
// technology mapper onto the chip's 2-input LUT fabric, workload-driven
// switching statistics from input traces, and a static timing analysis
// whose arrival times track per-transistor BTI damage.
//
// This closes the loop the paper motivates but does not need for its RO
// experiments: on a deployed FPGA design, *which* transistors age is
// set by the mapped logic and its input statistics (the paper's
// Hypothesis 1 at circuit scale), so a biased workload ages a different
// cut of the design than a uniform one — and scheduled rejuvenation
// heals whatever the workload stressed.
package netlist

import (
	"errors"
	"fmt"

	"selfheal/internal/fpga"
	"selfheal/internal/lut"
	"selfheal/internal/units"
)

// Kind enumerates the supported gate types. All two-input gates map to
// one LUT cell; Not and Buf use in0 with in1 tied high.
type Kind uint8

// Gate kinds.
const (
	KindInput Kind = iota
	KindNot
	KindBuf
	KindAnd
	KindOr
	KindXor
	KindNand
	KindNor
	KindXnor
)

// String names the gate kind.
func (k Kind) String() string {
	names := [...]string{"input", "not", "buf", "and", "or", "xor", "nand", "nor", "xnor"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// eval computes the gate function.
func (k Kind) eval(a, b bool) bool {
	switch k {
	case KindNot:
		return !a
	case KindBuf:
		return a
	case KindAnd:
		return a && b
	case KindOr:
		return a || b
	case KindXor:
		return a != b
	case KindNand:
		return !(a && b)
	case KindNor:
		return !(a || b)
	case KindXnor:
		return a == b
	default:
		return a
	}
}

// arity returns the number of fanins a kind consumes.
func (k Kind) arity() int {
	switch k {
	case KindInput:
		return 0
	case KindNot, KindBuf:
		return 1
	default:
		return 2
	}
}

// Signal identifies a gate output within one circuit.
type Signal int

// gate is one node of the DAG. Fanins always reference earlier gates,
// so circuits are acyclic by construction.
type gate struct {
	kind Kind
	name string
	in   [2]Signal
}

// Circuit is a combinational gate-level netlist under construction.
type Circuit struct {
	name    string
	gates   []gate
	inputs  []Signal
	outputs []Signal
	outName []string
}

// New returns an empty circuit.
func New(name string) *Circuit { return &Circuit{name: name} }

// Name returns the circuit name.
func (c *Circuit) Name() string { return c.name }

// Input declares a primary input and returns its signal.
func (c *Circuit) Input(name string) Signal {
	s := Signal(len(c.gates))
	c.gates = append(c.gates, gate{kind: KindInput, name: name})
	c.inputs = append(c.inputs, s)
	return s
}

// add appends a gate after validating its fanins.
func (c *Circuit) add(k Kind, name string, a, b Signal) Signal {
	n := Signal(len(c.gates))
	if a < 0 || a >= n || (k.arity() == 2 && (b < 0 || b >= n)) {
		panic(fmt.Sprintf("netlist: gate %q references an undefined signal", name))
	}
	c.gates = append(c.gates, gate{kind: k, name: name, in: [2]Signal{a, b}})
	return n
}

// Not, Buf, And, Or, Xor, Nand, Nor and Xnor append the corresponding
// gate and return its output signal. Fanins must already exist; the
// builder panics otherwise (a programming error, like an out-of-range
// slice index).
func (c *Circuit) Not(a Signal) Signal     { return c.add(KindNot, "not", a, a) }
func (c *Circuit) Buf(a Signal) Signal     { return c.add(KindBuf, "buf", a, a) }
func (c *Circuit) And(a, b Signal) Signal  { return c.add(KindAnd, "and", a, b) }
func (c *Circuit) Or(a, b Signal) Signal   { return c.add(KindOr, "or", a, b) }
func (c *Circuit) Xor(a, b Signal) Signal  { return c.add(KindXor, "xor", a, b) }
func (c *Circuit) Nand(a, b Signal) Signal { return c.add(KindNand, "nand", a, b) }
func (c *Circuit) Nor(a, b Signal) Signal  { return c.add(KindNor, "nor", a, b) }
func (c *Circuit) Xnor(a, b Signal) Signal { return c.add(KindXnor, "xnor", a, b) }

// MarkOutput declares a primary output.
func (c *Circuit) MarkOutput(name string, s Signal) error {
	if s < 0 || int(s) >= len(c.gates) {
		return fmt.Errorf("netlist: output %q references undefined signal %d", name, s)
	}
	c.outputs = append(c.outputs, s)
	c.outName = append(c.outName, name)
	return nil
}

// Inputs and Outputs return the primary port counts.
func (c *Circuit) Inputs() int  { return len(c.inputs) }
func (c *Circuit) Outputs() int { return len(c.outputs) }

// LogicGates returns the number of non-input gates (the LUT count
// after mapping).
func (c *Circuit) LogicGates() int { return len(c.gates) - len(c.inputs) }

// evalAll computes every signal for the given primary-input vector.
func (c *Circuit) evalAll(in []bool) ([]bool, error) {
	if len(in) != len(c.inputs) {
		return nil, fmt.Errorf("netlist: %d inputs, circuit has %d", len(in), len(c.inputs))
	}
	vals := make([]bool, len(c.gates))
	next := 0
	for i, g := range c.gates {
		if g.kind == KindInput {
			vals[i] = in[next]
			next++
			continue
		}
		vals[i] = g.kind.eval(vals[g.in[0]], vals[g.in[1]])
	}
	return vals, nil
}

// Eval computes the primary outputs for the given input vector.
func (c *Circuit) Eval(in []bool) ([]bool, error) {
	vals, err := c.evalAll(in)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(c.outputs))
	for i, s := range c.outputs {
		out[i] = vals[s]
	}
	return out, nil
}

// Placed is a circuit technology-mapped onto a chip: one LUT cell per
// logic gate.
type Placed struct {
	Circuit *Circuit
	Mapping *fpga.Mapping
	// cellOf[signal] is the index into Mapping.Cells, or −1 for
	// primary inputs.
	cellOf []int
}

// Place maps the circuit onto free cells of the chip. Each two-input
// gate becomes one LUT2 configured with the gate's truth table; Not and
// Buf use in0 with in1 tied high.
func Place(c *Circuit, chip *fpga.Chip) (*Placed, error) {
	if c.LogicGates() == 0 {
		return nil, errors.New("netlist: circuit has no logic gates")
	}
	if len(c.outputs) == 0 {
		return nil, errors.New("netlist: circuit has no outputs")
	}
	m, err := chip.MapCells(c.name, c.LogicGates())
	if err != nil {
		return nil, fmt.Errorf("netlist: placing %q: %w", c.name, err)
	}
	p := &Placed{Circuit: c, Mapping: m, cellOf: make([]int, len(c.gates))}
	idx := 0
	for i, g := range c.gates {
		if g.kind == KindInput {
			p.cellOf[i] = -1
			continue
		}
		p.cellOf[i] = idx
		kind := g.kind
		m.Cells[idx].ConfigureFunc(func(in0, in1 bool) bool {
			if kind.arity() == 1 {
				return kind.eval(in0, in0)
			}
			return kind.eval(in0, in1)
		})
		idx++
	}
	return p, nil
}

// cellInputs returns the LUT input pattern gate g sees for signal
// values vals.
func (p *Placed) cellInputs(gi int, vals []bool) (in0, in1 bool) {
	g := p.Circuit.gates[gi]
	in0 = vals[g.in[0]]
	in1 = true // unary gates tie in1 high
	if g.kind.arity() == 2 {
		in1 = vals[g.in[1]]
	}
	return in0, in1
}

// Eval evaluates the *placed* design through the LUT cells (not the
// abstract gates), verifying the technology mapping end to end.
func (p *Placed) Eval(in []bool) ([]bool, error) {
	if len(in) != len(p.Circuit.inputs) {
		return nil, fmt.Errorf("netlist: %d inputs, circuit has %d", len(in), len(p.Circuit.inputs))
	}
	vals := make([]bool, len(p.Circuit.gates))
	next := 0
	for i, g := range p.Circuit.gates {
		if g.kind == KindInput {
			vals[i] = in[next]
			next++
			continue
		}
		in0, in1 := p.cellInputs(i, vals)
		vals[i] = p.Mapping.Cells[p.cellOf[i]].Eval(in0, in1)
	}
	out := make([]bool, len(p.Circuit.outputs))
	for i, s := range p.Circuit.outputs {
		out[i] = vals[s]
	}
	return out, nil
}

// Activity derives per-cell switching statistics from an input trace:
// for each cell, the observed distribution of its LUT input patterns.
// The result plugs into the stress engine (stress.Activity.CellPhases).
func (p *Placed) Activity(trace [][]bool) ([][]lut.Phase, error) {
	if len(trace) == 0 {
		return nil, errors.New("netlist: empty trace")
	}
	counts := make([][4]int, len(p.Mapping.Cells))
	for r, in := range trace {
		vals, err := p.Circuit.evalAll(in)
		if err != nil {
			return nil, fmt.Errorf("netlist: trace row %d: %w", r, err)
		}
		for gi, g := range p.Circuit.gates {
			if g.kind == KindInput {
				continue
			}
			in0, in1 := p.cellInputs(gi, vals)
			k := 0
			if in0 {
				k += 2
			}
			if in1 {
				k++
			}
			counts[p.cellOf[gi]][k]++
		}
	}
	phases := make([][]lut.Phase, len(p.Mapping.Cells))
	n := float64(len(trace))
	for ci, cnt := range counts {
		var ph []lut.Phase
		for k, c := range cnt {
			if c == 0 {
				continue
			}
			ph = append(ph, lut.Phase{
				In0:    k>>1 == 1,
				In1:    k&1 == 1,
				Weight: float64(c) / n,
			})
		}
		phases[ci] = ph
	}
	return phases, nil
}

// CriticalPathNS performs static timing analysis over the placed
// design at supply vdd: per-gate delay is the worst POI delay across
// the cell's input patterns (including accumulated BTI damage), and
// arrival times propagate along the DAG. It returns the worst primary
// output arrival in nanoseconds.
func (p *Placed) CriticalPathNS(vdd units.Volt) (float64, error) {
	arrival := make([]float64, len(p.Circuit.gates))
	for gi, g := range p.Circuit.gates {
		if g.kind == KindInput {
			continue
		}
		cell := p.Mapping.Cells[p.cellOf[gi]]
		worst := 0.0
		for k := 0; k < 4; k++ {
			d, err := cell.PathDelay(vdd, k>>1 == 1, k&1 == 1)
			if err != nil {
				return 0, fmt.Errorf("netlist: STA at gate %d: %w", gi, err)
			}
			if d > worst {
				worst = d
			}
		}
		at := arrival[g.in[0]]
		if g.kind.arity() == 2 && arrival[g.in[1]] > at {
			at = arrival[g.in[1]]
		}
		arrival[gi] = at + worst
	}
	out := 0.0
	for _, s := range p.Circuit.outputs {
		if arrival[s] > out {
			out = arrival[s]
		}
	}
	return out, nil
}

// RippleAdder builds an n-bit ripple-carry adder (2n+1 inputs
// a0..a(n−1), b0..b(n−1), cin; n+1 outputs s0..s(n−1), cout) — the
// workhorse benchmark circuit.
func RippleAdder(n int) (*Circuit, error) {
	if n <= 0 {
		return nil, errors.New("netlist: adder width must be positive")
	}
	c := New(fmt.Sprintf("adder%d", n))
	a := make([]Signal, n)
	b := make([]Signal, n)
	for i := 0; i < n; i++ {
		a[i] = c.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		b[i] = c.Input(fmt.Sprintf("b%d", i))
	}
	carry := c.Input("cin")
	for i := 0; i < n; i++ {
		axb := c.Xor(a[i], b[i])
		sum := c.Xor(axb, carry)
		and1 := c.And(axb, carry)
		and2 := c.And(a[i], b[i])
		carry = c.Or(and1, and2)
		if err := c.MarkOutput(fmt.Sprintf("s%d", i), sum); err != nil {
			return nil, err
		}
	}
	if err := c.MarkOutput("cout", carry); err != nil {
		return nil, err
	}
	return c, nil
}
