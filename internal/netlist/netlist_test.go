package netlist

import (
	"testing"
	"testing/quick"

	"selfheal/internal/fpga"
	"selfheal/internal/lut"
	"selfheal/internal/rng"
	"selfheal/internal/stress"
	"selfheal/internal/units"
)

func nominalChip(t *testing.T, seed uint64) *fpga.Chip {
	t.Helper()
	p := fpga.DefaultParams()
	p.ChipSigmaFrac = 0
	p.LocalSigmaFrac = 0
	p.VthSigmaV = 0
	c, err := fpga.NewChip("net", p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestKindString(t *testing.T) {
	if KindXor.String() != "xor" || KindInput.String() != "input" {
		t.Error("kind names wrong")
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind unnamed")
	}
}

func TestBuilderAndEval(t *testing.T) {
	c := New("mux")
	a := c.Input("a")
	b := c.Input("b")
	sel := c.Input("sel")
	// out = sel ? b : a  built from primitive gates.
	selN := c.Not(sel)
	t1 := c.And(a, selN)
	t2 := c.And(b, sel)
	out := c.Or(t1, t2)
	if err := c.MarkOutput("out", out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		av, bv, sv := i&1 == 1, i&2 == 2, i&4 == 4
		got, err := c.Eval([]bool{av, bv, sv})
		if err != nil {
			t.Fatal(err)
		}
		want := av
		if sv {
			want = bv
		}
		if got[0] != want {
			t.Errorf("mux(%v,%v,%v) = %v, want %v", av, bv, sv, got[0], want)
		}
	}
}

func TestBuilderPanicsOnBadFanin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c := New("bad")
	c.And(0, 1) // no signals defined yet
}

func TestMarkOutputValidation(t *testing.T) {
	c := New("x")
	a := c.Input("a")
	if err := c.MarkOutput("ok", a); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkOutput("bad", Signal(99)); err == nil {
		t.Error("undefined output accepted")
	}
}

func TestEvalInputValidation(t *testing.T) {
	c := New("x")
	c.Input("a")
	if _, err := c.Eval(nil); err == nil {
		t.Error("wrong input count accepted")
	}
}

// TestRippleAdderExhaustive verifies the 4-bit adder against integer
// arithmetic for every input combination.
func TestRippleAdderExhaustive(t *testing.T) {
	c, err := RippleAdder(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Inputs() != 9 || c.Outputs() != 5 {
		t.Fatalf("ports = %d/%d", c.Inputs(), c.Outputs())
	}
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			for cin := 0; cin < 2; cin++ {
				in := make([]bool, 9)
				for i := 0; i < 4; i++ {
					in[i] = a>>i&1 == 1
					in[4+i] = b>>i&1 == 1
				}
				in[8] = cin == 1
				out, err := c.Eval(in)
				if err != nil {
					t.Fatal(err)
				}
				got := 0
				for i := 0; i < 5; i++ {
					if out[i] {
						got |= 1 << i
					}
				}
				if want := a + b + cin; got != want {
					t.Fatalf("%d+%d+%d = %d, want %d", a, b, cin, got, want)
				}
			}
		}
	}
}

func TestRippleAdderValidation(t *testing.T) {
	if _, err := RippleAdder(0); err == nil {
		t.Error("zero-width adder accepted")
	}
}

// TestPlacedEvalMatchesLogical: the technology-mapped design computes
// exactly what the gate-level netlist computes (for the adder this is
// a 512-vector equivalence check through the actual LUT cells).
func TestPlacedEvalMatchesLogical(t *testing.T) {
	c, err := RippleAdder(4)
	if err != nil {
		t.Fatal(err)
	}
	chip := nominalChip(t, 1)
	p, err := Place(c, chip)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Mapping.Cells) != c.LogicGates() {
		t.Fatalf("placed %d cells for %d gates", len(p.Mapping.Cells), c.LogicGates())
	}
	f := func(raw uint16) bool {
		in := make([]bool, 9)
		for i := 0; i < 9; i++ {
			in[i] = raw>>i&1 == 1
		}
		logical, err1 := c.Eval(in)
		placed, err2 := p.Eval(in)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range logical {
			if logical[i] != placed[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlaceValidation(t *testing.T) {
	chip := nominalChip(t, 2)
	empty := New("empty")
	empty.Input("a")
	if _, err := Place(empty, chip); err == nil {
		t.Error("gate-less circuit accepted")
	}
	noOut := New("noout")
	a := noOut.Input("a")
	noOut.Not(a)
	if _, err := Place(noOut, chip); err == nil {
		t.Error("output-less circuit accepted")
	}
	// Fabric exhaustion: a 16x16 chip holds 256 cells.
	big := New("big")
	x := big.Input("x")
	for i := 0; i < 300; i++ {
		x = big.Not(x)
	}
	if err := big.MarkOutput("y", x); err != nil {
		t.Fatal(err)
	}
	if _, err := Place(big, chip); err == nil {
		t.Error("oversized circuit accepted")
	}
}

func TestActivityFromTrace(t *testing.T) {
	c := New("pair")
	a := c.Input("a")
	b := c.Input("b")
	o := c.And(a, b)
	if err := c.MarkOutput("o", o); err != nil {
		t.Fatal(err)
	}
	chip := nominalChip(t, 3)
	p, err := Place(c, chip)
	if err != nil {
		t.Fatal(err)
	}
	// Trace: 3 of 4 rows at (1,1), one at (0,0).
	trace := [][]bool{{true, true}, {true, true}, {true, true}, {false, false}}
	phases, err := p.Activity(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 1 {
		t.Fatalf("phases for %d cells", len(phases))
	}
	if err := lut.ValidatePhases(phases[0]); err != nil {
		t.Fatalf("invalid phases: %v", err)
	}
	var w11, w00 float64
	for _, ph := range phases[0] {
		switch {
		case ph.In0 && ph.In1:
			w11 = ph.Weight
		case !ph.In0 && !ph.In1:
			w00 = ph.Weight
		default:
			t.Errorf("unexpected phase %+v", ph)
		}
	}
	if w11 != 0.75 || w00 != 0.25 {
		t.Errorf("weights = %v / %v", w11, w00)
	}
	if _, err := p.Activity(nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := p.Activity([][]bool{{true}}); err == nil {
		t.Error("short trace row accepted")
	}
}

func TestCriticalPathFreshAdder(t *testing.T) {
	c, err := RippleAdder(4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Place(c, nominalChip(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.CriticalPathNS(1.2)
	if err != nil {
		t.Fatal(err)
	}
	// Carry chain: depth 3 gates for bit 0 then 3 per subsequent bit
	// plus the final sum XOR; each gate ≈1.333 ns. Just pin the
	// plausible range and the exact fresh value's stability.
	if d < 8 || d > 20 {
		t.Errorf("fresh adder critical path = %v ns", d)
	}
}

// TestBiasedWorkloadAgesDifferently is Hypothesis 1 at circuit scale:
// two identical placed adders stressed for 24 h, one under a uniform
// input trace, one under an all-zeros idle trace, end with different
// critical-path degradation.
func TestBiasedWorkloadAgesDifferently(t *testing.T) {
	run := func(trace [][]bool) float64 {
		c, err := RippleAdder(4)
		if err != nil {
			t.Fatal(err)
		}
		chip := nominalChip(t, 5)
		p, err := Place(c, chip)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := p.CriticalPathNS(1.2)
		if err != nil {
			t.Fatal(err)
		}
		phases, err := p.Activity(trace)
		if err != nil {
			t.Fatal(err)
		}
		eng := stress.New(chip)
		eng.StressIdleCells = false
		if err := eng.AddActivity(stress.Activity{Mapping: p.Mapping, CellPhases: phases}); err != nil {
			t.Fatal(err)
		}
		if err := eng.Step(1.2, 110, 24*units.Hour); err != nil {
			t.Fatal(err)
		}
		aged, err := p.CriticalPathNS(1.2)
		if err != nil {
			t.Fatal(err)
		}
		return (aged - fresh) / fresh * 100
	}

	src := rng.New(99)
	uniform := make([][]bool, 256)
	for i := range uniform {
		row := make([]bool, 9)
		for j := range row {
			row[j] = src.Bernoulli(0.5)
		}
		uniform[i] = row
	}
	idle := [][]bool{make([]bool, 9)}

	uDeg := run(uniform)
	iDeg := run(idle)
	if uDeg <= 0 || iDeg <= 0 {
		t.Fatalf("no aging: uniform %.3f %%, idle %.3f %%", uDeg, iDeg)
	}
	if diff := uDeg - iDeg; diff == 0 {
		t.Error("workload bias invisible in aging")
	}
	// The idle (DC) pattern is the worst case, as the paper's AC/DC
	// experiment predicts.
	if iDeg <= uDeg {
		t.Errorf("static idle stress (%.3f %%) not above uniform activity (%.3f %%)", iDeg, uDeg)
	}
}

// TestRejuvenationHealsCriticalPath: after workload stress, a 6 h
// accelerated sleep recovers most of the adder's critical-path
// degradation — the paper's result transplanted onto real logic.
func TestRejuvenationHealsCriticalPath(t *testing.T) {
	c, err := RippleAdder(4)
	if err != nil {
		t.Fatal(err)
	}
	chip := nominalChip(t, 6)
	p, err := Place(c, chip)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := p.CriticalPathNS(1.2)
	if err != nil {
		t.Fatal(err)
	}
	phases, err := p.Activity([][]bool{make([]bool, 9)})
	if err != nil {
		t.Fatal(err)
	}
	eng := stress.New(chip)
	if err := eng.AddActivity(stress.Activity{Mapping: p.Mapping, CellPhases: phases}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(1.2, 110, 24*units.Hour); err != nil {
		t.Fatal(err)
	}
	aged, err := p.CriticalPathNS(1.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(-0.3, 110, 6*units.Hour); err != nil {
		t.Fatal(err)
	}
	healed, err := p.CriticalPathNS(1.2)
	if err != nil {
		t.Fatal(err)
	}
	frac := (aged - healed) / (aged - fresh)
	if frac < 0.6 || frac > 0.85 {
		t.Errorf("critical-path recovered fraction = %.3f, want ≈0.72", frac)
	}
}

// randomCircuit builds a pseudo-random DAG of n gates over k inputs,
// deterministic in the seed.
func randomCircuit(seed uint64, inputs, gates int) *Circuit {
	src := rng.New(seed)
	c := New("rand")
	var signals []Signal
	for i := 0; i < inputs; i++ {
		signals = append(signals, c.Input(string(rune('a'+i))))
	}
	kinds := []Kind{KindNot, KindBuf, KindAnd, KindOr, KindXor, KindNand, KindNor, KindXnor}
	for g := 0; g < gates; g++ {
		k := kinds[src.Intn(len(kinds))]
		a := signals[src.Intn(len(signals))]
		b := signals[src.Intn(len(signals))]
		var s Signal
		switch k {
		case KindNot:
			s = c.Not(a)
		case KindBuf:
			s = c.Buf(a)
		case KindAnd:
			s = c.And(a, b)
		case KindOr:
			s = c.Or(a, b)
		case KindXor:
			s = c.Xor(a, b)
		case KindNand:
			s = c.Nand(a, b)
		case KindNor:
			s = c.Nor(a, b)
		default:
			s = c.Xnor(a, b)
		}
		signals = append(signals, s)
	}
	// Mark the last few gates as outputs.
	for i := 0; i < 4 && i < gates; i++ {
		c.MarkOutput(string(rune('w'+i)), signals[len(signals)-1-i])
	}
	return c
}

// TestRandomCircuitFabricEquivalence is the mapping-correctness
// property over random logic: for pseudo-random DAGs and random input
// vectors, the placed design's LUT-level evaluation matches the
// gate-level netlist.
func TestRandomCircuitFabricEquivalence(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		circ := randomCircuit(seed, 6, 40)
		chip := nominalChip(t, 100+seed)
		placed, err := Place(circ, chip)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(seed * 31)
		for trial := 0; trial < 32; trial++ {
			in := make([]bool, 6)
			for j := range in {
				in[j] = src.Bernoulli(0.5)
			}
			logical, err := circ.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			mapped, err := placed.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			for o := range logical {
				if logical[o] != mapped[o] {
					t.Fatalf("seed %d trial %d output %d: logical %v, fabric %v",
						seed, trial, o, logical[o], mapped[o])
				}
			}
		}
		// STA runs on arbitrary circuits.
		if _, err := placed.CriticalPathNS(1.2); err != nil {
			t.Fatalf("seed %d STA: %v", seed, err)
		}
	}
}

func TestSTAFailsBelowThreshold(t *testing.T) {
	c, err := RippleAdder(2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Place(c, nominalChip(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CriticalPathNS(0.2); err == nil {
		t.Error("sub-threshold STA accepted")
	}
}

func BenchmarkPlaceAdder8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := RippleAdder(8)
		if err != nil {
			b.Fatal(err)
		}
		chip, err := fpga.NewChip("b", fpga.DefaultParams(), rng.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Place(c, chip); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSTAAdder8(b *testing.B) {
	c, err := RippleAdder(8)
	if err != nil {
		b.Fatal(err)
	}
	chip, err := fpga.NewChip("b", fpga.DefaultParams(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	p, err := Place(c, chip)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.CriticalPathNS(1.2); err != nil {
			b.Fatal(err)
		}
	}
}
