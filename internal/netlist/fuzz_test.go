package netlist

import (
	"sync"
	"testing"

	"selfheal/internal/fpga"
	"selfheal/internal/rng"
)

var (
	fuzzOnce   sync.Once
	fuzzPlaced *Placed
	fuzzErr    error
)

func fuzzAdder() (*Placed, error) {
	fuzzOnce.Do(func() {
		c, err := RippleAdder(8)
		if err != nil {
			fuzzErr = err
			return
		}
		chip, err := fpga.NewChip("fuzz", fpga.DefaultParams(), rng.New(1))
		if err != nil {
			fuzzErr = err
			return
		}
		fuzzPlaced, fuzzErr = Place(c, chip)
	})
	return fuzzPlaced, fuzzErr
}

// FuzzAdderFabricEquivalence checks, for arbitrary operands, that the
// technology-mapped adder computes integer addition through the actual
// LUT cells.
func FuzzAdderFabricEquivalence(f *testing.F) {
	f.Add(uint8(0), uint8(0), false)
	f.Add(uint8(255), uint8(255), true)
	f.Add(uint8(170), uint8(85), false)
	f.Fuzz(func(t *testing.T, a, b uint8, cin bool) {
		p, err := fuzzAdder()
		if err != nil {
			t.Fatal(err)
		}
		in := make([]bool, 17)
		for i := 0; i < 8; i++ {
			in[i] = a>>i&1 == 1
			in[8+i] = b>>i&1 == 1
		}
		in[16] = cin
		out, err := p.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for i := 0; i <= 8; i++ {
			if out[i] {
				got |= 1 << i
			}
		}
		want := int(a) + int(b)
		if cin {
			want++
		}
		if got != want {
			t.Fatalf("%d + %d + %v = %d through the fabric, want %d", a, b, cin, got, want)
		}
	})
}
