package plot

import (
	"strings"
	"testing"

	"selfheal/internal/series"
	"selfheal/internal/units"
)

func TestTableRendering(t *testing.T) {
	out := Table("Table X", []string{"Case", "Value"}, [][]string{
		{"AS110DC24", "2.2"},
		{"AC", "1.1"},
	})
	if !strings.Contains(out, "Table X") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "AS110DC24") || !strings.Contains(out, "2.2") {
		t.Error("missing cells")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Errorf("line count = %d: %q", len(lines), out)
	}
	// Columns aligned: both data rows place the second column at the
	// same offset.
	if strings.Index(lines[3], "2.2") != strings.Index(lines[4], "1.1") {
		t.Error("columns not aligned")
	}
}

func TestTableNoTitle(t *testing.T) {
	out := Table("", []string{"A"}, [][]string{{"1"}})
	if strings.HasPrefix(out, "\n") {
		t.Error("leading blank line with empty title")
	}
}

func TestLinesRendersMarkers(t *testing.T) {
	a := series.New("rising")
	b := series.New("falling")
	for i := 0; i <= 10; i++ {
		a.Add(units.Seconds(i), float64(i))
		b.Add(units.Seconds(i), float64(10-i))
	}
	out := Lines("Fig", 40, 10, a, b)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing series markers")
	}
	if !strings.Contains(out, "rising") || !strings.Contains(out, "falling") {
		t.Error("missing legend")
	}
	if !strings.Contains(out, "Fig") {
		t.Error("missing title")
	}
}

func TestLinesEmpty(t *testing.T) {
	out := Lines("Empty", 40, 10)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart output: %q", out)
	}
	out = Lines("Empty2", 40, 10, series.New("void"))
	if !strings.Contains(out, "no data") {
		t.Errorf("empty-series chart output: %q", out)
	}
}

func TestLinesConstantSeries(t *testing.T) {
	s := series.New("flat")
	s.Add(0, 5)
	s.Add(10, 5)
	out := Lines("Flat", 30, 6, s)
	if !strings.Contains(out, "*") {
		t.Error("constant series not plotted")
	}
}

func TestLinesSinglePoint(t *testing.T) {
	s := series.New("dot")
	s.Add(3, 7)
	out := Lines("Dot", 30, 6, s)
	if !strings.Contains(out, "*") {
		t.Error("single point not plotted")
	}
}

func TestLinesClampsTinyDimensions(t *testing.T) {
	s := series.New("x")
	s.Add(0, 0)
	s.Add(1, 1)
	out := Lines("tiny", 1, 1, s)
	if out == "" {
		t.Error("no output for tiny dimensions")
	}
}
