// Package plot renders the reproduction's tables and figures as plain
// text: fixed-width tables and ASCII line charts, so every artifact the
// paper prints can be regenerated in a terminal and diffed in CI.
package plot

import (
	"fmt"
	"math"
	"strings"

	"selfheal/internal/series"
)

// Table renders rows under a header with column alignment.
func Table(title string, header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// markers cycles through per-series glyphs.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Lines renders one or more series as an ASCII chart of the given size,
// with a shared linear axis range covering all points and a legend. An
// empty input or series without points yields a note instead of a
// panic.
func Lines(title string, width, height int, ss ...*series.Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	var pts int
	for _, s := range ss {
		pts += s.Len()
	}
	if len(ss) == 0 || pts == 0 {
		return title + "\n(no data)\n"
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range ss {
		for _, p := range s.Points {
			minX = math.Min(minX, float64(p.T))
			maxX = math.Max(maxX, float64(p.T))
			minY = math.Min(minY, p.V)
			maxY = math.Max(maxY, p.V)
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range ss {
		mark := markers[si%len(markers)]
		for _, p := range s.Points {
			c := int(math.Round((float64(p.T) - minX) / (maxX - minX) * float64(width-1)))
			r := int(math.Round((p.V - minY) / (maxY - minY) * float64(height-1)))
			row := height - 1 - r
			if row >= 0 && row < height && c >= 0 && c < width {
				grid[row][c] = mark
			}
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	fmt.Fprintf(&b, "%10.3g ┤", maxY)
	b.WriteString(string(grid[0]))
	b.WriteByte('\n')
	for r := 1; r < height-1; r++ {
		b.WriteString("           │")
		b.WriteString(string(grid[r]))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%10.3g ┤%s\n", minY, string(grid[height-1]))
	fmt.Fprintf(&b, "            %-*s\n", width,
		fmt.Sprintf("t: %.3g … %.3g s", minX, maxX))
	for si, s := range ss {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}
