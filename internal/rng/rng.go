// Package rng supplies the deterministic pseudo-random number generation
// used by every stochastic component in the library: measurement noise,
// process variation, trap time constants and thermal-chamber fluctuation.
//
// The library never touches math/rand's global state; every consumer owns
// an *rng.Source seeded explicitly, so full experiments replay bit-for-bit
// from a single seed — essential when "measurements" come from simulation
// and figures must regenerate identically.
//
// The core generator is SplitMix64 (Steele, Lea & Flood, OOPSLA'14): a
// 64-bit state, one add and three xor-shift-multiply steps per output.
// It passes BigCrush, is trivially seedable from any 64-bit value, and
// supports cheap stream splitting for independent sub-generators.
package rng

import "math"

// Source is a deterministic SplitMix64 generator. The zero value is a
// valid generator seeded with 0.
type Source struct {
	state uint64
}

// New returns a Source seeded with the given value. Distinct seeds give
// statistically independent streams.
func New(seed uint64) *Source { return &Source{state: seed} }

// Split derives an independent child generator from the current state.
// The parent advances, so successive Split calls give distinct children.
// Use it to hand each chip / trap ensemble / sensor its own stream so
// adding a consumer doesn't perturb the draws seen by the others.
func (s *Source) Split() *Source {
	// The golden-gamma increment of SplitMix64 guarantees child streams
	// with full period; mixing the raw output again decorrelates them.
	return &Source{state: s.Uint64() * 0xbf58476d1ce4e5b9}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform variate in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform variate in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Multiply-shift rejection-free mapping is fine here: bias is below
	// 2^-32 for any n this library uses (grid sizes, trap counts).
	return int(s.Uint64() % uint64(n))
}

// Normal returns a standard normal variate via the Box–Muller transform.
func (s *Source) Normal() float64 {
	// Draw u1 in (0,1] to keep the log finite.
	u1 := 1 - s.Float64()
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormalWith returns a normal variate with the given mean and standard
// deviation. A non-positive sigma returns the mean exactly, which lets
// callers disable a noise source by configuration without branching.
func (s *Source) NormalWith(mean, sigma float64) float64 {
	if sigma <= 0 {
		return mean
	}
	return mean + sigma*s.Normal()
}

// LogUniform returns a variate whose logarithm is uniform on
// [log lo, log hi]. BTI trap capture/emission time constants span many
// decades and are conventionally drawn log-uniformly (Velamala DAC'12).
// It panics unless 0 < lo <= hi.
func (s *Source) LogUniform(lo, hi float64) float64 {
	if lo <= 0 || hi < lo {
		panic("rng: LogUniform requires 0 < lo <= hi")
	}
	return math.Exp(s.Uniform(math.Log(lo), math.Log(hi)))
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n) using
// Fisher–Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
