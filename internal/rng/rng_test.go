package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical draws from distinct seeds", same)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	// Must not panic and must produce varying output.
	x, y := s.Uint64(), s.Uint64()
	if x == y {
		t.Error("zero-value source produced repeated output")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.state == c2.state {
		t.Fatal("successive splits share state")
	}
	// Child streams should not be shift-correlated with each other.
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between split streams", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestUniformMoments(t *testing.T) {
	s := New(11)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Uniform(2, 6)
		if x < 2 || x >= 6 {
			t.Fatalf("Uniform(2,6) out of range: %v", x)
		}
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-4) > 0.02 {
		t.Errorf("mean = %v, want ~4", mean)
	}
	// Var of U(2,6) is (6-2)^2/12 = 4/3.
	if math.Abs(variance-4.0/3) > 0.03 {
		t.Errorf("variance = %v, want ~1.333", variance)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestNormalWith(t *testing.T) {
	s := New(17)
	// sigma <= 0 disables the noise source.
	if got := s.NormalWith(5, 0); got != 5 {
		t.Errorf("NormalWith(5,0) = %v", got)
	}
	if got := s.NormalWith(5, -1); got != 5 {
		t.Errorf("NormalWith(5,-1) = %v", got)
	}
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.NormalWith(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Errorf("mean = %v, want ~10", mean)
	}
}

func TestLogUniformRangeAndShape(t *testing.T) {
	s := New(19)
	lo, hi := 1e-6, 1e6
	belowOne := 0
	const n = 100000
	for i := 0; i < n; i++ {
		x := s.LogUniform(lo, hi)
		if x < lo || x > hi {
			t.Fatalf("LogUniform out of range: %v", x)
		}
		if x < 1 {
			belowOne++
		}
	}
	// log-midpoint of [1e-6, 1e6] is 1, so about half below 1.
	if frac := float64(belowOne) / n; math.Abs(frac-0.5) > 0.02 {
		t.Errorf("fraction below log-midpoint = %v, want ~0.5", frac)
	}
}

func TestLogUniformPanics(t *testing.T) {
	s := New(1)
	for _, c := range []struct{ lo, hi float64 }{{0, 1}, {-1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LogUniform(%v,%v) did not panic", c.lo, c.hi)
				}
			}()
			s.LogUniform(c.lo, c.hi)
		}()
	}
}

func TestIntn(t *testing.T) {
	s := New(23)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Intn(10)]++
	}
	for v, c := range counts {
		if math.Abs(float64(c)-n/10) > n/10*0.1 {
			t.Errorf("value %d drawn %d times, want ~%d", v, c, n/10)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulli(t *testing.T) {
	s := New(29)
	if s.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !s.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.25) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bernoulli(0.25) rate = %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(31)
	f := func(seed uint64) bool {
		p := New(seed).Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	_ = s
}

func TestPermEmpty(t *testing.T) {
	if p := New(1).Perm(0); len(p) != 0 {
		t.Errorf("Perm(0) = %v", p)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Normal()
	}
}
