package supply

import (
	"math"
	"testing"

	"selfheal/internal/units"
)

func newPSU(t *testing.T) *PSU {
	t.Helper()
	s, err := NewPSU(DefaultPSUParams())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPSUDefaultsValid(t *testing.T) {
	if err := DefaultPSUParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPSUValidate(t *testing.T) {
	mods := []func(*PSUParams){
		func(p *PSUParams) { p.Nominal = 0 },
		func(p *PSUParams) { p.MaxV = 1.0 },
		func(p *PSUParams) { p.MinV = 0 },
		func(p *PSUParams) { p.StepV = 0 },
		func(p *PSUParams) { p.NoiseVpp = -1 },
	}
	for i, mod := range mods {
		p := DefaultPSUParams()
		mod(&p)
		if _, err := NewPSU(p); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestPSUPowersUpNominal(t *testing.T) {
	s := newPSU(t)
	if s.Rail() != RailNominal || s.Voltage() != 1.2 {
		t.Errorf("power-up state: %v %v", s.Rail(), s.Voltage())
	}
}

func TestPSUGate(t *testing.T) {
	s := newPSU(t)
	s.Gate()
	if s.Rail() != RailGated || s.Voltage() != 0 {
		t.Errorf("gated state: %v %v", s.Rail(), s.Voltage())
	}
	s.SetNominal()
	if s.Rail() != RailNominal || s.Voltage() != 1.2 {
		t.Errorf("back to nominal: %v %v", s.Rail(), s.Voltage())
	}
}

func TestPSUSetNegative(t *testing.T) {
	s := newPSU(t)
	if err := s.SetNegative(-0.3); err != nil {
		t.Fatal(err)
	}
	if s.Rail() != RailNegative || math.Abs(float64(s.Voltage()+0.3)) > 1e-9 {
		t.Errorf("negative state: %v %v", s.Rail(), s.Voltage())
	}
	// Errors leave the rail untouched.
	if err := s.SetNegative(0.3); err == nil {
		t.Error("positive value accepted by SetNegative")
	}
	if err := s.SetNegative(-2); err == nil {
		t.Error("below-minimum rail accepted")
	}
	if s.Voltage() != -0.3 {
		t.Error("failed SetNegative disturbed the rail")
	}
}

func TestPSUSetStress(t *testing.T) {
	s := newPSU(t)
	if err := s.SetStress(1.32); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(s.Voltage()-1.32)) > 1e-9 {
		t.Errorf("stress voltage = %v", s.Voltage())
	}
	if err := s.SetStress(0); err == nil {
		t.Error("zero stress voltage accepted")
	}
	if err := s.SetStress(2); err == nil {
		t.Error("above-maximum stress voltage accepted")
	}
}

func TestPSUQuantization(t *testing.T) {
	s := newPSU(t)
	if err := s.SetNegative(-0.2994); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(s.Voltage()+0.299)) > 1e-9 {
		t.Errorf("quantized voltage = %v, want -0.299", s.Voltage())
	}
}

func TestRailString(t *testing.T) {
	if RailNominal.String() != "nominal" || RailGated.String() != "gated" || RailNegative.String() != "negative" {
		t.Error("Rail names wrong")
	}
}

func TestClockGen(t *testing.T) {
	c, err := NewClockGen(500)
	if err != nil {
		t.Fatal(err)
	}
	if c.Frequency() != 500 {
		t.Errorf("freq = %v", c.Frequency())
	}
	if got := c.GateWindow(); math.Abs(float64(got)-0.002) > 1e-12 {
		t.Errorf("gate window = %v, want 2 ms", got)
	}
	if _, err := NewClockGen(0); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := NewClockGen(-1); err == nil {
		t.Error("negative frequency accepted")
	}
}

// TestNegativeRailFeasibility encodes Section 6.1: the paper's modest
// −0.3 V rail is implementable on-chip, while an aggressive −0.5 V rail
// blows the GIDL budget, and −0.7 V additionally reaches junction
// breakdown.
func TestNegativeRailFeasibility(t *testing.T) {
	p := DefaultNegVGenParams()

	ok, err := CheckNegativeRail(p, -0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !ok.OK {
		t.Errorf("-0.3 V infeasible: %v", ok.Reasons)
	}
	if ok.GIDLNAPerCell <= 0 || ok.AreaPerCellUM2 != p.AreaPerCellUM2 {
		t.Errorf("feasibility details missing: %+v", ok)
	}
	// 60 % pump efficiency → ≈66.7 % power overhead.
	if math.Abs(ok.PumpPowerOverheadPct-66.7) > 0.1 {
		t.Errorf("pump overhead = %v %%", ok.PumpPowerOverheadPct)
	}

	bad, err := CheckNegativeRail(p, -0.5)
	if err != nil {
		t.Fatal(err)
	}
	if bad.OK || len(bad.Reasons) != 1 {
		t.Errorf("-0.5 V should fail on GIDL only: %+v", bad)
	}

	worse, err := CheckNegativeRail(p, -0.7)
	if err != nil {
		t.Fatal(err)
	}
	if worse.OK || len(worse.Reasons) != 2 {
		t.Errorf("-0.7 V should fail on GIDL and breakdown: %+v", worse)
	}
}

func TestCheckNegativeRailRejectsPositive(t *testing.T) {
	if _, err := CheckNegativeRail(DefaultNegVGenParams(), 0.3); err == nil {
		t.Error("positive candidate accepted")
	}
	if _, err := CheckNegativeRail(DefaultNegVGenParams(), 0); err == nil {
		t.Error("zero candidate accepted")
	}
}

func TestGIDLMonotoneInMagnitude(t *testing.T) {
	p := DefaultNegVGenParams()
	prev := 0.0
	for _, v := range []units.Volt{-0.1, -0.2, -0.3, -0.4, -0.5} {
		f, err := CheckNegativeRail(p, v)
		if err != nil {
			t.Fatal(err)
		}
		if f.GIDLNAPerCell <= prev {
			t.Errorf("GIDL not increasing at %v: %v", v, f.GIDLNAPerCell)
		}
		prev = f.GIDLNAPerCell
	}
}
