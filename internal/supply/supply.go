// Package supply models the bench instrumentation and on-chip power
// infrastructure of the paper's experiments: the DC power supply that
// drives the FPGA core rail at its nominal 1.2 V, power gating (0 V
// sleep), the −0.3 V negative rail used for accelerated self-healing,
// and the external clock generator (fref = 500 Hz) that gates the RO
// counter.
//
// It also encodes the Section 6.1 feasibility analysis for *on-chip*
// negative-voltage generation: the chosen rail must stay above the
// lateral pn-junction breakdown limit, within the GIDL leakage budget,
// and the charge-pump area/power overheads are reported so a designer
// can judge the trade-off the paper discusses.
package supply

import (
	"errors"
	"fmt"
	"math"

	"selfheal/internal/units"
)

// Rail is the state of the core supply rail.
type Rail uint8

const (
	RailNominal  Rail = iota // operating voltage (stress during activity)
	RailGated                // 0 V power gating (passive recovery)
	RailNegative             // negative voltage (accelerated recovery)
)

// String names the rail state.
func (r Rail) String() string {
	switch r {
	case RailGated:
		return "gated"
	case RailNegative:
		return "negative"
	default:
		return "nominal"
	}
}

// PSUParams configures the bench power supply.
type PSUParams struct {
	Nominal  units.Volt // nominal core voltage (1.2 V)
	MaxV     units.Volt // most positive programmable voltage
	MinV     units.Volt // most negative programmable voltage
	StepV    units.Volt // programming resolution
	NoiseVpp units.Volt // peak-to-peak output ripple (ignored by the model, reported)
}

// DefaultPSUParams matches the paper's bench: a supply programmable
// from −1 V to +1.5 V around the 1.2 V nominal with millivolt setting
// resolution.
func DefaultPSUParams() PSUParams {
	return PSUParams{
		Nominal:  1.2,
		MaxV:     1.5,
		MinV:     -1.0,
		StepV:    0.001,
		NoiseVpp: 0.002,
	}
}

// Validate reports whether the PSU parameters are consistent.
func (p PSUParams) Validate() error {
	switch {
	case p.Nominal <= 0:
		return errors.New("supply: nominal voltage must be positive")
	case p.MaxV < p.Nominal:
		return errors.New("supply: MaxV below nominal")
	case p.MinV >= 0:
		return errors.New("supply: MinV must be negative to support accelerated recovery")
	case p.StepV <= 0:
		return errors.New("supply: StepV must be positive")
	case p.NoiseVpp < 0:
		return errors.New("supply: ripple must be non-negative")
	}
	return nil
}

// PSU is the programmable core supply.
type PSU struct {
	params PSUParams
	rail   Rail
	v      units.Volt
}

// NewPSU returns a supply powered up at the nominal voltage.
func NewPSU(p PSUParams) (*PSU, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &PSU{params: p, rail: RailNominal, v: p.Nominal}, nil
}

// Voltage returns the present rail voltage.
func (s *PSU) Voltage() units.Volt { return s.v }

// Rail returns the present rail state.
func (s *PSU) Rail() Rail { return s.rail }

// SetNominal drives the rail at the nominal operating voltage.
func (s *PSU) SetNominal() {
	s.rail = RailNominal
	s.v = s.params.Nominal
}

// Gate power-gates the rail to 0 V (the conventional sleep mode: the
// paper's point is that this only buys slow passive recovery).
func (s *PSU) Gate() {
	s.rail = RailGated
	s.v = 0
}

// SetNegative programs a negative recovery voltage. The argument is the
// rail voltage (e.g. −0.3); passing a non-negative value or a voltage
// outside the programmable range is an error and leaves the rail
// unchanged.
func (s *PSU) SetNegative(v units.Volt) error {
	if v >= 0 {
		return fmt.Errorf("supply: negative rail must be < 0, got %v", v)
	}
	if v < s.params.MinV {
		return fmt.Errorf("supply: %v below programmable minimum %v", v, s.params.MinV)
	}
	s.rail = RailNegative
	s.v = quantize(v, s.params.StepV)
	return nil
}

// SetStress programs an elevated (or reduced) positive stress voltage,
// for accelerated wearout testing at other-than-nominal bias.
func (s *PSU) SetStress(v units.Volt) error {
	if v <= 0 {
		return fmt.Errorf("supply: stress voltage must be positive, got %v", v)
	}
	if v > s.params.MaxV {
		return fmt.Errorf("supply: %v above programmable maximum %v", v, s.params.MaxV)
	}
	s.rail = RailNominal
	s.v = quantize(v, s.params.StepV)
	return nil
}

func quantize(v, step units.Volt) units.Volt {
	return units.Volt(math.Round(float64(v)/float64(step))) * step
}

// ClockGen is the external reference clock that gates the RO counter.
type ClockGen struct {
	freq units.Hertz
}

// NewClockGen returns a generator at the given frequency; the paper
// uses 500 Hz.
func NewClockGen(f units.Hertz) (*ClockGen, error) {
	if f <= 0 {
		return nil, fmt.Errorf("supply: clock frequency must be positive, got %v", f)
	}
	return &ClockGen{freq: f}, nil
}

// Frequency returns the reference frequency.
func (c *ClockGen) Frequency() units.Hertz { return c.freq }

// GateWindow returns the counter gating window: one reference period.
func (c *ClockGen) GateWindow() units.Seconds {
	return units.Seconds(1 / float64(c.freq))
}

// NegVGenParams describes an on-chip negative-voltage generator (charge
// pump), for the Section 6.1 feasibility analysis.
type NegVGenParams struct {
	// BreakdownV is the lateral pn-junction breakdown limit: the rail
	// magnitude must stay strictly below it.
	BreakdownV units.Volt
	// GIDLBudgetNA is the tolerable gate-induced drain leakage in
	// nanoamps per cell; GIDL grows exponentially with the negative
	// rail magnitude.
	GIDLBudgetNA float64
	// GIDL0NA and GIDLSlopeVPerDecade parameterize the GIDL current:
	// I = GIDL0 · 10^(|V| / slope).
	GIDL0NA             float64
	GIDLSlopeVPerDecade float64
	// AreaPerCellUM2 and EfficiencyPct model the charge-pump overhead:
	// pump area in µm² per supplied cell and power conversion
	// efficiency.
	AreaPerCellUM2 float64
	EfficiencyPct  float64
}

// DefaultNegVGenParams returns 40 nm-class feasibility constants: a
// 0.6 V junction limit, tens of nA GIDL budget, and a charge pump in
// the 50–70 % efficiency range.
func DefaultNegVGenParams() NegVGenParams {
	return NegVGenParams{
		BreakdownV:          0.6,
		GIDLBudgetNA:        50,
		GIDL0NA:             1,
		GIDLSlopeVPerDecade: 0.25,
		AreaPerCellUM2:      1.8,
		EfficiencyPct:       60,
	}
}

// Feasibility is the outcome of checking a candidate negative rail.
type Feasibility struct {
	RailV          units.Volt
	OK             bool
	Reasons        []string // violated constraints, empty when OK
	GIDLNAPerCell  float64  // predicted GIDL at this rail
	AreaPerCellUM2 float64
	// PumpPowerOverheadPct is the extra power drawn by the pump as a
	// percentage of the delivered recovery-mode power.
	PumpPowerOverheadPct float64
}

// CheckNegativeRail evaluates the Section 6.1 constraints for a
// candidate on-chip negative rail voltage (must be < 0).
func CheckNegativeRail(p NegVGenParams, rail units.Volt) (Feasibility, error) {
	if rail >= 0 {
		return Feasibility{}, fmt.Errorf("supply: candidate rail must be negative, got %v", rail)
	}
	mag := float64(-rail)
	f := Feasibility{
		RailV:          rail,
		GIDLNAPerCell:  p.GIDL0NA * math.Pow(10, mag/p.GIDLSlopeVPerDecade),
		AreaPerCellUM2: p.AreaPerCellUM2,
	}
	if p.EfficiencyPct > 0 {
		f.PumpPowerOverheadPct = (100/p.EfficiencyPct - 1) * 100
	}
	if units.Volt(mag) >= p.BreakdownV {
		f.Reasons = append(f.Reasons,
			fmt.Sprintf("|%v| reaches the %v junction breakdown limit", rail, p.BreakdownV))
	}
	if f.GIDLNAPerCell > p.GIDLBudgetNA {
		f.Reasons = append(f.Reasons,
			fmt.Sprintf("GIDL %.1f nA exceeds the %.1f nA budget", f.GIDLNAPerCell, p.GIDLBudgetNA))
	}
	f.OK = len(f.Reasons) == 0
	return f, nil
}
