package ro

import (
	"math"
	"testing"

	"selfheal/internal/fpga"
	"selfheal/internal/rng"
)

func nominalChip(t *testing.T, seed uint64) *fpga.Chip {
	t.Helper()
	p := fpga.DefaultParams()
	p.ChipSigmaFrac = 0
	p.LocalSigmaFrac = 0
	p.VthSigmaV = 0
	c, err := fpga.NewChip("nom", p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newRO(t *testing.T, chip *fpga.Chip, seed uint64) *Oscillator {
	t.Helper()
	o, err := New(chip, "cut", DefaultParams(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mods := []func(*Params){
		func(p *Params) { p.Stages = 0 },
		func(p *Params) { p.Stages = 74 }, // even rings latch
		func(p *Params) { p.CounterBits = 0 },
		func(p *Params) { p.CounterBits = 33 },
		func(p *Params) { p.FRef = 0 },
		func(p *Params) { p.NoiseCounts = -1 },
		func(p *Params) { p.SampleTime = -1 },
	}
	for i, mod := range mods {
		p := DefaultParams()
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

// TestFreshFrequencyCalibration pins the 5 MHz-class fresh oscillator:
// 75 stages × 1.3333 ns gives Td ≈ 100 ns, fosc ≈ 5 MHz, Cout ≈ 5000.
func TestFreshFrequencyCalibration(t *testing.T) {
	o := newRO(t, nominalChip(t, 1), 1)
	f, err := o.TrueFrequency(1.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(f)-5e6) > 0.01e6 {
		t.Errorf("fresh fosc = %v, want ≈5 MHz", f)
	}
	m, err := o.Measure(1.2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Counts < 4990 || m.Counts > 5010 {
		t.Errorf("Cout = %d, want ≈5000", m.Counts)
	}
	if math.Abs(m.DelayNS-100) > 0.5 {
		t.Errorf("Td = %v ns, want ≈100", m.DelayNS)
	}
}

// TestEq14Eq15RoundTrip checks the counter arithmetic: fosc = 2·Cout·fref
// and Td = 1/(4·Cout·fref).
func TestEq14Eq15RoundTrip(t *testing.T) {
	o := newRO(t, nominalChip(t, 2), 2)
	m, err := o.Measure(1.2)
	if err != nil {
		t.Fatal(err)
	}
	wantF := 2 * float64(m.Counts) * 500
	if math.Abs(float64(m.Fosc)-wantF) > 1e-9 {
		t.Errorf("Eq14: fosc = %v, want %v", m.Fosc, wantF)
	}
	wantTd := 1 / (4 * float64(m.Counts) * 500) * 1e9
	if math.Abs(m.DelayNS-wantTd) > 1e-9 {
		t.Errorf("Eq15: Td = %v, want %v", m.DelayNS, wantTd)
	}
}

func TestCounterNoiseWithinBand(t *testing.T) {
	o := newRO(t, nominalChip(t, 3), 3)
	f, _ := o.TrueFrequency(1.2)
	ideal := int(float64(f) / 1000)
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		c, err := o.Count(1.2)
		if err != nil {
			t.Fatal(err)
		}
		if c < ideal-5 || c > ideal+5 {
			t.Fatalf("count %d outside ±5 of %d", c, ideal)
		}
		seen[c] = true
	}
	if len(seen) < 5 {
		t.Errorf("noise too quiet: only %d distinct counts", len(seen))
	}
}

func TestMeasureAveragedReducesNoise(t *testing.T) {
	o := newRO(t, nominalChip(t, 4), 4)
	single := make([]float64, 50)
	averaged := make([]float64, 50)
	for i := range single {
		m, err := o.Measure(1.2)
		if err != nil {
			t.Fatal(err)
		}
		single[i] = m.DelayNS
		a, err := o.MeasureAveraged(1.2, 25)
		if err != nil {
			t.Fatal(err)
		}
		averaged[i] = a.DelayNS
	}
	spread := func(xs []float64) float64 {
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return hi - lo
	}
	if spread(averaged) >= spread(single) {
		t.Errorf("averaging did not reduce spread: %v vs %v", spread(averaged), spread(single))
	}
	if _, err := o.MeasureAveraged(1.2, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestFreezeBlocksMeasurement(t *testing.T) {
	o := newRO(t, nominalChip(t, 5), 5)
	o.Freeze(true)
	if o.Enabled() || !o.FrozenInput() {
		t.Error("freeze state wrong")
	}
	if _, err := o.TrueFrequency(1.2); err == nil {
		t.Error("frozen RO measured")
	}
	if _, err := o.Measure(1.2); err == nil {
		t.Error("frozen RO measured")
	}
	o.Enable()
	if _, err := o.Measure(1.2); err != nil {
		t.Errorf("re-enabled RO failed: %v", err)
	}
}

func TestStagePhasesFollowMode(t *testing.T) {
	o := newRO(t, nominalChip(t, 6), 6)
	if got := o.StagePhases(0); len(got) != 2 {
		t.Errorf("enabled phases = %v", got)
	}
	o.Freeze(true)
	p0 := o.StagePhases(0)
	p1 := o.StagePhases(1)
	if len(p0) != 1 || p0[0].In0 != true {
		t.Errorf("frozen stage 0 phases = %v", p0)
	}
	if len(p1) != 1 || p1[0].In0 != false {
		t.Errorf("frozen stage 1 phases = %v (must alternate)", p1)
	}
}

func TestCounterOverflow(t *testing.T) {
	p := DefaultParams()
	p.Stages = 3 // 4 ns chain → 125 MHz → count 125000 ≫ 16 bits
	o, err := New(nominalChip(t, 7), "short", p, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Count(1.2); err == nil {
		t.Error("overflow undetected")
	}
	if _, err := o.Measure(1.2); err == nil {
		t.Error("overflow undetected by Measure")
	}
}

func TestMeasurementSupplyError(t *testing.T) {
	o := newRO(t, nominalChip(t, 8), 8)
	if _, err := o.Measure(0.2); err == nil {
		t.Error("sub-threshold supply accepted")
	}
}

func TestDegradationPct(t *testing.T) {
	fresh := Measurement{Fosc: 5e6}
	aged := Measurement{Fosc: 4.9e6}
	if got := DegradationPct(fresh, aged); math.Abs(got-2) > 1e-9 {
		t.Errorf("degradation = %v %%, want 2", got)
	}
	if got := DegradationPct(fresh, fresh); got != 0 {
		t.Errorf("self-degradation = %v", got)
	}
}

func TestFrequencySlowsOnLowerSupply(t *testing.T) {
	o := newRO(t, nominalChip(t, 9), 9)
	nominal, err := o.TrueFrequency(1.2)
	if err != nil {
		t.Fatal(err)
	}
	low, err := o.TrueFrequency(1.1)
	if err != nil {
		t.Fatal(err)
	}
	if low >= nominal {
		t.Errorf("frequency did not drop at lower supply: %v vs %v", low, nominal)
	}
}

// TestChipVariationVisibleInFrequency reproduces the paper's
// observation that fresh ROs on different chips differ (hence the RD
// metric): two chips with process variation give different fresh counts.
func TestChipVariationVisibleInFrequency(t *testing.T) {
	p := fpga.DefaultParams()
	src := rng.New(42)
	freqs := make([]float64, 3)
	for i := range freqs {
		chip, err := fpga.NewChip("c", p, src.Split())
		if err != nil {
			t.Fatal(err)
		}
		o, err := New(chip, "cut", DefaultParams(), rng.New(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		f, err := o.TrueFrequency(1.2)
		if err != nil {
			t.Fatal(err)
		}
		freqs[i] = float64(f)
	}
	if freqs[0] == freqs[1] && freqs[1] == freqs[2] {
		t.Error("process variation invisible in fresh frequencies")
	}
}

// TestLocationSweep mirrors the paper's diagnostic procedure ("the CUT
// is placed at different locations on the FPGA and a diagnostic
// program is run"): short oscillators mapped across the die report
// different frequencies from within-die variation, and the spread is
// bounded by the process model.
func TestLocationSweep(t *testing.T) {
	chip, err := fpga.NewChip("sweep", fpga.DefaultParams(), rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	var freqs []float64
	for loc := 0; loc < 8; loc++ {
		m, err := chip.MapCells(string(rune('a'+loc)), 25)
		if err != nil {
			t.Fatal(err)
		}
		for _, cell := range m.Cells {
			cell.ConfigureInverter()
		}
		d, err := m.MeasuredDelay(1.2)
		if err != nil {
			t.Fatal(err)
		}
		freqs = append(freqs, 1/(2*d*1e-9))
	}
	lo, hi := freqs[0], freqs[0]
	for _, f := range freqs {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	spread := (hi - lo) / lo
	if spread == 0 {
		t.Error("no location-to-location variation visible")
	}
	// 25 stages × 4 POI devices with 0.3 % local σ averages to well
	// under 1 % chain-to-chain.
	if spread > 0.01 {
		t.Errorf("location spread %.4f implausibly wide", spread)
	}
}

func BenchmarkMeasure(b *testing.B) {
	p := fpga.DefaultParams()
	chip, err := fpga.NewChip("b", p, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	o, err := New(chip, "cut", DefaultParams(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Measure(1.2); err != nil {
			b.Fatal(err)
		}
	}
}
