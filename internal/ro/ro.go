// Package ro implements the paper's delay sensor (Fig. 3): a ring
// oscillator of 75 LUT inverters — the circuit under test (CUT) — whose
// output clocks a 16-bit counter gated by an external reference clock.
// The counter value Cout relates to the oscillation frequency by
//
//	fosc = 2·Cout·fref                    (Eq. 14)
//	Td   = 1/(2·fosc) = 1/(4·Cout·fref)   (Eq. 15)
//
// where Td is the one-pass CUT delay. An En signal switches the CUT
// between AC stress (oscillating) and DC stress (frozen); during data
// recording in DC test cases the RO wakes for under three seconds,
// a negligible aging contribution the experiment harness still models.
//
// The counter read-out carries the paper's reported noise: repeated
// readings vary within ±5 counts at fref = 500 Hz, everything else held
// constant.
package ro

import (
	"errors"
	"fmt"

	"selfheal/internal/fpga"
	"selfheal/internal/lut"
	"selfheal/internal/rng"
	"selfheal/internal/units"
)

// Params configures a ring-oscillator sensor.
type Params struct {
	Stages      int         // number of LUT inverters (75 in the paper)
	CounterBits int         // counter width (16 in the paper)
	FRef        units.Hertz // reference clock (500 Hz in the paper)
	NoiseCounts int         // peak read-out noise in counts (±5)
	SampleTime  units.Seconds
}

// DefaultParams matches the paper's test configuration.
func DefaultParams() Params {
	return Params{
		Stages:      75,
		CounterBits: 16,
		FRef:        500,
		NoiseCounts: 5,
		SampleTime:  3, // "data sampling overhead is less than 3 s"
	}
}

// Validate reports whether the sensor parameters are usable. The stage
// count must be odd: an even inverter ring latches instead of
// oscillating.
func (p Params) Validate() error {
	switch {
	case p.Stages <= 0:
		return errors.New("ro: stage count must be positive")
	case p.Stages%2 == 0:
		return errors.New("ro: stage count must be odd to oscillate")
	case p.CounterBits <= 0 || p.CounterBits > 32:
		return errors.New("ro: counter width must be in 1..32")
	case p.FRef <= 0:
		return errors.New("ro: reference clock must be positive")
	case p.NoiseCounts < 0:
		return errors.New("ro: noise must be non-negative")
	case p.SampleTime < 0:
		return errors.New("ro: sample time must be non-negative")
	}
	return nil
}

// Oscillator is one mapped RO sensor on a chip.
type Oscillator struct {
	params  Params
	mapping *fpga.Mapping
	src     *rng.Source
	enabled bool // En: true = oscillating (AC), false = frozen (DC)
	frozen  bool // the chain input value while frozen
}

// Measurement is one counter read-out converted per Eqs. 14–15.
type Measurement struct {
	Counts  int         // raw gated counter value Cout
	Fosc    units.Hertz // 2·Cout·fref
	DelayNS float64     // 1/(2·fosc) in nanoseconds
}

// New maps a Stages-long inverter chain named name onto the chip and
// returns the sensor. The RO powers up enabled (oscillating).
func New(chip *fpga.Chip, name string, p Params, src *rng.Source) (*Oscillator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, err := chip.MapInverterChain(name, p.Stages)
	if err != nil {
		return nil, fmt.Errorf("ro: mapping CUT: %w", err)
	}
	return &Oscillator{params: p, mapping: m, src: src, enabled: true}, nil
}

// Params returns the sensor configuration.
func (o *Oscillator) Params() Params { return o.params }

// Mapping returns the underlying placed design.
func (o *Oscillator) Mapping() *fpga.Mapping { return o.mapping }

// Enable drives En high: the CUT oscillates (AC stress mode, and the
// mode required for measurement).
func (o *Oscillator) Enable() { o.enabled = true }

// Freeze drives En low with the chain input held at in0: DC stress mode.
func (o *Oscillator) Freeze(in0 bool) {
	o.enabled = false
	o.frozen = in0
}

// Enabled reports whether the CUT is oscillating.
func (o *Oscillator) Enabled() bool { return o.enabled }

// FrozenInput returns the chain input value while frozen.
func (o *Oscillator) FrozenInput() bool { return o.frozen }

// StagePhases returns the activity pattern of stage i in the current
// mode, for the stress engine.
func (o *Oscillator) StagePhases(i int) []lut.Phase {
	return o.mapping.StagePhases(i, o.enabled, o.frozen)
}

// TrueFrequency returns the noiseless oscillation frequency at supply
// vdd — the quantity the counter estimates. It requires the RO to be
// enabled.
func (o *Oscillator) TrueFrequency(vdd units.Volt) (units.Hertz, error) {
	if !o.enabled {
		return 0, errors.New("ro: cannot measure a frozen oscillator; Enable it first")
	}
	dNS, err := o.mapping.MeasuredDelay(vdd)
	if err != nil {
		return 0, fmt.Errorf("ro: %w", err)
	}
	// One pass of the chain is half the oscillation period.
	return units.Hertz(1 / (2 * dNS * 1e-9)), nil
}

// maxCount returns the counter's largest representable value.
func (o *Oscillator) maxCount() int { return 1<<o.params.CounterBits - 1 }

// Count gates the counter for one reference period and returns the raw
// Cout including read-out noise. It returns an error if the true count
// would overflow the counter — a mis-sized sensor the diagnostic
// program screens for.
func (o *Oscillator) Count(vdd units.Volt) (int, error) {
	f, err := o.TrueFrequency(vdd)
	if err != nil {
		return 0, err
	}
	ideal := float64(f) / (2 * float64(o.params.FRef)) // Eq. 14 solved for Cout
	if int(ideal) > o.maxCount() {
		return 0, fmt.Errorf("ro: count %.0f overflows %d-bit counter", ideal, o.params.CounterBits)
	}
	n := o.params.NoiseCounts
	noisy := int(ideal) + o.src.Intn(2*n+1) - n
	if noisy < 0 {
		noisy = 0
	}
	if noisy > o.maxCount() {
		noisy = o.maxCount()
	}
	return noisy, nil
}

// Measure reads the counter once and converts to frequency and delay
// per Eqs. 14–15.
func (o *Oscillator) Measure(vdd units.Volt) (Measurement, error) {
	c, err := o.Count(vdd)
	if err != nil {
		return Measurement{}, err
	}
	if c == 0 {
		return Measurement{}, errors.New("ro: zero count; oscillator dead or reference too fast")
	}
	fosc := units.Hertz(2 * float64(c) * float64(o.params.FRef))
	return Measurement{
		Counts:  c,
		Fosc:    fosc,
		DelayNS: 1 / (2 * float64(fosc)) * 1e9,
	}, nil
}

// MeasureAveraged takes n counter readings and returns the measurement
// derived from their mean count, reducing read-out noise by √n — the
// paper's "output of the counter is read from a certain time range that
// has stable values".
func (o *Oscillator) MeasureAveraged(vdd units.Volt, n int) (Measurement, error) {
	if n <= 0 {
		return Measurement{}, errors.New("ro: averaging needs n >= 1")
	}
	sum := 0
	for i := 0; i < n; i++ {
		c, err := o.Count(vdd)
		if err != nil {
			return Measurement{}, err
		}
		sum += c
	}
	mean := float64(sum) / float64(n)
	if mean == 0 {
		return Measurement{}, errors.New("ro: zero mean count")
	}
	fosc := units.Hertz(2 * mean * float64(o.params.FRef))
	return Measurement{
		Counts:  int(mean + 0.5),
		Fosc:    fosc,
		DelayNS: 1 / (2 * float64(fosc)) * 1e9,
	}, nil
}

// DegradationPct returns the frequency degradation of m relative to the
// fresh measurement, in percent: (f0 − f)/f0 · 100.
func DegradationPct(fresh, m Measurement) float64 {
	return (float64(fresh.Fosc) - float64(m.Fosc)) / float64(fresh.Fosc) * 100
}
