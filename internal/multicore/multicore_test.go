package multicore

import (
	"math"
	"testing"

	"selfheal/internal/units"
)

func newSystem(t *testing.T) *System {
	t.Helper()
	s, err := New(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mods := []func(*Params){
		func(p *Params) { p.ActivePowerW = 0 },
		func(p *Params) { p.SleepPowerW = -1 },
		func(p *Params) { p.Vdd = 0 },
		func(p *Params) { p.ActivityDuty = 0 },
		func(p *Params) { p.ActivityDuty = 1.5 },
		func(p *Params) { p.NegVRail = -0.3 },
		func(p *Params) { p.FreshDelayNS = 0 },
		func(p *Params) { p.PathGainNSPerV = 0 },
		func(p *Params) { p.Grid.Rows = 0 },
		func(p *Params) { p.TD.K1 = 0 },
	}
	for i, mod := range mods {
		p := DefaultParams()
		mod(&p)
		if _, err := New(p); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestNewSystemShape(t *testing.T) {
	s := newSystem(t)
	if s.Cores() != 8 {
		t.Fatalf("cores = %d", s.Cores())
	}
	for i := 0; i < 8; i++ {
		if s.DegradationPct(i) != 0 {
			t.Errorf("core %d not fresh", i)
		}
		if math.Abs(s.DelayNS(i)-1.0) > 1e-12 {
			t.Errorf("core %d fresh delay = %v", i, s.DelayNS(i))
		}
	}
}

func TestStepValidation(t *testing.T) {
	s := newSystem(t)
	if err := s.Step(Assignment{Active: make([]bool, 8)}, 0); err == nil {
		t.Error("zero dt accepted")
	}
	if err := s.Step(Assignment{Active: make([]bool, 3)}, units.Hour); err == nil {
		t.Error("short assignment accepted")
	}
	if err := s.Step(Assignment{Active: make([]bool, 8), Heal: make([]bool, 2)}, units.Hour); err == nil {
		t.Error("short heal vector accepted")
	}
}

func TestActiveCoresHeatAndAge(t *testing.T) {
	s := newSystem(t)
	a := Assignment{Active: make([]bool, 8)}
	a.Active[0] = true
	for i := 0; i < 12; i++ {
		if err := s.Step(a, 10*units.Minute); err != nil {
			t.Fatal(err)
		}
	}
	hot, _ := s.Temperature(0)
	cold, _ := s.Temperature(7)
	if hot <= cold {
		t.Errorf("active core not hotter: %v vs %v", hot, cold)
	}
	if s.DegradationPct(0) <= 0 {
		t.Error("active core did not age")
	}
	if s.DegradationPct(7) != 0 {
		t.Error("never-active core aged")
	}
}

// TestNeighborHeatingAcceleratesRecovery is the Fig. 10 mechanism in
// aging terms: after identical stress, a sleeping core surrounded by
// busy neighbours recovers faster than one in a cold corner.
func TestNeighborHeatingAcceleratesRecovery(t *testing.T) {
	run := func(neighborsBusy bool) float64 {
		s := newSystem(t)
		// Age core 1 (row 0, col 1) uniformly: everything active 24 h.
		all := Assignment{Active: []bool{true, true, true, true, true, true, true, true}}
		for i := 0; i < 24; i++ {
			if err := s.Step(all, units.Hour); err != nil {
				t.Fatal(err)
			}
		}
		aged := s.DegradationPct(1)
		// Now core 1 sleeps with the negative rail for 6 h; its
		// neighbours (0, 2, 5) either run hot or sleep cold.
		a := Assignment{Active: make([]bool, 8), Heal: make([]bool, 8)}
		a.Heal[1] = true
		if neighborsBusy {
			a.Active[0], a.Active[2], a.Active[5] = true, true, true
		}
		for i := 0; i < 6; i++ {
			if err := s.Step(a, units.Hour); err != nil {
				t.Fatal(err)
			}
		}
		return (aged - s.DegradationPct(1)) / aged
	}
	heated := run(true)
	isolated := run(false)
	if heated <= isolated {
		t.Errorf("neighbour heating did not help: heated %.3f vs isolated %.3f", heated, isolated)
	}
}

func TestRunValidation(t *testing.T) {
	s := newSystem(t)
	if _, err := s.Run(nil, 6, 10, units.Hour); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := s.Run(Static{}, 9, 10, units.Hour); err == nil {
		t.Error("demand above core count accepted")
	}
	if _, err := s.Run(Static{}, -1, 10, units.Hour); err == nil {
		t.Error("negative demand accepted")
	}
	if _, err := s.Run(Static{}, 6, 0, units.Hour); err == nil {
		t.Error("zero slots accepted")
	}
}

func TestSchedulersMeetDemand(t *testing.T) {
	for _, sch := range []Scheduler{Static{}, RoundRobin{}, Circadian{}} {
		s := newSystem(t)
		out, err := s.Run(sch, 6, 20, units.Hour)
		if err != nil {
			t.Fatalf("%s: %v", sch.Name(), err)
		}
		if out.CoreSlots != 6*20 {
			t.Errorf("%s delivered %d core-slots, want %d", sch.Name(), out.CoreSlots, 120)
		}
	}
}

// TestCircadianBeatsBaselines is the Section 6.2 payoff: with the same
// delivered throughput (6 of 8 cores for 30 days), the circadian
// scheduler holds the worst core's degradation below both the static
// and the gating-only round-robin baselines, and keeps the cores
// balanced.
func TestCircadianBeatsBaselines(t *testing.T) {
	const days = 30
	results := map[string]Outcome{}
	for _, sch := range []Scheduler{Static{}, RoundRobin{}, Circadian{}} {
		s := newSystem(t)
		out, err := s.Run(sch, 6, days*4, 6*units.Hour)
		if err != nil {
			t.Fatalf("%s: %v", sch.Name(), err)
		}
		results[sch.Name()] = out
	}
	st, rr, ci := results["static"], results["round-robin"], results["circadian"]
	if ci.WorstPct >= rr.WorstPct {
		t.Errorf("circadian worst %.4f %% not below round-robin %.4f %%", ci.WorstPct, rr.WorstPct)
	}
	if ci.WorstPct >= st.WorstPct {
		t.Errorf("circadian worst %.4f %% not below static %.4f %%", ci.WorstPct, st.WorstPct)
	}
	// Static concentrates wear: its spread must be the largest.
	if st.SpreadPct <= ci.SpreadPct {
		t.Errorf("static spread %.4f %% not above circadian %.4f %%", st.SpreadPct, ci.SpreadPct)
	}
	// Circadian actually used the healing rail.
	if ci.HealSlots == 0 {
		t.Error("circadian never healed")
	}
	if rr.HealSlots != 0 {
		t.Error("round-robin unexpectedly healed")
	}
}

// TestEnergyAccounting: at equal throughput the circadian scheduler
// costs only the charge-pump overhead more than the gating baselines.
func TestEnergyAccounting(t *testing.T) {
	outs := map[string]Outcome{}
	for _, sch := range []Scheduler{Static{}, RoundRobin{}, Circadian{}} {
		s := newSystem(t)
		out, err := s.Run(sch, 6, 40, 6*units.Hour)
		if err != nil {
			t.Fatal(err)
		}
		outs[sch.Name()] = out
	}
	st, rr, ci := outs["static"], outs["round-robin"], outs["circadian"]
	if st.EnergyWh <= 0 {
		t.Fatal("no energy recorded")
	}
	// Same active/sleep split ⇒ same base energy.
	if st.EnergyWh != rr.EnergyWh {
		t.Errorf("static %.1f Wh != round-robin %.1f Wh", st.EnergyWh, rr.EnergyWh)
	}
	// Circadian adds exactly the pump energy.
	p := DefaultParams()
	wantExtra := p.PumpPowerW * float64(ci.HealSlots) * 6
	if extra := ci.EnergyWh - rr.EnergyWh; math.Abs(extra-wantExtra) > 1e-9 {
		t.Errorf("pump energy = %.3f Wh, want %.3f", extra, wantExtra)
	}
	// And it stays a sub-percent premium.
	if ci.EnergyWh/rr.EnergyWh > 1.01 {
		t.Errorf("healing energy premium %.4f× too high", ci.EnergyWh/rr.EnergyWh)
	}
}

func TestOutcomeFields(t *testing.T) {
	s := newSystem(t)
	out, err := s.Run(Circadian{}, 6, 8, 6*units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerCorePct) != 8 || len(out.Temperatures) != 8 {
		t.Errorf("outcome vectors sized %d/%d", len(out.PerCorePct), len(out.Temperatures))
	}
	if out.MeanPct <= 0 || out.WorstPct < out.MeanPct {
		t.Errorf("inconsistent stats: %+v", out)
	}
	if s.Elapsed() != 8*6*units.Hour {
		t.Errorf("elapsed = %v", s.Elapsed())
	}
}

// TestDarkSiliconRegime: at low demand (2 of 8 cores — the "dark
// silicon" future the paper's §6.2 invokes) the circadian scheduler has
// abundant healing slots and keeps every core nearly fresh, far below
// the static scheduler's concentrated wear.
func TestDarkSiliconRegime(t *testing.T) {
	run := func(sch Scheduler) Outcome {
		s := newSystem(t)
		out, err := s.Run(sch, 2, 30*4, 6*units.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	st := run(Static{})
	ci := run(Circadian{})
	if ci.WorstPct >= st.WorstPct/2 {
		t.Errorf("dark-silicon healing weak: circadian %v vs static %v", ci.WorstPct, st.WorstPct)
	}
	// With 6 sleepers per slot, most core-slots heal.
	if ci.HealSlots < ci.CoreSlots {
		t.Errorf("heal slots %d below compute slots %d at demand 2", ci.HealSlots, ci.CoreSlots)
	}
}

func TestFullDemandNeverSleeps(t *testing.T) {
	s := newSystem(t)
	out, err := s.Run(Circadian{}, 8, 10, units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if out.HealSlots != 0 {
		t.Error("healed with zero sleep budget")
	}
	if out.SpreadPct > 1e-9 {
		t.Errorf("uniform full load produced spread %v", out.SpreadPct)
	}
}

func BenchmarkCircadianSlot(b *testing.B) {
	s, err := New(DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	sch := Circadian{}
	for i := 0; i < b.N; i++ {
		a, err := sch.Assign(s, i, 6)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Step(a, 10*units.Minute); err != nil {
			b.Fatal(err)
		}
	}
}
