package multicore

import (
	"sort"
)

// Static pins the first demand cores active forever — the conventional
// baseline: fixed affinity, spare cores dark, no recovery thinking.
type Static struct{}

// Name implements Scheduler.
func (Static) Name() string { return "static" }

// Assign implements Scheduler.
func (Static) Assign(s *System, _ int, demand int) (Assignment, error) {
	a := Assignment{Active: make([]bool, s.Cores())}
	for i := 0; i < demand; i++ {
		a.Active[i] = true
	}
	return a, nil
}

// RoundRobin rotates which cores sleep each slot, spreading wear
// evenly; sleep is plain power gating (passive recovery only).
type RoundRobin struct{}

// Name implements Scheduler.
func (RoundRobin) Name() string { return "round-robin" }

// Assign implements Scheduler.
func (RoundRobin) Assign(s *System, slot int, demand int) (Assignment, error) {
	n := s.Cores()
	a := Assignment{Active: make([]bool, n)}
	for i := range a.Active {
		a.Active[i] = true
	}
	for k := 0; k < n-demand; k++ {
		a.Active[(slot+k)%n] = false
	}
	return a, nil
}

// Circadian is the paper's proposal: cores take scheduled sleep slots
// in rotation, sleeping cores apply the negative recovery rail, and the
// sleep set is chosen as the *most aged* cores whose neighbours are
// active — so the floorplan's own heat (Fig. 10's "on-chip heaters")
// accelerates their recovery.
type Circadian struct{}

// Name implements Scheduler.
func (Circadian) Name() string { return "circadian" }

// Assign implements Scheduler.
func (Circadian) Assign(s *System, _ int, demand int) (Assignment, error) {
	n := s.Cores()
	a := Assignment{Active: make([]bool, n), Heal: make([]bool, n)}
	// Rank cores by degradation, worst first; they sleep and heal.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return s.DegradationPct(order[x]) > s.DegradationPct(order[y])
	})
	for i := range a.Active {
		a.Active[i] = true
	}
	for k := 0; k < n-demand; k++ {
		c := order[k]
		a.Active[c] = false
		a.Heal[c] = true
	}
	return a, nil
}
