// Package multicore builds the system the paper's Section 6.2 sketches
// (Fig. 10): an eight-core processor with a shared L3 on a 2×4
// floorplan, where cores take scheduled sleep slots and the *active
// neighbours act as on-chip heaters* that accelerate a sleeping core's
// BTI recovery — heat that a thermal chamber provides on the bench
// comes for free from the floorplan.
//
// Each core carries a lumped critical-path aging state (the TD model is
// linear in ΔVth, so a path of similarly stressed devices ages as a
// scaled single device). A Scheduler assigns which cores run each slot
// under a fixed parallelism demand; the thermal grid (package thermal)
// turns the power map into per-core temperatures; stress and recovery
// integrate on top.
package multicore

import (
	"context"
	"errors"
	"fmt"
	"math"

	"selfheal/internal/td"
	"selfheal/internal/thermal"
	"selfheal/internal/units"
)

// Params configures the system.
type Params struct {
	Grid thermal.GridParams
	TD   td.Params

	// ActivePowerW and SleepPowerW are per-core dissipation when
	// running and when asleep (residual/pump power).
	ActivePowerW, SleepPowerW float64

	// Vdd is the core supply during activity; ActivityDuty is the
	// effective switching duty of the critical path under load.
	Vdd          units.Volt
	ActivityDuty float64

	// NegVRail is the reverse-bias magnitude sleeping cores apply when
	// the scheduler enables accelerated recovery (0 disables).
	NegVRail units.Volt
	// PumpPowerW is the extra power the negative-rail charge pump
	// draws per healing core (the Section 6.1 overhead).
	PumpPowerW float64

	// FreshDelayNS and PathGainNSPerV map the lumped ΔVth onto the
	// core's critical-path delay: delay = fresh + gain·ΔVth.
	FreshDelayNS, PathGainNSPerV float64
}

// DefaultParams returns an 8-core, 2×4 system with 10 W cores and the
// paper's −0.3 V recovery rail. The path gain matches the RO
// calibration (≈54.7 ns/V normalized to a 1 ns path: 0.55 ns/V with a
// ≈1 GHz-class 1 ns critical path).
func DefaultParams() Params {
	return Params{
		Grid:           thermal.DefaultGridParams(),
		TD:             td.DefaultParams(),
		ActivePowerW:   10,
		SleepPowerW:    0.2,
		PumpPowerW:     0.1,
		Vdd:            1.2,
		ActivityDuty:   0.5,
		NegVRail:       0.3,
		FreshDelayNS:   1.0,
		PathGainNSPerV: 0.55,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.ActivePowerW <= 0 || p.SleepPowerW < 0:
		return errors.New("multicore: active power must be positive, sleep power non-negative")
	case p.Vdd <= 0:
		return errors.New("multicore: Vdd must be positive")
	case p.ActivityDuty <= 0 || p.ActivityDuty > 1:
		return errors.New("multicore: activity duty must be in (0,1]")
	case p.NegVRail < 0:
		return errors.New("multicore: negative-rail magnitude must be non-negative")
	case p.PumpPowerW < 0:
		return errors.New("multicore: pump power must be non-negative")
	case p.FreshDelayNS <= 0 || p.PathGainNSPerV <= 0:
		return errors.New("multicore: path model must be positive")
	}
	if err := p.Grid.Validate(); err != nil {
		return fmt.Errorf("multicore: %w", err)
	}
	if err := p.TD.Validate(); err != nil {
		return fmt.Errorf("multicore: %w", err)
	}
	return nil
}

// Core is one processor core's health state.
type Core struct {
	ID    int
	Aging td.State
}

// System is the simulated multi-core processor.
type System struct {
	params Params
	grid   *thermal.Grid
	cores  []*Core
	active []bool
	// heal[i] reports whether sleeping core i applies the negative
	// rail (accelerated recovery) this slot.
	heal    []bool
	elapsed units.Seconds
}

// New builds a system settled at ambient with all cores active.
func New(p Params) (*System, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	grid, err := thermal.NewGrid(p.Grid)
	if err != nil {
		return nil, err
	}
	n := grid.Tiles()
	s := &System{
		params: p,
		grid:   grid,
		cores:  make([]*Core, n),
		active: make([]bool, n),
		heal:   make([]bool, n),
	}
	for i := range s.cores {
		s.cores[i] = &Core{ID: i}
		s.active[i] = true
	}
	return s, nil
}

// Cores returns the number of cores.
func (s *System) Cores() int { return len(s.cores) }

// Elapsed returns the simulated time.
func (s *System) Elapsed() units.Seconds { return s.elapsed }

// Active reports whether core i is running.
func (s *System) Active(i int) bool { return s.active[i] }

// Temperature returns core i's junction temperature.
func (s *System) Temperature(i int) (units.Celsius, error) {
	return s.grid.Temperature(i)
}

// DelayNS returns core i's present critical-path delay in nanoseconds.
func (s *System) DelayNS(i int) float64 {
	return s.params.FreshDelayNS + s.params.PathGainNSPerV*s.cores[i].Aging.Vth()
}

// DegradationPct returns core i's critical-path slowdown in percent.
func (s *System) DegradationPct(i int) float64 {
	return (s.DelayNS(i) - s.params.FreshDelayNS) / s.params.FreshDelayNS * 100
}

// WorstDegradationPct returns the slowest core's degradation — the
// figure that sets the shared clock's margin.
func (s *System) WorstDegradationPct() float64 {
	worst := 0.0
	for i := range s.cores {
		worst = math.Max(worst, s.DegradationPct(i))
	}
	return worst
}

// SpreadPct returns the gap between the worst and best core — aging
// imbalance a scheduler should keep low.
func (s *System) SpreadPct() float64 {
	worst, best := 0.0, math.Inf(1)
	for i := range s.cores {
		d := s.DegradationPct(i)
		worst = math.Max(worst, d)
		best = math.Min(best, d)
	}
	return worst - best
}

// Assignment is one slot's scheduling decision.
type Assignment struct {
	// Active[i] runs core i this slot. The number of true entries must
	// equal the demanded parallelism.
	Active []bool
	// Heal[i] applies the negative rail to sleeping core i. Ignored
	// for active cores.
	Heal []bool
}

// Scheduler picks which cores run each slot.
type Scheduler interface {
	Name() string
	// Assign returns the slot's assignment for the demanded number of
	// active cores. Implementations may inspect the system's health
	// and temperatures.
	Assign(s *System, slot int, demand int) (Assignment, error)
}

// Step advances the system through one slot of length dt with the
// given assignment under the demanded parallelism.
func (s *System) Step(a Assignment, dt units.Seconds) error {
	if dt <= 0 {
		return errors.New("multicore: slot duration must be positive")
	}
	if len(a.Active) != len(s.cores) || (a.Heal != nil && len(a.Heal) != len(s.cores)) {
		return fmt.Errorf("multicore: assignment sized %d/%d for %d cores",
			len(a.Active), len(a.Heal), len(s.cores))
	}
	copy(s.active, a.Active)
	for i := range s.heal {
		s.heal[i] = a.Heal != nil && a.Heal[i] && !a.Active[i]
	}
	// Power map → temperatures.
	for i := range s.cores {
		p := s.params.SleepPowerW
		if s.active[i] {
			p = s.params.ActivePowerW
		}
		if err := s.grid.SetPower(i, p); err != nil {
			return err
		}
	}
	s.grid.Step(dt)
	// Temperatures → aging.
	for i, c := range s.cores {
		tc, err := s.grid.Temperature(i)
		if err != nil {
			return err
		}
		k := tc.Kelvin()
		if s.active[i] {
			c.Aging.Stress(s.params.TD, td.StressCond{
				V: s.params.Vdd, T: k, Duty: s.params.ActivityDuty,
			}, dt)
			continue
		}
		vrev := units.Volt(0)
		if s.heal[i] {
			vrev = s.params.NegVRail
		}
		c.Aging.Recover(s.params.TD, td.RecoveryCond{VRev: vrev, T: k}, dt)
	}
	s.elapsed += dt
	return nil
}

// Run simulates slots×dt under the scheduler with a fixed parallelism
// demand, returning the final outcome.
func (s *System) Run(sch Scheduler, demand, slots int, dt units.Seconds) (Outcome, error) {
	return s.RunContext(context.Background(), sch, demand, slots, dt)
}

// RunContext is Run with cooperative cancellation: the context is
// checked before every slot, so a long exploration aborts promptly
// (e.g. on server shutdown) instead of finishing a multi-year sweep.
func (s *System) RunContext(ctx context.Context, sch Scheduler, demand, slots int, dt units.Seconds) (Outcome, error) {
	if sch == nil {
		return Outcome{}, errors.New("multicore: nil scheduler")
	}
	if demand < 0 || demand > len(s.cores) {
		return Outcome{}, fmt.Errorf("multicore: demand %d outside 0..%d", demand, len(s.cores))
	}
	if slots <= 0 {
		return Outcome{}, errors.New("multicore: slot count must be positive")
	}
	var coreSlots, healSlots int
	var energyWh float64
	for slot := 0; slot < slots; slot++ {
		if err := ctx.Err(); err != nil {
			return Outcome{}, fmt.Errorf("multicore: run aborted at slot %d/%d: %w", slot, slots, err)
		}
		a, err := sch.Assign(s, slot, demand)
		if err != nil {
			return Outcome{}, fmt.Errorf("multicore: %s slot %d: %w", sch.Name(), slot, err)
		}
		got := 0
		for _, on := range a.Active {
			if on {
				got++
			}
		}
		if got != demand {
			return Outcome{}, fmt.Errorf("multicore: %s slot %d: %d active, demand %d",
				sch.Name(), slot, got, demand)
		}
		if err := s.Step(a, dt); err != nil {
			return Outcome{}, err
		}
		coreSlots += got
		hours := float64(dt) / 3600
		for i := range s.cores {
			switch {
			case s.active[i]:
				energyWh += s.params.ActivePowerW * hours
			case s.heal[i]:
				healSlots++
				energyWh += (s.params.SleepPowerW + s.params.PumpPowerW) * hours
			default:
				energyWh += s.params.SleepPowerW * hours
			}
		}
	}
	out := Outcome{
		Scheduler:    sch.Name(),
		WorstPct:     s.WorstDegradationPct(),
		SpreadPct:    s.SpreadPct(),
		HealSlots:    healSlots,
		CoreSlots:    coreSlots,
		EnergyWh:     energyWh,
		PerCorePct:   make([]float64, len(s.cores)),
		Temperatures: s.grid.Temperatures(),
	}
	sum := 0.0
	for i := range s.cores {
		out.PerCorePct[i] = s.DegradationPct(i)
		sum += out.PerCorePct[i]
	}
	out.MeanPct = sum / float64(len(s.cores))
	return out, nil
}

// Outcome summarizes a scheduled run.
type Outcome struct {
	Scheduler string
	WorstPct  float64 // slowest core's degradation (sets the margin)
	MeanPct   float64
	SpreadPct float64
	HealSlots int // core-slots spent in accelerated recovery
	CoreSlots int // core-slots of delivered compute (throughput)
	// EnergyWh is the total electrical energy over the run, including
	// the charge-pump overhead of healing slots.
	EnergyWh   float64
	PerCorePct []float64
	// Temperatures is the final per-core temperature map.
	Temperatures []units.Celsius
}
