package measure

import (
	"math"
	"testing"

	"selfheal/internal/rng"
	"selfheal/internal/units"
)

// nominalBench returns a bench on a variation-free chip so calibration
// numbers are exact.
func nominalBench(t *testing.T, seed uint64) *Bench {
	t.Helper()
	p := DefaultBenchParams()
	p.FPGA.ChipSigmaFrac = 0
	p.FPGA.LocalSigmaFrac = 0
	p.FPGA.VthSigmaV = 0
	b, err := NewBench("chip", p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBenchValidation(t *testing.T) {
	p := DefaultBenchParams()
	p.AvgReads = 0
	if _, err := NewBench("c", p, rng.New(1)); err == nil {
		t.Error("AvgReads=0 accepted")
	}
	p = DefaultBenchParams()
	p.FPGA.Rows = 0
	if _, err := NewBench("c", p, rng.New(1)); err == nil {
		t.Error("bad FPGA params accepted")
	}
	p = DefaultBenchParams()
	p.RO.Stages = 4
	if _, err := NewBench("c", p, rng.New(1)); err == nil {
		t.Error("bad RO params accepted")
	}
}

func TestSampleFreshChip(t *testing.T) {
	b := nominalBench(t, 1)
	m, err := b.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.DelayNS-100) > 0.5 {
		t.Errorf("fresh delay = %v ns, want ≈100", m.DelayNS)
	}
}

func TestSampleRestoresFrozenMode(t *testing.T) {
	b := nominalBench(t, 2)
	b.RO.Freeze(true)
	if _, err := b.Sample(); err != nil {
		t.Fatal(err)
	}
	if b.RO.Enabled() || !b.RO.FrozenInput() {
		t.Error("sampling did not restore the frozen mode")
	}
}

func TestSampleOverheadAges(t *testing.T) {
	with := nominalBench(t, 3)
	without := nominalBench(t, 3)
	without.params.ModelSamplingOverhead = false
	for i := 0; i < 50; i++ {
		if _, err := with.Sample(); err != nil {
			t.Fatal(err)
		}
		if _, err := without.Sample(); err != nil {
			t.Fatal(err)
		}
	}
	if with.Chip.MeanVthShift() <= without.Chip.MeanVthShift() {
		t.Error("sampling overhead not charged to aging")
	}
	// But it must stay negligible: 50 wakes × 3 s ≪ any phase.
	if with.Chip.MeanVthShift() > 1e-3 {
		t.Errorf("sampling overhead implausibly large: %v", with.Chip.MeanVthShift())
	}
}

func TestPhaseSpecValidation(t *testing.T) {
	cases := []PhaseSpec{
		{Name: "no-duration", Kind: Stress, Vdd: 1.2},
		{Name: "neg-sample", Kind: Stress, Vdd: 1.2, Duration: units.Hour, SampleEvery: -1},
		{Name: "stress-no-rail", Kind: Stress, Vdd: 0, Duration: units.Hour},
		{Name: "recovery-positive-rail", Kind: Recovery, Vdd: 1.2, Duration: units.Hour},
	}
	for _, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s accepted", spec.Name)
		}
	}
	good := PhaseSpec{Name: "ok", Kind: Recovery, Vdd: -0.3, Duration: units.Hour, TempC: 110}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestPhaseKindString(t *testing.T) {
	if Stress.String() != "stress" || Recovery.String() != "recovery" {
		t.Error("PhaseKind names wrong")
	}
}

// TestStressPhaseProducesPaperDegradation runs the AS110DC24 schedule
// end to end through the bench (chamber ramp, sampling wake-ups) and
// checks the ≈2.2 % result survives the full instrumentation stack.
func TestStressPhaseProducesPaperDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("full 24 h schedule")
	}
	b := nominalBench(t, 4)
	fresh, err := b.Sample()
	if err != nil {
		t.Fatal(err)
	}
	s, err := b.RunPhase(PhaseSpec{
		Name: "AS110DC24", Kind: Stress, Duration: 24 * units.Hour,
		TempC: 110, Vdd: 1.2, AC: false, FrozenIn0: true,
		SampleEvery: 20 * units.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 73 { // t=0 plus 72 twenty-minute samples
		t.Errorf("sample count = %d, want 73", s.Len())
	}
	last, _ := s.Last()
	pct := (last.V - fresh.DelayNS) / fresh.DelayNS * 100
	if math.Abs(pct-2.2) > 0.35 {
		t.Errorf("bench degradation = %.3f %%, want ≈2.2 %%", pct)
	}
	// Degradation is fast-then-slow: first 3 h exceed the last 3 h.
	v3h, err := s.At(3 * units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	v21h, err := s.At(21 * units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if (v3h - fresh.DelayNS) <= (last.V - v21h) {
		t.Error("degradation not front-loaded")
	}
}

// TestRecoveryPhaseHealsChip runs a short stress then an accelerated
// recovery and checks monotone healing through the bench stack.
func TestRecoveryPhaseHealsChip(t *testing.T) {
	b := nominalBench(t, 5)
	if _, err := b.RunPhase(PhaseSpec{
		Name: "stress", Kind: Stress, Duration: 6 * units.Hour,
		TempC: 110, Vdd: 1.2, FrozenIn0: true,
	}); err != nil {
		t.Fatal(err)
	}
	stressEnd, err := b.Sample()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := b.RunPhase(PhaseSpec{
		Name: "AR110N2", Kind: Recovery, Duration: 2 * units.Hour,
		TempC: 110, Vdd: -0.3, SampleEvery: 30 * units.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	last, _ := rec.Last()
	if last.V >= stressEnd.DelayNS {
		t.Errorf("no healing: %v -> %v", stressEnd.DelayNS, last.V)
	}
	// Mostly monotone non-increasing apart from counter noise.
	worse := 0
	for i := 1; i < rec.Len(); i++ {
		if rec.Points[i].V > rec.Points[i-1].V+0.06 {
			worse++
		}
	}
	if worse > 0 {
		t.Errorf("%d recovery samples increased beyond noise", worse)
	}
}

func TestRunPhaseRejectsBadSpecs(t *testing.T) {
	b := nominalBench(t, 6)
	if _, err := b.RunPhase(PhaseSpec{Name: "bad", Kind: Stress, Vdd: 1.2}); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := b.RunPhase(PhaseSpec{
		Name: "too-hot", Kind: Stress, Vdd: 1.2, Duration: units.Hour, TempC: 500,
	}); err == nil {
		t.Error("out-of-range chamber setpoint accepted")
	}
	if _, err := b.RunPhase(PhaseSpec{
		Name: "rail", Kind: Stress, Vdd: 3.0, Duration: units.Hour, TempC: 20,
	}); err == nil {
		t.Error("out-of-range stress rail accepted")
	}
}

func TestRecoveredDelay(t *testing.T) {
	if got := RecoveredDelay(102.2, 100.6); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("RD = %v", got)
	}
	if got := RecoveredDelay(100, 100); got != 0 {
		t.Errorf("RD = %v", got)
	}
}

func TestMarginRelaxedPct(t *testing.T) {
	got, err := MarginRelaxedPct(100, 102.2, 100.607)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-72.4) > 0.1 {
		t.Errorf("margin relaxed = %v %%, want ≈72.4", got)
	}
	if _, err := MarginRelaxedPct(100, 100, 100); err == nil {
		t.Error("zero degradation accepted")
	}
	if _, err := MarginRelaxedPct(100, 99, 98); err == nil {
		t.Error("negative degradation accepted")
	}
}

func TestRemainingMarginPct(t *testing.T) {
	// Budget 12 ns on a 100 ns path; residual 0.6 ns consumes 5 %.
	got, err := RemainingMarginPct(100, 100.6, DefaultMarginFrac)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-95) > 0.1 {
		t.Errorf("remaining margin = %v %%, want 95", got)
	}
	if got, _ := RemainingMarginPct(100, 100, DefaultMarginFrac); got != 100 {
		t.Errorf("fresh remaining margin = %v", got)
	}
	if got, _ := RemainingMarginPct(100, 112, DefaultMarginFrac); math.Abs(got) > 1e-9 {
		t.Errorf("exhausted margin = %v", got)
	}
	if _, err := RemainingMarginPct(0, 1, 0.1); err == nil {
		t.Error("zero fresh delay accepted")
	}
	if _, err := RemainingMarginPct(100, 101, 0); err == nil {
		t.Error("zero margin fraction accepted")
	}
}

func TestWithinOriginalMargin(t *testing.T) {
	ok, err := WithinOriginalMargin(100, 100.6, DefaultMarginFrac, 90)
	if err != nil || !ok {
		t.Errorf("healed chip not within margin: %v %v", ok, err)
	}
	ok, err = WithinOriginalMargin(100, 102.2, DefaultMarginFrac, 90)
	if err != nil || ok {
		t.Errorf("stressed chip within margin: %v %v", ok, err)
	}
	if _, err := WithinOriginalMargin(0, 1, 0.1, 90); err == nil {
		t.Error("bad inputs accepted")
	}
}
