// Package measure assembles the paper's test bench (Section 4): an FPGA
// chip carrying the ring-oscillator CUT, the programmable power supply,
// the thermal chamber and the aging engine — and runs scheduled stress
// and recovery phases with periodic counter read-outs, exactly like the
// paper's "RO is enabled only every 20 minutes for data recording" and
// "RO wakes up every 30 minutes" procedures.
//
// It also defines the paper's metrics: frequency degradation, recovered
// delay RD (Eq. 16), the design-margin-relaxed parameter, and the
// "within X % of original margin" criterion.
package measure

import (
	"errors"
	"fmt"

	"selfheal/internal/fpga"
	"selfheal/internal/rng"
	"selfheal/internal/ro"
	"selfheal/internal/series"
	"selfheal/internal/stress"
	"selfheal/internal/supply"
	"selfheal/internal/thermal"
	"selfheal/internal/units"
)

// BenchParams configures a bench.
type BenchParams struct {
	FPGA    fpga.Params
	RO      ro.Params
	PSU     supply.PSUParams
	Chamber thermal.ChamberParams
	// AvgReads is the number of counter readings averaged per recorded
	// sample ("read from a time range that has stable values").
	AvgReads int
	// ModelSamplingOverhead applies the <3 s of AC operation each
	// wake-up costs during DC-stress and recovery phases.
	ModelSamplingOverhead bool
}

// DefaultBenchParams matches the paper's setup.
func DefaultBenchParams() BenchParams {
	return BenchParams{
		FPGA:                  fpga.DefaultParams(),
		RO:                    ro.DefaultParams(),
		PSU:                   supply.DefaultPSUParams(),
		Chamber:               thermal.DefaultChamberParams(),
		AvgReads:              16,
		ModelSamplingOverhead: true,
	}
}

// Bench is one chip under test with its instrumentation.
type Bench struct {
	params  BenchParams
	Chip    *fpga.Chip
	RO      *ro.Oscillator
	PSU     *supply.PSU
	Chamber *thermal.Chamber
	Clock   *supply.ClockGen
	Engine  *stress.Engine
}

// NewBench fabricates a chip (variation drawn from src), maps the RO,
// and powers everything up at ambient.
func NewBench(chipID string, p BenchParams, src *rng.Source) (*Bench, error) {
	if p.AvgReads <= 0 {
		return nil, errors.New("measure: AvgReads must be positive")
	}
	chip, err := fpga.NewChip(chipID, p.FPGA, src.Split())
	if err != nil {
		return nil, fmt.Errorf("measure: %w", err)
	}
	osc, err := ro.New(chip, chipID+".cut", p.RO, src.Split())
	if err != nil {
		return nil, fmt.Errorf("measure: %w", err)
	}
	psu, err := supply.NewPSU(p.PSU)
	if err != nil {
		return nil, fmt.Errorf("measure: %w", err)
	}
	chamber, err := thermal.NewChamber(p.Chamber, src.Split())
	if err != nil {
		return nil, fmt.Errorf("measure: %w", err)
	}
	clock, err := supply.NewClockGen(p.RO.FRef)
	if err != nil {
		return nil, fmt.Errorf("measure: %w", err)
	}
	eng := stress.New(chip)
	if err := eng.AddActivity(stress.Activity{Mapping: osc.Mapping(), AC: true}); err != nil {
		return nil, fmt.Errorf("measure: %w", err)
	}
	return &Bench{
		params:  p,
		Chip:    chip,
		RO:      osc,
		PSU:     psu,
		Chamber: chamber,
		Clock:   clock,
		Engine:  eng,
	}, nil
}

// Sample wakes the RO, takes an averaged counter reading at the nominal
// supply, restores the previous mode, and (optionally) charges the
// sampling overhead to the aging state.
func (b *Bench) Sample() (ro.Measurement, error) {
	wasEnabled := b.RO.Enabled()
	frozen := b.RO.FrozenInput()
	b.RO.Enable()
	defer func() {
		if !wasEnabled {
			b.RO.Freeze(frozen)
		}
	}()

	nominal := b.PSU.Voltage()
	if b.PSU.Rail() != supply.RailNominal {
		// Measurement always happens at the nominal operating point.
		nominal = b.params.PSU.Nominal
	}
	m, err := b.RO.MeasureAveraged(nominal, b.params.AvgReads)
	if err != nil {
		return ro.Measurement{}, fmt.Errorf("measure: sampling: %w", err)
	}
	if b.params.ModelSamplingOverhead {
		if err := b.Engine.SetAC(b.RO.Mapping().Name, true, false); err != nil {
			return ro.Measurement{}, err
		}
		if err := b.Engine.Step(nominal, b.Chamber.Temperature(), b.params.RO.SampleTime); err != nil {
			return ro.Measurement{}, err
		}
		if err := b.Engine.SetAC(b.RO.Mapping().Name, wasEnabled, frozen); err != nil {
			return ro.Measurement{}, err
		}
	}
	return m, nil
}

// PhaseKind distinguishes wearout from self-healing phases.
type PhaseKind uint8

const (
	Stress PhaseKind = iota
	Recovery
)

// String names the phase kind.
func (k PhaseKind) String() string {
	if k == Recovery {
		return "recovery"
	}
	return "stress"
}

// PhaseSpec schedules one phase of the accelerated test.
type PhaseSpec struct {
	Name     string
	Kind     PhaseKind
	Duration units.Seconds
	TempC    units.Celsius
	// Vdd is the rail during the phase: the stress voltage for Stress
	// phases (1.2 V in the paper), and 0 (gated) or negative (−0.3 V)
	// for Recovery phases.
	Vdd units.Volt
	// AC selects oscillating stress; DC stress freezes the chain at
	// FrozenIn0. Ignored for recovery phases (the fabric is unpowered).
	AC        bool
	FrozenIn0 bool
	// SampleEvery is the wake-up period for data recording (the paper
	// uses 20 min under stress, 30 min under recovery). Zero samples
	// only at the phase boundary.
	SampleEvery units.Seconds
}

// Validate reports whether the spec is runnable.
func (s PhaseSpec) Validate() error {
	switch {
	case s.Duration <= 0:
		return fmt.Errorf("measure: phase %q: duration must be positive", s.Name)
	case s.SampleEvery < 0:
		return fmt.Errorf("measure: phase %q: negative sampling period", s.Name)
	case s.Kind == Stress && s.Vdd <= 0:
		return fmt.Errorf("measure: phase %q: stress phase needs a positive rail", s.Name)
	case s.Kind == Recovery && s.Vdd > 0:
		return fmt.Errorf("measure: phase %q: recovery phase rail must be ≤ 0", s.Name)
	}
	return nil
}

// RunPhase executes one phase: it ramps the chamber to the setpoint
// (unpowered — the paper's chips are heated and cooled between
// conditions), applies the rail, steps the aging engine through the
// schedule, and records a delay sample at t = 0 and at every sampling
// instant. The returned series holds delay in nanoseconds against
// phase-relative time.
func (b *Bench) RunPhase(spec PhaseSpec) (*series.Series, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := b.Chamber.SetTarget(spec.TempC); err != nil {
		return nil, fmt.Errorf("measure: phase %q: %w", spec.Name, err)
	}
	// Ramp unpowered: gate the rail, let the die track the plate.
	b.PSU.Gate()
	for !b.Chamber.Settled() {
		step := units.Minute
		b.Chamber.Step(step)
		if err := b.Engine.Step(0, b.Chamber.Temperature(), step); err != nil {
			return nil, err
		}
	}

	// Apply the phase rail and RO mode.
	switch spec.Kind {
	case Stress:
		if err := b.PSU.SetStress(spec.Vdd); err != nil {
			return nil, fmt.Errorf("measure: phase %q: %w", spec.Name, err)
		}
		if spec.AC {
			b.RO.Enable()
		} else {
			b.RO.Freeze(spec.FrozenIn0)
		}
		if err := b.Engine.SetAC(b.RO.Mapping().Name, spec.AC, spec.FrozenIn0); err != nil {
			return nil, err
		}
	case Recovery:
		if spec.Vdd < 0 {
			if err := b.PSU.SetNegative(spec.Vdd); err != nil {
				return nil, fmt.Errorf("measure: phase %q: %w", spec.Name, err)
			}
		} else {
			b.PSU.Gate()
		}
	}

	out := series.New(spec.Name)
	m, err := b.Sample()
	if err != nil {
		return nil, err
	}
	out.Add(0, m.DelayNS)

	interval := spec.SampleEvery
	if interval == 0 || interval > spec.Duration {
		interval = spec.Duration
	}
	for elapsed := units.Seconds(0); elapsed < spec.Duration-1e-9; {
		step := interval
		if rem := spec.Duration - elapsed; step > rem {
			step = rem
		}
		if err := b.Engine.Step(b.PSU.Voltage(), b.Chamber.Step(step), step); err != nil {
			return nil, err
		}
		elapsed += step
		m, err := b.Sample()
		if err != nil {
			return nil, err
		}
		out.Add(elapsed, m.DelayNS)
	}
	return out, nil
}

// RecoveredDelay is the paper's Eq. 16: RD(t2) = Td(t1) − Td(t1+t2), the
// delay removed since the end of the stress phase.
func RecoveredDelay(endOfStressNS, currentNS float64) float64 {
	return endOfStressNS - currentNS
}

// MarginRelaxedPct is the paper's design-margin-relaxed parameter: the
// percentage of the accumulated delay degradation removed by the
// rejuvenation phase. It returns an error when no degradation existed.
func MarginRelaxedPct(freshNS, endOfStressNS, healedNS float64) (float64, error) {
	deg := endOfStressNS - freshNS
	if deg <= 0 {
		return 0, errors.New("measure: no degradation to relax")
	}
	return RecoveredDelay(endOfStressNS, healedNS) / deg * 100, nil
}

// DefaultMarginFrac is the delay-margin budget as a fraction of the
// fresh path delay. 12 % is a representative guard band for an FPGA
// design closed at the paper's conditions.
const DefaultMarginFrac = 0.12

// RemainingMarginPct returns how much of the design margin budget
// (marginFrac·fresh) is still available at the current delay, in
// percent. 100 means unconsumed, 0 means the path now misses timing.
func RemainingMarginPct(freshNS, currentNS, marginFrac float64) (float64, error) {
	if freshNS <= 0 || marginFrac <= 0 {
		return 0, errors.New("measure: fresh delay and margin fraction must be positive")
	}
	budget := freshNS * marginFrac
	return (1 - (currentNS-freshNS)/budget) * 100, nil
}

// WithinOriginalMargin reports the paper's headline criterion: after
// rejuvenation the chip retains at least pct % of its original margin.
func WithinOriginalMargin(freshNS, healedNS, marginFrac, pct float64) (bool, error) {
	rem, err := RemainingMarginPct(freshNS, healedNS, marginFrac)
	if err != nil {
		return false, err
	}
	return rem >= pct, nil
}
