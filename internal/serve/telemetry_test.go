package serve

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"selfheal/internal/obs/tsdb"
)

// tickN advances the manual engine clock n epochs.
func tickN(t *testing.T, ts *httptest.Server, n int) {
	t.Helper()
	do(t, ts, "POST", "/v1/engine/tick", fmt.Sprintf(`{"epochs":%d}`, n), http.StatusOK, nil)
}

func TestTelemetrySeriesAndSLO(t *testing.T) {
	_, ts := engineTestServer(t, Config{GuardEnabled: true})
	do(t, ts, "POST", "/v1/engine/chips:batch",
		`{"chips":[
			{"id":"t0","temp_c":80,"vdd":1.2,"duty":1},
			{"id":"t1","temp_c":90,"vdd":1.25,"duty":0.8},
			{"id":"t2","temp_c":70,"vdd":1.1,"duty":0.5}
		]}`, http.StatusOK, nil)
	// A mutation before the first tick so mutation deltas have data.
	do(t, ts, "POST", "/v1/chips", `{"id":"m0","seed":1}`, http.StatusCreated, nil)
	tickN(t, ts, 6)

	var tel TelemetryResponse
	do(t, ts, "GET", "/v1/telemetry", "", http.StatusOK, &tel)
	if tel.NodeID != "single" {
		t.Fatalf("node_id = %q, want single", tel.NodeID)
	}
	if tel.Epoch != 6 {
		t.Fatalf("newest epoch = %d, want 6", tel.Epoch)
	}
	if tel.LastUnix == 0 {
		t.Fatal("last_unix unset after recording epochs")
	}
	for _, name := range []string{
		"margin_min_v", "margin_p50_v", "margin_p95_v",
		"aging_rate_p50_v", "aging_rate_max_v",
		"mutations_per_epoch", "epoch_lag_seconds", "engine_chips",
		"quarantined_chips", "guard_releases_total",
		"slo_ok_mutation_availability", "slo_burn_margin_recovery",
	} {
		if len(tel.Series[name]) == 0 {
			t.Fatalf("series %q missing from /v1/telemetry (have %d series)", name, len(tel.Series))
		}
	}
	if got := tel.Series["margin_min_v"]; len(got) != 6 {
		t.Fatalf("margin_min_v has %d samples, want 6", len(got))
	}
	// 3 registered engine chips plus m0: store creates register too.
	if got := tel.Series["engine_chips"]; got[len(got)-1].Value != 4 {
		t.Fatalf("engine_chips latest = %v, want 4", got[len(got)-1].Value)
	}
	// Aging rates are deltas: one fewer sample than epochs.
	if got := tel.Series["aging_rate_p50_v"]; len(got) != 5 {
		t.Fatalf("aging_rate_p50_v has %d samples, want 5", len(got))
	}
	// All three standing objectives evaluated, all green on a healthy
	// manual-clock fleet.
	if len(tel.SLO) != 3 {
		t.Fatalf("slo statuses = %+v, want 3", tel.SLO)
	}
	for _, st := range tel.SLO {
		if !st.OK {
			t.Fatalf("SLO %s not OK on a healthy fleet: %+v", st.SLO, st)
		}
	}

	// Stressed chips age: the most-aged margin must sink below p95.
	mm := tel.Series["margin_min_v"]
	mp := tel.Series["margin_p95_v"]
	if mm[len(mm)-1].Value > mp[len(mp)-1].Value {
		t.Fatalf("margin_min (%v) above margin_p95 (%v)", mm[len(mm)-1].Value, mp[len(mp)-1].Value)
	}
}

func TestTelemetryQueryGrammar(t *testing.T) {
	_, ts := engineTestServer(t, Config{})
	do(t, ts, "POST", "/v1/engine/chips:batch",
		`{"chips":[{"id":"q0","temp_c":80,"vdd":1.2,"duty":1}]}`, http.StatusOK, nil)
	tickN(t, ts, 10)

	var tel TelemetryResponse
	do(t, ts, "GET", "/v1/telemetry?series=margin_min_v&since=6&limit=3", "", http.StatusOK, &tel)
	if len(tel.Series) != 1 {
		t.Fatalf("series filter leaked: got %d series", len(tel.Series))
	}
	got := tel.Series["margin_min_v"]
	if len(got) != 3 || got[0].Epoch != 8 || got[2].Epoch != 10 {
		t.Fatalf("since+limit window = %+v, want epochs 8..10", got)
	}
	// Epoch reflects the whole DB, not the filtered view.
	if tel.Epoch != 10 {
		t.Fatalf("epoch = %d, want 10", tel.Epoch)
	}

	// Epochs 1..10 under step=5 land in buckets 0 (1-4), 1 (5-9), 2 (10).
	do(t, ts, "GET", "/v1/telemetry?series=margin_min_v&step=5", "", http.StatusOK, &tel)
	if got := tel.Series["margin_min_v"]; len(got) != 3 {
		t.Fatalf("step=5 over epochs 1..10 gave %d buckets, want 3", len(got))
	}

	for _, q := range []string{"since=x", "step=0", "limit=-1"} {
		do(t, ts, "GET", "/v1/telemetry?"+q, "", http.StatusBadRequest, nil)
	}
}

// startTelemetryCluster boots a two-node engine-enabled cluster with
// manual clocks, returning the servers, their URLs, and the raw
// httptest servers (so a test can kill one node).
func startTelemetryCluster(t *testing.T) (srvs map[string]*Server, urls map[string]string, raws map[string]*httptest.Server) {
	t.Helper()
	swaps := map[string]*swapHandler{"a": {}, "b": {}}
	urls = make(map[string]string, 2)
	raws = make(map[string]*httptest.Server, 2)
	for _, id := range []string{"a", "b"} {
		ts := httptest.NewServer(swaps[id])
		t.Cleanup(ts.Close)
		urls[id] = ts.URL
		raws[id] = ts
	}
	srvs = make(map[string]*Server, 2)
	for _, id := range []string{"a", "b"} {
		s, err := New(Config{
			Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
			Cluster:       &ClusterConfig{NodeID: id, Peers: urls},
			EngineEnabled: true,
			EngineEpoch:   -1,
		})
		if err != nil {
			t.Fatalf("New(%s): %v", id, err)
		}
		t.Cleanup(s.Close)
		srvs[id] = s
		var h http.Handler = s.Handler()
		swaps[id].h.Store(&h)
	}
	return srvs, urls, raws
}

func TestFleetTelemetryFederation(t *testing.T) {
	_, _, raws := startTelemetryCluster(t)
	for _, id := range []string{"a", "b"} {
		ts := raws[id]
		do(t, ts, "POST", "/v1/engine/chips:batch",
			fmt.Sprintf(`{"chips":[{"id":"f-%s","temp_c":80,"vdd":1.2,"duty":1}]}`, id),
			http.StatusOK, nil)
		tickN(t, ts, 3)
	}

	// Any node answers for the whole fleet; both peers fresh.
	var fleet FleetTelemetryResponse
	do(t, raws["a"], "GET", "/v1/fleet/telemetry", "", http.StatusOK, &fleet)
	if fleet.NodeID != "a" || len(fleet.Nodes) != 2 {
		t.Fatalf("fleet from a = %+v, want 2 nodes", fleet)
	}
	byID := map[string]NodeTelemetry{}
	for _, n := range fleet.Nodes {
		byID[n.NodeID] = n
	}
	if !byID["a"].Self || byID["b"].Self {
		t.Fatalf("self flags wrong: a.self=%v b.self=%v", byID["a"].Self, byID["b"].Self)
	}
	for _, id := range []string{"a", "b"} {
		n := byID[id]
		if n.Stale || n.Error != "" || n.Telemetry == nil {
			t.Fatalf("node %s section = %+v, want fresh", id, n)
		}
		if n.Telemetry.Epoch != 3 || len(n.Telemetry.Series["margin_min_v"]) == 0 {
			t.Fatalf("node %s telemetry = %+v, want epoch 3 with margin series", id, n.Telemetry)
		}
	}
	if fleet.StaleNodes != 0 {
		t.Fatalf("stale_nodes = %d, want 0", fleet.StaleNodes)
	}

	// Query params federate: the filter applies to every section. A
	// fresh response var — decoding into the reused one would merge the
	// old series maps through the retained Telemetry pointers.
	var filtered FleetTelemetryResponse
	do(t, raws["b"], "GET", "/v1/fleet/telemetry?series=engine_chips&limit=1", "", http.StatusOK, &filtered)
	for _, n := range filtered.Nodes {
		if len(n.Telemetry.Series) != 1 || len(n.Telemetry.Series["engine_chips"]) != 1 {
			t.Fatalf("federated filter leaked on %s: %+v", n.NodeID, n.Telemetry.Series)
		}
	}

	// Kill b: the fleet view from a must mark b stale with an error —
	// a hole in the view, not a failed response.
	raws["b"].Close()
	var holed FleetTelemetryResponse
	do(t, raws["a"], "GET", "/v1/fleet/telemetry", "", http.StatusOK, &holed)
	byID = map[string]NodeTelemetry{}
	for _, n := range holed.Nodes {
		byID[n.NodeID] = n
	}
	if n := byID["b"]; !n.Stale || n.Error == "" {
		t.Fatalf("killed node b section = %+v, want stale with error", n)
	}
	if n := byID["a"]; n.Stale {
		t.Fatalf("live node a marked stale: %+v", n)
	}
	if holed.StaleNodes != 1 {
		t.Fatalf("stale_nodes = %d, want 1", holed.StaleNodes)
	}

	// The Prometheus federation branch renders per-node health.
	resp, err := http.Get(raws["a"].URL + "/metrics?federate=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`telemetry_federate_up{node="a"} 1`,
		`telemetry_federate_up{node="b"} 0`,
		`telemetry_federate_stale{node="b"} 1`,
		`telemetry_margin_min_v{node="a"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics?federate=1 missing %q:\n%s", want, text)
		}
	}
}

// TestSLOMarginRecoveryBreach drives the monitor directly: a window
// where most releases miss the 90% recovery bar must breach the
// paper's-headline SLO and push a typed alert, then recover once the
// counters advance in lockstep again.
func TestSLOMarginRecoveryBreach(t *testing.T) {
	m := newSLOMonitor(sloConfig{Window: 5})
	db := tsdb.New(64)

	// Epochs 1..3: 3 releases, all recovered ≥90% — green.
	for e := uint64(1); e <= 3; e++ {
		db.Append("guard_releases_total", e, float64(e))
		db.Append("guard_recovered90_total", e, float64(e))
		m.evaluate(e, db)
	}
	statuses, alerts := m.snapshot(10)
	for _, st := range statuses {
		if st.SLO == SLOMarginRecovery && !st.OK {
			t.Fatalf("green window breached: %+v", st)
		}
	}
	if len(alerts) != 0 {
		t.Fatalf("alerts on a green window: %+v", alerts)
	}

	// Epochs 4..6: releases keep coming, recoveries stall — breach.
	for e := uint64(4); e <= 6; e++ {
		db.Append("guard_releases_total", e, float64(e+4))
		db.Append("guard_recovered90_total", e, 3)
		m.evaluate(e, db)
	}
	statuses, alerts = m.snapshot(10)
	var mr SLOStatus
	for _, st := range statuses {
		if st.SLO == SLOMarginRecovery {
			mr = st
		}
	}
	if mr.OK || mr.Burn <= 1 {
		t.Fatalf("stalled recovery did not breach: %+v", mr)
	}
	if len(alerts) == 0 || alerts[0].SLO != SLOMarginRecovery || alerts[0].Kind != "breach" {
		t.Fatalf("alerts = %+v, want a margin_recovery breach", alerts)
	}
	_, breaches := m.counters()
	if breaches == 0 {
		t.Fatal("breach counter did not advance")
	}

	// The window slides past the stall with counters in lockstep again
	// — recovered, with the matching typed alert.
	for e := uint64(7); e <= 12; e++ {
		db.Append("guard_releases_total", e, float64(e+4))
		db.Append("guard_recovered90_total", e, float64(e+4))
		m.evaluate(e, db)
	}
	statuses, alerts = m.snapshot(1)
	for _, st := range statuses {
		if st.SLO == SLOMarginRecovery && !st.OK {
			t.Fatalf("monitor stuck in breach: %+v", st)
		}
	}
	if len(alerts) != 1 || alerts[0].Kind != "recovered" {
		t.Fatalf("newest alert = %+v, want recovered", alerts)
	}
}

// TestTelemetryConcurrentScrapes is the race hammer: federation
// scrapes, trace-ring reads, engine ticks and mutations all at once.
// Run with -race (CI does) to make it meaningful.
func TestTelemetryConcurrentScrapes(t *testing.T) {
	_, urls, raws := startTelemetryCluster(t)
	for _, id := range []string{"a", "b"} {
		do(t, raws[id], "POST", "/v1/engine/chips:batch",
			fmt.Sprintf(`{"chips":[{"id":"r-%s","temp_c":90,"vdd":1.25,"duty":1}]}`, id),
			http.StatusOK, nil)
	}
	get := func(url string) {
		resp, err := http.Get(url)
		if err != nil {
			return // the point is races, not availability
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	var wg sync.WaitGroup
	const iters = 30
	for _, id := range []string{"a", "b"} {
		id := id
		wg.Add(4)
		go func() { // epochs keep recording
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tickN(t, raws[id], 1)
			}
		}()
		go func() { // federation fans out while epochs record
			defer wg.Done()
			for i := 0; i < iters; i++ {
				get(urls[id] + "/v1/fleet/telemetry")
			}
		}()
		go func() { // trace ring reads race the middleware writes
			defer wg.Done()
			for i := 0; i < iters; i++ {
				get(urls[id] + "/debug/traces")
				get(urls[id] + "/v1/telemetry?limit=5")
			}
		}()
		go func(id string) { // mutations feed the throughput counters
			defer wg.Done()
			for i := 0; i < iters; i++ {
				do(t, raws[id], "POST", "/v1/chips",
					fmt.Sprintf(`{"id":"race-%s-%d","seed":1}`, id, i), http.StatusCreated, nil)
			}
		}(id)
	}
	wg.Wait()
	var fleet FleetTelemetryResponse
	do(t, raws["a"], "GET", "/v1/fleet/telemetry", "", http.StatusOK, &fleet)
	if len(fleet.Nodes) != 2 || fleet.StaleNodes != 0 {
		t.Fatalf("fleet after hammer = %+v, want 2 fresh nodes", fleet)
	}
}
