package serve

import (
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"

	"selfheal/internal/engine"
	"selfheal/internal/guard"
	"selfheal/internal/obs/tsdb"
	"selfheal/internal/repl"
)

// telemetry is the node's per-epoch recorder: an engine OnEpoch hook
// that reduces each snapshot (plus guard, replication and request
// counters) to fleet aggregates and appends them to the fixed-memory
// TSDB, then lets the SLO monitor evaluate its rolling windows. It
// runs on the engine's ticking goroutine — after the tick lock is
// released, never during replay — so everything here must be cheap and
// must only take leaf locks (telemetry.mu, tsdb, the SLO monitor's).
type telemetry struct {
	db  *tsdb.DB
	slo *sloMonitor

	mu      sync.Mutex
	prevVth map[string]float64 // last epoch's per-chip Vth, for aging rates
	mutPrev uint64             // mutating-request total at the last epoch
	errPrev uint64             // 5xx mutating-request total at the last epoch
	seeded  bool
}

func newTelemetry(capacity int, slo *sloMonitor) *telemetry {
	return &telemetry{
		db:      tsdb.New(capacity),
		slo:     slo,
		prevVth: make(map[string]float64),
	}
}

// record reduces one epoch. gd and aging may be nil during startup
// (the OnEpoch hook can fire before New finishes wiring); repl stats
// may be nil outside cluster mode.
func (t *telemetry) record(epoch uint64, snap *engine.Snapshot, aging *engine.Engine, gd *guard.Guard, replStats func() *repl.Stats, mutTotal, mutErrs uint64) {
	db := t.db

	// Margin distribution. Margin is the guard band still unconsumed,
	// the negated Vth shift: the most-aged chip has the minimum margin.
	var margins []float64
	for pi := range snap.Parts {
		for _, vth := range snap.Parts[pi].Vth {
			margins = append(margins, -vth)
		}
	}
	if len(margins) > 0 {
		sort.Float64s(margins)
		db.Append("margin_min_v", epoch, margins[0])
		db.Append("margin_p50_v", epoch, percentile(margins, 0.50))
		db.Append("margin_p95_v", epoch, percentile(margins, 0.95))
	}

	// Aging-rate distribution: per-chip ΔVth since the previous epoch.
	t.mu.Lock()
	rates := make([]float64, 0, len(t.prevVth))
	next := make(map[string]float64, len(t.prevVth))
	for pi := range snap.Parts {
		pv := &snap.Parts[pi]
		for i, id := range pv.IDs {
			if i >= len(pv.Vth) {
				break
			}
			if prev, ok := t.prevVth[id]; ok {
				rates = append(rates, pv.Vth[i]-prev)
			}
			next[id] = pv.Vth[i]
		}
	}
	t.prevVth = next
	seeded := t.seeded
	dMut, dErr := mutTotal-t.mutPrev, mutErrs-t.errPrev
	t.mutPrev, t.errPrev = mutTotal, mutErrs
	t.seeded = true
	t.mu.Unlock()
	if len(rates) > 0 {
		sort.Float64s(rates)
		db.Append("aging_rate_p50_v", epoch, percentile(rates, 0.50))
		db.Append("aging_rate_p95_v", epoch, percentile(rates, 0.95))
		db.Append("aging_rate_max_v", epoch, rates[len(rates)-1])
	}

	// Mutation throughput: per-epoch deltas of the mutating-route
	// request counters. The first epoch has no baseline, so skip it.
	if seeded {
		db.Append("mutations_per_epoch", epoch, float64(dMut))
		db.Append("mutation_errors_per_epoch", epoch, float64(dErr))
	}

	if aging != nil {
		st := aging.Stats()
		db.Append("epoch_lag_seconds", epoch, st.EpochLagSeconds)
		db.Append("tick_seconds", epoch, st.LastTickSeconds)
		db.Append("engine_chips", epoch, float64(st.Chips))
	}

	if gd != nil {
		gm := gd.MetricsSnapshot()
		db.Append("quarantined_chips", epoch, float64(gm.QuarantinedChips))
		db.Append("guard_alerts_total", epoch, float64(gm.AlertsTotal))
		db.Append("guard_releases_total", epoch, float64(gm.ReleasesTotal))
		db.Append("guard_recovered90_total", epoch, float64(gm.Recovered90Total))
	}

	if replStats != nil {
		if rs := replStats(); rs != nil {
			db.Append("repl_lag_records", epoch, float64(rs.LagRecords))
			connected := 0.0
			if rs.Connected {
				connected = 1
			}
			db.Append("repl_connected", epoch, connected)
		}
	}

	t.slo.evaluate(epoch, db)
}

// percentile returns the nearest-rank percentile of a sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// TelemetryResponse is the GET /v1/telemetry body — one node's
// per-epoch series, optionally filtered and downsampled.
type TelemetryResponse struct {
	NodeID string `json:"node_id"`
	// Epoch is the newest recorded epoch, LastUnix its wall time —
	// what federation staleness checks compare against. Both zero on a
	// node that has recorded nothing (engine disabled or just booted).
	Epoch    uint64 `json:"epoch"`
	LastUnix int64  `json:"last_unix,omitempty"`
	// Capacity is the per-series ring size (how many epochs are kept).
	Capacity int                      `json:"capacity"`
	Series   map[string][]tsdb.Sample `json:"series"`
	SLO      []SLOStatus              `json:"slo,omitempty"`
	Alerts   []SLOAlert               `json:"slo_alerts,omitempty"`
}

// parseTelemetryQuery reads the shared query grammar:
//
//	series=margin_p50_v,epoch_lag_seconds   comma-separated names ("" = all)
//	since=1200                              only samples at epoch >= since
//	step=4                                  downsample: mean per step-epoch bucket
//	limit=100                               newest samples kept per series
func parseTelemetryQuery(q url.Values) (names []string, query tsdb.Query, err string) {
	if v := q.Get("series"); v != "" {
		for _, name := range strings.Split(v, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
	}
	if v := q.Get("since"); v != "" {
		n, perr := strconv.ParseUint(v, 10, 64)
		if perr != nil {
			return nil, query, "serve: since must be a non-negative integer, got " + strconv.Quote(v)
		}
		query.SinceEpoch = n
	}
	if v := q.Get("step"); v != "" {
		n, perr := strconv.ParseUint(v, 10, 64)
		if perr != nil || n < 1 {
			return nil, query, "serve: step must be a positive integer, got " + strconv.Quote(v)
		}
		query.Step = n
	}
	if v := q.Get("limit"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 1 {
			return nil, query, "serve: limit must be a positive integer, got " + strconv.Quote(v)
		}
		query.Limit = n
	}
	return names, query, ""
}

// localTelemetry assembles this node's response.
func (s *Server) localTelemetry(names []string, query tsdb.Query) TelemetryResponse {
	t := s.telem
	resp := TelemetryResponse{
		NodeID:   s.nodeID(),
		Capacity: t.db.Capacity(),
		Series:   make(map[string][]tsdb.Sample),
	}
	if len(names) == 0 {
		names = t.db.Names()
	}
	for _, name := range names {
		if samples := t.db.Select(name, query); samples != nil {
			resp.Series[name] = samples
		}
	}
	// The newest epoch across all series (not just the selected ones),
	// so staleness does not depend on the filter.
	for _, name := range t.db.Names() {
		if sm, ok := t.db.Latest(name); ok {
			if sm.Epoch > resp.Epoch {
				resp.Epoch = sm.Epoch
			}
			if sm.Unix > resp.LastUnix {
				resp.LastUnix = sm.Unix
			}
		}
	}
	resp.SLO, resp.Alerts = s.telem.slo.snapshot(50)
	return resp
}

// nodeID names this node in telemetry and traces: the cluster node id,
// or "single" outside cluster mode.
func (s *Server) nodeID() string {
	if s.cluster != nil {
		return s.cluster.nodeID
	}
	return "single"
}

// telemetryMetrics assembles the telemetry section of a
// MetricsSnapshot.
func (s *Server) telemetryMetrics() *TelemetryMetrics {
	t := s.telem
	if t == nil {
		return nil
	}
	st := t.db.Stats()
	tm := &TelemetryMetrics{Series: st.Series, Capacity: st.Capacity, Rejected: st.Rejected}
	for _, name := range t.db.Names() {
		if sm, ok := t.db.Latest(name); ok && sm.Epoch > tm.LastEpoch {
			tm.LastEpoch = sm.Epoch
		}
	}
	tm.SLO, _ = t.slo.snapshot(1)
	tm.SLOAlertsTotal, tm.SLOBreaches = t.slo.counters()
	return tm
}

// handleTelemetry is GET /v1/telemetry: this node's per-epoch aging
// time-series (see parseTelemetryQuery for the parameters).
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	names, query, errMsg := parseTelemetryQuery(r.URL.Query())
	if errMsg != "" {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: errMsg, RequestID: RequestIDFrom(r.Context())})
		return
	}
	s.writeJSON(w, http.StatusOK, s.localTelemetry(names, query))
}
