package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"selfheal/internal/fleet"
	"selfheal/internal/store"
)

// engineTestServer builds a server with the aging engine on and the
// background ticker off, so tests drive epochs deterministically.
func engineTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.EngineEnabled = true
	cfg.EngineEpoch = -1
	s, ts := newTestServer(t, cfg)
	t.Cleanup(s.Close)
	return s, ts
}

func TestEngineRoutesDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var status EngineStatusResponse
	do(t, ts, "GET", "/v1/engine", "", http.StatusOK, &status)
	if status.Enabled || status.Stats != nil {
		t.Fatalf("disabled engine status = %+v", status)
	}
	var er ErrorResponse
	do(t, ts, "GET", "/v1/engine/chips/x", "", http.StatusNotFound, &er)
	if !strings.Contains(er.Error, "-engine") {
		t.Fatalf("disabled-engine error %q should point at the -engine flag", er.Error)
	}
	do(t, ts, "POST", "/v1/engine/chips:batch", `{"chips":[{"id":"x","temp_c":80,"vdd":1.2,"duty":1}]}`,
		http.StatusNotFound, nil)
}

func TestEngineRoutes(t *testing.T) {
	s, ts := engineTestServer(t, Config{})

	var status EngineStatusResponse
	do(t, ts, "GET", "/v1/engine", "", http.StatusOK, &status)
	if !status.Enabled || status.Stats == nil || status.Stats.Chips != 0 {
		t.Fatalf("engine status = %+v", status)
	}

	var reg EngineRegisterResponse
	do(t, ts, "POST", "/v1/engine/chips:batch",
		`{"chips":[
			{"id":"e0","temp_c":105,"vdd":1.32,"duty":1},
			{"id":"e1","temp_c":80,"vdd":1.2,"duty":0.5,
			 "schedule":{"stress_epochs":2,"sleep_epochs":2,"sleep_temp_c":40,"sleep_vdd":-0.3}},
			{"id":"e0","temp_c":80,"vdd":1.2,"duty":1}
		]}`, http.StatusOK, &reg)
	if reg.Registered != 2 || reg.Failed != 1 {
		t.Fatalf("register response: %+v", reg)
	}
	if reg.Results[2].Error == "" || !strings.Contains(reg.Results[2].Error, "twice") {
		t.Fatalf("duplicate-in-batch item: %+v", reg.Results[2])
	}

	// Reads see the registration without any epoch having passed.
	var cv map[string]any
	do(t, ts, "GET", "/v1/engine/chips/e0", "", http.StatusOK, &cv)
	if cv["id"] != "e0" || cv["phase"] != "stress" {
		t.Fatalf("chip view: %v", cv)
	}
	do(t, ts, "GET", "/v1/engine/chips/ghost", "", http.StatusNotFound, nil)

	// Advance three epochs; the DC chip's odometer follows.
	for i := 0; i < 3; i++ {
		s.AgingEngine().Tick(context.Background())
	}
	do(t, ts, "GET", "/v1/engine/chips/e0", "", http.StatusOK, &cv)
	if cv["odometer_epochs"].(float64) != 3 || cv["vth_shift_v"].(float64) <= 0 {
		t.Fatalf("aged chip view: %v", cv)
	}

	// Condition and schedule changes round-trip, invalid ones 400.
	do(t, ts, "POST", "/v1/engine/chips/e0/condition",
		`{"phase":"sleep","temp_c":35,"vdd":-0.4,"duty":1}`, http.StatusOK, &cv)
	if cv["phase"] != "sleep" {
		t.Fatalf("condition change: %v", cv)
	}
	do(t, ts, "POST", "/v1/engine/chips/e0/condition",
		`{"phase":"hibernate","temp_c":35,"vdd":0,"duty":1}`, http.StatusBadRequest, nil)
	do(t, ts, "POST", "/v1/engine/chips/ghost/condition",
		`{"temp_c":80,"vdd":1.2,"duty":1}`, http.StatusNotFound, nil)
	do(t, ts, "POST", "/v1/engine/chips/e1/schedule",
		`{"stress_epochs":4,"sleep_epochs":4,"sleep_temp_c":30,"sleep_vdd":0}`, http.StatusOK, nil)
	do(t, ts, "POST", "/v1/engine/chips/e1/schedule",
		`{"stress_epochs":4}`, http.StatusBadRequest, nil)

	var del EngineDeleteResponse
	do(t, ts, "DELETE", "/v1/engine/chips/e1", "", http.StatusOK, &del)
	if !del.Removed {
		t.Fatalf("delete response: %+v", del)
	}
	do(t, ts, "GET", "/v1/engine/chips/e1", "", http.StatusNotFound, nil)
	do(t, ts, "DELETE", "/v1/engine/chips/e1", "", http.StatusNotFound, nil)
}

func TestEngineMirrorsFleet(t *testing.T) {
	_, ts := engineTestServer(t, Config{})

	do(t, ts, "POST", "/v1/chips", `{"id":"f0","seed":3}`, http.StatusCreated, nil)
	var cv map[string]any
	do(t, ts, "GET", "/v1/engine/chips/f0", "", http.StatusOK, &cv)
	if cv["phase"] != "stress" {
		t.Fatalf("fleet twin: %v", cv)
	}

	// Fleet-backed chips refuse the engine's own delete...
	var er ErrorResponse
	do(t, ts, "DELETE", "/v1/engine/chips/f0", "", http.StatusBadRequest, &er)
	if !strings.Contains(er.Error, "fleet") {
		t.Fatalf("engine delete of fleet chip: %q", er.Error)
	}
	// ...and follow the fleet's delete automatically.
	do(t, ts, "DELETE", "/v1/chips/f0", "", http.StatusOK, nil)
	do(t, ts, "GET", "/v1/engine/chips/f0", "", http.StatusNotFound, nil)
}

func TestEngineSyncOnStartup(t *testing.T) {
	dir := t.TempDir()

	// First life: no engine — a fleet that predates it.
	st1, _, err := store.Open[*fleet.ChipEntry](dir, store.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, Config{Store: st1})
	do(t, ts1, "POST", "/v1/chips", `{"id":"old","seed":11}`, http.StatusCreated, nil)
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: engine on — the pre-engine fleet chip must be synced
	// in at startup.
	st2, _, err := store.Open[*fleet.ChipEntry](dir, store.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	_, ts2 := engineTestServer(t, Config{Store: st2})
	do(t, ts2, "GET", "/v1/engine/chips/old", "", http.StatusOK, nil)
}

func TestEngineMetricsExposition(t *testing.T) {
	s, ts := engineTestServer(t, Config{MetricsChipLimit: 3})

	var specs []string
	for i := 0; i < 8; i++ {
		specs = append(specs, fmt.Sprintf(`{"id":"m%d","temp_c":80,"vdd":1.2,"duty":1}`, i))
	}
	do(t, ts, "POST", "/v1/engine/chips:batch",
		`{"chips":[`+strings.Join(specs, ",")+`]}`, http.StatusOK, nil)
	for i := 0; i < 2; i++ {
		s.AgingEngine().Tick(context.Background())
	}

	var snap MetricsSnapshot
	do(t, ts, "GET", "/metrics", "", http.StatusOK, &snap)
	if snap.Engine == nil {
		t.Fatal("metrics snapshot has no engine section")
	}
	if snap.Engine.Stats.Chips != 8 || snap.Engine.Stats.Epoch != 2 {
		t.Fatalf("engine stats: %+v", snap.Engine.Stats)
	}
	if snap.Engine.OdometerSum != 16 {
		t.Fatalf("odometer sum %d, want 16", snap.Engine.OdometerSum)
	}
	if len(snap.Engine.Top) != 3 {
		t.Fatalf("top list has %d chips, want the 3-chip cap", len(snap.Engine.Top))
	}

	resp, raw := doRaw(t, ts, "GET", "/metrics?format=prometheus", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prometheus scrape: %d", resp.StatusCode)
	}
	body := string(raw)
	for _, w := range []string{
		"selfheal_engine_epoch 2",
		"selfheal_engine_chips 8",
		"selfheal_engine_odometer_epochs_sum 16",
		"selfheal_engine_ticks_total 2",
		"selfheal_engine_epoch_lag_seconds",
		"selfheal_engine_chips_per_second",
	} {
		if !strings.Contains(body, w) {
			t.Fatalf("prometheus exposition missing %q", w)
		}
	}
	if n := strings.Count(body, "selfheal_engine_chip_odometer_epochs{"); n != 3 {
		t.Fatalf("engine per-chip odometer series = %d, want the 3-chip cap", n)
	}
}

// TestPromChipCardinalityCap drives the fleet-chip exposition past the
// limit and checks only the most-stressed chips keep per-chip series
// while the aggregates cover everyone.
func TestPromChipCardinalityCap(t *testing.T) {
	_, ts := newTestServer(t, Config{MetricsChipLimit: 2})

	for i := 0; i < 4; i++ {
		do(t, ts, "POST", "/v1/chips", fmt.Sprintf(`{"id":"p%d","seed":%d}`, i, i+1), http.StatusCreated, nil)
	}
	// p3 accumulates the most stress time, p2 next.
	do(t, ts, "POST", "/v1/chips/p3/stress", `{"temp_c":105,"vdd":1.32,"hours":10}`, http.StatusOK, nil)
	do(t, ts, "POST", "/v1/chips/p2/stress", `{"temp_c":105,"vdd":1.32,"hours":5}`, http.StatusOK, nil)

	resp, raw := doRaw(t, ts, "GET", "/metrics?format=prometheus", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prometheus scrape: %d", resp.StatusCode)
	}
	body := string(raw)
	if n := strings.Count(body, "selfheal_chip_ops_total{"); n != 2 {
		t.Fatalf("per-chip ops series = %d, want the 2-chip cap", n)
	}
	for _, w := range []string{
		`selfheal_chip_ops_total{chip="p2"`,
		`selfheal_chip_ops_total{chip="p3"`,
		"selfheal_chips 4",
		"selfheal_chip_stress_seconds_sum",
	} {
		if !strings.Contains(body, w) {
			t.Fatalf("prometheus exposition missing %q", w)
		}
	}

	// The JSON body is never truncated.
	var snap MetricsSnapshot
	do(t, ts, "GET", "/metrics", "", http.StatusOK, &snap)
	if len(snap.Chips) != 4 {
		t.Fatalf("JSON metrics lists %d chips, want all 4", len(snap.Chips))
	}
}

func TestEngineTickRoute(t *testing.T) {
	_, ts := engineTestServer(t, Config{})
	do(t, ts, "POST", "/v1/engine/chips:batch",
		`{"chips":[{"id":"t1","temp_c":80,"vdd":1.2,"duty":1}]}`, http.StatusOK, nil)

	// An empty body advances one epoch; a counted body advances many.
	var tick EngineTickResponse
	do(t, ts, "POST", "/v1/engine/tick", "", http.StatusOK, &tick)
	if tick.Ticked != 1 || tick.Epoch != 1 {
		t.Fatalf("single tick = %+v", tick)
	}
	do(t, ts, "POST", "/v1/engine/tick", `{"epochs":9}`, http.StatusOK, &tick)
	if tick.Ticked != 9 || tick.Epoch != 10 {
		t.Fatalf("batch tick = %+v", tick)
	}
	var cv struct {
		Odometer uint64 `json:"odometer_epochs"`
	}
	do(t, ts, "GET", "/v1/engine/chips/t1", "", http.StatusOK, &cv)
	if cv.Odometer != 10 {
		t.Fatalf("odometer %d after 10 manual epochs", cv.Odometer)
	}

	do(t, ts, "POST", "/v1/engine/tick", `{"epochs":0}`, http.StatusBadRequest, nil)
	do(t, ts, "POST", "/v1/engine/tick", `{"epochs":1000000}`, http.StatusBadRequest, nil)

	// A wall-driven clock refuses manual ticks: one clock owner only.
	_, wall := newTestServer(t, Config{EngineEnabled: true, EngineEpoch: time.Hour})
	var er ErrorResponse
	do(t, wall, "POST", "/v1/engine/tick", "", http.StatusConflict, &er)
	if !strings.Contains(er.Error, "-epoch") {
		t.Fatalf("wall-clock refusal %q should point at -epoch", er.Error)
	}

	// No engine, no clock.
	_, off := newTestServer(t, Config{})
	do(t, off, "POST", "/v1/engine/tick", "", http.StatusNotFound, nil)
}
