// Batch client acceptance: the Batch* helpers drive the batch
// endpoints end to end through the public selfheal/client, per-item
// errors arrive over the wire, and a batch-built fleet replays across
// a hard stop.
package serve_test

import (
	"context"
	"fmt"
	"testing"

	"selfheal/client"
)

func TestClientBatchHelpersEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	_, ts := newDurableServer(t, dir, nil) // store deliberately not closed: hard stop below
	cl := client.New(ts.URL)

	const fleetSize = 5
	specs := make([]client.CreateChipRequest, 0, fleetSize+1)
	for i := 0; i < fleetSize; i++ {
		specs = append(specs, client.CreateChipRequest{ID: fmt.Sprintf("c%d", i), Seed: uint64(i + 1)})
	}
	specs = append(specs, client.CreateChipRequest{ID: "c0", Seed: 99}) // duplicate of item 0

	created, err := cl.BatchCreateChips(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if created.Created != fleetSize || created.Failed != 1 {
		t.Fatalf("batch create = %d/%d, want %d/1; results %+v",
			created.Created, created.Failed, fleetSize, created.Results)
	}
	// Per-item errors cross the wire; the typed Err never does.
	if r := created.Results[fleetSize]; r.Error == "" || r.Chip != nil {
		t.Fatalf("duplicate result over the wire = %+v", r)
	}
	if r := created.Results[0]; r.Error != "" || r.Chip == nil || r.Chip.FreshDelayNS <= 0 {
		t.Fatalf("created result over the wire = %+v", r)
	}

	ops := make([]client.BatchOpSpec, 0, 2*fleetSize+1)
	for i := 0; i < fleetSize; i++ {
		ops = append(ops, client.BatchOpSpec{
			Op: "stress", ID: fmt.Sprintf("c%d", i),
			PhaseRequest: client.PhaseRequest{TempC: 110, Vdd: 1.32, AC: true, Hours: 24},
		})
		ops = append(ops, client.BatchOpSpec{Op: "measure", ID: fmt.Sprintf("c%d", i)})
	}
	ops = append(ops, client.BatchOpSpec{Op: "measure", ID: "ghost"})

	applied, err := cl.BatchOps(ctx, ops)
	if err != nil {
		t.Fatal(err)
	}
	if applied.Succeeded != 2*fleetSize || applied.Failed != 1 {
		t.Fatalf("batch ops = %d/%d; results %+v", applied.Succeeded, applied.Failed, applied.Results)
	}
	preCrash := map[string]client.ReadingResponse{}
	for _, r := range applied.Results[:2*fleetSize] {
		switch r.Op {
		case "stress":
			if r.Phase == nil || r.Error != "" {
				t.Fatalf("stress result = %+v", r)
			}
		case "measure":
			if r.Reading == nil || r.Error != "" {
				t.Fatalf("measure result = %+v", r)
			}
			preCrash[r.ID] = *r.Reading
		}
	}
	if r := applied.Results[2*fleetSize]; r.Error == "" || r.Reading != nil {
		t.Fatalf("ghost result = %+v", r)
	}

	// Hard stop, then the batch-built history must replay exactly.
	ts.Close()
	st2, ts2 := newDurableServer(t, dir, nil)
	defer st2.Close()
	cl2 := client.New(ts2.URL)
	fleet, err := cl2.ListChips(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != fleetSize {
		t.Fatalf("replayed fleet = %+v, want %d chips", fleet, fleetSize)
	}
	for i := 0; i < fleetSize; i++ {
		id := fmt.Sprintf("c%d", i)
		got, err := cl2.Measure(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if got != preCrash[id] {
			t.Fatalf("%s post-restart measure = %+v, want %+v", id, got, preCrash[id])
		}
	}
}
