// Package serve is the fleet aging service: an HTTP JSON API that
// hosts a registry of named simulated chips (stress / rejuvenate /
// measure, guarded per chip so different chips progress in parallel)
// and a stateless prediction engine for the closed-form model, fronted
// by a bounded LRU memo cache — every simulation here is deterministic
// given its parameters, so identical requests are served from cache.
//
// The wire types in this file are shared with the CLIs (`selfheal-mc
// -json`, `selfheal-margin -json`) so scripted pipelines see one
// schema whether they shell out or curl.
package serve

import (
	"encoding/json"
	"io"

	"selfheal"
	"selfheal/internal/fleet"
)

// WriteJSON writes v as two-space-indented JSON with a trailing
// newline — the one encoder behind every service response and every
// CLI -json flag.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// ErrorResponse is the body of every non-2xx response. RequestID (the
// X-Request-ID the client sent, or the one the service minted) links
// the error to the server-side request log. Code, when present, is a
// machine-readable classification (CodeDegraded or CodeQuarantined)
// that clients can branch on without parsing the message.
type ErrorResponse struct {
	Error     string `json:"error"`
	Code      string `json:"code,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// CodeDegraded marks a 503 caused by the journal being unable to make
// writes durable: the fleet is serving reads from memory and will
// restore write mode on its own when the storage recovers. Retry the
// operation after the Retry-After hint.
const CodeDegraded = "degraded"

// CodeQuarantined marks a 503 caused by the guard quarantining the
// target chip: mutations are refused while it heals under accelerated
// rejuvenation, reads keep serving, and the quarantine lifts on its
// own once the wearout excess is recovered. Retry the operation after
// the Retry-After hint (idempotent operations only — the chip's state
// is unchanged by the refusal).
const CodeQuarantined = "quarantined"

// ReadyResponse is the GET /readyz body: liveness stays on /healthz,
// while this reports *write*-readiness — 200 when mutating routes are
// accepted, 503 (with Reason) while the service is degraded.
type ReadyResponse struct {
	Status     string `json:"status"`
	WriteReady bool   `json:"write_ready"`
	Reason     string `json:"reason,omitempty"`
}

// Chip kinds accepted by CreateChipRequest.
const (
	KindBench     = fleet.KindBench
	KindMonitored = fleet.KindMonitored
)

// The chip-facing wire types live in the domain layer (internal/fleet)
// and are aliased here so the client and the CLIs keep importing one
// schema from one place.
type (
	// CreateChipRequest fabricates a chip into the fleet — the POST
	// /v1/chips body.
	CreateChipRequest = fleet.CreateSpec
	// ChipResponse describes one registered chip.
	ChipResponse = fleet.ChipResponse
	// ChipUsage is one chip's accumulated history under /metrics.
	ChipUsage = fleet.ChipUsage
	// PhaseRequest drives POST /v1/chips/{id}/stress and /rejuvenate.
	PhaseRequest = fleet.PhaseRequest
	// TracePoint is one sample of a bench chip's delay trace.
	TracePoint = fleet.TracePoint
	// PhaseResponse reports a completed stress or rejuvenation phase.
	PhaseResponse = fleet.PhaseResponse
	// ReadingResponse is a bench chip's ring-oscillator measurement.
	ReadingResponse = fleet.ReadingResponse
	// OdometerResponse is a monitored chip's differential sensor read-out.
	OdometerResponse = fleet.OdometerResponse
	// BatchOpSpec is one item of a POST /v1/ops:batch request.
	BatchOpSpec = fleet.OpSpec
	// BatchCreateResult is one item of a POST /v1/chips:batch response.
	BatchCreateResult = fleet.CreateResult
	// BatchOpResult is one item of a POST /v1/ops:batch response.
	BatchOpResult = fleet.OpResult
)

// ChipListResponse is the GET /v1/chips body.
type ChipListResponse struct {
	Chips []ChipResponse `json:"chips"`
}

// DeleteChipResponse is the DELETE /v1/chips/{id} body.
type DeleteChipResponse struct {
	ID      string `json:"id"`
	Deleted bool   `json:"deleted"`
}

// MaxBatchItems caps the item count of one batch request; larger
// batches are rejected 400 before any item runs — split them client
// side.
const MaxBatchItems = 1024

// BatchCreateRequest is the POST /v1/chips:batch body: up to
// MaxBatchItems chips fabricated concurrently.
type BatchCreateRequest struct {
	Chips []CreateChipRequest `json:"chips"`
}

// BatchCreateResponse reports a bulk create item by item:
// Results[i] corresponds to Chips[i], failures don't block the rest.
type BatchCreateResponse struct {
	Results []BatchCreateResult `json:"results"`
	Created int                 `json:"created"`
	Failed  int                 `json:"failed"`
}

// BatchOpsRequest is the POST /v1/ops:batch body: a mixed
// stress/rejuvenate/measure/odometer batch across many chips.
type BatchOpsRequest struct {
	Ops []BatchOpSpec `json:"ops"`
}

// BatchOpsResponse reports a mixed-operation batch item by item;
// Results[i] corresponds to Ops[i].
type BatchOpsResponse struct {
	Results   []BatchOpResult `json:"results"`
	Succeeded int             `json:"succeeded"`
	Failed    int             `json:"failed"`
}

// ShiftRequest evaluates the closed-form TD model: the threshold shift
// after StressHours under (TempC, Vdd, Duty), and — when SleepHours is
// set — the fraction of the recoverable shift a subsequent sleep under
// (SleepTempC, SleepVdd) removes.
type ShiftRequest struct {
	TempC       float64 `json:"temp_c"`
	Vdd         float64 `json:"vdd"`
	Duty        float64 `json:"duty"`
	StressHours float64 `json:"stress_hours"`
	SleepTempC  float64 `json:"sleep_temp_c,omitempty"`
	SleepVdd    float64 `json:"sleep_vdd,omitempty"`
	SleepHours  float64 `json:"sleep_hours,omitempty"`
}

// ShiftResponse is the POST /v1/predict/shift body.
type ShiftResponse struct {
	ShiftV            float64  `json:"shift_v"`
	RecoveredFraction *float64 `json:"recovered_fraction,omitempty"`
	Cached            bool     `json:"cached"`
}

// PolicySpec names one rejuvenation policy for a schedule comparison.
// Kind is "none", "proactive" (Alpha, SleepHours, SleepTempC,
// SleepVdd) or "reactive" (TriggerPct, RelaxPct, SleepTempC, SleepVdd).
type PolicySpec struct {
	Kind       string  `json:"kind"`
	Alpha      float64 `json:"alpha,omitempty"`
	SleepHours float64 `json:"sleep_hours,omitempty"`
	TriggerPct float64 `json:"trigger_pct,omitempty"`
	RelaxPct   float64 `json:"relax_pct,omitempty"`
	SleepTempC float64 `json:"sleep_temp_c,omitempty"`
	SleepVdd   float64 `json:"sleep_vdd,omitempty"`
}

// SchedulesRequest drives POST /v1/predict/schedules.
type SchedulesRequest struct {
	Seed        uint64       `json:"seed"`
	HorizonDays float64      `json:"horizon_days"`
	Policies    []PolicySpec `json:"policies"`
	// IncludeTrace adds per-policy degradation traces to the response
	// (they can be large; cached outcomes always retain them).
	IncludeTrace bool `json:"include_trace,omitempty"`
}

// ScheduleOutcomeBody mirrors selfheal.ScheduleOutcome on the wire.
type ScheduleOutcomeBody struct {
	Policy             string       `json:"policy"`
	ActiveFraction     float64      `json:"active_fraction"`
	PeakPct            float64      `json:"peak_pct"`
	FinalPct           float64      `json:"final_pct"`
	MeanPct            float64      `json:"mean_pct"`
	MarginProvisionPct float64      `json:"margin_provision_pct"`
	Trace              []TracePoint `json:"trace,omitempty"`
}

// SchedulesResponse is the POST /v1/predict/schedules body.
type SchedulesResponse struct {
	Outcomes []ScheduleOutcomeBody `json:"outcomes"`
	Cached   bool                  `json:"cached"`
}

// MulticoreRequest drives POST /v1/predict/multicore.
type MulticoreRequest struct {
	Scheduler string  `json:"scheduler"`
	Demand    int     `json:"demand"`
	Days      float64 `json:"days"`
}

// MulticoreResponse mirrors selfheal.MulticoreOutcome on the wire. It
// is also what `selfheal-mc -json` emits.
type MulticoreResponse struct {
	Scheduler    string    `json:"scheduler"`
	WorstPct     float64   `json:"worst_pct"`
	MeanPct      float64   `json:"mean_pct"`
	SpreadPct    float64   `json:"spread_pct"`
	HealSlots    int       `json:"heal_slots"`
	CoreSlots    int       `json:"core_slots"`
	PerCorePct   []float64 `json:"per_core_pct"`
	TemperatureC []float64 `json:"temperature_c"`
	Cached       bool      `json:"cached,omitempty"`
}

// NewMulticoreResponse converts a library outcome to the wire form.
func NewMulticoreResponse(out selfheal.MulticoreOutcome) MulticoreResponse {
	return MulticoreResponse{
		Scheduler:    out.Scheduler,
		WorstPct:     out.WorstPct,
		MeanPct:      out.MeanPct,
		SpreadPct:    out.SpreadPct,
		HealSlots:    out.HealSlots,
		CoreSlots:    out.CoreSlots,
		PerCorePct:   out.PerCorePct,
		TemperatureC: out.TemperatureC,
	}
}

// MarginResponse is what `selfheal-margin -json` emits: the mission
// profile and the margins/lifetimes the sign-off calculator derives.
// It lives here, beside the service's other response types, so the two
// output paths stay one schema.
type MarginResponse struct {
	ActiveHours       float64  `json:"active_hours"`
	ActiveTempC       float64  `json:"active_temp_c"`
	SleepHours        float64  `json:"sleep_hours,omitempty"`
	SleepTempC        float64  `json:"sleep_temp_c,omitempty"`
	SleepVdd          float64  `json:"sleep_vdd,omitempty"`
	Alpha             float64  `json:"alpha,omitempty"`
	Years             float64  `json:"years"`
	Safety            float64  `json:"safety"`
	RequiredMarginPct float64  `json:"required_margin_pct"`
	BaselineMarginPct *float64 `json:"baseline_margin_pct,omitempty"`
	RelaxedPct        *float64 `json:"relaxed_pct,omitempty"`
	// LifetimeYears is present when a -margin was given; null-equivalent
	// omission means it was not requested, +Inf is encoded as -1.
	LifetimeYears *float64 `json:"lifetime_years,omitempty"`
}

// NewScheduleOutcomeBodies converts library outcomes to wire form,
// optionally stripping the (large) traces.
func NewScheduleOutcomeBodies(outs []selfheal.ScheduleOutcome, includeTrace bool) []ScheduleOutcomeBody {
	bodies := make([]ScheduleOutcomeBody, len(outs))
	for i, o := range outs {
		b := ScheduleOutcomeBody{
			Policy:             o.Policy,
			ActiveFraction:     o.ActiveFraction,
			PeakPct:            o.PeakPct,
			FinalPct:           o.FinalPct,
			MeanPct:            o.MeanPct,
			MarginProvisionPct: o.MarginProvisionPct,
		}
		if includeTrace {
			b.Trace = fleet.NewTracePoints(o.Trace)
		}
		bodies[i] = b
	}
	return bodies
}
