package serve

import (
	"net/http"
	"strconv"

	"selfheal/internal/guard"
)

// GuardStatusResponse is the GET /v1/guard body: the blue team's
// configuration, quarantine roster, counters, and — when a red team is
// wired in — the adversary's view.
type GuardStatusResponse struct {
	Enabled bool          `json:"enabled"`
	Status  *guard.Status `json:"status,omitempty"`
}

// GuardAlertsResponse is the GET /v1/guard/alerts body, newest first.
type GuardAlertsResponse struct {
	Alerts []guard.Alert `json:"alerts"`
}

// GuardConfigRequest is the POST /v1/guard/config body: a spec in the
// guard.Parse grammar; omitted keys (and the empty spec) reset to the
// defaults.
type GuardConfigRequest struct {
	Spec string `json:"spec"`
}

// GuardService returns the guard, or nil when the service runs without
// one (exported for tests and embedders).
func (s *Server) GuardService() *guard.Guard { return s.guard }

// requireGuard 404s guard routes when the guard is not enabled.
func (s *Server) requireGuard(w http.ResponseWriter, r *http.Request) bool {
	if s.guard != nil {
		return true
	}
	s.writeJSON(w, http.StatusNotFound, ErrorResponse{
		Error:     "serve: guard not enabled; start the service with -guard",
		RequestID: RequestIDFrom(r.Context()),
	})
	return false
}

func (s *Server) handleGuardStatus(w http.ResponseWriter, r *http.Request) {
	if s.guard == nil {
		s.writeJSON(w, http.StatusOK, GuardStatusResponse{Enabled: false})
		return
	}
	st := s.guard.StatusSnapshot()
	s.writeJSON(w, http.StatusOK, GuardStatusResponse{Enabled: true, Status: &st})
}

func (s *Server) handleGuardAlerts(w http.ResponseWriter, r *http.Request) {
	if !s.requireGuard(w, r) {
		return
	}
	limit := 0
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			s.writeJSON(w, http.StatusBadRequest, ErrorResponse{
				Error:     "serve: bad limit " + strconv.Quote(raw) + " (want a non-negative integer)",
				RequestID: RequestIDFrom(r.Context()),
			})
			return
		}
		limit = n
	}
	alerts := s.guard.Alerts(limit)
	if alerts == nil {
		alerts = []guard.Alert{}
	}
	s.writeJSON(w, http.StatusOK, GuardAlertsResponse{Alerts: alerts})
}

func (s *Server) handleGuardConfig(w http.ResponseWriter, r *http.Request) {
	if !s.requireGuard(w, r) {
		return
	}
	var req GuardConfigRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	cfg, err := guard.Parse(req.Spec)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if err := s.guard.Reconfigure(cfg); err != nil {
		s.writeError(w, r, err)
		return
	}
	s.log.InfoContext(r.Context(), "guard reconfigured", "spec", cfg.String())
	st := s.guard.StatusSnapshot()
	s.writeJSON(w, http.StatusOK, GuardStatusResponse{Enabled: true, Status: &st})
}
