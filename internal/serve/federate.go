package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"selfheal/internal/obs"
	"selfheal/internal/obs/tsdb"
)

// Metrics federation: any node answers for the whole fleet by scraping
// its ring peers' /v1/telemetry concurrently. The answering node
// serves its own section locally (never HTTP-to-self, which would
// deadlock under the load shedder), labels every peer section with its
// node id, and marks peers it could not reach — or whose newest sample
// is old — as stale instead of failing the whole response: a killed
// node must show up as a hole in the fleet view, not take the view
// down with it.

// NodeTelemetry is one node's section of a fleet response.
type NodeTelemetry struct {
	NodeID string `json:"node_id"`
	Addr   string `json:"addr,omitempty"`
	Self   bool   `json:"self,omitempty"`
	// Error is the scrape failure, if any; Stale is set for both
	// scrape failures and nodes whose newest sample is older than the
	// staleness bound (AgeSeconds reports how old).
	Error      string             `json:"error,omitempty"`
	Stale      bool               `json:"stale"`
	AgeSeconds float64            `json:"age_seconds,omitempty"`
	Telemetry  *TelemetryResponse `json:"telemetry,omitempty"`
}

// FleetTelemetryResponse is the GET /v1/fleet/telemetry body.
type FleetTelemetryResponse struct {
	// NodeID is the node that answered (and did the scraping).
	NodeID     string          `json:"node_id"`
	Nodes      []NodeTelemetry `json:"nodes"`
	StaleNodes int             `json:"stale_nodes"`
}

// gatherFleet scrapes every ring peer concurrently. Outside cluster
// mode the "fleet" is this node alone. rawQuery is passed through to
// the peers so filtering/downsampling federates too.
func (s *Server) gatherFleet(ctx context.Context, names []string, query tsdb.Query, rawQuery string) FleetTelemetryResponse {
	resp := FleetTelemetryResponse{NodeID: s.nodeID()}
	self := NodeTelemetry{NodeID: s.nodeID(), Self: true}
	local := s.localTelemetry(names, query)
	self.Telemetry = &local
	if s.cluster == nil {
		resp.Nodes = []NodeTelemetry{s.markStale(self)}
		resp.StaleNodes = countStale(resp.Nodes)
		return resp
	}

	peers := s.cluster.peerList()
	nodes := make([]NodeTelemetry, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		if peer.Self {
			self.Addr = peer.Addr
			nodes[i] = s.markStale(self)
			continue
		}
		wg.Add(1)
		go func(i int, id, addr string) {
			defer wg.Done()
			nodes[i] = s.markStale(s.scrapePeer(ctx, id, addr, rawQuery))
		}(i, peer.ID, peer.Addr)
	}
	wg.Wait()
	resp.Nodes = nodes
	resp.StaleNodes = countStale(nodes)
	return resp
}

// scrapePeer fetches one peer's /v1/telemetry, propagating the
// caller's trace context so the fan-out shows up as one distributed
// trace across every node's ring.
func (s *Server) scrapePeer(ctx context.Context, id, addr, rawQuery string) NodeTelemetry {
	nt := NodeTelemetry{NodeID: id, Addr: addr}
	ctx, cancel := context.WithTimeout(ctx, s.cfg.FederateTimeout)
	defer cancel()
	url := addr + "/v1/telemetry"
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		nt.Error = err.Error()
		return nt
	}
	if tp := obs.TraceContextValue(ctx); tp != "" {
		req.Header.Set(obs.TraceContextHeader, tp)
	}
	if rid := RequestIDFrom(ctx); rid != "" {
		req.Header.Set("X-Request-ID", rid)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		nt.Error = err.Error()
		return nt
	}
	defer res.Body.Close()
	body, err := io.ReadAll(io.LimitReader(res.Body, 8<<20))
	if err != nil {
		nt.Error = err.Error()
		return nt
	}
	if res.StatusCode != http.StatusOK {
		nt.Error = fmt.Sprintf("peer answered %d", res.StatusCode)
		return nt
	}
	var tr TelemetryResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		nt.Error = "decode: " + err.Error()
		return nt
	}
	nt.Telemetry = &tr
	return nt
}

// markStale applies the staleness rule to one section: unreachable, no
// samples at all, or newest sample older than FederateStaleAfter.
func (s *Server) markStale(nt NodeTelemetry) NodeTelemetry {
	if nt.Error != "" || nt.Telemetry == nil {
		nt.Stale = true
		return nt
	}
	if nt.Telemetry.LastUnix == 0 {
		// Serving but recording nothing (engine disabled, just booted):
		// no fresh aging samples to offer — stale, without an error.
		nt.Stale = true
		return nt
	}
	nt.AgeSeconds = time.Since(time.Unix(nt.Telemetry.LastUnix, 0)).Seconds()
	if nt.AgeSeconds < 0 {
		nt.AgeSeconds = 0
	}
	nt.Stale = nt.AgeSeconds > s.cfg.FederateStaleAfter.Seconds()
	return nt
}

func countStale(nodes []NodeTelemetry) int {
	n := 0
	for i := range nodes {
		if nodes[i].Stale {
			n++
		}
	}
	return n
}

// handleFleetTelemetry is GET /v1/fleet/telemetry: the federated view.
// Accepts the same query parameters as /v1/telemetry; they federate to
// every peer.
func (s *Server) handleFleetTelemetry(w http.ResponseWriter, r *http.Request) {
	names, query, errMsg := parseTelemetryQuery(r.URL.Query())
	if errMsg != "" {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: errMsg, RequestID: RequestIDFrom(r.Context())})
		return
	}
	s.writeJSON(w, http.StatusOK, s.gatherFleet(r.Context(), names, query, r.URL.RawQuery))
}

// writePromFederated renders the fleet view as a Prometheus exposition
// (the /metrics?federate=1 branch): per-node scrape health plus the
// newest value of every telemetry series, labelled by node. Only the
// latest sample per series is emitted — Prometheus wants instantaneous
// values and builds its own history; /v1/fleet/telemetry carries the
// per-epoch windows.
func writePromFederated(buf *bytes.Buffer, fleet FleetTelemetryResponse) {
	p := obs.NewPromWriter(buf)
	p.Header("telemetry_federate_up", "1 when the node's telemetry was scraped successfully.", "gauge")
	for _, nt := range fleet.Nodes {
		up := 1.0
		if nt.Error != "" || nt.Telemetry == nil {
			up = 0
		}
		p.Sample("telemetry_federate_up", []obs.Label{{Name: "node", Value: nt.NodeID}}, up)
	}
	p.Header("telemetry_federate_stale", "1 when the node's newest sample is missing or too old.", "gauge")
	for _, nt := range fleet.Nodes {
		stale := 0.0
		if nt.Stale {
			stale = 1
		}
		p.Sample("telemetry_federate_stale", []obs.Label{{Name: "node", Value: nt.NodeID}}, stale)
	}
	p.Header("telemetry_last_sample_age_seconds", "Age of the node's newest telemetry sample.", "gauge")
	p.Header("telemetry_last_epoch", "The node's newest recorded epoch.", "gauge")
	for _, nt := range fleet.Nodes {
		if nt.Telemetry == nil {
			continue
		}
		node := []obs.Label{{Name: "node", Value: nt.NodeID}}
		p.Sample("telemetry_last_sample_age_seconds", node, nt.AgeSeconds)
		p.Sample("telemetry_last_epoch", node, float64(nt.Telemetry.Epoch))
	}

	// One gauge per series name, node-labelled, newest value. Series
	// names are already metric-safe ([a-z0-9_]); collect the union so
	// each name gets exactly one HELP/TYPE header.
	union := map[string]bool{}
	for _, nt := range fleet.Nodes {
		if nt.Telemetry == nil {
			continue
		}
		for name := range nt.Telemetry.Series {
			union[name] = true
		}
	}
	names := make([]string, 0, len(union))
	for name := range union {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		metric := "telemetry_" + name
		p.Header(metric, "Newest per-epoch telemetry sample, federated per node.", "gauge")
		for _, nt := range fleet.Nodes {
			if nt.Telemetry == nil {
				continue
			}
			samples := nt.Telemetry.Series[name]
			if len(samples) == 0 {
				continue
			}
			p.Sample(metric, []obs.Label{{Name: "node", Value: nt.NodeID}}, samples[len(samples)-1].Value)
		}
	}
}
