package serve

import (
	"bytes"
	"net/http"
	"sort"
	"strconv"

	"selfheal/internal/obs"
	"selfheal/internal/obs/tsdb"
)

// handleMetrics serves the instrumentation snapshot. The default body
// is the JSON MetricsSnapshot; `?format=prometheus` renders the same
// snapshot in the Prometheus text exposition format instead, plus the
// Go runtime gauges. `?federate=1` answers for the whole fleet: the
// node scrapes its ring peers' telemetry and renders every node's
// newest samples with per-node labels (always Prometheus text).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if v := r.URL.Query().Get("federate"); v == "1" || v == "true" {
		fleet := s.gatherFleet(r.Context(), nil, tsdb.Query{Limit: 1}, "")
		var buf bytes.Buffer
		writePromFederated(&buf, fleet)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write(buf.Bytes())
		return
	}
	snap := s.metrics.Snapshot(s.engine, s.fleet, s.faults, s.gate)
	snap.Engine = engineMetrics(s.aging, s.cfg.MetricsChipLimit)
	snap.Guard = guardMetrics(s.guard, s.fleet)
	snap.Cluster = clusterMetrics(s.cluster)
	snap.Telemetry = s.telemetryMetrics()
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		s.writeJSON(w, http.StatusOK, snap)
	case "prometheus":
		var buf bytes.Buffer
		writeProm(&buf, snap, s.cfg.MetricsChipLimit)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write(buf.Bytes())
	default:
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: "serve: unknown metrics format " + strconv.Quote(format) + " (want json or prometheus)"})
	}
}

// writeProm renders a MetricsSnapshot in the Prometheus text format.
// It works from the snapshot — the single source of truth both formats
// share — so the two expositions can never disagree. Map iteration is
// sorted so scrapes are diffable. chipLimit caps the per-chip series
// (see writePromChips).
func writeProm(buf *bytes.Buffer, snap MetricsSnapshot, chipLimit int) {
	p := obs.NewPromWriter(buf)

	p.Header("selfheal_uptime_seconds", "Seconds since the service started.", "gauge")
	p.Sample("selfheal_uptime_seconds", nil, snap.UptimeSeconds)

	routes := make([]string, 0, len(snap.Requests))
	for route := range snap.Requests {
		routes = append(routes, route)
	}
	sort.Strings(routes)

	p.Header("selfheal_requests_total", "Requests served, by route pattern and status.", "counter")
	for _, route := range routes {
		rs := snap.Requests[route]
		statuses := make([]string, 0, len(rs.ByStatus))
		for status := range rs.ByStatus {
			statuses = append(statuses, status)
		}
		sort.Strings(statuses)
		for _, status := range statuses {
			p.Sample("selfheal_requests_total",
				[]obs.Label{{Name: "route", Value: route}, {Name: "status", Value: status}},
				float64(rs.ByStatus[status]))
		}
	}

	p.Header("selfheal_request_duration_seconds", "Request latency, by route pattern.", "histogram")
	for _, route := range routes {
		rl, ok := snap.LatencyByRoute[route]
		if !ok {
			continue
		}
		for _, b := range rl.Buckets {
			p.Sample("selfheal_request_duration_seconds_bucket",
				[]obs.Label{{Name: "route", Value: route}, {Name: "le", Value: b.Le}},
				float64(b.Count))
		}
		p.Sample("selfheal_request_duration_seconds_sum",
			[]obs.Label{{Name: "route", Value: route}}, rl.SumSeconds)
		p.Sample("selfheal_request_duration_seconds_count",
			[]obs.Label{{Name: "route", Value: route}}, float64(rl.Count))
	}

	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"selfheal_panics_recovered_total", "Handler panics recovered into 500s.", snap.PanicsRecovered},
		{"selfheal_requests_shed_total", "Requests rejected 429 by the load shedder.", snap.RequestsShed},
		{"selfheal_request_timeouts_total", "Requests cut off 503 by a route timeout.", snap.RequestTimeouts},
		{"selfheal_predict_cache_hits_total", "Prediction memo cache hits.", snap.Cache.Hits},
		{"selfheal_predict_cache_misses_total", "Prediction memo cache misses.", snap.Cache.Misses},
	} {
		p.Header(c.name, c.help, "counter")
		p.Sample(c.name, nil, float64(c.v))
	}
	p.Header("selfheal_predict_cache_entries", "Prediction memo cache residency.", "gauge")
	p.Sample("selfheal_predict_cache_entries", nil, float64(snap.Cache.Entries))

	writePromChips(p, snap.Chips, chipLimit)

	if j := snap.Journal; j != nil {
		for _, c := range []struct {
			name, help string
			v          float64
		}{
			{"selfheal_journal_appends_total", "Records appended to the journal.", float64(j.Appends)},
			{"selfheal_journal_compactions_total", "Journal compactions completed.", float64(j.Compactions)},
			{"selfheal_journal_fsync_total", "Journal fsync calls.", float64(j.FsyncCount)},
			{"selfheal_journal_sync_batches_total", "Group commits that covered more than one append.", float64(j.SyncBatches)},
		} {
			p.Header(c.name, c.help, "counter")
			p.Sample(c.name, nil, c.v)
		}
		p.Header("selfheal_journal_records", "Live records in the journal history.", "gauge")
		p.Sample("selfheal_journal_records", nil, float64(j.Records))
		p.Header("selfheal_journal_fsync_max_seconds", "Slowest fsync observed.", "gauge")
		p.Sample("selfheal_journal_fsync_max_seconds", nil, j.FsyncMaxMS/1000)
		p.Header("selfheal_journal_sync_batch_max", "Largest group-commit batch observed.", "gauge")
		p.Sample("selfheal_journal_sync_batch_max", nil, float64(j.SyncBatchMax))
	}

	if d := snap.Degraded; d != nil {
		ready := 0.0
		if d.WriteReady {
			ready = 1
		}
		p.Header("selfheal_write_ready", "1 when the service accepts writes, 0 while degraded read-only.", "gauge")
		p.Sample("selfheal_write_ready", nil, ready)
		for _, c := range []struct {
			name, help string
			v          uint64
		}{
			{"selfheal_degraded_enters_total", "Degraded-mode episodes entered.", d.Enters},
			{"selfheal_degraded_exits_total", "Degraded-mode episodes recovered from.", d.Exits},
			{"selfheal_degraded_probes_total", "Recovery probes run.", d.Probes},
			{"selfheal_degraded_writes_rejected_total", "Writes rejected 503 while degraded.", d.WritesRejected},
		} {
			p.Header(c.name, c.help, "counter")
			p.Sample(c.name, nil, float64(c.v))
		}
	}

	if e := snap.Engine; e != nil {
		writePromEngine(p, e)
	}
	if g := snap.Guard; g != nil {
		writePromGuard(p, g, chipLimit)
	}
	if c := snap.Cluster; c != nil {
		writePromCluster(p, c)
	}
	if t := snap.Telemetry; t != nil {
		writePromTelemetry(p, t)
	}

	obs.WriteRuntimeMetrics(p)
}

// writePromTelemetry emits the telemetry TSDB's residency gauges and
// the SLO monitor's slo_* series (burn rates, ok flags, alert
// counters). The per-epoch sample values themselves are served by
// /v1/telemetry and the federate=1 exposition, not here — one node's
// plain scrape stays O(routes), not O(series × window).
func writePromTelemetry(p *obs.PromWriter, t *TelemetryMetrics) {
	p.Header("telemetry_series", "Distinct per-epoch series in the telemetry TSDB.", "gauge")
	p.Sample("telemetry_series", nil, float64(t.Series))
	p.Header("telemetry_capacity_epochs", "Per-series ring capacity of the telemetry TSDB.", "gauge")
	p.Sample("telemetry_capacity_epochs", nil, float64(t.Capacity))
	p.Header("telemetry_last_epoch", "Newest epoch recorded in the telemetry TSDB.", "gauge")
	p.Sample("telemetry_last_epoch", nil, float64(t.LastEpoch))
	if t.Rejected > 0 {
		p.Header("telemetry_rejected_total", "Telemetry appends dropped at the series cap.", "counter")
		p.Sample("telemetry_rejected_total", nil, float64(t.Rejected))
	}

	p.Header("slo_ok", "1 while the objective is within budget.", "gauge")
	for _, st := range t.SLO {
		ok := 0.0
		if st.OK {
			ok = 1
		}
		p.Sample("slo_ok", []obs.Label{{Name: "slo", Value: string(st.SLO)}}, ok)
	}
	p.Header("slo_burn_rate", "Normalized budget burn; 1.0 is the breach threshold.", "gauge")
	for _, st := range t.SLO {
		p.Sample("slo_burn_rate", []obs.Label{{Name: "slo", Value: string(st.SLO)}}, st.Burn)
	}
	p.Header("slo_alerts_total", "SLO breach and recovery alerts raised.", "counter")
	p.Sample("slo_alerts_total", nil, float64(t.SLOAlertsTotal))
	p.Header("slo_breaches_total", "SLO breach transitions observed.", "counter")
	p.Sample("slo_breaches_total", nil, float64(t.SLOBreaches))
}

// writePromCluster emits the placement and replication series for one
// node of a multi-node fleet. Replication counters are labelled by
// role so a primary and a promoted ex-standby scrape identically.
func writePromCluster(p *obs.PromWriter, c *ClusterMetrics) {
	node := []obs.Label{{Name: "node", Value: c.NodeID}}
	p.Header("cluster_peers", "Nodes in this node's ring view.", "gauge")
	p.Sample("cluster_peers", node, float64(c.Peers))
	p.Header("cluster_forwards_total", "Chip requests 307-forwarded to their owner.", "counter")
	p.Sample("cluster_forwards_total", node, float64(c.Forwards))
	p.Header("cluster_wrong_node_rejects_total", "Batch items refused because another node owns the chip.", "counter")
	p.Sample("cluster_wrong_node_rejects_total", node, float64(c.WrongNode))

	r := c.Repl
	if r == nil {
		return
	}
	role := []obs.Label{{Name: "role", Value: r.Role}}
	connected := 0.0
	if r.Connected {
		connected = 1
	}
	for _, g := range []struct {
		name, help string
		v          float64
	}{
		{"repl_connected", "1 when the replication link is live (snapshot applied).", connected},
		{"repl_followers", "Followers currently attached (primary role).", float64(r.Followers)},
		{"repl_last_seq", "Highest journal sequence committed locally.", float64(r.LastSeq)},
		{"repl_acked_seq", "Highest sequence acknowledged by a follower (primary role).", float64(r.AckedSeq)},
		{"repl_lag_records", "Records committed locally but not yet follower-acknowledged.", float64(r.LagRecords)},
	} {
		p.Header(g.name, g.help, "gauge")
		p.Sample(g.name, role, g.v)
	}
	for _, ct := range []struct {
		name, help string
		v          uint64
	}{
		{"repl_frames_sent_total", "Replication frames written to followers.", r.FramesSent},
		{"repl_records_sent_total", "Journal records streamed to followers.", r.RecordsSent},
		{"repl_acks_total", "Follower acknowledgements received.", r.AcksReceived},
		{"repl_ack_timeouts_total", "Semisync appends that timed out waiting for a follower ack.", r.AckTimeouts},
		{"repl_refused_total", "Semisync mutations refused for lack of a follower.", r.Refused},
		{"repl_resyncs_total", "Full snapshot resyncs served or applied.", r.Snapshots},
		{"repl_connects_total", "Replication sessions established.", r.Connects},
		{"repl_disconnects_total", "Replication sessions dropped.", r.Disconnects},
		{"repl_dropped_frames_total", "Tail frames dropped by fault injection.", r.DroppedFrames},
		{"repl_records_applied_total", "Records applied from the stream (follower role).", r.RecordsApplied},
		{"repl_gaps_total", "Sequence gaps detected in the tail (each forces a resync).", r.Gaps},
	} {
		p.Header(ct.name, ct.help, "counter")
		p.Sample(ct.name, role, float64(ct.v))
	}

	// The semisync follower-ack latency histogram (primary role only):
	// how long acknowledged mutations waited on the replication link,
	// bucketed for LAN round trips.
	if h := r.AckWait; h != nil {
		p.Header("repl_ack_wait_seconds", "Semisync follower-ack wait per acknowledged mutation.", "histogram")
		for _, b := range h.Buckets {
			p.Sample("repl_ack_wait_seconds_bucket",
				append([]obs.Label{{Name: "le", Value: b.LE}}, role...), float64(b.Count))
		}
		p.Sample("repl_ack_wait_seconds_sum", role, h.SumSeconds)
		p.Sample("repl_ack_wait_seconds_count", role, float64(h.Count))
	}
}

// writePromGuard emits the blue team's counters. The per-chip roster
// gauge respects the same cardinality cap as the rest of the scrape:
// with more than limit chips quarantined at once (itself bounded by
// the guard's SLO budget), only the first limit ids — the roster is
// sorted, so the cut is stable — keep a labelled series, and the
// guard_quarantined_chips aggregate carries the true count.
func writePromGuard(p *obs.PromWriter, g *GuardMetrics, limit int) {
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"guard_alerts_total", "Guard alerts raised (all kinds).", g.AlertsTotal},
		{"guard_remaps_total", "Quarantined chips remapped onto spare fabric.", g.RemapsTotal},
		{"guard_rejuvenation_epochs_total", "Accelerated-rejuvenation sleep epochs delivered.", g.RejuvenationEpochsTotal},
		{"guard_releases_total", "Chips released from quarantine after recovery.", g.ReleasesTotal},
	} {
		p.Header(c.name, c.help, "counter")
		p.Sample(c.name, nil, float64(c.v))
	}
	p.Header("guard_quarantined_chips", "Chips currently quarantined.", "gauge")
	p.Sample("guard_quarantined_chips", nil, float64(g.QuarantinedChips))
	if g.SpareFreeCells >= 0 {
		p.Header("guard_spare_free_cells", "Unallocated cells left on the spare fabric.", "gauge")
		p.Sample("guard_spare_free_cells", nil, float64(g.SpareFreeCells))
	}
	ids := g.Quarantined
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
	}
	p.Header("guard_chip_quarantined", "1 for each currently quarantined chip.", "gauge")
	for _, id := range ids {
		p.Sample("guard_chip_quarantined", []obs.Label{{Name: "chip", Value: id}}, 1)
	}
}

// writePromEngine emits the fleet aging engine's gauges. Per-chip
// cardinality is already capped: the snapshot's Top list holds only
// the most aged chips, with whole-fleet aging carried by the
// aggregate sums.
func writePromEngine(p *obs.PromWriter, e *EngineMetrics) {
	st := e.Stats
	for _, g := range []struct {
		name, help string
		v          float64
	}{
		{"selfheal_engine_epoch", "Current simulation epoch.", float64(st.Epoch)},
		{"selfheal_engine_sim_hours", "Simulated hours advanced since the journal began.", st.SimHours},
		{"selfheal_engine_chips", "Chips registered with the aging engine.", float64(st.Chips)},
		{"selfheal_engine_epoch_lag_seconds", "How far the last tick started behind its due time.", st.EpochLagSeconds},
		{"selfheal_engine_chips_per_second", "Chips advanced per wall-clock second in the last tick.", st.ChipsPerSecond},
		{"selfheal_engine_tick_seconds", "Duration of the last tick.", st.LastTickSeconds},
		{"selfheal_engine_pending_epochs", "Epochs advanced but not yet journaled.", float64(st.PendingEpochs)},
		{"selfheal_engine_odometer_epochs_sum", "Stress epochs endured across the whole engine fleet.", float64(e.OdometerSum)},
		{"selfheal_engine_vth_shift_v_sum", "Threshold shift in volts summed across the whole engine fleet.", e.VthShiftSum},
	} {
		p.Header(g.name, g.help, "gauge")
		p.Sample(g.name, nil, g.v)
	}
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"selfheal_engine_ticks_total", "Epoch ticks completed.", st.TicksTotal},
		{"selfheal_engine_events_applied_total", "Mutation events applied between epochs.", st.EventsApplied},
		{"selfheal_engine_commit_errors_total", "Engine journal commits that failed.", st.CommitErrors},
	} {
		p.Header(c.name, c.help, "counter")
		p.Sample(c.name, nil, float64(c.v))
	}

	p.Header("selfheal_engine_chip_odometer_epochs", "Stress epochs endured, for the most aged chips.", "gauge")
	for _, cv := range e.Top {
		p.Sample("selfheal_engine_chip_odometer_epochs",
			[]obs.Label{{Name: "chip", Value: cv.ID}}, float64(cv.Odometer))
	}
	p.Header("selfheal_engine_chip_vth_shift_v", "Threshold shift in volts, for the most aged chips.", "gauge")
	for _, cv := range e.Top {
		p.Sample("selfheal_engine_chip_vth_shift_v",
			[]obs.Label{{Name: "chip", Value: cv.ID}}, cv.VthShift)
	}
}

// writePromChips emits the per-chip aging telemetry — the software
// analog of the paper's ring-oscillator sensor read-out. Usage
// counters always appear; the aging gauges appear once the matching
// sensor has been read, reporting its most recent value.
//
// Cardinality is capped at limit chips: fleet-wide aggregates are
// always emitted, and once the fleet outgrows the limit only the most
// aged chips (by accumulated stress time, ties by id) keep their
// per-chip series — a scrape must not grow with an engine-scale fleet.
func writePromChips(p *obs.PromWriter, chips map[string]ChipUsage, limit int) {
	ids := make([]string, 0, len(chips))
	var stressSum, healSum float64
	var opsSum uint64
	for id, u := range chips {
		ids = append(ids, id)
		stressSum += u.StressSeconds
		healSum += u.HealSeconds
		opsSum += u.Ops
	}
	sort.Strings(ids)

	p.Header("selfheal_chips", "Chips registered in the fleet.", "gauge")
	p.Sample("selfheal_chips", nil, float64(len(chips)))
	p.Header("selfheal_chip_stress_seconds_sum", "Accumulated stress time across the whole fleet.", "counter")
	p.Sample("selfheal_chip_stress_seconds_sum", nil, stressSum)
	p.Header("selfheal_chip_heal_seconds_sum", "Accumulated rejuvenation time across the whole fleet.", "counter")
	p.Sample("selfheal_chip_heal_seconds_sum", nil, healSum)
	p.Header("selfheal_chip_ops_sum", "Operations applied across the whole fleet.", "counter")
	p.Sample("selfheal_chip_ops_sum", nil, float64(opsSum))

	if limit > 0 && len(ids) > limit {
		sort.Slice(ids, func(i, j int) bool {
			si, sj := chips[ids[i]].StressSeconds, chips[ids[j]].StressSeconds
			if si != sj {
				return si > sj
			}
			return ids[i] < ids[j]
		})
		ids = ids[:limit]
		sort.Strings(ids)
	}

	p.Header("selfheal_chip_stress_seconds_total", "Accumulated stress time, per chip.", "counter")
	for _, id := range ids {
		p.Sample("selfheal_chip_stress_seconds_total",
			[]obs.Label{{Name: "chip", Value: id}, {Name: "kind", Value: chips[id].Kind}},
			chips[id].StressSeconds)
	}
	p.Header("selfheal_chip_heal_seconds_total", "Accumulated rejuvenation time, per chip.", "counter")
	for _, id := range ids {
		p.Sample("selfheal_chip_heal_seconds_total",
			[]obs.Label{{Name: "chip", Value: id}, {Name: "kind", Value: chips[id].Kind}},
			chips[id].HealSeconds)
	}
	p.Header("selfheal_chip_ops_total", "Operations applied, per chip.", "counter")
	for _, id := range ids {
		p.Sample("selfheal_chip_ops_total",
			[]obs.Label{{Name: "chip", Value: id}, {Name: "kind", Value: chips[id].Kind}},
			float64(chips[id].Ops))
	}

	p.Header("selfheal_chip_delay_ns", "Last measured CUT delay (bench chips).", "gauge")
	for _, id := range ids {
		if u := chips[id]; u.LastDegradationPct != nil {
			p.Sample("selfheal_chip_delay_ns",
				[]obs.Label{{Name: "chip", Value: id}}, u.LastDelayNS)
		}
	}
	p.Header("selfheal_chip_degradation_pct", "Last measured frequency degradation percentage (bench chips).", "gauge")
	for _, id := range ids {
		if u := chips[id]; u.LastDegradationPct != nil {
			p.Sample("selfheal_chip_degradation_pct",
				[]obs.Label{{Name: "chip", Value: id}}, *u.LastDegradationPct)
		}
	}
	p.Header("selfheal_chip_beat_hz", "Last odometer beat frequency (monitored chips).", "gauge")
	for _, id := range ids {
		if u := chips[id]; u.LastDegradationPPM != nil {
			p.Sample("selfheal_chip_beat_hz",
				[]obs.Label{{Name: "chip", Value: id}}, u.LastBeatHz)
		}
	}
	p.Header("selfheal_chip_degradation_ppm", "Last odometer aging read-out in parts per million (monitored chips).", "gauge")
	for _, id := range ids {
		if u := chips[id]; u.LastDegradationPPM != nil {
			p.Sample("selfheal_chip_degradation_ppm",
				[]obs.Label{{Name: "chip", Value: id}}, *u.LastDegradationPPM)
		}
	}
}
