// Batch endpoint acceptance tests: per-item partial failure on
// /v1/chips:batch and /v1/ops:batch, size validation, the write gate
// covering batch routes, and the replay-after-crash guarantee through
// the journaling store decorator — acknowledged batch items survive a
// hard stop, refused items leave no trace.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"selfheal/internal/faults"
	"selfheal/internal/fleet"
	"selfheal/internal/store"
)

func TestBatchCreatePartialFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do(t, ts, "POST", "/v1/chips", `{"id":"taken","seed":1}`, http.StatusCreated, nil)

	var resp BatchCreateResponse
	do(t, ts, "POST", "/v1/chips:batch", `{"chips":[
		{"id":"b0","seed":7},
		{"id":"taken","seed":8},
		{"id":"m0","seed":9,"kind":"monitored"},
		{"id":"bad","seed":10,"kind":"quantum"}
	]}`, http.StatusOK, &resp)

	if resp.Created != 2 || resp.Failed != 2 {
		t.Fatalf("created %d failed %d, want 2/2; results %+v", resp.Created, resp.Failed, resp.Results)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(resp.Results))
	}
	// results[i] corresponds to chips[i].
	if r := resp.Results[0]; r.ID != "b0" || r.Chip == nil || r.Error != "" || r.Chip.Kind != KindBench {
		t.Fatalf("item 0 = %+v", r)
	}
	if r := resp.Results[1]; r.ID != "taken" || r.Chip != nil || !strings.Contains(r.Error, "already exists") {
		t.Fatalf("duplicate item = %+v", r)
	}
	if r := resp.Results[2]; r.Chip == nil || r.Chip.Kind != KindMonitored {
		t.Fatalf("monitored item = %+v", r)
	}
	if r := resp.Results[3]; r.Chip != nil || r.Error == "" {
		t.Fatalf("bad-kind item = %+v", r)
	}

	// The failed items left nothing behind; the created ones are live.
	var list ChipListResponse
	do(t, ts, "GET", "/v1/chips", "", http.StatusOK, &list)
	if len(list.Chips) != 3 {
		t.Fatalf("fleet after batch = %+v", list.Chips)
	}
	do(t, ts, "GET", "/v1/chips/bad/measure", "", http.StatusNotFound, nil)
}

func TestBatchOpsMixedResults(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do(t, ts, "POST", "/v1/chips:batch",
		`{"chips":[{"id":"b0","seed":7},{"id":"m0","seed":9,"kind":"monitored"}]}`,
		http.StatusOK, nil)

	var resp BatchOpsResponse
	do(t, ts, "POST", "/v1/ops:batch", `{"ops":[
		{"op":"stress","id":"b0","temp_c":110,"vdd":1.32,"ac":true,"hours":24,"sample_hours":6},
		{"op":"measure","id":"b0"},
		{"op":"odometer","id":"m0"},
		{"op":"odometer","id":"b0"},
		{"op":"measure","id":"ghost"},
		{"op":"teleport","id":"b0"}
	]}`, http.StatusOK, &resp)

	if resp.Succeeded != 3 || resp.Failed != 3 {
		t.Fatalf("succeeded %d failed %d, want 3/3; results %+v", resp.Succeeded, resp.Failed, resp.Results)
	}
	if r := resp.Results[0]; r.Phase == nil || len(r.Phase.Trace) == 0 || r.Error != "" {
		t.Fatalf("stress item = %+v", r)
	}
	if r := resp.Results[1]; r.Reading == nil || r.Reading.DelayNS <= 0 {
		t.Fatalf("measure item = %+v", r)
	}
	if r := resp.Results[2]; r.Odometer == nil {
		t.Fatalf("odometer item = %+v", r)
	}
	// Kind mismatch, missing chip and unknown op fail item-locally.
	if r := resp.Results[3]; r.Odometer != nil || r.Error == "" {
		t.Fatalf("kind-mismatch item = %+v", r)
	}
	if r := resp.Results[4]; !strings.Contains(r.Error, "no chip") {
		t.Fatalf("ghost item = %+v", r)
	}
	if r := resp.Results[5]; !strings.Contains(r.Error, "unknown batch op") {
		t.Fatalf("unknown-op item = %+v", r)
	}
}

// TestBatchSizeValidation: empty and oversized batches are refused
// whole with a 400 before any item runs.
func TestBatchSizeValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var eb ErrorResponse
	do(t, ts, "POST", "/v1/chips:batch", `{"chips":[]}`, http.StatusBadRequest, &eb)
	if !strings.Contains(eb.Error, "at least one item") {
		t.Fatalf("empty batch error = %q", eb.Error)
	}
	do(t, ts, "POST", "/v1/ops:batch", `{}`, http.StatusBadRequest, &eb)
	if !strings.Contains(eb.Error, "at least one item") {
		t.Fatalf("empty ops error = %q", eb.Error)
	}

	var sb strings.Builder
	sb.WriteString(`{"chips":[`)
	for i := 0; i <= MaxBatchItems; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"id":"c%d","seed":1}`, i)
	}
	sb.WriteString(`]}`)
	do(t, ts, "POST", "/v1/chips:batch", sb.String(), http.StatusBadRequest, &eb)
	if !strings.Contains(eb.Error, "exceeds the limit") {
		t.Fatalf("oversized batch error = %q", eb.Error)
	}
	// Nothing was created: the oversized batch was refused whole.
	var list ChipListResponse
	do(t, ts, "GET", "/v1/chips", "", http.StatusOK, &list)
	if len(list.Chips) != 0 {
		t.Fatalf("oversized batch leaked %d chips", len(list.Chips))
	}
}

// TestBatchRoutesRespectWriteGate: once degraded mode trips, both batch
// routes are refused at the gate like any single mutation.
func TestBatchRoutesRespectWriteGate(t *testing.T) {
	inj, _, ts := newDegradedServer(t, t.TempDir())
	do(t, ts, "POST", "/v1/chips", `{"id":"c0","seed":7}`, http.StatusCreated, nil)

	inj.SetDiskFault(faults.DiskFailFsync, 0)
	if resp, _ := doRaw(t, ts, "POST", "/v1/chips", `{"id":"trip","seed":1}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("trip write: status %d, want 503", resp.StatusCode)
	}

	for _, probe := range []struct{ path, body string }{
		{"/v1/chips:batch", `{"chips":[{"id":"c1","seed":1}]}`},
		{"/v1/ops:batch", `{"ops":[{"op":"stress","id":"c0","temp_c":85,"vdd":1.2,"hours":1}]}`},
	} {
		resp, raw := doRaw(t, ts, "POST", probe.path, probe.body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("degraded POST %s: status %d, want 503; body %s", probe.path, resp.StatusCode, raw)
		}
		var eb ErrorResponse
		if err := json.Unmarshal(raw, &eb); err != nil || eb.Code != CodeDegraded {
			t.Fatalf("degraded POST %s: code %q err %v", probe.path, eb.Code, err)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("degraded POST %s missing Retry-After", probe.path)
		}
	}
}

// TestBatchDurabilityFailureTripsGate: a batch whose items die on the
// disk reports them per item (the batch itself stays 200) and trips
// degraded mode, so the next lone write is refused at the gate.
func TestBatchDurabilityFailureTripsGate(t *testing.T) {
	inj, _, ts := newDegradedServer(t, t.TempDir())

	inj.SetDiskFault(faults.DiskFailAppend, 0) // every append fails
	resp, raw := doRaw(t, ts, "POST", "/v1/chips:batch",
		`{"chips":[{"id":"c0","seed":7},{"id":"c1","seed":8}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch on failing disk: status %d, body %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("durability-failed batch missing Retry-After hint")
	}
	var br BatchCreateResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	if br.Created != 0 || br.Failed != 2 {
		t.Fatalf("batch on failing disk = %+v", br)
	}
	for _, r := range br.Results {
		if !strings.Contains(r.Error, "could not be committed") {
			t.Fatalf("item error = %q", r.Error)
		}
	}
	// The failed creates rolled back and the gate is now closed.
	var list ChipListResponse
	do(t, ts, "GET", "/v1/chips", "", http.StatusOK, &list)
	if len(list.Chips) != 0 {
		t.Fatalf("rolled-back batch left chips: %+v", list.Chips)
	}
	if resp, _ := doRaw(t, ts, "POST", "/v1/chips", `{"id":"late","seed":1}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write after failed batch: status %d, want 503", resp.StatusCode)
	}
}

// TestBatchReplayAfterCrash is the decorator-path crash acceptance
// test: a batch runs while the disk is refusing a bounded number of
// appends, so some items are acknowledged and some refused; the server
// is then hard-stopped with no store close or drain. On reopen every
// acknowledged item must be present with its exact pre-crash state and
// every refused item must have left no trace — a refused create that
// leaked, or an acknowledged one that vanished, fails the test.
func TestBatchReplayAfterCrash(t *testing.T) {
	dir := t.TempDir()
	inj, _, ts := newDegradedServer(t, dir)

	// A healthy baseline batch: fabricate the fleet, then age and read
	// it in one mixed-op batch whose commits share the journal's group
	// fsyncs.
	const fleetSize = 6
	var sb strings.Builder
	sb.WriteString(`{"chips":[`)
	for i := 0; i < fleetSize; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"id":"c%d","seed":%d}`, i, 7+i)
	}
	sb.WriteString(`]}`)
	var created BatchCreateResponse
	do(t, ts, "POST", "/v1/chips:batch", sb.String(), http.StatusOK, &created)
	if created.Created != fleetSize || created.Failed != 0 {
		t.Fatalf("baseline batch = %+v", created)
	}

	sb.Reset()
	sb.WriteString(`{"ops":[`)
	for i := 0; i < fleetSize; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"op":"stress","id":"c%d","temp_c":110,"vdd":1.32,"ac":true,"hours":24},`, i)
		fmt.Fprintf(&sb, `{"op":"measure","id":"c%d"}`, i)
	}
	sb.WriteString(`]}`)
	var aged BatchOpsResponse
	do(t, ts, "POST", "/v1/ops:batch", sb.String(), http.StatusOK, &aged)
	if aged.Succeeded != 2*fleetSize || aged.Failed != 0 {
		t.Fatalf("age batch = %+v", aged)
	}
	preCrash := map[string]ReadingResponse{}
	for _, r := range aged.Results {
		if r.Op == "measure" {
			preCrash[r.ID] = *r.Reading
		}
	}

	// Mid-batch disk death: the next 3 appends fail cleanly, then the
	// disk heals. Some of these creates are refused and rolled back,
	// the rest are acknowledged — the split is scheduling-dependent,
	// so the test records what the server claimed.
	inj.SetDiskFault(faults.DiskFailAppend, 3)
	var crashBatch BatchCreateResponse
	do(t, ts, "POST", "/v1/chips:batch",
		`{"chips":[{"id":"x0","seed":20},{"id":"x1","seed":21},{"id":"x2","seed":22},{"id":"x3","seed":23},{"id":"x4","seed":24}]}`,
		http.StatusOK, &crashBatch)
	if crashBatch.Failed == 0 || crashBatch.Created == 0 {
		t.Fatalf("crash batch did not split: %+v", crashBatch)
	}
	acked := map[string]bool{}
	for _, r := range crashBatch.Results {
		if r.Error == "" {
			acked[r.ID] = true
		} else if !strings.Contains(r.Error, "could not be committed") {
			t.Fatalf("refused item %q failed for the wrong reason: %q", r.ID, r.Error)
		}
	}

	// ---- Hard stop: no store close, no journal drain. ----
	ts.Close()

	st2, repairs, err := store.Open[*fleet.ChipEntry](dir, store.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) != 0 {
		t.Fatalf("clean-append crash needed repairs: %+v", repairs)
	}
	s2, ts2 := newTestServer(t, Config{Store: st2})
	t.Cleanup(s2.Close)
	t.Cleanup(func() { st2.Close() })

	var list ChipListResponse
	do(t, ts2, "GET", "/v1/chips", "", http.StatusOK, &list)
	survivors := map[string]bool{}
	for _, c := range list.Chips {
		survivors[c.ID] = true
	}
	for i := 0; i < fleetSize; i++ {
		if id := fmt.Sprintf("c%d", i); !survivors[id] {
			t.Fatalf("baseline chip %s lost in crash; fleet = %v", id, survivors)
		}
	}
	for _, r := range crashBatch.Results {
		if acked[r.ID] != survivors[r.ID] {
			t.Fatalf("item %s: acknowledged=%v survived=%v (results %+v, fleet %v)",
				r.ID, acked[r.ID], survivors[r.ID], crashBatch.Results, survivors)
		}
	}
	if len(survivors) != fleetSize+crashBatch.Created {
		t.Fatalf("fleet size %d, want %d baseline + %d acknowledged", len(survivors), fleetSize, crashBatch.Created)
	}

	// Replay rebuilt exact aged state: the trailing measure records were
	// pruned on open, so re-measuring reproduces each pre-crash reading
	// bit for bit.
	for i := 0; i < fleetSize; i++ {
		id := fmt.Sprintf("c%d", i)
		var m ReadingResponse
		do(t, ts2, "GET", "/v1/chips/"+id+"/measure", "", http.StatusOK, &m)
		if m != preCrash[id] {
			t.Fatalf("%s post-crash measure = %+v, want %+v", id, m, preCrash[id])
		}
	}
}
