// Degraded-mode acceptance tests: a persistent fsync fault flips the
// service into read-only mode (503 + "degraded" + Retry-After on
// mutating routes, reads keep serving, /readyz reports 503), the
// background probe restores write mode once the disk recovers, and no
// acknowledged operation is lost across a hard stop taken mid-episode.
// These stay in the internal test package to reach the metrics gate
// directly.
package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"selfheal/internal/faults"
	"selfheal/internal/fleet"
	"selfheal/internal/store"
)

// newDegradedServer starts a durable server whose journal writes and
// fsyncs run through a chaos injector with no probabilistic faults
// armed — tests flip deterministic disk modes on it mid-flight. The
// probe intervals are tightened so auto-recovery is observable within
// a test's patience.
func newDegradedServer(t *testing.T, dir string) (*faults.Injector, fleet.Store, *httptest.Server) {
	t.Helper()
	inj, err := faults.New(faults.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := store.Open[*fleet.ChipEntry](dir, store.JournalOptions{
		Hook:     inj.JournalHook(),
		SyncHook: inj.JournalSyncHook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{
		Store:            st,
		Faults:           inj,
		ProbeInterval:    2 * time.Millisecond,
		ProbeMaxInterval: 10 * time.Millisecond,
	})
	t.Cleanup(s.Close)
	return inj, st, ts
}

// doRaw issues a request and returns the response with its body read,
// so callers can assert on headers as well as the decoded JSON.
func doRaw(t *testing.T, ts *httptest.Server, method, path, body string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func metricsSnapshot(t *testing.T, ts *httptest.Server) MetricsSnapshot {
	t.Helper()
	var snap MetricsSnapshot
	do(t, ts, "GET", "/metrics", "", http.StatusOK, &snap)
	return snap
}

func TestDegradedModeSurvivesDiskFaultAndAutoRecovers(t *testing.T) {
	dir := t.TempDir()

	// ---- Server A: healthy writes, then a persistent fsync fault. ----
	inj, _, ts := newDegradedServer(t, dir)
	do(t, ts, "POST", "/v1/chips", `{"id":"c0","seed":7}`, http.StatusCreated, nil)
	do(t, ts, "POST", "/v1/chips/c0/stress", `{"temp_c":110,"vdd":1.32,"ac":true,"hours":24,"sample_hours":6}`, http.StatusOK, nil)
	var m1 ReadingResponse
	do(t, ts, "GET", "/v1/chips/c0/measure", "", http.StatusOK, &m1)

	inj.SetDiskFault(faults.DiskFailFsync, 0) // unlimited: the disk is dying

	// The write that hits the bad disk is refused un-acknowledged, with
	// the degraded error code and a Retry-After hint.
	resp, raw := doRaw(t, ts, "POST", "/v1/chips", `{"id":"doomed","seed":9}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write on failing disk: status %d, want 503; body %s", resp.StatusCode, raw)
	}
	var eb ErrorResponse
	if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatalf("decode %q: %v", raw, err)
	}
	if eb.Code != CodeDegraded {
		t.Fatalf("error code = %q, want %q; body %s", eb.Code, CodeDegraded, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 missing Retry-After")
	}

	// Subsequent writes are turned away at the gate — including the
	// journaled sensor reads, which would fork replay if let through.
	for _, probe := range []struct{ method, path, body string }{
		{"POST", "/v1/chips/c0/stress", `{"temp_c":85,"vdd":1.2,"hours":1}`},
		{"GET", "/v1/chips/c0/measure", ""},
		{"DELETE", "/v1/chips/c0", ""},
	} {
		resp, raw := doRaw(t, ts, probe.method, probe.path, probe.body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("degraded %s %s: status %d, want 503; body %s", probe.method, probe.path, resp.StatusCode, raw)
		}
		var eb ErrorResponse
		if err := json.Unmarshal(raw, &eb); err != nil || eb.Code != CodeDegraded {
			t.Fatalf("degraded %s %s: code %q err %v", probe.method, probe.path, eb.Code, err)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("degraded %s %s missing Retry-After", probe.method, probe.path)
		}
	}

	// Pure reads keep serving from memory.
	var list ChipListResponse
	do(t, ts, "GET", "/v1/chips", "", http.StatusOK, &list)
	if len(list.Chips) != 1 || list.Chips[0].ID != "c0" {
		t.Fatalf("degraded list = %+v, want the surviving fleet", list)
	}
	do(t, ts, "POST", "/v1/predict/shift", `{"temp_c":110,"vdd":1.2,"duty":0.5,"stress_hours":100}`, http.StatusOK, nil)

	// Liveness vs write-readiness split.
	do(t, ts, "GET", "/healthz", "", http.StatusOK, nil)
	resp, raw = doRaw(t, ts, "GET", "/readyz", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while degraded: status %d, body %s", resp.StatusCode, raw)
	}
	var ready ReadyResponse
	if err := json.Unmarshal(raw, &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "degraded" || ready.WriteReady || ready.Reason == "" {
		t.Fatalf("/readyz body = %+v", ready)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("/readyz 503 missing Retry-After")
	}

	snap := metricsSnapshot(t, ts)
	if snap.Degraded == nil {
		t.Fatal("metrics missing degraded block")
	}
	if snap.Degraded.WriteReady || snap.Degraded.Enters < 1 || snap.Degraded.WritesRejected < 3 {
		t.Fatalf("degraded metrics = %+v", snap.Degraded)
	}

	// ---- Hard stop mid-episode; Server B must hold every ack'd op. ----
	ts.Close() // no journal.Close, no drain

	_, _, tsB := newDegradedServer(t, dir)
	var m1b ReadingResponse
	do(t, tsB, "GET", "/v1/chips", "", http.StatusOK, &list)
	if len(list.Chips) != 1 || list.Chips[0].ID != "c0" {
		t.Fatalf("post-restart fleet = %+v: acknowledged create lost or refused write leaked", list)
	}
	// Replay rebuilt the exact aged state: re-measuring consumes the
	// same RNG draw the pre-crash measure did.
	do(t, tsB, "GET", "/v1/chips/c0/measure", "", http.StatusOK, &m1b)
	if m1b != m1 {
		t.Fatalf("post-restart measure = %+v, want pre-crash %+v", m1b, m1)
	}

	// ---- Server B: the fault clears and the probe auto-recovers. ----
	tsB.Close()

	inj2, _, ts2 := newDegradedServer(t, dir)
	inj2.SetDiskFault(faults.DiskFailFsync, 0)
	// Trip with a create: an unjournalable create rolls back cleanly, so
	// the live state stays aligned with the journal for the final
	// replay check (a tripped stress would age the die non-durably —
	// aging cannot be rolled back).
	if resp, _ := doRaw(t, ts2, "POST", "/v1/chips", `{"id":"tripper","seed":5}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("trip write: status %d, want 503", resp.StatusCode)
	}
	if resp, _ := doRaw(t, ts2, "GET", "/readyz", ""); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after trip: status %d, want 503", resp.StatusCode)
	}

	inj2.SetDiskFault(faults.DiskNone, 0) // the disk comes back
	deadline := time.Now().Add(5 * time.Second)
	for {
		if resp, _ := doRaw(t, ts2, "GET", "/readyz", ""); resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never recovered after the disk fault cleared")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Write mode restored without a restart; the retried op succeeds.
	do(t, ts2, "POST", "/v1/chips/c0/stress", `{"temp_c":85,"vdd":1.2,"hours":2}`, http.StatusOK, nil)
	var m2 ReadingResponse
	do(t, ts2, "GET", "/v1/chips/c0/measure", "", http.StatusOK, &m2)

	snap = metricsSnapshot(t, ts2)
	if snap.Degraded == nil || !snap.Degraded.WriteReady || snap.Degraded.Exits < 1 || snap.Degraded.Probes < 1 {
		t.Fatalf("post-recovery degraded metrics = %+v", snap.Degraded)
	}

	// ---- Hard stop again; Server C sees the post-recovery history. ----
	ts2.Close()
	_, stC, tsC := newDegradedServer(t, dir)
	defer stC.Close()
	var m2c ReadingResponse
	do(t, tsC, "GET", "/v1/chips/c0/measure", "", http.StatusOK, &m2c)
	if m2c != m2 {
		t.Fatalf("final restart measure = %+v, want %+v", m2c, m2)
	}
}

// TestReadyzHealthyAndDegradedMetricsBaseline: a healthy durable
// server reports write-readiness on /readyz and a write-ready degraded
// block in /metrics.
func TestReadyzHealthyAndDegradedMetricsBaseline(t *testing.T) {
	_, _, ts := newDegradedServer(t, t.TempDir())
	var ready ReadyResponse
	do(t, ts, "GET", "/readyz", "", http.StatusOK, &ready)
	if ready.Status != "ok" || !ready.WriteReady || ready.Reason != "" {
		t.Fatalf("/readyz = %+v", ready)
	}
	snap := metricsSnapshot(t, ts)
	if snap.Degraded == nil || !snap.Degraded.WriteReady || snap.Degraded.Enters != 0 {
		t.Fatalf("healthy degraded block = %+v", snap.Degraded)
	}
}

// TestReadyzInMemoryServer: without a durable store there is no disk
// to degrade on — /readyz is always write-ready and /metrics carries
// no degraded block.
func TestReadyzInMemoryServer(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var ready ReadyResponse
	do(t, ts, "GET", "/readyz", "", http.StatusOK, &ready)
	if !ready.WriteReady {
		t.Fatalf("/readyz = %+v", ready)
	}
	snap := metricsSnapshot(t, ts)
	if snap.Degraded != nil {
		t.Fatalf("in-memory server exported degraded block %+v", snap.Degraded)
	}
}

// TestGroupCommitBatchingVisibleInMetrics drives 8-way concurrent
// mutators over HTTP against a journal whose fsync is slow enough to
// pile appends onto the group-commit leader, and asserts the batching
// shows up in /metrics (sync_batch_max > 1, fewer fsyncs than appends).
func TestGroupCommitBatchingVisibleInMetrics(t *testing.T) {
	st, _, err := store.Open[*fleet.ChipEntry](t.TempDir(), store.JournalOptions{
		SyncHook: func() error { time.Sleep(2 * time.Millisecond); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s, ts := newTestServer(t, Config{Store: st})
	t.Cleanup(s.Close)

	const fleetSize = 8
	for i := 0; i < fleetSize; i++ {
		do(t, ts, "POST", "/v1/chips", `{"id":"c`+string(rune('0'+i))+`","seed":7}`, http.StatusCreated, nil)
	}
	deadline := time.Now().Add(10 * time.Second)
	for round := 0; ; round++ {
		var wg sync.WaitGroup
		for i := 0; i < fleetSize; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := ts.Client().Post(
					ts.URL+"/v1/chips/c"+string(rune('0'+i))+"/stress",
					"application/json",
					strings.NewReader(`{"temp_c":85,"vdd":1.2,"hours":1}`),
				)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}(i)
		}
		wg.Wait()
		snap := metricsSnapshot(t, ts)
		if snap.Journal == nil {
			t.Fatal("metrics missing journal block")
		}
		if snap.Journal.SyncBatchMax > 1 {
			if snap.Journal.FsyncCount >= snap.Journal.Appends {
				t.Fatalf("batched (max %d) yet fsyncs %d ≥ appends %d",
					snap.Journal.SyncBatchMax, snap.Journal.FsyncCount, snap.Journal.Appends)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no batch > 1 after %d rounds: %+v", round+1, snap.Journal)
		}
	}
}
