package serve

import (
	"context"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// gate is the degraded-mode supervisor: the write-path analogue of the
// paper's monitor→reconfigure loop. When the store cannot make an
// operation durable (disk full, I/O error), the service does not crash
// and does not lie — it trips into a supervised read-only state where
// mutating routes answer 503/degraded, reads keep serving from the
// in-memory fleet, and a background probe retries the store with
// exponential backoff until the storage heals, at which point write
// mode restores itself. /healthz (liveness) stays green throughout;
// /readyz (write-readiness) goes red for the episode.
type gate struct {
	log   *slog.Logger
	probe func() error  // rechecks the store's durability (fleet.Service.Probe)
	base  time.Duration // first probe delay
	max   time.Duration // backoff ceiling

	mu       sync.Mutex
	degraded bool
	reason   string
	since    time.Time
	stopped  bool

	enters, exits, probes atomic.Uint64

	stop chan struct{}
	wg   sync.WaitGroup
}

func newGate(log *slog.Logger, probe func() error, base, max time.Duration) *gate {
	return &gate{
		log:   log,
		probe: probe,
		base:  base,
		max:   max,
		stop:  make(chan struct{}),
	}
}

// status reports whether writes are currently suspended, and why. Nil
// gates (non-durable fleets) are always write-ready.
func (g *gate) status() (degraded bool, reason string) {
	if g == nil {
		return false, ""
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.degraded, g.reason
}

// trip enters degraded mode (idempotently — every failed commit calls
// it) and starts the recovery probe for the episode. ctx is the
// request that hit the failure, so the episode-entry log line carries
// its trace_id — the join key to the failing fsync span under
// GET /debug/traces.
func (g *gate) trip(ctx context.Context, err error) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if g.degraded || g.stopped {
		g.mu.Unlock()
		return
	}
	g.degraded = true
	g.reason = err.Error()
	g.since = time.Now()
	g.wg.Add(1)
	go g.probeLoop()
	g.mu.Unlock()
	g.enters.Add(1)
	g.log.WarnContext(ctx, "store commit failed; entering degraded read-only mode",
		"err", err, "first_probe_in", g.base)
}

// probeLoop retries the store with exponential backoff until it proves
// writable again, then restores write mode. One loop runs per degraded
// episode.
func (g *gate) probeLoop() {
	defer g.wg.Done()
	delay := g.base
	for {
		t := time.NewTimer(delay)
		select {
		case <-g.stop:
			t.Stop()
			return
		case <-t.C:
		}
		g.probes.Add(1)
		if err := g.probe(); err != nil {
			delay *= 2
			if delay > g.max {
				delay = g.max
			}
			g.log.Warn("store probe failed; staying read-only",
				"err", err, "next_probe_in", delay)
			continue
		}
		g.mu.Lock()
		g.degraded = false
		g.reason = ""
		g.mu.Unlock()
		g.exits.Add(1)
		g.log.Info("store writable again; restoring write mode")
		return
	}
}

// close stops the probe goroutine; further trips only mark state (no
// probes), so a server being torn down never leaks a prober.
func (g *gate) close() {
	if g == nil {
		return
	}
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	g.stopped = true
	g.mu.Unlock()
	close(g.stop)
	g.wg.Wait()
}

// snapshot exports the gate for /metrics.
func (g *gate) snapshot(rejected uint64) *DegradedSnapshot {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	degraded, reason, since := g.degraded, g.reason, g.since
	g.mu.Unlock()
	ds := &DegradedSnapshot{
		WriteReady:     !degraded,
		Enters:         g.enters.Load(),
		Exits:          g.exits.Load(),
		Probes:         g.probes.Load(),
		WritesRejected: rejected,
	}
	if degraded {
		ds.Reason = reason
		ds.SinceSeconds = time.Since(since).Seconds()
	}
	return ds
}
