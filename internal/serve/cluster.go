package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"selfheal/internal/cluster"
	"selfheal/internal/repl"
)

// ClusterConfig wires a server into a multi-node fleet. Each chip is
// owned by exactly one node — the consistent-hash ring over the
// configured peer *ids* decides which — and every node enforces that
// placement: a chip-scoped request landing on the wrong node is
// 307-forwarded to the owner (Location carries the full URL), before
// the degraded-mode write gate so even a degraded node still routes.
// Degradation is thereby per shard: one node losing its journal (or,
// in semisync, its follower) suspends writes for its chips only;
// every other shard keeps serving writes.
type ClusterConfig struct {
	// NodeID is this node's id; it must appear in Peers.
	NodeID string
	// Peers maps node id -> base URL (e.g. "http://10.0.0.1:8040"),
	// including this node. All nodes must agree on the id set.
	Peers map[string]string
	// VNodes is the ring's virtual-node count (default
	// cluster.DefaultVNodes); all nodes and clients must agree.
	VNodes int
	// ReplStats, when set, surfaces this node's replication counters
	// (primary or follower role) under /v1/cluster and /metrics.
	ReplStats func() *repl.Stats
}

// clusterState is the server's runtime view of the ring.
type clusterState struct {
	nodeID    string
	vnodes    int
	replStats func() *repl.Stats

	mu   sync.RWMutex
	ring *cluster.Ring

	forwards  atomic.Uint64 // chip requests 307-forwarded to their owner
	wrongNode atomic.Uint64 // batch items refused with CodeWrongNode
}

func newClusterState(cfg *ClusterConfig) (*clusterState, error) {
	if cfg == nil {
		return nil, nil
	}
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("serve: cluster: NodeID is required")
	}
	if _, ok := cfg.Peers[cfg.NodeID]; !ok {
		return nil, fmt.Errorf("serve: cluster: NodeID %q missing from Peers", cfg.NodeID)
	}
	nodes := make([]cluster.Node, 0, len(cfg.Peers))
	for id, addr := range cfg.Peers {
		nodes = append(nodes, cluster.Node{ID: id, Addr: strings.TrimRight(addr, "/")})
	}
	ring, err := cluster.New(nodes, cfg.VNodes)
	if err != nil {
		return nil, fmt.Errorf("serve: cluster: %w", err)
	}
	return &clusterState{
		nodeID:    cfg.NodeID,
		vnodes:    ring.VNodes(),
		replStats: cfg.ReplStats,
		ring:      ring,
	}, nil
}

// owner returns the owning node for a chip id under the current ring.
func (cs *clusterState) owner(chipID string) cluster.Node {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	return cs.ring.Owner(chipID)
}

// misplaced reports whether chipID belongs to another node, and which.
func (cs *clusterState) misplaced(chipID string) (cluster.Node, bool) {
	n := cs.owner(chipID)
	return n, n.ID != cs.nodeID
}

// setPeerAddr repoints an existing node id (the server-side half of a
// promotion). Placement is by id, so no chips move.
func (cs *clusterState) setPeerAddr(id, addr string) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	ring, err := cs.ring.WithAddr(id, strings.TrimRight(addr, "/"))
	if err != nil {
		return err
	}
	cs.ring = ring
	return nil
}

// CodeWrongNode marks a 307 (or a batch item error) caused by chip
// placement: this node does not own the target chip. The response's
// Location header carries the owner's URL; single-chip clients follow
// it transparently, batch clients should re-partition.
const CodeWrongNode = "wrong_node"

// withOwnership enforces chip placement on the /v1/chips/{id} routes:
// a request for a chip this node does not own is 307-forwarded to the
// owner. It wraps OUTSIDE the write gate so a degraded node still
// forwards misplaced traffic — only its own shard is down.
func (s *Server) withOwnership(next http.Handler) http.Handler {
	if s.cluster == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if id == "" {
			next.ServeHTTP(w, r)
			return
		}
		if owner, wrong := s.cluster.misplaced(id); wrong {
			s.forwardToOwner(w, r, id, owner)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// forwardToOwner answers 307 with the owner's URL for the same
// request. 307 (not 301/302) so the method and body are preserved by
// the client.
func (s *Server) forwardToOwner(w http.ResponseWriter, r *http.Request, chipID string, owner cluster.Node) {
	s.cluster.forwards.Add(1)
	w.Header().Set("Location", owner.Addr+r.URL.RequestURI())
	s.writeJSON(w, http.StatusTemporaryRedirect, ErrorResponse{
		Error:     fmt.Sprintf("serve: chip %q is owned by node %s", chipID, owner.ID),
		Code:      CodeWrongNode,
		RequestID: RequestIDFrom(r.Context()),
	})
}

// checkOwnedCreate guards the create path, whose chip id arrives in
// the body rather than the URL. Returns true when the request was
// forwarded (the caller must stop).
func (s *Server) checkOwnedCreate(w http.ResponseWriter, r *http.Request, chipID string) bool {
	if s.cluster == nil {
		return false
	}
	owner, wrong := s.cluster.misplaced(chipID)
	if wrong {
		s.forwardToOwner(w, r, chipID, owner)
	}
	return wrong
}

// wrongNodeItem fills one batch item's error for a misplaced chip —
// batches are never forwarded wholesale (items may map to different
// owners); the cluster client partitions by owner before sending.
func (s *Server) wrongNodeItem(chipID string) (string, string) {
	owner := s.cluster.owner(chipID)
	s.cluster.wrongNode.Add(1)
	return fmt.Sprintf("serve: chip %q is owned by node %s (%s)", chipID, owner.ID, owner.Addr), CodeWrongNode
}

// ownsChip reports whether this node owns chipID (always true outside
// cluster mode).
func (s *Server) ownsChip(chipID string) bool {
	if s.cluster == nil {
		return true
	}
	_, wrong := s.cluster.misplaced(chipID)
	return !wrong
}

// ClusterPeer is one ring member in a ClusterResponse.
type ClusterPeer struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	Self bool   `json:"self,omitempty"`
}

// ClusterResponse is the GET /v1/cluster body: this node's view of
// the ring plus its replication role.
type ClusterResponse struct {
	NodeID    string        `json:"node_id"`
	Role      string        `json:"role"` // "primary" | "standby" | "single"
	VNodes    int           `json:"vnodes"`
	Peers     []ClusterPeer `json:"peers"`
	Forwards  uint64        `json:"forwards"`
	WrongNode uint64        `json:"wrong_node_rejects"`
	Repl      *repl.Stats   `json:"repl,omitempty"`
}

// ClusterPeerRequest is the POST /v1/cluster/peers body: repoint an
// existing node id at a new address after a failover. The id keeps
// its ring positions, so no chips move.
type ClusterPeerRequest struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// ClusterPeerResponse acknowledges a repoint.
type ClusterPeerResponse struct {
	ID    string        `json:"id"`
	Addr  string        `json:"addr"`
	Peers []ClusterPeer `json:"peers"`
}

func (cs *clusterState) peerList() []ClusterPeer {
	cs.mu.RLock()
	nodes := cs.ring.Nodes()
	cs.mu.RUnlock()
	peers := make([]ClusterPeer, len(nodes))
	for i, n := range nodes {
		peers[i] = ClusterPeer{ID: n.ID, Addr: n.Addr, Self: n.ID == cs.nodeID}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	return peers
}

// clusterResponse assembles the shared status body.
func (cs *clusterState) response() ClusterResponse {
	resp := ClusterResponse{
		NodeID:    cs.nodeID,
		Role:      "single",
		VNodes:    cs.vnodes,
		Peers:     cs.peerList(),
		Forwards:  cs.forwards.Load(),
		WrongNode: cs.wrongNode.Load(),
	}
	if cs.replStats != nil {
		resp.Repl = cs.replStats()
		if resp.Repl != nil {
			resp.Role = resp.Repl.Role
		}
	}
	return resp
}

// handleCluster is GET /v1/cluster.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		s.writeJSON(w, http.StatusNotFound, ErrorResponse{
			Error:     "serve: not running in cluster mode",
			RequestID: RequestIDFrom(r.Context()),
		})
		return
	}
	s.writeJSON(w, http.StatusOK, s.cluster.response())
}

// handleClusterPeers is POST /v1/cluster/peers: repoint a node id at
// a new address (after promoting a standby that took over the id).
func (s *Server) handleClusterPeers(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		s.writeJSON(w, http.StatusNotFound, ErrorResponse{
			Error:     "serve: not running in cluster mode",
			RequestID: RequestIDFrom(r.Context()),
		})
		return
	}
	var req ClusterPeerRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	if req.ID == "" || req.Addr == "" {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error:     "serve: cluster peer repoint needs id and addr",
			RequestID: RequestIDFrom(r.Context()),
		})
		return
	}
	if err := s.cluster.setPeerAddr(req.ID, req.Addr); err != nil {
		s.writeJSON(w, http.StatusNotFound, ErrorResponse{
			Error:     err.Error(),
			RequestID: RequestIDFrom(r.Context()),
		})
		return
	}
	s.log.Info("cluster peer repointed", "peer", req.ID, "addr", req.Addr)
	s.writeJSON(w, http.StatusOK, ClusterPeerResponse{
		ID: req.ID, Addr: req.Addr, Peers: s.cluster.peerList(),
	})
}

// handleClusterPromote on a serving node is a refusal: only a standby
// (see Standby) can be promoted. Keeping the route mounted makes the
// operator error explicit instead of a 404.
func (s *Server) handleClusterPromote(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusConflict, ErrorResponse{
		Error:     "serve: this node is already serving; only a standby can be promoted",
		RequestID: RequestIDFrom(r.Context()),
	})
}

// ClusterMetrics is the cluster section of a MetricsSnapshot.
type ClusterMetrics struct {
	NodeID    string      `json:"node_id"`
	Peers     int         `json:"peers"`
	Forwards  uint64      `json:"forwards"`
	WrongNode uint64      `json:"wrong_node_rejects"`
	Repl      *repl.Stats `json:"repl,omitempty"`
}

// clusterMetrics assembles the cluster section (nil outside cluster
// mode).
func clusterMetrics(cs *clusterState) *ClusterMetrics {
	if cs == nil {
		return nil
	}
	cm := &ClusterMetrics{
		NodeID:    cs.nodeID,
		Peers:     len(cs.peerList()),
		Forwards:  cs.forwards.Load(),
		WrongNode: cs.wrongNode.Load(),
	}
	if cs.replStats != nil {
		cm.Repl = cs.replStats()
	}
	return cm
}
