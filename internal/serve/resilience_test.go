// Resilience acceptance tests: durability across a hard stop, chaos
// traffic under fault injection, and Run's shutdown contract. These
// live in an external test package so they can drive the server
// through the public selfheal/client (which itself imports serve).
package serve_test

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"selfheal/client"
	"selfheal/internal/faults"
	"selfheal/internal/fleet"
	"selfheal/internal/serve"
	"selfheal/internal/store"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newDurableServer(t *testing.T, dir string, inj *faults.Injector) (fleet.Store, *httptest.Server) {
	t.Helper()
	opts := store.JournalOptions{}
	if inj != nil {
		opts.Hook = inj.JournalHook()
	}
	st, _, err := store.Open[*fleet.ChipEntry](dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{Logger: quietLogger(), Store: st, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return st, ts
}

// TestDurabilityAcrossHardStop is the ISSUE acceptance scenario:
// stress and rejuvenate chips, hard-stop the server (no graceful
// shutdown, journal never closed), restart from the same -data dir,
// and the measurements must be bit-identical — deterministic replay
// reconstructs both the chip state and the RNG stream. A torn final
// journal record (crash mid-write) must be tolerated.
func TestDurabilityAcrossHardStop(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	_, ts1 := newDurableServer(t, dir, nil) // store deliberately not closed: hard stop
	cl1 := client.New(ts1.URL)
	if _, err := cl1.CreateChip(ctx, client.CreateChipRequest{ID: "c0", Seed: 7, Kind: "bench"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl1.CreateChip(ctx, client.CreateChipRequest{ID: "m0", Seed: 3, Kind: "monitored"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl1.Stress(ctx, "c0", client.PhaseRequest{TempC: 110, Vdd: 1.32, AC: true, Hours: 24, SampleHours: 6}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl1.Rejuvenate(ctx, "c0", client.PhaseRequest{TempC: 110, Vdd: -0.3, Hours: 6}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl1.Stress(ctx, "m0", client.PhaseRequest{TempC: 85, Vdd: 1.2, Hours: 48}); err != nil {
		t.Fatal(err)
	}
	wantReading, err := cl1.Measure(ctx, "c0")
	if err != nil {
		t.Fatal(err)
	}
	wantOdo, err := cl1.Odometer(ctx, "m0")
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close() // hard stop: no journal.Close, no graceful drain

	// A crash can tear the record being written; replay must shrug it off.
	f, err := os.OpenFile(filepath.Join(dir, "journal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":99,"op":"stress","id":"c0","temp_`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, ts2 := newDurableServer(t, dir, nil)
	defer st2.Close()
	cl2 := client.New(ts2.URL)
	gotReading, err := cl2.Measure(ctx, "c0")
	if err != nil {
		t.Fatal(err)
	}
	if gotReading != wantReading {
		t.Fatalf("post-restart measure = %+v, want pre-crash %+v", gotReading, wantReading)
	}
	gotOdo, err := cl2.Odometer(ctx, "m0")
	if err != nil {
		t.Fatal(err)
	}
	if gotOdo != wantOdo {
		t.Fatalf("post-restart odometer = %+v, want pre-crash %+v", gotOdo, wantOdo)
	}
	// And the restarted fleet keeps journaling: another phase + restart.
	if _, err := cl2.Stress(ctx, "c0", client.PhaseRequest{TempC: 85, Vdd: 1.2, Hours: 2}); err != nil {
		t.Fatal(err)
	}
	want2, err := cl2.Measure(ctx, "c0")
	if err != nil {
		t.Fatal(err)
	}
	ts2.Close()
	st3, ts3 := newDurableServer(t, dir, nil)
	defer st3.Close()
	got2, err := client.New(ts3.URL).Measure(ctx, "c0")
	if err != nil {
		t.Fatal(err)
	}
	if got2 != want2 {
		t.Fatalf("second restart measure = %+v, want %+v", got2, want2)
	}
}

// TestChaosTrafficStaysWellFormed floods a small-capacity server with
// concurrent traffic while the injector throws latency, errors, panics
// and torn journal writes. Every response on the wire must be
// well-formed JSON with a sane status, and the retrying client must
// eventually complete every idempotent request.
func TestChaosTrafficStaysWellFormed(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	inj, err := faults.New(faults.Config{
		Seed:     1234,
		LatencyP: 0.2, Latency: 2 * time.Millisecond,
		ErrorP: 0.15, PanicP: 0.05, PartialP: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := store.Open[*fleet.ChipEntry](dir, store.JournalOptions{Hook: inj.JournalHook()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s, err := serve.New(serve.Config{
		Logger:      quietLogger(),
		Store:       st,
		Faults:      inj,
		MaxInFlight: 4,
		RetryAfter:  time.Second,
		// Journal faults now trip degraded read-only mode; with fast
		// probes (the disk itself is healthy here) each episode ends
		// within a couple of milliseconds, well inside the retrying
		// client's budget.
		ProbeInterval:    2 * time.Millisecond,
		ProbeMaxInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Seed the fleet with injection off so setup is deterministic.
	inj.SetEnabled(false)
	cl := client.New(ts.URL)
	chips := []string{"c0", "c1", "c2", "c3"}
	for i, id := range chips {
		if _, err := cl.CreateChip(ctx, client.CreateChipRequest{ID: id, Seed: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Stress(ctx, id, client.PhaseRequest{TempC: 110, Vdd: 1.32, Hours: 10}); err != nil {
			t.Fatal(err)
		}
	}
	inj.SetEnabled(true)

	const (
		workers = 12
		opsEach = 15
	)
	// Journal faults trip whole degraded episodes now, which correlates
	// failures across a single call's retries; the budget below spans
	// many episodes so an idempotent call still always lands.
	retrying := client.New(ts.URL,
		client.WithMaxAttempts(25),
		client.WithBackoff(time.Millisecond, 25*time.Millisecond),
		client.WithJitterSeed(9),
	)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures []string
	)
	fail := func(s string) { mu.Lock(); failures = append(failures, s); mu.Unlock() }
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				opCtx, cancel := context.WithTimeout(ctx, 20*time.Second)
				var err error
				switch i % 4 {
				case 0:
					_, err = retrying.Measure(opCtx, chips[g%len(chips)])
				case 1:
					_, err = retrying.ListChips(opCtx)
				case 2:
					_, err = retrying.PredictShift(opCtx, client.ShiftRequest{
						TempC: 100 + float64(g), Vdd: 1.3, Duty: 0.5, StressHours: 10,
					})
				case 3:
					_, err = retrying.Metrics(opCtx)
				}
				cancel()
				if err != nil {
					fail(err.Error())
				}
			}
		}(g)
	}
	// Raw probes in parallel: every wire response — including mutating
	// routes hitting injected journal faults — must be parseable JSON
	// with a status from the documented set, never a dropped connection.
	wg.Add(1)
	go func() {
		defer wg.Done()
		hc := ts.Client()
		for i := 0; i < 60; i++ {
			id := chips[i%len(chips)]
			resp, err := hc.Post(ts.URL+"/v1/chips/"+id+"/stress", "application/json",
				strings.NewReader(`{"temp_c":85,"vdd":1.2,"hours":0.5}`))
			if err != nil {
				fail("probe transport error: " + err.Error())
				continue
			}
			raw, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				fail("probe body read: " + err.Error())
				continue
			}
			switch resp.StatusCode {
			case http.StatusOK, http.StatusTooManyRequests,
				http.StatusInternalServerError, http.StatusServiceUnavailable:
			default:
				fail("probe status " + resp.Status + ": " + string(raw))
				continue
			}
			if !json.Valid(raw) {
				fail("probe returned invalid JSON: " + string(raw))
			}
		}
	}()
	wg.Wait()
	if len(failures) > 0 {
		max := len(failures)
		if max > 5 {
			max = 5
		}
		t.Fatalf("%d chaos failures, first %d: %v", len(failures), max, failures[:max])
	}

	inj.SetEnabled(false)
	snap, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.PanicsRecovered < 1 {
		t.Errorf("panics_recovered = %d, want ≥ 1 under panic_p=0.05", snap.PanicsRecovered)
	}
	if snap.Faults == nil || snap.Faults.Errors == 0 {
		t.Errorf("faults metrics = %+v, want injected errors counted", snap.Faults)
	}
	if snap.Journal == nil || snap.Journal.Appends == 0 {
		t.Errorf("journal metrics = %+v, want appends counted", snap.Journal)
	}

	// Whatever the chaos did, the journal it left behind must replay.
	st2, _, err := store.Open[*fleet.ChipEntry](dir, store.JournalOptions{})
	if err != nil {
		t.Fatalf("journal does not reopen after chaos: %v", err)
	}
	defer st2.Close()
	s2, err := serve.New(serve.Config{Logger: quietLogger(), Store: st2})
	if err != nil {
		t.Fatalf("replay after chaos: %v", err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	survivors, err := client.New(ts2.URL).ListChips(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(survivors) != len(chips) {
		t.Fatalf("replayed fleet has %d chips, want %d", len(survivors), len(chips))
	}
}

// pickSeed finds an injector seed whose first latency draw lands in
// [lo, hi], so shutdown tests get a deterministic in-flight duration.
func pickSeed(t *testing.T, ceiling time.Duration, lo, hi time.Duration) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 500; seed++ {
		in, err := faults.New(faults.Config{Seed: seed, LatencyP: 1, Latency: ceiling})
		if err != nil {
			t.Fatal(err)
		}
		if d := in.Request(); d.Latency >= lo && d.Latency <= hi {
			return seed
		}
	}
	t.Fatal("no seed yields a first latency draw in range")
	return 0
}

func startRunListener(t *testing.T, cfg serve.Config) (net.Addr, context.CancelFunc, chan error) {
	t.Helper()
	cfg.Logger = quietLogger()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.RunListener(ctx, ln) }()
	return ln.Addr(), cancel, done
}

// TestRunDrainsInFlightWithinGrace: cancelling Run's context while a
// request is executing must let that request finish (grace is ample)
// and then return cleanly.
func TestRunDrainsInFlightWithinGrace(t *testing.T) {
	seed := pickSeed(t, 500*time.Millisecond, 200*time.Millisecond, 450*time.Millisecond)
	inj, err := faults.New(faults.Config{Seed: seed, LatencyP: 1, Latency: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	addr, cancel, done := startRunListener(t, serve.Config{Faults: inj, ShutdownGrace: 10 * time.Second})

	type result struct {
		status int
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + addr.String() + "/v1/chips")
		if err != nil {
			resc <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		resc <- result{status: resp.StatusCode}
	}()
	time.Sleep(100 * time.Millisecond) // request is now sleeping in the injector
	cancel()

	res := <-resc
	if res.err != nil || res.status != http.StatusOK {
		t.Fatalf("in-flight request during graceful shutdown: status=%d err=%v", res.status, res.err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunListener returned %v after graceful drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunListener did not return after drain")
	}
}

// TestRunForceCancelsAfterGrace: with a request stuck well past the
// grace period, Run must cancel its context and return promptly rather
// than hang on the drain.
func TestRunForceCancelsAfterGrace(t *testing.T) {
	seed := pickSeed(t, 30*time.Second, 10*time.Second, 30*time.Second)
	inj, err := faults.New(faults.Config{Seed: seed, LatencyP: 1, Latency: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	addr, cancel, done := startRunListener(t, serve.Config{Faults: inj, ShutdownGrace: 100 * time.Millisecond})

	go func() {
		// The probe is expected to die with the connection; ignore it.
		resp, err := http.Get("http://" + addr.String() + "/v1/chips")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	time.Sleep(100 * time.Millisecond) // request is in flight, sleeping ~10s+
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunListener returned %v after forced cancel", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunListener hung past the grace period")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("forced shutdown took %v, want ≈ grace (100ms)", elapsed)
	}
}
