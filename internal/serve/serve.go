package serve

import (
	"context"
	"log/slog"
	"net"
	"net/http"
	"time"
)

// Config tunes the service; zero fields take the defaults below.
type Config struct {
	// Addr is the listen address (default ":8040").
	Addr string
	// CacheSize bounds the prediction memo cache (default 256 results).
	CacheSize int
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// ShutdownGrace is how long in-flight requests get to finish after
	// SIGINT/SIGTERM before their contexts are cancelled (default 10 s).
	ShutdownGrace time.Duration
	// Logger receives structured request logs (default slog.Default()).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8040"
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server hosts the fleet registry and the prediction engine behind the
// HTTP API described in the package comment.
type Server struct {
	cfg      Config
	log      *slog.Logger
	registry *Registry
	engine   *Engine
	metrics  *Metrics
	handler  http.Handler
}

// New assembles a server from the configuration.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	engine, err := NewEngine(cfg.CacheSize)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		log:      cfg.Logger,
		registry: NewRegistry(),
		engine:   engine,
		metrics:  NewMetrics(),
	}
	s.handler = s.routes()
	return s, nil
}

// Handler returns the fully-wired HTTP handler (exported for httptest).
func (s *Server) Handler() http.Handler { return s.handler }

// Engine returns the prediction engine (exported for tests and for
// embedding the service into a larger process).
func (s *Server) Engine() *Engine { return s.engine }

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	for pattern, h := range map[string]http.HandlerFunc{
		"GET /healthz":                   s.handleHealthz,
		"GET /metrics":                   s.handleMetrics,
		"POST /v1/chips":                 s.handleCreateChip,
		"GET /v1/chips":                  s.handleListChips,
		"POST /v1/chips/{id}/stress":     s.handleStress,
		"POST /v1/chips/{id}/rejuvenate": s.handleRejuvenate,
		"GET /v1/chips/{id}/measure":     s.handleMeasure,
		"GET /v1/chips/{id}/odometer":    s.handleOdometer,
		"POST /v1/predict/shift":         s.handlePredictShift,
		"POST /v1/predict/schedules":     s.handlePredictSchedules,
		"POST /v1/predict/multicore":     s.handlePredictMulticore,
	} {
		mux.Handle(pattern, s.instrument(pattern, h))
	}
	return mux
}

// statusWriter captures the response status for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// instrument wraps a handler with the request-size limit, the metrics
// counters (labelled by route *pattern*, so cardinality stays bounded)
// and structured request logging.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		elapsed := time.Since(start)
		s.metrics.Observe(pattern, sw.status, elapsed)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"elapsed", elapsed,
			"remote", r.RemoteAddr,
		)
	})
}

// Run serves until ctx is cancelled (typically by SIGINT/SIGTERM via
// signal.NotifyContext), then shuts down gracefully: new connections
// stop, in-flight requests get ShutdownGrace to finish, and if any are
// still running after that their contexts are cancelled — which aborts
// long multicore simulations at the next slot boundary.
func (s *Server) Run(ctx context.Context) error {
	base, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	srv := &http.Server{
		Addr:              s.cfg.Addr,
		Handler:           s.handler,
		BaseContext:       func(net.Listener) context.Context { return base },
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	s.log.Info("fleet aging service listening", "addr", s.cfg.Addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.log.Info("shutting down", "grace", s.cfg.ShutdownGrace)
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
	defer cancelShutdown()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		s.log.Warn("grace period expired; cancelling in-flight simulations", "err", err)
		cancelBase()
		if err := srv.Close(); err != nil {
			return err
		}
	}
	<-errc // drain http.ErrServerClosed from the serve goroutine
	s.log.Info("shutdown complete")
	return nil
}
