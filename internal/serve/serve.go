package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"selfheal/internal/engine"
	"selfheal/internal/faults"
	"selfheal/internal/fleet"
	"selfheal/internal/fpga"
	"selfheal/internal/guard"
	"selfheal/internal/obs"
	"selfheal/internal/repl"
	"selfheal/internal/rng"
	"selfheal/internal/store"
)

// Config tunes the service; zero fields take the defaults below.
type Config struct {
	// Addr is the listen address (default ":8040").
	Addr string
	// CacheSize bounds the prediction memo cache (default 256 results).
	CacheSize int
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// ShutdownGrace is how long in-flight requests get to finish after
	// SIGINT/SIGTERM before their contexts are cancelled (default 10 s).
	ShutdownGrace time.Duration
	// Logger receives structured request logs (default slog.Default()).
	Logger *slog.Logger

	// Store is the fleet's backing chip table (default: an ephemeral
	// lock-sharded in-memory store). Pass a journal-backed store from
	// store.Open to make the fleet durable: every successful
	// create/stress/rejuvenate/delete is committed before the response,
	// and New replays the store's history to reconstruct the fleet's
	// exact aged state.
	Store fleet.Store
	// BatchWorkers bounds the worker pool behind the :batch routes
	// (default GOMAXPROCS).
	BatchWorkers int
	// Faults, when set and enabled, injects latency, errors and panics
	// into the /v1 routes for chaos testing (never into /healthz or
	// /metrics, which stay observable while the fleet misbehaves).
	Faults *faults.Injector
	// MaxInFlight bounds concurrently-executing /v1 requests; excess
	// load is shed with 429 + Retry-After (default 1024).
	MaxInFlight int
	// RetryAfter is the hint sent with a 429, rounded up to whole
	// seconds on the wire (default 1 s).
	RetryAfter time.Duration
	// OpTimeout bounds registry and sensor routes (default 30 s).
	OpTimeout time.Duration
	// PredictTimeout bounds the /v1/predict routes, whose simulations
	// can legitimately run much longer (default 2 min).
	PredictTimeout time.Duration
	// ProbeInterval is the first recovery-probe delay after the journal
	// trips the service into degraded read-only mode (default 100 ms);
	// subsequent probes back off exponentially to ProbeMaxInterval
	// (default 5 s).
	ProbeInterval    time.Duration
	ProbeMaxInterval time.Duration
	// TraceBuffer is how many completed request traces the in-memory
	// ring retains for GET /debug/traces (default 256).
	TraceBuffer int
	// TelemetryEpochs is the per-series ring capacity of the telemetry
	// TSDB — how many epochs of per-epoch fleet aggregates GET
	// /v1/telemetry can serve (default 512).
	TelemetryEpochs int
	// FederateTimeout bounds each peer scrape a federated telemetry
	// request fans out (default 2 s).
	FederateTimeout time.Duration
	// FederateStaleAfter is how old a peer's newest sample may be
	// before the federated view marks the node stale (default 15 s).
	FederateStaleAfter time.Duration

	// EngineEnabled turns on the discrete-event fleet aging engine: a
	// single simulation clock that advances every registered chip one
	// epoch per tick through the vectorized TD batch path, with
	// wait-free snapshot reads under /v1/engine. Fleet chips are
	// mirrored into the engine automatically.
	EngineEnabled bool
	// EngineEpoch is the wall-clock tick period (default 1 s). Negative
	// disables the background ticker — epochs then only advance through
	// explicit Engine.Tick calls (tests, benchmarks).
	EngineEpoch time.Duration
	// EngineEpochHours is how many simulated hours one epoch covers
	// (default 0.5).
	EngineEpochHours float64
	// EngineWorkers bounds the engine's tick worker pool (default
	// GOMAXPROCS).
	EngineWorkers int
	// MetricsChipLimit caps the per-chip series in the Prometheus
	// exposition: when the fleet outgrows it, only the top chips by
	// aging plus whole-fleet aggregates are emitted (default 50). The
	// JSON /metrics body is never truncated.
	MetricsChipLimit int

	// GuardEnabled turns on the blue team (requires EngineEnabled): a
	// per-epoch aging-rate monitor over the engine's snapshots that
	// quarantines outlier chips, remaps their logic onto spare fabric,
	// and schedules accelerated rejuvenation until the wearout excess
	// is recovered. Exposed under /v1/guard.
	GuardEnabled bool
	// GuardSpec tunes the guard in the guard.Parse grammar, e.g.
	// "sigma=4,streak=2,rejuv_epochs=4"; empty means the defaults.
	GuardSpec string
	// Adversary, when set alongside GuardEnabled, is the red team: its
	// decided attack actions (dc-stress at the worst corner, schedule
	// cancellation, sleep denial) are applied by the guard through the
	// same engine API a real workload would use, gated on the
	// quarantine like any other mutation.
	Adversary *faults.Adversary

	// Cluster, when set, runs this node as one member of a multi-node
	// fleet: chip placement is enforced against the consistent-hash
	// ring (misplaced requests are 307-forwarded to their owner), the
	// ring is exposed under /v1/cluster, and the node's replication
	// counters ride /metrics. Nil means single-node operation.
	Cluster *ClusterConfig
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8040"
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 1024
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.OpTimeout == 0 {
		c.OpTimeout = 30 * time.Second
	}
	if c.PredictTimeout == 0 {
		c.PredictTimeout = 2 * time.Minute
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 100 * time.Millisecond
	}
	if c.ProbeMaxInterval <= 0 {
		c.ProbeMaxInterval = 5 * time.Second
	}
	if c.TraceBuffer <= 0 {
		c.TraceBuffer = 256
	}
	if c.TelemetryEpochs <= 0 {
		c.TelemetryEpochs = 512
	}
	if c.FederateTimeout <= 0 {
		c.FederateTimeout = 2 * time.Second
	}
	if c.FederateStaleAfter <= 0 {
		c.FederateStaleAfter = 15 * time.Second
	}
	if c.EngineEpoch == 0 {
		c.EngineEpoch = time.Second
	}
	if c.EngineEpochHours <= 0 {
		c.EngineEpochHours = 0.5
	}
	if c.MetricsChipLimit <= 0 {
		c.MetricsChipLimit = 50
	}
	return c
}

// Server is the transport layer: routing, middleware and wire types
// over the fleet domain service and the prediction engine. All chip
// state lives in the fleet (and its store); the server owns only the
// HTTP concerns — shedding, timeouts, the degraded-mode gate.
type Server struct {
	cfg     Config
	log     *slog.Logger
	fleet   *fleet.Service
	engine  *Engine
	aging   *engine.Engine
	manual  bool // the aging engine's clock is manual (ticks via API only)
	guard   *guard.Guard
	metrics *Metrics
	faults  *faults.Injector
	gate    *gate
	cluster *clusterState
	tracer  *obs.Tracer
	telem   *telemetry
	sem     chan struct{}
	handler http.Handler
}

// New assembles a server from the configuration. When a durable store
// is configured its history is replayed first: every simulation is
// deterministic per seed, so re-running the persisted operations lands
// every chip on its exact pre-shutdown aged state (including the usage
// accounting under /metrics).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	predict, err := NewEngine(cfg.CacheSize)
	if err != nil {
		return nil, err
	}
	st := cfg.Store
	if st == nil {
		st = store.NewMem[*fleet.ChipEntry]()
	}
	fl, err := fleet.NewService(st, fleet.WithBatchWorkers(cfg.BatchWorkers))
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg: cfg,
		// Re-wrap the configured logger so every context-aware log line
		// carries the trace_id of the request that emitted it (a no-op
		// for handlers already wrapped, e.g. by cmd/selfheal-serve).
		log:     slog.New(obs.WithTraceIDs(cfg.Logger.Handler())),
		fleet:   fl,
		engine:  predict,
		metrics: NewMetrics(),
		faults:  cfg.Faults,
		tracer:  obs.NewTracer(cfg.TraceBuffer),
		sem:     make(chan struct{}, cfg.MaxInFlight),
	}
	if s.cluster, err = newClusterState(cfg.Cluster); err != nil {
		return nil, err
	}
	if s.cluster != nil {
		s.log.Info("cluster mode", "node", s.cluster.nodeID,
			"peers", len(cfg.Cluster.Peers), "vnodes", s.cluster.vnodes)
	}
	// Every trace and span view carries the node id, so /debug/traces
	// output from different nodes stitches into one timeline.
	s.tracer.SetNode(s.nodeID())
	// The epoch-lag budget follows the engine's tick interval: an epoch
	// starting more than two intervals late is unambiguously behind.
	lagBudget := 2 * cfg.EngineEpoch.Seconds()
	s.telem = newTelemetry(cfg.TelemetryEpochs, newSLOMonitor(sloConfig{LagBudget: lagBudget}))
	if fl.Durable() {
		s.gate = newGate(s.log, fl.Probe, cfg.ProbeInterval, cfg.ProbeMaxInterval)
		if n := fl.ReplayedRecords(); n > 0 {
			s.log.Info("store history replayed", "records", n, "chips", fl.Len())
		}
	}
	var guardCfg guard.Config
	if cfg.GuardEnabled {
		if !cfg.EngineEnabled {
			return nil, fmt.Errorf("serve: the guard requires the aging engine; enable it too")
		}
		var err error
		if guardCfg, err = guard.Parse(cfg.GuardSpec); err != nil {
			return nil, err
		}
	}
	if cfg.EngineEnabled {
		interval := cfg.EngineEpoch
		if interval < 0 {
			interval = 0 // manual ticks only
			s.manual = true
		}
		ecfg := engine.Config{
			EpochHours: cfg.EngineEpochHours,
			Interval:   interval,
			Workers:    cfg.EngineWorkers,
			Tracer:     s.tracer,
		}
		// The guard (and the engine handle itself) are wired after the
		// engine is built, but the engine's ticker may already be
		// running by then, so the hook indirects through atomic
		// pointers (a nil guard is inert; epochs before the handoff go
		// unobserved). The guard runs first — the telemetry recorder
		// then sees the epoch's quarantine decisions.
		var guardPtr atomic.Pointer[guard.Guard]
		var agingPtr atomic.Pointer[engine.Engine]
		var replStats func() *repl.Stats
		if cfg.Cluster != nil {
			replStats = cfg.Cluster.ReplStats
		}
		ecfg.OnEpoch = func(epoch uint64, snap *engine.Snapshot) {
			if cfg.GuardEnabled {
				guardPtr.Load().OnEpoch(epoch, snap)
			}
			mut, errs := s.metrics.mutationCounts()
			s.telem.record(epoch, snap, agingPtr.Load(), guardPtr.Load(), replStats, mut, errs)
		}
		aging, err := engine.New(st, ecfg)
		if err != nil {
			return nil, err
		}
		s.aging = aging
		agingPtr.Store(aging)
		if err := s.syncEngineFleet(); err != nil {
			aging.Close()
			return nil, err
		}
		est := aging.Stats()
		s.log.Info("fleet aging engine started",
			"chips", est.Chips, "epoch", est.Epoch,
			"epoch_hours", cfg.EngineEpochHours, "interval", interval)
		if cfg.GuardEnabled {
			// The spare fabric quarantined chips remap onto: one
			// dedicated FPGA-model chip owned by the guard.
			spare, err := fpga.NewChip("guard-spare", fpga.DefaultParams(), rng.New(1))
			if err != nil {
				aging.Close()
				return nil, err
			}
			gd, err := guard.New(guard.Deps{
				Engine:    aging,
				Fleet:     fl,
				Adversary: cfg.Adversary,
				Spare:     spare,
				Tracer:    s.tracer,
				Log:       s.log,
			}, guardCfg)
			if err != nil {
				aging.Close()
				return nil, err
			}
			s.guard = gd
			guardPtr.Store(gd)
			s.log.Info("guard started", "spec", guardCfg.String(),
				"adversary", cfg.Adversary != nil)
		}
	}
	s.handler = s.routes()
	return s, nil
}

// Fleet returns the domain service (exported for tests and for
// embedding the service into a larger process).
func (s *Server) Fleet() *fleet.Service { return s.fleet }

// Handler returns the fully-wired HTTP handler (exported for httptest).
func (s *Server) Handler() http.Handler { return s.handler }

// Close stops the degraded-mode supervisor's background probe and the
// fleet aging engine (flushing its pending epoch window). It does not
// close the store — the caller owns that. Safe on any server,
// including one that never degraded.
func (s *Server) Close() {
	s.gate.close()
	if s.aging != nil {
		if err := s.aging.Close(); err != nil {
			s.log.Warn("engine close: final epoch flush failed", "err", err)
		}
	}
}

// Engine returns the prediction engine (exported for tests and for
// embedding the service into a larger process).
func (s *Server) Engine() *Engine { return s.engine }

// Tracer returns the request-trace ring (exported for tests and for
// mounting the debug endpoints on a separate listener).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// mutatingRoutes are the patterns that commit an operation to the
// store and are therefore suspended in degraded read-only mode. The
// sensor reads are here too: measuring ages the die and consumes noise
// draws, so it is committed — and an uncommittable measure would
// silently fork the replayed state from the live one. The pure reads
// (list, predict, metrics, health) stay up throughout an episode.
var mutatingRoutes = map[string]bool{
	"POST /v1/chips":                 true,
	"POST /v1/chips:batch":           true,
	"DELETE /v1/chips/{id}":          true,
	"POST /v1/chips/{id}/stress":     true,
	"POST /v1/chips/{id}/rejuvenate": true,
	"GET /v1/chips/{id}/measure":     true,
	"GET /v1/chips/{id}/odometer":    true,
	"POST /v1/ops:batch":             true,
	// Engine mutations commit through the same journal, so they are
	// suspended in degraded mode too; engine reads (status, chip views)
	// are snapshot lookups and stay up.
	"POST /v1/engine/chips:batch":          true,
	"DELETE /v1/engine/chips/{id}":         true,
	"POST /v1/engine/chips/{id}/condition": true,
	"POST /v1/engine/chips/{id}/schedule":  true,
}

// routes assembles the mux. Each route runs the hardened-edge stack,
// outermost first:
//
//	request ID → metrics/log → panic recovery → per-route timeout →
//	load shedding → write gate (mutating routes) → fault injection →
//	body limit → handler
//
// The shedder sits *inside* the timeout so its semaphore slot is
// acquired and released on the handler goroutine: a request that times
// out keeps holding its slot until the straggling handler actually
// returns, so the count of running handlers never exceeds MaxInFlight.
//
// /healthz, /readyz and /metrics skip shedding and fault injection:
// during an overload or a chaos run they are exactly the routes that
// must keep answering.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	for pattern, h := range map[string]http.HandlerFunc{
		"GET /healthz":                         s.handleHealthz,
		"GET /readyz":                          s.handleReadyz,
		"GET /metrics":                         s.handleMetrics,
		"POST /v1/chips":                       s.handleCreateChip,
		"POST /v1/chips:batch":                 s.handleBatchCreate,
		"GET /v1/chips":                        s.handleListChips,
		"DELETE /v1/chips/{id}":                s.handleDeleteChip,
		"POST /v1/chips/{id}/stress":           s.handleStress,
		"POST /v1/chips/{id}/rejuvenate":       s.handleRejuvenate,
		"GET /v1/chips/{id}/measure":           s.handleMeasure,
		"GET /v1/chips/{id}/odometer":          s.handleOdometer,
		"POST /v1/ops:batch":                   s.handleBatchOps,
		"POST /v1/predict/shift":               s.handlePredictShift,
		"POST /v1/predict/schedules":           s.handlePredictSchedules,
		"POST /v1/predict/multicore":           s.handlePredictMulticore,
		"GET /v1/engine":                       s.handleEngineStatus,
		"GET /v1/engine/chips/{id}":            s.handleEngineChip,
		"POST /v1/engine/chips:batch":          s.handleEngineRegister,
		"DELETE /v1/engine/chips/{id}":         s.handleEngineDelete,
		"POST /v1/engine/chips/{id}/condition": s.handleEngineCondition,
		"POST /v1/engine/chips/{id}/schedule":  s.handleEngineSchedule,
		"POST /v1/engine/tick":                 s.handleEngineTick,
		"GET /v1/guard":                        s.handleGuardStatus,
		"GET /v1/guard/alerts":                 s.handleGuardAlerts,
		"POST /v1/guard/config":                s.handleGuardConfig,
		"GET /v1/cluster":                      s.handleCluster,
		"POST /v1/cluster/peers":               s.handleClusterPeers,
		"POST /v1/cluster/promote":             s.handleClusterPromote,
		"GET /v1/telemetry":                    s.handleTelemetry,
		"GET /v1/fleet/telemetry":              s.handleFleetTelemetry,
		"GET /debug/traces":                    s.handleTraces,
	} {
		// The cluster control plane and the telemetry read paths skip
		// shedding, fault injection and the write gate: during a
		// failover or an overload — exactly when these routes are
		// needed — the node may be degraded or under chaos, and
		// repointing a peer or reading the fleet's vitals must still
		// work.
		isControl := strings.Contains(pattern, "/v1/cluster") ||
			strings.Contains(pattern, "/v1/telemetry") ||
			strings.Contains(pattern, "/v1/fleet/")
		limited := strings.Contains(pattern, "/v1/") && !isControl
		timeout := s.cfg.OpTimeout
		// Predictions can legitimately simulate for minutes, and a batch
		// is up to MaxBatchItems chip operations; both get the long
		// timeout.
		if strings.Contains(pattern, "/v1/predict/") || strings.Contains(pattern, ":batch") {
			timeout = s.cfg.PredictTimeout
		}
		var hh http.Handler = s.withBodyLimit(h)
		if limited {
			hh = s.withFaults(hh)
			if mutatingRoutes[pattern] {
				hh = s.withWriteGate(hh)
			}
			// Ownership wraps outside the write gate: a degraded node
			// still 307-forwards chips it does not own — only its own
			// shard is read-only.
			if strings.Contains(pattern, "/v1/chips/{id}") {
				hh = s.withOwnership(hh)
			}
			hh = s.withLimit(hh)
		}
		hh = s.withTimeout(timeout, hh)
		hh = s.withRecover(hh)
		hh = s.instrument(pattern, hh)
		hh = s.withRequestID(hh)
		mux.Handle(pattern, hh)
	}
	return mux
}

// statusWriter captures the response status for metrics and logs, and
// whether anything was written at all (so panic recovery knows if a
// clean 500 is still possible).
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	if w.wrote {
		return
	}
	w.wrote = true
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with the metrics counters (labelled by
// route *pattern*, so cardinality stays bounded), structured request
// logging, and — on the /v1/ routes — a root trace span. An inbound
// Traceparent header (from the client, or from the node that
// 307-forwarded here) is adopted, so one logical request files under
// one trace id on every node it touches; without the header a fresh id
// is minted. The id is echoed in X-Trace-ID either way. Health and
// metrics scrapes stay out of the trace ring so a tight scrape loop
// cannot evict the request traces the ring exists to keep.
func (s *Server) instrument(pattern string, h http.Handler) http.Handler {
	traced := strings.Contains(pattern, "/v1/")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var root *obs.Span
		if traced {
			var ctx context.Context
			remoteID, _ := obs.ParseTraceContext(r.Header.Get(obs.TraceContextHeader))
			ctx, root = s.tracer.StartRemote(r.Context(), pattern, remoteID)
			root.Annotate(
				obs.String("method", r.Method),
				obs.String("path", r.URL.Path),
				obs.String("request_id", RequestIDFrom(r.Context())),
			)
			w.Header().Set("X-Trace-ID", obs.TraceIDFrom(ctx))
			r = r.WithContext(ctx)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		root.SetStatus(sw.status)
		root.End()
		s.metrics.Observe(pattern, sw.status, elapsed)
		s.log.InfoContext(r.Context(), "request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"elapsed", elapsed,
			"remote", r.RemoteAddr,
			"request_id", RequestIDFrom(r.Context()),
		)
	})
}

// Run listens on the configured address and serves until ctx is
// cancelled; see RunListener.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.RunListener(ctx, ln)
}

// RunListener serves on ln until ctx is cancelled (typically by
// SIGINT/SIGTERM via signal.NotifyContext), then shuts down
// gracefully: new connections stop, in-flight requests get
// ShutdownGrace to finish, and if any are still running after that
// their contexts are cancelled — which aborts long multicore
// simulations at the next slot boundary.
func (s *Server) RunListener(ctx context.Context, ln net.Listener) error {
	base, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	srv := &http.Server{
		Handler:           s.handler,
		BaseContext:       func(net.Listener) context.Context { return base },
		ReadHeaderTimeout: 10 * time.Second,
	}
	defer s.Close()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	s.log.Info("fleet aging service listening", "addr", ln.Addr().String())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.log.Info("shutting down", "grace", s.cfg.ShutdownGrace)
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
	defer cancelShutdown()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		s.log.Warn("grace period expired; cancelling in-flight simulations", "err", err)
		cancelBase()
		if err := srv.Close(); err != nil {
			return err
		}
	}
	<-errc // drain http.ErrServerClosed from the serve goroutine
	s.log.Info("shutdown complete")
	return nil
}
