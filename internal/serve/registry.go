package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"selfheal"
)

// Registry is the fleet: a concurrent map of named chips. The registry
// lock only guards the map; each chip carries its own mutex, so
// stress/rejuvenate/measure on *different* chips run in parallel while
// operations on the *same* chip serialize (a die can only live through
// one history).
//
// Mutating operations take a commit callback: the journal append. It
// runs while the per-chip lock is still held, so the on-disk record
// order always matches the order the operations were applied in — the
// invariant replay depends on. Lock order, where both are held, is
// always chip lock → registry lock.
type Registry struct {
	mu    sync.RWMutex
	chips map[string]*ChipEntry
}

// NewRegistry returns an empty fleet.
func NewRegistry() *Registry {
	return &Registry{chips: make(map[string]*ChipEntry)}
}

// ChipEntry is one registered chip plus its usage accounting.
type ChipEntry struct {
	id   string
	kind string

	mu      sync.Mutex // guards the simulated die and the fields below
	deleted bool       // set by Delete; later ops see 404, not stale state
	bench   *selfheal.Chip
	mon     *selfheal.MonitoredChip

	stressSeconds float64
	healSeconds   float64
	ops           uint64
}

// ChipUsage is a snapshot of one chip's accumulated history, exported
// under /metrics.
type ChipUsage struct {
	Kind          string  `json:"kind"`
	StressSeconds float64 `json:"stress_seconds"`
	HealSeconds   float64 `json:"heal_seconds"`
	Ops           uint64  `json:"ops"`
}

// errDuplicateChip distinguishes 409s from validation 400s.
type errDuplicateChip struct{ id string }

func (e errDuplicateChip) Error() string {
	return fmt.Sprintf("serve: chip %q already exists", e.id)
}

// errNotFound marks a missing (or just-deleted) chip — a 404.
type errNotFound struct{ id string }

func (e errNotFound) Error() string {
	return fmt.Sprintf("serve: no chip %q in the registry", e.id)
}

// errNotDurable wraps a journal-append failure — a 500. For create and
// delete the operation was rolled back and can be retried; for phases
// the in-memory state advanced but will not survive a restart.
type errNotDurable struct {
	op  string
	err error
}

func (e errNotDurable) Error() string {
	return fmt.Sprintf("serve: %s could not be journaled: %v", e.op, e.err)
}

func (e errNotDurable) Unwrap() error { return e.err }

// errKindMismatch marks a sensor read against the wrong chip kind.
var errKindMismatch = errors.New("wrong chip kind")

// Create fabricates a chip of the given kind and registers it. The
// (expensive, deterministic) fabrication runs outside the registry
// lock; if two racers fabricate the same id, exactly one wins and the
// other gets a duplicate error. The new entry's chip lock is held
// until the commit lands, so no stress/delete on the chip can be
// journaled ahead of its create record; a failed commit rolls the
// registration back, making a retried create safe.
func (r *Registry) Create(id string, seed uint64, kind string, commit func() error) (*ChipEntry, error) {
	if kind == "" {
		kind = KindBench
	}
	entry := &ChipEntry{id: id, kind: kind}
	switch kind {
	case KindBench:
		chip, err := selfheal.NewChip(id, seed)
		if err != nil {
			return nil, err
		}
		entry.bench = chip
	case KindMonitored:
		chip, err := selfheal.NewMonitoredChip(id, seed)
		if err != nil {
			return nil, err
		}
		entry.mon = chip
	default:
		return nil, fmt.Errorf("serve: unknown chip kind %q (want %q or %q)", kind, KindBench, KindMonitored)
	}

	entry.mu.Lock()
	defer entry.mu.Unlock()
	r.mu.Lock()
	if _, exists := r.chips[id]; exists {
		r.mu.Unlock()
		return nil, errDuplicateChip{id: id}
	}
	r.chips[id] = entry
	r.mu.Unlock()
	if commit != nil {
		if err := commit(); err != nil {
			// A concurrent request may already hold a reference from Get
			// and be blocked on entry.mu; marking the entry deleted (we
			// still hold the lock) makes such waiters see the rollback
			// and 404 instead of journaling an operation for a chip whose
			// create record never reached disk — which would poison the
			// journal and fail every subsequent replay.
			entry.deleted = true
			r.mu.Lock()
			delete(r.chips, id)
			r.mu.Unlock()
			return nil, errNotDurable{op: "create", err: err}
		}
	}
	return entry, nil
}

// Delete retires a chip: it marks the entry deleted under the chip
// lock (waiting out any in-flight operation, whose journal record
// therefore precedes the delete record), commits, and removes it from
// the map. The first return reports whether the chip existed; a failed
// commit rolls the mark back so the delete can be retried.
func (r *Registry) Delete(id string, commit func() error) (bool, error) {
	r.mu.RLock()
	e, ok := r.chips[id]
	r.mu.RUnlock()
	if !ok {
		return false, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.deleted {
		return false, nil
	}
	e.deleted = true
	if commit != nil {
		if err := commit(); err != nil {
			e.deleted = false
			return true, errNotDurable{op: "delete", err: err}
		}
	}
	r.mu.Lock()
	delete(r.chips, id)
	r.mu.Unlock()
	return true, nil
}

// Get returns the chip registered under id.
func (r *Registry) Get(id string) (*ChipEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.chips[id]
	return e, ok
}

// List returns every chip's ChipResponse sorted by id.
func (r *Registry) List() []ChipResponse {
	r.mu.RLock()
	entries := make([]*ChipEntry, 0, len(r.chips))
	for _, e := range r.chips {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	out := make([]ChipResponse, len(entries))
	for i, e := range entries {
		out[i] = e.Info()
	}
	return out
}

// Usage snapshots every chip's accumulated stress/heal seconds.
func (r *Registry) Usage() map[string]ChipUsage {
	r.mu.RLock()
	entries := make(map[string]*ChipEntry, len(r.chips))
	for id, e := range r.chips {
		entries[id] = e
	}
	r.mu.RUnlock()
	out := make(map[string]ChipUsage, len(entries))
	for id, e := range entries {
		e.mu.Lock()
		out[id] = ChipUsage{
			Kind:          e.kind,
			StressSeconds: e.stressSeconds,
			HealSeconds:   e.healSeconds,
			Ops:           e.ops,
		}
		e.mu.Unlock()
	}
	return out
}

// Info describes the chip without touching its simulated state.
func (e *ChipEntry) Info() ChipResponse {
	resp := ChipResponse{ID: e.id, Kind: e.kind}
	if e.bench != nil {
		resp.FreshDelayNS = e.bench.FreshDelayNS()
	}
	return resp
}

// Stress ages the chip under its per-chip lock and commits the journal
// record before the lock is released. A commit failure is reported as
// errNotDurable: the in-memory state has advanced (aging cannot be
// rolled back) but the operation will not survive a restart.
func (e *ChipEntry) Stress(req PhaseRequest, commit func() error) (PhaseResponse, error) {
	cond := selfheal.StressCondition{TempC: req.TempC, Vdd: req.Vdd, AC: req.AC}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.deleted {
		return PhaseResponse{}, errNotFound{id: e.id}
	}
	resp := PhaseResponse{ID: e.id, Phase: "stress", Hours: req.Hours}
	if e.bench != nil {
		trace, err := e.bench.Stress(cond, req.Hours, req.SampleHours)
		if err != nil {
			return PhaseResponse{}, err
		}
		resp.Trace = newTracePoints(trace)
	} else if err := e.mon.Stress(cond, req.Hours); err != nil {
		return PhaseResponse{}, err
	}
	e.stressSeconds += req.Hours * 3600
	e.ops++
	if commit != nil {
		if err := commit(); err != nil {
			return PhaseResponse{}, errNotDurable{op: "stress", err: err}
		}
	}
	return resp, nil
}

// Rejuvenate heals the chip under its per-chip lock; commit semantics
// match Stress.
func (e *ChipEntry) Rejuvenate(req PhaseRequest, commit func() error) (PhaseResponse, error) {
	cond := selfheal.SleepCondition{TempC: req.TempC, Vdd: req.Vdd}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.deleted {
		return PhaseResponse{}, errNotFound{id: e.id}
	}
	resp := PhaseResponse{ID: e.id, Phase: "rejuvenate", Hours: req.Hours}
	if e.bench != nil {
		trace, err := e.bench.Rejuvenate(cond, req.Hours, req.SampleHours)
		if err != nil {
			return PhaseResponse{}, err
		}
		resp.Trace = newTracePoints(trace)
	} else if err := e.mon.Rejuvenate(cond, req.Hours); err != nil {
		return PhaseResponse{}, err
	}
	e.healSeconds += req.Hours * 3600
	e.ops++
	if commit != nil {
		if err := commit(); err != nil {
			return PhaseResponse{}, errNotDurable{op: "rejuvenate", err: err}
		}
	}
	return resp, nil
}

// Measure reads a bench chip's ring-oscillator sensor. The read is a
// mutation in disguise — sampling ages the die and consumes noise
// draws — so it journals through commit like the phase operations.
func (e *ChipEntry) Measure(commit func() error) (ReadingResponse, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.deleted {
		return ReadingResponse{}, errNotFound{id: e.id}
	}
	if e.bench == nil {
		return ReadingResponse{}, fmt.Errorf(
			"serve: chip %q is %q — use /odometer for its on-die sensor: %w", e.id, e.kind, errKindMismatch)
	}
	r, err := e.bench.Measure()
	if err != nil {
		return ReadingResponse{}, err
	}
	e.ops++
	if commit != nil {
		if err := commit(); err != nil {
			return ReadingResponse{}, errNotDurable{op: "measure", err: err}
		}
	}
	return ReadingResponse{
		ID:             e.id,
		Counts:         r.Counts,
		FrequencyHz:    r.FrequencyHz,
		DelayNS:        r.DelayNS,
		DegradationPct: r.DegradationPct,
	}, nil
}

// Odometer reads a monitored chip's differential aging sensor; commit
// semantics match Measure.
func (e *ChipEntry) Odometer(commit func() error) (OdometerResponse, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.deleted {
		return OdometerResponse{}, errNotFound{id: e.id}
	}
	if e.mon == nil {
		return OdometerResponse{}, fmt.Errorf(
			"serve: chip %q is %q — use /measure for its bench read-out: %w", e.id, e.kind, errKindMismatch)
	}
	r, err := e.mon.Read()
	if err != nil {
		return OdometerResponse{}, err
	}
	e.ops++
	if commit != nil {
		if err := commit(); err != nil {
			return OdometerResponse{}, errNotDurable{op: "odometer", err: err}
		}
	}
	return OdometerResponse{ID: e.id, BeatHz: r.BeatHz, DegradationPPM: r.DegradationPPM}, nil
}
