package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"selfheal"
)

// Registry is the fleet: a concurrent map of named chips. The registry
// lock only guards the map; each chip carries its own mutex, so
// stress/rejuvenate/measure on *different* chips run in parallel while
// operations on the *same* chip serialize (a die can only live through
// one history).
type Registry struct {
	mu    sync.RWMutex
	chips map[string]*ChipEntry
}

// NewRegistry returns an empty fleet.
func NewRegistry() *Registry {
	return &Registry{chips: make(map[string]*ChipEntry)}
}

// ChipEntry is one registered chip plus its usage accounting.
type ChipEntry struct {
	id   string
	kind string

	mu    sync.Mutex // guards the simulated die and the counters below
	bench *selfheal.Chip
	mon   *selfheal.MonitoredChip

	stressSeconds float64
	healSeconds   float64
	ops           uint64
}

// ChipUsage is a snapshot of one chip's accumulated history, exported
// under /metrics.
type ChipUsage struct {
	Kind          string  `json:"kind"`
	StressSeconds float64 `json:"stress_seconds"`
	HealSeconds   float64 `json:"heal_seconds"`
	Ops           uint64  `json:"ops"`
}

// errDuplicateChip distinguishes 409s from validation 400s.
type errDuplicateChip struct{ id string }

func (e errDuplicateChip) Error() string {
	return fmt.Sprintf("serve: chip %q already exists", e.id)
}

// errKindMismatch marks a sensor read against the wrong chip kind.
var errKindMismatch = errors.New("wrong chip kind")

// Create fabricates a chip of the given kind and registers it. The
// (expensive, deterministic) fabrication runs outside the registry
// lock; if two racers fabricate the same id, exactly one wins and the
// other gets a duplicate error.
func (r *Registry) Create(id string, seed uint64, kind string) (*ChipEntry, error) {
	if kind == "" {
		kind = KindBench
	}
	entry := &ChipEntry{id: id, kind: kind}
	switch kind {
	case KindBench:
		chip, err := selfheal.NewChip(id, seed)
		if err != nil {
			return nil, err
		}
		entry.bench = chip
	case KindMonitored:
		chip, err := selfheal.NewMonitoredChip(id, seed)
		if err != nil {
			return nil, err
		}
		entry.mon = chip
	default:
		return nil, fmt.Errorf("serve: unknown chip kind %q (want %q or %q)", kind, KindBench, KindMonitored)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.chips[id]; exists {
		return nil, errDuplicateChip{id: id}
	}
	r.chips[id] = entry
	return entry, nil
}

// Get returns the chip registered under id.
func (r *Registry) Get(id string) (*ChipEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.chips[id]
	return e, ok
}

// List returns every chip's ChipResponse sorted by id.
func (r *Registry) List() []ChipResponse {
	r.mu.RLock()
	entries := make([]*ChipEntry, 0, len(r.chips))
	for _, e := range r.chips {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	out := make([]ChipResponse, len(entries))
	for i, e := range entries {
		out[i] = e.Info()
	}
	return out
}

// Usage snapshots every chip's accumulated stress/heal seconds.
func (r *Registry) Usage() map[string]ChipUsage {
	r.mu.RLock()
	entries := make(map[string]*ChipEntry, len(r.chips))
	for id, e := range r.chips {
		entries[id] = e
	}
	r.mu.RUnlock()
	out := make(map[string]ChipUsage, len(entries))
	for id, e := range entries {
		e.mu.Lock()
		out[id] = ChipUsage{
			Kind:          e.kind,
			StressSeconds: e.stressSeconds,
			HealSeconds:   e.healSeconds,
			Ops:           e.ops,
		}
		e.mu.Unlock()
	}
	return out
}

// Info describes the chip without touching its simulated state.
func (e *ChipEntry) Info() ChipResponse {
	resp := ChipResponse{ID: e.id, Kind: e.kind}
	if e.bench != nil {
		resp.FreshDelayNS = e.bench.FreshDelayNS()
	}
	return resp
}

// Stress ages the chip under its per-chip lock.
func (e *ChipEntry) Stress(req PhaseRequest) (PhaseResponse, error) {
	cond := selfheal.StressCondition{TempC: req.TempC, Vdd: req.Vdd, AC: req.AC}
	e.mu.Lock()
	defer e.mu.Unlock()
	resp := PhaseResponse{ID: e.id, Phase: "stress", Hours: req.Hours}
	if e.bench != nil {
		trace, err := e.bench.Stress(cond, req.Hours, req.SampleHours)
		if err != nil {
			return PhaseResponse{}, err
		}
		resp.Trace = newTracePoints(trace)
	} else if err := e.mon.Stress(cond, req.Hours); err != nil {
		return PhaseResponse{}, err
	}
	e.stressSeconds += req.Hours * 3600
	e.ops++
	return resp, nil
}

// Rejuvenate heals the chip under its per-chip lock.
func (e *ChipEntry) Rejuvenate(req PhaseRequest) (PhaseResponse, error) {
	cond := selfheal.SleepCondition{TempC: req.TempC, Vdd: req.Vdd}
	e.mu.Lock()
	defer e.mu.Unlock()
	resp := PhaseResponse{ID: e.id, Phase: "rejuvenate", Hours: req.Hours}
	if e.bench != nil {
		trace, err := e.bench.Rejuvenate(cond, req.Hours, req.SampleHours)
		if err != nil {
			return PhaseResponse{}, err
		}
		resp.Trace = newTracePoints(trace)
	} else if err := e.mon.Rejuvenate(cond, req.Hours); err != nil {
		return PhaseResponse{}, err
	}
	e.healSeconds += req.Hours * 3600
	e.ops++
	return resp, nil
}

// Measure reads a bench chip's ring-oscillator sensor.
func (e *ChipEntry) Measure() (ReadingResponse, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.bench == nil {
		return ReadingResponse{}, fmt.Errorf(
			"serve: chip %q is %q — use /odometer for its on-die sensor: %w", e.id, e.kind, errKindMismatch)
	}
	r, err := e.bench.Measure()
	if err != nil {
		return ReadingResponse{}, err
	}
	e.ops++
	return ReadingResponse{
		ID:             e.id,
		Counts:         r.Counts,
		FrequencyHz:    r.FrequencyHz,
		DelayNS:        r.DelayNS,
		DegradationPct: r.DegradationPct,
	}, nil
}

// Odometer reads a monitored chip's differential aging sensor.
func (e *ChipEntry) Odometer() (OdometerResponse, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mon == nil {
		return OdometerResponse{}, fmt.Errorf(
			"serve: chip %q is %q — use /measure for its bench read-out: %w", e.id, e.kind, errKindMismatch)
	}
	r, err := e.mon.Read()
	if err != nil {
		return OdometerResponse{}, err
	}
	e.ops++
	return OdometerResponse{ID: e.id, BeatHz: r.BeatHz, DegradationPPM: r.DegradationPPM}, nil
}
