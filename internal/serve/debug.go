package serve

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the diagnostics mux cmd/selfheal-serve mounts
// on the -debug-addr listener: the standard pprof endpoints under
// /debug/pprof/ plus the trace ring under /debug/traces. It is a
// separate handler (not part of routes) so profiling stays off the
// service port unless the operator opts in — pprof exposes heap
// contents and must never face the public edge.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	return mux
}
