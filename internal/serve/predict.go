package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"selfheal"
	"selfheal/internal/lru"
)

// Engine evaluates the stateless prediction endpoints. Every
// simulation behind it is deterministic given its parameters, so
// results are memoized in a bounded LRU cache; concurrent identical
// requests are additionally collapsed into a single computation
// (singleflight) so a thundering herd costs one simulation.
type Engine struct {
	cache *lru.Cache[string, any]

	mu       sync.Mutex
	inflight map[string]*call
}

type call struct {
	done chan struct{}
	val  any
	err  error
}

// NewEngine returns an engine whose memo cache holds cacheSize results.
func NewEngine(cacheSize int) (*Engine, error) {
	cache, err := lru.New[string, any](cacheSize)
	if err != nil {
		return nil, err
	}
	return &Engine{cache: cache, inflight: make(map[string]*call)}, nil
}

// CacheStats reports cumulative cache hits/misses and residency.
func (e *Engine) CacheStats() (hits, misses uint64, entries, capacity int) {
	hits, misses = e.cache.Stats()
	return hits, misses, e.cache.Len(), e.cache.Capacity()
}

// memoize returns the cached value for key, or computes it once —
// concurrent callers with the same key wait for the leader instead of
// recomputing. Errors are never cached. The boolean reports whether
// the value came from the cache.
func (e *Engine) memoize(ctx context.Context, key string, compute func() (any, error)) (any, bool, error) {
	if v, ok := e.cache.Get(key); ok {
		return v, true, nil
	}
	e.mu.Lock()
	if c, ok := e.inflight[key]; ok {
		e.mu.Unlock()
		select {
		case <-c.done:
			return c.val, false, c.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	c := &call{done: make(chan struct{})}
	e.inflight[key] = c
	e.mu.Unlock()

	c.val, c.err = compute()
	if c.err == nil {
		e.cache.Add(key, c.val)
	}
	e.mu.Lock()
	delete(e.inflight, key)
	e.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// cacheKey builds a canonical key from the endpoint name and the
// normalized request (struct field order makes the JSON deterministic).
func cacheKey(endpoint string, req any) string {
	b, err := json.Marshal(req)
	if err != nil {
		// Requests are plain structs of numbers and strings; Marshal
		// only fails on non-finite floats, which validation rejected.
		panic(fmt.Sprintf("serve: unmarshalable cache key: %v", err))
	}
	return endpoint + "|" + string(b)
}

func finite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("serve: %s must be finite, got %v", name, v)
	}
	return nil
}

func validateShift(req ShiftRequest) error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"temp_c", req.TempC}, {"vdd", req.Vdd}, {"duty", req.Duty},
		{"stress_hours", req.StressHours}, {"sleep_temp_c", req.SleepTempC},
		{"sleep_vdd", req.SleepVdd}, {"sleep_hours", req.SleepHours},
	} {
		if err := finite(f.name, f.v); err != nil {
			return err
		}
	}
	switch {
	case req.Vdd <= 0:
		return fmt.Errorf("serve: vdd must be positive for stress, got %v", req.Vdd)
	case req.Duty < 0 || req.Duty > 1:
		return fmt.Errorf("serve: duty must be in [0,1], got %v", req.Duty)
	case req.StressHours <= 0:
		return fmt.Errorf("serve: stress_hours must be positive, got %v", req.StressHours)
	case req.SleepHours < 0:
		return fmt.Errorf("serve: sleep_hours must be ≥ 0, got %v", req.SleepHours)
	case req.SleepHours > 0 && req.SleepVdd > 0:
		return fmt.Errorf("serve: sleep_vdd must be ≤ 0, got %v", req.SleepVdd)
	}
	return nil
}

// Shift evaluates the closed-form TD model for one stress (and
// optionally one recovery) interval.
func (e *Engine) Shift(ctx context.Context, req ShiftRequest) (ShiftResponse, error) {
	if err := validateShift(req); err != nil {
		return ShiftResponse{}, err
	}
	v, cached, err := e.memoize(ctx, cacheKey("shift", req), func() (any, error) {
		resp := ShiftResponse{
			ShiftV: selfheal.StressShiftV(
				selfheal.StressCondition{TempC: req.TempC, Vdd: req.Vdd},
				req.Duty, req.StressHours),
		}
		if req.SleepHours > 0 {
			rf := selfheal.RecoveredFraction(
				selfheal.SleepCondition{TempC: req.SleepTempC, Vdd: req.SleepVdd},
				req.StressHours, req.SleepHours)
			resp.RecoveredFraction = &rf
		}
		return resp, nil
	})
	if err != nil {
		return ShiftResponse{}, err
	}
	resp := v.(ShiftResponse)
	resp.Cached = cached
	return resp, nil
}

func buildPolicy(i int, spec PolicySpec) (selfheal.Policy, error) {
	cond := selfheal.SleepCondition{TempC: spec.SleepTempC, Vdd: spec.SleepVdd}
	switch spec.Kind {
	case "none", "no-recovery":
		return selfheal.NoRecoveryPolicy(), nil
	case "proactive":
		return selfheal.ProactivePolicy(spec.Alpha, spec.SleepHours, cond), nil
	case "reactive":
		return selfheal.ReactivePolicy(spec.TriggerPct, spec.RelaxPct, cond), nil
	default:
		return selfheal.Policy{}, fmt.Errorf(
			"serve: policy %d: unknown kind %q (want none, proactive or reactive)", i, spec.Kind)
	}
}

// Schedules compares rejuvenation policies over a horizon. The cache
// key excludes IncludeTrace: cached outcomes retain their traces and
// the response is trimmed per request.
func (e *Engine) Schedules(ctx context.Context, req SchedulesRequest) (SchedulesResponse, error) {
	if err := finite("horizon_days", req.HorizonDays); err != nil {
		return SchedulesResponse{}, err
	}
	if len(req.Policies) == 0 {
		return SchedulesResponse{}, fmt.Errorf("serve: at least one policy is required")
	}
	policies := make([]selfheal.Policy, len(req.Policies))
	for i, spec := range req.Policies {
		p, err := buildPolicy(i, spec)
		if err != nil {
			return SchedulesResponse{}, err
		}
		policies[i] = p
	}
	keyReq := req
	keyReq.IncludeTrace = false
	v, cached, err := e.memoize(ctx, cacheKey("schedules", keyReq), func() (any, error) {
		return selfheal.CompareSchedules(req.Seed, req.HorizonDays, policies...)
	})
	if err != nil {
		return SchedulesResponse{}, err
	}
	return SchedulesResponse{
		Outcomes: NewScheduleOutcomeBodies(v.([]selfheal.ScheduleOutcome), req.IncludeTrace),
		Cached:   cached,
	}, nil
}

// Multicore runs the Section 6.2 exploration. The context propagates
// into the slot loop, so a cancelled request (or a shutting-down
// server) aborts the run instead of simulating to the horizon.
func (e *Engine) Multicore(ctx context.Context, req MulticoreRequest) (MulticoreResponse, error) {
	if err := finite("days", req.Days); err != nil {
		return MulticoreResponse{}, err
	}
	v, cached, err := e.memoize(ctx, cacheKey("multicore", req), func() (any, error) {
		return selfheal.RunMulticoreContext(ctx, selfheal.MulticoreScheduler(req.Scheduler), req.Demand, req.Days)
	})
	if err != nil {
		return MulticoreResponse{}, err
	}
	resp := NewMulticoreResponse(v.(selfheal.MulticoreOutcome))
	resp.Cached = cached
	return resp, nil
}
