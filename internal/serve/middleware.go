package serve

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"selfheal/internal/faults"
	"selfheal/internal/obs"
)

// ridKey is the context key for the request ID.
type ridKey struct{}

// RequestIDFrom returns the request ID attached by the middleware, or
// "" outside a request.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

func newRequestID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return "rid-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// withRequestID accepts a caller-supplied X-Request-ID (bounded, so a
// hostile client cannot bloat the logs) or mints one, echoes it on the
// response, and threads it through the context so request logs and
// error bodies are correlatable — the thing that makes a chaos-test
// failure debuggable.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" || len(id) > 64 {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ridKey{}, id)))
	})
}

// withRecover converts a panicking handler into a logged JSON 500
// instead of a dropped connection. http.ErrAbortHandler is re-panicked
// — it is net/http's own "abort this connection" sentinel.
func (s *Server) withRecover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			s.metrics.RecordPanic()
			s.log.Error("panic recovered",
				"panic", fmt.Sprint(p),
				"path", r.URL.Path,
				"request_id", RequestIDFrom(r.Context()),
				"stack", string(debug.Stack()),
			)
			if sw, ok := w.(*statusWriter); !ok || !sw.wrote {
				s.writeJSON(w, http.StatusInternalServerError, ErrorResponse{
					Error:     "serve: internal error",
					RequestID: RequestIDFrom(r.Context()),
				})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withLimit is the load shedder: a concurrency semaphore over the /v1
// routes. When the fleet is saturated the request is rejected
// immediately with 429 and a Retry-After, instead of queueing without
// bound until every client times out. It runs *inside* withTimeout, on
// the handler goroutine, so a timed-out handler keeps its slot until it
// actually finishes — the number of running handlers never exceeds
// MaxInFlight even when the server is slow enough to time out.
func (s *Server) withLimit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			next.ServeHTTP(w, r)
		default:
			s.metrics.RecordShed()
			w.Header().Set("Retry-After", s.retryAfterSecs())
			s.writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
				Error:     "serve: fleet saturated; retry later",
				RequestID: RequestIDFrom(r.Context()),
			})
		}
	})
}

// retryAfterSecs renders the configured Retry-After hint as whole
// seconds for the wire (minimum 1).
func (s *Server) retryAfterSecs() string {
	secs := int(s.cfg.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// withWriteGate suspends a mutating route while the service is in
// degraded read-only mode: a fast 503 with the `degraded` error code
// and a Retry-After, before the handler (and the journal) is touched.
// Reads never pass through here, so they keep serving from memory for
// the whole episode.
func (s *Server) withWriteGate(next http.Handler) http.Handler {
	if s.gate == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, sp := obs.StartSpan(r.Context(), "serve.gate")
		degraded, reason := s.gate.status()
		sp.Annotate(obs.Bool("degraded", degraded))
		sp.End()
		if degraded {
			s.metrics.RecordDegradedReject()
			w.Header().Set("Retry-After", s.retryAfterSecs())
			s.writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
				Error:     "serve: degraded read-only mode (" + reason + "); writes suspended until the journal recovers",
				Code:      CodeDegraded,
				RequestID: RequestIDFrom(r.Context()),
			})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// timeoutWriter buffers a handler's response so a timed-out handler
// can never interleave bytes with the 503 the timeout wrote, and a
// partially-written body is never sent. Only the handler goroutine
// touches it; the parent reads it exactly once, after the handler is
// done.
type timeoutWriter struct {
	header http.Header
	buf    bytes.Buffer
	status int
}

func newTimeoutWriter() *timeoutWriter {
	return &timeoutWriter{header: make(http.Header), status: http.StatusOK}
}

func (tw *timeoutWriter) Header() http.Header { return tw.header }

func (tw *timeoutWriter) WriteHeader(status int) {
	if tw.status == http.StatusOK {
		tw.status = status
	}
}

func (tw *timeoutWriter) Write(b []byte) (int, error) { return tw.buf.Write(b) }

func (tw *timeoutWriter) flush(w http.ResponseWriter) {
	h := w.Header()
	for k, v := range tw.header {
		h[k] = v
	}
	w.WriteHeader(tw.status)
	w.Write(tw.buf.Bytes())
}

// withTimeout bounds one route's handler. The handler runs in a child
// goroutine against a buffered writer and its context carries the
// deadline, so cooperative simulations (multicore slot loops) abort on
// their own; if the deadline passes first the client gets a JSON 503
// now and the stragglers' output is discarded when it finishes.
func (s *Server) withTimeout(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		r = r.WithContext(ctx)

		tw := newTimeoutWriter()
		done := make(chan struct{})
		panicc := make(chan handlerPanic, 1)
		go func() {
			defer func() {
				if p := recover(); p != nil {
					panicc <- handlerPanic{val: p, stack: debug.Stack()}
				}
			}()
			next.ServeHTTP(tw, r)
			close(done)
		}()
		select {
		case p := <-panicc:
			panic(p.val) // re-raised on the request goroutine for withRecover
		case <-done:
			tw.flush(w)
		case <-ctx.Done():
			s.metrics.RecordTimeout()
			s.writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
				Error:     fmt.Sprintf("serve: request exceeded the %v route budget", d),
				RequestID: RequestIDFrom(r.Context()),
			})
			// The handler goroutine is still running; its output will be
			// discarded, but a late panic must not be — withRecover can
			// no longer see it, so drain panicc here and log/count it.
			// (If the deadline and a panic fire together, this is also
			// the only reader left.) Capture fields first: r may be
			// reused by net/http once this ServeHTTP returns.
			rid := RequestIDFrom(r.Context())
			path := r.URL.Path
			go func() {
				select {
				case p := <-panicc:
					if p.val == http.ErrAbortHandler {
						return // net/http's deliberate-abort sentinel
					}
					s.metrics.RecordPanic()
					s.log.Error("panic recovered after timeout",
						"panic", fmt.Sprint(p.val),
						"path", path,
						"request_id", rid,
						"stack", string(p.stack),
					)
				case <-done:
				}
			}()
		}
	})
}

// handlerPanic carries a recovered panic out of withTimeout's handler
// goroutine, with the stack captured at recovery time — by the time the
// parent (or the post-timeout drain) sees it, the panicking stack is
// gone.
type handlerPanic struct {
	val   any
	stack []byte
}

// withFaults applies the chaos injector's per-request decision:
// latency (context-aware, so shutdown is not held hostage), then
// either a panic — exercising withRecover — or an injected 500.
func (s *Server) withFaults(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := s.faults.Request()
		if d.Latency > 0 {
			t := time.NewTimer(d.Latency)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
			}
		}
		if d.Panic {
			panic("faults: injected panic")
		}
		if d.Err {
			s.writeError(w, r, fmt.Errorf("serve: %w", faults.ErrInjected))
			return
		}
		next.ServeHTTP(w, r)
	})
}

// withBodyLimit caps the request body. It sits innermost so the
// limiter talks to the same writer the handler sees (relevant inside
// withTimeout's buffered writer).
func (s *Server) withBodyLimit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		next.ServeHTTP(w, r)
	})
}
