package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"selfheal/internal/engine"
	"selfheal/internal/fleet"
)

// engineFleetDefault is the condition fleet chips simulate under in
// the aging engine: DC stress at the service's nominal corner. The
// fleet API's explicit stress/rejuvenate phases stay authoritative for
// sensor reads; the engine's copy exists so fleet chips show up in
// whole-fleet epoch advancement and the odometer telemetry.
var engineFleetDefault = engine.Spec{TempC: 80, Vdd: 1.2, Duty: 1}

// EngineSchedule is the wire form of a circadian stress/sleep cycle.
// Both epoch counts zero cancels the cycle.
type EngineSchedule struct {
	StressEpochs uint64  `json:"stress_epochs"`
	SleepEpochs  uint64  `json:"sleep_epochs"`
	SleepTempC   float64 `json:"sleep_temp_c"`
	SleepVdd     float64 `json:"sleep_vdd"`
}

func (s *EngineSchedule) toEngine() *engine.Schedule {
	if s == nil {
		return nil
	}
	return &engine.Schedule{
		StressEpochs: s.StressEpochs, SleepEpochs: s.SleepEpochs,
		SleepTempC: s.SleepTempC, SleepVdd: s.SleepVdd,
	}
}

// EngineChipSpec registers one chip with the aging engine.
type EngineChipSpec struct {
	ID    string  `json:"id"`
	Phase string  `json:"phase,omitempty"` // "stress" (default) or "sleep"
	TempC float64 `json:"temp_c"`
	Vdd   float64 `json:"vdd"`
	Duty  float64 `json:"duty"`
	// Schedule, when set, books a circadian stress/sleep cycle.
	Schedule *EngineSchedule `json:"schedule,omitempty"`
}

// EngineRegisterRequest is the POST /v1/engine/chips:batch body.
type EngineRegisterRequest struct {
	Chips []EngineChipSpec `json:"chips"`
}

// EngineRegisterResult is one item's outcome in an
// EngineRegisterResponse.
type EngineRegisterResult struct {
	ID         string `json:"id"`
	Registered bool   `json:"registered"`
	Error      string `json:"error,omitempty"`
}

// EngineRegisterResponse reports a bulk registration; per-item status
// is in Results and callers must check Failed.
type EngineRegisterResponse struct {
	Results    []EngineRegisterResult `json:"results"`
	Registered int                    `json:"registered"`
	Failed     int                    `json:"failed"`
}

// EngineConditionRequest is the POST /v1/engine/chips/{id}/condition
// body: the chip's new phase, corner, and duty cycle.
type EngineConditionRequest struct {
	Phase string  `json:"phase,omitempty"`
	TempC float64 `json:"temp_c"`
	Vdd   float64 `json:"vdd"`
	Duty  float64 `json:"duty"`
}

// EngineStatusResponse is the GET /v1/engine body.
type EngineStatusResponse struct {
	Enabled bool          `json:"enabled"`
	Stats   *engine.Stats `json:"stats,omitempty"`
}

// EngineDeleteResponse confirms DELETE /v1/engine/chips/{id}.
type EngineDeleteResponse struct {
	ID      string `json:"id"`
	Removed bool   `json:"removed"`
}

// EngineTickRequest is the POST /v1/engine/tick body. The body may be
// omitted entirely; it defaults to a single epoch.
type EngineTickRequest struct {
	Epochs uint64 `json:"epochs"`
}

// EngineTickResponse reports the epoch after a manual advance.
type EngineTickResponse struct {
	Ticked uint64 `json:"ticked"`
	Epoch  uint64 `json:"epoch"`
}

// AgingEngine returns the fleet aging engine, or nil when the service
// runs without one (exported for tests and embedders; the prediction
// engine is Engine).
func (s *Server) AgingEngine() *engine.Engine { return s.aging }

// requireEngine 404s engine routes when the engine is not enabled.
func (s *Server) requireEngine(w http.ResponseWriter, r *http.Request) bool {
	if s.aging != nil {
		return true
	}
	s.writeJSON(w, http.StatusNotFound, ErrorResponse{
		Error:     "serve: fleet aging engine not enabled; start the service with -engine",
		RequestID: RequestIDFrom(r.Context()),
	})
	return false
}

func (s *Server) handleEngineStatus(w http.ResponseWriter, r *http.Request) {
	if s.aging == nil {
		s.writeJSON(w, http.StatusOK, EngineStatusResponse{Enabled: false})
		return
	}
	st := s.aging.Stats()
	s.writeJSON(w, http.StatusOK, EngineStatusResponse{Enabled: true, Stats: &st})
}

func (s *Server) handleEngineChip(w http.ResponseWriter, r *http.Request) {
	if !s.requireEngine(w, r) {
		return
	}
	id := r.PathValue("id")
	cv, ok := s.aging.Snapshot().Chip(id)
	if !ok {
		s.writeError(w, r, engine.NotFoundError{ID: id})
		return
	}
	s.writeJSON(w, http.StatusOK, cv)
}

func (s *Server) handleEngineRegister(w http.ResponseWriter, r *http.Request) {
	if !s.requireEngine(w, r) {
		return
	}
	var req EngineRegisterRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	if err := checkBatchSize(len(req.Chips)); err != nil {
		s.writeError(w, r, err)
		return
	}
	specs := make([]engine.Spec, len(req.Chips))
	for i, c := range req.Chips {
		specs[i] = engine.Spec{
			ID: c.ID, Phase: c.Phase, TempC: c.TempC, Vdd: c.Vdd,
			Duty: c.Duty, Schedule: c.Schedule.toEngine(),
		}
	}
	regs, err := s.aging.RegisterBatch(r.Context(), specs)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	resp := EngineRegisterResponse{Results: make([]EngineRegisterResult, len(regs))}
	for i, res := range regs {
		resp.Results[i] = EngineRegisterResult{ID: res.ID, Registered: res.Err == nil}
		if res.Err != nil {
			resp.Results[i].Error = res.Err.Error()
			resp.Failed++
		} else {
			resp.Registered++
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// engineChipQuarantined refuses engine mutations against a chip the
// guard has quarantined: the healing schedule owns its condition until
// release, and an external condition or schedule write (the exact
// moves the adversary makes) would undo the rejuvenation. Engine-only
// chips (no fleet twin) are never quarantined.
func (s *Server) engineChipQuarantined(w http.ResponseWriter, r *http.Request, id string) bool {
	if s.fleet == nil || !s.fleet.Quarantined(id) {
		return false
	}
	reason := ""
	if entry, ok := s.fleet.Get(id); ok {
		_, reason = entry.Quarantined()
	}
	s.writeError(w, r, fleet.QuarantinedError{ID: id, Reason: reason})
	return true
}

func (s *Server) handleEngineCondition(w http.ResponseWriter, r *http.Request) {
	if !s.requireEngine(w, r) {
		return
	}
	var req EngineConditionRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	id := r.PathValue("id")
	if s.engineChipQuarantined(w, r, id) {
		return
	}
	err := s.aging.SetCondition(r.Context(), id, engine.Cond{
		Phase: req.Phase, TempC: req.TempC, Vdd: req.Vdd, Duty: req.Duty,
	})
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	cv, _ := s.aging.Snapshot().Chip(id)
	s.writeJSON(w, http.StatusOK, cv)
}

func (s *Server) handleEngineSchedule(w http.ResponseWriter, r *http.Request) {
	if !s.requireEngine(w, r) {
		return
	}
	var req EngineSchedule
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	id := r.PathValue("id")
	if s.engineChipQuarantined(w, r, id) {
		return
	}
	if err := s.aging.SetSchedule(r.Context(), id, *req.toEngine()); err != nil {
		s.writeError(w, r, err)
		return
	}
	cv, _ := s.aging.Snapshot().Chip(id)
	s.writeJSON(w, http.StatusOK, cv)
}

func (s *Server) handleEngineDelete(w http.ResponseWriter, r *http.Request) {
	if !s.requireEngine(w, r) {
		return
	}
	id := r.PathValue("id")
	if err := s.aging.Remove(r.Context(), id); err != nil {
		s.writeError(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, EngineDeleteResponse{ID: id, Removed: true})
}

// engineObserveCreates mirrors freshly fabricated fleet chips into the
// aging engine under the default fleet condition. Registration
// failures are logged, not surfaced: the fleet create already
// committed, and the startup SyncFleet reconciles any gap on the next
// boot.
func (s *Server) engineObserveCreates(r *http.Request, ids ...string) {
	if s.aging == nil || len(ids) == 0 {
		return
	}
	specs := make([]engine.Spec, len(ids))
	for i, id := range ids {
		sp := engineFleetDefault
		sp.ID = id
		sp.Kind = engine.KindFleet
		specs[i] = sp
	}
	regs, err := s.aging.RegisterBatch(r.Context(), specs)
	if err != nil {
		s.log.WarnContext(r.Context(), "engine registration failed", "chips", len(ids), "err", err)
		return
	}
	for _, res := range regs {
		var dup engine.DuplicateError
		if res.Err != nil && !errors.As(res.Err, &dup) {
			s.log.WarnContext(r.Context(), "engine registration failed", "chip", res.ID, "err", res.Err)
		}
	}
}

// engineObserveDelete drops a fleet chip's engine twin after the
// fleet delete committed (the delete record prunes the chip's engine
// journal history, so no engine record is written).
func (s *Server) engineObserveDelete(r *http.Request, id string) {
	if s.aging == nil {
		return
	}
	err := s.aging.ObserveFleetDelete(r.Context(), id)
	var missing engine.NotFoundError
	if err != nil && !errors.As(err, &missing) {
		s.log.WarnContext(r.Context(), "engine removal failed", "chip", id, "err", err)
	}
}

// syncEngineFleet reconciles engine membership with the fleet at
// startup: fleet chips missing from the engine (a crash between a
// fleet create's commit and its engine registration, or a fleet that
// predates the engine) register under the default condition, and
// fleet-backed engine chips whose fleet chip is gone are dropped.
func (s *Server) syncEngineFleet() error {
	list := s.fleet.List()
	ids := make([]string, len(list))
	for i, c := range list {
		ids[i] = c.ID
	}
	regs, err := s.aging.SyncFleet(context.Background(), ids, engineFleetDefault)
	if err != nil {
		return err
	}
	synced := 0
	for _, res := range regs {
		if res.Err != nil {
			s.log.Warn("engine fleet sync: registration failed", "chip", res.ID, "err", res.Err)
		} else {
			synced++
		}
	}
	if synced > 0 {
		s.log.Info("engine fleet sync: registered missing fleet chips", "chips", synced)
	}
	return nil
}

// maxTickEpochs bounds one POST /v1/engine/tick request; advancing a
// simulation further belongs in a loop the caller paces.
const maxTickEpochs = 10_000

// handleEngineTick advances the engine clock by hand. It only exists
// on a manual clock (-epoch < 0) — with a wall-clock ticker running,
// two clock owners would interleave epochs unpredictably, so the
// route refuses with 409. Deterministic drivers (guard-smoke, demos,
// red-team replays) boot manual and pace the simulation themselves.
func (s *Server) handleEngineTick(w http.ResponseWriter, r *http.Request) {
	if !s.requireEngine(w, r) {
		return
	}
	if !s.manual {
		s.writeJSON(w, http.StatusConflict, ErrorResponse{
			Error:     "serve: engine clock is wall-driven; manual ticks need -epoch < 0",
			RequestID: RequestIDFrom(r.Context()),
		})
		return
	}
	req := EngineTickRequest{Epochs: 1}
	if r.ContentLength != 0 {
		if err := decodeJSON(r, &req); err != nil {
			s.writeError(w, r, err)
			return
		}
	}
	if req.Epochs < 1 || req.Epochs > maxTickEpochs {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error:     fmt.Sprintf("serve: tick epochs must be in [1,%d], got %d", maxTickEpochs, req.Epochs),
			RequestID: RequestIDFrom(r.Context()),
		})
		return
	}
	for i := uint64(0); i < req.Epochs; i++ {
		if r.Context().Err() != nil {
			s.writeError(w, r, r.Context().Err())
			return
		}
		s.aging.Tick(r.Context())
	}
	s.writeJSON(w, http.StatusOK, EngineTickResponse{
		Ticked: req.Epochs, Epoch: s.aging.Stats().Epoch,
	})
}

// engineErrorStatus classifies aging-engine errors for writeError.
func engineErrorStatus(err error) (int, bool) {
	var missing engine.NotFoundError
	var dup engine.DuplicateError
	switch {
	case errors.As(err, &missing):
		return http.StatusNotFound, true
	case errors.As(err, &dup):
		return http.StatusConflict, true
	case errors.Is(err, engine.ErrClosed):
		return http.StatusServiceUnavailable, true
	}
	return 0, false
}
