// Observability acceptance tests: a batch request on a durable fleet
// yields a retrievable trace whose spans cover the transport
// middleware, the fleet batch scheduler, per-chip lock acquisition and
// the journal group commit; the Prometheus exposition parses and
// carries the per-route histograms, runtime gauges and per-chip aging
// telemetry; and a degraded-mode episode emits structured log lines
// that join to the failing trace by trace_id.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"selfheal/internal/faults"
	"selfheal/internal/fleet"
	"selfheal/internal/obs"
	"selfheal/internal/store"
)

// tracesURL builds the /debug/traces query string, escaping the route
// pattern (which contains a space).
func tracesURL(query url.Values) string {
	return "/debug/traces?" + query.Encode()
}

// waitForTrace polls the trace ring until a trace satisfies pred. The
// root span ends *after* the response body is flushed, so the client
// can observe the response a moment before the trace is retained.
func waitForTrace(t *testing.T, ts *httptest.Server, query url.Values, pred func(obs.TraceView) bool) obs.TraceView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		var resp TracesResponse
		do(t, ts, "GET", tracesURL(query), "", http.StatusOK, &resp)
		for _, tr := range resp.Traces {
			if pred(tr) {
				return tr
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no matching trace in ring after 2s; have %d traces", len(resp.Traces))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// spanNames collects the set of span names in a trace.
func spanNames(tr obs.TraceView) map[string]int {
	names := make(map[string]int, len(tr.Spans))
	for _, sp := range tr.Spans {
		names[sp.Name]++
	}
	return names
}

func TestBatchTraceAndPromExposition(t *testing.T) {
	st, _, err := store.Open[*fleet.ChipEntry](t.TempDir(), store.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Store: st})
	t.Cleanup(s.Close)

	do(t, ts, "POST", "/v1/chips:batch",
		`{"chips":[{"id":"c0","seed":7,"kind":"bench"},{"id":"m0","seed":8,"kind":"monitored"}]}`,
		http.StatusOK, nil)

	var batch BatchOpsResponse
	do(t, ts, "POST", "/v1/ops:batch", `{"ops":[
		{"op":"stress","id":"c0","temp_c":110,"vdd":1.3,"ac":true,"hours":24,"sample_hours":6},
		{"op":"measure","id":"c0"},
		{"op":"odometer","id":"m0"}
	]}`, http.StatusOK, &batch)
	if batch.Failed != 0 {
		t.Fatalf("batch failed items: %+v", batch.Results)
	}

	// ---- The trace covers every layer the request crossed. ----
	query := url.Values{"route": {"POST /v1/ops:batch"}}
	tr := waitForTrace(t, ts, query, func(tr obs.TraceView) bool {
		return tr.Route == "POST /v1/ops:batch" && tr.Status == http.StatusOK
	})
	if tr.TraceID == "" {
		t.Fatal("trace has no trace_id")
	}
	names := spanNames(tr)
	for _, want := range []string{
		"serve.gate",     // transport: write-gate middleware
		"fleet.batch",    // fleet: batch scheduling
		"batch.item",     // fleet: worker-pool item
		"chip.lock",      // fleet: per-chip lock acquisition
		"journal.stage",  // journal: record staged
		"journal.commit", // journal: group-commit fsync wait
	} {
		if names[want] == 0 {
			t.Errorf("trace missing span %q; spans: %v", want, names)
		}
	}
	if names["batch.item"] != 3 {
		t.Errorf("batch.item spans = %d, want 3", names["batch.item"])
	}
	// Group-commit batching is visible: at least one commit span was
	// the leader that ran the fsync, annotated with the batch size.
	leader := false
	for _, sp := range tr.Spans {
		if sp.Name == "journal.commit" && sp.Attrs["leader"] == "true" {
			leader = true
			if sp.Attrs["batch_size"] == "" {
				t.Error("leader commit span missing batch_size attr")
			}
		}
	}
	if !leader {
		t.Error("no journal.commit span with leader=true")
	}
	// batch.item spans parent onto the fleet.batch span, and chip.lock
	// spans parent onto a batch.item — the tree mirrors the layers.
	byID := make(map[string]obs.SpanView, len(tr.Spans))
	for _, sp := range tr.Spans {
		byID[sp.ID] = sp
	}
	for _, sp := range tr.Spans {
		switch sp.Name {
		case "batch.item":
			if p := byID[sp.Parent]; p.Name != "fleet.batch" {
				t.Errorf("batch.item parent = %q, want fleet.batch", p.Name)
			}
		case "chip.lock":
			if p := byID[sp.Parent]; p.Name != "batch.item" {
				t.Errorf("chip.lock parent = %q, want batch.item", p.Name)
			}
		}
	}

	// ---- Prometheus exposition: valid text format, all families. ----
	resp, raw := doRaw(t, ts, "GET", "/metrics?format=prometheus", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prometheus scrape: status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("prometheus Content-Type = %q", ct)
	}
	text := string(raw)
	checkPromExposition(t, text)
	for _, want := range []string{
		`selfheal_request_duration_seconds_bucket{route="POST /v1/ops:batch",le="+Inf"}`,
		`selfheal_requests_total{route="POST /v1/ops:batch",status="200"}`,
		`selfheal_chip_stress_seconds_total{chip="c0",kind="bench"}`,
		`selfheal_chip_degradation_pct{chip="c0"}`,
		`selfheal_chip_degradation_ppm{chip="m0"}`,
		`selfheal_chip_beat_hz{chip="m0"}`,
		`selfheal_journal_fsync_total`,
		"go_goroutines",
		"go_memstats_heap_alloc_bytes",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}

	// ---- The JSON snapshot keeps the per-route histogram too. ----
	var snap MetricsSnapshot
	do(t, ts, "GET", "/metrics?format=json", "", http.StatusOK, &snap)
	rl, ok := snap.LatencyByRoute["POST /v1/ops:batch"]
	if !ok || rl.Count == 0 {
		t.Fatalf("latency_by_route missing batch route: %+v", snap.LatencyByRoute)
	}
	if got := rl.Buckets[len(rl.Buckets)-1]; got.Le != "+Inf" || got.Count != rl.Count {
		t.Errorf("final bucket = %+v, want le=+Inf count=%d", got, rl.Count)
	}

	// An unknown format is a 400, not a silent JSON fallback.
	resp, _ = doRaw(t, ts, "GET", "/metrics?format=xml", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("format=xml: status %d, want 400", resp.StatusCode)
	}
}

// checkPromExposition validates every line is a comment or a
// `name{labels} value` sample parseable by the text-format rules.
func checkPromExposition(t *testing.T, text string) {
	t.Helper()
	typed := make(map[string]string)
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Errorf("line %d: empty line in exposition", i+1)
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Errorf("line %d: malformed TYPE comment %q", i+1, line)
				continue
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Label values may contain spaces ("POST /v1/ops:batch"), so the
		// sample splits at the closing brace, not the first space.
		var name, rest string
		if open := strings.Index(line, "{"); open >= 0 {
			end := strings.LastIndex(line, "}")
			if end < open {
				t.Errorf("line %d: unterminated label set %q", i+1, line)
				continue
			}
			name = line[:open]
			rest = strings.TrimSpace(line[end+1:])
		} else {
			name, rest, _ = strings.Cut(line, " ")
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if _, ok := typed[family]; !ok {
			if _, ok := typed[name]; !ok {
				t.Errorf("line %d: sample %q has no preceding TYPE", i+1, name)
			}
		}
		var v float64
		if _, err := fmt.Sscanf(rest, "%g", &v); err != nil && rest != "+Inf" {
			t.Errorf("line %d: unparseable value %q", i+1, rest)
		}
	}
}

// lockedWriter serialises concurrent slog writes into one buffer.
type lockedWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *lockedWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func TestDegradedEpisodeEmitsLogsAndTrace(t *testing.T) {
	lw := &lockedWriter{}
	logger, err := obs.NewLogger(lw, slog.LevelDebug, "json")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.New(faults.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := store.Open[*fleet.ChipEntry](t.TempDir(), store.JournalOptions{
		Hook:     inj.JournalHook(),
		SyncHook: inj.JournalSyncHook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Logger:           logger,
		Store:            st,
		Faults:           inj,
		ProbeInterval:    time.Hour, // keep the episode open for the test
		ProbeMaxInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	do(t, ts, "POST", "/v1/chips", `{"id":"c0","seed":7}`, http.StatusCreated, nil)
	inj.SetDiskFault(faults.DiskFailFsync, 0)
	do(t, ts, "POST", "/v1/chips/c0/stress",
		`{"temp_c":110,"vdd":1.3,"ac":true,"hours":24,"sample_hours":6}`,
		http.StatusServiceUnavailable, nil)

	// The episode-entry log line carries the failing request's trace_id.
	var logTraceID string
	for _, line := range strings.Split(lw.String(), "\n") {
		if line == "" || !strings.Contains(line, "entering degraded read-only mode") {
			continue
		}
		var rec struct {
			Msg     string `json:"msg"`
			TraceID string `json:"trace_id"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable log line %q: %v", line, err)
		}
		logTraceID = rec.TraceID
	}
	if logTraceID == "" {
		t.Fatalf("no degraded-mode log line with a trace_id; logs:\n%s", lw.String())
	}

	// errors=only surfaces the failing trace, joined by that trace_id,
	// with the fsync failure attributed to the journal commit span.
	tr := waitForTrace(t, ts, url.Values{"errors": {"only"}}, func(tr obs.TraceView) bool {
		return tr.TraceID == logTraceID
	})
	if tr.Status != http.StatusServiceUnavailable {
		t.Errorf("failing trace status = %d, want 503", tr.Status)
	}
	var commitErr string
	for _, sp := range tr.Spans {
		if sp.Name == "journal.commit" && sp.Error != "" {
			commitErr = sp.Error
		}
	}
	if commitErr == "" {
		t.Fatalf("no failing journal.commit span in trace %+v", tr)
	}
	if !strings.Contains(commitErr, "fsync") && !strings.Contains(commitErr, "injected") {
		t.Errorf("commit span error %q does not look like the injected fsync fault", commitErr)
	}

	// The healthy create beforehand must not match errors=only.
	var resp TracesResponse
	do(t, ts, "GET", tracesURL(url.Values{"errors": {"only"}, "route": {"POST /v1/chips"}}),
		"", http.StatusOK, &resp)
	for _, tr := range resp.Traces {
		if tr.Status == http.StatusCreated {
			t.Errorf("healthy create leaked into errors=only: %+v", tr)
		}
	}
}

// TestObserveSnapshotTraceRingConcurrent hammers the metrics counters,
// the snapshot path and the trace ring from many goroutines at once —
// meaningful under -race, which `make check` runs.
func TestObserveSnapshotTraceRingConcurrent(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	t.Cleanup(s.Close)
	do(t, ts, "POST", "/v1/chips", `{"id":"c0","seed":7}`, http.StatusCreated, nil)

	const writers, readers, rounds = 8, 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s.metrics.Observe("GET /hammer", 200+w, time.Duration(i)*time.Microsecond)
				ctx, root := s.tracer.Start(t.Context(), "GET /hammer")
				_, sp := obs.StartSpan(ctx, "hammer.child", obs.Int("i", i))
				sp.End()
				root.SetStatus(200 + w)
				root.End()
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s.metrics.Snapshot(s.engine, s.fleet, s.faults, s.gate)
				s.tracer.Snapshot(obs.Filter{Route: "GET /hammer"})
				if i%10 == 0 {
					doRaw(t, ts, "GET", "/metrics?format=prometheus", "")
					doRaw(t, ts, "GET", "/debug/traces?limit=5", "")
					doRaw(t, ts, "GET", "/v1/chips/c0/measure", "")
				}
			}
		}()
	}
	wg.Wait()

	snap := s.metrics.Snapshot(s.engine, s.fleet, s.faults, s.gate)
	rs, ok := snap.Requests["GET /hammer"]
	if !ok {
		t.Fatal("hammer route missing from snapshot")
	}
	var total uint64
	for _, n := range rs.ByStatus {
		total += n
	}
	if want := uint64(writers * rounds); total != want {
		t.Errorf("observed %d hammer requests, want %d", total, want)
	}
	if got := s.tracer.Total(); got < uint64(writers*rounds) {
		t.Errorf("tracer completed %d traces, want at least %d", got, writers*rounds)
	}
}
