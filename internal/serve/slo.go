package serve

import (
	"fmt"
	"sync"
	"time"

	"selfheal/internal/obs/tsdb"
)

// SLOKind names one of the standing service-level objectives the
// rolling burn-rate monitor evaluates every epoch over the telemetry
// TSDB.
type SLOKind string

const (
	// SLOMutationAvailability: the fraction of mutating requests that
	// fail with a 5xx inside the window must stay within the error
	// budget.
	SLOMutationAvailability SLOKind = "mutation_availability"
	// SLOEpochLag: the aging engine must keep up with its wall-clock
	// tick schedule — at most a budgeted fraction of the window's
	// epochs may start late by more than the lag budget.
	SLOEpochLag SLOKind = "epoch_lag"
	// SLOMarginRecovery is the paper's headline held as a standing
	// objective: of the chips the guard released from quarantine inside
	// the window, at least 90% must have recovered ≥90% of their
	// stress-induced margin excess.
	SLOMarginRecovery SLOKind = "margin_recovery"
)

// sloKinds is the evaluation (and exposition) order.
var sloKinds = []SLOKind{SLOMutationAvailability, SLOEpochLag, SLOMarginRecovery}

// SLOStatus is one objective's latest evaluation. Burn is the
// normalized burn rate: consumed budget over allowed budget, so 1.0 is
// the breach threshold regardless of the objective's native units.
type SLOStatus struct {
	SLO    SLOKind `json:"slo"`
	OK     bool    `json:"ok"`
	Burn   float64 `json:"burn_rate"`
	Epoch  uint64  `json:"epoch"`
	Window int     `json:"window_epochs"`
	Detail string  `json:"detail,omitempty"`
}

// SLOAlert is one typed breach/recovery event in the monitor's alert
// ring (the guard-style fixed-capacity overwrite ring).
type SLOAlert struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Epoch  uint64    `json:"epoch"`
	SLO    SLOKind   `json:"slo"`
	Kind   string    `json:"kind"` // "breach" | "recovered"
	Burn   float64   `json:"burn_rate"`
	Detail string    `json:"detail"`
}

// sloConfig tunes the monitor; zero fields take the defaults below.
type sloConfig struct {
	Window        int     // rolling window in epochs (default 20)
	AvailBudget   float64 // tolerated 5xx fraction of mutations (default 0.05)
	LagBudget     float64 // tolerated per-epoch start lag in seconds (default 1)
	LagFracBudget float64 // tolerated fraction of late epochs (default 0.25)
	AlertCap      int     // alert ring capacity (default 128)
}

func (c sloConfig) withDefaults() sloConfig {
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.AvailBudget <= 0 {
		c.AvailBudget = 0.05
	}
	if c.LagBudget <= 0 {
		c.LagBudget = 1
	}
	if c.LagFracBudget <= 0 {
		c.LagFracBudget = 0.25
	}
	if c.AlertCap <= 0 {
		c.AlertCap = 128
	}
	return c
}

// recoverTarget is the paper's recovery bar: a release counts toward
// the margin-recovery SLO only if ≥90% of the excess was recovered,
// and ≥90% of the window's releases must count.
const recoverTarget = 0.9

// sloMonitor evaluates the objectives after every recorded epoch. It
// reads only the TSDB (no locks into other layers) and owns its own
// mutex — a leaf in the lock hierarchy, like the guard's alert ring.
type sloMonitor struct {
	cfg sloConfig

	mu          sync.Mutex
	status      map[SLOKind]SLOStatus
	ring        []SLOAlert // fixed ring; next is the overwrite cursor
	next, n     int
	seq         uint64
	alertsTotal uint64
	breaches    uint64
}

func newSLOMonitor(cfg sloConfig) *sloMonitor {
	cfg = cfg.withDefaults()
	return &sloMonitor{
		cfg:    cfg,
		status: make(map[SLOKind]SLOStatus, len(sloKinds)),
		ring:   make([]SLOAlert, cfg.AlertCap),
	}
}

// evaluate runs all objectives against db's rolling window, records
// breach/recovery transitions in the alert ring, and appends the
// slo_* series back into db (so burn rates trend like any other
// telemetry). Called from the per-epoch recorder.
func (m *sloMonitor) evaluate(epoch uint64, db *tsdb.DB) {
	statuses := []SLOStatus{
		m.evalAvailability(epoch, db),
		m.evalEpochLag(epoch, db),
		m.evalMarginRecovery(epoch, db),
	}
	m.mu.Lock()
	for _, st := range statuses {
		prev, seen := m.status[st.SLO]
		if seen && prev.OK && !st.OK {
			m.push(SLOAlert{Epoch: epoch, SLO: st.SLO, Kind: "breach", Burn: st.Burn, Detail: st.Detail})
			m.breaches++
		}
		if seen && !prev.OK && st.OK {
			m.push(SLOAlert{Epoch: epoch, SLO: st.SLO, Kind: "recovered", Burn: st.Burn, Detail: st.Detail})
		}
		m.status[st.SLO] = st
	}
	m.mu.Unlock()
	for _, st := range statuses {
		ok := 0.0
		if st.OK {
			ok = 1
		}
		db.Append("slo_burn_"+string(st.SLO), epoch, st.Burn)
		db.Append("slo_ok_"+string(st.SLO), epoch, ok)
	}
}

// push appends one alert to the ring. Callers hold m.mu.
func (m *sloMonitor) push(a SLOAlert) {
	m.seq++
	a.Seq = m.seq
	a.Time = time.Now()
	m.alertsTotal++
	m.ring[m.next] = a
	m.next = (m.next + 1) % len(m.ring)
	if m.n < len(m.ring) {
		m.n++
	}
}

// evalAvailability: 5xx fraction of mutating requests over the window.
func (m *sloMonitor) evalAvailability(epoch uint64, db *tsdb.DB) SLOStatus {
	st := SLOStatus{SLO: SLOMutationAvailability, OK: true, Epoch: epoch, Window: m.cfg.Window}
	var total, errs float64
	for _, sm := range db.Select("mutations_per_epoch", tsdb.Query{Limit: m.cfg.Window}) {
		total += sm.Value
	}
	for _, sm := range db.Select("mutation_errors_per_epoch", tsdb.Query{Limit: m.cfg.Window}) {
		errs += sm.Value
	}
	if total > 0 {
		ratio := errs / total
		st.Burn = ratio / m.cfg.AvailBudget
		st.OK = st.Burn <= 1
		st.Detail = fmt.Sprintf("%.0f of %.0f mutations failed (budget %.0f%%)", errs, total, 100*m.cfg.AvailBudget)
	} else {
		st.Detail = "no mutations in window"
	}
	return st
}

// evalEpochLag: fraction of the window's epochs that started more than
// LagBudget seconds late.
func (m *sloMonitor) evalEpochLag(epoch uint64, db *tsdb.DB) SLOStatus {
	st := SLOStatus{SLO: SLOEpochLag, OK: true, Epoch: epoch, Window: m.cfg.Window}
	lags := db.Select("epoch_lag_seconds", tsdb.Query{Limit: m.cfg.Window})
	if len(lags) == 0 {
		st.Detail = "no epochs in window"
		return st
	}
	late := 0
	for _, sm := range lags {
		if sm.Value > m.cfg.LagBudget {
			late++
		}
	}
	frac := float64(late) / float64(len(lags))
	st.Burn = frac / m.cfg.LagFracBudget
	st.OK = st.Burn <= 1
	st.Detail = fmt.Sprintf("%d of %d epochs started > %gs late (budget %.0f%%)",
		late, len(lags), m.cfg.LagBudget, 100*m.cfg.LagFracBudget)
	return st
}

// evalMarginRecovery: of the guard releases inside the window, the
// fraction that met the ≥90% recovery bar must itself be ≥90%. The
// inputs are the cumulative guard counters recorded per epoch, so the
// window delta is last-sample minus first-sample.
func (m *sloMonitor) evalMarginRecovery(epoch uint64, db *tsdb.DB) SLOStatus {
	st := SLOStatus{SLO: SLOMarginRecovery, OK: true, Epoch: epoch, Window: m.cfg.Window}
	delta := func(name string) float64 {
		s := db.Select(name, tsdb.Query{Limit: m.cfg.Window})
		if len(s) == 0 {
			return 0
		}
		return s[len(s)-1].Value - s[0].Value
	}
	releases := delta("guard_releases_total")
	if releases <= 0 {
		st.Detail = "no quarantine releases in window"
		return st
	}
	good := delta("guard_recovered90_total")
	ratio := good / releases
	// Burn normalizes the shortfall: ratio at the 90% target burns
	// exactly the budget (1.0); every release recovering ≥90% burns 0.
	st.Burn = (1 - ratio) / (1 - recoverTarget)
	st.OK = ratio >= recoverTarget
	st.Detail = fmt.Sprintf("%.0f of %.0f releases recovered >=90%% of margin excess", good, releases)
	return st
}

// snapshot returns the latest per-objective statuses (evaluation
// order) and the newest alerts (newest first, capped at limit).
func (m *sloMonitor) snapshot(limit int) ([]SLOStatus, []SLOAlert) {
	m.mu.Lock()
	defer m.mu.Unlock()
	statuses := make([]SLOStatus, 0, len(sloKinds))
	for _, k := range sloKinds {
		if st, ok := m.status[k]; ok {
			statuses = append(statuses, st)
		}
	}
	if limit <= 0 || limit > m.n {
		limit = m.n
	}
	alerts := make([]SLOAlert, 0, limit)
	for i := 1; i <= limit; i++ {
		alerts = append(alerts, m.ring[((m.next-i)%len(m.ring)+len(m.ring))%len(m.ring)])
	}
	return statuses, alerts
}

// counters reports lifetime alert totals.
func (m *sloMonitor) counters() (alerts, breaches uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alertsTotal, m.breaches
}
