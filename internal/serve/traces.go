package serve

import (
	"net/http"
	"strconv"
	"time"

	"selfheal/internal/obs"
)

// TracesResponse is the GET /debug/traces body.
type TracesResponse struct {
	// Total counts traces completed since startup (retained or evicted).
	Total uint64 `json:"total"`
	// Capacity is the ring size — how many completed traces are kept.
	Capacity int `json:"capacity"`
	// Traces are the retained traces matching the query, newest first.
	Traces []obs.TraceView `json:"traces"`
}

// handleTraces serves the trace ring: the last N completed /v1/
// requests decomposed into per-layer spans. Query parameters:
//
//	route=POST /v1/ops:batch   exact route-pattern match
//	min_ms=50                  only traces at least this long
//	errors=only                only failed traces (5xx or span error)
//	limit=20                   max traces returned (newest first)
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := obs.Filter{Route: q.Get("route"), ErrorsOnly: q.Get("errors") == "only"}
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			s.writeJSON(w, http.StatusBadRequest, ErrorResponse{
				Error: "serve: min_ms must be a non-negative number, got " + strconv.Quote(v)})
			return
		}
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			s.writeJSON(w, http.StatusBadRequest, ErrorResponse{
				Error: "serve: limit must be a positive integer, got " + strconv.Quote(v)})
			return
		}
		f.Limit = n
	}
	s.writeJSON(w, http.StatusOK, TracesResponse{
		Total:    s.tracer.Total(),
		Capacity: s.tracer.Capacity(),
		Traces:   s.tracer.Snapshot(f),
	})
}
