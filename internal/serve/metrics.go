package serve

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"selfheal/internal/engine"
	"selfheal/internal/faults"
	"selfheal/internal/fleet"
	"selfheal/internal/guard"
)

// latencyBounds are the histogram bucket upper bounds in seconds; a
// final implicit +Inf bucket catches the rest.
var latencyBounds = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// latencyLabels are the bucket bounds pre-rendered as the "le" label
// strings (the final entry is "+Inf"), so Snapshot — which runs under
// m.mu and is hit by every scrape — formats nothing.
var latencyLabels = func() []string {
	labels := make([]string, len(latencyBounds)+1)
	for i, b := range latencyBounds {
		labels[i] = strconv.FormatFloat(b, 'g', -1, 64)
	}
	labels[len(latencyBounds)] = "+Inf"
	return labels
}()

// Metrics is the service's expvar-style instrumentation: request and
// status counts per route, a latency histogram, and (via snapshots
// taken at read time) cache and per-chip usage numbers. Plain JSON on
// GET /metrics, standard library only.
type Metrics struct {
	start time.Time

	panics          atomic.Uint64 // handler panics recovered into 500s
	shed            atomic.Uint64 // requests rejected 429 by the load shedder
	timeouts        atomic.Uint64 // requests cut off 503 by a route timeout
	degradedRejects atomic.Uint64 // writes rejected 503 by the degraded-mode gate

	mu      sync.Mutex
	routes  map[string]*routeStats
	latency []uint64 // len(latencyBounds)+1 counters; last is +Inf
}

type routeStats struct {
	count      uint64
	byStatus   map[int]uint64
	latency    []uint64 // per-route histogram; same bounds as the global one
	latencySum float64  // total seconds observed, for rate/mean queries
}

// NewMetrics starts the clock.
func NewMetrics() *Metrics {
	return &Metrics{
		start:   time.Now(),
		routes:  make(map[string]*routeStats),
		latency: make([]uint64, len(latencyBounds)+1),
	}
}

// Observe records one served request.
func (m *Metrics) Observe(route string, status int, elapsed time.Duration) {
	bucket := len(latencyBounds)
	for i, le := range latencyBounds {
		if elapsed.Seconds() <= le {
			bucket = i
			break
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.routes[route]
	if !ok {
		rs = &routeStats{
			byStatus: make(map[int]uint64),
			latency:  make([]uint64, len(latencyBounds)+1),
		}
		m.routes[route] = rs
	}
	rs.count++
	rs.byStatus[status]++
	rs.latency[bucket]++
	rs.latencySum += elapsed.Seconds()
	m.latency[bucket]++
}

// RecordPanic counts one recovered handler panic.
func (m *Metrics) RecordPanic() { m.panics.Add(1) }

// RecordShed counts one request rejected by the concurrency limiter.
func (m *Metrics) RecordShed() { m.shed.Add(1) }

// RecordTimeout counts one request cut off by its route timeout.
func (m *Metrics) RecordTimeout() { m.timeouts.Add(1) }

// RecordDegradedReject counts one write rejected by the degraded-mode
// gate.
func (m *Metrics) RecordDegradedReject() { m.degradedRejects.Add(1) }

// mutationCounts totals the mutating routes' requests and their 5xx
// failures — the telemetry recorder turns consecutive readings into
// the per-epoch mutation throughput and the availability SLO's inputs.
func (m *Metrics) mutationCounts() (total, errors uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for route, rs := range m.routes {
		if !mutatingRoutes[route] {
			continue
		}
		total += rs.count
		for status, n := range rs.byStatus {
			if status >= 500 {
				errors += n
			}
		}
	}
	return total, errors
}

// RouteSnapshot is one route's counters in a MetricsSnapshot.
type RouteSnapshot struct {
	Count    uint64            `json:"count"`
	ByStatus map[string]uint64 `json:"by_status"`
}

// LatencyBucket is one cumulative histogram bucket ("le" = upper bound
// in seconds, "+Inf" for the overflow bucket).
type LatencyBucket struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

// RouteLatency is one route's latency histogram in a MetricsSnapshot:
// cumulative buckets over the same bounds as the global histogram,
// plus the observation count and the summed seconds (so mean latency
// is SumSeconds/Count).
type RouteLatency struct {
	Buckets    []LatencyBucket `json:"buckets"`
	Count      uint64          `json:"count"`
	SumSeconds float64         `json:"sum_seconds"`
}

// CacheSnapshot reports the prediction memo cache.
type CacheSnapshot struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
}

// JournalSnapshot reports the durability layer: append volume, the
// fsync latency the fleet pays per mutating operation, and how well
// group commit is amortizing it (SyncBatchMax > 1 means concurrent
// appends shared an fsync).
type JournalSnapshot struct {
	Appends      uint64  `json:"appends"`
	Compactions  uint64  `json:"compactions"`
	Records      int     `json:"records"`
	LastSeq      uint64  `json:"last_seq"`
	FsyncCount   uint64  `json:"fsync_count"`
	FsyncMeanMS  float64 `json:"fsync_mean_ms"`
	FsyncMaxMS   float64 `json:"fsync_max_ms"`
	SyncBatches  uint64  `json:"sync_batches"`
	SyncBatchMax int     `json:"sync_batch_max"`
	CompactError string  `json:"compact_error,omitempty"`
}

// DegradedSnapshot reports the degraded-mode supervisor: whether the
// service currently accepts writes, how many episodes it has entered
// and recovered from, probe volume, and the writes turned away while
// read-only.
type DegradedSnapshot struct {
	WriteReady     bool    `json:"write_ready"`
	Enters         uint64  `json:"enters"`
	Exits          uint64  `json:"exits"`
	Probes         uint64  `json:"probes"`
	WritesRejected uint64  `json:"writes_rejected"`
	Reason         string  `json:"reason,omitempty"`
	SinceSeconds   float64 `json:"since_seconds,omitempty"`
}

// EngineMetrics is the aging-engine section of a MetricsSnapshot: the
// engine's counters, whole-fleet aging aggregates, and the most-aged
// chips (the same top-K list the Prometheus exposition emits instead
// of one series per chip).
type EngineMetrics struct {
	Stats engine.Stats `json:"stats"`
	// OdometerSum is the fleet-wide total of stress epochs endured.
	OdometerSum uint64 `json:"odometer_epochs_sum"`
	// VthShiftSum is the fleet-wide total threshold shift in volts —
	// divide by Stats.Chips for the fleet mean.
	VthShiftSum float64           `json:"vth_shift_v_sum"`
	Top         []engine.ChipView `json:"top_by_odometer,omitempty"`
}

// GuardMetrics is the guard section of a MetricsSnapshot: the blue
// team's counters plus the current quarantine roster (ids, sorted).
type GuardMetrics struct {
	guard.Metrics
	Quarantined []string `json:"quarantined,omitempty"`
}

// TelemetryMetrics is the telemetry section of a MetricsSnapshot: the
// TSDB's residency plus the SLO monitor's latest verdicts.
type TelemetryMetrics struct {
	Series    int    `json:"series"`
	Capacity  int    `json:"capacity"`
	Rejected  uint64 `json:"rejected,omitempty"`
	LastEpoch uint64 `json:"last_epoch"`
	// SLO holds the latest per-objective evaluations (empty until the
	// first recorded epoch).
	SLO            []SLOStatus `json:"slo,omitempty"`
	SLOAlertsTotal uint64      `json:"slo_alerts_total"`
	SLOBreaches    uint64      `json:"slo_breaches_total"`
}

// MetricsSnapshot is the GET /metrics body.
type MetricsSnapshot struct {
	UptimeSeconds   float64                  `json:"uptime_seconds"`
	Requests        map[string]RouteSnapshot `json:"requests"`
	LatencySeconds  []LatencyBucket          `json:"latency_seconds"`
	LatencyByRoute  map[string]RouteLatency  `json:"latency_by_route"`
	Cache           CacheSnapshot            `json:"cache"`
	Chips           map[string]ChipUsage     `json:"chips"`
	PanicsRecovered uint64                   `json:"panics_recovered"`
	RequestsShed    uint64                   `json:"requests_shed"`
	RequestTimeouts uint64                   `json:"request_timeouts"`
	Journal         *JournalSnapshot         `json:"journal,omitempty"`
	Degraded        *DegradedSnapshot        `json:"degraded,omitempty"`
	Faults          *faults.Stats            `json:"faults,omitempty"`
	Engine          *EngineMetrics           `json:"engine,omitempty"`
	Guard           *GuardMetrics            `json:"guard,omitempty"`
	Cluster         *ClusterMetrics          `json:"cluster,omitempty"`
	Telemetry       *TelemetryMetrics        `json:"telemetry,omitempty"`
}

// guardMetrics assembles the guard section: counters from the guard,
// roster from the fleet (the journaled source of truth).
func guardMetrics(g *guard.Guard, fl *fleet.Service) *GuardMetrics {
	if g == nil {
		return nil
	}
	gm := &GuardMetrics{Metrics: g.MetricsSnapshot()}
	if fl != nil {
		gm.Quarantined = fl.QuarantinedIDs()
	}
	return gm
}

// engineMetrics assembles the aging-engine section from one snapshot,
// with the per-chip list capped at topK.
func engineMetrics(e *engine.Engine, topK int) *EngineMetrics {
	if e == nil {
		return nil
	}
	em := &EngineMetrics{Stats: e.Stats()}
	snap := e.Snapshot()
	for pi := range snap.Parts {
		pv := &snap.Parts[pi]
		for i := range pv.Odo {
			em.OdometerSum += pv.Odo[i]
			em.VthShiftSum += pv.Vth[i]
		}
	}
	em.Top = snap.TopByOdometer(topK)
	return em
}

// Snapshot assembles the exported view, folding in the engine's cache
// stats, the fleet's per-chip usage, and — when the store is durable —
// its journal's fsync accounting, the degraded-mode supervisor, and
// the chaos injector's counters.
func (m *Metrics) Snapshot(engine *Engine, fl *fleet.Service, inj *faults.Injector, g *gate) MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeSeconds:   time.Since(m.start).Seconds(),
		Chips:           fl.Usage(),
		PanicsRecovered: m.panics.Load(),
		RequestsShed:    m.shed.Load(),
		RequestTimeouts: m.timeouts.Load(),
	}
	if st, ok := fl.StoreStats(); ok {
		js := JournalSnapshot{
			Appends:      st.Appends,
			Compactions:  st.Compactions,
			Records:      st.Records,
			LastSeq:      st.LastSeq,
			FsyncMaxMS:   float64(st.FsyncMax) / float64(time.Millisecond),
			FsyncCount:   st.FsyncCount,
			SyncBatches:  st.SyncBatches,
			SyncBatchMax: st.BatchMax,
			CompactError: st.CompactError,
		}
		if st.FsyncCount > 0 {
			js.FsyncMeanMS = float64(st.FsyncTotal) / float64(st.FsyncCount) / float64(time.Millisecond)
		}
		snap.Journal = &js
	}
	snap.Degraded = g.snapshot(m.degradedRejects.Load())
	if inj != nil {
		fs := inj.Stats()
		snap.Faults = &fs
	}
	hits, misses, entries, capacity := engine.CacheStats()
	snap.Cache = CacheSnapshot{Hits: hits, Misses: misses, Entries: entries, Capacity: capacity}

	m.mu.Lock()
	defer m.mu.Unlock()
	snap.Requests = make(map[string]RouteSnapshot, len(m.routes))
	snap.LatencyByRoute = make(map[string]RouteLatency, len(m.routes))
	for route, rs := range m.routes {
		byStatus := make(map[string]uint64, len(rs.byStatus))
		for status, n := range rs.byStatus {
			byStatus[strconv.Itoa(status)] = n
		}
		snap.Requests[route] = RouteSnapshot{Count: rs.count, ByStatus: byStatus}
		snap.LatencyByRoute[route] = RouteLatency{
			Buckets:    cumulativeBuckets(rs.latency),
			Count:      rs.count,
			SumSeconds: rs.latencySum,
		}
	}
	snap.LatencySeconds = cumulativeBuckets(m.latency)
	return snap
}

// cumulativeBuckets renders one histogram's raw counters as cumulative
// labelled buckets (the last is "+Inf" and equals the total count).
func cumulativeBuckets(counts []uint64) []LatencyBucket {
	out := make([]LatencyBucket, len(counts))
	var cum uint64
	for i, n := range counts {
		cum += n
		out[i] = LatencyBucket{Le: latencyLabels[i], Count: cum}
	}
	return out
}
