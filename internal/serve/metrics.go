package serve

import (
	"fmt"
	"sync"
	"time"
)

// latencyBounds are the histogram bucket upper bounds in seconds; a
// final implicit +Inf bucket catches the rest.
var latencyBounds = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// Metrics is the service's expvar-style instrumentation: request and
// status counts per route, a latency histogram, and (via snapshots
// taken at read time) cache and per-chip usage numbers. Plain JSON on
// GET /metrics, standard library only.
type Metrics struct {
	start time.Time

	mu      sync.Mutex
	routes  map[string]*routeStats
	latency []uint64 // len(latencyBounds)+1 counters; last is +Inf
}

type routeStats struct {
	count    uint64
	byStatus map[int]uint64
}

// NewMetrics starts the clock.
func NewMetrics() *Metrics {
	return &Metrics{
		start:   time.Now(),
		routes:  make(map[string]*routeStats),
		latency: make([]uint64, len(latencyBounds)+1),
	}
}

// Observe records one served request.
func (m *Metrics) Observe(route string, status int, elapsed time.Duration) {
	bucket := len(latencyBounds)
	for i, le := range latencyBounds {
		if elapsed.Seconds() <= le {
			bucket = i
			break
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.routes[route]
	if !ok {
		rs = &routeStats{byStatus: make(map[int]uint64)}
		m.routes[route] = rs
	}
	rs.count++
	rs.byStatus[status]++
	m.latency[bucket]++
}

// RouteSnapshot is one route's counters in a MetricsSnapshot.
type RouteSnapshot struct {
	Count    uint64            `json:"count"`
	ByStatus map[string]uint64 `json:"by_status"`
}

// LatencyBucket is one cumulative histogram bucket ("le" = upper bound
// in seconds, "+Inf" for the overflow bucket).
type LatencyBucket struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

// CacheSnapshot reports the prediction memo cache.
type CacheSnapshot struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
}

// MetricsSnapshot is the GET /metrics body.
type MetricsSnapshot struct {
	UptimeSeconds  float64                  `json:"uptime_seconds"`
	Requests       map[string]RouteSnapshot `json:"requests"`
	LatencySeconds []LatencyBucket          `json:"latency_seconds"`
	Cache          CacheSnapshot            `json:"cache"`
	Chips          map[string]ChipUsage     `json:"chips"`
}

// Snapshot assembles the exported view, folding in the engine's cache
// stats and the registry's per-chip usage.
func (m *Metrics) Snapshot(engine *Engine, registry *Registry) MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests:      make(map[string]RouteSnapshot),
		Chips:         registry.Usage(),
	}
	hits, misses, entries, capacity := engine.CacheStats()
	snap.Cache = CacheSnapshot{Hits: hits, Misses: misses, Entries: entries, Capacity: capacity}

	m.mu.Lock()
	defer m.mu.Unlock()
	for route, rs := range m.routes {
		byStatus := make(map[string]uint64, len(rs.byStatus))
		for status, n := range rs.byStatus {
			byStatus[fmt.Sprintf("%d", status)] = n
		}
		snap.Requests[route] = RouteSnapshot{Count: rs.count, ByStatus: byStatus}
	}
	var cum uint64
	for i, n := range m.latency[:len(latencyBounds)] {
		cum += n
		snap.LatencySeconds = append(snap.LatencySeconds,
			LatencyBucket{Le: fmt.Sprintf("%g", latencyBounds[i]), Count: cum})
	}
	cum += m.latency[len(latencyBounds)]
	snap.LatencySeconds = append(snap.LatencySeconds, LatencyBucket{Le: "+Inf", Count: cum})
	return snap
}
