package serve

import (
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"selfheal/internal/fleet"
	"selfheal/internal/repl"
	"selfheal/internal/store"
)

// StandbyConfig wires a promotable hot standby: a node that tails a
// primary's journal through a repl.Follower and serves nothing but
// health and cluster status — until POST /v1/cluster/promote turns it
// into the full service, replaying the replicated journal into the
// exact fleet state the dead primary had acknowledged.
type StandbyConfig struct {
	// NodeID is the ring id this standby takes over on promotion — the
	// id of the primary it follows. Placement hashes ids, not
	// addresses, so the takeover moves zero chips.
	NodeID string
	// AdvertiseAddr is this standby's own HTTP base URL (e.g.
	// "http://10.0.0.9:8040"); on promotion it replaces the dead
	// primary's address for NodeID in the promoted server's ring.
	AdvertiseAddr string
	// Peers maps node id -> base URL for the whole ring, including
	// NodeID (initially at the primary's address).
	Peers map[string]string
	// VNodes is the ring's virtual-node count (default
	// cluster.DefaultVNodes).
	VNodes int
	// DataDir is the follower's journal directory; promotion replays
	// it with store.Open.
	DataDir string
	// Follower is the running replication tail. The standby owns it:
	// promotion (or Close) stops it and closes its journal.
	Follower *repl.Follower
	// Base is the template for the promoted server (logger, timeouts,
	// limits...). Its Store and Cluster fields are overwritten at
	// promotion time; its Addr is unused (the caller owns the
	// listener).
	Base Config
}

// Standby is the pre-promotion server. It answers /healthz (alive),
// /readyz (503 — a standby never takes writes), and /v1/cluster (the
// follower's replication position), and atomically swaps itself for a
// freshly-built Server on POST /v1/cluster/promote. The promoted
// server runs without a replication layer of its own: it is
// immediately writable, and acknowledged writes are journaled locally.
type Standby struct {
	cfg StandbyConfig
	log *slog.Logger

	handler atomic.Pointer[http.Handler]

	mu       sync.Mutex
	promoted *Server
	st       fleet.Store // the promoted server's store; Standby closes it
	closed   bool
}

// NewStandby validates the wiring and mounts the standby mux. The
// follower must already be Started by the caller.
func NewStandby(cfg StandbyConfig) (*Standby, error) {
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("serve: standby: NodeID is required")
	}
	if cfg.AdvertiseAddr == "" {
		return nil, fmt.Errorf("serve: standby: AdvertiseAddr is required")
	}
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("serve: standby: DataDir is required")
	}
	if cfg.Follower == nil {
		return nil, fmt.Errorf("serve: standby: Follower is required")
	}
	if _, ok := cfg.Peers[cfg.NodeID]; !ok {
		return nil, fmt.Errorf("serve: standby: NodeID %q missing from Peers", cfg.NodeID)
	}
	logger := cfg.Base.Logger
	if logger == nil {
		logger = slog.Default()
	}
	sb := &Standby{
		cfg: cfg,
		log: logger.With("component", "standby", "node", cfg.NodeID),
	}
	var h http.Handler = sb.standbyMux()
	sb.handler.Store(&h)
	return sb, nil
}

// ServeHTTP dispatches through the atomically-swapped handler, so a
// promotion retargets every subsequent request without dropping the
// listener.
func (sb *Standby) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*sb.handler.Load()).ServeHTTP(w, r)
}

// StandbyPromoteResponse is the POST /v1/cluster/promote body: the
// promoted node's identity and how much replicated history it replayed.
type StandbyPromoteResponse struct {
	NodeID   string `json:"node_id"`
	Role     string `json:"role"`
	Addr     string `json:"addr"`
	Replayed int    `json:"replayed_records"`
	Chips    int    `json:"chips"`
	LastSeq  uint64 `json:"last_seq"`
}

func (sb *Standby) standbyMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		standbyJSON(w, http.StatusOK, map[string]string{"status": "ok", "role": "standby"})
	})
	// A standby is alive but never write-ready: load balancers must not
	// route traffic here until promotion swaps the real server in.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		standbyJSON(w, http.StatusServiceUnavailable, ReadyResponse{
			Status: "standby", WriteReady: false, Reason: "standby: promote to serve",
		})
	})
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, _ *http.Request) {
		standbyJSON(w, http.StatusOK, sb.clusterView())
	})
	mux.HandleFunc("POST /v1/cluster/promote", func(w http.ResponseWriter, r *http.Request) {
		srv, err := sb.Promote()
		if err != nil {
			standbyJSON(w, http.StatusConflict, ErrorResponse{Error: err.Error()})
			return
		}
		standbyJSON(w, http.StatusOK, StandbyPromoteResponse{
			NodeID:   sb.cfg.NodeID,
			Role:     "primary",
			Addr:     sb.cfg.AdvertiseAddr,
			Replayed: srv.Fleet().ReplayedRecords(),
			Chips:    srv.Fleet().Len(),
			LastSeq:  sb.lastSeq(),
		})
	})
	return mux
}

// clusterView is the standby's GET /v1/cluster body: the configured
// ring (static — a standby does not take repoints) plus the follower's
// replication position.
func (sb *Standby) clusterView() ClusterResponse {
	peers := make([]ClusterPeer, 0, len(sb.cfg.Peers))
	for id, addr := range sb.cfg.Peers {
		peers = append(peers, ClusterPeer{ID: id, Addr: addr, Self: id == sb.cfg.NodeID})
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	return ClusterResponse{
		NodeID: sb.cfg.NodeID,
		Role:   "standby",
		VNodes: sb.cfg.VNodes,
		Peers:  peers,
		Repl:   sb.cfg.Follower.ReplStats(),
	}
}

func (sb *Standby) lastSeq() uint64 {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if sb.promoted != nil {
		if st, ok := sb.promoted.Fleet().StoreStats(); ok {
			return st.LastSeq
		}
	}
	return 0
}

// Promote turns the standby into the serving node: stop tailing, close
// the follower's journal, replay it with store.Open (exactly the
// records the primary committed — same sequence numbers), and build
// the full Server with this node advertised at its own address.
// Idempotence: a second call answers with an error; the first
// promotion's server keeps serving.
func (sb *Standby) Promote() (*Server, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if sb.closed {
		return nil, fmt.Errorf("serve: standby is closed")
	}
	if sb.promoted != nil {
		return nil, fmt.Errorf("serve: node %s is already promoted", sb.cfg.NodeID)
	}
	stats := sb.cfg.Follower.ReplStats()
	if err := sb.cfg.Follower.Close(); err != nil {
		return nil, fmt.Errorf("serve: standby: close follower: %w", err)
	}
	st, repairs, err := store.Open[*fleet.ChipEntry](sb.cfg.DataDir, store.JournalOptions{})
	if err != nil {
		return nil, fmt.Errorf("serve: standby: reopen replicated journal: %w", err)
	}
	for _, rep := range repairs {
		sb.log.Warn("replicated journal salvaged", "file", rep.File, "reason", rep.Reason)
	}
	peers := make(map[string]string, len(sb.cfg.Peers))
	for id, addr := range sb.cfg.Peers {
		peers[id] = addr
	}
	peers[sb.cfg.NodeID] = sb.cfg.AdvertiseAddr

	cfg := sb.cfg.Base
	cfg.Store = st
	cfg.Cluster = &ClusterConfig{
		NodeID: sb.cfg.NodeID,
		Peers:  peers,
		VNodes: sb.cfg.VNodes,
	}
	srv, err := New(cfg)
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("serve: standby: build promoted server: %w", err)
	}
	sb.promoted = srv
	sb.st = st
	var h http.Handler = srv.Handler()
	sb.handler.Store(&h)
	sb.log.Info("standby promoted",
		"node", sb.cfg.NodeID,
		"addr", sb.cfg.AdvertiseAddr,
		"replayed_records", srv.Fleet().ReplayedRecords(),
		"chips", srv.Fleet().Len(),
		"follower_seq", stats.LastSeq)
	return srv, nil
}

// Promoted returns the promoted server, or nil before promotion.
func (sb *Standby) Promoted() *Server {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.promoted
}

// Close releases whichever half is live: the follower (pre-promotion)
// or the promoted server and its store.
func (sb *Standby) Close() error {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if sb.closed {
		return nil
	}
	sb.closed = true
	if sb.promoted != nil {
		sb.promoted.Close()
		return sb.st.Close()
	}
	return sb.cfg.Follower.Close()
}

// standbyJSON is writeJSON without a *Server: the standby's responses
// are tiny fixed shapes whose encoding cannot fail.
func standbyJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	WriteJSON(w, v)
}
