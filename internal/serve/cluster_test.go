package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"selfheal/internal/cluster"
	"selfheal/internal/fleet"
	"selfheal/internal/journal"
	"selfheal/internal/repl"
	"selfheal/internal/store"
)

// swapHandler lets a httptest server exist before the serve.Server it
// will host: the cluster config needs every peer's URL up front.
type swapHandler struct{ h atomic.Pointer[http.Handler] }

func (sw *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := sw.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	http.Error(w, "not wired", http.StatusServiceUnavailable)
}

// startClusterPair boots two cluster-mode nodes "a" and "b" that know
// each other's real URLs, plus a no-redirect HTTP client to observe
// 307s directly.
func startClusterPair(t *testing.T) (srvs map[string]*Server, urls map[string]string, hc *http.Client) {
	t.Helper()
	swaps := map[string]*swapHandler{"a": {}, "b": {}}
	urls = make(map[string]string, 2)
	for _, id := range []string{"a", "b"} {
		ts := httptest.NewServer(swaps[id])
		t.Cleanup(ts.Close)
		urls[id] = ts.URL
	}
	srvs = make(map[string]*Server, 2)
	for _, id := range []string{"a", "b"} {
		s, err := New(Config{
			Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
			Cluster: &ClusterConfig{NodeID: id, Peers: urls},
		})
		if err != nil {
			t.Fatalf("New(%s): %v", id, err)
		}
		t.Cleanup(s.Close)
		srvs[id] = s
		var h http.Handler = s.Handler()
		swaps[id].h.Store(&h)
	}
	hc = &http.Client{
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
	return srvs, urls, hc
}

// chipOwnedBy finds a chip id the shared ring places on the wanted
// node.
func chipOwnedBy(t *testing.T, nodeID string) string {
	t.Helper()
	ring, err := cluster.New([]cluster.Node{{ID: "a", Addr: "x"}, {ID: "b", Addr: "y"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("chip-%d", i)
		if ring.Owner(id).ID == nodeID {
			return id
		}
	}
	t.Fatalf("no chip id hashed to node %s in 1000 tries", nodeID)
	return ""
}

func TestClusterOwnershipForwarding(t *testing.T) {
	_, urls, hc := startClusterPair(t)
	aChip, bChip := chipOwnedBy(t, "a"), chipOwnedBy(t, "b")

	// Owned create lands; misplaced create 307s to the owner with the
	// wrong_node code and a Location good enough to replay verbatim.
	resp, err := hc.Post(urls["a"]+"/v1/chips", "application/json",
		strings.NewReader(fmt.Sprintf(`{"id":%q,"seed":1}`, aChip)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("owned create on a: status %d", resp.StatusCode)
	}
	resp, err = hc.Post(urls["a"]+"/v1/chips", "application/json",
		strings.NewReader(fmt.Sprintf(`{"id":%q,"seed":1}`, bChip)))
	if err != nil {
		t.Fatal(err)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect || er.Code != CodeWrongNode {
		t.Fatalf("misplaced create on a: status %d code %q", resp.StatusCode, er.Code)
	}
	loc := resp.Header.Get("Location")
	if loc != urls["b"]+"/v1/chips" {
		t.Fatalf("Location = %q, want %q", loc, urls["b"]+"/v1/chips")
	}
	resp, err = hc.Post(loc, "application/json",
		strings.NewReader(fmt.Sprintf(`{"id":%q,"seed":1}`, bChip)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("replayed create on owner: status %d", resp.StatusCode)
	}

	// Chip-scoped routes forward too, preserving path and query.
	resp, err = hc.Get(urls["a"] + "/v1/chips/" + bChip + "/measure")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("misplaced measure: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Location"); got != urls["b"]+"/v1/chips/"+bChip+"/measure" {
		t.Fatalf("measure Location = %q", got)
	}

	// The counters surface on /v1/cluster.
	resp, err = hc.Get(urls["a"] + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var cr ClusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cr.NodeID != "a" || cr.Role != "single" || len(cr.Peers) != 2 || cr.Forwards < 2 {
		t.Fatalf("cluster status: %+v", cr)
	}
}

func TestClusterBatchWrongNodeItems(t *testing.T) {
	_, urls, hc := startClusterPair(t)
	aChip, bChip := chipOwnedBy(t, "a"), chipOwnedBy(t, "b")

	// A mixed batch is never forwarded whole: owned items run, the
	// misplaced item answers per-item with wrong_node and the owner in
	// the message.
	body := fmt.Sprintf(`{"chips":[{"id":%q,"seed":1},{"id":%q,"seed":2}]}`, aChip, bChip)
	resp, err := hc.Post(urls["a"]+"/v1/chips:batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var br BatchCreateResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(br.Results) != 2 {
		t.Fatalf("results: %+v", br.Results)
	}
	if br.Results[0].Error != "" {
		t.Fatalf("owned item failed: %+v", br.Results[0])
	}
	if br.Results[1].Code != CodeWrongNode || !strings.Contains(br.Results[1].Error, "node b") {
		t.Fatalf("misplaced item: %+v", br.Results[1])
	}
	if br.Created != 1 || br.Failed != 1 {
		t.Fatalf("batch counts: created %d failed %d", br.Created, br.Failed)
	}

	// Same split on the mixed-op batch.
	body = fmt.Sprintf(`{"ops":[{"op":"stress","id":%q,"temp_c":80,"vdd":1.0,"hours":1},{"op":"stress","id":%q,"temp_c":80,"vdd":1.0,"hours":1}]}`, aChip, bChip)
	resp, err = hc.Post(urls["a"]+"/v1/ops:batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var or BatchOpsResponse
	if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(or.Results) != 2 || or.Results[0].Error != "" || or.Results[1].Code != CodeWrongNode {
		t.Fatalf("ops results: %+v", or.Results)
	}
}

func TestClusterPeerRepointAndPromoteRefusal(t *testing.T) {
	_, urls, hc := startClusterPair(t)
	bChip := chipOwnedBy(t, "b")

	// Repoint b at a new address: subsequent forwards carry it. The id
	// keeps its ring slots, so ownership is unchanged.
	newAddr := "http://replacement.example:9999"
	resp, err := hc.Post(urls["a"]+"/v1/cluster/peers", "application/json",
		strings.NewReader(fmt.Sprintf(`{"id":"b","addr":%q}`, newAddr)))
	if err != nil {
		t.Fatal(err)
	}
	var pr ClusterPeerResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || pr.ID != "b" {
		t.Fatalf("repoint: status %d body %+v", resp.StatusCode, pr)
	}
	resp, err = hc.Get(urls["a"] + "/v1/chips/" + bChip + "/measure")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Location"); got != newAddr+"/v1/chips/"+bChip+"/measure" {
		t.Fatalf("post-repoint Location = %q", got)
	}

	// Unknown ids are a 404 — repointing must not invent ring members.
	resp, err = hc.Post(urls["a"]+"/v1/cluster/peers", "application/json",
		strings.NewReader(`{"id":"ghost","addr":"http://x"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown peer repoint: status %d", resp.StatusCode)
	}

	// A serving node refuses promotion: only standbys promote.
	resp, err = hc.Post(urls["a"]+"/v1/cluster/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("promote on serving node: status %d", resp.StatusCode)
	}
}

func TestClusterMetricsExposition(t *testing.T) {
	_, urls, hc := startClusterPair(t)
	bChip := chipOwnedBy(t, "b")
	if resp, err := hc.Get(urls["a"] + "/v1/chips/" + bChip + "/measure"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	resp, err := hc.Get(urls["a"] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Cluster == nil || snap.Cluster.NodeID != "a" || snap.Cluster.Peers != 2 || snap.Cluster.Forwards == 0 {
		t.Fatalf("metrics cluster section: %+v", snap.Cluster)
	}

	resp, err = hc.Get(urls["a"] + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		`cluster_peers{node="a"} 2`,
		`cluster_forwards_total{node="a"}`,
		`cluster_wrong_node_rejects_total{node="a"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus exposition missing %q", want)
		}
	}
}

func TestClusterReplStatsRideMetrics(t *testing.T) {
	// A node wired with a ReplStats source surfaces the repl_* series
	// and reports its replication role on /v1/cluster.
	sw := &swapHandler{}
	ts := httptest.NewServer(sw)
	defer ts.Close()
	stats := &repl.Stats{Role: "primary", Mode: "semisync", Followers: 1, Connected: true, LastSeq: 42, AckedSeq: 40, LagRecords: 2}
	s, err := New(Config{
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
		Cluster: &ClusterConfig{
			NodeID:    "a",
			Peers:     map[string]string{"a": ts.URL},
			ReplStats: func() *repl.Stats { return stats },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var h http.Handler = s.Handler()
	sw.h.Store(&h)

	resp, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var cr ClusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cr.Role != "primary" || cr.Repl == nil || cr.Repl.LastSeq != 42 {
		t.Fatalf("cluster status with repl: %+v", cr)
	}

	resp, err = http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		`repl_connected{role="primary"} 1`,
		`repl_last_seq{role="primary"} 42`,
		`repl_lag_records{role="primary"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus exposition missing %q", want)
		}
	}
}

// TestStandbyPromotionServesReplicatedFleet is the failover path end
// to end: a semisync primary serving HTTP traffic, a standby tailing
// its journal, a hard primary death, and a promotion that must come up
// with every acknowledged mutation and take writes immediately.
func TestStandbyPromotionServesReplicatedFleet(t *testing.T) {
	discard := slog.New(slog.NewTextHandler(io.Discard, nil))

	// Primary: journal -> repl primary -> journaled store -> server.
	primDir, sbDir := t.TempDir(), t.TempDir()
	pj, err := journal.Open(primDir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prim := repl.NewPrimary(pj, repl.PrimaryConfig{
		NodeID: "a", Mode: repl.ModeSemiSync, AckTimeout: 5 * time.Second, Logger: discard,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go prim.Serve(ln)
	primStore := store.NewJournaled[*fleet.ChipEntry](store.NewMem[*fleet.ChipEntry](), prim)

	sbSwap := &swapHandler{}
	sbTS := httptest.NewServer(sbSwap)
	defer sbTS.Close()

	primSrv, err := New(Config{
		Logger: discard,
		Store:  primStore,
		Cluster: &ClusterConfig{
			NodeID:    "a",
			Peers:     map[string]string{"a": "http://primary.invalid"},
			ReplStats: prim.ReplStats,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	primTS := httptest.NewServer(primSrv.Handler())

	// Standby: follower tailing the primary into its own journal.
	fj, err := journal.Open(sbDir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fol := repl.NewFollower(fj, repl.FollowerConfig{
		NodeID: "standby", PrimaryAddr: ln.Addr().String(),
		RetryMin: 10 * time.Millisecond, RetryMax: 100 * time.Millisecond, Logger: discard,
	})
	fol.Start()
	sb, err := NewStandby(StandbyConfig{
		NodeID:        "a",
		AdvertiseAddr: sbTS.URL,
		Peers:         map[string]string{"a": "http://primary.invalid"},
		DataDir:       sbDir,
		Follower:      fol,
		Base:          Config{Logger: discard},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	var sbH http.Handler = sb
	sbSwap.h.Store(&sbH)

	// Semisync: the gate opens once the follower attaches.
	deadline := time.Now().Add(10 * time.Second)
	for !prim.ReplStats().Connected {
		if time.Now().After(deadline) {
			t.Fatal("follower never connected")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Acknowledged traffic: creates plus aging mutations.
	for i := 0; i < 8; i++ {
		resp, err := http.Post(primTS.URL+"/v1/chips", "application/json",
			strings.NewReader(fmt.Sprintf(`{"id":"c%d","seed":%d}`, i, i)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create c%d: status %d", i, resp.StatusCode)
		}
	}
	for i := 0; i < 4; i++ {
		resp, err := http.Post(primTS.URL+fmt.Sprintf("/v1/chips/c%d/stress", i), "application/json",
			strings.NewReader(`{"temp_c":80,"vdd":1.0,"hours":10}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stress c%d: status %d", i, resp.StatusCode)
		}
	}
	var before ChipListResponse
	do(t, primTS, "GET", "/v1/chips", "", http.StatusOK, &before)

	// Pre-promotion contract: alive, not ready, role standby.
	resp, err := http.Get(sbTS.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("standby readyz: status %d", resp.StatusCode)
	}
	resp, err = http.Get(sbTS.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var cs ClusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cs.Role != "standby" || cs.Repl == nil || cs.Repl.Role != "follower" {
		t.Fatalf("standby cluster status: %+v", cs)
	}

	// Hard death: every acknowledged mutation above is semisync-acked,
	// so nothing the clients saw succeed may be lost.
	primTS.Close()
	primSrv.Close()
	prim.Close()

	resp, err = http.Post(sbTS.URL+"/v1/cluster/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var promoted StandbyPromoteResponse
	if err := json.NewDecoder(resp.Body).Decode(&promoted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || promoted.NodeID != "a" || promoted.Chips != 8 || promoted.Replayed == 0 {
		t.Fatalf("promote: status %d body %+v", resp.StatusCode, promoted)
	}

	// The promoted node serves the exact acknowledged fleet...
	var after ChipListResponse
	do(t, sbTS, "GET", "/v1/chips", "", http.StatusOK, &after)
	ids := func(l ChipListResponse) []string {
		out := make([]string, len(l.Chips))
		for i, c := range l.Chips {
			out[i] = c.ID
		}
		sort.Strings(out)
		return out
	}
	got, want := ids(after), ids(before)
	if len(got) != len(want) {
		t.Fatalf("promoted fleet: %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("promoted fleet: %v, want %v", got, want)
		}
	}

	// ...is immediately write-ready at its own address...
	resp, err = http.Get(sbTS.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promoted readyz: status %d", resp.StatusCode)
	}
	resp, err = http.Post(sbTS.URL+"/v1/chips", "application/json",
		strings.NewReader(`{"id":"post-failover","seed":99}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-failover create: status %d", resp.StatusCode)
	}

	// ...and advertises itself for node id "a" in its ring view.
	resp, err = http.Get(sbTS.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cs.NodeID != "a" || len(cs.Peers) != 1 || cs.Peers[0].Addr != strings.TrimRight(sbTS.URL, "/") {
		t.Fatalf("promoted cluster status: %+v", cs)
	}

	// A second promotion is refused; the first server keeps serving.
	resp, err = http.Post(sbTS.URL+"/v1/cluster/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double promote: status %d", resp.StatusCode)
	}
}
