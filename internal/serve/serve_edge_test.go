package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"selfheal/internal/faults"
)

// TestWriteJSONBuffersBeforeStatus proves the encode-then-commit order:
// an unencodable body becomes a clean 500, never a 200 with truncated
// JSON.
func TestWriteJSONBuffersBeforeStatus(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	s.writeJSON(rec, http.StatusOK, map[string]float64{"bad": math.NaN()})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var errBody ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &errBody); err != nil || errBody.Error == "" {
		t.Fatalf("encode-failure body is not a JSON error: %q (%v)", rec.Body.String(), err)
	}
}

func TestDeleteChip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do(t, ts, "POST", "/v1/chips", `{"id":"c0","seed":7}`, http.StatusCreated, nil)

	var del DeleteChipResponse
	do(t, ts, "DELETE", "/v1/chips/c0", "", http.StatusOK, &del)
	if del.ID != "c0" || !del.Deleted {
		t.Fatalf("delete response: %+v", del)
	}
	do(t, ts, "GET", "/v1/chips/c0/measure", "", http.StatusNotFound, nil)
	do(t, ts, "DELETE", "/v1/chips/c0", "", http.StatusNotFound, nil)
	var list ChipListResponse
	do(t, ts, "GET", "/v1/chips", "", http.StatusOK, &list)
	if len(list.Chips) != 0 {
		t.Fatalf("fleet after delete: %+v", list.Chips)
	}
	// The id is free for reuse — a fresh die under a recycled name.
	do(t, ts, "POST", "/v1/chips", `{"id":"c0","seed":9}`, http.StatusCreated, nil)
}

func TestRequestIDPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	req, err := http.NewRequest("GET", ts.URL+"/v1/chips/ghost/measure", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "trace-123")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-123" {
		t.Fatalf("echoed request id = %q", got)
	}
	var errBody ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil {
		t.Fatal(err)
	}
	if errBody.RequestID != "trace-123" {
		t.Fatalf("error body request_id = %q, want trace-123", errBody.RequestID)
	}

	// Without a client-supplied id the service mints one.
	resp2, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("X-Request-ID") == "" {
		t.Fatal("no generated request id on response")
	}
}

// TestLoadShedding fills the concurrency semaphore directly, so the
// shed path triggers deterministically.
func TestLoadShedding(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 2, RetryAfter: 3 * time.Second})
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	defer func() { <-s.sem; <-s.sem }()

	resp, err := ts.Client().Get(ts.URL + "/v1/chips")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
	var errBody ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil || errBody.Error == "" {
		t.Fatalf("shed response is not a JSON error: %v", err)
	}

	// /metrics and /healthz stay reachable while the fleet is saturated.
	var snap MetricsSnapshot
	do(t, ts, "GET", "/metrics", "", http.StatusOK, &snap)
	if snap.RequestsShed < 1 {
		t.Fatalf("requests_shed = %d, want ≥ 1", snap.RequestsShed)
	}
	do(t, ts, "GET", "/healthz", "", http.StatusOK, nil)
}

func TestPanicRecovery(t *testing.T) {
	inj, err := faults.New(faults.Config{Seed: 1, PanicP: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Faults: inj})

	var errBody ErrorResponse
	do(t, ts, "GET", "/v1/chips", "", http.StatusInternalServerError, &errBody)
	if errBody.Error == "" {
		t.Fatal("panic produced no JSON error body")
	}

	// The server survives: with injection off the same route works.
	inj.SetEnabled(false)
	do(t, ts, "GET", "/v1/chips", "", http.StatusOK, nil)
	var snap MetricsSnapshot
	do(t, ts, "GET", "/metrics", "", http.StatusOK, &snap)
	if snap.PanicsRecovered < 1 {
		t.Fatalf("panics_recovered = %d, want ≥ 1", snap.PanicsRecovered)
	}
}

// TestRouteTimeout injects multi-second latency under a 25 ms route
// budget and expects the buffered-writer timeout path: a JSON 503 now,
// the handler's late output discarded.
func TestRouteTimeout(t *testing.T) {
	inj, err := faults.New(faults.Config{Seed: 7, LatencyP: 1, Latency: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Faults: inj, OpTimeout: 25 * time.Millisecond})

	start := time.Now()
	var errBody ErrorResponse
	do(t, ts, "GET", "/v1/chips", "", http.StatusServiceUnavailable, &errBody)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v; the route budget was 25ms", elapsed)
	}
	if !strings.Contains(errBody.Error, "route budget") {
		t.Fatalf("timeout error = %q", errBody.Error)
	}
	inj.SetEnabled(false)
	var snap MetricsSnapshot
	do(t, ts, "GET", "/metrics", "", http.StatusOK, &snap)
	if snap.RequestTimeouts < 1 {
		t.Fatalf("request_timeouts = %d, want ≥ 1", snap.RequestTimeouts)
	}
	if snap.Faults == nil || snap.Faults.Latencies < 1 {
		t.Fatalf("faults counters missing from metrics: %+v", snap.Faults)
	}
}

// TestLatePanicAfterTimeoutCounted exercises withTimeout's drain path:
// a handler that panics after the deadline has already produced the 503
// must still be counted and logged, not silently discarded.
func TestLatePanicAfterTimeoutCounted(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.withTimeout(20*time.Millisecond, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
		time.Sleep(50 * time.Millisecond) // ensure the 503 path wins the select
		panic("late panic after deadline")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/chips", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.panics.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("late panic was never recorded")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
