package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"selfheal/internal/faults"
	"selfheal/internal/fleet"
)

// decodeJSON strictly decodes a request body: unknown fields and
// trailing garbage are errors, so client typos surface as 400s instead
// of silently-defaulted parameters.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: bad request body: %w", err)
	}
	if dec.More() {
		return errors.New("serve: bad request body: trailing data after JSON value")
	}
	return nil
}

// writeJSON writes a response body with the shared encoder. The body
// is encoded into a buffer *before* the status line is committed, so
// an encoding failure becomes a clean 500 instead of a 200 with a
// truncated body.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, v); err != nil {
		s.log.Error("encode response", "err", err)
		buf.Reset()
		status = http.StatusInternalServerError
		// ErrorResponse is two plain strings; encoding it cannot fail.
		WriteJSON(&buf, ErrorResponse{Error: "serve: response encoding failed"})
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
}

// writeError classifies an error into a status code: missing chips are
// 404, duplicate ids and kind mismatches 409, an oversized body 413, a
// cancelled or timed-out request 503, injected faults 500, everything
// else a validation 400. A store commit failure is the storage wearing
// out, not a bug: it answers 503 with the `degraded` code and a
// Retry-After, and trips the degraded-mode supervisor so subsequent
// writes are rejected at the gate while the recovery probe works. The
// response carries the request ID so failures are correlatable in the
// logs.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusBadRequest
	code := ""
	var dup fleet.DuplicateError
	var missing fleet.NotFoundError
	var notDurable fleet.NotDurableError
	var quarantined fleet.QuarantinedError
	var tooBig *http.MaxBytesError
	if st, ok := engineErrorStatus(err); ok {
		s.writeJSON(w, st, ErrorResponse{
			Error:     err.Error(),
			RequestID: RequestIDFrom(r.Context()),
		})
		return
	}
	switch {
	case errors.As(err, &missing):
		status = http.StatusNotFound
	case errors.As(err, &dup), errors.Is(err, fleet.ErrKindMismatch):
		status = http.StatusConflict
	case errors.As(err, &tooBig):
		status = http.StatusRequestEntityTooLarge
	case errors.As(err, &quarantined):
		// The chip is healing under guard quarantine. Unlike a
		// durability failure this is per-chip, not service-wide, so the
		// write gate is left alone: other chips keep taking writes.
		status = http.StatusServiceUnavailable
		code = CodeQuarantined
		w.Header().Set("Retry-After", s.retryAfterSecs())
	case errors.As(err, &notDurable):
		// Checked before ErrInjected: an injected *journal* fault is
		// still a real durability failure from the fleet's view.
		status = http.StatusServiceUnavailable
		code = CodeDegraded
		w.Header().Set("Retry-After", s.retryAfterSecs())
		s.gate.trip(r.Context(), err)
	case errors.Is(err, faults.ErrInjected):
		status = http.StatusInternalServerError
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, ErrorResponse{
		Error:     err.Error(),
		Code:      code,
		RequestID: RequestIDFrom(r.Context()),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports write-readiness. Liveness stays on /healthz —
// a degraded fleet is alive (reads work, recovery is in progress), it
// is just not ready to take writes, which is exactly the distinction a
// load balancer needs.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if degraded, reason := s.gate.status(); degraded {
		w.Header().Set("Retry-After", s.retryAfterSecs())
		s.writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{
			Status: "degraded", WriteReady: false, Reason: reason,
		})
		return
	}
	s.writeJSON(w, http.StatusOK, ReadyResponse{Status: "ok", WriteReady: true})
}

func (s *Server) handleCreateChip(w http.ResponseWriter, r *http.Request) {
	var req CreateChipRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	// The create path carries its chip id in the body, so ownership is
	// enforced here instead of in withOwnership.
	if s.checkOwnedCreate(w, r, req.ID) {
		return
	}
	resp, err := s.fleet.Create(r.Context(), req)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.engineObserveCreates(r, resp.ID)
	s.writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleListChips(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, ChipListResponse{Chips: s.fleet.List()})
}

func (s *Server) handleDeleteChip(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	existed, err := s.fleet.Delete(r.Context(), id)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if !existed {
		s.writeError(w, r, fleet.NotFoundError{ID: id})
		return
	}
	s.engineObserveDelete(r, id)
	s.writeJSON(w, http.StatusOK, DeleteChipResponse{ID: id, Deleted: true})
}

func (s *Server) handleStress(w http.ResponseWriter, r *http.Request) {
	var req PhaseRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	resp, err := s.fleet.Stress(r.Context(), r.PathValue("id"), req)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRejuvenate(w http.ResponseWriter, r *http.Request) {
	var req PhaseRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	resp, err := s.fleet.Rejuvenate(r.Context(), r.PathValue("id"), req)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	resp, err := s.fleet.Measure(r.Context(), r.PathValue("id"))
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleOdometer(w http.ResponseWriter, r *http.Request) {
	resp, err := s.fleet.Odometer(r.Context(), r.PathValue("id"))
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// checkBatchSize validates a batch's item count before any item runs.
func checkBatchSize(n int) error {
	if n == 0 {
		return errors.New("serve: batch must contain at least one item")
	}
	if n > MaxBatchItems {
		return fmt.Errorf("serve: batch of %d items exceeds the limit of %d — split it", n, MaxBatchItems)
	}
	return nil
}

// tripOnBatchFailures scans a batch's per-item errors for durability
// failures and trips the degraded-mode supervisor on the first one, so
// a batch that wore out the storage suspends subsequent writes exactly
// like a single failed request would.
func (s *Server) tripOnBatchFailures(w http.ResponseWriter, r *http.Request, errs []error) {
	for _, err := range errs {
		var notDurable fleet.NotDurableError
		if errors.As(err, &notDurable) {
			w.Header().Set("Retry-After", s.retryAfterSecs())
			s.gate.trip(r.Context(), err)
			return
		}
	}
}

// handleBatchCreate is POST /v1/chips:batch: bulk fabrication on the
// fleet's worker pool. The response is 200 even when items failed —
// per-item status lives in the results, and callers must check Failed.
func (s *Server) handleBatchCreate(w http.ResponseWriter, r *http.Request) {
	var req BatchCreateRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	if err := checkBatchSize(len(req.Chips)); err != nil {
		s.writeError(w, r, err)
		return
	}
	// In cluster mode, items for chips other nodes own are refused per
	// item (a batch can span owners, so it is never forwarded whole);
	// the cluster client partitions by owner before sending.
	results := make([]BatchCreateResult, len(req.Chips))
	owned := make([]CreateChipRequest, 0, len(req.Chips))
	idx := make([]int, 0, len(req.Chips))
	for i, sp := range req.Chips {
		if !s.ownsChip(sp.ID) {
			msg, code := s.wrongNodeItem(sp.ID)
			results[i] = BatchCreateResult{ID: sp.ID, Error: msg, Code: code}
			continue
		}
		owned = append(owned, sp)
		idx = append(idx, i)
	}
	for k, res := range s.fleet.CreateBatch(r.Context(), owned) {
		results[idx[k]] = res
	}
	resp := BatchCreateResponse{Results: results}
	errs := make([]error, 0, len(results))
	created := make([]string, 0, len(results))
	for _, res := range results {
		if res.Err != nil || res.Error != "" {
			resp.Failed++
			if res.Err != nil {
				errs = append(errs, res.Err)
			}
		} else {
			resp.Created++
			created = append(created, res.ID)
		}
	}
	s.engineObserveCreates(r, created...)
	s.tripOnBatchFailures(w, r, errs)
	s.writeJSON(w, http.StatusOK, resp)
}

// handleBatchOps is POST /v1/ops:batch: a mixed stress / rejuvenate /
// measure / odometer batch across many chips, executed concurrently
// where the targets differ. Response semantics match handleBatchCreate.
func (s *Server) handleBatchOps(w http.ResponseWriter, r *http.Request) {
	var req BatchOpsRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	if err := checkBatchSize(len(req.Ops)); err != nil {
		s.writeError(w, r, err)
		return
	}
	// Placement enforcement mirrors handleBatchCreate.
	results := make([]BatchOpResult, len(req.Ops))
	owned := make([]BatchOpSpec, 0, len(req.Ops))
	idx := make([]int, 0, len(req.Ops))
	for i, op := range req.Ops {
		if !s.ownsChip(op.ID) {
			msg, code := s.wrongNodeItem(op.ID)
			results[i] = BatchOpResult{Op: op.Op, ID: op.ID, Error: msg, Code: code}
			continue
		}
		owned = append(owned, op)
		idx = append(idx, i)
	}
	for k, res := range s.fleet.ApplyBatch(r.Context(), owned) {
		results[idx[k]] = res
	}
	resp := BatchOpsResponse{Results: results}
	errs := make([]error, 0, len(results))
	for _, res := range results {
		if res.Err != nil || res.Error != "" {
			resp.Failed++
			if res.Err != nil {
				errs = append(errs, res.Err)
			}
		} else {
			resp.Succeeded++
		}
	}
	s.tripOnBatchFailures(w, r, errs)
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePredictShift(w http.ResponseWriter, r *http.Request) {
	var req ShiftRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	resp, err := s.engine.Shift(r.Context(), req)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePredictSchedules(w http.ResponseWriter, r *http.Request) {
	var req SchedulesRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	resp, err := s.engine.Schedules(r.Context(), req)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePredictMulticore(w http.ResponseWriter, r *http.Request) {
	var req MulticoreRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	resp, err := s.engine.Multicore(r.Context(), req)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}
