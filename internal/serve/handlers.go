package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// decodeJSON strictly decodes a request body: unknown fields and
// trailing garbage are errors, so client typos surface as 400s instead
// of silently-defaulted parameters.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: bad request body: %w", err)
	}
	if dec.More() {
		return errors.New("serve: bad request body: trailing data after JSON value")
	}
	return nil
}

// writeJSON writes a response body with the shared encoder.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	if err := WriteJSON(w, v); err != nil {
		s.log.Error("encode response", "err", err)
	}
}

// writeError classifies an error into a status code: duplicate ids and
// kind mismatches are 409, an aborted simulation is 503, an oversized
// body is 413, everything else a validation 400.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var dup errDuplicateChip
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &dup), errors.Is(err, errKindMismatch):
		status = http.StatusConflict
	case errors.As(err, &tooBig):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.metrics.Snapshot(s.engine, s.registry))
}

func (s *Server) handleCreateChip(w http.ResponseWriter, r *http.Request) {
	var req CreateChipRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	entry, err := s.registry.Create(req.ID, req.Seed, req.Kind)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, entry.Info())
}

func (s *Server) handleListChips(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, ChipListResponse{Chips: s.registry.List()})
}

// chip resolves the {id} path segment or writes a 404.
func (s *Server) chip(w http.ResponseWriter, r *http.Request) (*ChipEntry, bool) {
	id := r.PathValue("id")
	entry, ok := s.registry.Get(id)
	if !ok {
		s.writeJSON(w, http.StatusNotFound, ErrorResponse{
			Error: fmt.Sprintf("serve: no chip %q in the registry", id)})
	}
	return entry, ok
}

func (s *Server) handleStress(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.chip(w, r)
	if !ok {
		return
	}
	var req PhaseRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	resp, err := entry.Stress(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRejuvenate(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.chip(w, r)
	if !ok {
		return
	}
	var req PhaseRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	resp, err := entry.Rejuvenate(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.chip(w, r)
	if !ok {
		return
	}
	resp, err := entry.Measure()
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleOdometer(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.chip(w, r)
	if !ok {
		return
	}
	resp, err := entry.Odometer()
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePredictShift(w http.ResponseWriter, r *http.Request) {
	var req ShiftRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	resp, err := s.engine.Shift(r.Context(), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePredictSchedules(w http.ResponseWriter, r *http.Request) {
	var req SchedulesRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	resp, err := s.engine.Schedules(r.Context(), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePredictMulticore(w http.ResponseWriter, r *http.Request) {
	var req MulticoreRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	resp, err := s.engine.Multicore(r.Context(), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}
