package serve

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"selfheal/internal/faults"
	"selfheal/internal/fleet"
	"selfheal/internal/guard"
	"selfheal/internal/store"
)

func TestGuardRoutesDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var status GuardStatusResponse
	do(t, ts, "GET", "/v1/guard", "", http.StatusOK, &status)
	if status.Enabled || status.Status != nil {
		t.Fatalf("disabled guard status = %+v", status)
	}
	var er ErrorResponse
	do(t, ts, "GET", "/v1/guard/alerts", "", http.StatusNotFound, &er)
	if !strings.Contains(er.Error, "-guard") {
		t.Fatalf("disabled-guard error %q should point at the -guard flag", er.Error)
	}
	do(t, ts, "POST", "/v1/guard/config", `{"spec":"sigma=3"}`, http.StatusNotFound, nil)

	// The guard watches engine snapshots; without an engine there is
	// nothing to watch.
	if _, err := New(Config{GuardEnabled: true}); err == nil {
		t.Fatal("guard without engine accepted")
	}
	// A bad spec fails construction, not first use.
	if _, err := New(Config{EngineEnabled: true, EngineEpoch: -1, GuardEnabled: true, GuardSpec: "sigma=-2"}); err == nil {
		t.Fatal("bad guard spec accepted")
	}
}

func TestGuardConfigRoute(t *testing.T) {
	s, ts := engineTestServer(t, Config{GuardEnabled: true})
	var status GuardStatusResponse
	do(t, ts, "GET", "/v1/guard", "", http.StatusOK, &status)
	if !status.Enabled || status.Status == nil || status.Status.Spec != "" {
		t.Fatalf("stock guard status = %+v", status)
	}
	do(t, ts, "POST", "/v1/guard/config", `{"spec":"sigma=6,streak=3"}`, http.StatusOK, &status)
	if status.Status.Config.SigmaK != 6 || status.Status.Config.Streak != 3 {
		t.Fatalf("reconfigured = %+v", status.Status.Config)
	}
	do(t, ts, "POST", "/v1/guard/config", `{"spec":"streak=0"}`, http.StatusBadRequest, nil)
	do(t, ts, "GET", "/v1/guard/alerts?limit=bogus", "", http.StatusBadRequest, nil)
	var alerts GuardAlertsResponse
	do(t, ts, "GET", "/v1/guard/alerts?limit=5", "", http.StatusOK, &alerts)
	if alerts.Alerts == nil {
		t.Fatal("alerts list should encode as [], not null")
	}
	if s.GuardService() == nil {
		t.Fatal("GuardService() nil on a guard-enabled server")
	}
}

// TestGuardEndToEnd is the full arena over the HTTP surface with a
// durable store: a seeded adversary attacks fleet chips, the guard
// convicts and quarantines the victim (mutations 503 with the
// "quarantined" code and a Retry-After while reads keep serving, in
// the fleet API and the engine API both), the Prometheus exposition
// carries the guard series — then the process is hard-killed
// mid-quarantine and a fresh server must replay the quarantine
// exactly, lose no acknowledged operation, re-adopt the victim and
// still release it.
func TestGuardEndToEnd(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	adv, err := faults.NewAdversary(faults.AdversaryConfig{Seed: 9, Victims: 1, Start: 4, DenyP: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := store.Open[*fleet.ChipEntry](dir, store.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{
		Store: st, EngineEnabled: true, EngineEpoch: -1,
		GuardEnabled: true, Adversary: adv,
	})

	var created BatchCreateResponse
	chips := make([]string, 8)
	items := make([]string, 8)
	for i := range chips {
		chips[i] = fmt.Sprintf("c%02d", i)
		items[i] = fmt.Sprintf(`{"id":%q,"seed":%d,"kind":"monitored"}`, chips[i], i+1)
	}
	do(t, ts, "POST", "/v1/chips:batch", `{"chips":[`+strings.Join(items, ",")+`]}`,
		http.StatusOK, &created)
	if created.Created != 8 {
		t.Fatalf("batch create: %+v", created)
	}

	// Tick until the adversary's victim is convicted and quarantined.
	var victim string
	for i := 0; i < 40 && victim == ""; i++ {
		s.AgingEngine().Tick(ctx)
		if ids := s.Fleet().QuarantinedIDs(); len(ids) > 0 {
			victim = ids[0]
		}
	}
	if victim == "" {
		t.Fatalf("no quarantine after 40 epochs; guard %+v", s.GuardService().StatusSnapshot())
	}

	// Mutations on the quarantined chip refuse 503/"quarantined" with a
	// Retry-After hint; reads keep serving. Same contract on the engine
	// surface, where the adversary's own moves would land.
	resp, body := doRaw(t, ts, "POST", "/v1/chips/"+victim+"/stress",
		`{"temp_c":85,"vdd":1.2,"hours":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stress on quarantined chip: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"code": "quarantined"`) {
		t.Fatalf("quarantined 503 body: %s", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quarantined 503 missing Retry-After")
	}
	do(t, ts, "GET", "/v1/chips", "", http.StatusOK, nil)
	do(t, ts, "GET", "/v1/engine/chips/"+victim, "", http.StatusOK, nil)
	resp, body = doRaw(t, ts, "POST", "/v1/engine/chips/"+victim+"/condition",
		`{"temp_c":110,"vdd":1.32,"duty":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "quarantined") {
		t.Fatalf("engine condition on quarantined chip: %d %s", resp.StatusCode, body)
	}
	resp, body = doRaw(t, ts, "POST", "/v1/engine/chips/"+victim+"/schedule",
		`{"stress_epochs":0,"sleep_epochs":0}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("engine schedule on quarantined chip: %d %s", resp.StatusCode, body)
	}

	// The guard's status and alert feed carry the episode.
	var status GuardStatusResponse
	do(t, ts, "GET", "/v1/guard", "", http.StatusOK, &status)
	if len(status.Status.Quarantined) != 1 || status.Status.Quarantined[0].Chip != victim {
		t.Fatalf("guard roster = %+v", status.Status.Quarantined)
	}
	if status.Status.Adversary == nil || len(status.Status.Adversary.Victims) != 1 {
		t.Fatalf("guard adversary view = %+v", status.Status.Adversary)
	}
	var alerts GuardAlertsResponse
	do(t, ts, "GET", "/v1/guard/alerts", "", http.StatusOK, &alerts)
	seen := map[guard.AlertKind]bool{}
	for _, a := range alerts.Alerts {
		seen[a.Kind] = true
	}
	for _, k := range []guard.AlertKind{guard.AlertOutlier, guard.AlertQuarantined, guard.AlertRemapped, guard.AlertRejuvenating} {
		if !seen[k] {
			t.Fatalf("missing %s alert; got %v", k, seen)
		}
	}

	// The Prometheus exposition carries the guard series.
	resp, body = doRaw(t, ts, "GET", "/metrics?format=prometheus", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	for _, name := range []string{
		"guard_alerts_total", "guard_quarantined_chips 1", "guard_remaps_total",
		"guard_rejuvenation_epochs_total", "guard_spare_free_cells",
		`guard_chip_quarantined{chip="` + victim + `"} 1`,
	} {
		if !strings.Contains(string(body), name) {
			t.Fatalf("prometheus body missing %q", name)
		}
	}

	// Hard kill mid-quarantine: close the transport and the store with
	// the victim still held. Nothing is released first.
	preKill := s.Fleet().QuarantinedIDs()
	preLen := s.Fleet().Len()
	ts.Close()
	s.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay: the quarantine set is restored exactly, no acked create
	// is lost, and the fresh guard re-adopts the victim.
	st2, _, err := store.Open[*fleet.ChipEntry](dir, store.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2, ts2 := newTestServer(t, Config{
		Store: st2, EngineEnabled: true, EngineEpoch: -1, GuardEnabled: true,
	})
	defer ts2.Close()
	if got := s2.Fleet().QuarantinedIDs(); len(got) != 1 || got[0] != preKill[0] {
		t.Fatalf("replayed quarantine = %v, want %v", got, preKill)
	}
	if s2.Fleet().Len() != preLen {
		t.Fatalf("replayed fleet size %d, want %d", s2.Fleet().Len(), preLen)
	}
	resp, body = doRaw(t, ts2, "POST", "/v1/chips/"+victim+"/stress",
		`{"temp_c":85,"vdd":1.2,"hours":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "quarantined") {
		t.Fatalf("replayed quarantine refusal: %d %s", resp.StatusCode, body)
	}

	// The adopted victim heals and is released — a restart never
	// strands a chip in quarantine.
	released := false
	for i := 0; i < 40 && !released; i++ {
		s2.AgingEngine().Tick(ctx)
		released = len(s2.Fleet().QuarantinedIDs()) == 0
	}
	if !released {
		t.Fatalf("victim stranded after restart; guard %+v", s2.GuardService().StatusSnapshot())
	}
	do(t, ts2, "POST", "/v1/chips/"+victim+"/stress",
		`{"temp_c":85,"vdd":1.2,"hours":1}`, http.StatusOK, nil)
}
