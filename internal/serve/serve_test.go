package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// do issues a request and decodes the JSON response into out (skipped
// when out is nil), failing the test unless the status matches.
func do(t *testing.T, ts *httptest.Server, method, path, body string, wantStatus int, out any) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d; body: %s", method, path, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, path, raw, err)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var body map[string]string
	do(t, ts, "GET", "/healthz", "", http.StatusOK, &body)
	if body["status"] != "ok" {
		t.Fatalf("healthz body = %v", body)
	}
}

func TestChipLifecycleRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var chip ChipResponse
	do(t, ts, "POST", "/v1/chips", `{"id":"c0","seed":7}`, http.StatusCreated, &chip)
	if chip.ID != "c0" || chip.Kind != KindBench || chip.FreshDelayNS <= 0 {
		t.Fatalf("create response: %+v", chip)
	}

	var fresh ReadingResponse
	do(t, ts, "GET", "/v1/chips/c0/measure", "", http.StatusOK, &fresh)

	var phase PhaseResponse
	do(t, ts, "POST", "/v1/chips/c0/stress",
		`{"temp_c":110,"vdd":1.2,"hours":24,"sample_hours":12}`, http.StatusOK, &phase)
	if phase.Phase != "stress" || len(phase.Trace) == 0 {
		t.Fatalf("stress response: %+v", phase)
	}

	var stressed ReadingResponse
	do(t, ts, "GET", "/v1/chips/c0/measure", "", http.StatusOK, &stressed)
	if stressed.DegradationPct <= fresh.DegradationPct {
		t.Fatalf("stress did not age the chip: fresh %.4f%%, stressed %.4f%%",
			fresh.DegradationPct, stressed.DegradationPct)
	}

	do(t, ts, "POST", "/v1/chips/c0/rejuvenate",
		`{"temp_c":110,"vdd":-0.3,"hours":6}`, http.StatusOK, &phase)
	var healed ReadingResponse
	do(t, ts, "GET", "/v1/chips/c0/measure", "", http.StatusOK, &healed)
	if healed.DegradationPct >= stressed.DegradationPct {
		t.Fatalf("rejuvenation did not heal the chip: stressed %.4f%%, healed %.4f%%",
			stressed.DegradationPct, healed.DegradationPct)
	}

	var list ChipListResponse
	do(t, ts, "GET", "/v1/chips", "", http.StatusOK, &list)
	if len(list.Chips) != 1 || list.Chips[0].ID != "c0" {
		t.Fatalf("list response: %+v", list)
	}
}

func TestMonitoredChipOdometer(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do(t, ts, "POST", "/v1/chips", `{"id":"m0","seed":3,"kind":"monitored"}`, http.StatusCreated, nil)
	do(t, ts, "POST", "/v1/chips/m0/stress", `{"temp_c":110,"vdd":1.2,"hours":48}`, http.StatusOK, nil)
	var odo OdometerResponse
	do(t, ts, "GET", "/v1/chips/m0/odometer", "", http.StatusOK, &odo)
	if odo.DegradationPPM <= 0 {
		t.Fatalf("stressed odometer read %.2f ppm, want > 0", odo.DegradationPPM)
	}
	// Sensor/kind mismatches are conflicts, not validation failures.
	do(t, ts, "GET", "/v1/chips/m0/measure", "", http.StatusConflict, nil)
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do(t, ts, "POST", "/v1/chips", `{"id":"c0","seed":1}`, http.StatusCreated, nil)

	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"malformed json", "POST", "/v1/chips", `{"id":`, http.StatusBadRequest},
		{"unknown field", "POST", "/v1/chips", `{"id":"x","sede":1}`, http.StatusBadRequest},
		{"empty id", "POST", "/v1/chips", `{"id":""}`, http.StatusBadRequest},
		{"bad kind", "POST", "/v1/chips", `{"id":"x","kind":"quantum"}`, http.StatusBadRequest},
		{"duplicate id", "POST", "/v1/chips", `{"id":"c0"}`, http.StatusConflict},
		{"unknown chip stress", "POST", "/v1/chips/ghost/stress", `{"temp_c":85,"vdd":1.2,"hours":1}`, http.StatusNotFound},
		{"unknown chip measure", "GET", "/v1/chips/ghost/measure", "", http.StatusNotFound},
		{"negative hours", "POST", "/v1/chips/c0/stress", `{"temp_c":85,"vdd":1.2,"hours":-4}`, http.StatusBadRequest},
		{"zero rail stress", "POST", "/v1/chips/c0/stress", `{"temp_c":85,"vdd":0,"hours":1}`, http.StatusBadRequest},
		{"positive sleep rail", "POST", "/v1/chips/c0/rejuvenate", `{"temp_c":110,"vdd":1.2,"hours":1}`, http.StatusBadRequest},
		{"shift negative hours", "POST", "/v1/predict/shift", `{"temp_c":110,"vdd":1.2,"duty":1,"stress_hours":-1}`, http.StatusBadRequest},
		{"shift bad duty", "POST", "/v1/predict/shift", `{"temp_c":110,"vdd":1.2,"duty":2,"stress_hours":1}`, http.StatusBadRequest},
		{"schedules no policies", "POST", "/v1/predict/schedules", `{"seed":1,"horizon_days":1,"policies":[]}`, http.StatusBadRequest},
		{"schedules zero alpha", "POST", "/v1/predict/schedules",
			`{"seed":1,"horizon_days":1,"policies":[{"kind":"proactive","alpha":0,"sleep_hours":6,"sleep_temp_c":110,"sleep_vdd":-0.3}]}`,
			http.StatusBadRequest},
		{"schedules unknown kind", "POST", "/v1/predict/schedules",
			`{"seed":1,"horizon_days":1,"policies":[{"kind":"psychic"}]}`, http.StatusBadRequest},
		{"multicore bad scheduler", "POST", "/v1/predict/multicore", `{"scheduler":"chaotic","demand":2,"days":1}`, http.StatusBadRequest},
		{"multicore negative days", "POST", "/v1/predict/multicore", `{"scheduler":"circadian","demand":2,"days":-1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var errBody ErrorResponse
			do(t, ts, tc.method, tc.path, tc.body, tc.want, &errBody)
			if errBody.Error == "" {
				t.Fatal("error response carries no message")
			}
		})
	}
}

func TestPredictShiftAndRecovery(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"temp_c":110,"vdd":1.2,"duty":1,"stress_hours":100,"sleep_temp_c":110,"sleep_vdd":-0.3,"sleep_hours":25}`
	var first ShiftResponse
	do(t, ts, "POST", "/v1/predict/shift", body, http.StatusOK, &first)
	if first.ShiftV <= 0 {
		t.Fatalf("shift = %v, want > 0", first.ShiftV)
	}
	if first.RecoveredFraction == nil || *first.RecoveredFraction <= 0 || *first.RecoveredFraction > 1 {
		t.Fatalf("recovered fraction = %v, want in (0,1]", first.RecoveredFraction)
	}
	if first.Cached {
		t.Fatal("first request reported cached")
	}
	var second ShiftResponse
	do(t, ts, "POST", "/v1/predict/shift", body, http.StatusOK, &second)
	if !second.Cached {
		t.Fatal("identical second request missed the cache")
	}
	if second.ShiftV != first.ShiftV {
		t.Fatalf("cache broke determinism: %v vs %v", second.ShiftV, first.ShiftV)
	}
}

func TestPredictSchedulesTraceTrimming(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := `"seed":5,"horizon_days":1,"policies":[{"kind":"none"},{"kind":"proactive","alpha":4,"sleep_hours":6,"sleep_temp_c":110,"sleep_vdd":-0.3}]`
	var plain SchedulesResponse
	do(t, ts, "POST", "/v1/predict/schedules", "{"+base+"}", http.StatusOK, &plain)
	if len(plain.Outcomes) != 2 || plain.Cached {
		t.Fatalf("first schedules response: %+v", plain)
	}
	if len(plain.Outcomes[0].Trace) != 0 {
		t.Fatal("trace included without include_trace")
	}
	// Same parameters with include_trace must hit the same cache entry
	// and still carry the trace.
	var traced SchedulesResponse
	do(t, ts, "POST", "/v1/predict/schedules", "{"+base+`,"include_trace":true}`, http.StatusOK, &traced)
	if !traced.Cached {
		t.Fatal("include_trace variant missed the cache")
	}
	if len(traced.Outcomes[0].Trace) == 0 {
		t.Fatal("cached outcome lost its trace")
	}
	if traced.Outcomes[1].PeakPct != plain.Outcomes[1].PeakPct {
		t.Fatal("cache broke determinism across trace variants")
	}
}

func TestPredictMulticoreCacheDeterminism(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"scheduler":"circadian","demand":2,"days":0.5}`
	var first, second MulticoreResponse
	do(t, ts, "POST", "/v1/predict/multicore", body, http.StatusOK, &first)
	do(t, ts, "POST", "/v1/predict/multicore", body, http.StatusOK, &second)
	if first.Cached || !second.Cached {
		t.Fatalf("cached flags = %v, %v; want false, true", first.Cached, second.Cached)
	}
	first.Cached, second.Cached = false, false
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if !bytes.Equal(a, b) {
		t.Fatalf("cached result differs from computed:\n%s\n%s", a, b)
	}

	var snap MetricsSnapshot
	do(t, ts, "GET", "/metrics", "", http.StatusOK, &snap)
	if snap.Cache.Hits < 1 {
		t.Fatalf("metrics cache hits = %d, want ≥ 1", snap.Cache.Hits)
	}
	if snap.Cache.Entries < 1 {
		t.Fatalf("metrics cache entries = %d, want ≥ 1", snap.Cache.Entries)
	}
	route := snap.Requests["POST /v1/predict/multicore"]
	if route.Count != 2 || route.ByStatus["200"] != 2 {
		t.Fatalf("multicore route stats: %+v", route)
	}
}

func TestMulticoreCancellation(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Engine().Multicore(ctx, MulticoreRequest{Scheduler: "circadian", Demand: 2, Days: 365})
	if err == nil || !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("cancelled run: err = %v, want slot-abort error", err)
	}
}

func TestRequestSizeLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	big := fmt.Sprintf(`{"id":"c0","seed":1,"kind":"%s"}`, strings.Repeat("x", 256))
	do(t, ts, "POST", "/v1/chips", big, http.StatusRequestEntityTooLarge, nil)
}

// TestConcurrentChips hammers two chips from 8 goroutines; run under
// -race it proves the per-chip locking discipline: operations on one
// chip serialize while the two chips progress in parallel.
func TestConcurrentChips(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do(t, ts, "POST", "/v1/chips", `{"id":"a","seed":1}`, http.StatusCreated, nil)
	do(t, ts, "POST", "/v1/chips", `{"id":"b","seed":2,"kind":"monitored"}`, http.StatusCreated, nil)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := "a"
			sensor := "/measure"
			if g%2 == 1 {
				id, sensor = "b", "/odometer"
			}
			for i := 0; i < 3; i++ {
				for _, step := range []struct{ path, body string }{
					{"/stress", `{"temp_c":110,"vdd":1.2,"hours":2}`},
					{"/rejuvenate", `{"temp_c":110,"vdd":-0.3,"hours":1}`},
					{sensor, ""},
				} {
					method, body := "POST", step.body
					if step.body == "" {
						method = "GET"
					}
					req, err := http.NewRequest(method, ts.URL+"/v1/chips/"+id+step.path, strings.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					resp, err := ts.Client().Do(req)
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("goroutine %d: %s %s: status %d", g, method, step.path, resp.StatusCode)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var snap MetricsSnapshot
	do(t, ts, "GET", "/metrics", "", http.StatusOK, &snap)
	for _, id := range []string{"a", "b"} {
		usage := snap.Chips[id]
		if usage.StressSeconds <= 0 || usage.HealSeconds <= 0 {
			t.Errorf("chip %s usage not accounted: %+v", id, usage)
		}
	}
}
