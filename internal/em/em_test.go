package em

import (
	"math"
	"testing"
	"testing/quick"

	"selfheal/internal/units"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mods := []func(*Params){
		func(p *Params) { p.MTTFRefHours = 0 },
		func(p *Params) { p.NExp = 0 },
		func(p *Params) { p.EaEV = 0 },
		func(p *Params) { p.JRefMAcm2 = 0 },
		func(p *Params) { p.TRef = 0 },
		func(p *Params) { p.DeltaRFracAtFail = 0 },
	}
	for i, mod := range mods {
		p := DefaultParams()
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestMTTFAtReference(t *testing.T) {
	p := DefaultParams()
	got := MTTF(p, p.JRefMAcm2, p.TRef)
	if math.Abs(got-p.MTTFRefHours)/p.MTTFRefHours > 1e-12 {
		t.Errorf("MTTF at reference = %v, want %v", got, p.MTTFRefHours)
	}
}

func TestMTTFCurrentDensityExponent(t *testing.T) {
	p := DefaultParams()
	// Doubling J with n=2 quarters the MTTF.
	base := MTTF(p, 1, p.TRef)
	double := MTTF(p, 2, p.TRef)
	if math.Abs(double/base-0.25) > 1e-12 {
		t.Errorf("J-exponent wrong: ratio %v, want 0.25", double/base)
	}
}

func TestMTTFArrhenius(t *testing.T) {
	p := DefaultParams()
	cold := MTTF(p, 1, units.Celsius(85).Kelvin())
	hot := MTTF(p, 1, units.Celsius(125).Kelvin())
	if cold <= hot {
		t.Errorf("hotter line outlives colder: %v vs %v", hot, cold)
	}
	// Ea = 0.9 eV over 85→125 °C is roughly an order of magnitude.
	if ratio := cold / hot; ratio < 5 || ratio > 30 {
		t.Errorf("thermal acceleration = %v, want O(10)", ratio)
	}
}

func TestZeroCurrentNeverFails(t *testing.T) {
	p := DefaultParams()
	if !math.IsInf(MTTF(p, 0, p.TRef), 1) {
		t.Error("zero current has finite MTTF")
	}
	var l Line
	l.Age(p, 0, p.TRef, 100*365*units.Day)
	if l.Damage() != 0 {
		t.Errorf("unpowered line damaged: %v", l.Damage())
	}
}

func TestMinersRuleAccumulation(t *testing.T) {
	p := DefaultParams()
	var l Line
	// Age for exactly one MTTF at reference conditions in chunks:
	// damage must reach 1.
	chunk := units.Seconds(p.MTTFRefHours * 3600 / 100)
	for i := 0; i < 100; i++ {
		l.Age(p, p.JRefMAcm2, p.TRef, chunk)
	}
	if math.Abs(l.Damage()-1) > 1e-9 {
		t.Errorf("damage after one MTTF = %v, want 1", l.Damage())
	}
	if !l.Failed() {
		t.Error("line not failed at damage 1")
	}
}

func TestDutyCyclingSlowsEMButNeverHealsIt(t *testing.T) {
	p := DefaultParams()
	var continuous, cycled Line
	hot := units.Celsius(105).Kelvin()
	// 10 cycles of 24 h on for continuous; the cycled line gets 24 h on
	// + 6 h off (α = 4 sleep) — sleep pauses EM, nothing reverses it.
	for c := 0; c < 10; c++ {
		continuous.Age(p, 1.5, hot, 30*units.Hour)
		cycled.Age(p, 1.5, hot, 24*units.Hour)
		before := cycled.Damage()
		cycled.Age(p, 0, units.Celsius(110).Kelvin(), 6*units.Hour) // "recovery" phase
		if cycled.Damage() != before {
			t.Fatalf("EM damage changed during sleep: %v -> %v", before, cycled.Damage())
		}
	}
	if cycled.Damage() >= continuous.Damage() {
		t.Errorf("duty cycling did not slow EM: %v vs %v", cycled.Damage(), continuous.Damage())
	}
	// The saving is exactly the duty ratio 24/30.
	if ratio := cycled.Damage() / continuous.Damage(); math.Abs(ratio-0.8) > 1e-9 {
		t.Errorf("duty saving = %v, want 0.8", ratio)
	}
}

func TestDeltaRGrowsWithDamage(t *testing.T) {
	p := DefaultParams()
	var l Line
	if l.DeltaRFrac(p) != 0 {
		t.Error("fresh line has ΔR")
	}
	l.Age(p, 2, units.Celsius(125).Kelvin(), 365*units.Day)
	if l.DeltaRFrac(p) <= 0 {
		t.Error("aged line has no ΔR")
	}
	half := Line{damage: 0.5}
	if math.Abs(half.DeltaRFrac(p)-0.15) > 1e-12 {
		t.Errorf("ΔR at half damage = %v, want 0.15", half.DeltaRFrac(p))
	}
}

func TestDamageMonotoneProperty(t *testing.T) {
	p := DefaultParams()
	f := func(steps []uint8) bool {
		var l Line
		prev := 0.0
		for _, s := range steps {
			j := float64(s%50) / 10 // 0 … 4.9 MA/cm²
			l.Age(p, j, units.Celsius(105).Kelvin(), units.Hour)
			if l.Damage() < prev {
				return false
			}
			prev = l.Damage()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAge(b *testing.B) {
	p := DefaultParams()
	var l Line
	hot := units.Celsius(105).Kelvin()
	for i := 0; i < b.N; i++ {
		l.Age(p, 1.2, hot, units.Minute)
	}
}
