// Package em models electromigration — the aging mechanism the paper's
// Section 7 explicitly leaves out ("the first order model is optimistic
// in that it ignores other aging effects, such as EM") — so the
// reproduction can quantify that limitation: EM damage is *not*
// recoverable, so it bounds what accelerated self-healing can buy over
// a product lifetime.
//
// The model is the standard reliability treatment: Black's equation
// gives a segment's mean time to failure under a current density J and
// temperature T,
//
//	MTTF(J,T) = A · (J/Jref)^(−n) · exp(Ea/kT)
//
// and damage accrues linearly in 1/MTTF (Miner's rule), pausing when
// the segment carries no current (sleep helps EM by duty-cycling, never
// by healing). Accumulated damage raises the line's resistance — void
// growth — which adds unhealable interconnect delay until failure at
// damage = 1.
package em

import (
	"errors"
	"math"

	"selfheal/internal/units"
)

// Params holds the Black's-equation constants for a 40 nm-class copper
// interconnect.
type Params struct {
	// MTTFRefHours is the MTTF at JRef and TRef.
	MTTFRefHours float64
	// NExp is the current-density exponent (≈2 for void nucleation).
	NExp float64
	// EaEV is the EM activation energy (≈0.9 eV for Cu).
	EaEV float64
	// JRefMAcm2 and TRef anchor the reference point.
	JRefMAcm2 float64
	TRef      units.Kelvin
	// DeltaRFracAtFail is the fractional resistance increase reached
	// at damage = 1 (void spanning the line); ΔR grows linearly with
	// damage before that.
	DeltaRFracAtFail float64
}

// DefaultParams anchors a 10-year MTTF at 1 MA/cm² and 105 °C — a
// typical sign-off corner.
func DefaultParams() Params {
	return Params{
		MTTFRefHours:     10 * 365.25 * 24,
		NExp:             2,
		EaEV:             0.9,
		JRefMAcm2:        1,
		TRef:             units.Celsius(105).Kelvin(),
		DeltaRFracAtFail: 0.3,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.MTTFRefHours <= 0:
		return errors.New("em: reference MTTF must be positive")
	case p.NExp <= 0:
		return errors.New("em: current-density exponent must be positive")
	case p.EaEV <= 0:
		return errors.New("em: activation energy must be positive")
	case p.JRefMAcm2 <= 0:
		return errors.New("em: reference current density must be positive")
	case p.TRef <= 0:
		return errors.New("em: reference temperature must be positive")
	case p.DeltaRFracAtFail <= 0:
		return errors.New("em: ΔR at failure must be positive")
	}
	return nil
}

// MTTF evaluates Black's equation for a current density (MA/cm²) and
// temperature, in hours. Zero current never fails.
func MTTF(p Params, jMAcm2 float64, t units.Kelvin) float64 {
	if jMAcm2 <= 0 {
		return math.Inf(1)
	}
	accel := math.Pow(jMAcm2/p.JRefMAcm2, -p.NExp) *
		math.Exp(p.EaEV/units.BoltzmannEV*(1/float64(t)-1/float64(p.TRef)))
	return p.MTTFRefHours * accel
}

// Line is one interconnect segment accumulating EM damage.
type Line struct {
	damage float64
}

// Damage returns the accumulated damage fraction; ≥1 means the line
// has failed.
func (l *Line) Damage() float64 { return l.damage }

// Failed reports whether the line has voided through.
func (l *Line) Failed() bool { return l.damage >= 1 }

// Age accrues damage for dt at the given current density and
// temperature. There is no recovery path — by construction.
func (l *Line) Age(p Params, jMAcm2 float64, t units.Kelvin, dt units.Seconds) {
	if dt <= 0 {
		return
	}
	mttf := MTTF(p, jMAcm2, t)
	if math.IsInf(mttf, 1) {
		return
	}
	l.damage += dt.Hours() / mttf
}

// DeltaRFrac returns the fractional resistance increase from void
// growth: linear in damage up to DeltaRFracAtFail at damage = 1 (and
// beyond — a failed line keeps its last physicality for delay
// accounting; callers should treat Failed lines as hard faults).
func (l *Line) DeltaRFrac(p Params) float64 {
	return p.DeltaRFracAtFail * l.damage
}
