package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestScheduleCancelUnderConcurrentReschedule hammers exactly the path
// the guard's rejuvenation scheduler lives on: schedules installed,
// replaced, and cancelled on the same chips from many goroutines while
// the engine keeps ticking. Every change bumps the chip's schedule
// generation; a stale wheel item whose generation check were broken
// would fire a phantom transition after the cancel. The test drives
// the race, then cancels everything, parks the fleet in stress, and
// ticks far past the longest outstanding wheel span: any zombie fire
// would flip a chip to sleep (visible in the snapshot) or stall its
// odometer.
func TestScheduleCancelUnderConcurrentReschedule(t *testing.T) {
	ctx := context.Background()
	// Workers: 1 keeps each tick on the calling goroutine — the race
	// under test is schedule events vs. wheel fires, not the worker
	// pool, and the tight tick loop would otherwise spawn a goroutine
	// flood under -race.
	e := memEngine(t, Config{EpochHours: 0.5, Workers: 1})

	const chips = 24
	ids := make([]string, chips)
	specs := make([]Spec, chips)
	for i := range ids {
		ids[i] = fmt.Sprintf("r%03d", i)
		specs[i] = Spec{ID: ids[i], TempC: 80, Vdd: 1.2, Duty: 1}
	}
	if res, err := e.RegisterBatch(ctx, specs); err != nil {
		t.Fatal(err)
	} else {
		for _, r := range res {
			if r.Err != nil {
				t.Fatalf("register %s: %v", r.ID, r.Err)
			}
		}
	}

	// The race: per-chip single flows and whole-fleet batches install,
	// replace, and cancel schedules while the main goroutine keeps
	// ticking epochs underneath them.
	var wg sync.WaitGroup
	const rounds = 15
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cancel := Schedule{}
			install := Schedule{StressEpochs: uint64(g + 1), SleepEpochs: uint64(g + 2), SleepTempC: 40, SleepVdd: -0.3}
			for r := 0; r < rounds; r++ {
				for _, id := range ids {
					var err error
					if (r+g)%2 == 0 {
						err = e.SetSchedule(ctx, id, install)
					} else {
						err = e.SetSchedule(ctx, id, cancel)
					}
					if err != nil {
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			chs := make([]SchedChange, chips)
			for i, id := range ids {
				s := Schedule{StressEpochs: 2, SleepEpochs: 6, SleepTempC: 45, SleepVdd: -0.2}
				if (r+i)%3 == 0 {
					s = Schedule{} // cancellation spam interleaved into the batch
				}
				chs[i] = SchedChange{ID: id, Schedule: s}
			}
			res, err := e.SetScheduleBatch(ctx, chs)
			if err != nil {
				t.Errorf("batch: %v", err)
				return
			}
			for _, rr := range res {
				if rr.Err != nil {
					t.Errorf("batch item %s: %v", rr.ID, rr.Err)
					return
				}
			}
		}
	}()
	mutatorsDone := make(chan struct{})
	go func() { wg.Wait(); close(mutatorsDone) }()
ticking:
	for {
		select {
		case <-mutatorsDone:
			break ticking
		default:
			e.Tick(ctx)
		}
	}
	if t.Failed() {
		return
	}

	// Quiesce: cancel every schedule and pin every chip to stress.
	chs := make([]SchedChange, chips)
	conds := make([]CondChange, chips)
	for i, id := range ids {
		chs[i] = SchedChange{ID: id}
		conds[i] = CondChange{ID: id, Cond: Cond{Phase: PhaseStressName, TempC: 80, Vdd: 1.2, Duty: 1}}
	}
	for _, call := range []func() ([]RegResult, error){
		func() ([]RegResult, error) { return e.SetScheduleBatch(ctx, chs) },
		func() ([]RegResult, error) { return e.SetConditionBatch(ctx, conds) },
	} {
		res, err := call()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.Err != nil {
				t.Fatalf("quiesce %s: %v", r.ID, r.Err)
			}
		}
	}

	// Any surviving wheel item was booked at most max(StressEpochs,
	// SleepEpochs) = 6 epochs ahead; tick far past that and verify no
	// stale generation ever fires: phases stay stress, odometers track
	// every epoch exactly.
	before := e.Snapshot()
	baseOdo := make(map[string]uint64, chips)
	for _, id := range ids {
		cv, ok := before.Chip(id)
		if !ok {
			t.Fatalf("chip %s missing from snapshot", id)
		}
		baseOdo[id] = cv.Odometer
	}
	const settle = 64
	for k := 1; k <= settle; k++ {
		e.Tick(ctx)
		snap := e.Snapshot()
		for _, id := range ids {
			cv, ok := snap.Chip(id)
			if !ok {
				t.Fatalf("chip %s missing after tick %d", id, k)
			}
			if cv.Phase != PhaseStressName {
				t.Fatalf("tick %d: chip %s flipped to %q — a cancelled schedule's wheel item fired", k, id, cv.Phase)
			}
			if want := baseOdo[id] + uint64(k); cv.Odometer != want {
				t.Fatalf("tick %d: chip %s odometer %v, want %v — a stale fire perturbed its phase",
					k, id, cv.Odometer, want)
			}
		}
	}
}

// TestSetConditionBatchSemantics covers the batch event kinds' per-item
// verdicts and read-your-writes: valid items apply even when their
// neighbours fail, and the published snapshot reflects the batch the
// moment the call returns.
func TestSetConditionBatchSemantics(t *testing.T) {
	ctx := context.Background()
	e := memEngine(t, Config{EpochHours: 0.5})
	for _, id := range []string{"a", "b"} {
		if err := e.Register(ctx, Spec{ID: id, TempC: 80, Vdd: 1.2, Duty: 1}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.SetConditionBatch(ctx, []CondChange{
		{ID: "a", Cond: Cond{Phase: PhaseSleepName, TempC: 110, Vdd: -0.3, Duty: 1}},
		{ID: "ghost", Cond: Cond{Phase: PhaseStressName, TempC: 80, Vdd: 1.2, Duty: 1}},
		{ID: "b", Cond: Cond{Phase: "limbo", TempC: 80, Vdd: 1.2, Duty: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil {
		t.Fatalf("valid item failed: %v", res[0].Err)
	}
	if _, ok := res[1].Err.(NotFoundError); !ok {
		t.Fatalf("missing chip error = %v", res[1].Err)
	}
	if res[2].Err == nil {
		t.Fatal("bad phase accepted")
	}
	cv, ok := e.Snapshot().Chip("a")
	if !ok || cv.Phase != PhaseSleepName {
		t.Fatalf("read-your-writes: chip a = %+v, %v", cv, ok)
	}
	if cv2, _ := e.Snapshot().Chip("b"); cv2.Phase != PhaseStressName {
		t.Fatalf("failed item mutated chip b: %+v", cv2)
	}

	sres, err := e.SetScheduleBatch(ctx, []SchedChange{
		{ID: "b", Schedule: Schedule{StressEpochs: 2, SleepEpochs: 2, SleepTempC: 40, SleepVdd: -0.3}},
		{ID: "ghost", Schedule: Schedule{}},
		{ID: "a", Schedule: Schedule{StressEpochs: 1}}, // one-sided: invalid
	})
	if err != nil {
		t.Fatal(err)
	}
	if sres[0].Err != nil {
		t.Fatalf("valid schedule failed: %v", sres[0].Err)
	}
	if _, ok := sres[1].Err.(NotFoundError); !ok {
		t.Fatalf("missing chip error = %v", sres[1].Err)
	}
	if sres[2].Err == nil {
		t.Fatal("one-sided schedule accepted")
	}
	if res, err := e.SetConditionBatch(ctx, nil); err != nil || res != nil {
		t.Fatalf("empty batch = (%v, %v)", res, err)
	}
}
