package engine

import "fmt"

// NotFoundError reports an operation on a chip the engine does not
// know. The serve layer maps it to 404.
type NotFoundError struct{ ID string }

func (e NotFoundError) Error() string { return fmt.Sprintf("engine: no chip %q", e.ID) }

// DuplicateError reports a registration whose id is already taken. The
// serve layer maps it to 409.
type DuplicateError struct{ ID string }

func (e DuplicateError) Error() string {
	return fmt.Sprintf("engine: chip %q already registered", e.ID)
}
