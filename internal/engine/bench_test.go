package engine

import (
	"context"
	"fmt"
	"testing"

	"selfheal/internal/store"
)

// benchEngine builds an engine with n chips spread over a realistic
// condition mix: DC stress, AC stress, a hotter bin, circadian
// schedules, and a sleeping cohort.
func benchEngine(b *testing.B, n int) *Engine {
	b.Helper()
	e, err := New(store.NewMem[any](), Config{EpochHours: 0.5, FlushEpochs: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	ctx := context.Background()
	const batch = 8192
	specs := make([]Spec, 0, batch)
	flush := func() {
		res, err := e.RegisterBatch(ctx, specs)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
		specs = specs[:0]
	}
	for i := 0; i < n; i++ {
		sp := Spec{ID: fmt.Sprintf("bench-%07d", i), TempC: 80, Vdd: 1.2, Duty: 1}
		switch i % 5 {
		case 1:
			sp.Duty = 0.5
		case 2:
			sp.TempC, sp.Vdd = 105, 1.32
		case 3:
			sp.Schedule = &Schedule{StressEpochs: 16, SleepEpochs: 8, SleepTempC: 40, SleepVdd: -0.3}
		case 4:
			sp.Phase = PhaseSleepName
			sp.TempC, sp.Vdd = 45, -0.25
		}
		specs = append(specs, sp)
		if len(specs) == batch {
			flush()
		}
	}
	if len(specs) > 0 {
		flush()
	}
	return e
}

// BenchmarkEngineTick measures one full-fleet epoch advance — the
// engine's hot path — at three fleet sizes. The derived metrics are
// what BENCH_engine.json records: ns per chip-epoch and chips aged per
// wall-clock second.
func BenchmarkEngineTick(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("chips=%d", n), func(b *testing.B) {
			e := benchEngine(b, n)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Tick(ctx)
			}
			b.StopTimer()
			perChip := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(n)
			b.ReportMetric(perChip, "ns/chip-epoch")
			b.ReportMetric(1e9/perChip, "chips/sec")
		})
	}
}

// BenchmarkEngineSnapshot measures snapshot publication cost (the
// per-tick copy) and lookup cost at 100k chips.
func BenchmarkEngineSnapshot(b *testing.B) {
	e := benchEngine(b, 100_000)
	b.Run("publish", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.tickMu.Lock()
			e.publishSnapshotLocked()
			e.tickMu.Unlock()
		}
	})
	b.Run("lookup", func(b *testing.B) {
		snap := e.Snapshot()
		for i := 0; i < b.N; i++ {
			if _, ok := snap.Chip("bench-0050000"); !ok {
				b.Fatal("probe chip missing")
			}
		}
	})
	b.Run("top50", func(b *testing.B) {
		snap := e.Snapshot()
		for i := 0; i < b.N; i++ {
			if got := snap.TopByOdometer(50); len(got) != 50 {
				b.Fatalf("top-50 returned %d", len(got))
			}
		}
	})
}
