// Package engine is the discrete-event fleet aging engine: instead of
// advancing one chip at a time inside request handlers, a single
// simulation clock advances the threshold shift and aging odometer of
// the *entire* fleet, epoch by epoch.
//
// # Architecture
//
// Chip state lives in 32 partitions aligned with the store's shards
// (store.ShardOf), each holding a struct-of-arrays td.Batch plus cold
// per-chip metadata. Every tick advances all partitions one epoch on a
// bounded worker pool; within a partition, chips sharing a condition
// are grouped into classes so the model's exp/log prefactors are paid
// once per class per epoch (td.AdvanceBatch), not once per chip. A
// hierarchical timing wheel per partition schedules circadian
// stress↔sleep transitions at epoch granularity.
//
// # Snapshot isolation
//
// Request handlers never touch live partitions: every tick publishes
// an immutable Snapshot via atomic pointer swap, so reads are
// wait-free, never block the tick, and always observe one consistent
// epoch across all partitions. Writes (register, remove, condition and
// schedule changes) are enqueued as events; a pump goroutine applies
// them between epochs under the tick lock.
//
// # Durability and replay
//
// The engine persists operations, not state, through the same journal
// as the fleet: registrations, removals, condition/schedule changes,
// and one coalesced OpEngineEpoch record per flush window (the epoch
// count plus the per-epoch simulated hours). Replay re-runs the
// records in order and lands on the exact pre-shutdown state. Two
// ordering invariants make this exact:
//
//  1. Events only apply under the tick lock, never mid-epoch.
//  2. Pending epochs are flushed to the journal *before* any event
//     record commits, so journal order equals application order.
//
// Chips registered on behalf of fleet chips commit OpEngineReg records
// of their own (kind "fleet"); a fleet delete prunes the chip's engine
// records in the journal, so no separate engine record is needed.
//
// # Lock hierarchy
//
// tick lock → partition lock → nothing. The store's chip→shard order
// is never entered with engine locks held: the engine commits through
// the journal only (no store map access), and handlers reading
// snapshots take no locks at all. See internal/store for the canonical
// fleet hierarchy; DESIGN.md states the combined ordering.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"selfheal/internal/obs"
	"selfheal/internal/store"
	"selfheal/internal/td"
	"selfheal/internal/units"
)

// Journal is the slice of the store the engine persists through: the
// shared operation log. Any store.Store satisfies it; a non-durable
// store turns every commit into a no-op and the engine runs ephemeral.
type Journal interface {
	Commit(ctx context.Context, rec store.Record) error
	Replay() []store.Record
	Durable() bool
}

// KindFleet marks a registration made on behalf of a fleet chip; such
// chips can only be removed through the fleet's delete (which prunes
// their engine records journal-side).
const KindFleet = "fleet"

// Config tunes an Engine; zero values take the documented defaults.
type Config struct {
	Params     td.Params     // aging model constants (default td.DefaultParams)
	EpochHours float64       // simulated hours per epoch (default 0.5)
	Interval   time.Duration // wall-clock tick period; 0 = manual Tick only
	Workers    int           // tick worker pool size (default GOMAXPROCS)
	// FlushEpochs bounds how many epochs may pass between journal
	// flushes (default 16). Smaller = less simulated time lost on a
	// crash, more journal records.
	FlushEpochs int
	Tracer      *obs.Tracer // when set, every TraceEvery-th tick is traced
	TraceEvery  int         // default 64
	// OnEpoch, when set, is called after every successfully completed
	// tick with the new epoch number and the snapshot it published. It
	// runs on the ticking goroutine *after* the tick lock is released,
	// so the hook may call the engine's mutation API (the guard's
	// detect→respond loop does exactly that); a slow hook delays the
	// next tick, not concurrent readers. It is never called during
	// replay — replayed history already contains whatever the hook's
	// responses journaled the first time around.
	OnEpoch func(epoch uint64, snap *Snapshot)
}

// Spec registers one chip with the engine.
type Spec struct {
	ID       string
	Kind     string  // "" for engine-native, KindFleet for fleet-backed
	Phase    string  // PhaseStressName (default) or PhaseSleepName
	TempC    float64 // junction temperature, °C
	Vdd      float64 // stress: gate voltage; sleep: <0 = reverse-biased rail
	Duty     float64 // duty cycle in [0,1]
	Schedule *Schedule
}

// Cond is a chip's phase + condition + duty, the payload of a
// condition-change event.
type Cond struct {
	Phase string
	TempC float64
	Vdd   float64
	Duty  float64
}

// Schedule is a circadian stress/sleep cycle: StressEpochs of the
// chip's stress condition, then SleepEpochs at the sleep condition,
// repeating. Both zero cancels the cycle.
type Schedule struct {
	StressEpochs uint64
	SleepEpochs  uint64
	SleepTempC   float64
	SleepVdd     float64
}

// RegResult reports one item of a RegisterBatch.
type RegResult struct {
	ID  string
	Err error
}

// Stats is the engine's observable state, exported under /metrics.
type Stats struct {
	Epoch           uint64  `json:"epoch"`
	SimHours        float64 `json:"sim_hours"`
	Chips           int     `json:"chips"`
	Partitions      int     `json:"partitions"`
	Workers         int     `json:"workers"`
	EpochHours      float64 `json:"epoch_hours"`
	IntervalSeconds float64 `json:"interval_seconds"`
	// EpochLagSeconds is how far the last tick started behind its due
	// time — nonzero when ticks take longer than the interval.
	EpochLagSeconds float64 `json:"epoch_lag_seconds"`
	ChipsPerSecond  float64 `json:"chips_per_second"`
	LastTickSeconds float64 `json:"last_tick_seconds"`
	TicksTotal      uint64  `json:"ticks_total"`
	EventsPending   int     `json:"events_pending"`
	EventsApplied   uint64  `json:"events_applied"`
	// PendingEpochs counts epochs advanced but not yet journaled (lost
	// on a crash; bounded by FlushEpochs while the journal is healthy).
	PendingEpochs  uint64 `json:"pending_epochs"`
	CommitErrors   uint64 `json:"commit_errors"`
	ReplayedEpochs uint64 `json:"replayed_epochs"`
	AdvanceError   string `json:"advance_error,omitempty"`
}

// Engine is the fleet aging engine. Construct with New; all methods
// are safe for concurrent use.
type Engine struct {
	j          Journal
	params     td.Params
	epochHours float64
	dt         units.Seconds
	interval   time.Duration
	flushEvery uint64
	workers    int
	tracer     *obs.Tracer
	traceEvery uint64
	onEpoch    func(epoch uint64, snap *Snapshot)

	// tickMu serializes epoch advancement, event application, journal
	// flushes, and snapshot publication — events never land mid-epoch.
	tickMu        sync.Mutex
	parts         [store.ShardCount]*partition
	epoch         uint64
	simHours      float64
	pendingEpochs uint64

	snap  atomic.Pointer[Snapshot]
	chips atomic.Int64

	events    chan *event
	closedc   chan struct{}
	closeOnce sync.Once
	closeErr  error
	wg        sync.WaitGroup

	ticks          atomic.Uint64
	eventsApplied  atomic.Uint64
	commitErrors   atomic.Uint64
	epochLagNanos  atomic.Int64
	lastTickNanos  atomic.Int64
	cpsBits        atomic.Uint64
	advanceErr     atomic.Pointer[string]
	replayedEpochs uint64
}

// New assembles an engine over the journal, replaying its engine
// records (registrations, condition/schedule changes, coalesced epoch
// advances) to land on the exact pre-shutdown state, then starts the
// event pump and — when cfg.Interval > 0 — the background ticker.
func New(j Journal, cfg Config) (*Engine, error) {
	if cfg.EpochHours == 0 {
		cfg.EpochHours = 0.5
	}
	if cfg.EpochHours < 0 || math.IsNaN(cfg.EpochHours) || math.IsInf(cfg.EpochHours, 0) {
		return nil, fmt.Errorf("engine: invalid epoch hours %v", cfg.EpochHours)
	}
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.FlushEpochs < 1 {
		cfg.FlushEpochs = 16
	}
	if cfg.TraceEvery < 1 {
		cfg.TraceEvery = 64
	}
	zero := td.Params{}
	if cfg.Params == zero {
		cfg.Params = td.DefaultParams()
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		j:          j,
		params:     cfg.Params,
		epochHours: cfg.EpochHours,
		dt:         units.HoursToSeconds(cfg.EpochHours),
		interval:   cfg.Interval,
		flushEvery: uint64(cfg.FlushEpochs),
		workers:    cfg.Workers,
		tracer:     cfg.Tracer,
		traceEvery: uint64(cfg.TraceEvery),
		onEpoch:    cfg.OnEpoch,
		events:     make(chan *event, 256),
		closedc:    make(chan struct{}),
	}
	for i := range e.parts {
		e.parts[i] = newPartition()
	}
	if err := e.replay(); err != nil {
		return nil, err
	}
	e.publishSnapshotLocked()
	e.wg.Add(1)
	go e.pump()
	if e.interval > 0 {
		e.wg.Add(1)
		go e.run()
	}
	return e, nil
}

// replay re-applies the journal's engine records in sequence order.
func (e *Engine) replay() error {
	for _, rec := range e.j.Replay() {
		if err := e.applyRecord(rec); err != nil {
			return fmt.Errorf("engine: replay: record %d (%s %s): %w", rec.Seq, rec.Op, rec.ID, err)
		}
	}
	return nil
}

func (e *Engine) applyRecord(rec store.Record) error {
	switch rec.Op {
	case store.OpEngineReg:
		sp := Spec{
			ID: rec.ID, Kind: rec.Kind, Phase: rec.Phase,
			TempC: rec.TempC, Vdd: rec.Vdd, Duty: rec.Duty,
		}
		if rec.StressEpochs > 0 || rec.SleepEpochs > 0 {
			sp.Schedule = &Schedule{
				StressEpochs: rec.StressEpochs, SleepEpochs: rec.SleepEpochs,
				SleepTempC: rec.SleepTempC, SleepVdd: rec.SleepVdd,
			}
		}
		if err := e.partFor(rec.ID).register(e.params, sp); err != nil {
			return err
		}
		e.chips.Add(1)
		return nil
	case store.OpEngineRemove:
		if e.partFor(rec.ID).remove(rec.ID) {
			e.chips.Add(-1)
		}
		return nil
	case store.OpEngineSet:
		return e.partFor(rec.ID).setCondition(e.params, rec.ID, Cond{
			Phase: rec.Phase, TempC: rec.TempC, Vdd: rec.Vdd, Duty: rec.Duty,
		})
	case store.OpEngineSchedule:
		return e.partFor(rec.ID).setSchedule(rec.ID, Schedule{
			StressEpochs: rec.StressEpochs, SleepEpochs: rec.SleepEpochs,
			SleepTempC: rec.SleepTempC, SleepVdd: rec.SleepVdd,
		})
	case store.OpEngineEpoch:
		dt := units.HoursToSeconds(rec.Hours)
		for k := uint64(0); k < rec.Epochs; k++ {
			if err := e.advanceAll(context.Background(), dt); err != nil {
				return err
			}
			e.epoch++
			e.simHours += rec.Hours
		}
		e.replayedEpochs += rec.Epochs
		return nil
	default:
		return nil // fleet records; the fleet's own replay consumes them
	}
}

func (e *Engine) partFor(id string) *partition { return e.parts[store.ShardOf(id)] }

// run is the background ticker: one epoch per interval, with the lag
// between due time and actual start exported as the epoch-lag gauge.
func (e *Engine) run() {
	defer e.wg.Done()
	t := time.NewTicker(e.interval)
	defer t.Stop()
	due := time.Now().Add(e.interval)
	for {
		select {
		case <-e.closedc:
			return
		case now := <-t.C:
			lag := now.Sub(due)
			if lag < 0 {
				lag = 0
			}
			e.epochLagNanos.Store(int64(lag))
			due = due.Add(e.interval)
			if due.Before(now) {
				due = now // ticker dropped ticks; measure fresh backlog
			}
			e.Tick(context.Background())
		}
	}
}

// Tick advances the whole fleet one epoch: fire due schedule
// transitions, advance every partition on the worker pool, flush the
// epoch window to the journal when due, and publish the new snapshot.
// With Config.Interval set the background loop calls it; tests and
// benchmarks drive it manually. When the tick completed, the OnEpoch
// hook (if configured) runs synchronously after the tick lock is
// released, so it can safely mutate the engine.
func (e *Engine) Tick(ctx context.Context) {
	epoch, snap, ok := e.tickLocked(ctx)
	if ok && e.onEpoch != nil {
		e.onEpoch(epoch, snap)
	}
}

func (e *Engine) tickLocked(ctx context.Context) (uint64, *Snapshot, bool) {
	e.tickMu.Lock()
	defer e.tickMu.Unlock()

	n := e.ticks.Add(1)
	var sp *obs.Span
	if e.tracer != nil && n%e.traceEvery == 1 {
		ctx, sp = e.tracer.Start(ctx, "engine.tick")
		sp.Annotate(obs.Int("epoch", int(e.epoch+1)), obs.Int("chips", int(e.chips.Load())))
		defer sp.End()
	}

	start := time.Now()
	err := e.advanceAll(ctx, e.dt)
	if sp != nil {
		sp.SetError(err)
	}
	if err != nil {
		s := err.Error()
		e.advanceErr.Store(&s)
		return 0, nil, false
	}
	e.epoch++
	e.simHours += e.epochHours
	e.pendingEpochs++
	if e.pendingEpochs >= e.flushEvery {
		e.flushLocked(ctx)
	}
	e.publishSnapshotLocked()

	elapsed := time.Since(start)
	e.lastTickNanos.Store(int64(elapsed))
	if secs := elapsed.Seconds(); secs > 0 {
		e.cpsBits.Store(math.Float64bits(float64(e.chips.Load()) / secs))
	}
	return e.epoch, e.snap.Load(), true
}

// advanceAll steps every partition one epoch of dt on the bounded
// worker pool.
func (e *Engine) advanceAll(ctx context.Context, dt units.Seconds) error {
	workers := e.workers
	if workers > len(e.parts) {
		workers = len(e.parts)
	}
	if workers <= 1 {
		for pi, p := range e.parts {
			if err := e.advanceOne(ctx, pi, p, dt); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				pi := int(next.Add(1)) - 1
				if pi >= len(e.parts) {
					return
				}
				if err := e.advanceOne(ctx, pi, e.parts[pi], dt); err != nil {
					firstErr.CompareAndSwap(nil, &err)
				}
			}
		}()
	}
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return *ep
	}
	return nil
}

func (e *Engine) advanceOne(ctx context.Context, pi int, p *partition, dt units.Seconds) error {
	_, sp := obs.StartSpan(ctx, "engine.partition",
		obs.Int("partition", pi), obs.Int("chips", len(p.meta)))
	err := p.advance(e.params, dt)
	sp.SetError(err)
	sp.End()
	return err
}

// flushLocked journals the epochs advanced since the last flush as one
// coalesced OpEngineEpoch record. Callers hold tickMu. On failure the
// window stays pending (counted in Stats) and is retried at the next
// flush point; the simulation keeps advancing — matching the fleet's
// degraded-mode semantics, where state advances but is not durable.
func (e *Engine) flushLocked(ctx context.Context) error {
	if e.pendingEpochs == 0 || !e.j.Durable() {
		e.pendingEpochs = 0
		return nil
	}
	err := e.j.Commit(ctx, store.Record{
		Op: store.OpEngineEpoch, Epochs: e.pendingEpochs, Hours: e.epochHours,
	})
	if err != nil {
		e.commitErrors.Add(1)
		return err
	}
	e.pendingEpochs = 0
	return nil
}

// Snapshot returns the newest published fleet snapshot. The result is
// immutable and wait-free to read; successive calls observe
// monotonically non-decreasing epochs.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	snap := e.snap.Load()
	st := Stats{
		Epoch:           snap.Epoch,
		SimHours:        snap.SimHours,
		Chips:           snap.Chips,
		Partitions:      len(e.parts),
		Workers:         e.workers,
		EpochHours:      e.epochHours,
		IntervalSeconds: e.interval.Seconds(),
		EpochLagSeconds: time.Duration(e.epochLagNanos.Load()).Seconds(),
		ChipsPerSecond:  math.Float64frombits(e.cpsBits.Load()),
		LastTickSeconds: time.Duration(e.lastTickNanos.Load()).Seconds(),
		TicksTotal:      e.ticks.Load(),
		EventsPending:   len(e.events),
		EventsApplied:   e.eventsApplied.Load(),
		CommitErrors:    e.commitErrors.Load(),
		ReplayedEpochs:  e.replayedEpochs,
	}
	e.tickMu.Lock()
	st.PendingEpochs = e.pendingEpochs
	e.tickMu.Unlock()
	if s := e.advanceErr.Load(); s != nil {
		st.AdvanceError = *s
	}
	return st
}

// ErrClosed is returned by mutations after Close.
var ErrClosed = errors.New("engine: closed")

// Close stops the ticker and the event pump, flushes any pending epoch
// window, and returns the final flush's verdict. Safe to call twice.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		close(e.closedc)
		e.wg.Wait()
		e.tickMu.Lock()
		e.closeErr = e.flushLocked(context.Background())
		e.tickMu.Unlock()
	})
	return e.closeErr
}
