package engine

import "testing"

// collect steps w n times and returns every (epoch, id, gen) fire.
type fireRec struct {
	epoch uint64
	id    string
	gen   uint32
}

func stepN(w *wheel, n int) []fireRec {
	var fires []fireRec
	for i := 0; i < n; i++ {
		w.step(func(id string, gen uint32) {
			fires = append(fires, fireRec{epoch: w.current, id: id, gen: gen})
		})
	}
	return fires
}

func TestWheelFiresAtExactEpoch(t *testing.T) {
	cases := []uint64{1, 2, 255, 256, 257, 300, 511, 512, 65535, 65536, 65537, 70000}
	for _, at := range cases {
		var w wheel
		w.schedule("c", 7, at)
		fires := stepN(&w, int(at)+300)
		if len(fires) != 1 {
			t.Fatalf("at=%d: fired %d times, want once", at, len(fires))
		}
		if fires[0].epoch != at || fires[0].id != "c" || fires[0].gen != 7 {
			t.Fatalf("at=%d: fired %+v", at, fires[0])
		}
	}
}

func TestWheelPastClampsToNextStep(t *testing.T) {
	var w wheel
	stepN(&w, 10) // current = 10
	w.schedule("past", 1, 3)
	w.schedule("now", 2, 10)
	fires := stepN(&w, 1)
	if len(fires) != 2 {
		t.Fatalf("fired %d times, want 2 (past and present clamp to next step)", len(fires))
	}
	for _, f := range fires {
		if f.epoch != 11 {
			t.Fatalf("clamped item fired at %d, want 11", f.epoch)
		}
	}
}

func TestWheelManyItemsOneSlotDistinctEpochs(t *testing.T) {
	// Items from different laps and levels that collapse into the same
	// level-0 slot must each fire at their own epoch, not together.
	var w wheel
	w.schedule("a", 1, 5)
	w.schedule("b", 1, 5+256)  // same level-0 slot, one lap later
	w.schedule("c", 1, 5+512)  // two laps
	w.schedule("d", 1, 5+1024) // arrives by cascade from level 1
	fires := stepN(&w, 5+1024)
	if len(fires) != 4 {
		t.Fatalf("fired %d times, want 4", len(fires))
	}
	want := map[string]uint64{"a": 5, "b": 261, "c": 517, "d": 1029}
	for _, f := range fires {
		if want[f.id] != f.epoch {
			t.Fatalf("%s fired at %d, want %d", f.id, f.epoch, want[f.id])
		}
	}
}

func TestWheelLapReinsertion(t *testing.T) {
	// White-box: an item parked in a level-0 slot for a later lap must
	// re-place instead of firing when the slot is first visited.
	var w wheel
	w.levels[0][1] = append(w.levels[0][1], wheelItem{id: "lap", gen: 1, at: 257})
	if fires := stepN(&w, 256); len(fires) != 0 {
		t.Fatalf("lapped item fired early: %+v", fires)
	}
	fires := stepN(&w, 1)
	if len(fires) != 1 || fires[0].epoch != 257 {
		t.Fatalf("lapped item fires = %+v, want one fire at 257", fires)
	}
}

func TestWheelCascadePreservesOrderAcrossLevels(t *testing.T) {
	// A repeating schedule driven through fire callbacks: every fire
	// books the next one, exercising re-insertion from inside step.
	var w wheel
	const period = 97
	w.schedule("tick", 1, period)
	var fires []uint64
	for i := 0; i < 10*period; i++ {
		w.step(func(id string, gen uint32) {
			fires = append(fires, w.current)
			w.schedule(id, gen, w.current+period)
		})
	}
	if len(fires) != 10 {
		t.Fatalf("fired %d times, want 10", len(fires))
	}
	for k, at := range fires {
		if want := uint64(period * (k + 1)); at != want {
			t.Fatalf("fire %d at epoch %d, want %d", k, at, want)
		}
	}
}
