package engine

// wheel is a hierarchical timing wheel keyed on the engine's epoch
// counter — the scheduler for per-chip stress↔sleep transitions. Each
// partition owns one, so insertions and fires happen under the
// partition lock with no extra synchronization.
//
// Geometry: wheelLevels levels of wheelSlots slots each, level l slots
// spanning wheelSlots^l epochs. With 4×256 the wheel covers ~4.3e9
// epochs — far past any schedule — and stepping one epoch is O(1)
// amortized: level-0 slots fire directly, and a higher-level slot
// cascades its items down one level each time the level below wraps.
// A circadian fleet (the common case: every chip toggling every few
// hundred epochs) keeps essentially all items in the bottom two
// levels.
//
// Items are identified by chip id plus a schedule generation; a fire
// whose generation no longer matches the chip's current schedule is
// stale (the schedule was replaced or cleared after insertion) and is
// dropped instead of cancelled in place — cancellation is O(1) by
// generation bump.
type wheel struct {
	current uint64 // epochs stepped so far; items fire at epoch > current
	levels  [wheelLevels][wheelSlots][]wheelItem
}

const (
	wheelLevels = 4
	wheelSlots  = 256
	wheelBits   = 8 // log2(wheelSlots)
)

// wheelItem is one scheduled transition: the chip it belongs to, the
// schedule generation it was inserted under, and the absolute epoch it
// fires at (needed to re-insert precisely when cascading down).
type wheelItem struct {
	id  string
	gen uint32
	at  uint64
}

// schedule inserts an item firing at absolute epoch at. Items in the
// past or present fire on the next step (clamped to current+1) — a
// zero-length phase would otherwise never fire.
func (w *wheel) schedule(id string, gen uint32, at uint64) {
	if at <= w.current {
		at = w.current + 1
	}
	w.place(wheelItem{id: id, gen: gen, at: at})
}

// place files an item into the coarsest slot that still distinguishes
// its fire epoch from now.
func (w *wheel) place(it wheelItem) {
	delta := it.at - w.current
	for l := 0; l < wheelLevels; l++ {
		span := uint64(1) << (wheelBits * (l + 1)) // epochs covered by level l
		if delta <= span || l == wheelLevels-1 {
			slot := (it.at >> (wheelBits * l)) & (wheelSlots - 1)
			w.levels[l][slot] = append(w.levels[l][slot], it)
			return
		}
	}
}

// step advances the wheel one epoch and invokes fire for every item due
// at the new current epoch. Higher levels cascade when the level below
// wraps, re-placing their items at finer granularity; an item whose
// level-0 slot is reached fires.
func (w *wheel) step(fire func(id string, gen uint32)) {
	w.current++
	// Cascade outer levels whose inner neighbour just wrapped.
	for l := 1; l < wheelLevels; l++ {
		if w.current&((uint64(1)<<(wheelBits*l))-1) != 0 {
			break
		}
		slot := (w.current >> (wheelBits * l)) & (wheelSlots - 1)
		items := w.levels[l][slot]
		w.levels[l][slot] = nil
		for _, it := range items {
			w.place(it)
		}
	}
	slot := w.current & (wheelSlots - 1)
	due := w.levels[0][slot]
	w.levels[0][slot] = nil
	for _, it := range due {
		if it.at == w.current {
			fire(it.id, it.gen)
		} else {
			// A level-0 slot is revisited every wheelSlots epochs; an
			// item parked for a later lap goes back in.
			w.place(it)
		}
	}
}
