package engine

import (
	"sync"

	"selfheal/internal/td"
	"selfheal/internal/units"
)

// phase constants for chipMeta.phase and the snapshot's Phase arrays.
const (
	phaseStress = 0
	phaseSleep  = 1
)

// PhaseStress and PhaseSleep are the wire names of the two phases.
const (
	PhaseStressName = "stress"
	PhaseSleepName  = "sleep"
)

// classKey identifies a condition class: every chip sharing one key is
// advanced by a single td.Class per epoch, so the class's exp/log
// prefactors are evaluated once regardless of how many chips hold it.
// Duty stays per chip (cached inside the td.Batch), so class count is
// the number of distinct (phase, temperature, voltage) triples in the
// partition — a handful in any realistic fleet.
type classKey struct {
	phase uint8
	tempC float64
	vdd   float64
}

// class is the chips currently advancing under one condition.
type class struct {
	key classKey
	idx []int // chip indices in the partition's batch
}

// chipMeta is the cold per-chip bookkeeping (the hot state lives in
// the td.Batch's parallel slices).
type chipMeta struct {
	id    string
	fleet bool  // registered on behalf of a fleet chip
	phase uint8 // current phase
	// Active condition of the current phase.
	tempC, vdd float64
	// The stress condition to return to when a scheduled sleep ends.
	sTempC, sVdd float64
	sched        Schedule
	schedGen     uint32 // bumped on every schedule change; stale wheel fires drop
	classID      int    // index into classes
	classPos     int    // position inside that class's idx
}

// partition is one 32nd of the engine's fleet, aligned with the store
// shard of the chip id (store.ShardOf), so engine partition traffic
// and store shard traffic stripe identically. All fields are guarded
// by mu; the tick's worker pool locks one partition at a time and the
// event path locks the target partition while holding the engine's
// tick lock.
type partition struct {
	mu    sync.Mutex
	batch *td.Batch
	meta  []chipMeta
	odo   []uint64 // stress epochs endured — the engine's aging odometer
	wheel wheel

	classes   []*class
	classByK  map[classKey]int
	tdScratch []td.Class

	// Copy-on-write membership view shared with published snapshots:
	// mutators clone before the first change after a publish.
	ids    []string
	index  map[string]int
	shared bool
}

func newPartition() *partition {
	return &partition{
		batch:    td.NewBatch(0),
		classByK: make(map[classKey]int),
		index:    make(map[string]int),
	}
}

// mutableIDs makes the membership view writable, cloning it if a
// published snapshot still shares it.
func (p *partition) mutableIDs() {
	if !p.shared {
		return
	}
	ids := make([]string, len(p.ids))
	copy(ids, p.ids)
	index := make(map[string]int, len(p.index))
	for k, v := range p.index {
		index[k] = v
	}
	p.ids, p.index, p.shared = ids, index, false
}

// classFor returns the class index for key, creating it on first use.
func (p *partition) classFor(key classKey) int {
	if ci, ok := p.classByK[key]; ok {
		return ci
	}
	ci := len(p.classes)
	p.classes = append(p.classes, &class{key: key})
	p.classByK[key] = ci
	return ci
}

// attach files chip i into the class for key.
func (p *partition) attach(i int, key classKey) {
	ci := p.classFor(key)
	c := p.classes[ci]
	p.meta[i].classID = ci
	p.meta[i].classPos = len(c.idx)
	c.idx = append(c.idx, i)
}

// detach removes chip i from its class by swapping the class's last
// member into its position.
func (p *partition) detach(i int) {
	m := &p.meta[i]
	c := p.classes[m.classID]
	last := len(c.idx) - 1
	moved := c.idx[last]
	c.idx[m.classPos] = moved
	p.meta[moved].classPos = m.classPos
	c.idx = c.idx[:last]
}

// moveClass reassigns chip i to the class for key.
func (p *partition) moveClass(i int, key classKey) {
	if p.classes[p.meta[i].classID].key == key {
		return
	}
	p.detach(i)
	p.attach(i, key)
}

// register adds a chip. The caller validated the spec; duty validation
// happens in the batch append.
func (p *partition) register(params td.Params, sp Spec) error {
	if _, taken := p.index[sp.ID]; taken {
		return DuplicateError{ID: sp.ID}
	}
	i, err := p.batch.Append(params, sp.Duty)
	if err != nil {
		return err
	}
	p.mutableIDs()
	p.ids = append(p.ids, sp.ID)
	p.index[sp.ID] = i
	p.odo = append(p.odo, 0)
	m := chipMeta{
		id: sp.ID, fleet: sp.Kind == KindFleet,
		tempC: sp.TempC, vdd: sp.Vdd,
		sTempC: sp.TempC, sVdd: sp.Vdd,
	}
	if sp.Phase == PhaseSleepName {
		m.phase = phaseSleep
	}
	p.meta = append(p.meta, m)
	p.attach(i, classKey{phase: m.phase, tempC: m.tempC, vdd: m.vdd})
	if sp.Schedule != nil {
		p.applySchedule(i, *sp.Schedule)
	}
	return nil
}

// remove drops a chip by swapping the partition's last chip into its
// slot — O(1) in fleet size.
func (p *partition) remove(id string) bool {
	i, ok := p.index[id]
	if !ok {
		return false
	}
	p.mutableIDs()
	last := p.batch.Len() - 1
	p.detach(i)
	if i != last {
		// Move the last chip into slot i everywhere its index appears.
		p.batch.Swap(i, last)
		p.odo[i] = p.odo[last]
		p.meta[i] = p.meta[last]
		p.ids[i] = p.ids[last]
		p.index[p.ids[i]] = i
		c := p.classes[p.meta[i].classID]
		c.idx[p.meta[i].classPos] = i
	}
	p.batch.Truncate(last)
	p.odo = p.odo[:last]
	p.meta = p.meta[:last]
	p.ids = p.ids[:last]
	delete(p.index, id)
	// Stale wheel items for either chip id resolve through p.index on
	// fire, so the swap needs no wheel surgery; the removed id simply
	// stops resolving.
	return true
}

// setCondition applies an OpEngineSet: the chip's current phase,
// condition, and duty.
func (p *partition) setCondition(params td.Params, id string, c Cond) error {
	i, ok := p.index[id]
	if !ok {
		return NotFoundError{ID: id}
	}
	if err := p.batch.SetDuty(params, i, c.Duty); err != nil {
		return err
	}
	m := &p.meta[i]
	m.phase = phaseStress
	if c.Phase == PhaseSleepName {
		m.phase = phaseSleep
	}
	m.tempC, m.vdd = c.TempC, c.Vdd
	if m.phase == phaseStress {
		m.sTempC, m.sVdd = c.TempC, c.Vdd
	}
	p.moveClass(i, classKey{phase: m.phase, tempC: m.tempC, vdd: m.vdd})
	return nil
}

// setSchedule applies an OpEngineSchedule: a circadian stress/sleep
// cycle (both epoch counts > 0) or, with both zero, cancels the cycle.
func (p *partition) setSchedule(id string, s Schedule) error {
	i, ok := p.index[id]
	if !ok {
		return NotFoundError{ID: id}
	}
	p.applySchedule(i, s)
	return nil
}

func (p *partition) applySchedule(i int, s Schedule) {
	m := &p.meta[i]
	m.sched = s
	m.schedGen++
	if s.StressEpochs == 0 && s.SleepEpochs == 0 {
		return // cancelled; outstanding wheel items are now stale
	}
	span := s.StressEpochs
	if m.phase == phaseSleep {
		span = s.SleepEpochs
	}
	p.wheel.schedule(m.id, m.schedGen, p.wheel.current+span)
}

// fire is the wheel callback: flip the chip to its other scheduled
// phase and book the next transition.
func (p *partition) fire(id string, gen uint32) {
	i, ok := p.index[id]
	if !ok {
		return // chip removed since scheduling
	}
	m := &p.meta[i]
	if m.schedGen != gen {
		return // schedule replaced or cancelled since scheduling
	}
	var span uint64
	if m.phase == phaseStress {
		m.phase = phaseSleep
		m.tempC, m.vdd = m.sched.SleepTempC, m.sched.SleepVdd
		span = m.sched.SleepEpochs
	} else {
		m.phase = phaseStress
		m.tempC, m.vdd = m.sTempC, m.sVdd
		span = m.sched.StressEpochs
	}
	p.moveClass(i, classKey{phase: m.phase, tempC: m.tempC, vdd: m.vdd})
	p.wheel.schedule(id, gen, p.wheel.current+span)
}

// tdClass renders one condition class as a td.Class. Sleep voltages
// follow the fleet convention: Vdd < 0 is a reverse-biased rail
// (VRev = −Vdd); Vdd ≥ 0 sleeps as plain power gating (VRev = 0).
func tdClass(key classKey, idx []int) td.Class {
	if key.phase == phaseStress {
		return td.Class{
			Stress: true,
			SCond: td.StressCond{
				V: units.Volt(key.vdd),
				T: units.Celsius(key.tempC).Kelvin(),
			},
			Idx: idx,
		}
	}
	var vrev units.Volt
	if key.vdd < 0 {
		vrev = units.Volt(-key.vdd)
	}
	return td.Class{
		RCond: td.RecoveryCond{
			VRev: vrev,
			T:    units.Celsius(key.tempC).Kelvin(),
		},
		Idx: idx,
	}
}

// advance steps the partition one epoch of dt simulated time: fire the
// wheel's due transitions, advance every condition class through the
// vectorized batch path, and tick the stress odometers.
func (p *partition) advance(params td.Params, dt units.Seconds) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wheel.step(p.fire)
	cs := p.tdScratch[:0]
	for _, c := range p.classes {
		if len(c.idx) == 0 {
			continue
		}
		cs = append(cs, tdClass(c.key, c.idx))
	}
	p.tdScratch = cs[:0]
	if err := td.AdvanceBatch(params, p.batch, dt, cs); err != nil {
		return err
	}
	for _, c := range p.classes {
		if c.key.phase != phaseStress {
			continue
		}
		for _, i := range c.idx {
			p.odo[i]++
		}
	}
	return nil
}

// len reports the partition's chip count (callers hold mu or are
// single-threaded during replay).
func (p *partition) size() int { return p.batch.Len() }
