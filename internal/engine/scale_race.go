//go:build race

package engine

// Reduced acceptance-test scale for the race-instrumented build; the
// full 100k × 1000 criterion runs in scale_norace.go builds.
const (
	acceptChips  = 4096
	acceptEpochs = 64
)
