package engine

import (
	"sort"
	"time"

	"selfheal/internal/store"
)

// Snapshot is one immutable per-epoch view of the whole fleet,
// published by atomic pointer swap after every tick (and after
// membership-changing events, so a registration is readable without
// waiting for the next epoch). Readers share it wait-free; all
// partitions in one snapshot are at the same epoch.
type Snapshot struct {
	Epoch    uint64
	SimHours float64
	Chips    int
	Taken    time.Time
	Parts    [store.ShardCount]PartView
}

// PartView is one partition's slice of a snapshot. IDs and Index are
// shared copy-on-write with the live partition (cloned only when
// membership changes); the per-chip state arrays are copied fresh each
// publication.
type PartView struct {
	IDs   []string
	Index map[string]int
	Vth   []float64
	Odo   []uint64
	Phase []uint8
	Duty  []float64
}

// ChipView is one chip's state as of a snapshot's epoch.
type ChipView struct {
	ID       string  `json:"id"`
	Epoch    uint64  `json:"epoch"`
	SimHours float64 `json:"sim_hours"`
	VthShift float64 `json:"vth_shift_v"`
	Odometer uint64  `json:"odometer_epochs"`
	Phase    string  `json:"phase"`
	Duty     float64 `json:"duty"`
}

func phaseName(p uint8) string {
	if p == phaseSleep {
		return PhaseSleepName
	}
	return PhaseStressName
}

// Chip looks one chip up by id.
func (s *Snapshot) Chip(id string) (ChipView, bool) {
	pv := &s.Parts[store.ShardOf(id)]
	i, ok := pv.Index[id]
	if !ok || i >= len(pv.Vth) {
		return ChipView{}, false
	}
	return ChipView{
		ID: id, Epoch: s.Epoch, SimHours: s.SimHours,
		VthShift: pv.Vth[i], Odometer: pv.Odo[i],
		Phase: phaseName(pv.Phase[i]), Duty: pv.Duty[i],
	}, true
}

// Has reports whether id is registered as of this snapshot.
func (s *Snapshot) Has(id string) bool {
	_, ok := s.Parts[store.ShardOf(id)].Index[id]
	return ok
}

// TopByOdometer returns the k most-aged chips (by stress-epoch
// odometer, ties broken by id for determinism) — the cardinality cap
// the Prometheus exposition uses instead of emitting every chip.
func (s *Snapshot) TopByOdometer(k int) []ChipView {
	if k <= 0 {
		return nil
	}
	top := make([]ChipView, 0, k+1)
	worse := func(a, b ChipView) bool { // a ranks below b
		if a.Odometer != b.Odometer {
			return a.Odometer < b.Odometer
		}
		return a.ID > b.ID
	}
	for pi := range s.Parts {
		pv := &s.Parts[pi]
		for i, id := range pv.IDs {
			cv := ChipView{
				ID: id, Epoch: s.Epoch, SimHours: s.SimHours,
				VthShift: pv.Vth[i], Odometer: pv.Odo[i],
				Phase: phaseName(pv.Phase[i]), Duty: pv.Duty[i],
			}
			if len(top) == k && !worse(top[k-1], cv) {
				continue
			}
			pos := sort.Search(len(top), func(j int) bool { return worse(top[j], cv) })
			top = append(top, ChipView{})
			copy(top[pos+1:], top[pos:])
			top[pos] = cv
			if len(top) > k {
				top = top[:k]
			}
		}
	}
	return top
}

// publishSnapshotLocked builds and publishes a fresh snapshot. Callers
// hold tickMu; partition locks are taken one at a time (tick → part,
// the engine's lock order).
func (e *Engine) publishSnapshotLocked() {
	s := &Snapshot{Epoch: e.epoch, SimHours: e.simHours, Taken: time.Now()}
	total := 0
	for pi, p := range e.parts {
		p.mu.Lock()
		n := p.batch.Len()
		pv := PartView{
			IDs:   p.ids,
			Index: p.index,
			Vth:   make([]float64, n),
			Odo:   make([]uint64, n),
			Phase: make([]uint8, n),
			Duty:  make([]float64, n),
		}
		p.shared = true // next membership change clones before mutating
		p.batch.CopyVth(pv.Vth)
		copy(pv.Odo, p.odo)
		for i := 0; i < n; i++ {
			pv.Phase[i] = p.meta[i].phase
			pv.Duty[i] = p.batch.Duty(i)
		}
		p.mu.Unlock()
		s.Parts[pi] = pv
		total += n
	}
	s.Chips = total
	e.chips.Store(int64(total))
	e.snap.Store(s)
}
