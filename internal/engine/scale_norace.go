//go:build !race

package engine

// Acceptance-test scale. The race detector multiplies both memory and
// time by an order of magnitude, so the raced build (scale_race.go)
// runs the same scenario at reduced scale; the issue's full
// 100k-chip × 1000-epoch criterion runs in the regular build.
const (
	acceptChips  = 100_000
	acceptEpochs = 1000
)
