package engine

import (
	"context"
	"fmt"

	"selfheal/internal/store"
	"selfheal/internal/td"
	"selfheal/internal/units"
)

// Event kinds. Mutations are enqueued as events and applied by the
// pump goroutine under the tick lock, so they land between epochs —
// never in the middle of one — and their journal records always
// follow the flush of any epochs they were preceded by.
type eventKind uint8

const (
	evRegister eventKind = iota
	evRemove
	evSet
	evSchedule
	evSetBatch
	evScheduleBatch
	evSync
)

type event struct {
	kind  eventKind
	specs []Spec // register additions
	id    string
	force bool // fleet-driven removal: no commit, fleet-backed allowed
	cond  Cond
	sched Schedule
	conds []CondChange  // evSetBatch payload
	schs  []SchedChange // evScheduleBatch payload
	// Sync payload: the fleet's full id list (ordered, plus a set for
	// membership tests) and the default spec for missing chips. The
	// pump computes additions/removals itself, under the tick lock.
	ids  []string
	have map[string]bool
	def  Spec
	done chan eventOut
}

type eventOut struct {
	err  error
	regs []RegResult
}

// enqueue submits one event and waits for the pump's verdict.
func (e *Engine) enqueue(ev *event) (eventOut, error) {
	ev.done = make(chan eventOut, 1)
	select {
	case e.events <- ev:
	case <-e.closedc:
		return eventOut{}, ErrClosed
	}
	select {
	case out := <-ev.done:
		return out, out.err
	case <-e.closedc:
		return eventOut{}, ErrClosed
	}
}

// pump is the single event consumer: it drains whatever is queued,
// takes the tick lock once for the batch, flushes pending epochs so
// journal order matches application order, and applies each event.
func (e *Engine) pump() {
	defer e.wg.Done()
	for {
		var first *event
		select {
		case <-e.closedc:
			return
		case first = <-e.events:
		}
		batch := []*event{first}
	drain:
		for len(batch) < 256 {
			select {
			case ev := <-e.events:
				batch = append(batch, ev)
			default:
				break drain
			}
		}
		e.processBatch(batch)
	}
}

func (e *Engine) processBatch(batch []*event) {
	ctx := context.Background()
	e.tickMu.Lock()
	// Invariant: epoch records precede any event record committed now.
	flushErr := e.flushLocked(ctx)
	outs := make([]eventOut, len(batch))
	for i, ev := range batch {
		switch ev.kind {
		case evRegister:
			outs[i].regs = e.applyRegister(ctx, ev.specs, flushErr)
		case evRemove:
			outs[i].err = e.applyRemove(ctx, ev.id, ev.force, flushErr)
		case evSet:
			outs[i].err = e.applySet(ctx, ev.id, ev.cond, flushErr)
		case evSchedule:
			outs[i].err = e.applySchedule(ctx, ev.id, ev.sched, flushErr)
		case evSetBatch:
			outs[i].regs = e.applySetBatch(ctx, ev.conds, flushErr)
		case evScheduleBatch:
			outs[i].regs = e.applyScheduleBatch(ctx, ev.schs, flushErr)
		case evSync:
			outs[i].regs = e.applySync(ctx, ev, flushErr)
		}
		e.eventsApplied.Add(1)
	}
	// Republish before waking any caller, and after every applied batch,
	// so callers get read-your-writes on conditions and schedules, not
	// just membership changes.
	if len(batch) > 0 {
		e.publishSnapshotLocked()
	}
	e.tickMu.Unlock()
	for i, ev := range batch {
		ev.done <- outs[i]
	}
}

// commitMany commits records concurrently so the journal's group
// commit amortizes the fsyncs of a bulk registration. Returns one
// error slot per record. No-op (all nil) on a non-durable journal.
func (e *Engine) commitMany(ctx context.Context, recs []store.Record) []error {
	errs := make([]error, len(recs))
	if !e.j.Durable() || len(recs) == 0 {
		return errs
	}
	workers := 32
	if workers > len(recs) {
		workers = len(recs)
	}
	if workers == 1 {
		errs[0] = e.j.Commit(ctx, recs[0])
		return errs
	}
	idx := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for i := range idx {
				errs[i] = e.j.Commit(ctx, recs[i])
			}
			done <- struct{}{}
		}()
	}
	for i := range recs {
		idx <- i
	}
	close(idx)
	for w := 0; w < workers; w++ {
		<-done
	}
	return errs
}

// normalizeSpec fills Spec defaults and validates the condition
// through the same constructors the hot path uses, so a registration
// that validates can never poison an epoch advance later.
func (e *Engine) normalizeSpec(sp Spec) (Spec, error) {
	if sp.ID == "" {
		return sp, fmt.Errorf("engine: registration needs an id")
	}
	switch sp.Phase {
	case "":
		sp.Phase = PhaseStressName
	case PhaseStressName, PhaseSleepName:
	default:
		return sp, fmt.Errorf("engine: chip %q: unknown phase %q (want %q or %q)",
			sp.ID, sp.Phase, PhaseStressName, PhaseSleepName)
	}
	if err := e.validateCond(sp.Phase, sp.TempC, sp.Vdd); err != nil {
		return sp, fmt.Errorf("engine: chip %q: %w", sp.ID, err)
	}
	if sp.Schedule != nil {
		if err := e.validateSchedule(*sp.Schedule); err != nil {
			return sp, fmt.Errorf("engine: chip %q: %w", sp.ID, err)
		}
		if sp.Schedule.StressEpochs == 0 && sp.Schedule.SleepEpochs == 0 {
			sp.Schedule = nil
		}
	}
	return sp, nil
}

// validateCond checks one (phase, temp, vdd) condition by building the
// corresponding td step.
func (e *Engine) validateCond(phase string, tempC, vdd float64) error {
	key := classKey{tempC: tempC, vdd: vdd}
	if phase == PhaseSleepName {
		key.phase = phaseSleep
	}
	c := tdClass(key, nil)
	var err error
	if c.Stress {
		_, err = td.NewStressStep(e.params, c.SCond, units.Seconds(1))
	} else {
		_, err = td.NewRecoverStep(e.params, c.RCond, units.Seconds(1))
	}
	return err
}

func (e *Engine) validateSchedule(s Schedule) error {
	if (s.StressEpochs == 0) != (s.SleepEpochs == 0) {
		return fmt.Errorf("engine: schedule needs both phase lengths (got stress=%d sleep=%d epochs)",
			s.StressEpochs, s.SleepEpochs)
	}
	if s.StressEpochs == 0 {
		return nil // cancellation
	}
	return e.validateCond(PhaseSleepName, s.SleepTempC, s.SleepVdd)
}

func regRecord(sp Spec) store.Record {
	rec := store.Record{
		Op: store.OpEngineReg, ID: sp.ID, Kind: sp.Kind, Phase: sp.Phase,
		TempC: sp.TempC, Vdd: sp.Vdd, Duty: sp.Duty,
	}
	if sp.Schedule != nil {
		rec.StressEpochs = sp.Schedule.StressEpochs
		rec.SleepEpochs = sp.Schedule.SleepEpochs
		rec.SleepTempC = sp.Schedule.SleepTempC
		rec.SleepVdd = sp.Schedule.SleepVdd
	}
	return rec
}

// applyRegister validates, commits, and applies a batch of
// registrations. Items fail independently; an item is applied only
// after its record is durable, so an acked registration survives a
// hard stop.
func (e *Engine) applyRegister(ctx context.Context, specs []Spec, flushErr error) []RegResult {
	results := make([]RegResult, len(specs))
	norm := make([]Spec, len(specs))
	commitIdx := make([]int, 0, len(specs))
	recs := make([]store.Record, 0, len(specs))
	inBatch := make(map[string]bool, len(specs))
	for i, sp := range specs {
		results[i].ID = sp.ID
		nsp, err := e.normalizeSpec(sp)
		if err != nil {
			results[i].Err = err
			continue
		}
		if inBatch[nsp.ID] {
			results[i].Err = fmt.Errorf("engine: chip %q appears twice in the batch", nsp.ID)
			continue
		}
		if _, taken := e.partFor(nsp.ID).index[nsp.ID]; taken {
			results[i].Err = DuplicateError{ID: nsp.ID}
			continue
		}
		if flushErr != nil {
			// The epoch window could not be journaled; committing this
			// registration would misorder replay. Fail it retryably.
			results[i].Err = fmt.Errorf("engine: register %q: journal degraded: %w", nsp.ID, flushErr)
			continue
		}
		inBatch[nsp.ID] = true
		norm[i] = nsp
		commitIdx = append(commitIdx, i)
		recs = append(recs, regRecord(nsp))
	}
	errs := e.commitMany(ctx, recs)
	for k, i := range commitIdx {
		if errs[k] != nil {
			e.commitErrors.Add(1)
			results[i].Err = fmt.Errorf("engine: register %q could not be committed: %w", norm[i].ID, errs[k])
			continue
		}
		p := e.partFor(norm[i].ID)
		p.mu.Lock()
		err := p.register(e.params, norm[i])
		p.mu.Unlock()
		if err != nil {
			results[i].Err = err
			continue
		}
		e.chips.Add(1)
	}
	return results
}

func (e *Engine) applyRemove(ctx context.Context, id string, force bool, flushErr error) error {
	p := e.partFor(id)
	i, ok := p.index[id]
	if !ok {
		return NotFoundError{ID: id}
	}
	if p.meta[i].fleet && !force {
		return fmt.Errorf("engine: chip %q is fleet-backed; delete it through the fleet API", id)
	}
	if !force && e.j.Durable() {
		if flushErr != nil {
			return fmt.Errorf("engine: remove %q: journal degraded: %w", id, flushErr)
		}
		if err := e.j.Commit(ctx, store.Record{Op: store.OpEngineRemove, ID: id}); err != nil {
			e.commitErrors.Add(1)
			return fmt.Errorf("engine: remove %q could not be committed: %w", id, err)
		}
	}
	p.mu.Lock()
	removed := p.remove(id)
	p.mu.Unlock()
	if removed {
		e.chips.Add(-1)
	}
	return nil
}

func (e *Engine) applySet(ctx context.Context, id string, c Cond, flushErr error) error {
	return e.applySetBatch(ctx, []CondChange{{ID: id, Cond: c}}, flushErr)[0].Err
}

// applySetBatch validates, commits, and applies a batch of condition
// changes. Items fail independently; like registration, an item is
// applied only after its record is durable, and commitMany lets the
// journal's group commit amortize the fsyncs — the guard changes whole
// victim sets per epoch through this path.
func (e *Engine) applySetBatch(ctx context.Context, changes []CondChange, flushErr error) []RegResult {
	results := make([]RegResult, len(changes))
	norm := make([]Cond, len(changes))
	commitIdx := make([]int, 0, len(changes))
	recs := make([]store.Record, 0, len(changes))
	for i, ch := range changes {
		results[i].ID = ch.ID
		c := ch.Cond
		switch c.Phase {
		case "":
			c.Phase = PhaseStressName
		case PhaseStressName, PhaseSleepName:
		default:
			results[i].Err = fmt.Errorf("engine: unknown phase %q", c.Phase)
			continue
		}
		if err := e.validateCond(c.Phase, c.TempC, c.Vdd); err != nil {
			results[i].Err = fmt.Errorf("engine: chip %q: %w", ch.ID, err)
			continue
		}
		if _, ok := e.partFor(ch.ID).index[ch.ID]; !ok {
			results[i].Err = NotFoundError{ID: ch.ID}
			continue
		}
		if e.j.Durable() && flushErr != nil {
			results[i].Err = fmt.Errorf("engine: set %q: journal degraded: %w", ch.ID, flushErr)
			continue
		}
		norm[i] = c
		commitIdx = append(commitIdx, i)
		recs = append(recs, store.Record{
			Op: store.OpEngineSet, ID: ch.ID, Phase: c.Phase,
			TempC: c.TempC, Vdd: c.Vdd, Duty: c.Duty,
		})
	}
	errs := e.commitMany(ctx, recs)
	for k, i := range commitIdx {
		if errs[k] != nil {
			e.commitErrors.Add(1)
			results[i].Err = fmt.Errorf("engine: set %q could not be committed: %w", changes[i].ID, errs[k])
			continue
		}
		p := e.partFor(changes[i].ID)
		p.mu.Lock()
		results[i].Err = p.setCondition(e.params, changes[i].ID, norm[i])
		p.mu.Unlock()
	}
	return results
}

func (e *Engine) applySchedule(ctx context.Context, id string, s Schedule, flushErr error) error {
	return e.applyScheduleBatch(ctx, []SchedChange{{ID: id, Schedule: s}}, flushErr)[0].Err
}

// applyScheduleBatch is applySetBatch for schedule changes (including
// cancellations: both epoch counts zero).
func (e *Engine) applyScheduleBatch(ctx context.Context, changes []SchedChange, flushErr error) []RegResult {
	results := make([]RegResult, len(changes))
	commitIdx := make([]int, 0, len(changes))
	recs := make([]store.Record, 0, len(changes))
	for i, ch := range changes {
		results[i].ID = ch.ID
		if err := e.validateSchedule(ch.Schedule); err != nil {
			results[i].Err = err
			continue
		}
		if _, ok := e.partFor(ch.ID).index[ch.ID]; !ok {
			results[i].Err = NotFoundError{ID: ch.ID}
			continue
		}
		if e.j.Durable() && flushErr != nil {
			results[i].Err = fmt.Errorf("engine: schedule %q: journal degraded: %w", ch.ID, flushErr)
			continue
		}
		commitIdx = append(commitIdx, i)
		recs = append(recs, store.Record{
			Op: store.OpEngineSchedule, ID: ch.ID,
			StressEpochs: ch.Schedule.StressEpochs, SleepEpochs: ch.Schedule.SleepEpochs,
			SleepTempC: ch.Schedule.SleepTempC, SleepVdd: ch.Schedule.SleepVdd,
		})
	}
	errs := e.commitMany(ctx, recs)
	for k, i := range commitIdx {
		if errs[k] != nil {
			e.commitErrors.Add(1)
			results[i].Err = fmt.Errorf("engine: schedule %q could not be committed: %w", changes[i].ID, errs[k])
			continue
		}
		p := e.partFor(changes[i].ID)
		p.mu.Lock()
		results[i].Err = p.setSchedule(changes[i].ID, changes[i].Schedule)
		p.mu.Unlock()
	}
	return results
}

// RegisterBatch registers chips with the engine. Results are
// per-item; an item whose result has a nil Err is durably registered
// (its record was fsync'd before the ack).
func (e *Engine) RegisterBatch(ctx context.Context, specs []Spec) ([]RegResult, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	out, err := e.enqueue(&event{kind: evRegister, specs: specs})
	if err != nil {
		return nil, err
	}
	return out.regs, nil
}

// Register registers one chip.
func (e *Engine) Register(ctx context.Context, sp Spec) error {
	res, err := e.RegisterBatch(ctx, []Spec{sp})
	if err != nil {
		return err
	}
	return res[0].Err
}

// Remove unregisters an engine-native chip. Fleet-backed chips refuse
// (delete them through the fleet API; see ObserveFleetDelete).
func (e *Engine) Remove(ctx context.Context, id string) error {
	_, err := e.enqueue(&event{kind: evRemove, id: id})
	return err
}

// SetCondition changes a chip's phase, condition, and duty cycle.
func (e *Engine) SetCondition(ctx context.Context, id string, c Cond) error {
	_, err := e.enqueue(&event{kind: evSet, id: id, cond: c})
	return err
}

// SetSchedule installs (or, with zero epoch counts, cancels) a chip's
// circadian stress/sleep cycle.
func (e *Engine) SetSchedule(ctx context.Context, id string, s Schedule) error {
	_, err := e.enqueue(&event{kind: evSchedule, id: id, sched: s})
	return err
}

// CondChange is one item of a SetConditionBatch.
type CondChange struct {
	ID   string
	Cond Cond
}

// SchedChange is one item of a SetScheduleBatch.
type SchedChange struct {
	ID       string
	Schedule Schedule
}

// SetConditionBatch changes many chips' conditions in one event: the
// whole batch lands between two epochs (no chip can age under a stale
// condition while its neighbours already moved), and the records share
// the journal's group commit. Results are per-item.
func (e *Engine) SetConditionBatch(ctx context.Context, changes []CondChange) ([]RegResult, error) {
	if len(changes) == 0 {
		return nil, nil
	}
	out, err := e.enqueue(&event{kind: evSetBatch, conds: changes})
	if err != nil {
		return nil, err
	}
	return out.regs, nil
}

// SetScheduleBatch installs or cancels many chips' circadian schedules
// in one event; semantics mirror SetConditionBatch.
func (e *Engine) SetScheduleBatch(ctx context.Context, changes []SchedChange) ([]RegResult, error) {
	if len(changes) == 0 {
		return nil, nil
	}
	out, err := e.enqueue(&event{kind: evScheduleBatch, schs: changes})
	if err != nil {
		return nil, err
	}
	return out.regs, nil
}

// ObserveFleetDelete removes a fleet-backed chip after the fleet
// deleted it. No engine record is committed: the fleet's delete record
// already prunes the chip's engine history on replay.
func (e *Engine) ObserveFleetDelete(ctx context.Context, id string) error {
	_, err := e.enqueue(&event{kind: evRemove, id: id, force: true})
	return err
}

// applySync reconciles engine membership with the fleet's id set
// under the tick lock: missing fleet chips register with the sync's
// default spec, and fleet-backed engine chips not in the set are
// dropped (their engine records were already pruned by the fleet
// delete's journal absorption, so no commit is needed).
func (e *Engine) applySync(ctx context.Context, ev *event, flushErr error) []RegResult {
	var specs []Spec
	for _, id := range ev.ids {
		if _, ok := e.partFor(id).index[id]; !ok {
			sp := ev.def
			sp.ID = id
			sp.Kind = KindFleet
			specs = append(specs, sp)
		}
	}
	regs := e.applyRegister(ctx, specs, flushErr)
	for _, p := range e.parts {
		var stale []string
		for i := range p.meta {
			if p.meta[i].fleet && !ev.have[p.meta[i].id] {
				stale = append(stale, p.meta[i].id)
			}
		}
		for _, id := range stale {
			p.mu.Lock()
			removed := p.remove(id)
			p.mu.Unlock()
			if removed {
				e.chips.Add(-1)
			}
		}
	}
	return regs
}

// SyncFleet reconciles engine membership with the fleet's chip set:
// fleet chips the engine does not know get registered with def's
// condition (id and kind are filled in per chip), and fleet-backed
// engine chips no longer in the fleet are dropped. The serve layer
// calls it once on startup — it covers both crash windows (a create
// acked before its engine registration committed) and fleets that
// predate the engine.
func (e *Engine) SyncFleet(ctx context.Context, fleetIDs []string, def Spec) ([]RegResult, error) {
	have := make(map[string]bool, len(fleetIDs))
	for _, id := range fleetIDs {
		have[id] = true
	}
	out, err := e.enqueue(&event{kind: evSync, ids: fleetIDs, have: have, def: def})
	if err != nil {
		return nil, err
	}
	return out.regs, nil
}
