package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestEngineAcceptance is the issue's acceptance scenario: a large
// fleet advances many epochs while concurrent readers hammer the
// snapshot path. Every read must observe one internally consistent
// epoch (monotone across reads, all per-chip arrays coherent), and a
// chip under permanent stress must end with odometer == epochs.
// Scale: acceptChips × acceptEpochs (reduced under -race, see
// scale_race.go); -short trims it further.
func TestEngineAcceptance(t *testing.T) {
	chips, epochs := acceptChips, acceptEpochs
	if testing.Short() {
		if chips > 8192 {
			chips = 8192
		}
		if epochs > 100 {
			epochs = 100
		}
	}
	ctx := context.Background()
	e := memEngine(t, Config{EpochHours: 0.5, FlushEpochs: 64})

	const regBatch = 4096
	specs := make([]Spec, 0, regBatch)
	registered := 0
	flush := func() {
		if len(specs) == 0 {
			return
		}
		res, err := e.RegisterBatch(ctx, specs)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.Err != nil {
				t.Fatalf("register %s: %v", r.ID, r.Err)
			}
		}
		registered += len(specs)
		specs = specs[:0]
	}
	for i := 0; i < chips; i++ {
		sp := Spec{ID: fmt.Sprintf("acc-%06d", i), TempC: 80, Vdd: 1.2, Duty: 1}
		switch i % 5 {
		case 1:
			sp.Duty = 0.5
		case 2:
			sp.TempC, sp.Vdd = 105, 1.32
		case 3:
			sp.Schedule = &Schedule{StressEpochs: 16, SleepEpochs: 8, SleepTempC: 40, SleepVdd: -0.3}
		case 4:
			sp.Phase = PhaseSleepName
			sp.TempC, sp.Vdd = 45, -0.25
		}
		specs = append(specs, sp)
		if len(specs) == regBatch {
			flush()
		}
	}
	flush()
	if registered != chips {
		t.Fatalf("registered %d chips, want %d", registered, chips)
	}

	stop := make(chan struct{})
	var readErr atomic.Pointer[string]
	fail := func(format string, args ...any) {
		s := fmt.Sprintf(format, args...)
		readErr.CompareAndSwap(nil, &s)
	}
	var wg sync.WaitGroup
	const readers = 4
	var reads atomic.Int64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			probe := fmt.Sprintf("acc-%06d", r) // i%5==r: phase known per spec
			var lastEpoch uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := e.Snapshot()
				if snap.Epoch < lastEpoch {
					fail("reader %d: epoch went backwards: %d after %d", r, snap.Epoch, lastEpoch)
					return
				}
				lastEpoch = snap.Epoch
				if snap.Chips != chips {
					fail("reader %d: snapshot has %d chips, want %d", r, snap.Chips, chips)
					return
				}
				for pi := range snap.Parts {
					pv := &snap.Parts[pi]
					n := len(pv.IDs)
					if len(pv.Vth) != n || len(pv.Odo) != n || len(pv.Phase) != n || len(pv.Duty) != n {
						fail("reader %d: partition %d arrays ragged: ids=%d vth=%d odo=%d phase=%d duty=%d",
							r, pi, n, len(pv.Vth), len(pv.Odo), len(pv.Phase), len(pv.Duty))
						return
					}
				}
				cv, ok := snap.Chip(probe)
				if !ok {
					fail("reader %d: probe chip %s missing", r, probe)
					return
				}
				// A chip with no schedule never changes phase; its
				// odometer is bounded by the snapshot's epoch.
				if cv.Odometer > snap.Epoch {
					fail("reader %d: chip %s odometer %d exceeds epoch %d", r, probe, cv.Odometer, snap.Epoch)
					return
				}
				reads.Add(1)
			}
		}(r)
	}

	for i := 0; i < epochs; i++ {
		e.Tick(ctx)
	}
	close(stop)
	wg.Wait()
	if s := readErr.Load(); s != nil {
		t.Fatal(*s)
	}
	if reads.Load() == 0 {
		t.Fatal("readers observed no snapshots")
	}

	snap := e.Snapshot()
	if snap.Epoch != uint64(epochs) {
		t.Fatalf("final epoch %d, want %d", snap.Epoch, epochs)
	}
	dc, _ := snap.Chip("acc-000000") // DC stress, no schedule
	if dc.Odometer != uint64(epochs) {
		t.Fatalf("DC chip odometer %d, want %d", dc.Odometer, epochs)
	}
	asleep, _ := snap.Chip("acc-000004") // registered asleep, no schedule
	if asleep.Odometer != 0 || asleep.Phase != PhaseSleepName {
		t.Fatalf("sleeping chip aged: %+v", asleep)
	}
	sched, _ := snap.Chip("acc-000003") // 16 stress / 8 sleep cycle
	if sched.Odometer == 0 || sched.Odometer >= uint64(epochs) {
		t.Fatalf("scheduled chip odometer %d, want strictly between 0 and %d", sched.Odometer, epochs)
	}
	if st := e.Stats(); st.AdvanceError != "" {
		t.Fatalf("advance error: %s", st.AdvanceError)
	}
}

// TestEngineHammer drives mutations, ticks, and snapshot reads from
// many goroutines at once — primarily a race-detector workload.
func TestEngineHammer(t *testing.T) {
	ctx := context.Background()
	e := memEngine(t, Config{EpochHours: 0.5, Workers: 4})
	const (
		workers = 8
		rounds  = 40
	)
	res, err := e.RegisterBatch(ctx, []Spec{
		{ID: "base-0", TempC: 80, Vdd: 1.2, Duty: 1},
		{ID: "base-1", TempC: 90, Vdd: 1.25, Duty: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}

	var mutWg, loopWg sync.WaitGroup
	for w := 0; w < workers; w++ {
		mutWg.Add(1)
		go func(w int) {
			defer mutWg.Done()
			for i := 0; i < rounds; i++ {
				id := fmt.Sprintf("h-%d-%d", w, i)
				if err := e.Register(ctx, Spec{ID: id, TempC: 80, Vdd: 1.2, Duty: 1}); err != nil {
					t.Errorf("register %s: %v", id, err)
					return
				}
				switch i % 4 {
				case 0:
					if err := e.SetCondition(ctx, id, Cond{Phase: PhaseSleepName, TempC: 40, Vdd: -0.3, Duty: 1}); err != nil {
						t.Errorf("set %s: %v", id, err)
						return
					}
				case 1:
					if err := e.SetSchedule(ctx, id, Schedule{StressEpochs: 2, SleepEpochs: 2, SleepTempC: 30, SleepVdd: 0}); err != nil {
						t.Errorf("schedule %s: %v", id, err)
						return
					}
				case 2:
					if err := e.Remove(ctx, id); err != nil {
						t.Errorf("remove %s: %v", id, err)
						return
					}
				}
				_ = e.Snapshot().Has(id)
				_ = e.Stats()
			}
		}(w)
	}
	loopWg.Add(2)
	stop := make(chan struct{})
	go func() {
		defer loopWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.Tick(ctx)
			}
		}
	}()
	go func() {
		defer loopWg.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := e.Snapshot()
			if snap.Epoch < last {
				t.Errorf("epoch went backwards: %d after %d", snap.Epoch, last)
				return
			}
			last = snap.Epoch
			_ = snap.TopByOdometer(5)
		}
	}()

	// Let the mutators run their course under the churning tick and
	// read loops, then shut the loops down.
	mutWg.Wait()
	close(stop)
	loopWg.Wait()

	if st := e.Stats(); st.AdvanceError != "" {
		t.Fatalf("advance error: %s", st.AdvanceError)
	}
	want := 2 + workers*rounds - workers*rounds/4
	if snap := e.Snapshot(); snap.Chips != want {
		t.Fatalf("final fleet size %d, want %d", snap.Chips, want)
	}
}
