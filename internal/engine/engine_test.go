package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"selfheal/internal/store"
	"selfheal/internal/td"
	"selfheal/internal/units"
)

func memEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(store.NewMem[any](), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// mirrorChip replays the engine's per-chip semantics through the
// scalar td model: the same wheel transition rule (a schedule booked at
// epoch E fires at the start of epoch E+span) and the same sleep
// voltage convention.
type mirrorChip struct {
	st           td.State
	phase        uint8
	tempC, vdd   float64
	sTempC, sVdd float64
	duty         float64
	sched        Schedule
	nextFire     uint64
	odo          uint64
}

func newMirror(sp Spec) *mirrorChip {
	m := &mirrorChip{
		tempC: sp.TempC, vdd: sp.Vdd,
		sTempC: sp.TempC, sVdd: sp.Vdd,
		duty: sp.Duty,
	}
	if sp.Phase == PhaseSleepName {
		m.phase = phaseSleep
	}
	if sp.Schedule != nil {
		m.sched = *sp.Schedule
		span := m.sched.StressEpochs
		if m.phase == phaseSleep {
			span = m.sched.SleepEpochs
		}
		m.nextFire = span
	}
	return m
}

// advance steps the mirror through engine epoch number `epoch`
// (1-based) of dt simulated seconds.
func (m *mirrorChip) advance(p td.Params, epoch uint64, dt units.Seconds) {
	if m.nextFire != 0 && epoch >= m.nextFire {
		if m.phase == phaseStress {
			m.phase = phaseSleep
			m.tempC, m.vdd = m.sched.SleepTempC, m.sched.SleepVdd
			m.nextFire = epoch + m.sched.SleepEpochs
		} else {
			m.phase = phaseStress
			m.tempC, m.vdd = m.sTempC, m.sVdd
			m.nextFire = epoch + m.sched.StressEpochs
		}
	}
	if m.phase == phaseStress {
		m.st.Stress(p, td.StressCond{
			V:    units.Volt(m.vdd),
			T:    units.Celsius(m.tempC).Kelvin(),
			Duty: m.duty,
		}, dt)
		m.odo++
		return
	}
	var vrev units.Volt
	if m.vdd < 0 {
		vrev = units.Volt(-m.vdd)
	}
	m.st.Recover(p, td.RecoveryCond{
		VRev: vrev,
		T:    units.Celsius(m.tempC).Kelvin(),
	}, dt)
}

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*math.Max(scale, 1)
}

// TestEngineMatchesScalar drives a mixed fleet — DC stress, AC stress,
// sleeping chips, circadian schedules, a mid-run condition change —
// and checks every chip against the scalar model after each epoch.
func TestEngineMatchesScalar(t *testing.T) {
	ctx := context.Background()
	e := memEngine(t, Config{EpochHours: 0.25, Workers: 4})
	p := td.DefaultParams()
	dt := units.HoursToSeconds(0.25)

	specs := []Spec{
		{ID: "dc-hot", TempC: 105, Vdd: 1.32, Duty: 1},
		{ID: "ac-half", TempC: 80, Vdd: 1.2, Duty: 0.5},
		{ID: "idle", TempC: 60, Vdd: 1.1, Duty: 0},
		{ID: "asleep-rev", Phase: PhaseSleepName, TempC: 45, Vdd: -0.3, Duty: 1},
		{ID: "asleep-gated", Phase: PhaseSleepName, TempC: 45, Vdd: 0, Duty: 0.7},
		{ID: "circadian", TempC: 95, Vdd: 1.25, Duty: 0.8,
			Schedule: &Schedule{StressEpochs: 3, SleepEpochs: 2, SleepTempC: 40, SleepVdd: -0.25}},
		{ID: "long-cycle", TempC: 85, Vdd: 1.15, Duty: 1,
			Schedule: &Schedule{StressEpochs: 7, SleepEpochs: 5, SleepTempC: 30, SleepVdd: 0}},
	}
	res, err := e.RegisterBatch(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	mirrors := make(map[string]*mirrorChip, len(specs))
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("register %s: %v", r.ID, r.Err)
		}
		mirrors[r.ID] = newMirror(specs[i])
	}

	check := func(epoch uint64) {
		t.Helper()
		snap := e.Snapshot()
		if snap.Epoch != epoch {
			t.Fatalf("snapshot epoch %d, want %d", snap.Epoch, epoch)
		}
		for id, m := range mirrors {
			cv, ok := snap.Chip(id)
			if !ok {
				t.Fatalf("epoch %d: chip %s missing from snapshot", epoch, id)
			}
			if !relClose(cv.VthShift, m.st.Vth(), 1e-12) {
				t.Fatalf("epoch %d chip %s: engine Vth %.17g, scalar %.17g", epoch, id, cv.VthShift, m.st.Vth())
			}
			if cv.Odometer != m.odo {
				t.Fatalf("epoch %d chip %s: odometer %d, scalar %d", epoch, id, cv.Odometer, m.odo)
			}
			if wantPhase := phaseName(m.phase); cv.Phase != wantPhase {
				t.Fatalf("epoch %d chip %s: phase %s, scalar %s", epoch, id, cv.Phase, wantPhase)
			}
		}
	}

	var epoch uint64
	tick := func(n int) {
		for i := 0; i < n; i++ {
			e.Tick(ctx)
			epoch++
			for _, m := range mirrors {
				m.advance(p, epoch, dt)
			}
			check(epoch)
		}
	}

	tick(13)

	// Flip the DC chip into reverse-biased sleep mid-run.
	if err := e.SetCondition(ctx, "dc-hot", Cond{Phase: PhaseSleepName, TempC: 35, Vdd: -0.4, Duty: 1}); err != nil {
		t.Fatal(err)
	}
	m := mirrors["dc-hot"]
	m.phase, m.tempC, m.vdd = phaseSleep, 35, -0.4

	// Re-deal the circadian chip's cycle; its wheel item goes stale.
	if err := e.SetSchedule(ctx, "circadian", Schedule{StressEpochs: 2, SleepEpochs: 4, SleepTempC: 25, SleepVdd: -0.1}); err != nil {
		t.Fatal(err)
	}
	mc := mirrors["circadian"]
	mc.sched = Schedule{StressEpochs: 2, SleepEpochs: 4, SleepTempC: 25, SleepVdd: -0.1}
	span := mc.sched.StressEpochs
	if mc.phase == phaseSleep {
		span = mc.sched.SleepEpochs
	}
	mc.nextFire = epoch + span

	tick(17)

	if st := e.Stats(); st.Epoch != epoch || st.TicksTotal != epoch || st.Chips != len(specs) {
		t.Fatalf("stats = %+v, want epoch/ticks %d, chips %d", st, epoch, len(specs))
	}
}

func TestEngineReadYourWrites(t *testing.T) {
	ctx := context.Background()
	e := memEngine(t, Config{})
	if err := e.Register(ctx, Spec{ID: "r1", TempC: 80, Vdd: 1.2, Duty: 1}); err != nil {
		t.Fatal(err)
	}
	// Visible in the snapshot immediately, without waiting for a tick.
	if !e.Snapshot().Has("r1") {
		t.Fatal("registered chip not visible in snapshot before first tick")
	}
	if err := e.Remove(ctx, "r1"); err != nil {
		t.Fatal(err)
	}
	if e.Snapshot().Has("r1") {
		t.Fatal("removed chip still visible in snapshot")
	}
}

func TestEngineEventValidation(t *testing.T) {
	ctx := context.Background()
	e := memEngine(t, Config{})
	if err := e.Register(ctx, Spec{ID: "v1", TempC: 80, Vdd: 1.2, Duty: 1}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		err  error
		want string
	}{
		{"dup-register", e.Register(ctx, Spec{ID: "v1", TempC: 80, Vdd: 1.2, Duty: 1}), "already registered"},
		{"empty-id", e.Register(ctx, Spec{TempC: 80, Vdd: 1.2}), "needs an id"},
		{"bad-phase", e.Register(ctx, Spec{ID: "v2", Phase: "hibernate", TempC: 80, Vdd: 1.2}), "unknown phase"},
		{"nan-temp", e.Register(ctx, Spec{ID: "v3", TempC: math.NaN(), Vdd: 1.2}), ""},
		{"nan-duty", e.Register(ctx, Spec{ID: "v4", TempC: 80, Vdd: 1.2, Duty: math.NaN()}), ""},
		{"inf-vdd", e.Register(ctx, Spec{ID: "v5", TempC: 80, Vdd: math.Inf(1), Duty: 1}), ""},
		{"bad-sleep-cond", e.Register(ctx, Spec{ID: "v6", TempC: 80, Vdd: 1.2, Duty: 1,
			Schedule: &Schedule{StressEpochs: 2, SleepEpochs: 2, SleepTempC: math.Inf(-1)}}), ""},
		{"one-sided-schedule", e.Register(ctx, Spec{ID: "v7", TempC: 80, Vdd: 1.2, Duty: 1,
			Schedule: &Schedule{StressEpochs: 5}}), "both phase lengths"},
		{"set-unknown-chip", e.SetCondition(ctx, "ghost", Cond{TempC: 80, Vdd: 1.2, Duty: 1}), "no chip"},
		{"set-bad-phase", e.SetCondition(ctx, "v1", Cond{Phase: "off", TempC: 80, Vdd: 1.2}), "unknown phase"},
		{"sched-unknown-chip", e.SetSchedule(ctx, "ghost", Schedule{StressEpochs: 1, SleepEpochs: 1}), "no chip"},
		{"remove-unknown", e.Remove(ctx, "ghost"), "no chip"},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
		if tc.want != "" && !strings.Contains(tc.err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, tc.err, tc.want)
		}
	}

	// None of the rejected registrations may have landed.
	for _, id := range []string{"v2", "v3", "v4", "v5", "v6", "v7"} {
		if e.Snapshot().Has(id) {
			t.Fatalf("rejected registration %s is visible", id)
		}
	}

	// A zero schedule is a valid cancellation, not a one-sided error.
	if err := e.SetSchedule(ctx, "v1", Schedule{}); err != nil {
		t.Fatalf("cancelling schedule: %v", err)
	}
}

func TestEngineFleetBackedLifecycle(t *testing.T) {
	ctx := context.Background()
	e := memEngine(t, Config{})
	if err := e.Register(ctx, Spec{ID: "fb", Kind: KindFleet, TempC: 80, Vdd: 1.2, Duty: 1}); err != nil {
		t.Fatal(err)
	}
	err := e.Remove(ctx, "fb")
	if err == nil || !strings.Contains(err.Error(), "fleet") {
		t.Fatalf("removing fleet-backed chip: err = %v, want fleet-backed refusal", err)
	}
	if err := e.ObserveFleetDelete(ctx, "fb"); err != nil {
		t.Fatal(err)
	}
	if e.Snapshot().Has("fb") {
		t.Fatal("fleet-backed chip still visible after ObserveFleetDelete")
	}
}

func TestEngineSyncFleet(t *testing.T) {
	ctx := context.Background()
	e := memEngine(t, Config{})
	if err := e.Register(ctx, Spec{ID: "native", TempC: 70, Vdd: 1.1, Duty: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(ctx, Spec{ID: "fleet-stale", Kind: KindFleet, TempC: 80, Vdd: 1.2, Duty: 1}); err != nil {
		t.Fatal(err)
	}
	def := Spec{TempC: 80, Vdd: 1.2, Duty: 1}
	regs, err := e.SyncFleet(ctx, []string{"fleet-a", "fleet-b"}, def)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("sync registered %d chips, want 2", len(regs))
	}
	for _, r := range regs {
		if r.Err != nil {
			t.Fatalf("sync register %s: %v", r.ID, r.Err)
		}
	}
	snap := e.Snapshot()
	for _, id := range []string{"native", "fleet-a", "fleet-b"} {
		if !snap.Has(id) {
			t.Fatalf("chip %s missing after sync", id)
		}
	}
	if snap.Has("fleet-stale") {
		t.Fatal("stale fleet-backed chip survived sync")
	}
	// A second sync with the same set is a no-op.
	regs, err = e.SyncFleet(ctx, []string{"fleet-a", "fleet-b"}, def)
	if err != nil || len(regs) != 0 {
		t.Fatalf("idempotent sync: regs=%v err=%v", regs, err)
	}
}

func TestEngineClosed(t *testing.T) {
	e := memEngine(t, Config{})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(context.Background(), Spec{ID: "late", TempC: 80, Vdd: 1.2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("register after close: %v, want ErrClosed", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestEngineReplayExact proves the durability contract: a reopened
// engine replays the journal and lands on the bit-identical state —
// epochs, Vth, odometers, phases, schedules in flight.
func TestEngineReplayExact(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cfg := Config{EpochHours: 0.5, FlushEpochs: 4, Workers: 2}

	st1, _, err := store.Open[any](dir, store.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e1, err := New(st1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := []Spec{
		{ID: "a", TempC: 105, Vdd: 1.32, Duty: 1},
		{ID: "b", TempC: 80, Vdd: 1.2, Duty: 0.5},
		{ID: "c", Phase: PhaseSleepName, TempC: 45, Vdd: -0.3, Duty: 1},
		{ID: "d", TempC: 95, Vdd: 1.25, Duty: 0.8,
			Schedule: &Schedule{StressEpochs: 3, SleepEpochs: 2, SleepTempC: 40, SleepVdd: -0.25}},
		{ID: "gone", TempC: 70, Vdd: 1.1, Duty: 1},
	}
	res, err := e1.RegisterBatch(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("register %s: %v", r.ID, r.Err)
		}
	}
	for i := 0; i < 6; i++ { // 4 flushed, 2 pending at the event below
		e1.Tick(ctx)
	}
	if err := e1.SetCondition(ctx, "a", Cond{Phase: PhaseSleepName, TempC: 35, Vdd: -0.4, Duty: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e1.SetSchedule(ctx, "b", Schedule{StressEpochs: 2, SleepEpochs: 2, SleepTempC: 30, SleepVdd: 0}); err != nil {
		t.Fatal(err)
	}
	if err := e1.Remove(ctx, "gone"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ { // 11 epochs total, 1 pending at close
		e1.Tick(ctx)
	}
	snap1 := e1.Snapshot()
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, _, err := store.Open[any](dir, store.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	e2, err := New(st2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	snap2 := e2.Snapshot()

	if snap2.Epoch != snap1.Epoch || snap2.SimHours != snap1.SimHours || snap2.Chips != snap1.Chips {
		t.Fatalf("replayed header epoch=%d hours=%g chips=%d, want epoch=%d hours=%g chips=%d",
			snap2.Epoch, snap2.SimHours, snap2.Chips, snap1.Epoch, snap1.SimHours, snap1.Chips)
	}
	if st := e2.Stats(); st.ReplayedEpochs != snap1.Epoch {
		t.Fatalf("replayed %d epochs, want %d", st.ReplayedEpochs, snap1.Epoch)
	}
	if snap2.Has("gone") {
		t.Fatal("removed chip resurrected by replay")
	}
	for _, id := range []string{"a", "b", "c", "d"} {
		want, ok := snap1.Chip(id)
		if !ok {
			t.Fatalf("chip %s missing pre-close", id)
		}
		got, ok := snap2.Chip(id)
		if !ok {
			t.Fatalf("chip %s missing after replay", id)
		}
		if got != want {
			t.Fatalf("chip %s replayed as %+v, want %+v", id, got, want)
		}
	}

	// The in-flight schedule must replay too: keep ticking both the
	// reopened engine and a scalar mirror of chip d.
	for i := 0; i < 10; i++ {
		e2.Tick(ctx)
	}
	cv, _ := e2.Snapshot().Chip("d")
	if cv.Odometer == 0 || cv.Odometer == snap1.Epoch+10 {
		t.Fatalf("chip d odometer %d after 10 more epochs: schedule did not survive replay", cv.Odometer)
	}
}

// TestEngineHardStop proves an acked registration survives a crash
// that loses the unflushed epoch window (the documented trade: at most
// FlushEpochs epochs of simulated time re-age from the last record).
func TestEngineHardStop(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	st1, _, err := store.Open[any](dir, store.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e1, err := New(st1, Config{FlushEpochs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Register(ctx, Spec{ID: "survivor", TempC: 80, Vdd: 1.2, Duty: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		e1.Tick(ctx)
	}
	// Hard stop: the store closes underneath the engine; no engine
	// Close, no final flush.
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, _, err := store.Open[any](dir, store.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	e2, err := New(st2, Config{FlushEpochs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	snap := e2.Snapshot()
	if !snap.Has("survivor") {
		t.Fatal("acked registration lost across hard stop")
	}
	if snap.Epoch != 0 {
		t.Fatalf("unflushed epochs resurrected: epoch %d, want 0", snap.Epoch)
	}
	e1.Close() // leaked engine; its final flush fails against the closed store
}

func TestSnapshotTopByOdometer(t *testing.T) {
	s := &Snapshot{Epoch: 9}
	fill := func(pi int, chips ...ChipView) {
		pv := &s.Parts[pi]
		for _, c := range chips {
			pv.IDs = append(pv.IDs, c.ID)
			pv.Vth = append(pv.Vth, c.VthShift)
			pv.Odo = append(pv.Odo, c.Odometer)
			pv.Phase = append(pv.Phase, phaseStress)
			pv.Duty = append(pv.Duty, 1)
		}
	}
	fill(0,
		ChipView{ID: "m", Odometer: 5},
		ChipView{ID: "a", Odometer: 9},
		ChipView{ID: "z", Odometer: 9})
	fill(7,
		ChipView{ID: "q", Odometer: 12},
		ChipView{ID: "b", Odometer: 1})
	fill(31, ChipView{ID: "k", Odometer: 9})

	got := s.TopByOdometer(4)
	wantIDs := []string{"q", "a", "k", "z"} // 12, then the 9s by id
	if len(got) != len(wantIDs) {
		t.Fatalf("top-4 returned %d chips", len(got))
	}
	for i, id := range wantIDs {
		if got[i].ID != id {
			t.Fatalf("top[%d] = %s (odo %d), want %s", i, got[i].ID, got[i].Odometer, id)
		}
	}
	if all := s.TopByOdometer(100); len(all) != 6 {
		t.Fatalf("k beyond fleet size returned %d chips, want 6", len(all))
	}
	if s.TopByOdometer(0) != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestEngineConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{EpochHours: -1},
		{EpochHours: math.NaN()},
		{EpochHours: math.Inf(1)},
	} {
		if _, err := New(store.NewMem[any](), bad); err == nil {
			t.Fatalf("config %+v accepted", bad)
		}
	}
	badParams := td.DefaultParams()
	badParams.K1 = -1
	if _, err := New(store.NewMem[any](), Config{Params: badParams}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

// TestEnginePartitionAlignment spreads ids over every store shard and
// checks lookups resolve through the matching engine partition.
func TestEnginePartitionAlignment(t *testing.T) {
	ctx := context.Background()
	e := memEngine(t, Config{Workers: 8})
	var specs []Spec
	for i := 0; i < 4*store.ShardCount; i++ {
		specs = append(specs, Spec{ID: fmt.Sprintf("chip-%03d", i), TempC: 80, Vdd: 1.2, Duty: 1})
	}
	res, err := e.RegisterBatch(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("register %s: %v", r.ID, r.Err)
		}
	}
	e.Tick(ctx)
	snap := e.Snapshot()
	if snap.Chips != len(specs) {
		t.Fatalf("snapshot has %d chips, want %d", snap.Chips, len(specs))
	}
	for _, sp := range specs {
		cv, ok := snap.Chip(sp.ID)
		if !ok || cv.Odometer != 1 {
			t.Fatalf("chip %s: view %+v ok=%v after one stress epoch", sp.ID, cv, ok)
		}
	}
}
