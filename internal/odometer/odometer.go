// Package odometer implements a Silicon-Odometer-style aging sensor
// (Kim et al., JSSC 2008 — the paper's ref. [7]): a *pair* of ring
// oscillators on the same die, one exposed to the workload's stress and
// one preserved on a gated power island, read out differentially.
//
// The differential (beat-frequency) measurement cancels voltage and
// temperature drift common to both oscillators and resolves frequency
// degradation at the part-per-million level — two to three orders finer
// than the paper's single-RO counter (whose ±5-count noise floor is
// ≈0.1 %). The paper's Section 1 cites exactly this sensor class as the
// "track and monitor" alternative its proactive approach improves on;
// reproducing it lets the scheduler experiments use realistic
// monitoring error.
package odometer

import (
	"errors"
	"fmt"
	"math"

	"selfheal/internal/fpga"
	"selfheal/internal/rng"
	"selfheal/internal/ro"
	"selfheal/internal/stress"
	"selfheal/internal/units"
)

// Params configures the sensor pair.
type Params struct {
	RO ro.Params
	// NoisePPM is the 1σ read-out noise of the differential
	// measurement in parts per million.
	NoisePPM float64
}

// DefaultParams matches a beat-frequency odometer built from the
// paper's 75-stage oscillators with ±2 ppm differential resolution.
func DefaultParams() Params {
	return Params{
		RO:       ro.DefaultParams(),
		NoisePPM: 2,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if err := p.RO.Validate(); err != nil {
		return err
	}
	if p.NoisePPM < 0 {
		return errors.New("odometer: noise must be non-negative")
	}
	return nil
}

// Sensor is one odometer: a stressed oscillator and a protected
// reference on the same die.
type Sensor struct {
	params    Params
	stressed  *ro.Oscillator
	reference *ro.Oscillator
	src       *rng.Source
	// zeroPPM is the fresh differential offset from within-die process
	// variation, calibrated once at construction and subtracted from
	// every reading (the odometer's "trip reset").
	zeroPPM float64
}

// New maps the oscillator pair onto the chip and registers them with
// the engine: the stressed RO as a switching activity, the reference on
// a protected power island.
func New(chip *fpga.Chip, eng *stress.Engine, name string, p Params, src *rng.Source) (*Sensor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if eng == nil || eng.Chip() != chip {
		return nil, errors.New("odometer: engine must drive the sensor's chip")
	}
	stressedRO, err := ro.New(chip, name+".stressed", p.RO, src.Split())
	if err != nil {
		return nil, fmt.Errorf("odometer: %w", err)
	}
	referenceRO, err := ro.New(chip, name+".reference", p.RO, src.Split())
	if err != nil {
		return nil, fmt.Errorf("odometer: %w", err)
	}
	if err := eng.AddActivity(stress.Activity{Mapping: stressedRO.Mapping(), AC: true}); err != nil {
		return nil, err
	}
	if err := eng.Protect(referenceRO.Mapping()); err != nil {
		return nil, err
	}
	s := &Sensor{
		params:    p,
		stressed:  stressedRO,
		reference: referenceRO,
		src:       src,
	}
	// Calibrate out the fresh process-variation offset between the two
	// oscillators (noise-free: calibration averages long enough).
	fs, err := stressedRO.TrueFrequency(chip.Params().NominalVdd)
	if err != nil {
		return nil, fmt.Errorf("odometer: calibration: %w", err)
	}
	fr, err := referenceRO.TrueFrequency(chip.Params().NominalVdd)
	if err != nil {
		return nil, fmt.Errorf("odometer: calibration: %w", err)
	}
	s.zeroPPM = (float64(fr) - float64(fs)) / float64(fr) * 1e6
	return s, nil
}

// Stressed returns the exposed oscillator (for engine mode changes).
func (s *Sensor) Stressed() *ro.Oscillator { return s.stressed }

// Reference returns the protected oscillator.
func (s *Sensor) Reference() *ro.Oscillator { return s.reference }

// Reading is one differential measurement.
type Reading struct {
	// BeatHz is the beat frequency |f_ref − f_stressed|.
	BeatHz float64
	// DegradationPPM is the differential frequency degradation
	// (f_ref − f_stressed)/f_ref in parts per million, including the
	// sensor's ppm-level read-out noise.
	DegradationPPM float64
}

// Measure wakes both oscillators at the given supply and reads the
// pair differentially. Both oscillators see the same rail and
// temperature, so the common-mode terms cancel; only BTI asymmetry and
// the ppm noise floor remain.
func (s *Sensor) Measure(vdd units.Volt) (Reading, error) {
	wasEnabled := s.stressed.Enabled()
	frozen := s.stressed.FrozenInput()
	s.stressed.Enable()
	defer func() {
		if !wasEnabled {
			s.stressed.Freeze(frozen)
		}
	}()
	fs, err := s.stressed.TrueFrequency(vdd)
	if err != nil {
		return Reading{}, fmt.Errorf("odometer: stressed RO: %w", err)
	}
	fr, err := s.reference.TrueFrequency(vdd)
	if err != nil {
		return Reading{}, fmt.Errorf("odometer: reference RO: %w", err)
	}
	ppm := (float64(fr)-float64(fs))/float64(fr)*1e6 - s.zeroPPM +
		s.src.NormalWith(0, s.params.NoisePPM)
	return Reading{
		BeatHz:         math.Abs(float64(fr) - float64(fs)),
		DegradationPPM: ppm,
	}, nil
}
