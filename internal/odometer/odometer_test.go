package odometer

import (
	"math"
	"testing"

	"selfheal/internal/fpga"
	"selfheal/internal/rng"
	"selfheal/internal/stress"
	"selfheal/internal/units"
)

func rig(t *testing.T, seed uint64) (*fpga.Chip, *stress.Engine, *Sensor) {
	t.Helper()
	chip, err := fpga.NewChip("odo", fpga.DefaultParams(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	eng := stress.New(chip)
	s, err := New(chip, eng, "odometer", DefaultParams(), rng.New(seed+7))
	if err != nil {
		t.Fatal(err)
	}
	return chip, eng, s
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	p := DefaultParams()
	p.NoisePPM = -1
	if err := p.Validate(); err == nil {
		t.Error("negative noise accepted")
	}
	p = DefaultParams()
	p.RO.Stages = 4
	if err := p.Validate(); err == nil {
		t.Error("bad RO params accepted")
	}
	chipA, err := fpga.NewChip("a", fpga.DefaultParams(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	chipB, err := fpga.NewChip("b", fpga.DefaultParams(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	engB := stress.New(chipB)
	if _, err := New(chipA, engB, "x", DefaultParams(), rng.New(3)); err == nil {
		t.Error("mismatched engine accepted")
	}
	if _, err := New(chipA, nil, "x", DefaultParams(), rng.New(3)); err == nil {
		t.Error("nil engine accepted")
	}
}

func TestFreshReadsNearZero(t *testing.T) {
	_, _, s := rig(t, 1)
	r, err := s.Measure(1.2)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh differential reading is zero up to the ppm noise floor —
	// the within-die process offset must have been calibrated out.
	if math.Abs(r.DegradationPPM) > 10 {
		t.Errorf("fresh reading = %.1f ppm, want ≈0", r.DegradationPPM)
	}
}

func TestReferenceStaysFreshUnderStress(t *testing.T) {
	_, eng, s := rig(t, 2)
	if err := eng.Step(1.2, 110, 24*units.Hour); err != nil {
		t.Fatal(err)
	}
	for _, cell := range s.Reference().Mapping().Cells {
		for _, tr := range cell.Transistors() {
			if tr.VthShift() != 0 {
				t.Fatalf("reference transistor %s aged: %v", tr.Name, tr.VthShift())
			}
		}
	}
	// The stressed oscillator, by contrast, must have aged.
	aged := 0.0
	for _, cell := range s.Stressed().Mapping().Cells {
		for _, tr := range cell.Transistors() {
			aged += tr.VthShift()
		}
	}
	if aged == 0 {
		t.Fatal("stressed oscillator did not age")
	}
}

func TestDegradationTracksStress(t *testing.T) {
	_, eng, s := rig(t, 3)
	var prev float64
	for i := 0; i < 4; i++ {
		if err := eng.Step(1.2, 110, 6*units.Hour); err != nil {
			t.Fatal(err)
		}
		r, err := s.Measure(1.2)
		if err != nil {
			t.Fatal(err)
		}
		if r.DegradationPPM <= prev {
			t.Fatalf("step %d: reading %.0f ppm not above previous %.0f", i, r.DegradationPPM, prev)
		}
		prev = r.DegradationPPM
	}
	if r, _ := s.Measure(1.2); r.BeatHz <= 0 {
		t.Error("no beat frequency after stress")
	}
}

// TestResolutionBeatsCounter quantifies why the odometer exists: its
// read-out scatter is orders of magnitude below the single-RO counter's
// ±0.1 % (1000 ppm) noise floor.
func TestResolutionBeatsCounter(t *testing.T) {
	_, eng, s := rig(t, 4)
	if err := eng.Step(1.2, 110, units.Hour); err != nil {
		t.Fatal(err)
	}
	var readings []float64
	for i := 0; i < 200; i++ {
		r, err := s.Measure(1.2)
		if err != nil {
			t.Fatal(err)
		}
		readings = append(readings, r.DegradationPPM)
	}
	mean := 0.0
	for _, v := range readings {
		mean += v
	}
	mean /= float64(len(readings))
	variance := 0.0
	for _, v := range readings {
		variance += (v - mean) * (v - mean)
	}
	sigma := math.Sqrt(variance / float64(len(readings)-1))
	if sigma > 5 {
		t.Errorf("odometer scatter = %.1f ppm, want ≤5 ppm", sigma)
	}
	if mean <= 0 {
		t.Errorf("mean reading %.1f ppm not positive after stress", mean)
	}
}

// TestCommonModeCancels: the differential reading is insensitive to the
// measurement supply, unlike a raw frequency read.
func TestCommonModeCancels(t *testing.T) {
	_, eng, s := rig(t, 5)
	if err := eng.Step(1.2, 110, 12*units.Hour); err != nil {
		t.Fatal(err)
	}
	at12, err := s.Measure(1.2)
	if err != nil {
		t.Fatal(err)
	}
	at11, err := s.Measure(1.1)
	if err != nil {
		t.Fatal(err)
	}
	// Raw frequencies shift by ~10 % between rails; the differential
	// ppm reading must move far less (residual second-order terms and
	// noise only).
	rel := math.Abs(at12.DegradationPPM-at11.DegradationPPM) / math.Max(at12.DegradationPPM, 1)
	if rel > 0.25 {
		t.Errorf("common-mode leakage: %.0f vs %.0f ppm across rails", at12.DegradationPPM, at11.DegradationPPM)
	}
}

func TestMeasureRestoresFrozenMode(t *testing.T) {
	_, eng, s := rig(t, 6)
	s.Stressed().Freeze(true)
	if err := eng.SetAC(s.Stressed().Mapping().Name, false, true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Measure(1.2); err != nil {
		t.Fatal(err)
	}
	if s.Stressed().Enabled() {
		t.Error("measurement left the stressed RO enabled")
	}
}

func BenchmarkMeasure(b *testing.B) {
	chip, err := fpga.NewChip("b", fpga.DefaultParams(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	eng := stress.New(chip)
	s, err := New(chip, eng, "odo", DefaultParams(), rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Measure(1.2); err != nil {
			b.Fatal(err)
		}
	}
}
