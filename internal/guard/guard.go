package guard

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"

	"selfheal/internal/engine"
	"selfheal/internal/faults"
	"selfheal/internal/fleet"
	"selfheal/internal/fpga"
	"selfheal/internal/obs"
)

// Deps wires the guard into the rest of the system. Engine is
// required; everything else is optional and degrades gracefully:
// without a Fleet the quarantine is tracked guard-side only (no
// journaled refusal surface), without a Spare remaps fail softly,
// without an Adversary there is no red team to apply.
type Deps struct {
	Engine    *engine.Engine
	Fleet     *fleet.Service
	Adversary *faults.Adversary
	Spare     *fpga.Chip
	Tracer    *obs.Tracer
	Log       *slog.Logger
}

// chipState is the blue team's book-keeping for one suspect chip.
// All fields are guarded by Guard.mu.
type chipState struct {
	streak      int
	quarantined bool
	deferred    bool
	onsetVth    float64 // Vth the epoch before the streak started
	peakVth     float64 // worst Vth observed while quarantined
	quarEpoch   uint64
	rejuvEpochs uint64 // accelerated-sleep epochs delivered so far
	remapped    bool
}

// Guard is the blue team: per-epoch aging-rate monitoring, automated
// quarantine/remap/rejuvenation, and the applier for the red team's
// decided actions. It hangs off engine.Config.OnEpoch, so everything
// here runs on the ticking goroutine after the tick lock is released;
// Guard.mu sits above the engine and fleet locks in the hierarchy
// (guard calls down, nothing calls back up into the guard).
type Guard struct {
	cfg Config
	d   Deps

	mu        sync.Mutex
	lastEpoch uint64
	prevVth   map[string]float64
	states    map[string]*chipState
	victims   bool // adversary victim set picked
	adopted   bool // pre-existing fleet quarantines re-adopted
	ring      *alertRing
	seq       uint64

	alertsTotal uint64
	remapsTotal uint64
	rejuvTotal  uint64
	releases    uint64
	recovered90 uint64 // releases that met the paper's ≥90% recovery bar
	quarCount   int
}

// New validates the config (zero fields take Defaults) and builds the
// guard. Wire the returned guard's OnEpoch into engine.Config.OnEpoch.
func New(d Deps, cfg Config) (*Guard, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if d.Engine == nil {
		return nil, fmt.Errorf("guard: an engine is required")
	}
	return &Guard{
		cfg:     cfg,
		d:       d,
		prevVth: map[string]float64{},
		states:  map[string]*chipState{},
		ring:    newAlertRing(256),
	}, nil
}

// Config returns the default-filled configuration.
func (g *Guard) Config() Config {
	if g == nil {
		return Config{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cfg
}

// Reconfigure swaps the tuning at runtime (POST /v1/guard/config).
// Zero fields take Defaults; in-flight quarantines keep running and
// are judged against the new thresholds from the next epoch on.
func (g *Guard) Reconfigure(cfg Config) error {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return err
	}
	g.mu.Lock()
	g.cfg = cfg
	g.mu.Unlock()
	return nil
}

// OnEpoch is the engine hook: red-team actions are applied first (the
// attack plays this epoch), then the monitor judges the snapshot's
// Vth deltas against the previous epoch and the responder reacts. A
// nil guard is inert, and stale or repeated epochs are ignored, so
// concurrent Tick callers cannot double-apply an epoch.
func (g *Guard) OnEpoch(epoch uint64, snap *engine.Snapshot) {
	if g == nil || snap == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if epoch <= g.lastEpoch && g.lastEpoch != 0 {
		return
	}
	g.lastEpoch = epoch

	ctx := context.Background()
	g.adoptQuarantined(ctx, epoch, snap)
	g.applyAdversary(ctx, epoch, snap)
	g.observe(ctx, epoch, snap)
}

// adoptQuarantined runs once, on the guard's first epoch: chips the
// fleet journal replayed as quarantined (a restart mid-episode) are
// re-adopted — book-keeping rebuilt, the healing rhythm re-installed —
// so a hard kill never strands a chip in quarantine. Their pre-attack
// baseline is unknown after a restart, so they release on the healthy
// bar (Vth back at or below the fleet's typical damage).
func (g *Guard) adoptQuarantined(ctx context.Context, epoch uint64, snap *engine.Snapshot) {
	if g.adopted {
		return
	}
	g.adopted = true
	if g.d.Fleet == nil {
		return
	}
	for _, id := range g.d.Fleet.QuarantinedIDs() {
		if st := g.states[id]; st != nil && st.quarantined {
			continue
		}
		cv, ok := snap.Chip(id)
		if !ok {
			continue
		}
		g.states[id] = &chipState{quarantined: true, quarEpoch: epoch, peakVth: cv.VthShift}
		g.quarCount++
		g.d.Engine.SetConditionBatch(ctx, []engine.CondChange{{ID: id, Cond: engine.Cond{
			Phase: engine.PhaseStressName, TempC: g.cfg.NominalTempC, Vdd: g.cfg.NominalVdd, Duty: 1,
		}}})
		g.d.Engine.SetScheduleBatch(ctx, []engine.SchedChange{{ID: id, Schedule: engine.Schedule{
			StressEpochs: 1, SleepEpochs: g.cfg.RejuvEpochs,
			SleepTempC: g.cfg.RejuvTempC, SleepVdd: g.cfg.RejuvVdd,
		}}})
		g.alert(ctx, Alert{Epoch: epoch, Kind: AlertRejuvenating, Chip: id,
			Detail: "re-adopted after restart; healing rhythm re-installed"})
	}
}

// applyAdversary picks victims on first sight, then applies the red
// team's decided actions through the engine's batch events — gated,
// like any other mutation, on the quarantine: blocked moves are
// reported back to the adversary's counters instead of applied.
func (g *Guard) applyAdversary(ctx context.Context, epoch uint64, snap *engine.Snapshot) {
	adv := g.d.Adversary
	if adv == nil {
		return
	}
	if !g.victims {
		ids := g.candidates(snap)
		if len(ids) == 0 {
			return
		}
		picked := adv.PickVictims(ids)
		g.victims = true
		if g.d.Log != nil {
			g.d.Log.Warn("guard: adversary picked victims", "victims", picked, "epoch", epoch)
		}
	}
	acts := adv.Actions(epoch)
	if len(acts) == 0 {
		return
	}
	atk := adv.Config()
	var conds []engine.CondChange
	var schs []engine.SchedChange
	blocked := 0
	for _, act := range acts {
		if g.blocked(act.Chip) {
			blocked++
			continue
		}
		switch act.Kind {
		case faults.AdvStress:
			conds = append(conds, engine.CondChange{ID: act.Chip, Cond: engine.Cond{
				Phase: engine.PhaseStressName, TempC: atk.TempC, Vdd: atk.Vdd, Duty: atk.Duty,
			}})
		case faults.AdvCancel:
			schs = append(schs, engine.SchedChange{ID: act.Chip})
		}
	}
	adv.RecordBlocked(blocked)
	if len(conds) > 0 {
		g.d.Engine.SetConditionBatch(ctx, conds)
	}
	if len(schs) > 0 {
		g.d.Engine.SetScheduleBatch(ctx, schs)
	}
}

// candidates is the id set the adversary may target: fleet-backed
// chips mirrored into the engine when a fleet is wired (those carry
// the full quarantine lifecycle), every engine chip otherwise.
func (g *Guard) candidates(snap *engine.Snapshot) []string {
	if g.d.Fleet == nil {
		var ids []string
		for pi := range snap.Parts {
			ids = append(ids, snap.Parts[pi].IDs...)
		}
		return ids
	}
	var ids []string
	for _, c := range g.d.Fleet.List() {
		if snap.Has(c.ID) {
			ids = append(ids, c.ID)
		}
	}
	return ids
}

// blocked reports whether the quarantine refuses mutations on a chip.
func (g *Guard) blocked(id string) bool {
	if st := g.states[id]; st != nil && st.quarantined {
		return true
	}
	return g.d.Fleet != nil && g.d.Fleet.Quarantined(id)
}

// observe runs the monitor over one snapshot: per-chip Vth deltas vs
// the previous epoch, a robust fleet baseline (median + scaled MAD),
// outlier streaks, and the quarantine/rejuvenation/release lifecycle.
func (g *Guard) observe(ctx context.Context, epoch uint64, snap *engine.Snapshot) {
	type obsChip struct {
		id    string
		vth   float64
		prev  float64
		delta float64
		sleep bool
		known bool
	}
	chips := make([]obsChip, 0, snap.Chips)
	deltas := make([]float64, 0, snap.Chips)
	vths := make([]float64, 0, snap.Chips)
	for pi := range snap.Parts {
		pv := &snap.Parts[pi]
		for i, id := range pv.IDs {
			oc := obsChip{id: id, vth: pv.Vth[i], sleep: pv.Phase[i] != 0}
			if prev, ok := g.prevVth[id]; ok {
				oc.prev, oc.delta, oc.known = prev, pv.Vth[i]-prev, true
				deltas = append(deltas, oc.delta)
			}
			vths = append(vths, pv.Vth[i])
			chips = append(chips, oc)
		}
	}

	judge := epoch > g.cfg.Warmup && len(deltas) > 0
	var threshold, damageBar float64
	if judge {
		med, mad := medianMAD(deltas)
		threshold = med + g.cfg.SigmaK*1.4826*mad
		if threshold < g.cfg.RateFloorV {
			threshold = g.cfg.RateFloorV
		}
		// The damage gate: only chips whose absolute Vth shift sits
		// above the fleet's typical wear are suspects. Without it, a
		// freshly-rejuvenated chip would convict itself forever — deep
		// recovery rolls its effective age back, so it re-ages at the
		// log law's steep early-life rate while it catches back up to
		// the fleet trajectory. Such a chip is *below* median damage,
		// so the gate lets it catch up; an attacked chip is far above.
		damageBar = median(vths) + g.cfg.RateFloorV
	}

	healthyBar := math.Inf(-1)
	if judge {
		healthyBar = damageBar
	}
	for i := range chips {
		oc := &chips[i]
		st := g.states[oc.id]
		if st != nil && st.quarantined {
			g.tendQuarantined(ctx, epoch, oc.id, st, oc.vth, oc.sleep, healthyBar)
			continue
		}
		if !judge || !oc.known {
			continue
		}
		if oc.delta > threshold && oc.vth > damageBar {
			if st == nil {
				st = &chipState{}
				g.states[oc.id] = st
			}
			if st.streak == 0 {
				st.onsetVth = oc.prev
			}
			st.streak++
			g.alert(ctx, Alert{
				Epoch: epoch, Kind: AlertOutlier, Chip: oc.id, DeltaV: oc.delta,
				Detail: fmt.Sprintf("delta %.3g V/epoch over threshold %.3g (streak %d/%d)",
					oc.delta, threshold, st.streak, g.cfg.Streak),
			})
			if st.streak >= g.cfg.Streak {
				g.convict(ctx, epoch, oc.id, st, oc.vth)
			}
		} else if st != nil && !st.quarantined {
			st.streak = 0
			st.deferred = false
			if st.rejuvEpochs == 0 {
				delete(g.states, oc.id)
			}
		}
	}

	next := make(map[string]float64, len(chips))
	for i := range chips {
		next[chips[i].id] = chips[i].vth
	}
	g.prevVth = next
}

// convict moves a chip from suspect to quarantined — unless the SLO
// budget is spent, in which case the conviction is deferred (streak
// held) and retried next epoch.
func (g *Guard) convict(ctx context.Context, epoch uint64, id string, st *chipState, vth float64) {
	budget := int(g.cfg.MaxQuarFrac * float64(len(g.prevVth)))
	if budget < 1 {
		budget = 1
	}
	if g.quarCount >= budget {
		if !st.deferred {
			st.deferred = true
			g.alert(ctx, Alert{Epoch: epoch, Kind: AlertDeferred, Chip: id,
				Detail: fmt.Sprintf("quarantine budget %d spent", budget)})
		}
		return
	}
	st.quarantined = true
	st.deferred = false
	st.quarEpoch = epoch
	st.peakVth = vth
	st.rejuvEpochs = 0
	g.quarCount++

	reason := fmt.Sprintf("aging-rate outlier at epoch %d", epoch)
	if g.d.Fleet != nil {
		if _, err := g.d.Fleet.Quarantine(ctx, id, reason); err != nil && g.d.Log != nil {
			g.d.Log.Error("guard: fleet quarantine failed", "chip", id, "err", err)
		}
	}
	g.alert(ctx, Alert{Epoch: epoch, Kind: AlertQuarantined, Chip: id, Detail: reason})

	// Remap the victim's logic onto spare fabric while it heals.
	if g.d.Spare != nil {
		if m, err := g.d.Spare.MapCells(id, g.cfg.RemapCells); err != nil {
			g.alert(ctx, Alert{Epoch: epoch, Kind: AlertRemapFailed, Chip: id, Detail: err.Error()})
		} else {
			st.remapped = true
			g.remapsTotal++
			g.alert(ctx, Alert{Epoch: epoch, Kind: AlertRemapped, Chip: id,
				Detail: fmt.Sprintf("%d cells on %s, %d free left", len(m.Cells), m.Chip.ID(), g.d.Spare.FreeCells())})
		}
	} else {
		g.alert(ctx, Alert{Epoch: epoch, Kind: AlertRemapFailed, Chip: id, Detail: "no spare fabric wired"})
	}

	// Accelerated rejuvenation: first pin the chip back to the nominal
	// stress condition (the attack clobbered temperature and rail —
	// and the schedule's stress leg inherits whatever is current), then
	// install the recovery rhythm: one nominal epoch, RejuvEpochs of
	// hot negative-rail sleep, repeating until released.
	g.d.Engine.SetConditionBatch(ctx, []engine.CondChange{{ID: id, Cond: engine.Cond{
		Phase: engine.PhaseStressName, TempC: g.cfg.NominalTempC, Vdd: g.cfg.NominalVdd, Duty: 1,
	}}})
	g.d.Engine.SetScheduleBatch(ctx, []engine.SchedChange{{ID: id, Schedule: engine.Schedule{
		StressEpochs: 1, SleepEpochs: g.cfg.RejuvEpochs,
		SleepTempC: g.cfg.RejuvTempC, SleepVdd: g.cfg.RejuvVdd,
	}}})
	g.alert(ctx, Alert{Epoch: epoch, Kind: AlertRejuvenating, Chip: id,
		Detail: fmt.Sprintf("%d sleep epochs at %gC/%gV per cycle", g.cfg.RejuvEpochs, g.cfg.RejuvTempC, g.cfg.RejuvVdd)})
}

// tendQuarantined advances one quarantined chip: tracks its Vth peak,
// counts delivered rejuvenation epochs, and releases it once a
// recovery bar is met — either RecoverFrac of the attack excess
// recovered, or (for adopted chips whose pre-attack baseline is
// unknown) Vth back at or below the fleet's typical damage.
func (g *Guard) tendQuarantined(ctx context.Context, epoch uint64, id string, st *chipState, vth float64, sleeping bool, healthyBar float64) {
	if vth > st.peakVth {
		st.peakVth = vth
	}
	if sleeping {
		st.rejuvEpochs++
		g.rejuvTotal++
	}
	excess := st.peakVth - st.onsetVth
	recovered := st.peakVth - vth
	if st.rejuvEpochs < g.cfg.RejuvEpochs {
		return
	}
	recoveredEnough := excess > 0 && recovered >= g.cfg.RecoverFrac*excess
	if !recoveredEnough && vth > healthyBar {
		return
	}
	if excess <= 0 {
		excess, recovered = st.peakVth, st.peakVth-vth
	}

	// Recovered: cancel the rejuvenation rhythm, pin the nominal
	// condition, lift the quarantine.
	g.d.Engine.SetScheduleBatch(ctx, []engine.SchedChange{{ID: id}})
	g.d.Engine.SetConditionBatch(ctx, []engine.CondChange{{ID: id, Cond: engine.Cond{
		Phase: engine.PhaseStressName, TempC: g.cfg.NominalTempC, Vdd: g.cfg.NominalVdd, Duty: 1,
	}}})
	if g.d.Fleet != nil {
		if _, err := g.d.Fleet.Release(ctx, id); err != nil && g.d.Log != nil {
			g.d.Log.Error("guard: fleet release failed", "chip", id, "err", err)
		}
	}
	st.quarantined = false
	st.streak = 0
	g.quarCount--
	g.releases++
	// The paper's headline — ≥90% of the stress-induced margin loss
	// recovered — tracked per release so the SLO monitor can hold the
	// fleet to it regardless of the configured RecoverFrac.
	if recovered >= 0.9*excess {
		g.recovered90++
	}
	g.alert(ctx, Alert{Epoch: epoch, Kind: AlertReleased, Chip: id,
		Detail: fmt.Sprintf("recovered %.0f%% of %.3g V excess in %d rejuvenation epochs",
			100*recovered/excess, excess, st.rejuvEpochs)})
	delete(g.states, id)
}

// alert records one event in the ring, the counters, the tracer (as a
// guard.alert span) and the log. Callers hold g.mu.
func (g *Guard) alert(ctx context.Context, a Alert) {
	g.seq++
	a.Seq = g.seq
	g.ring.push(a)
	g.alertsTotal++
	if g.d.Tracer != nil {
		_, sp := g.d.Tracer.Start(ctx, "guard.alert")
		sp.Annotate(
			obs.String("kind", string(a.Kind)),
			obs.String("chip", a.Chip),
			obs.String("epoch", fmt.Sprintf("%d", a.Epoch)),
			obs.String("detail", a.Detail),
		)
		sp.End()
	}
	if g.d.Log != nil {
		g.d.Log.Warn("guard: "+string(a.Kind), "chip", a.Chip, "epoch", a.Epoch, "detail", a.Detail)
	}
}

// medianMAD returns the median and the raw median absolute deviation
// of xs (which it reorders).
func medianMAD(xs []float64) (med, mad float64) {
	med = median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	return med, median(devs)
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// Metrics is the guard's Prometheus-facing counter set.
type Metrics struct {
	AlertsTotal             uint64 `json:"alerts_total"`
	QuarantinedChips        int    `json:"quarantined_chips"`
	RemapsTotal             uint64 `json:"remaps_total"`
	RejuvenationEpochsTotal uint64 `json:"rejuvenation_epochs_total"`
	ReleasesTotal           uint64 `json:"releases_total"`
	// Recovered90Total counts releases that recovered ≥90% of the
	// attack's margin excess — the paper's recovery headline, consumed
	// by the serve layer's margin-recovery SLO.
	Recovered90Total uint64 `json:"recovered90_total"`
	// SpareFreeCells is -1 when no spare fabric is wired.
	SpareFreeCells int `json:"spare_free_cells"`
}

// MetricsSnapshot reads the counters. A nil guard reports zeros.
func (g *Guard) MetricsSnapshot() Metrics {
	if g == nil {
		return Metrics{SpareFreeCells: -1}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	m := Metrics{
		AlertsTotal:             g.alertsTotal,
		QuarantinedChips:        g.quarCount,
		RemapsTotal:             g.remapsTotal,
		RejuvenationEpochsTotal: g.rejuvTotal,
		ReleasesTotal:           g.releases,
		Recovered90Total:        g.recovered90,
		SpareFreeCells:          -1,
	}
	if g.d.Spare != nil {
		m.SpareFreeCells = g.d.Spare.FreeCells()
	}
	return m
}

// ChipStatus is one quarantined chip's lifecycle position.
type ChipStatus struct {
	Chip        string  `json:"chip"`
	QuarEpoch   uint64  `json:"quarantined_epoch"`
	OnsetVth    float64 `json:"onset_vth_v"`
	PeakVth     float64 `json:"peak_vth_v"`
	RejuvEpochs uint64  `json:"rejuvenation_epochs"`
	Remapped    bool    `json:"remapped"`
}

// AdversaryStatus reports the red team's configuration and counters.
type AdversaryStatus struct {
	Spec    string                `json:"spec"`
	Victims []string              `json:"victims"`
	Stats   faults.AdversaryStats `json:"stats"`
}

// Status is the /v1/guard view.
type Status struct {
	Epoch       uint64           `json:"epoch"`
	Spec        string           `json:"spec"`
	Config      Config           `json:"config"`
	Quarantined []ChipStatus     `json:"quarantined"`
	Metrics     Metrics          `json:"metrics"`
	Adversary   *AdversaryStatus `json:"adversary,omitempty"`
}

// StatusSnapshot assembles the guard's public state.
func (g *Guard) StatusSnapshot() Status {
	if g == nil {
		return Status{}
	}
	m := g.MetricsSnapshot()
	g.mu.Lock()
	st := Status{Epoch: g.lastEpoch, Spec: g.cfg.String(), Config: g.cfg, Metrics: m}
	for id, cs := range g.states {
		if !cs.quarantined {
			continue
		}
		st.Quarantined = append(st.Quarantined, ChipStatus{
			Chip: id, QuarEpoch: cs.quarEpoch, OnsetVth: cs.onsetVth, PeakVth: cs.peakVth,
			RejuvEpochs: cs.rejuvEpochs, Remapped: cs.remapped,
		})
	}
	g.mu.Unlock()
	sort.Slice(st.Quarantined, func(i, j int) bool { return st.Quarantined[i].Chip < st.Quarantined[j].Chip })
	if adv := g.d.Adversary; adv != nil {
		st.Adversary = &AdversaryStatus{
			Spec:    adv.Config().String(),
			Victims: adv.Victims(),
			Stats:   adv.Stats(),
		}
	}
	return st
}

// Alerts returns the retained alerts, newest first (limit 0 = all).
func (g *Guard) Alerts(limit int) []Alert {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ring.snapshot(limit)
}
