// Package guard closes the self-healing loop: a blue team watching
// every chip's aging rate through the engine's per-epoch snapshots,
// and an automated responder that quarantines outliers, remaps their
// logic onto spare fabric, and schedules accelerated rejuvenation
// until the wearout excess is recovered. Its sparring partner is the
// red team in internal/faults (Adversary), whose decided actions the
// guard also applies — through the same engine API a real workload
// would use — so attack and defence meet in one reproducible arena.
package guard

import (
	"fmt"
	"strconv"
	"strings"
)

// Config tunes the blue team. Zero fields mean "use the default";
// Parse and New both fill them, so a zero Config is the stock guard.
//
// The detection defaults are calibrated against the aging model's
// nominal operating point (80C / 1.2V, 0.5h epochs): the per-epoch
// Vth drift there is ~4e-5 V while a dc-stress attack at 110C / 1.32V
// lands 15-150x higher, so a 4-sigma robust outlier test with a
// 5e-4 V/epoch absolute floor separates them with wide margin.
type Config struct {
	// SigmaK is the robust z-score threshold: a chip is an outlier
	// when its per-epoch Vth delta exceeds the fleet median by more
	// than SigmaK scaled median-absolute-deviations. Median/MAD (not
	// mean/stddev) keep the baseline honest even when the victims
	// themselves are a visible fraction of the fleet.
	SigmaK float64
	// RateFloorV is the absolute per-epoch Vth-delta floor (volts): in
	// a perfectly homogeneous fleet the MAD collapses to zero and the
	// relative test alone would flag noise, so both tests must pass.
	RateFloorV float64
	// Streak is how many consecutive outlier epochs convict a chip.
	Streak int
	// Warmup is how many epochs of history detection waits for before
	// judging anyone (fresh chips front-load drift under the log law).
	Warmup uint64
	// RejuvEpochs is the minimum accelerated-sleep epochs a
	// quarantined chip must receive before release is considered.
	RejuvEpochs uint64
	// RejuvTempC / RejuvVdd are the accelerated-rejuvenation sleep
	// condition (high temperature, negative rail: the paper's active
	// recovery mode).
	RejuvTempC float64
	RejuvVdd   float64
	// RecoverFrac is the release bar: the fraction of the attack
	// excess (peak Vth minus onset Vth) that must be recovered.
	RecoverFrac float64
	// MaxQuarFrac is the SLO budget: at most this fraction of the
	// fleet (minimum 1 chip) quarantined at once; further convictions
	// are deferred until a slot frees.
	MaxQuarFrac float64
	// RemapCells is how many spare-fabric cells to claim per
	// quarantined chip when a spare chip is wired in.
	RemapCells int
	// NominalTempC / NominalVdd are the condition a chip is returned
	// to on release (the attack clobbered its original one).
	NominalTempC float64
	NominalVdd   float64
}

// Defaults is the stock blue-team tuning (see Config field docs).
var Defaults = Config{
	SigmaK:       4,
	RateFloorV:   5e-4,
	Streak:       2,
	Warmup:       2,
	RejuvEpochs:  4,
	RejuvTempC:   110,
	RejuvVdd:     -0.3,
	RecoverFrac:  0.9,
	MaxQuarFrac:  0.25,
	RemapCells:   8,
	NominalTempC: 80,
	NominalVdd:   1.2,
}

// withDefaults fills zero fields from Defaults.
func (c Config) withDefaults() Config {
	d := Defaults
	if c.SigmaK == 0 {
		c.SigmaK = d.SigmaK
	}
	if c.RateFloorV == 0 {
		c.RateFloorV = d.RateFloorV
	}
	if c.Streak == 0 {
		c.Streak = d.Streak
	}
	if c.Warmup == 0 {
		c.Warmup = d.Warmup
	}
	if c.RejuvEpochs == 0 {
		c.RejuvEpochs = d.RejuvEpochs
	}
	if c.RejuvTempC == 0 {
		c.RejuvTempC = d.RejuvTempC
	}
	if c.RejuvVdd == 0 {
		c.RejuvVdd = d.RejuvVdd
	}
	if c.RecoverFrac == 0 {
		c.RecoverFrac = d.RecoverFrac
	}
	if c.MaxQuarFrac == 0 {
		c.MaxQuarFrac = d.MaxQuarFrac
	}
	if c.RemapCells == 0 {
		c.RemapCells = d.RemapCells
	}
	if c.NominalTempC == 0 {
		c.NominalTempC = d.NominalTempC
	}
	if c.NominalVdd == 0 {
		c.NominalVdd = d.NominalVdd
	}
	return c
}

func (c Config) validate() error {
	if c.SigmaK < 0 {
		return fmt.Errorf("guard: sigma must be ≥ 0, got %v", c.SigmaK)
	}
	if c.RateFloorV < 0 {
		return fmt.Errorf("guard: rate_floor must be ≥ 0, got %v", c.RateFloorV)
	}
	if c.Streak < 1 {
		return fmt.Errorf("guard: streak must be ≥ 1, got %d", c.Streak)
	}
	if c.RejuvVdd > 0 {
		return fmt.Errorf("guard: rejuv_vdd must be ≤ 0 (recovery rail), got %v", c.RejuvVdd)
	}
	if c.RecoverFrac <= 0 || c.RecoverFrac > 1 {
		return fmt.Errorf("guard: recover_frac must be in (0,1], got %v", c.RecoverFrac)
	}
	if c.MaxQuarFrac <= 0 || c.MaxQuarFrac > 1 {
		return fmt.Errorf("guard: max_quarantine_frac must be in (0,1], got %v", c.MaxQuarFrac)
	}
	if c.RemapCells < 1 {
		return fmt.Errorf("guard: remap_cells must be ≥ 1, got %d", c.RemapCells)
	}
	if c.NominalVdd <= 0 {
		return fmt.Errorf("guard: nominal_vdd must be > 0, got %v", c.NominalVdd)
	}
	return nil
}

// Parse reads the -guard-spec CLI grammar: comma-separated key=value
// pairs in the faults.Config style, e.g.
//
//	sigma=4,rate_floor=5e-4,streak=2,rejuv_epochs=4,recover_frac=0.9
//
// Keys: sigma, rate_floor, streak, warmup, rejuv_epochs, rejuv_temp_c,
// rejuv_vdd, recover_frac, max_quarantine_frac, remap_cells,
// nominal_temp_c, nominal_vdd. Omitted keys (and the empty spec) take
// the Defaults values.
func Parse(spec string) (Config, error) {
	cfg := Defaults
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Config{}, fmt.Errorf("guard: bad spec entry %q (want key=value)", kv)
		}
		var err error
		switch key {
		case "sigma":
			cfg.SigmaK, err = strconv.ParseFloat(val, 64)
		case "rate_floor":
			cfg.RateFloorV, err = strconv.ParseFloat(val, 64)
		case "streak":
			cfg.Streak, err = strconv.Atoi(val)
		case "warmup":
			cfg.Warmup, err = strconv.ParseUint(val, 10, 64)
		case "rejuv_epochs":
			cfg.RejuvEpochs, err = strconv.ParseUint(val, 10, 64)
		case "rejuv_temp_c":
			cfg.RejuvTempC, err = strconv.ParseFloat(val, 64)
		case "rejuv_vdd":
			cfg.RejuvVdd, err = strconv.ParseFloat(val, 64)
		case "recover_frac":
			cfg.RecoverFrac, err = strconv.ParseFloat(val, 64)
		case "max_quarantine_frac":
			cfg.MaxQuarFrac, err = strconv.ParseFloat(val, 64)
		case "remap_cells":
			cfg.RemapCells, err = strconv.Atoi(val)
		case "nominal_temp_c":
			cfg.NominalTempC, err = strconv.ParseFloat(val, 64)
		case "nominal_vdd":
			cfg.NominalVdd, err = strconv.ParseFloat(val, 64)
		default:
			return Config{}, fmt.Errorf("guard: unknown spec key %q", key)
		}
		if err != nil {
			return Config{}, fmt.Errorf("guard: spec %s: %w", key, err)
		}
	}
	if err := cfg.validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// String re-emits the config in Parse's grammar, listing only fields
// that differ from Defaults (so the stock config renders as "").
// Parse(c.String()) reproduces c for any config Parse accepts.
func (c Config) String() string {
	var parts []string
	d := Defaults
	emitF := func(key string, v, def float64) {
		if v != def {
			parts = append(parts, key+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	emitU := func(key string, v, def uint64) {
		if v != def {
			parts = append(parts, key+"="+strconv.FormatUint(v, 10))
		}
	}
	emitF("sigma", c.SigmaK, d.SigmaK)
	emitF("rate_floor", c.RateFloorV, d.RateFloorV)
	if c.Streak != d.Streak {
		parts = append(parts, "streak="+strconv.Itoa(c.Streak))
	}
	emitU("warmup", c.Warmup, d.Warmup)
	emitU("rejuv_epochs", c.RejuvEpochs, d.RejuvEpochs)
	emitF("rejuv_temp_c", c.RejuvTempC, d.RejuvTempC)
	emitF("rejuv_vdd", c.RejuvVdd, d.RejuvVdd)
	emitF("recover_frac", c.RecoverFrac, d.RecoverFrac)
	emitF("max_quarantine_frac", c.MaxQuarFrac, d.MaxQuarFrac)
	if c.RemapCells != d.RemapCells {
		parts = append(parts, "remap_cells="+strconv.Itoa(c.RemapCells))
	}
	emitF("nominal_temp_c", c.NominalTempC, d.NominalTempC)
	emitF("nominal_vdd", c.NominalVdd, d.NominalVdd)
	return strings.Join(parts, ",")
}
