package guard

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"selfheal/internal/engine"
	"selfheal/internal/faults"
	"selfheal/internal/fleet"
	"selfheal/internal/fpga"
	"selfheal/internal/rng"
	"selfheal/internal/store"
)

func TestConfigParseStringRoundTrip(t *testing.T) {
	if cfg, err := Parse(""); err != nil || cfg != Defaults {
		t.Fatalf("empty spec = (%+v, %v), want Defaults", cfg, err)
	}
	if Defaults.String() != "" {
		t.Fatalf("Defaults.String() = %q, want empty", Defaults.String())
	}
	for _, spec := range []string{
		"sigma=6",
		"sigma=3,rate_floor=1e-3,streak=3",
		"warmup=5,rejuv_epochs=8,rejuv_temp_c=105,rejuv_vdd=-0.25",
		"recover_frac=0.8,max_quarantine_frac=0.1,remap_cells=4",
		"nominal_temp_c=85,nominal_vdd=1.1",
	} {
		cfg, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		again, err := Parse(cfg.String())
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", cfg.String(), spec, err)
		}
		if again != cfg {
			t.Fatalf("round trip %q: %+v != %+v", spec, again, cfg)
		}
	}
	for _, bad := range []string{
		"sigma=-1", "streak=0", "rejuv_vdd=0.3", "recover_frac=0",
		"recover_frac=1.5", "max_quarantine_frac=2", "remap_cells=0",
		"nominal_vdd=0", "nope=1", "sigma",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

// guardRig is an engine + guard pair ticking on the caller's goroutine.
type guardRig struct {
	eng   *engine.Engine
	guard *Guard
}

func newGuardRig(t *testing.T, cfg Config, d Deps, chips int) *guardRig {
	t.Helper()
	ctx := context.Background()
	var g *Guard
	eng, err := engine.New(store.NewMem[any](), engine.Config{
		EpochHours: 0.5,
		Workers:    1,
		OnEpoch:    func(epoch uint64, snap *engine.Snapshot) { g.OnEpoch(epoch, snap) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	d.Engine = eng
	g, err = New(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]engine.Spec, chips)
	for i := range specs {
		specs[i] = engine.Spec{ID: fmt.Sprintf("g%03d", i), TempC: 80, Vdd: 1.2, Duty: 1}
	}
	res, err := eng.RegisterBatch(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("register %s: %v", r.ID, r.Err)
		}
	}
	return &guardRig{eng: eng, guard: g}
}

func (r *guardRig) tick(n int) {
	for i := 0; i < n; i++ {
		r.eng.Tick(context.Background())
	}
}

func alertsByKind(alerts []Alert) map[AlertKind][]Alert {
	out := map[AlertKind][]Alert{}
	for _, a := range alerts {
		out[a.Kind] = append(out[a.Kind], a)
	}
	return out
}

// TestGuardClosedLoop runs the whole arena in miniature: a seeded
// adversary opens a dc-stress attack on two victims, the monitor
// convicts them from the fleet-relative aging rate, the responder
// quarantines, remaps onto spare fabric and schedules accelerated
// rejuvenation, and once the excess is recovered the victims rejoin
// the fleet at the nominal condition.
func TestGuardClosedLoop(t *testing.T) {
	adv, err := faults.NewAdversary(faults.AdversaryConfig{Seed: 42, Victims: 2, Start: 4, DenyP: 1, CancelP: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sp := fpga.DefaultParams()
	sp.Rows, sp.Cols = 8, 8
	spare, err := fpga.NewChip("spare-0", sp, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	rig := newGuardRig(t, Config{}, Deps{Adversary: adv, Spare: spare}, 16)
	rig.tick(40)

	victims := adv.Victims()
	if len(victims) != 2 {
		t.Fatalf("victims = %v", victims)
	}
	byKind := alertsByKind(rig.guard.Alerts(0))
	quarantined := map[string]bool{}
	for _, a := range byKind[AlertQuarantined] {
		quarantined[a.Chip] = true
	}
	for _, v := range victims {
		if !quarantined[v] {
			t.Fatalf("victim %s never quarantined; alerts: %+v", v, byKind[AlertQuarantined])
		}
	}
	// Only victims are ever convicted: the 14 bystander chips age at
	// the fleet baseline and must not trip the detector.
	for chip := range quarantined {
		if chip != victims[0] && chip != victims[1] {
			t.Fatalf("bystander %s quarantined", chip)
		}
	}
	if len(byKind[AlertRemapped]) == 0 {
		t.Fatal("no remap alerts despite spare fabric")
	}
	if len(byKind[AlertRejuvenating]) == 0 {
		t.Fatal("no rejuvenation alerts")
	}
	released := map[string]bool{}
	for _, a := range byKind[AlertReleased] {
		released[a.Chip] = true
	}
	for _, v := range victims {
		if !released[v] {
			t.Fatalf("victim %s never released; metrics %+v", v, rig.guard.MetricsSnapshot())
		}
	}

	// The quarantine actually blunted the attack: with deny_p=1 the
	// adversary keeps re-asserting stress every epoch, and every move
	// after conviction must have been refused.
	if st := adv.Stats(); st.Blocked == 0 {
		t.Fatalf("no adversary actions blocked: %+v", st)
	}

	m := rig.guard.MetricsSnapshot()
	if m.AlertsTotal == 0 || m.RemapsTotal == 0 || m.RejuvenationEpochsTotal == 0 || m.ReleasesTotal == 0 {
		t.Fatalf("metrics missing activity: %+v", m)
	}
	if m.SpareFreeCells != 64-int(m.RemapsTotal)*Defaults.RemapCells {
		t.Fatalf("spare accounting: %+v", m)
	}

	status := rig.guard.StatusSnapshot()
	if status.Adversary == nil || status.Adversary.Stats.StressActs == 0 {
		t.Fatalf("status adversary view: %+v", status.Adversary)
	}
}

// TestGuardQuarantineBudget pins the SLO: with a budget of one chip,
// the second conviction is deferred (typed alert) and only lands
// after the first victim is released.
func TestGuardQuarantineBudget(t *testing.T) {
	adv, err := faults.NewAdversary(faults.AdversaryConfig{Seed: 7, Victims: 2, Start: 4, DenyP: 1})
	if err != nil {
		t.Fatal(err)
	}
	rig := newGuardRig(t, Config{MaxQuarFrac: 0.01}, Deps{Adversary: adv}, 12)
	rig.tick(60)

	byKind := alertsByKind(rig.guard.Alerts(0))
	if len(byKind[AlertDeferred]) == 0 {
		t.Fatalf("no budget-deferred alert; kinds: %v", len(byKind))
	}
	quarantined := map[string]bool{}
	for _, a := range byKind[AlertQuarantined] {
		quarantined[a.Chip] = true
	}
	for _, v := range adv.Victims() {
		if !quarantined[v] {
			t.Fatalf("victim %s never quarantined under budget; %+v", v, rig.guard.MetricsSnapshot())
		}
	}
	// The budget was never exceeded: quarantined alerts are serialized
	// one at a time, so at no point do two overlap without a release
	// in between. Releases ≥ 1 proves the slot recycled.
	if m := rig.guard.MetricsSnapshot(); m.ReleasesTotal == 0 || m.QuarantinedChips > 1 {
		t.Fatalf("budget not enforced: %+v", m)
	}
}

// TestGuardRestartAdoption simulates the hard-kill path: the fleet
// journal replayed a chip as quarantined, but the new guard instance
// has no memory of the episode. The guard must re-adopt the chip on
// its first epoch — healing rhythm re-installed — and release it on
// the healthy bar (its pre-attack baseline is unknowable after a
// restart), never stranding it in quarantine.
func TestGuardRestartAdoption(t *testing.T) {
	ctx := context.Background()
	fl, err := fleet.NewService(store.NewMem[*fleet.ChipEntry]())
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	rig := newGuardRig(t, Config{}, Deps{Fleet: fl}, 8)
	for i := 0; i < 8; i++ {
		if _, err := fl.Create(ctx, fleet.CreateSpec{ID: fmt.Sprintf("g%03d", i), Seed: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	// The pre-restart state: the old guard quarantined g003, then the
	// process died. Replay restores the fleet-side quarantine only.
	if _, err := fl.Quarantine(ctx, "g003", "aging-rate outlier at epoch 9"); err != nil {
		t.Fatal(err)
	}

	rig.tick(1)
	adopted := false
	for _, a := range rig.guard.Alerts(0) {
		if a.Kind == AlertRejuvenating && a.Chip == "g003" {
			adopted = true
		}
	}
	if !adopted {
		t.Fatalf("no adoption alert; alerts %+v", rig.guard.Alerts(0))
	}
	st := rig.guard.StatusSnapshot()
	if len(st.Quarantined) != 1 || st.Quarantined[0].Chip != "g003" {
		t.Fatalf("adopted status = %+v", st.Quarantined)
	}

	rig.tick(20)
	if ids := fl.QuarantinedIDs(); len(ids) != 0 {
		t.Fatalf("adopted chip stranded in quarantine: %v", ids)
	}
	if m := rig.guard.MetricsSnapshot(); m.ReleasesTotal != 1 || m.QuarantinedChips != 0 {
		t.Fatalf("adoption lifecycle metrics: %+v", m)
	}
}

// TestGuardFleetQuarantine wires a real fleet service in: conviction
// must quarantine the journaled fleet entry (mutations refuse with
// QuarantinedError, reads serve), and release must lift it.
func TestGuardFleetQuarantine(t *testing.T) {
	ctx := context.Background()
	fl, err := fleet.NewService(store.NewMem[*fleet.ChipEntry]())
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	// One-shot attack (no deny/cancel spam): once the victim is
	// released it must *stay* released, which the final assertions pin.
	adv, advErr := faults.NewAdversary(faults.AdversaryConfig{Seed: 3, Victims: 1, Start: 4})
	if advErr != nil {
		t.Fatal(advErr)
	}
	rig := newGuardRig(t, Config{}, Deps{Adversary: adv, Fleet: fl}, 0)
	// Mirror fleet chips into the engine under the same ids, as serve
	// does; guard candidates are the intersection.
	var specs []engine.Spec
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("f%02d", i)
		if _, err := fl.Create(ctx, fleet.CreateSpec{ID: id, Seed: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
		specs = append(specs, engine.Spec{ID: id, TempC: 80, Vdd: 1.2, Duty: 1})
	}
	if res, err := rig.eng.RegisterBatch(ctx, specs); err != nil {
		t.Fatal(err)
	} else {
		for _, r := range res {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
	}

	// Tick until the victim is quarantined, probing the fleet surface
	// mid-quarantine.
	var victim string
	for i := 0; i < 30 && victim == ""; i++ {
		rig.tick(1)
		if ids := fl.QuarantinedIDs(); len(ids) > 0 {
			victim = ids[0]
		}
	}
	if victim == "" {
		t.Fatalf("no fleet quarantine after 30 epochs; alerts %+v", rig.guard.Alerts(0))
	}
	var qe fleet.QuarantinedError
	if _, err := fl.Stress(ctx, victim, fleet.PhaseRequest{TempC: 85, Vdd: 1.2, Hours: 1}); !errors.As(err, &qe) {
		t.Fatalf("stress on quarantined fleet chip = %v", err)
	}
	if _, ok := fl.Get(victim); !ok {
		t.Fatal("read on quarantined chip failed")
	}

	rig.tick(30)
	if ids := fl.QuarantinedIDs(); len(ids) != 0 {
		t.Fatalf("still quarantined after recovery window: %v", ids)
	}
	if _, err := fl.Stress(ctx, victim, fleet.PhaseRequest{TempC: 85, Vdd: 1.2, Hours: 1}); err != nil {
		t.Fatalf("stress after release: %v", err)
	}
}
