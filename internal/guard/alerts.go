package guard

// AlertKind classifies one blue-team event.
type AlertKind string

const (
	// AlertOutlier: a chip's aging rate crossed the detection
	// threshold this epoch (streak still building).
	AlertOutlier AlertKind = "aging-rate-outlier"
	// AlertQuarantined: the chip was convicted and quarantined.
	AlertQuarantined AlertKind = "quarantined"
	// AlertRemapped: the chip's logic was placed on spare fabric.
	AlertRemapped AlertKind = "remapped"
	// AlertRemapFailed: no spare capacity (or no spare chip) was
	// available for the remap; quarantine and rejuvenation proceed.
	AlertRemapFailed AlertKind = "remap-failed"
	// AlertRejuvenating: an accelerated-rejuvenation schedule was
	// installed for the chip.
	AlertRejuvenating AlertKind = "rejuvenation-scheduled"
	// AlertDeferred: conviction upheld but the quarantine budget
	// (max_quarantine_frac) is spent; retried when a slot frees.
	AlertDeferred AlertKind = "budget-deferred"
	// AlertReleased: the chip recovered past the release bar and
	// rejoined the fleet at the nominal condition.
	AlertReleased AlertKind = "released"
)

// Alert is one typed blue-team event, kept in a bounded ring for
// /v1/guard/alerts and mirrored into the tracer as a span.
type Alert struct {
	Seq    uint64    `json:"seq"`
	Epoch  uint64    `json:"epoch"`
	Kind   AlertKind `json:"kind"`
	Chip   string    `json:"chip"`
	Detail string    `json:"detail,omitempty"`
	// DeltaV is the per-epoch Vth delta that triggered detection
	// alerts (zero for lifecycle alerts).
	DeltaV float64 `json:"delta_v,omitempty"`
}

// alertRing is a fixed-capacity overwrite ring; callers hold Guard.mu.
type alertRing struct {
	buf  []Alert
	next int
	n    int
}

func newAlertRing(capacity int) *alertRing {
	if capacity <= 0 {
		capacity = 256
	}
	return &alertRing{buf: make([]Alert, capacity)}
}

func (r *alertRing) push(a Alert) {
	r.buf[r.next] = a
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// snapshot returns the retained alerts, newest first, at most limit
// (0 = all retained).
func (r *alertRing) snapshot(limit int) []Alert {
	if limit <= 0 || limit > r.n {
		limit = r.n
	}
	out := make([]Alert, 0, limit)
	for i := 1; i <= limit; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}
