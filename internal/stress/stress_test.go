package stress

import (
	"errors"
	"math"
	"testing"

	"selfheal/internal/fpga"
	"selfheal/internal/lut"
	"selfheal/internal/rng"
	"selfheal/internal/ro"
	"selfheal/internal/units"
)

func nominalChip(t *testing.T, seed uint64) *fpga.Chip {
	t.Helper()
	p := fpga.DefaultParams()
	p.ChipSigmaFrac = 0
	p.LocalSigmaFrac = 0
	p.VthSigmaV = 0
	c, err := fpga.NewChip("nom", p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// rig builds a chip + RO + engine wired like the paper's bench.
func rig(t *testing.T, seed uint64) (*fpga.Chip, *ro.Oscillator, *Engine) {
	t.Helper()
	chip := nominalChip(t, seed)
	osc, err := ro.New(chip, "cut", ro.DefaultParams(), rng.New(seed+100))
	if err != nil {
		t.Fatal(err)
	}
	eng := New(chip)
	if err := eng.AddActivity(Activity{Mapping: osc.Mapping(), AC: false, FrozenIn0: true}); err != nil {
		t.Fatal(err)
	}
	return chip, osc, eng
}

// trueDelay reads the noiseless chain delay.
func trueDelay(t *testing.T, osc *ro.Oscillator) float64 {
	t.Helper()
	d, err := osc.Mapping().MeasuredDelay(1.2)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDC24hCalibration is the end-to-end wearout calibration: 24 h DC
// stress at 110 °C / 1.2 V degrades the RO by ≈2.2 % (paper Fig. 5 /
// Table 2).
func TestDC24hCalibration(t *testing.T) {
	_, osc, eng := rig(t, 1)
	fresh := trueDelay(t, osc)
	if err := eng.Step(1.2, 110, 24*units.Hour); err != nil {
		t.Fatal(err)
	}
	aged := trueDelay(t, osc)
	pct := (aged - fresh) / fresh * 100
	if math.Abs(pct-2.2) > 0.25 {
		t.Errorf("24h DC degradation = %.3f %%, want 2.2 ± 0.25 %%", pct)
	}
}

// TestACHalfOfDC is Fig. 4 at system level: AC stress degrades about
// half as much as DC under identical conditions.
func TestACHalfOfDC(t *testing.T) {
	_, oscDC, engDC := rig(t, 2)
	freshDC := trueDelay(t, oscDC)
	if err := engDC.Step(1.2, 110, 24*units.Hour); err != nil {
		t.Fatal(err)
	}
	dc := trueDelay(t, oscDC) - freshDC

	chipAC := nominalChip(t, 2)
	oscAC, err := ro.New(chipAC, "cut", ro.DefaultParams(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	engAC := New(chipAC)
	if err := engAC.AddActivity(Activity{Mapping: oscAC.Mapping(), AC: true}); err != nil {
		t.Fatal(err)
	}
	freshAC := trueDelay(t, oscAC)
	if err := engAC.Step(1.2, 110, 24*units.Hour); err != nil {
		t.Fatal(err)
	}
	ac := trueDelay(t, oscAC) - freshAC

	if ratio := ac / dc; math.Abs(ratio-0.5) > 0.08 {
		t.Errorf("AC/DC degradation ratio = %.3f, want ≈0.5", ratio)
	}
}

// TestRecoveredFractionsEndToEnd reproduces Table 4 at system level:
// after 24 h DC stress at 110 °C, six hours of sleep recover ≈36 / 47 /
// 56 / 72 % of the delay shift under the four paper conditions.
func TestRecoveredFractionsEndToEnd(t *testing.T) {
	cases := []struct {
		name string
		vdd  units.Volt
		temp units.Celsius
		want float64
	}{
		{"R20Z6", 0, 20, 0.36},
		{"AR20N6", -0.3, 20, 0.47},
		{"AR110Z6", 0, 110, 0.56},
		{"AR110N6", -0.3, 110, 0.724},
	}
	for _, c := range cases {
		_, osc, eng := rig(t, 10)
		fresh := trueDelay(t, osc)
		if err := eng.Step(1.2, 110, 24*units.Hour); err != nil {
			t.Fatal(err)
		}
		aged := trueDelay(t, osc)
		if err := eng.Step(c.vdd, c.temp, 6*units.Hour); err != nil {
			t.Fatal(err)
		}
		healed := trueDelay(t, osc)
		frac := (aged - healed) / (aged - fresh)
		if math.Abs(frac-c.want) > 0.02 {
			t.Errorf("%s: recovered fraction = %.3f, want ≈%.3f", c.name, frac, c.want)
		}
	}
}

// TestACPartiallySelfHealing: the paper calls AC stress "a partially
// self-healing process" — transistors out of their stress region while
// the chip runs recover passively. After DC stress, continuing to run
// the chip with the RO frozen at the opposite input must shrink the
// previously stressed devices' shift.
func TestACPartiallySelfHealing(t *testing.T) {
	_, osc, eng := rig(t, 4)
	if err := eng.Step(1.2, 110, 24*units.Hour); err != nil {
		t.Fatal(err)
	}
	// BufN of stage 0 (frozen at in0=1) carries full DC stress.
	tr := osc.Mapping().Cells[0].Transistors()[lut.BufN]
	before := tr.VthShift()
	if before == 0 {
		t.Fatal("expected BufN stressed")
	}
	// Flip the frozen input: BufN of stage 0 leaves its stress region
	// but the chip keeps running at temperature.
	if err := eng.SetAC("cut", false, false); err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(1.2, 110, 6*units.Hour); err != nil {
		t.Fatal(err)
	}
	after := tr.VthShift()
	if after >= before {
		t.Errorf("no passive recovery during operation: %v -> %v", before, after)
	}
	// Passive on-line recovery is much weaker than the accelerated
	// sleep recovery (negative rail), which would have removed most of
	// the recoverable part.
	if (before-after)/before > 0.6 {
		t.Errorf("passive recovery implausibly strong: %.1f %%", (before-after)/before*100)
	}
}

func TestIdleCellsAgeWhenEnabled(t *testing.T) {
	chip, _, eng := rig(t, 5)
	if err := eng.Step(1.2, 110, 24*units.Hour); err != nil {
		t.Fatal(err)
	}
	// An unused cell (RO occupies the first 75 of 256) must carry some
	// quiescent-pattern stress.
	idle, err := chip.LUT(15, 15)
	if err != nil {
		t.Fatal(err)
	}
	if chip.Used(15, 15) {
		t.Fatal("cell unexpectedly used")
	}
	shift := 0.0
	for _, tr := range idle.Transistors() {
		shift += tr.VthShift()
	}
	if shift == 0 {
		t.Error("idle cell did not age with StressIdleCells on")
	}
}

func TestIdleCellsSkippedWhenDisabled(t *testing.T) {
	chip, _, eng := rig(t, 6)
	eng.StressIdleCells = false
	if err := eng.Step(1.2, 110, 24*units.Hour); err != nil {
		t.Fatal(err)
	}
	idle, err := chip.LUT(15, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range idle.Transistors() {
		if tr.VthShift() != 0 {
			t.Fatalf("idle transistor %s aged with StressIdleCells off", tr.Name)
		}
	}
}

func TestAddActivityValidation(t *testing.T) {
	chipA := nominalChip(t, 7)
	chipB := nominalChip(t, 8)
	oscB, err := ro.New(chipB, "cut", ro.DefaultParams(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	eng := New(chipA)
	if err := eng.AddActivity(Activity{Mapping: nil}); err == nil {
		t.Error("nil mapping accepted")
	}
	if err := eng.AddActivity(Activity{Mapping: oscB.Mapping()}); err == nil {
		t.Error("foreign mapping accepted")
	}
}

func TestChipAccessor(t *testing.T) {
	chip, _, eng := rig(t, 40)
	if eng.Chip() != chip {
		t.Error("Chip() returned a different die")
	}
}

func TestProtectValidation(t *testing.T) {
	chipA := nominalChip(t, 41)
	chipB := nominalChip(t, 42)
	eng := New(chipA)
	if err := eng.Protect(nil); err == nil {
		t.Error("nil mapping accepted")
	}
	mB, err := chipB.MapInverterChain("m", 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Protect(mB); err == nil {
		t.Error("foreign mapping accepted")
	}
}

func TestProtectedCellsSkipStressButRecover(t *testing.T) {
	chip := nominalChip(t, 43)
	eng := New(chip)
	protected, err := chip.MapInverterChain("island", 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Protect(protected); err != nil {
		t.Fatal(err)
	}
	// Active operation: protected cells must stay fresh even though
	// idle-cell stressing is on.
	if err := eng.Step(1.2, 110, 12*units.Hour); err != nil {
		t.Fatal(err)
	}
	for _, cell := range protected.Cells {
		for _, tr := range cell.Transistors() {
			if tr.VthShift() != 0 {
				t.Fatalf("protected transistor %s aged", tr.Name)
			}
		}
	}
	// Pre-damage one protected transistor by hand; continued operation
	// must passively heal it (the island recovers while the die runs).
	tr := protected.Cells[0].Transistors()[0]
	tr.Stress(chip.Params().TD, 1.2, units.Celsius(110).Kelvin(), 1, 12*units.Hour)
	before := tr.VthShift()
	if err := eng.Step(1.2, 110, 6*units.Hour); err != nil {
		t.Fatal(err)
	}
	if tr.VthShift() >= before {
		t.Errorf("protected island did not passively heal: %v -> %v", before, tr.VthShift())
	}
}

func TestAddActivityCellPhasesValidation(t *testing.T) {
	chip := nominalChip(t, 44)
	eng := New(chip)
	m, err := chip.MapInverterChain("m", 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddActivity(Activity{Mapping: m, CellPhases: make([][]lut.Phase, 2)}); err == nil {
		t.Error("mismatched CellPhases length accepted")
	}
	phases := make([][]lut.Phase, 5)
	for i := range phases {
		phases[i] = lut.DCPhase(false, true)
	}
	if err := eng.AddActivity(Activity{Mapping: m, CellPhases: phases}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(1.2, 110, units.Hour); err != nil {
		t.Fatal(err)
	}
	if chip.MeanVthShift() == 0 {
		t.Error("custom cell phases produced no aging")
	}
}

func TestSetACUnknownName(t *testing.T) {
	_, _, eng := rig(t, 11)
	if err := eng.SetAC("nope", true, false); err == nil {
		t.Error("unknown design name accepted")
	}
}

func TestStepPanicsOnNegativeDuration(t *testing.T) {
	_, _, eng := rig(t, 12)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	eng.Step(1.2, 110, -1)
}

func TestStepZeroIsNoOp(t *testing.T) {
	chip, _, eng := rig(t, 13)
	if err := eng.Step(1.2, 110, 0); err != nil {
		t.Fatal(err)
	}
	if chip.MeanVthShift() != 0 || eng.Elapsed() != 0 {
		t.Error("zero step changed state")
	}
}

func TestElapsedAccounting(t *testing.T) {
	_, _, eng := rig(t, 14)
	eng.Step(1.2, 110, units.Hour)
	eng.Step(0, 20, 30*units.Minute)
	if got := eng.Elapsed(); got != units.Hour+30*units.Minute {
		t.Errorf("elapsed = %v", got)
	}
}

func TestRunSamplingCallback(t *testing.T) {
	_, _, eng := rig(t, 15)
	var times []units.Seconds
	err := eng.Run(1.2, 110, 20*units.Minute, 6, func(tt units.Seconds) error {
		times = append(times, tt)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 6 || times[0] != 20*units.Minute || times[5] != 2*units.Hour {
		t.Errorf("sample times = %v", times)
	}
	// Error from the callback aborts the run.
	boom := errors.New("boom")
	err = eng.Run(1.2, 110, units.Minute, 3, func(units.Seconds) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("callback error not propagated: %v", err)
	}
	if err := eng.Run(1.2, 110, units.Minute, -1, nil); err == nil {
		t.Error("negative step count accepted")
	}
}

// TestSteppedEqualsOneShot: integrating a stress phase in many small
// steps must land on the same state as a single large step (the TD
// state machine is consistent under subdivision).
func TestSteppedEqualsOneShot(t *testing.T) {
	_, oscA, engA := rig(t, 16)
	if err := engA.Step(1.2, 110, 24*units.Hour); err != nil {
		t.Fatal(err)
	}
	_, oscB, engB := rig(t, 16)
	for i := 0; i < 72; i++ {
		if err := engB.Step(1.2, 110, 20*units.Minute); err != nil {
			t.Fatal(err)
		}
	}
	a := trueDelay(t, oscA)
	b := trueDelay(t, oscB)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("one-shot %v != stepped %v", a, b)
	}
}

// TestSawtoothCycles: repeated stress/recover cycles must be bounded
// (with rejuvenation) while pure stress keeps growing — the Fig. 9
// mechanism, asserted here at small scale.
func TestSawtoothCycles(t *testing.T) {
	_, oscA, engA := rig(t, 17)
	fresh := trueDelay(t, oscA)
	var cycledPeaks []float64
	for c := 0; c < 4; c++ {
		if err := engA.Step(1.2, 110, 24*units.Hour); err != nil {
			t.Fatal(err)
		}
		cycledPeaks = append(cycledPeaks, trueDelay(t, oscA)-fresh)
		if err := engA.Step(-0.3, 110, 6*units.Hour); err != nil {
			t.Fatal(err)
		}
	}
	_, oscB, engB := rig(t, 17)
	freshB := trueDelay(t, oscB)
	if err := engB.Step(1.2, 110, 4*30*units.Hour); err != nil {
		t.Fatal(err)
	}
	continuous := trueDelay(t, oscB) - freshB

	// The rejuvenated chip's final peak stays below the continuously
	// stressed chip's shift.
	if last := cycledPeaks[len(cycledPeaks)-1]; last >= continuous {
		t.Errorf("rejuvenation did not bound degradation: %v vs %v", last, continuous)
	}
	// Peaks grow slowly (permanent accumulation) but the increment must
	// shrink cycle over cycle.
	d1 := cycledPeaks[1] - cycledPeaks[0]
	d3 := cycledPeaks[3] - cycledPeaks[2]
	if d3 >= d1 {
		t.Errorf("peak increments not shrinking: %v then %v", d1, d3)
	}
}

func TestRecoveryAffectsWholeDie(t *testing.T) {
	chip, _, eng := rig(t, 18)
	if err := eng.Step(1.2, 110, 24*units.Hour); err != nil {
		t.Fatal(err)
	}
	before := chip.MeanVthShift()
	if err := eng.Step(-0.3, 110, 6*units.Hour); err != nil {
		t.Fatal(err)
	}
	if after := chip.MeanVthShift(); after >= before {
		t.Errorf("die-wide recovery failed: %v -> %v", before, after)
	}
}

// TestYearLongSoak drives a chip through a simulated year of mixed
// operation — circadian cycles, occasional deep stress weeks, cold
// storage — and checks the state stays physical throughout: finite,
// non-negative, bounded, and still healable at the end.
func TestYearLongSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("year-long soak")
	}
	chip, osc, eng := rig(t, 99)
	fresh := trueDelay(t, osc)
	week := 0
	for day := 0; day < 365; day++ {
		switch {
		case week%8 == 7:
			// Maintenance week: cold storage.
			if err := eng.Step(0, 20, 24*units.Hour); err != nil {
				t.Fatal(err)
			}
		case week%8 == 6:
			// Burn week: continuous hot stress.
			if err := eng.Step(1.2, 110, 24*units.Hour); err != nil {
				t.Fatal(err)
			}
		default:
			// Circadian operation.
			if err := eng.Step(1.2, 85, 19*units.Hour); err != nil {
				t.Fatal(err)
			}
			if err := eng.Step(-0.3, 110, 5*units.Hour); err != nil {
				t.Fatal(err)
			}
		}
		if day%7 == 6 {
			week++
		}
		if day%30 != 0 {
			continue
		}
		d := trueDelay(t, osc)
		if math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatalf("day %d: non-finite delay", day)
		}
		if d < fresh {
			t.Fatalf("day %d: delay %v below fresh %v", day, d, fresh)
		}
		if (d-fresh)/fresh > 0.05 {
			t.Fatalf("day %d: degradation %v%% implausible under circadian care",
				day, (d-fresh)/fresh*100)
		}
	}
	// Still healable: one deep rejuvenation removes most of the
	// recoverable damage even after a year of history.
	before := trueDelay(t, osc)
	if err := eng.Step(-0.3, 110, 12*units.Hour); err != nil {
		t.Fatal(err)
	}
	after := trueDelay(t, osc)
	if after >= before {
		t.Error("year-old chip no longer heals")
	}
	if chip.MeanVthShift() < 0 {
		t.Error("negative mean shift")
	}
}

func BenchmarkStep20min(b *testing.B) {
	chip, err := fpga.NewChip("b", fpga.DefaultParams(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	osc, err := ro.New(chip, "cut", ro.DefaultParams(), rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	eng := New(chip)
	if err := eng.AddActivity(Activity{Mapping: osc.Mapping(), AC: false, FrozenIn0: true}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Step(1.2, 110, 20*units.Minute); err != nil {
			b.Fatal(err)
		}
	}
}
