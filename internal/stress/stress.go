// Package stress is the aging engine: it advances every transistor on
// an FPGA chip through scheduled stress (wearout) and sleep (recovery)
// phases, applying the TD device model with the per-transistor duty
// cycles derived from each mapped design's switching activity.
//
// The engine implements the paper's operating regimes:
//
//   - Active, rail at operating voltage: transistors whose bias pattern
//     stresses them age (DC duty 1, AC duty 0.5, the LUT level-1 mux
//     statically); transistors that carry accumulated damage but are
//     not presently stressed recover passively at 0 V reverse bias —
//     the reason the paper calls AC stress "a partially self-healing
//     process with a slow recovery rate".
//   - Sleep, rail gated to 0 V: the whole die recovers passively.
//   - Sleep, rail negative (e.g. −0.3 V): the whole die recovers with
//     the reverse-bias acceleration — the paper's accelerated
//     self-healing.
//
// Idle (unmapped) cells can optionally be aged at their quiescent input
// pattern; real fabrics age even where no design is placed.
package stress

import (
	"errors"
	"fmt"

	"selfheal/internal/device"
	"selfheal/internal/fpga"
	"selfheal/internal/lut"
	"selfheal/internal/units"
)

// Activity describes the switching behaviour of one mapped design.
type Activity struct {
	Mapping *fpga.Mapping
	// AC reports whether the design is toggling (oscillating RO) or
	// frozen (DC stress).
	AC bool
	// FrozenIn0 is the chain input value while frozen (ignored for AC).
	FrozenIn0 bool
	// CellPhases, when non-nil, overrides the inverter-chain activity
	// model with explicit per-cell input phases (index-aligned with
	// Mapping.Cells) — how arbitrary mapped logic (package netlist)
	// describes its workload-driven switching statistics.
	CellPhases [][]lut.Phase
}

// phasesFor returns the activity phases of stage i.
func (a Activity) phasesFor(i int) []lut.Phase {
	if a.CellPhases != nil {
		return a.CellPhases[i]
	}
	return a.Mapping.StagePhases(i, a.AC, a.FrozenIn0)
}

// Engine ages one chip. Register the mapped designs' activities with
// AddActivity, then drive time forward with Step.
type Engine struct {
	chip       *fpga.Chip
	activities []Activity
	// StressIdleCells ages unmapped cells at their quiescent pattern
	// (inputs tied low) whenever the rail is up. Defaults to true in
	// New; the paper's CUT-relative metrics are insensitive to it, but
	// chip-level leakage and mean-shift metrics are not.
	StressIdleCells bool
	// protected cells sit on a separately gated power island: they see
	// no stress while the chip operates (only passive recovery), the
	// way a silicon-odometer reference oscillator is preserved.
	protected map[*lut.LUT2]bool
	elapsed   units.Seconds
}

// New returns an engine for the chip.
func New(chip *fpga.Chip) *Engine {
	return &Engine{chip: chip, StressIdleCells: true}
}

// Chip returns the chip under the engine.
func (e *Engine) Chip() *fpga.Chip { return e.chip }

// Elapsed returns the total simulated time.
func (e *Engine) Elapsed() units.Seconds { return e.elapsed }

// Protect places a mapped design on a gated power island: while the
// chip operates, its cells accumulate no stress (they recover
// passively at die temperature instead). Used for reference structures
// such as the odometer's unstressed oscillator.
func (e *Engine) Protect(m *fpga.Mapping) error {
	if m == nil {
		return errors.New("stress: nil mapping")
	}
	if m.Chip != e.chip {
		return fmt.Errorf("stress: mapping %q belongs to chip %q, engine drives %q",
			m.Name, m.Chip.ID(), e.chip.ID())
	}
	if e.protected == nil {
		e.protected = make(map[*lut.LUT2]bool)
	}
	for _, cell := range m.Cells {
		e.protected[cell] = true
	}
	return nil
}

// AddActivity registers a design's switching behaviour. The mapping
// must live on the engine's chip.
func (e *Engine) AddActivity(a Activity) error {
	if a.Mapping == nil {
		return errors.New("stress: nil mapping")
	}
	if a.Mapping.Chip != e.chip {
		return fmt.Errorf("stress: mapping %q belongs to chip %q, engine drives %q",
			a.Mapping.Name, a.Mapping.Chip.ID(), e.chip.ID())
	}
	if a.CellPhases != nil && len(a.CellPhases) != len(a.Mapping.Cells) {
		return fmt.Errorf("stress: %d cell phases for %d mapped cells",
			len(a.CellPhases), len(a.Mapping.Cells))
	}
	e.activities = append(e.activities, a)
	return nil
}

// SetAC switches the registered design named name between AC and DC
// activity (and sets the frozen input for DC).
func (e *Engine) SetAC(name string, ac, frozenIn0 bool) error {
	for i := range e.activities {
		if e.activities[i].Mapping.Name == name {
			e.activities[i].AC = ac
			e.activities[i].FrozenIn0 = frozenIn0
			return nil
		}
	}
	return fmt.Errorf("stress: no activity named %q", name)
}

// operatingThreshold is the rail voltage above which the fabric is
// considered powered and switching; below it the die is in (possibly
// accelerated) recovery.
const operatingThreshold units.Volt = 0.5

// Step advances the chip by dt with the rail at vdd and the die at
// temp. Negative dt panics; dt of zero is a no-op.
func (e *Engine) Step(vdd units.Volt, temp units.Celsius, dt units.Seconds) error {
	if dt < 0 {
		panic(fmt.Sprintf("stress: negative step %v", dt))
	}
	if dt == 0 {
		return nil
	}
	defer func() { e.elapsed += dt }()
	k := temp.Kelvin()
	tdp := e.chip.Params().TD

	if vdd <= operatingThreshold {
		// Sleep: the whole die recovers; a negative rail accelerates
		// (Hypothesis 2 holds structurally — fresh devices carry no
		// shift, so recovery cannot affect them).
		var vrev units.Volt
		if vdd < 0 {
			vrev = -vdd
		}
		e.chip.Transistors(func(tr *device.Transistor) {
			tr.Recover(tdp, vrev, k, dt)
		})
		return nil
	}

	// Active operation: compute each cell's per-transistor stress duty.
	// Cells not covered by any registered activity are idle; their
	// quiescent pattern (inputs low) stresses a fixed subset when
	// StressIdleCells is set.
	type plan struct {
		cell   *lut.LUT2
		duties [lut.NumTransistors]float64
	}
	covered := make(map[*lut.LUT2]bool)
	var plans []plan

	for _, a := range e.activities {
		for i, cell := range a.Mapping.Cells {
			if e.protected[cell] {
				continue
			}
			duties, err := cell.StressDuties(a.phasesFor(i))
			if err != nil {
				return fmt.Errorf("stress: design %q stage %d: %w", a.Mapping.Name, i, err)
			}
			plans = append(plans, plan{cell: cell, duties: duties})
			covered[cell] = true
		}
	}
	if e.StressIdleCells {
		idlePhases := lut.DCPhase(false, false)
		var walkErr error
		e.chip.Cells(func(_, _ int, cell *lut.LUT2, _ bool) {
			if covered[cell] || e.protected[cell] || walkErr != nil {
				return
			}
			duties, err := cell.StressDuties(idlePhases)
			if err != nil {
				walkErr = err
				return
			}
			plans = append(plans, plan{cell: cell, duties: duties})
		})
		if walkErr != nil {
			return fmt.Errorf("stress: idle cells: %w", walkErr)
		}
	}
	// Protected islands recover passively at die temperature whenever
	// they carry damage, regardless of what the rest of the die does.
	for cell := range e.protected {
		for _, tr := range cell.Transistors() {
			if tr.VthShift() > 0 {
				tr.Recover(tdp, 0, k, dt)
			}
		}
	}

	for _, p := range plans {
		for i, tr := range p.cell.Transistors() {
			switch {
			case p.duties[i] > 0:
				tr.Stress(tdp, vdd, k, p.duties[i], dt)
			case tr.VthShift() > 0:
				// Biased out of its stress region while the chip runs:
				// passive recovery at operating temperature.
				tr.Recover(tdp, 0, k, dt)
			}
		}
	}
	return nil
}

// Run advances the chip through n equal steps of dt each at a fixed
// condition, invoking sample (if non-nil) after every step with the
// cumulative time into the run. It is the building block the experiment
// harness uses for the paper's "wake every 20/30 minutes and record"
// schedules.
func (e *Engine) Run(vdd units.Volt, temp units.Celsius, dt units.Seconds, n int,
	sample func(t units.Seconds) error) error {
	if n < 0 {
		return errors.New("stress: negative step count")
	}
	for i := 1; i <= n; i++ {
		if err := e.Step(vdd, temp, dt); err != nil {
			return err
		}
		if sample != nil {
			if err := sample(units.Seconds(i) * dt); err != nil {
				return err
			}
		}
	}
	return nil
}
