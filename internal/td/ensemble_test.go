package td

import (
	"math"
	"testing"

	"selfheal/internal/rng"
	"selfheal/internal/stats"
	"selfheal/internal/units"
)

func newTestEnsemble(t *testing.T, n int, seed uint64) *Ensemble {
	t.Helper()
	e, err := NewEnsemble(n, DefaultEnsembleParams(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEnsembleConstruction(t *testing.T) {
	e := newTestEnsemble(t, 500, 1)
	if e.Len() != 500 {
		t.Fatalf("Len = %d", e.Len())
	}
	if e.DeltaVth() != 0 || e.Occupied() != 0 {
		t.Error("fresh ensemble not empty")
	}
}

func TestEnsembleRejectsBadInput(t *testing.T) {
	if _, err := NewEnsemble(0, DefaultEnsembleParams(), rng.New(1)); err == nil {
		t.Error("n=0 accepted")
	}
	bad := DefaultEnsembleParams()
	bad.TauLo = 0
	if _, err := NewEnsemble(10, bad, rng.New(1)); err == nil {
		t.Error("TauLo=0 accepted")
	}
	bad = DefaultEnsembleParams()
	bad.TauHi = bad.TauLo / 2
	if _, err := NewEnsemble(10, bad, rng.New(1)); err == nil {
		t.Error("TauHi<TauLo accepted")
	}
	bad = DefaultEnsembleParams()
	bad.EtaVolt = 0
	if _, err := NewEnsemble(10, bad, rng.New(1)); err == nil {
		t.Error("EtaVolt=0 accepted")
	}
	bad = DefaultEnsembleParams()
	bad.PermProb = 1.5
	if _, err := NewEnsemble(10, bad, rng.New(1)); err == nil {
		t.Error("PermProb>1 accepted")
	}
	bad = DefaultEnsembleParams()
	bad.TRef = 0
	if _, err := NewEnsemble(10, bad, rng.New(1)); err == nil {
		t.Error("TRef=0 accepted")
	}
}

func TestEnsembleStressGrowsShift(t *testing.T) {
	e := newTestEnsemble(t, 2000, 2)
	prev := 0.0
	for i := 0; i < 10; i++ {
		e.Stress(dc110, units.Hour)
		v := e.DeltaVth()
		if v < prev {
			t.Fatalf("shift decreased under stress at step %d", i)
		}
		prev = v
	}
	if prev <= 0 {
		t.Fatal("no degradation after 10 h of stress")
	}
}

func TestEnsembleRecoveryShrinksShift(t *testing.T) {
	e := newTestEnsemble(t, 2000, 3)
	e.Stress(dc110, 24*units.Hour)
	v1 := e.DeltaVth()
	e.Recover(r110N, 6*units.Hour)
	v2 := e.DeltaVth()
	if v2 >= v1 {
		t.Fatalf("no recovery: %.6g -> %.6g", v1, v2)
	}
}

func TestEnsemblePermanentTrapsNeverEmit(t *testing.T) {
	p := DefaultEnsembleParams()
	p.PermProb = 1 // every trap permanent
	e, err := NewEnsemble(1000, p, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	e.Stress(dc110, 24*units.Hour)
	v1 := e.DeltaVth()
	e.Recover(RecoveryCond{VRev: 0.5, T: units.Celsius(150).Kelvin()}, 1000*units.Hour)
	if e.DeltaVth() != v1 {
		t.Errorf("permanent traps emitted: %.6g -> %.6g", v1, e.DeltaVth())
	}
}

func TestEnsembleAcceleratedRecoveryFaster(t *testing.T) {
	// Identical seeds → identical trap populations; compare the four
	// paper conditions on the same population.
	fractions := make([]float64, len(allRecov))
	for i, rc := range allRecov {
		e := newTestEnsemble(t, 5000, 5)
		e.Stress(dc110, 24*units.Hour)
		v1 := e.DeltaVth()
		e.Recover(rc, 6*units.Hour)
		fractions[i] = (v1 - e.DeltaVth()) / v1
	}
	// Combined (idx 3) must beat passive (idx 0) decisively, and both
	// single-knob conditions must beat passive.
	if fractions[3] <= fractions[0]+0.05 {
		t.Errorf("combined %.3f not decisively above passive %.3f", fractions[3], fractions[0])
	}
	if fractions[1] <= fractions[0] || fractions[2] <= fractions[0] {
		t.Errorf("single-knob conditions not above passive: %v", fractions)
	}
}

func TestEnsembleZeroDurationNoOp(t *testing.T) {
	e := newTestEnsemble(t, 100, 6)
	e.Stress(dc110, 0)
	e.Recover(r20Z, 0)
	e.Stress(dc110, -5)
	if e.DeltaVth() != 0 {
		t.Error("zero/negative duration changed state")
	}
}

// TestExpectedEnsembleLogShape validates the first-order model's shape
// against the mean-field trap ensemble: the ΔVth(t) trajectory under DC
// stress must be strongly linear in ln(1+C·t), which is exactly the
// closed form the paper fits (Eq. 10).
func TestExpectedEnsembleLogShape(t *testing.T) {
	e, err := NewExpectedEnsemble(4000, DefaultEnsembleParams(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	var xs, ys []float64
	const step = units.Hour
	for i := 1; i <= 24; i++ {
		e.Stress(dc110, step)
		tt := float64(i) * float64(step)
		xs = append(xs, math.Log1p(0.01*tt))
		ys = append(ys, e.DeltaVth())
	}
	fit, err := stats.LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.98 {
		t.Errorf("ensemble trajectory not log-shaped: R² = %.4f", fit.R2)
	}
	if fit.Slope <= 0 {
		t.Errorf("non-positive log slope %v", fit.Slope)
	}
}

// TestExpectedEnsembleRecoveryFastThenSlow validates the recovery-shape
// claim: the first sleep hour removes more shift than the sixth.
func TestExpectedEnsembleRecoveryFastThenSlow(t *testing.T) {
	e, err := NewExpectedEnsemble(4000, DefaultEnsembleParams(), rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	e.Stress(dc110, 24*units.Hour)
	drops := make([]float64, 6)
	prev := e.DeltaVth()
	for i := range drops {
		e.Recover(r110N, units.Hour)
		drops[i] = prev - e.DeltaVth()
		prev = e.DeltaVth()
	}
	if drops[0] <= drops[5] {
		t.Errorf("recovery not decelerating: first hour %.6g, sixth hour %.6g", drops[0], drops[5])
	}
}

// TestAnalyticMatchesEnsembleOrdering cross-validates the two models:
// the analytic recovered fractions and the mean-field ensemble fractions
// must rank the four paper conditions identically.
func TestAnalyticMatchesEnsembleOrdering(t *testing.T) {
	p := DefaultParams()
	analytic := make([]float64, len(allRecov))
	ensemble := make([]float64, len(allRecov))
	for i, rc := range allRecov {
		analytic[i] = stressThenRecover(p, 24*units.Hour, rc, 6*units.Hour)
		e, err := NewExpectedEnsemble(3000, DefaultEnsembleParams(), rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		e.Stress(dc110, 24*units.Hour)
		v1 := e.DeltaVth()
		e.Recover(rc, 6*units.Hour)
		ensemble[i] = (v1 - e.DeltaVth()) / v1
	}
	for i := 1; i < len(allRecov); i++ {
		if (analytic[i] > analytic[i-1]) != (ensemble[i] > ensemble[i-1]) {
			t.Errorf("models disagree on ordering at %d: analytic %v ensemble %v", i, analytic, ensemble)
		}
	}
}

func TestEnsembleDeterministicReplay(t *testing.T) {
	run := func() float64 {
		e := newTestEnsemble(t, 1000, 42)
		e.Stress(dc110, 12*units.Hour)
		e.Recover(r110N, 3*units.Hour)
		return e.DeltaVth()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("replay differs: %v vs %v", a, b)
	}
}

func BenchmarkEnsembleStress(b *testing.B) {
	e, err := NewEnsemble(1000, DefaultEnsembleParams(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Stress(dc110, units.Minute)
	}
}
