package td

import (
	"math"
	"testing"
	"testing/quick"

	"selfheal/internal/units"
)

var (
	hot110   = units.Celsius(110).Kelvin()
	hot100   = units.Celsius(100).Kelvin()
	room     = units.Celsius(20).Kelvin()
	dc110    = StressCond{V: 1.2, T: hot110, Duty: 1}
	ac110    = StressCond{V: 1.2, T: hot110, Duty: 0.5}
	dc100    = StressCond{V: 1.2, T: hot100, Duty: 1}
	r20Z     = RecoveryCond{VRev: 0, T: room}
	r20N     = RecoveryCond{VRev: 0.3, T: room}
	r110Z    = RecoveryCond{VRev: 0, T: hot110}
	r110N    = RecoveryCond{VRev: 0.3, T: hot110}
	allRecov = []RecoveryCond{r20Z, r20N, r110Z, r110N}
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mods := []func(*Params){
		func(p *Params) { p.K1 = 0 },
		func(p *Params) { p.K2 = -1 },
		func(p *Params) { p.E0s = -0.1 },
		func(p *Params) { p.E0r = -0.1 },
		func(p *Params) { p.C = 0 },
		func(p *Params) { p.Cr = -1 },
		func(p *Params) { p.Ka = 0 },
		func(p *Params) { p.Kb = 0 },
		func(p *Params) { p.ACExp = 0.5 },
		func(p *Params) { p.PermFrac = -0.1 },
		func(p *Params) { p.PermFrac = 1 },
		func(p *Params) { p.ToxNM = 0 },
		func(p *Params) { p.MaxRecovery = 0 },
		func(p *Params) { p.MaxRecovery = 1.1 },
	}
	for i, mod := range mods {
		p := DefaultParams()
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

// TestCalibration24hDC asserts the headline wearout calibration: 24 h of
// DC stress at 110 °C / 1.2 V shifts Vth by ~40.2 mV, which the RO path
// accounting (≈54.7 ns/V measured-path gain) turns into the paper's
// ~2.2 ns (2.2 %) degradation.
func TestCalibration24hDC(t *testing.T) {
	p := DefaultParams()
	got := StressShift(p, dc110, 24*units.Hour)
	if math.Abs(got-0.0402) > 0.0004 {
		t.Errorf("ΔVth(24h,110°C,DC) = %.5f V, want ≈0.0402 V", got)
	}
}

// TestCalibrationTemperatureRatio asserts 110 °C wearout exceeds 100 °C
// by ~14 % (Table 2 / Fig. 5 gap: ≈2.2 % vs ≈1.9 %).
func TestCalibrationTemperatureRatio(t *testing.T) {
	p := DefaultParams()
	v110 := StressShift(p, dc110, 24*units.Hour)
	v100 := StressShift(p, dc100, 24*units.Hour)
	ratio := v110 / v100
	if ratio < 1.25 || ratio > 1.45 {
		t.Errorf("110/100 °C wearout ratio = %.3f, want ~1.36", ratio)
	}
	// Room-temperature aging must be near-negligible relative to the
	// accelerated condition — the reason the paper's 2 h baseline
	// burn-in doesn't pollute its recovered-delay accounting.
	v20 := StressShift(p, StressCond{V: 1.2, T: room, Duty: 1}, 24*units.Hour)
	if v20/v110 > 0.05 {
		t.Errorf("room-temperature aging %.1f %% of 110 °C aging, want <5 %%", v20/v110*100)
	}
}

// TestACEffectiveness asserts the per-transistor duty-cycle factor:
// with ACExp = 2.737, a 50 % duty transistor accumulates ≈15 % of the DC
// shift. At the RO path level — where AC stress activates more
// transistors but the LUT level-1 mux stays statically stressed — this
// becomes the paper's Fig. 4 "AC ≈ half of DC" (asserted in the ro
// package tests).
func TestACEffectiveness(t *testing.T) {
	p := DefaultParams()
	dc := StressShift(p, dc110, 24*units.Hour)
	ac := StressShift(p, ac110, 24*units.Hour)
	if math.Abs(ac/dc-0.15) > 0.01 {
		t.Errorf("AC/DC per transistor = %.3f, want ~0.15", ac/dc)
	}
	// Duty clamps: above 1 behaves as DC.
	over := StressShift(p, StressCond{V: 1.2, T: hot110, Duty: 1.5}, 24*units.Hour)
	if over != dc {
		t.Errorf("duty>1 not clamped: %v vs %v", over, dc)
	}
}

// stressThenRecover runs the paper's canonical phase pair and returns
// the total recovered fraction of the accumulated shift.
func stressThenRecover(p Params, stressT units.Seconds, rc RecoveryCond, recT units.Seconds) float64 {
	var s State
	s.Stress(p, dc110, stressT)
	v1 := s.Vth()
	s.Recover(p, rc, recT)
	return (v1 - s.Vth()) / v1
}

// TestCalibrationRecoveredFractions asserts Table 4: the single-shot
// recovered fractions after 24 h stress + 6 h sleep for the four paper
// conditions, including the 72.4 % design-margin-relaxed headline.
func TestCalibrationRecoveredFractions(t *testing.T) {
	p := DefaultParams()
	cases := []struct {
		name string
		cond RecoveryCond
		want float64
	}{
		{"R20Z6 passive", r20Z, 0.359},
		{"AR20N6 negative-V", r20N, 0.467},
		{"AR110Z6 high-T", r110Z, 0.557},
		{"AR110N6 combined", r110N, 0.724},
	}
	for _, c := range cases {
		got := stressThenRecover(p, 24*units.Hour, c.cond, 6*units.Hour)
		if math.Abs(got-c.want) > 0.01 {
			t.Errorf("%s: recovered fraction = %.3f, want ≈%.3f", c.name, got, c.want)
		}
	}
}

// TestCalibrationSameAlpha asserts Table 5: the same active:sleep ratio
// (α = 4) yields nearly the same recovered fraction regardless of the
// absolute stress length (24 h/6 h vs 48 h/12 h).
func TestCalibrationSameAlpha(t *testing.T) {
	p := DefaultParams()
	r6 := stressThenRecover(p, 24*units.Hour, r110N, 6*units.Hour)
	r12 := stressThenRecover(p, 48*units.Hour, r110N, 12*units.Hour)
	if math.Abs(r6-r12) > 0.03 {
		t.Errorf("α=4 fractions differ: 24h/6h → %.3f, 48h/12h → %.3f", r6, r12)
	}
}

// TestRecoveryConditionOrdering asserts the Fig. 8 ordering:
// combined > high-T > negative-V > passive.
func TestRecoveryConditionOrdering(t *testing.T) {
	p := DefaultParams()
	var prev float64
	for i, rc := range allRecov {
		got := stressThenRecover(p, 24*units.Hour, rc, 6*units.Hour)
		if i > 0 && got <= prev {
			t.Errorf("recovery ordering violated at condition %d: %.3f <= %.3f", i, got, prev)
		}
		prev = got
	}
}

func TestStressShiftZeroAndNegativeTime(t *testing.T) {
	p := DefaultParams()
	if got := StressShift(p, dc110, 0); got != 0 {
		t.Errorf("StressShift(0) = %v", got)
	}
	if got := StressShift(p, dc110, -5); got != 0 {
		t.Errorf("StressShift(-5) = %v", got)
	}
}

func TestStressMonotoneInTimeVoltageTemp(t *testing.T) {
	p := DefaultParams()
	f := func(rawT, rawV, rawK float64) bool {
		tt := units.Seconds(math.Abs(math.Mod(rawT, 1e7)))
		v := units.Volt(0.8 + math.Abs(math.Mod(rawV, 0.8)))
		k := units.Kelvin(280 + math.Abs(math.Mod(rawK, 120)))
		base := StressShift(p, StressCond{V: v, T: k, Duty: 1}, tt)
		longer := StressShift(p, StressCond{V: v, T: k, Duty: 1}, tt+1000)
		hotter := StressShift(p, StressCond{V: v, T: k + 10, Duty: 1}, tt)
		higherV := StressShift(p, StressCond{V: v + 0.05, T: k, Duty: 1}, tt)
		if longer < base {
			return false
		}
		if tt > 0 && (hotter <= base || higherV <= base) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIncrementalStressMatchesClosedForm(t *testing.T) {
	p := DefaultParams()
	var s State
	const steps = 96
	for i := 0; i < steps; i++ {
		s.Stress(p, dc110, 24*units.Hour/steps)
	}
	want := StressShift(p, dc110, 24*units.Hour)
	if math.Abs(s.Vth()-want) > 1e-9 {
		t.Errorf("incremental %.6g != closed form %.6g", s.Vth(), want)
	}
	if math.Abs(float64(s.StressAge())-float64(24*units.Hour)) > 1e-6 {
		t.Errorf("stress age = %v", s.StressAge())
	}
}

func TestIncrementalRecoveryMatchesClosedForm(t *testing.T) {
	p := DefaultParams()
	a, b := &State{}, &State{}
	a.Stress(p, dc110, 24*units.Hour)
	b.Stress(p, dc110, 24*units.Hour)
	// a recovers in one step, b in 12 half-hour steps.
	a.Recover(p, r110N, 6*units.Hour)
	for i := 0; i < 12; i++ {
		b.Recover(p, r110N, 30*units.Minute)
	}
	if math.Abs(a.Vth()-b.Vth()) > 1e-12 {
		t.Errorf("one-shot %.9g != stepped %.9g", a.Vth(), b.Vth())
	}
}

func TestPermanentFloorNeverRecovered(t *testing.T) {
	p := DefaultParams()
	var s State
	s.Stress(p, dc110, 24*units.Hour)
	perm := s.Permanent()
	if perm <= 0 {
		t.Fatal("no permanent component accumulated")
	}
	// Absurdly long, maximally accelerated recovery.
	s.Recover(p, RecoveryCond{VRev: 0.5, T: units.Celsius(150).Kelvin()}, 10000*units.Hour)
	if s.Vth() < perm-1e-15 {
		t.Errorf("Vth %.6g dropped below permanent floor %.6g", s.Vth(), perm)
	}
	if s.Permanent() != perm {
		t.Errorf("permanent changed during recovery: %.6g -> %.6g", perm, s.Permanent())
	}
}

func TestRecoveryMonotoneNonIncreasing(t *testing.T) {
	p := DefaultParams()
	var s State
	s.Stress(p, dc110, 24*units.Hour)
	prev := s.Vth()
	for i := 0; i < 48; i++ {
		s.Recover(p, r110N, 15*units.Minute)
		if v := s.Vth(); v > prev+1e-15 {
			t.Fatalf("Vth increased during recovery at step %d: %.9g -> %.9g", i, prev, v)
		} else {
			prev = v
		}
	}
}

func TestRecoveryHoldsWhenConditionWeakens(t *testing.T) {
	p := DefaultParams()
	var s State
	s.Stress(p, dc110, 24*units.Hour)
	s.Recover(p, r110N, 3*units.Hour)
	mid := s.Vth()
	// Dropping to a much weaker condition must not re-age the device.
	s.Recover(p, r20Z, 1*units.Hour)
	if s.Vth() > mid+1e-15 {
		t.Errorf("weakened condition re-aged: %.9g -> %.9g", mid, s.Vth())
	}
}

func TestReStressSawtooth(t *testing.T) {
	p := DefaultParams()
	var s State
	s.Stress(p, dc110, 24*units.Hour)
	v1 := s.Vth()
	s.Recover(p, r110N, 6*units.Hour)
	afterRec := s.Vth()

	// Re-stress: the first hour must re-age much faster than the hour
	// 24→25 of virgin stress would (fast traps refill first).
	virginExtra := StressShift(p, dc110, 25*units.Hour) - StressShift(p, dc110, 24*units.Hour)
	s.Stress(p, dc110, 1*units.Hour)
	reExtra := s.Vth() - afterRec
	if reExtra <= virginExtra {
		t.Errorf("re-stress not accelerated: re=%.6g virgin=%.6g", reExtra, virginExtra)
	}
	// And it should not overshoot the virgin trajectory value by much.
	if s.Vth() > v1*1.05 {
		t.Errorf("re-stress overshot: %.6g > %.6g", s.Vth(), v1)
	}
}

// TestWakeUpDoesNotRestartRecovery guards the measurement-overhead
// artifact: 3-second wake-ups every 30 minutes during a 6 h sleep must
// leave the recovered fraction essentially equal to an uninterrupted
// sleep, not compound the fast component at every wake.
func TestWakeUpDoesNotRestartRecovery(t *testing.T) {
	p := DefaultParams()
	clean, waked := &State{}, &State{}
	clean.Stress(p, dc110, 24*units.Hour)
	waked.Stress(p, dc110, 24*units.Hour)
	clean.Recover(p, r110N, 6*units.Hour)
	for i := 0; i < 12; i++ {
		waked.Recover(p, r110N, 30*units.Minute)
		waked.Stress(p, dc110, 3) // sampling wake
	}
	rel := (waked.Vth() - clean.Vth()) / clean.Vth()
	if math.Abs(rel) > 0.02 {
		t.Errorf("wake-ups shifted the outcome by %.1f %%", rel*100)
	}
}

// TestSubstantialReStressEndsRecovery: a real re-stress (hours, not
// seconds) must exit the recovery phase so the next sleep gets a fresh
// fast component evaluated against the new damage.
func TestSubstantialReStressEndsRecovery(t *testing.T) {
	p := DefaultParams()
	var s State
	s.Stress(p, dc110, 24*units.Hour)
	s.Recover(p, r110N, 6*units.Hour)
	afterRec := s.Vth()
	s.Stress(p, dc110, 12*units.Hour) // far above the interlude budget
	if s.Vth() <= afterRec {
		t.Fatal("re-stress had no effect")
	}
	// The next recovery must show a fresh fast component: the first
	// half hour removes a sizeable fraction again.
	v0 := s.Vth()
	s.Recover(p, r110N, 30*units.Minute)
	if frac := (v0 - s.Vth()) / v0; frac < 0.05 {
		t.Errorf("fast component missing after re-stress: %.3f", frac)
	}
}

func TestZeroDutyStressIsNoOp(t *testing.T) {
	p := DefaultParams()
	var s State
	got := s.Stress(p, StressCond{V: 1.2, T: hot110, Duty: 0}, units.Hour)
	if got != 0 || s.Vth() != 0 || s.StressAge() != 0 {
		t.Errorf("zero-duty stress changed state: delta=%v state=%+v", got, s)
	}
}

func TestStressPanicsOnNegativeDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	var s State
	s.Stress(DefaultParams(), dc110, -1)
}

func TestRecoverPanicsOnNegativeDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	var s State
	s.Recover(DefaultParams(), r20Z, -1)
}

func TestCloneAndReset(t *testing.T) {
	p := DefaultParams()
	var s State
	s.Stress(p, dc110, units.Hour)
	c := s.Clone()
	c.Stress(p, dc110, units.Hour)
	if c.Vth() <= s.Vth() {
		t.Error("clone does not evolve independently")
	}
	s.Reset()
	if s.Vth() != 0 || s.StressAge() != 0 {
		t.Errorf("reset state: %+v", s)
	}
}

func TestRecoveredFractionClamp(t *testing.T) {
	p := DefaultParams()
	p.MaxRecovery = 0.6
	got := RecoveredFraction(p, RecoveryCond{VRev: 1.0, T: units.Celsius(200).Kelvin()}, units.Hour, 1000*units.Hour)
	if got != 0.6 {
		t.Errorf("clamped fraction = %v, want 0.6", got)
	}
	if got := RecoveredFraction(p, r20Z, -1, -1); got < 0 {
		t.Errorf("negative times gave %v", got)
	}
}

func TestRecoveredFractionPropertyBounds(t *testing.T) {
	p := DefaultParams()
	f := func(rawT1, rawT2, rawV, rawK float64) bool {
		t1 := units.Seconds(math.Abs(math.Mod(rawT1, 1e8)))
		t2 := units.Seconds(math.Abs(math.Mod(rawT2, 1e8)))
		vr := units.Volt(math.Abs(math.Mod(rawV, 0.5)))
		k := units.Kelvin(280 + math.Abs(math.Mod(rawK, 140)))
		r := RecoveredFraction(p, RecoveryCond{VRev: vr, T: k}, t1, t2)
		return r >= 0 && r <= p.MaxRecovery
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestLongerStressSlowsFractionalRecovery encodes the t1-dependence the
// paper describes: a longer stress history makes the same sleep interval
// recover a smaller fraction.
func TestLongerStressSlowsFractionalRecovery(t *testing.T) {
	p := DefaultParams()
	short := RecoveredFraction(p, r110N, 24*units.Hour, 6*units.Hour)
	long := RecoveredFraction(p, r110N, 96*units.Hour, 6*units.Hour)
	if long >= short {
		t.Errorf("fractional recovery not slowed by history: t1=24h→%.3f t1=96h→%.3f", short, long)
	}
}

// TestRecoveryNeverFull encodes "ΔVth can't be fully recovered": even an
// extremely long accelerated sleep leaves a residue (the permanent part).
func TestRecoveryNeverFull(t *testing.T) {
	p := DefaultParams()
	var s State
	s.Stress(p, dc110, 24*units.Hour)
	s.Recover(p, r110N, 1000*units.Hour)
	if s.Vth() <= 0 {
		t.Errorf("full recovery occurred: Vth=%v", s.Vth())
	}
	if s.Vth() < s.Permanent() {
		t.Errorf("below permanent floor")
	}
}

func TestPhiStressIncreasesWithVandT(t *testing.T) {
	p := DefaultParams()
	base := PhiStress(p, StressCond{V: 1.2, T: room})
	if PhiStress(p, StressCond{V: 1.3, T: room}) <= base {
		t.Error("φs not increasing in V")
	}
	if PhiStress(p, StressCond{V: 1.2, T: hot110}) <= base {
		t.Error("φs not increasing in T")
	}
}

func TestPhiRecoveryIncreasesWithVrevAndT(t *testing.T) {
	p := DefaultParams()
	base := PhiRecovery(p, r20Z)
	if PhiRecovery(p, r20N) <= base {
		t.Error("φr not increasing in reverse bias")
	}
	if PhiRecovery(p, r110Z) <= base {
		t.Error("φr not increasing in T")
	}
}

// TestStressNumericalStability stresses the log-domain equivalent-time
// path: a heavily hot-stressed device continuing at room temperature
// must not overflow and must keep growing (slowly).
func TestStressNumericalStability(t *testing.T) {
	p := DefaultParams()
	var s State
	s.Stress(p, dc110, 1000*units.Hour)
	v := s.Vth()
	s.Stress(p, StressCond{V: 1.2, T: room, Duty: 1}, units.Hour)
	if math.IsNaN(s.Vth()) || math.IsInf(s.Vth(), 0) {
		t.Fatalf("numerical blow-up: %v", s.Vth())
	}
	if s.Vth() < v {
		t.Error("stress decreased Vth")
	}
}

func BenchmarkStressStep(b *testing.B) {
	p := DefaultParams()
	var s State
	for i := 0; i < b.N; i++ {
		s.Stress(p, dc110, units.Minute)
	}
}

func BenchmarkRecoverStep(b *testing.B) {
	p := DefaultParams()
	var s State
	s.Stress(p, dc110, 24*units.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Recover(p, r110N, units.Minute)
	}
}
