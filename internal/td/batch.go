package td

import (
	"fmt"
	"math"

	"selfheal/internal/units"
)

// Batch is the struct-of-arrays aging state of a population of
// devices: every State field becomes a parallel slice, so advancing a
// whole fleet one epoch walks flat float64 arrays instead of chasing
// per-chip pointers. It is the hot path of the discrete-event fleet
// engine (internal/engine), which advances millions of chips per tick.
//
// The per-step math is kept *bit-identical* to the scalar State
// methods — AdvanceStress mirrors State.Stress and AdvanceRecover
// mirrors State.Recover, operation for operation — with one
// difference: the condition-level factors (φs, φr, C·dt and the
// duty-cycle effectiveness d^ACExp) are hoisted out of the inner loop.
// φs/φr cost two exponentials per evaluation and d^ACExp a Pow; the
// scalar path pays them per chip per step, the batch pays them once
// per condition class per step (and the duty factor only when a chip's
// duty actually changes). TestBatchMatchesScalar asserts the
// equivalence within 1e-12 across random interleavings; in practice
// the trajectories are exactly equal.
//
// A Batch is not safe for concurrent use; the engine guards each
// partition's Batch with the partition lock.
type Batch struct {
	n int

	perm      []float64
	rec       []float64
	stressAge []float64
	effAge    []float64

	phase     []mode
	rec0      []float64
	t1        []float64
	t2        []float64
	prevT2    []float64
	interlude []float64

	duty []float64 // clamped duty cycle, per chip
	acf  []float64 // cached acFactor(duty) — the hoisted Pow
}

// NewBatch returns an empty batch with room for capacity devices
// before the slices reallocate.
func NewBatch(capacity int) *Batch {
	if capacity < 0 {
		capacity = 0
	}
	return &Batch{
		perm:      make([]float64, 0, capacity),
		rec:       make([]float64, 0, capacity),
		stressAge: make([]float64, 0, capacity),
		effAge:    make([]float64, 0, capacity),
		phase:     make([]mode, 0, capacity),
		rec0:      make([]float64, 0, capacity),
		t1:        make([]float64, 0, capacity),
		t2:        make([]float64, 0, capacity),
		prevT2:    make([]float64, 0, capacity),
		interlude: make([]float64, 0, capacity),
		duty:      make([]float64, 0, capacity),
		acf:       make([]float64, 0, capacity),
	}
}

// Len reports the number of devices in the batch.
func (b *Batch) Len() int { return b.n }

// validDuty rejects the inputs the scalar path would silently poison
// the state with: a NaN duty survives units.Clamp (every comparison
// with NaN is false) and then propagates through Pow into Vth.
func validDuty(d float64) error {
	if math.IsNaN(d) || math.IsInf(d, 0) {
		return fmt.Errorf("td: duty cycle must be finite, got %v", d)
	}
	return nil
}

// Append adds a fresh device with the given duty cycle and returns its
// index. The duty is clamped into [0,1] exactly like the scalar path;
// NaN/Inf are rejected.
func (b *Batch) Append(p Params, d float64) (int, error) {
	if err := validDuty(d); err != nil {
		return 0, err
	}
	d = effDuty(d)
	i := b.n
	b.n++
	b.perm = append(b.perm, 0)
	b.rec = append(b.rec, 0)
	b.stressAge = append(b.stressAge, 0)
	b.effAge = append(b.effAge, 0)
	b.phase = append(b.phase, modeFresh)
	b.rec0 = append(b.rec0, 0)
	b.t1 = append(b.t1, 0)
	b.t2 = append(b.t2, 0)
	b.prevT2 = append(b.prevT2, 0)
	b.interlude = append(b.interlude, 0)
	b.duty = append(b.duty, d)
	b.acf = append(b.acf, acFactor(p, d))
	return i, nil
}

// SetDuty changes device i's duty cycle, refreshing the cached
// effectiveness factor (the one Pow the batch pays per duty *change*
// instead of per step).
func (b *Batch) SetDuty(p Params, i int, d float64) error {
	if err := validDuty(d); err != nil {
		return err
	}
	d = effDuty(d)
	b.duty[i] = d
	b.acf[i] = acFactor(p, d)
	return nil
}

// Duty returns device i's clamped duty cycle.
func (b *Batch) Duty(i int) float64 { return b.duty[i] }

// Vth returns device i's present total threshold shift in volts.
func (b *Batch) Vth(i int) float64 { return b.perm[i] + b.rec[i] }

// Permanent returns the irreversible component of device i's shift.
func (b *Batch) Permanent(i int) float64 { return b.perm[i] }

// Recoverable returns the recoverable component of device i's shift.
func (b *Batch) Recoverable(i int) float64 { return b.rec[i] }

// StressAge returns device i's accumulated duty-weighted stress time.
func (b *Batch) StressAge(i int) units.Seconds { return units.Seconds(b.stressAge[i]) }

// EffectiveAge returns the equivalent continuous-stress age of device
// i's present shift (the t1 its next recovery works against).
func (b *Batch) EffectiveAge(i int) units.Seconds { return units.Seconds(b.effAge[i]) }

// Recovering reports whether device i last integrated a recovery phase.
func (b *Batch) Recovering(i int) bool { return b.phase[i] == modeRecovery }

// ExportState copies device i out as a scalar State — the seam the
// equivalence tests and per-chip debug read-outs use.
func (b *Batch) ExportState(i int) State {
	return State{
		perm:      b.perm[i],
		rec:       b.rec[i],
		stressAge: units.Seconds(b.stressAge[i]),
		effAge:    units.Seconds(b.effAge[i]),
		phase:     b.phase[i],
		rec0:      b.rec0[i],
		t1:        units.Seconds(b.t1[i]),
		t2:        units.Seconds(b.t2[i]),
		prevT2:    units.Seconds(b.prevT2[i]),
		interlude: b.interlude[i],
	}
}

// ImportState overwrites device i with a scalar State (duty is kept).
func (b *Batch) ImportState(i int, s State) {
	b.perm[i] = s.perm
	b.rec[i] = s.rec
	b.stressAge[i] = float64(s.stressAge)
	b.effAge[i] = float64(s.effAge)
	b.phase[i] = s.phase
	b.rec0[i] = s.rec0
	b.t1[i] = float64(s.t1)
	b.t2[i] = float64(s.t2)
	b.prevT2[i] = float64(s.prevT2)
	b.interlude[i] = s.interlude
}

// Swap exchanges devices i and j — the primitive behind the engine's
// O(1) swap-and-truncate removal.
func (b *Batch) Swap(i, j int) {
	b.perm[i], b.perm[j] = b.perm[j], b.perm[i]
	b.rec[i], b.rec[j] = b.rec[j], b.rec[i]
	b.stressAge[i], b.stressAge[j] = b.stressAge[j], b.stressAge[i]
	b.effAge[i], b.effAge[j] = b.effAge[j], b.effAge[i]
	b.phase[i], b.phase[j] = b.phase[j], b.phase[i]
	b.rec0[i], b.rec0[j] = b.rec0[j], b.rec0[i]
	b.t1[i], b.t1[j] = b.t1[j], b.t1[i]
	b.t2[i], b.t2[j] = b.t2[j], b.t2[i]
	b.prevT2[i], b.prevT2[j] = b.prevT2[j], b.prevT2[i]
	b.interlude[i], b.interlude[j] = b.interlude[j], b.interlude[i]
	b.duty[i], b.duty[j] = b.duty[j], b.duty[i]
	b.acf[i], b.acf[j] = b.acf[j], b.acf[i]
}

// Truncate drops every device at index n and beyond.
func (b *Batch) Truncate(n int) {
	if n < 0 || n > b.n {
		panic(fmt.Sprintf("td: truncate %d of batch of %d", n, b.n))
	}
	b.n = n
	b.perm = b.perm[:n]
	b.rec = b.rec[:n]
	b.stressAge = b.stressAge[:n]
	b.effAge = b.effAge[:n]
	b.phase = b.phase[:n]
	b.rec0 = b.rec0[:n]
	b.t1 = b.t1[:n]
	b.t2 = b.t2[:n]
	b.prevT2 = b.prevT2[:n]
	b.interlude = b.interlude[:n]
	b.duty = b.duty[:n]
	b.acf = b.acf[:n]
}

// CopyVth fills dst[i] with device i's total shift for i < min(len(dst),
// Len()) — the snapshot fast path, one fused pass over two arrays.
func (b *Batch) CopyVth(dst []float64) {
	n := b.n
	if len(dst) < n {
		n = len(dst)
	}
	perm, rec := b.perm[:n], b.rec[:n]
	for i := 0; i < n; i++ {
		dst[i] = perm[i] + rec[i]
	}
}

// validCond rejects non-finite condition fields up front; the scalar
// path would fold them into exp/log and poison every chip in the class.
func validCond(v units.Volt, t units.Kelvin) error {
	if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
		return fmt.Errorf("td: condition voltage must be finite, got %v", float64(v))
	}
	if math.IsNaN(float64(t)) || math.IsInf(float64(t), 0) || t <= 0 {
		return fmt.Errorf("td: condition temperature must be a positive kelvin value, got %v", float64(t))
	}
	return nil
}

func validDT(dt units.Seconds) error {
	if math.IsNaN(float64(dt)) || math.IsInf(float64(dt), 0) || dt < 0 {
		return fmt.Errorf("td: step duration must be finite and non-negative, got %v", float64(dt))
	}
	return nil
}

// StressStep is one stress condition's per-step factors, computed once
// and reused for every chip advanced under it: φs(V,T) (two
// exponentials), C·dt, and the effective-age overflow clamp. The
// duty-cycle factor stays per chip (cached in the batch).
type StressStep struct {
	phiCond float64       // φs(V,T), before the per-chip duty factor
	cdt     float64       // p.C · dt
	dt      units.Seconds // step duration
	maxAge  units.Seconds // the effAge overflow clamp e^40/C
}

// NewStressStep validates the condition and hoists its factors.
// c.Duty is ignored — duty is per chip in the batch.
func NewStressStep(p Params, c StressCond, dt units.Seconds) (StressStep, error) {
	if err := p.Validate(); err != nil {
		return StressStep{}, err
	}
	if err := validCond(c.V, c.T); err != nil {
		return StressStep{}, err
	}
	if err := validDT(dt); err != nil {
		return StressStep{}, err
	}
	return StressStep{
		phiCond: PhiStress(p, c),
		cdt:     p.C * float64(dt),
		dt:      dt,
		maxAge:  units.Seconds(math.Exp(effAgeMaxExp) / p.C),
	}, nil
}

// effAgeMaxExp mirrors the maxExp constant inside State.Stress.
const effAgeMaxExp = 40

// AdvanceStress advances the chips named by idx (all chips when idx is
// nil) through one stress step. The loop body is State.Stress with the
// condition factors pre-hoisted; a zero-duty chip is skipped exactly
// like the scalar early-out (no state, no phase change).
func (b *Batch) AdvanceStress(p Params, st StressStep, idx []int) {
	if st.dt == 0 {
		return
	}
	m := lenOr(idx, b.n)
	for k := 0; k < m; k++ {
		i := k
		if idx != nil {
			i = idx[k]
		}
		duty := b.duty[i]
		if duty == 0 {
			continue
		}
		phi := st.phiCond * b.acf[i]
		v := b.perm[i] + b.rec[i]
		delta := phi * math.Log1p(st.cdt*math.Exp(-v/phi))
		dperm := 0.0
		if pf := p.PermFrac * phi; pf > 0 {
			dperm = math.Min(delta,
				pf*math.Log1p(st.cdt*math.Exp(-b.perm[i]/pf)))
		}
		recDelta := delta - dperm
		if b.phase[i] == modeRecovery && b.rec0[i] > 0 &&
			recDelta <= interludeFrac*b.rec0[i] &&
			b.interlude[i]+recDelta <= interludeBudget*b.rec0[i] {
			b.interlude[i] += recDelta
			b.rec0[i] += recDelta
		} else {
			if b.phase[i] == modeRecovery {
				b.prevT2[i] = b.t2[i]
			}
			b.phase[i] = modeStress
			b.interlude[i] = 0
		}
		b.perm[i] += dperm
		b.rec[i] += recDelta
		b.stressAge[i] += duty * float64(st.dt)
		age := st.maxAge
		if u := v / phi; u <= effAgeMaxExp {
			age = units.Seconds(math.Expm1(u)/p.C) + st.dt
		}
		if limit := units.Seconds(b.effAge[i]) + st.dt; age > limit {
			age = limit
		}
		b.effAge[i] = float64(age)
	}
}

// RecoverStep is one recovery condition's per-step factors: φr(Vr,T)
// (two exponentials) computed once for the whole class.
type RecoverStep struct {
	phiR float64
	dt   units.Seconds
}

// NewRecoverStep validates the condition and hoists its factors.
func NewRecoverStep(p Params, c RecoveryCond, dt units.Seconds) (RecoverStep, error) {
	if err := p.Validate(); err != nil {
		return RecoverStep{}, err
	}
	if err := validCond(c.VRev, c.T); err != nil {
		return RecoverStep{}, err
	}
	if err := validDT(dt); err != nil {
		return RecoverStep{}, err
	}
	return RecoverStep{phiR: PhiRecovery(p, c), dt: dt}, nil
}

// AdvanceRecover advances the chips named by idx (all when nil)
// through one recovery step — State.Recover with φr pre-hoisted.
func (b *Batch) AdvanceRecover(p Params, rs RecoverStep, idx []int) {
	m := lenOr(idx, b.n)
	for k := 0; k < m; k++ {
		i := k
		if idx != nil {
			i = idx[k]
		}
		if b.phase[i] != modeRecovery {
			b.phase[i] = modeRecovery
			b.rec0[i] = b.rec[i]
			b.t2[i] = 0
			b.interlude[i] = 0
			t1 := b.effAge[i]
			if b.prevT2[i] > t1 {
				t1 = b.prevT2[i]
			}
			b.t1[i] = t1
		}
		b.t2[i] += float64(rs.dt)
		num := 1 + p.Ka*math.Log1p(p.Cr*b.t2[i])
		den := 1 + p.Kb*math.Log1p(p.Cr*(b.t1[i]+b.t2[i]))
		r := units.Clamp(rs.phiR*num/den, 0, p.MaxRecovery)
		target := b.rec0[i] * (1 - r)
		if target < b.rec[i] {
			b.rec[i] = target
		}
	}
}

func lenOr(idx []int, n int) int {
	if idx == nil {
		return n
	}
	return len(idx)
}

// Class is one shared condition a subset of the batch advances under:
// either a stress condition (SCond; its Duty field is ignored, the
// per-chip duty applies) or a recovery condition (RCond).
type Class struct {
	Stress bool
	SCond  StressCond
	RCond  RecoveryCond
	Idx    []int // chip indices; nil means the whole batch
}

// AdvanceBatch advances every class through one step of dt — the
// vectorized equivalent of calling State.Stress or State.Recover once
// per chip. Condition factors are evaluated once per class; the error
// (invalid params, non-finite condition, bad dt) is returned before
// any chip is touched, so a batch advance is all-or-nothing per class
// list.
func AdvanceBatch(p Params, b *Batch, dt units.Seconds, classes []Class) error {
	type prepared struct {
		stress bool
		ss     StressStep
		rs     RecoverStep
		idx    []int
	}
	steps := make([]prepared, len(classes))
	for ci, c := range classes {
		var err error
		pc := prepared{stress: c.Stress, idx: c.Idx}
		if c.Stress {
			pc.ss, err = NewStressStep(p, c.SCond, dt)
		} else {
			pc.rs, err = NewRecoverStep(p, c.RCond, dt)
		}
		if err != nil {
			return fmt.Errorf("td: class %d: %w", ci, err)
		}
		steps[ci] = pc
	}
	for _, pc := range steps {
		if pc.stress {
			b.AdvanceStress(p, pc.ss, pc.idx)
		} else {
			b.AdvanceRecover(p, pc.rs, pc.idx)
		}
	}
	return nil
}
