package td

import (
	"errors"
	"math"

	"selfheal/internal/rng"
	"selfheal/internal/units"
)

// EnsembleParams configures a stochastic trap ensemble — the
// finer-grained "ground truth" model (after Velamala et al., DAC'12)
// that the first-order closed forms in this package are validated
// against, playing the role the silicon measurements play in the paper.
//
// Each trap has a capture time constant τc and an emission time constant
// τe drawn log-uniformly over many decades, and contributes an
// exponentially distributed per-trap ΔVth impact when occupied. Stress
// shortens effective capture times (more carriers available, higher
// field), while temperature shortens both; a reverse bias during sleep
// shortens emission times — exactly the accelerated self-healing knobs.
type EnsembleParams struct {
	TauLo float64 // shortest time constant, seconds
	TauHi float64 // longest time constant, seconds
	// EtaVolt is the mean per-trap ΔVth impact in volts. For an
	// ensemble of n traps the saturated shift is ≈ n·EtaVolt.
	EtaVolt float64
	// PermProb is the probability that a trap, once captured, never
	// emits (an irreversible interface state).
	PermProb float64
	// E0 is the activation energy (eV) accelerating both capture and
	// emission with temperature, relative to TRef.
	E0   float64
	TRef units.Kelvin
	// GammaV scales capture acceleration with stress overdrive (per
	// volt) and emission acceleration with reverse bias (per volt).
	GammaV float64
}

// DefaultEnsembleParams returns trap statistics spanning 1 s … 10⁸ s,
// matching the accelerated-test timescales of the paper (hours to
// days). EtaVolt is chosen so a 5000-trap ensemble lands on the same
// ≈40 mV shift after 24 h of DC stress at 110 °C as the calibrated
// first-order model; the total shift scales linearly with the
// population size.
func DefaultEnsembleParams() EnsembleParams {
	return EnsembleParams{
		TauLo:    1,
		TauHi:    1e8,
		EtaVolt:  9.1e-6,
		PermProb: 0.08,
		E0:       0.15,
		TRef:     units.Celsius(20).Kelvin(),
		GammaV:   2.5,
	}
}

// Validate reports whether the ensemble parameters are usable.
func (p EnsembleParams) Validate() error {
	switch {
	case p.TauLo <= 0 || p.TauHi < p.TauLo:
		return errors.New("td: ensemble requires 0 < TauLo <= TauHi")
	case p.EtaVolt <= 0:
		return errors.New("td: ensemble EtaVolt must be positive")
	case p.PermProb < 0 || p.PermProb > 1:
		return errors.New("td: ensemble PermProb must be in [0,1]")
	case p.TRef <= 0:
		return errors.New("td: ensemble TRef must be positive")
	}
	return nil
}

// trap is a single defect in the gate stack.
type trap struct {
	tauC      float64 // nominal capture time constant, s
	tauE      float64 // nominal emission time constant, s
	impact    float64 // ΔVth contribution when occupied, V
	occupied  bool
	permanent bool // once captured, never emits
}

// Ensemble is a Monte-Carlo population of traps for one device.
type Ensemble struct {
	params EnsembleParams
	traps  []trap
	src    *rng.Source
}

// NewEnsemble draws n traps using the given random stream. It returns
// an error for invalid parameters or n <= 0.
func NewEnsemble(n int, p EnsembleParams, src *rng.Source) (*Ensemble, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, errors.New("td: ensemble needs at least one trap")
	}
	e := &Ensemble{params: p, traps: make([]trap, n), src: src}
	for i := range e.traps {
		e.traps[i] = trap{
			tauC: src.LogUniform(p.TauLo, p.TauHi),
			tauE: src.LogUniform(p.TauLo, p.TauHi),
			// Exponentially distributed impact with mean EtaVolt.
			impact:    -p.EtaVolt * math.Log(1-src.Float64()),
			permanent: src.Bernoulli(p.PermProb),
		}
	}
	return e, nil
}

// Len returns the number of traps.
func (e *Ensemble) Len() int { return len(e.traps) }

// DeltaVth returns the present total threshold shift in volts.
func (e *Ensemble) DeltaVth() float64 {
	sum := 0.0
	for i := range e.traps {
		if e.traps[i].occupied {
			sum += e.traps[i].impact
		}
	}
	return sum
}

// Occupied returns the number of currently occupied traps.
func (e *Ensemble) Occupied() int {
	n := 0
	for i := range e.traps {
		if e.traps[i].occupied {
			n++
		}
	}
	return n
}

// arrhenius is the temperature acceleration factor relative to TRef.
func (p EnsembleParams) arrhenius(t units.Kelvin) float64 {
	return math.Exp(p.E0 / units.BoltzmannEV * (1/float64(p.TRef) - 1/float64(t)))
}

// Stress advances the ensemble through dt of stress: each unoccupied
// trap captures with probability 1 − exp(−dt_eff/τc), where dt_eff is
// accelerated by temperature and overdrive.
func (e *Ensemble) Stress(c StressCond, dt units.Seconds) {
	if dt <= 0 {
		return
	}
	accel := e.params.arrhenius(c.T) * math.Exp(e.params.GammaV*float64(c.V))
	eff := float64(dt) * accel * effDuty(c.Duty)
	for i := range e.traps {
		tr := &e.traps[i]
		if tr.occupied {
			continue
		}
		if e.src.Bernoulli(-math.Expm1(-eff / tr.tauC)) {
			tr.occupied = true
		}
	}
}

// Recover advances the ensemble through dt of sleep: each occupied,
// non-permanent trap emits with probability 1 − exp(−dt_eff/τe), where
// dt_eff is accelerated by temperature and reverse bias.
func (e *Ensemble) Recover(c RecoveryCond, dt units.Seconds) {
	if dt <= 0 {
		return
	}
	accel := e.params.arrhenius(c.T) * math.Exp(e.params.GammaV*float64(c.VRev))
	eff := float64(dt) * accel
	for i := range e.traps {
		tr := &e.traps[i]
		if !tr.occupied || tr.permanent {
			continue
		}
		if e.src.Bernoulli(-math.Expm1(-eff / tr.tauE)) {
			tr.occupied = false
		}
	}
}

// ExpectedEnsemble is the deterministic mean-field counterpart of
// Ensemble: instead of Bernoulli draws it evolves each trap's occupancy
// probability, giving the noise-free expectation trajectory. It is used
// by tests to compare the first-order model's shape without Monte-Carlo
// variance.
type ExpectedEnsemble struct {
	params EnsembleParams
	traps  []trap
	occ    []float64 // occupancy probabilities
}

// NewExpectedEnsemble draws trap statistics exactly like NewEnsemble but
// evolves occupancy probabilities deterministically.
func NewExpectedEnsemble(n int, p EnsembleParams, src *rng.Source) (*ExpectedEnsemble, error) {
	mc, err := NewEnsemble(n, p, src)
	if err != nil {
		return nil, err
	}
	return &ExpectedEnsemble{params: p, traps: mc.traps, occ: make([]float64, n)}, nil
}

// DeltaVth returns the expected threshold shift in volts.
func (e *ExpectedEnsemble) DeltaVth() float64 {
	sum := 0.0
	for i := range e.traps {
		sum += e.occ[i] * e.traps[i].impact
	}
	return sum
}

// Stress advances the expectation through dt of stress.
func (e *ExpectedEnsemble) Stress(c StressCond, dt units.Seconds) {
	if dt <= 0 {
		return
	}
	accel := e.params.arrhenius(c.T) * math.Exp(e.params.GammaV*float64(c.V))
	eff := float64(dt) * accel * effDuty(c.Duty)
	for i := range e.traps {
		pCapture := -math.Expm1(-eff / e.traps[i].tauC)
		e.occ[i] += (1 - e.occ[i]) * pCapture
	}
}

// Recover advances the expectation through dt of sleep.
func (e *ExpectedEnsemble) Recover(c RecoveryCond, dt units.Seconds) {
	if dt <= 0 {
		return
	}
	accel := e.params.arrhenius(c.T) * math.Exp(e.params.GammaV*float64(c.VRev))
	eff := float64(dt) * accel
	for i := range e.traps {
		if e.traps[i].permanent {
			continue
		}
		pEmit := -math.Expm1(-eff / e.traps[i].tauE)
		e.occ[i] *= 1 - pEmit
	}
}
