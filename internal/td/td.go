// Package td implements the device-level BTI (bias temperature
// instability) aging model the paper builds on: the first-order
// Trapping/Detrapping (TD) model of Velamala et al. (DAC'12), as adapted
// by Guo/Burleson/Stan (DAC'14) for both the wearout (stress) phase and
// the accelerated self-healing (recovery) phase.
//
// # Model
//
// Under stress, traps in the gate stack capture carriers and the
// threshold voltage shift grows logarithmically with stress time:
//
//	ΔVth(t) = φs(V,T) · ln(1 + C·t)                          (Eqs. 1–2)
//	φs(V,T) = K1 · exp(−E0s/kT) · exp(Bs·V/(tox·kT))
//
// When stress is removed (sleep), some traps emit their carriers and the
// shift partially recovers. With t1 the accumulated stress time and t2
// the time in recovery, the recovered fraction of the recoverable shift
// is
//
//	R(t2) = φr(Vr,T) · (1 + Ka·ln(1 + Cr·t2)) / (1 + Kb·ln(1 + Cr·(t1+t2)))   (Eqs. 3–4)
//	φr(Vr,T) = K2 · exp(−E0r/kT) · exp(Br·Vr/tox)
//
// where Vr ≥ 0 is the reverse-bias magnitude applied during sleep
// (0 for plain power gating, 0.3 for the paper's −0.3 V supply).
// R captures every qualitative property in the paper's prose: an
// instantaneous fast component (traps with short emission constants),
// a logarithmic slow tail, acceleration that is exponential in both
// temperature and reverse voltage, slower fractional recovery after a
// longer stress history (t1 in the denominator), and an asymptote below
// 1 — ΔVth can never fully recover.
//
// A fraction PermFrac of every stress increment is irreversible
// (standing in for permanent interface states / EM, the paper's stated
// first-order limitation); recovery only drains the recoverable part.
//
// Note on equation provenance: the ACM full text available to this
// reproduction renders Eqs. (3), (11) and (12) with corrupted layout;
// the forms above are reconstructed from the paper's prose and the
// referenced TD model, and are validated in this package's tests against
// a finer-grained stochastic trap ensemble (see ensemble.go).
package td

import (
	"errors"
	"fmt"
	"math"

	"selfheal/internal/units"
)

// Params collects the device-model constants. The defaults are
// calibrated (see DefaultParams) so that a 40 nm FPGA ring oscillator
// built on this model reproduces the paper's measurements.
type Params struct {
	// Stress (wearout) phase.
	K1  float64 // stress prefactor, volts
	E0s float64 // stress activation energy, eV
	Bs  float64 // stress field factor, nm·eV/V
	C   float64 // stress log rate constant, 1/s

	// Recovery (self-healing) phase.
	K2  float64 // recovery prefactor, dimensionless (R is a fraction)
	E0r float64 // recovery activation energy, eV
	Br  float64 // recovery reverse-bias field factor, nm/V
	Cr  float64 // recovery log rate constant, 1/s
	Ka  float64 // recovery numerator log weight
	Kb  float64 // recovery denominator log weight

	// ACExp is the exponent of the duty-cycle effectiveness factor: a
	// transistor stressed a fraction d of the time accumulates d^ACExp
	// of the DC shift, reflecting that the fast traps captured during a
	// short on-interval detrap almost completely during the following
	// off-interval. The default is calibrated at the ring-oscillator
	// path level — where AC stress activates more transistors than DC,
	// but the LUT's level-1 mux transistors stay statically stressed
	// (config bits never toggle) — to yield the paper's Fig. 4 result:
	// AC degradation ≈ half of DC.
	ACExp float64

	PermFrac    float64 // irreversible fraction of each stress increment, [0,1)
	ToxNM       float64 // oxide thickness, nm
	MaxRecovery float64 // hard cap on the recovered fraction R, (0,1]
}

// DefaultParams returns the 40 nm-calibrated constants. Calibration
// targets (all from the paper): ≈2.2 % RO frequency degradation after
// 24 h DC stress at 110 °C/1.2 V, ≈1.9 % at 100 °C, AC ≈ half of DC, and
// single-shot recovered fractions after 24 h stress + 6 h sleep of
// ≈36 % (20 °C/0 V), ≈47 % (20 °C/−0.3 V), ≈56 % (110 °C/0 V) and
// ≈72.4 % (110 °C/−0.3 V — the paper's design-margin-relaxed headline).
func DefaultParams() Params {
	return Params{
		K1:  534.2,
		E0s: 0.40,
		Bs:  0.0392,
		C:   0.01,

		K2:  3.167,
		E0r: 0.0472,
		Br:  1.749,
		Cr:  0.01,
		Ka:  1,
		Kb:  1,

		ACExp:       2.737,
		PermFrac:    0.08,
		ToxNM:       2.0,
		MaxRecovery: 1.0,
	}
}

// Validate reports whether the parameter set is physically meaningful.
func (p Params) Validate() error {
	switch {
	case p.K1 <= 0 || p.K2 <= 0:
		return errors.New("td: prefactors must be positive")
	case p.E0s < 0 || p.E0r < 0:
		return errors.New("td: activation energies must be non-negative")
	case p.C <= 0 || p.Cr <= 0:
		return errors.New("td: rate constants must be positive")
	case p.Ka <= 0 || p.Kb <= 0:
		return errors.New("td: recovery log weights must be positive")
	case p.ACExp < 1:
		return errors.New("td: ACExp must be at least 1")
	case p.PermFrac < 0 || p.PermFrac >= 1:
		return errors.New("td: PermFrac must be in [0,1)")
	case p.ToxNM <= 0:
		return errors.New("td: oxide thickness must be positive")
	case p.MaxRecovery <= 0 || p.MaxRecovery > 1:
		return errors.New("td: MaxRecovery must be in (0,1]")
	}
	return nil
}

// StressCond describes the bias applied to a stressed transistor.
type StressCond struct {
	V units.Volt   // gate overdrive magnitude, > 0 when stressed
	T units.Kelvin // junction temperature
	// Duty is the fraction of time the transistor is actually under
	// stress. 1 is DC stress; a symmetrically switching input (the
	// paper's AC stress) gives 0.5. Must be in [0,1].
	Duty float64
}

// RecoveryCond describes the sleep conditions during self-healing.
type RecoveryCond struct {
	VRev units.Volt   // reverse-bias magnitude, ≥ 0 (0.3 for a −0.3 V rail)
	T    units.Kelvin // junction temperature
}

// PhiStress evaluates the stress prefactor φs(V,T) in volts.
func PhiStress(p Params, c StressCond) float64 {
	kt := units.KT(c.T)
	return p.K1 * math.Exp(-p.E0s/kt) * math.Exp(p.Bs*float64(c.V)/(p.ToxNM*kt))
}

// PhiRecovery evaluates the recovery prefactor φr(Vr,T), dimensionless.
func PhiRecovery(p Params, c RecoveryCond) float64 {
	kt := units.KT(c.T)
	return p.K2 * math.Exp(-p.E0r/kt) * math.Exp(p.Br*float64(c.VRev)/p.ToxNM)
}

// StressShift returns the closed-form threshold shift (volts, total:
// recoverable + permanent) after stressing a fresh device for t under
// condition c. Negative times are treated as zero.
func StressShift(p Params, c StressCond, t units.Seconds) float64 {
	if t <= 0 {
		return 0
	}
	return PhiStress(p, c) * acFactor(p, c.Duty) * math.Log1p(p.C*float64(t))
}

// RecoveredFraction returns the closed-form fraction R(t2) of the
// recoverable shift removed after sleeping for t2 under condition c,
// following a total accumulated stress time of t1. The result is
// clamped to [0, MaxRecovery].
func RecoveredFraction(p Params, c RecoveryCond, t1, t2 units.Seconds) float64 {
	if t2 < 0 {
		t2 = 0
	}
	if t1 < 0 {
		t1 = 0
	}
	num := 1 + p.Ka*math.Log1p(p.Cr*float64(t2))
	den := 1 + p.Kb*math.Log1p(p.Cr*float64(t1+t2))
	r := PhiRecovery(p, c) * num / den
	return units.Clamp(r, 0, p.MaxRecovery)
}

// effDuty clamps a duty cycle into [0,1].
func effDuty(d float64) float64 { return units.Clamp(d, 0, 1) }

// acFactor is the duty-cycle effectiveness factor d^ACExp (see Params).
func acFactor(p Params, d float64) float64 {
	d = effDuty(d)
	if d == 1 {
		return 1
	}
	if d == 0 {
		return 0
	}
	return math.Pow(d, p.ACExp)
}

// mode tracks which phase the device state last integrated.
type mode uint8

const (
	modeFresh mode = iota
	modeStress
	modeRecovery
)

// State is the aging state of one device (or of one lumped path — the
// model is linear in the shift, so a path of identically stressed
// transistors ages as a scaled single device). The zero value is a
// fresh, unstressed device.
//
// State integrates arbitrary interleavings of stress and recovery
// phases: stress resumes along the log trajectory via equivalent-time
// inversion, and recovery tracks the shift present at the most recent
// stress→sleep transition.
type State struct {
	perm      float64       // irreversible shift, volts
	rec       float64       // recoverable shift, volts
	stressAge units.Seconds // accumulated duty-weighted stress time
	// effAge is the *equivalent* stress age of the present shift: the
	// continuous-stress time that would have produced it under the most
	// recent stress condition. Recovery kinetics depend on how deep the
	// surviving traps sit (their time constants), which this captures —
	// unlike cumulative stress time, which would make recovery
	// arbitrarily ineffective after many stress/heal cycles.
	effAge units.Seconds

	phase mode
	rec0  float64       // recoverable shift when the current recovery began
	t1    units.Seconds // stress history the current recovery works against
	t2    units.Seconds // time spent in the current recovery
	// prevT2 is the duration of the most recently completed recovery
	// phase. Traps that survived it have emission constants beyond it,
	// so it floors the t1 of the next recovery: healing a mostly healed
	// device is slow, not free.
	prevT2 units.Seconds
	// interlude accumulates small stress refills absorbed into the
	// running recovery phase (measurement wake-ups) without restarting
	// the emission clock.
	interlude float64
}

// interludeFrac bounds how much a single stress event (relative to the
// recovery anchor) can add while being folded into an ongoing recovery
// phase; interludeBudget bounds the cumulative total. Measurement
// wake-ups (~3 s every 30 min) sit far below both; a real re-stress
// exceeds the per-event bound immediately.
const (
	interludeFrac   = 0.02
	interludeBudget = 0.10
)

// Vth returns the present total threshold-voltage shift in volts.
func (s *State) Vth() float64 { return s.perm + s.rec }

// Permanent returns the irreversible component of the shift in volts.
func (s *State) Permanent() float64 { return s.perm }

// Recoverable returns the recoverable component of the shift in volts.
func (s *State) Recoverable() float64 { return s.rec }

// StressAge returns the accumulated duty-weighted stress time.
func (s *State) StressAge() units.Seconds { return s.stressAge }

// EffectiveAge returns the equivalent continuous-stress age of the
// present shift under the most recent stress condition — the t1 the
// recovery kinetics see.
func (s *State) EffectiveAge() units.Seconds { return s.effAge }

// Stress advances the device through dt of stress under condition c.
// It returns the threshold shift increment added during this step.
//
// Re-stress after recovery follows the TD picture: the trajectory
// resumes from the *equivalent stress time* of the current shift, so a
// partially healed device first re-ages quickly (refilling fast traps)
// and then settles back onto the slow logarithmic tail.
func (s *State) Stress(p Params, c StressCond, dt units.Seconds) float64 {
	if dt < 0 {
		panic(fmt.Sprintf("td: negative stress duration %v", dt))
	}
	duty := effDuty(c.Duty)
	if dt == 0 || duty == 0 {
		return 0
	}
	phi := PhiStress(p, c) * acFactor(p, duty)
	// Equivalent stress time te of the current total shift v satisfies
	// v = φ·ln(1+C·te); the increment over dt is
	//   Δ = φ·ln((1+C·(te+dt)) / (1+C·te)) = φ·log1p(C·dt·e^(−v/φ)),
	// which is numerically stable even when v/φ is large (e.g. a heavily
	// hot-stressed device continuing to age at room temperature).
	v := s.Vth()
	delta := phi * math.Log1p(p.C*float64(dt)*math.Exp(-v/phi))
	// The irreversible component follows its own log trajectory
	// perm(t) = PermFrac·φ·ln(1+C·t) via the same equivalent-time
	// inversion, so it keeps creeping slowly along the virgin curve's
	// tail instead of taking a cut of every stress/heal sawtooth refill
	// (which would wrongly consume the whole margin within weeks of
	// cycling). On virgin stress this reduces to exactly
	// PermFrac·ΔVth(t). dperm cannot exceed delta while v ≤ perm/PF,
	// which recovery preserves; the clamp guards condition changes.
	dperm := 0.0
	if pf := p.PermFrac * phi; pf > 0 {
		dperm = math.Min(delta,
			pf*math.Log1p(p.C*float64(dt)*math.Exp(-s.perm/pf)))
	}
	recDelta := delta - dperm
	// A brief wake-up during sleep (the bench samples the RO for ~3 s
	// every 30 min) must not restart the recovery fast phase: fold the
	// tiny refill into the recovery anchor and keep the emission clock
	// running. Anything larger ends the recovery phase for real.
	if s.phase == modeRecovery && s.rec0 > 0 &&
		recDelta <= interludeFrac*s.rec0 &&
		s.interlude+recDelta <= interludeBudget*s.rec0 {
		s.interlude += recDelta
		s.rec0 += recDelta
	} else {
		if s.phase == modeRecovery {
			s.prevT2 = s.t2
		}
		s.phase = modeStress
		s.interlude = 0
	}
	s.perm += dperm
	s.rec += recDelta
	s.stressAge += units.Seconds(duty * float64(dt))
	// Equivalent age of the new total shift under this condition,
	// computed in a form that cannot overflow: te+dt where
	// 1+C·te = e^(v/φ), so effAge = (e^(v/φ)−1)/C + dt. Equivalent
	// time is condition-relative, so a brief step under a much weaker
	// condition (a 3 s oscillating sample after a day of DC stress)
	// would report an absurdly deep age; the age may therefore never
	// grow faster than wall time.
	const maxExp = 40 // e^40/C ≈ 2e19 s ≫ any schedule; clamp beyond
	age := units.Seconds(math.Exp(maxExp) / p.C)
	if u := v / phi; u <= maxExp {
		age = units.Seconds(math.Expm1(u)/p.C) + dt
	}
	if limit := s.effAge + dt; age > limit {
		age = limit
	}
	s.effAge = age
	return delta
}

// Recover advances the device through dt of sleep under condition c and
// returns the (non-negative) threshold shift removed during this step.
//
// The recovered fraction is evaluated against the shift present when
// this recovery phase began; recovery is monotone — a weakening of the
// sleep condition mid-phase holds the shift rather than re-aging it
// (re-aging only happens through Stress).
func (s *State) Recover(p Params, c RecoveryCond, dt units.Seconds) float64 {
	if dt < 0 {
		panic(fmt.Sprintf("td: negative recovery duration %v", dt))
	}
	if s.phase != modeRecovery {
		s.phase = modeRecovery
		s.rec0 = s.rec
		s.t2 = 0
		s.interlude = 0
		// The stress history this recovery works against: the
		// equivalent age of the present damage, floored by the depth
		// already emptied in the previous recovery phase.
		s.t1 = s.effAge
		if s.prevT2 > s.t1 {
			s.t1 = s.prevT2
		}
	}
	s.t2 += dt
	r := RecoveredFraction(p, c, s.t1, s.t2)
	target := s.rec0 * (1 - r)
	if target >= s.rec {
		return 0
	}
	removed := s.rec - target
	s.rec = target
	return removed
}

// Reset returns the device to the fresh state.
func (s *State) Reset() { *s = State{} }

// Clone returns a copy of the state.
func (s *State) Clone() *State {
	c := *s
	return &c
}
