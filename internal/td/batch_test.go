package td

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"selfheal/internal/units"
)

// TestBatchMatchesScalar is the satellite property test: random fleets
// advanced through random stress/recovery interleavings must track the
// scalar model within 1e-12 on every state component. The batch path
// replicates the scalar expressions operation for operation, so in
// practice the trajectories come out bit-identical; the tolerance is
// the contract, equality is the implementation detail.
func TestBatchMatchesScalar(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(61))
	const chips = 64
	const steps = 400

	b := NewBatch(chips)
	scalars := make([]State, chips)
	for i := 0; i < chips; i++ {
		duty := rng.Float64()
		switch i % 8 {
		case 0:
			duty = 0 // idle chip: must never move
		case 1:
			duty = 1 // DC stress
		case 2:
			duty = 1e-9 // nearly idle
		case 3:
			duty = 1.7 // out of range, clamps to 1
		}
		if _, err := b.Append(p, duty); err != nil {
			t.Fatalf("Append(duty=%v): %v", duty, err)
		}
	}

	randStress := func() StressCond {
		return StressCond{
			V: units.Volt(0.8 + rng.Float64()),
			T: units.Celsius(20 + rng.Float64()*120).Kelvin(),
		}
	}
	randRecover := func() RecoveryCond {
		return RecoveryCond{
			VRev: units.Volt(rng.Float64() * 0.5),
			T:    units.Celsius(20 + rng.Float64()*120).Kelvin(),
		}
	}

	check := func(step int) {
		t.Helper()
		const tol = 1e-12
		for i := range scalars {
			got, want := b.ExportState(i), scalars[i]
			diffs := []struct {
				name      string
				got, want float64
			}{
				{"perm", got.perm, want.perm},
				{"rec", got.rec, want.rec},
				{"stressAge", float64(got.stressAge), float64(want.stressAge)},
				{"effAge", float64(got.effAge), float64(want.effAge)},
				{"rec0", got.rec0, want.rec0},
				{"t1", float64(got.t1), float64(want.t1)},
				{"t2", float64(got.t2), float64(want.t2)},
				{"prevT2", float64(got.prevT2), float64(want.prevT2)},
				{"interlude", got.interlude, want.interlude},
			}
			for _, d := range diffs {
				if math.IsNaN(d.got) || math.IsInf(d.got, 0) {
					t.Fatalf("step %d chip %d: batch %s is %v", step, i, d.name, d.got)
				}
				scale := math.Max(1, math.Abs(d.want))
				if math.Abs(d.got-d.want) > tol*scale {
					t.Fatalf("step %d chip %d: %s diverged: batch %.17g scalar %.17g",
						step, i, d.name, d.got, d.want)
				}
			}
			if got.phase != want.phase {
				t.Fatalf("step %d chip %d: phase diverged: batch %d scalar %d",
					step, i, got.phase, want.phase)
			}
		}
	}

	for step := 0; step < steps; step++ {
		dt := units.Seconds(math.Exp(rng.Float64()*12 - 2)) // ~0.14 s … 6 days
		if rng.Intn(20) == 0 {
			dt = 0
		}
		// Occasionally re-deal a chip's duty cycle mid-life.
		if rng.Intn(10) == 0 {
			i := rng.Intn(chips)
			d := rng.Float64() * 1.2
			if err := b.SetDuty(p, i, d); err != nil {
				t.Fatalf("SetDuty: %v", err)
			}
			// The scalar path passes duty per call; just record it.
			_ = d
		}
		if rng.Intn(2) == 0 {
			c := randStress()
			ss, err := NewStressStep(p, c, dt)
			if err != nil {
				t.Fatalf("NewStressStep: %v", err)
			}
			b.AdvanceStress(p, ss, nil)
			for i := range scalars {
				sc := c
				sc.Duty = b.Duty(i)
				scalars[i].Stress(p, sc, dt)
			}
		} else {
			c := randRecover()
			rs, err := NewRecoverStep(p, c, dt)
			if err != nil {
				t.Fatalf("NewRecoverStep: %v", err)
			}
			b.AdvanceRecover(p, rs, nil)
			for i := range scalars {
				scalars[i].Recover(p, c, dt)
			}
		}
		check(step)
	}
}

// TestAdvanceBatchClasses drives AdvanceBatch with disjoint per-class
// index lists (a stress class and a recovery class, as the engine
// does) and checks each subset against scalar references.
func TestAdvanceBatchClasses(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(7))
	const chips = 40

	b := NewBatch(chips)
	scalars := make([]State, chips)
	for i := 0; i < chips; i++ {
		if _, err := b.Append(p, 1); err != nil {
			t.Fatal(err)
		}
	}

	stressC := StressCond{V: 1.2, T: units.Celsius(110).Kelvin()}
	sleepC := RecoveryCond{VRev: 0.3, T: units.Celsius(110).Kelvin()}

	for step := 0; step < 100; step++ {
		// Deal chips into the two classes at random each step.
		var sIdx, rIdx []int
		for i := 0; i < chips; i++ {
			if rng.Intn(2) == 0 {
				sIdx = append(sIdx, i)
			} else {
				rIdx = append(rIdx, i)
			}
		}
		dt := units.Seconds(1800)
		classes := []Class{
			{Stress: true, SCond: stressC, Idx: sIdx},
			{RCond: sleepC, Idx: rIdx},
		}
		if err := AdvanceBatch(p, b, dt, classes); err != nil {
			t.Fatalf("AdvanceBatch: %v", err)
		}
		for _, i := range sIdx {
			sc := stressC
			sc.Duty = b.Duty(i)
			scalars[i].Stress(p, sc, dt)
		}
		for _, i := range rIdx {
			scalars[i].Recover(p, sleepC, dt)
		}
	}
	for i := range scalars {
		got, want := b.Vth(i), scalars[i].Vth()
		if math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
			t.Fatalf("chip %d: Vth diverged: batch %.17g scalar %.17g", i, got, want)
		}
	}
}

// TestBatchValidation exercises the NaN/Inf rejection paths the scalar
// model lacks: a poisoned condition or duty must be refused before any
// chip state is touched.
func TestBatchValidation(t *testing.T) {
	p := DefaultParams()
	nan, inf := math.NaN(), math.Inf(1)

	b := NewBatch(4)
	if _, err := b.Append(p, 0.5); err != nil {
		t.Fatal(err)
	}

	t.Run("duty", func(t *testing.T) {
		for _, d := range []float64{nan, inf, -inf} {
			if _, err := b.Append(p, d); err == nil {
				t.Errorf("Append(duty=%v): want error", d)
			}
			if err := b.SetDuty(p, 0, d); err == nil {
				t.Errorf("SetDuty(%v): want error", d)
			}
		}
		// Out-of-range finite duty clamps (matching the scalar model).
		if err := b.SetDuty(p, 0, 2.5); err != nil {
			t.Errorf("SetDuty(2.5): %v", err)
		} else if got := b.Duty(0); got != 1 {
			t.Errorf("SetDuty(2.5) clamped to %v, want 1", got)
		}
	})

	t.Run("stress-cond", func(t *testing.T) {
		bad := []StressCond{
			{V: units.Volt(nan), T: 383},
			{V: units.Volt(inf), T: 383},
			{V: 1.2, T: units.Kelvin(nan)},
			{V: 1.2, T: units.Kelvin(inf)},
			{V: 1.2, T: 0},
			{V: 1.2, T: -300},
		}
		for _, c := range bad {
			if _, err := NewStressStep(p, c, 1); err == nil {
				t.Errorf("NewStressStep(%+v): want error", c)
			}
		}
	})

	t.Run("recovery-cond", func(t *testing.T) {
		bad := []RecoveryCond{
			{VRev: units.Volt(nan), T: 293},
			{VRev: units.Volt(inf), T: 293},
			{VRev: 0.3, T: units.Kelvin(nan)},
			{VRev: 0.3, T: 0},
		}
		for _, c := range bad {
			if _, err := NewRecoverStep(p, c, 1); err == nil {
				t.Errorf("NewRecoverStep(%+v): want error", c)
			}
		}
	})

	t.Run("dt", func(t *testing.T) {
		good := StressCond{V: 1.2, T: 383}
		for _, dt := range []units.Seconds{units.Seconds(nan), units.Seconds(inf), -1} {
			if _, err := NewStressStep(p, good, dt); err == nil {
				t.Errorf("NewStressStep(dt=%v): want error", dt)
			}
			if _, err := NewRecoverStep(p, RecoveryCond{T: 293}, dt); err == nil {
				t.Errorf("NewRecoverStep(dt=%v): want error", dt)
			}
		}
	})

	t.Run("params", func(t *testing.T) {
		badP := p
		badP.C = 0
		if _, err := NewStressStep(badP, StressCond{V: 1.2, T: 383}, 1); err == nil {
			t.Error("NewStressStep(bad params): want error")
		}
		if _, err := NewRecoverStep(badP, RecoveryCond{T: 293}, 1); err == nil {
			t.Error("NewRecoverStep(bad params): want error")
		}
	})

	t.Run("class-error-is-atomic", func(t *testing.T) {
		bb := NewBatch(2)
		if _, err := bb.Append(p, 1); err != nil {
			t.Fatal(err)
		}
		bb2, _ := bb.Append(p, 1)
		_ = bb2
		before := bb.ExportState(0)
		classes := []Class{
			{Stress: true, SCond: StressCond{V: 1.2, T: 383}, Idx: []int{0}},
			{Stress: true, SCond: StressCond{V: units.Volt(nan), T: 383}, Idx: []int{1}},
		}
		if err := AdvanceBatch(p, bb, 3600, classes); err == nil {
			t.Fatal("AdvanceBatch with poisoned class: want error")
		}
		if after := bb.ExportState(0); after != before {
			t.Error("AdvanceBatch advanced chips before rejecting a later class")
		}
	})
}

// TestBatchSwapTruncate covers the engine's removal primitive.
func TestBatchSwapTruncate(t *testing.T) {
	p := DefaultParams()
	b := NewBatch(3)
	for i, d := range []float64{1, 0.5, 0.25} {
		if got, err := b.Append(p, d); err != nil || got != i {
			t.Fatalf("Append: idx %d err %v", got, err)
		}
	}
	ss, err := NewStressStep(p, StressCond{V: 1.2, T: 383}, 3600)
	if err != nil {
		t.Fatal(err)
	}
	b.AdvanceStress(p, ss, []int{1})
	vth1 := b.Vth(1)
	if vth1 <= 0 {
		t.Fatal("chip 1 did not age")
	}

	// Swap-delete chip 0: move the last chip into its slot.
	b.Swap(0, 2)
	b.Truncate(2)
	if b.Len() != 2 {
		t.Fatalf("Len=%d, want 2", b.Len())
	}
	if b.Duty(0) != 0.25 || b.Duty(1) != 0.5 {
		t.Fatalf("duties after swap-delete: %v %v", b.Duty(0), b.Duty(1))
	}
	if b.Vth(1) != vth1 {
		t.Fatalf("chip 1 state disturbed by unrelated swap-delete")
	}
	if b.Vth(0) != 0 {
		t.Fatalf("moved chip should still be fresh, Vth=%v", b.Vth(0))
	}
}

// TestBatchCopyVth checks the snapshot fast path.
func TestBatchCopyVth(t *testing.T) {
	p := DefaultParams()
	b := NewBatch(8)
	for i := 0; i < 8; i++ {
		if _, err := b.Append(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	ss, err := NewStressStep(p, StressCond{V: 1.2, T: 383}, 86400)
	if err != nil {
		t.Fatal(err)
	}
	b.AdvanceStress(p, ss, []int{0, 3, 7})
	dst := make([]float64, 8)
	b.CopyVth(dst)
	for i := 0; i < 8; i++ {
		if dst[i] != b.Vth(i) {
			t.Fatalf("CopyVth[%d]=%v, want %v", i, dst[i], b.Vth(i))
		}
	}
}

// BenchmarkAdvanceBatch measures the vectorized hot path against
// BenchmarkScalarLoop (the same fleet advanced by calling the scalar
// model per chip); the ratio is the headline of the tentpole. Metric:
// ns/chip-step.
func BenchmarkAdvanceBatch(bb *testing.B) {
	p := DefaultParams()
	for _, n := range []int{1024, 65536} {
		bb.Run(fmt.Sprintf("chips=%d", n), func(bb *testing.B) {
			b := NewBatch(n)
			for i := 0; i < n; i++ {
				if _, err := b.Append(p, 0.25+float64(i%3)*0.25); err != nil {
					bb.Fatal(err)
				}
			}
			c := StressCond{V: 1.2, T: units.Celsius(110).Kelvin()}
			ss, err := NewStressStep(p, c, 1800)
			if err != nil {
				bb.Fatal(err)
			}
			bb.ResetTimer()
			for i := 0; i < bb.N; i++ {
				b.AdvanceStress(p, ss, nil)
			}
			bb.StopTimer()
			bb.ReportMetric(float64(bb.Elapsed().Nanoseconds())/float64(bb.N)/float64(n), "ns/chip-step")
		})
	}
}

// BenchmarkScalarLoop is the baseline AdvanceBatch is compared to:
// the identical fleet advanced by calling State.Stress per chip.
func BenchmarkScalarLoop(bb *testing.B) {
	p := DefaultParams()
	for _, n := range []int{1024, 65536} {
		bb.Run(fmt.Sprintf("chips=%d", n), func(bb *testing.B) {
			states := make([]State, n)
			duties := make([]float64, n)
			for i := 0; i < n; i++ {
				duties[i] = 0.25 + float64(i%3)*0.25
			}
			c := StressCond{V: 1.2, T: units.Celsius(110).Kelvin()}
			bb.ResetTimer()
			for i := 0; i < bb.N; i++ {
				for j := range states {
					sc := c
					sc.Duty = duties[j]
					states[j].Stress(p, sc, 1800)
				}
			}
			bb.StopTimer()
			bb.ReportMetric(float64(bb.Elapsed().Nanoseconds())/float64(bb.N)/float64(n), "ns/chip-step")
		})
	}
}
