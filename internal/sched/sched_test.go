package sched

import (
	"math"
	"testing"

	"selfheal/internal/units"
)

// fastCfg keeps simulation cost low for unit tests: 10 days in 2 h
// slots.
func fastCfg() Config {
	cfg := DefaultConfig()
	cfg.Horizon = 10 * units.Day
	cfg.Slot = 2 * units.Hour
	return cfg
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Slot = 0 },
		func(c *Config) { c.Slot = c.Horizon * 2 },
		func(c *Config) { c.ActiveVdd = 0 },
		func(c *Config) { c.MarginFrac = 0 },
	}
	for i, mod := range mods {
		c := DefaultConfig()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	if (NoRecovery{}).Name() == "" {
		t.Error("empty name")
	}
	if (Proactive{Alpha: 4}).Name() != "proactive(α=4)" {
		t.Errorf("name = %q", Proactive{Alpha: 4}.Name())
	}
	if (Reactive{TriggerPct: 1.5}).Name() != "reactive(1.5%)" {
		t.Errorf("name = %q", Reactive{TriggerPct: 1.5}.Name())
	}
}

func TestProactiveSchedulePattern(t *testing.T) {
	p := Proactive{Alpha: 4, SleepLen: units.Hour, Cond: AcceleratedSleep()}
	// Period is 5 h: hours 0–3 active, hour 4 asleep.
	for hour := 0; hour < 10; hour++ {
		sleep, cond := p.Sleep(Status{Elapsed: units.Seconds(hour) * units.Hour})
		wantSleep := hour%5 == 4
		if sleep != wantSleep {
			t.Errorf("hour %d: sleep = %v, want %v", hour, sleep, wantSleep)
		}
		if sleep && cond != AcceleratedSleep() {
			t.Errorf("hour %d: wrong condition %+v", hour, cond)
		}
	}
}

func TestReactiveHysteresis(t *testing.T) {
	r := Reactive{TriggerPct: 1.0, RelaxPct: 0.4, Cond: AcceleratedSleep()}
	if sleep, _ := r.Sleep(Status{DegradationPct: 0.5}); sleep {
		t.Error("slept below trigger")
	}
	if sleep, _ := r.Sleep(Status{DegradationPct: 1.1}); !sleep {
		t.Error("did not sleep above trigger")
	}
	// While sleeping, keeps sleeping until below the relax level.
	if sleep, _ := r.Sleep(Status{DegradationPct: 0.7, Sleeping: true}); !sleep {
		t.Error("woke before relaxing")
	}
	if sleep, _ := r.Sleep(Status{DegradationPct: 0.3, Sleeping: true}); sleep {
		t.Error("kept sleeping below relax level")
	}
}

func TestSimulateRejectsBadInput(t *testing.T) {
	if _, err := Simulate(fastCfg(), nil); err == nil {
		t.Error("nil policy accepted")
	}
	bad := fastCfg()
	bad.Horizon = 0
	if _, err := Simulate(bad, NoRecovery{}); err == nil {
		t.Error("bad config accepted")
	}
	if _, err := Compare(fastCfg()); err == nil {
		t.Error("empty policy list accepted")
	}
}

func TestNoRecoveryAlwaysActive(t *testing.T) {
	out, err := Simulate(fastCfg(), NoRecovery{})
	if err != nil {
		t.Fatal(err)
	}
	if out.ActiveFraction != 1 {
		t.Errorf("active fraction = %v", out.ActiveFraction)
	}
	if out.PeakPct <= 0 || out.FinalPct <= 0 {
		t.Errorf("no aging recorded: %+v", out)
	}
	// Without recovery, degradation is monotone: peak == final.
	if math.Abs(out.PeakPct-out.FinalPct) > 1e-9 {
		t.Errorf("peak %v != final %v without recovery", out.PeakPct, out.FinalPct)
	}
}

// TestProactiveBeatsNoRecovery is the core Section 2.2 claim: scheduled
// accelerated sleep bounds degradation far below the no-recovery
// baseline at a modest throughput cost (α=4 ⇒ 80 % active).
func TestProactiveBeatsNoRecovery(t *testing.T) {
	cfg := fastCfg()
	outs, err := Compare(cfg,
		NoRecovery{},
		Proactive{Alpha: 4, SleepLen: 6 * units.Hour, Cond: AcceleratedSleep()},
	)
	if err != nil {
		t.Fatal(err)
	}
	none, pro := outs[0], outs[1]
	if pro.FinalPct >= none.FinalPct {
		t.Errorf("proactive final %v not below baseline %v", pro.FinalPct, none.FinalPct)
	}
	if math.Abs(pro.ActiveFraction-0.8) > 0.05 {
		t.Errorf("proactive active fraction = %v, want ≈0.8", pro.ActiveFraction)
	}
	if pro.MeanPct >= none.MeanPct {
		t.Errorf("proactive mean %v not below baseline %v", pro.MeanPct, none.MeanPct)
	}
}

// TestProactiveBeatsReactiveOnMeanDegradation encodes the paper's
// argument for proactive scheduling: reactive sleeps less but runs
// longer in an aged mode, so the software-visible mean degradation is
// worse.
func TestProactiveBeatsReactiveOnMeanDegradation(t *testing.T) {
	cfg := fastCfg()
	outs, err := Compare(cfg,
		Proactive{Alpha: 4, SleepLen: 6 * units.Hour, Cond: AcceleratedSleep()},
		Reactive{TriggerPct: 0.5, RelaxPct: 0.25, Cond: AcceleratedSleep()},
	)
	if err != nil {
		t.Fatal(err)
	}
	pro, rea := outs[0], outs[1]
	if pro.MeanPct >= rea.MeanPct {
		t.Errorf("proactive mean %.3f %% not below reactive %.3f %%", pro.MeanPct, rea.MeanPct)
	}
	// The reactive trigger must actually have fired within the horizon
	// for the comparison to mean anything.
	if rea.ActiveFraction >= 1 {
		t.Error("reactive policy never slept — trigger unreachable in this horizon")
	}
	// Reactive should spend at least as much time active (it only
	// sleeps when forced).
	if rea.ActiveFraction < pro.ActiveFraction-1e-9 {
		t.Errorf("reactive active fraction %v below proactive %v",
			rea.ActiveFraction, pro.ActiveFraction)
	}
}

// TestAcceleratedSleepBeatsPassive: with the same proactive schedule,
// the accelerated condition (110 °C, −0.3 V) holds degradation lower
// than plain gating — the paper's central knob.
func TestAcceleratedSleepBeatsPassive(t *testing.T) {
	cfg := fastCfg()
	outs, err := Compare(cfg,
		Proactive{Alpha: 4, SleepLen: 6 * units.Hour, Cond: AcceleratedSleep()},
		Proactive{Alpha: 4, SleepLen: 6 * units.Hour, Cond: PassiveSleep()},
	)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].FinalPct >= outs[1].FinalPct {
		t.Errorf("accelerated sleep (%.3f %%) not better than passive (%.3f %%)",
			outs[0].FinalPct, outs[1].FinalPct)
	}
}

func TestOutcomeTraceComplete(t *testing.T) {
	cfg := fastCfg()
	out, err := Simulate(cfg, NoRecovery{})
	if err != nil {
		t.Fatal(err)
	}
	wantSlots := int(float64(cfg.Horizon) / float64(cfg.Slot))
	if out.Trace.Len() != wantSlots {
		t.Errorf("trace has %d points, want %d", out.Trace.Len(), wantSlots)
	}
	if out.MarginProvisionPct <= 0 {
		t.Error("margin provision not computed")
	}
}

func TestCompareDeterministicAcrossRuns(t *testing.T) {
	cfg := fastCfg()
	a, err := Simulate(cfg, NoRecovery{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg, NoRecovery{})
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalPct != b.FinalPct {
		t.Errorf("same seed diverged: %v vs %v", a.FinalPct, b.FinalPct)
	}
}
