package sched

import (
	"errors"
	"fmt"
	"math"

	"selfheal/internal/fpga"
	"selfheal/internal/rng"
	"selfheal/internal/ro"
	"selfheal/internal/stress"
	"selfheal/internal/td"
	"selfheal/internal/units"
)

// AdaptiveOutcome reports a run of the virtual-circadian clock
// controller (the paper's Section 7 future work made concrete): because
// the rejuvenation schedule is known in advance, the controller
// *predicts* the degradation envelope from the first-order model and
// re-times the clock every slot, instead of shipping one worst-case
// period for the whole service life.
type AdaptiveOutcome struct {
	Policy string
	// StaticPeriodNS is the single period a conventional design must
	// ship: fresh delay plus the no-recovery end-of-horizon degradation
	// plus the guard band — the design margin of a system that never
	// rejuvenates and cannot adapt.
	StaticPeriodNS float64
	// MeanAdaptivePeriodNS is the time-averaged period the controller
	// actually ran.
	MeanAdaptivePeriodNS float64
	// MeanSpeedupPct is the average clock-frequency gain of adaptive
	// over static timing.
	MeanSpeedupPct float64
	// Violations counts slots where the true (measured) delay exceeded
	// the period the controller had set — must be zero for a sound
	// guard band.
	Violations int
	// Slots is the number of simulated decision slots.
	Slots int
}

// AdaptiveConfig configures the controller simulation.
type AdaptiveConfig struct {
	Config
	// GuardPct is the timing guard band applied on top of the
	// predicted delay, in percent (covers model error, measurement
	// noise and within-slot drift).
	GuardPct float64
}

// DefaultAdaptiveConfig uses the standard 60-day schedule simulation
// with a 1 % guard band.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{Config: DefaultConfig(), GuardPct: 1}
}

// SimulateAdaptive runs a proactive policy with the virtual-circadian
// clock controller: each slot the controller predicts the end-of-slot
// delay from the closed-form TD model (it knows the schedule, the
// conditions and the chip's fresh delay — nothing measured), sets the
// clock period to prediction × (1 + guard), and the simulation then
// checks the *actual* aged delay against it.
func SimulateAdaptive(cfg AdaptiveConfig, p Proactive) (AdaptiveOutcome, error) {
	if err := cfg.Validate(); err != nil {
		return AdaptiveOutcome{}, err
	}
	if cfg.GuardPct < 0 {
		return AdaptiveOutcome{}, errors.New("sched: guard band must be non-negative")
	}
	if p.Alpha <= 0 || p.SleepLen <= 0 {
		return AdaptiveOutcome{}, errors.New("sched: adaptive control needs a positive proactive schedule")
	}

	src := rng.New(cfg.Seed)
	chip, err := fpga.NewChip("adaptive", fpga.DefaultParams(), src.Split())
	if err != nil {
		return AdaptiveOutcome{}, err
	}
	osc, err := ro.New(chip, "monitor", ro.DefaultParams(), src.Split())
	if err != nil {
		return AdaptiveOutcome{}, err
	}
	eng := stress.New(chip)
	if err := eng.AddActivity(stress.Activity{Mapping: osc.Mapping(), AC: true}); err != nil {
		return AdaptiveOutcome{}, err
	}
	freshNS, err := osc.Mapping().MeasuredDelay(cfg.ActiveVdd)
	if err != nil {
		return AdaptiveOutcome{}, err
	}

	// The controller's model twin: a lumped device following the same
	// schedule analytically. Path gain maps its ΔVth to delay, and the
	// twin's duty is calibrated so its effectiveness factor equals the
	// *path-level* AC factor of the oscillating design (≈0.5, Fig. 4):
	// every transistor shares the ln(1+C·t) time shape, so a lumped
	// device with the right prefactor predicts the path exactly.
	tdp := chip.Params().TD
	var twin, baseline td.State
	gain := pathGainNSPerV(freshNS)
	twinDuty := math.Pow(0.5, 1/tdp.ACExp)

	predict := func() float64 { return freshNS + gain*twin.Vth() }

	out := AdaptiveOutcome{Policy: p.Name()}
	var periodSum float64
	sleeping := false
	var sleptFor units.Seconds
	degPct := 0.0

	for t := units.Seconds(0); t < cfg.Horizon-1e-9; t += cfg.Slot {
		sleep, cond := p.Sleep(Status{Elapsed: t, DegradationPct: degPct,
			Sleeping: sleeping, SleptFor: sleptFor})
		// Advance the model twin first: the controller times the slot
		// for its predicted END-of-slot delay (worst within the slot).
		if sleep {
			var vrev units.Volt
			if cond.Vdd < 0 {
				vrev = -cond.Vdd
			}
			twin.Recover(tdp, td.RecoveryCond{VRev: vrev, T: cond.TempC.Kelvin()}, cfg.Slot)
		} else {
			twin.Stress(tdp, td.StressCond{
				V: cfg.ActiveVdd, T: cfg.ActiveTempC.Kelvin(), Duty: twinDuty,
			}, cfg.Slot)
		}
		period := predict() * (1 + cfg.GuardPct/100)

		// Reality advances.
		if sleep {
			if err := eng.Step(cond.Vdd, cond.TempC, cfg.Slot); err != nil {
				return AdaptiveOutcome{}, err
			}
			sleptFor += cfg.Slot
		} else {
			if err := eng.Step(cfg.ActiveVdd, cfg.ActiveTempC, cfg.Slot); err != nil {
				return AdaptiveOutcome{}, err
			}
			sleptFor = 0
		}
		sleeping = sleep

		actual, err := osc.Mapping().MeasuredDelay(cfg.ActiveVdd)
		if err != nil {
			return AdaptiveOutcome{}, err
		}
		degPct = (actual - freshNS) / freshNS * 100
		// The conventional reference never sleeps: its critical path
		// keeps aging through every slot.
		baseline.Stress(tdp, td.StressCond{
			V: cfg.ActiveVdd, T: cfg.ActiveTempC.Kelvin(), Duty: twinDuty,
		}, cfg.Slot)
		if !sleep {
			// Clock only matters while computing.
			periodSum += period
			out.Slots++
			if actual > period {
				out.Violations++
			}
		}
	}
	out.StaticPeriodNS = (freshNS + gain*baseline.Vth()) * (1 + cfg.GuardPct/100)
	if out.Slots == 0 {
		return AdaptiveOutcome{}, fmt.Errorf("sched: policy %s never ran an active slot", p.Name())
	}
	out.MeanAdaptivePeriodNS = periodSum / float64(out.Slots)
	out.MeanSpeedupPct = (out.StaticPeriodNS/out.MeanAdaptivePeriodNS - 1) * 100
	return out, nil
}

// pathGainNSPerV matches the controller twin's delay gain to the RO
// calibration: the measured-path gain is ≈54.7 ns/V for a 100 ns fresh
// path, scaling linearly with the fresh delay.
func pathGainNSPerV(freshNS float64) float64 {
	return 54.7 * freshNS / 100
}
