package sched

import (
	"testing"

	"selfheal/internal/units"
)

func fastAdaptiveCfg() AdaptiveConfig {
	cfg := DefaultAdaptiveConfig()
	cfg.Horizon = 15 * units.Day
	cfg.Slot = 2 * units.Hour
	return cfg
}

func proactive4() Proactive {
	return Proactive{Alpha: 4, SleepLen: 6 * units.Hour, Cond: AcceleratedSleep()}
}

func TestAdaptiveValidation(t *testing.T) {
	cfg := fastAdaptiveCfg()
	bad := cfg
	bad.GuardPct = -1
	if _, err := SimulateAdaptive(bad, proactive4()); err == nil {
		t.Error("negative guard accepted")
	}
	bad = cfg
	bad.Horizon = 0
	if _, err := SimulateAdaptive(bad, proactive4()); err == nil {
		t.Error("bad base config accepted")
	}
	if _, err := SimulateAdaptive(cfg, Proactive{}); err == nil {
		t.Error("zero-valued policy accepted")
	}
}

// TestAdaptiveNoViolations is the soundness requirement: the controller
// predicts purely from the model (it never measures), and with a 1 %
// guard band the actual aged delay never exceeds the period it set.
func TestAdaptiveNoViolations(t *testing.T) {
	out, err := SimulateAdaptive(fastAdaptiveCfg(), proactive4())
	if err != nil {
		t.Fatal(err)
	}
	if out.Violations != 0 {
		t.Errorf("%d timing violations in %d slots", out.Violations, out.Slots)
	}
	if out.Slots == 0 {
		t.Fatal("no active slots")
	}
}

// TestAdaptiveSpeedup is the §7 payoff: re-timing against the known
// envelope runs the clock measurably faster on average than shipping
// the worst-case period.
func TestAdaptiveSpeedup(t *testing.T) {
	out, err := SimulateAdaptive(fastAdaptiveCfg(), proactive4())
	if err != nil {
		t.Fatal(err)
	}
	if out.MeanSpeedupPct <= 0 {
		t.Errorf("no speedup: %+v", out)
	}
	if out.MeanAdaptivePeriodNS >= out.StaticPeriodNS {
		t.Errorf("adaptive period %v not below static %v",
			out.MeanAdaptivePeriodNS, out.StaticPeriodNS)
	}
}

// TestAdaptivePredictionTight: the speedup cannot exceed the policy's
// whole degradation swing plus guard — a sanity bound on the model twin.
func TestAdaptivePredictionTight(t *testing.T) {
	out, err := SimulateAdaptive(fastAdaptiveCfg(), proactive4())
	if err != nil {
		t.Fatal(err)
	}
	if out.MeanSpeedupPct > 3 {
		t.Errorf("implausible speedup %.2f %%", out.MeanSpeedupPct)
	}
}

// TestTighterGuardKeepsSoundnessAtCost: doubling the guard halves the
// reclaimable slack but can never create violations.
func TestGuardTradeoff(t *testing.T) {
	cfg := fastAdaptiveCfg()
	tight, err := SimulateAdaptive(cfg, proactive4())
	if err != nil {
		t.Fatal(err)
	}
	cfg.GuardPct = 3
	loose, err := SimulateAdaptive(cfg, proactive4())
	if err != nil {
		t.Fatal(err)
	}
	if loose.Violations != 0 || tight.Violations != 0 {
		t.Error("violations present")
	}
	// Bigger guard → longer periods.
	if loose.MeanAdaptivePeriodNS <= tight.MeanAdaptivePeriodNS {
		t.Errorf("guard did not lengthen the period: %v vs %v",
			loose.MeanAdaptivePeriodNS, tight.MeanAdaptivePeriodNS)
	}
}
