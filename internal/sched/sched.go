// Package sched implements the scheduling side of the paper's proposal
// (Section 2.2): *when* to rejuvenate. It provides three policies —
// no recovery (today's practice), reactive accelerated recovery
// (sleep once a degradation threshold trips), and proactive accelerated
// recovery (scheduled sleep at a fixed active:sleep ratio α, the
// circadian rhythm) — and a long-horizon simulator that runs a chip
// under a policy and reports the margin and throughput consequences.
//
// The paper argues proactive beats reactive: reactive is "economic"
// (sleeps only when needed) but operates longer in an aged mode and is
// unpredictable; proactive keeps the system in a "refreshed" mode with
// better cumulative metrics. The simulator makes those claims
// measurable: peak and time-weighted delay degradation, active-time
// fraction (throughput), and the margin a designer must provision.
package sched

import (
	"errors"
	"fmt"
	"math"

	"selfheal/internal/fpga"
	"selfheal/internal/rng"
	"selfheal/internal/ro"
	"selfheal/internal/series"
	"selfheal/internal/stress"
	"selfheal/internal/units"
)

// SleepCond is the rejuvenation condition a policy requests.
type SleepCond struct {
	TempC units.Celsius
	Vdd   units.Volt // ≤ 0: gated or negative rail
}

// AcceleratedSleep is the paper's best condition: 110 °C and −0.3 V.
func AcceleratedSleep() SleepCond { return SleepCond{TempC: 110, Vdd: -0.3} }

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// validate rejects NaN/Inf fields and positive sleep rails (a positive
// rail during "sleep" would stress the die, not heal it).
func (c SleepCond) validate() error {
	switch {
	case !isFinite(float64(c.TempC)):
		return fmt.Errorf("sched: sleep temperature must be finite, got %v °C", float64(c.TempC))
	case !isFinite(float64(c.Vdd)):
		return fmt.Errorf("sched: sleep rail must be finite, got %v V", float64(c.Vdd))
	case c.Vdd > 0:
		return fmt.Errorf("sched: sleep rail must be ≤ 0 (gated or negative), got %v V", float64(c.Vdd))
	}
	return nil
}

// PassiveSleep is conventional power gating at ambient.
func PassiveSleep() SleepCond { return SleepCond{TempC: 45, Vdd: 0} }

// Status is what a policy sees at each decision slot.
type Status struct {
	Elapsed units.Seconds
	// DegradationPct is the current frequency degradation relative to
	// fresh (from the on-chip RO monitor — the paper's refs [7,8]).
	DegradationPct float64
	// Sleeping reports whether the previous slot was a sleep slot.
	Sleeping bool
	// SleptFor is how long the current sleep streak has lasted.
	SleptFor units.Seconds
}

// Policy decides, slot by slot, whether the chip works or sleeps.
type Policy interface {
	Name() string
	// Sleep reports whether the next slot should be a sleep slot and
	// under which condition (ignored when false).
	Sleep(s Status) (bool, SleepCond)
}

// NoRecovery never sleeps — the aging baseline.
type NoRecovery struct{}

// Name implements Policy.
func (NoRecovery) Name() string { return "no-recovery" }

// Sleep implements Policy.
func (NoRecovery) Sleep(Status) (bool, SleepCond) { return false, SleepCond{} }

// Proactive sleeps on a fixed circadian schedule: after every
// Alpha·SleepLen of activity, it sleeps for SleepLen under Cond —
// ahead of any sign of stress.
type Proactive struct {
	Alpha    float64 // active:sleep ratio (4 in the paper)
	SleepLen units.Seconds
	Cond     SleepCond
}

// Name implements Policy.
func (p Proactive) Name() string { return fmt.Sprintf("proactive(α=%g)", p.Alpha) }

// Validate reports whether the schedule's parameters are physical:
// positive finite α and sleep length, and a finite sleep condition
// with a non-positive rail.
func (p Proactive) Validate() error {
	switch {
	case !isFinite(p.Alpha) || p.Alpha <= 0:
		return fmt.Errorf("sched: proactive α must be a positive finite active:sleep ratio, got %v", p.Alpha)
	case !isFinite(float64(p.SleepLen)) || p.SleepLen <= 0:
		return fmt.Errorf("sched: proactive sleep length must be positive, got %v s", float64(p.SleepLen))
	}
	return p.Cond.validate()
}

// Sleep implements Policy.
func (p Proactive) Sleep(s Status) (bool, SleepCond) {
	period := units.Seconds(p.Alpha+1) * p.SleepLen
	into := units.Seconds(0)
	if period > 0 {
		into = units.Seconds(float64(int64(float64(s.Elapsed)) % int64(float64(period))))
	}
	return into >= units.Seconds(p.Alpha)*p.SleepLen, p.Cond
}

// Reactive sleeps only once the monitored degradation exceeds
// TriggerPct, and then sleeps until it falls below RelaxPct (hysteresis
// — without it the policy would thrash at the threshold).
type Reactive struct {
	TriggerPct float64
	RelaxPct   float64
	Cond       SleepCond
}

// Name implements Policy.
func (r Reactive) Name() string { return fmt.Sprintf("reactive(%.2g%%)", r.TriggerPct) }

// Validate reports whether the trigger/relax hysteresis band is
// well-formed and the sleep condition is physical.
func (r Reactive) Validate() error {
	switch {
	case !isFinite(r.TriggerPct) || r.TriggerPct <= 0:
		return fmt.Errorf("sched: reactive trigger must be a positive finite degradation %%, got %v", r.TriggerPct)
	case !isFinite(r.RelaxPct) || r.RelaxPct < 0:
		return fmt.Errorf("sched: reactive relax threshold must be ≥ 0 and finite, got %v", r.RelaxPct)
	case r.RelaxPct >= r.TriggerPct:
		return fmt.Errorf("sched: reactive relax threshold %v must sit below the trigger %v (hysteresis)",
			r.RelaxPct, r.TriggerPct)
	}
	return r.Cond.validate()
}

// Sleep implements Policy.
func (r Reactive) Sleep(s Status) (bool, SleepCond) {
	if s.Sleeping {
		return s.DegradationPct > r.RelaxPct, r.Cond
	}
	return s.DegradationPct >= r.TriggerPct, r.Cond
}

// Config drives a simulation.
type Config struct {
	Seed uint64
	// Horizon and Slot set the simulated span and decision granularity.
	Horizon units.Seconds
	Slot    units.Seconds
	// ActiveTempC and ActiveVdd describe normal operation (a hot die
	// under load).
	ActiveTempC units.Celsius
	ActiveVdd   units.Volt
	// MarginFrac is the delay-margin budget (fraction of fresh delay)
	// used for lifetime accounting.
	MarginFrac float64
}

// DefaultConfig simulates 60 days of hot operation in 1 h slots.
func DefaultConfig() Config {
	return Config{
		Seed:        1,
		Horizon:     60 * units.Day,
		Slot:        units.Hour,
		ActiveTempC: 85,
		ActiveVdd:   1.2,
		MarginFrac:  0.02,
	}
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	switch {
	case c.Horizon <= 0 || c.Slot <= 0:
		return errors.New("sched: horizon and slot must be positive")
	case c.Slot > c.Horizon:
		return errors.New("sched: slot exceeds horizon")
	case c.ActiveVdd <= 0:
		return errors.New("sched: active supply must be positive")
	case c.MarginFrac <= 0:
		return errors.New("sched: margin fraction must be positive")
	}
	return nil
}

// Outcome summarizes one simulated policy run.
type Outcome struct {
	Policy string
	// ActiveFraction is the share of wall time spent working — the
	// throughput cost of the policy.
	ActiveFraction float64
	// PeakPct and FinalPct are the worst and final frequency
	// degradation over the horizon; MeanPct is time-weighted across
	// active slots only (what running software experiences).
	PeakPct, FinalPct, MeanPct float64
	// MarginProvisionPct is the margin a designer must budget to cover
	// the peak: PeakPct expressed against the MarginFrac budget
	// (100 % = budget exhausted).
	MarginProvisionPct float64
	// Trace is the degradation (%) over time.
	Trace *series.Series
}

// Simulate runs one policy over the horizon on a freshly fabricated
// chip carrying the standard RO monitor.
func Simulate(cfg Config, p Policy) (Outcome, error) {
	if err := cfg.Validate(); err != nil {
		return Outcome{}, err
	}
	if p == nil {
		return Outcome{}, errors.New("sched: nil policy")
	}
	if v, ok := p.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return Outcome{}, err
		}
	}
	src := rng.New(cfg.Seed)
	chip, err := fpga.NewChip("sched", fpga.DefaultParams(), src.Split())
	if err != nil {
		return Outcome{}, err
	}
	osc, err := ro.New(chip, "monitor", ro.DefaultParams(), src.Split())
	if err != nil {
		return Outcome{}, err
	}
	eng := stress.New(chip)
	if err := eng.AddActivity(stress.Activity{Mapping: osc.Mapping(), AC: true}); err != nil {
		return Outcome{}, err
	}
	freshNS, err := osc.Mapping().MeasuredDelay(cfg.ActiveVdd)
	if err != nil {
		return Outcome{}, err
	}

	out := Outcome{Policy: p.Name(), Trace: series.New(p.Name())}
	var activeTime, sleptFor units.Seconds
	var meanAcc float64
	var activeSlots int
	sleeping := false
	degPct := 0.0

	for t := units.Seconds(0); t < cfg.Horizon-1e-9; t += cfg.Slot {
		sleep, cond := p.Sleep(Status{
			Elapsed:        t,
			DegradationPct: degPct,
			Sleeping:       sleeping,
			SleptFor:       sleptFor,
		})
		if sleep {
			if err := eng.Step(cond.Vdd, cond.TempC, cfg.Slot); err != nil {
				return Outcome{}, err
			}
			sleptFor += cfg.Slot
		} else {
			if err := eng.Step(cfg.ActiveVdd, cfg.ActiveTempC, cfg.Slot); err != nil {
				return Outcome{}, err
			}
			activeTime += cfg.Slot
			sleptFor = 0
		}
		sleeping = sleep

		d, err := osc.Mapping().MeasuredDelay(cfg.ActiveVdd)
		if err != nil {
			return Outcome{}, err
		}
		degPct = (d - freshNS) / freshNS * 100
		out.Trace.Add(t+cfg.Slot, degPct)
		if degPct > out.PeakPct {
			out.PeakPct = degPct
		}
		if !sleep {
			meanAcc += degPct
			activeSlots++
		}
	}
	out.FinalPct = degPct
	out.ActiveFraction = float64(activeTime) / float64(cfg.Horizon)
	if activeSlots > 0 {
		out.MeanPct = meanAcc / float64(activeSlots)
	}
	out.MarginProvisionPct = out.PeakPct / (cfg.MarginFrac * 100) * 100
	return out, nil
}

// Compare simulates several policies under the same configuration and
// seed (identical chips), returning outcomes in input order.
func Compare(cfg Config, policies ...Policy) ([]Outcome, error) {
	if len(policies) == 0 {
		return nil, errors.New("sched: no policies")
	}
	outs := make([]Outcome, len(policies))
	for i, p := range policies {
		o, err := Simulate(cfg, p)
		if err != nil {
			return nil, fmt.Errorf("sched: %s: %w", p.Name(), err)
		}
		outs[i] = o
	}
	return outs, nil
}
