package thermal

import (
	"math"
	"testing"

	"selfheal/internal/rng"
	"selfheal/internal/units"
)

func newChamber(t *testing.T) *Chamber {
	t.Helper()
	c, err := NewChamber(DefaultChamberParams(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChamberDefaultsValid(t *testing.T) {
	if err := DefaultChamberParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChamberValidate(t *testing.T) {
	mods := []func(*ChamberParams){
		func(p *ChamberParams) { p.FluctuationC = -1 },
		func(p *ChamberParams) { p.RampCPerMin = 0 },
		func(p *ChamberParams) { p.MaxC = p.MinC },
	}
	for i, mod := range mods {
		p := DefaultChamberParams()
		mod(&p)
		if _, err := NewChamber(p, rng.New(1)); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestChamberStartsAtAmbient(t *testing.T) {
	c := newChamber(t)
	if c.Temperature() != 20 || c.Target() != 20 {
		t.Errorf("initial state: %v / %v", c.Temperature(), c.Target())
	}
	if !c.Settled() {
		t.Error("chamber not settled at ambient")
	}
}

func TestChamberSetpointRange(t *testing.T) {
	c := newChamber(t)
	if err := c.SetTarget(110); err != nil {
		t.Fatal(err)
	}
	if err := c.SetTarget(200); err == nil {
		t.Error("setpoint above range accepted")
	}
	if c.Target() != 110 {
		t.Error("rejected setpoint overwrote previous target")
	}
	if err := c.SetTarget(-100); err == nil {
		t.Error("setpoint below range accepted")
	}
}

func TestChamberRampAndSettle(t *testing.T) {
	c := newChamber(t)
	if err := c.SetTarget(110); err != nil {
		t.Fatal(err)
	}
	// 90 °C at 5 °C/min = 18 min of ramp.
	want := c.SettleTime()
	if math.Abs(float64(want)-18*60) > 1 {
		t.Errorf("settle time = %v, want 18 min", want)
	}
	// After 9 minutes we are halfway, not settled.
	c.Step(9 * units.Minute)
	if c.Settled() {
		t.Error("settled too early")
	}
	if math.Abs(float64(c.Temperature())-65) > 0.5 {
		t.Errorf("mid-ramp temperature = %v, want ≈65 °C", c.Temperature())
	}
	// Finish the ramp.
	c.Step(10 * units.Minute)
	if !c.Settled() {
		t.Errorf("not settled at %v", c.Temperature())
	}
}

func TestChamberFluctuationBand(t *testing.T) {
	c := newChamber(t)
	if err := c.SetTarget(110); err != nil {
		t.Fatal(err)
	}
	c.Step(30 * units.Minute) // settle
	for i := 0; i < 1000; i++ {
		got := c.Step(units.Minute)
		if math.Abs(float64(got-110)) > 0.3+1e-9 {
			t.Fatalf("excursion outside ±0.3 °C: %v", got)
		}
	}
}

func TestChamberCoolDown(t *testing.T) {
	c := newChamber(t)
	if err := c.SetTarget(110); err != nil {
		t.Fatal(err)
	}
	c.Step(30 * units.Minute)
	if err := c.SetTarget(20); err != nil {
		t.Fatal(err)
	}
	c.Step(30 * units.Minute)
	if !c.Settled() || math.Abs(float64(c.Temperature()-20)) > 0.31 {
		t.Errorf("cool-down failed: %v", c.Temperature())
	}
}

func TestChamberPanicsOnNegativeStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	newChamber(t).Step(-1)
}

func newGrid(t *testing.T) *Grid {
	t.Helper()
	g, err := NewGrid(DefaultGridParams())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGridDefaultsValid(t *testing.T) {
	if err := DefaultGridParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGridValidate(t *testing.T) {
	mods := []func(*GridParams){
		func(p *GridParams) { p.Rows = 0 },
		func(p *GridParams) { p.Cols = 0 },
		func(p *GridParams) { p.CapJPerC = 0 },
		func(p *GridParams) { p.GAmbientWPerC = 0 },
		func(p *GridParams) { p.GNeighborWPerC = -1 },
	}
	for i, mod := range mods {
		p := DefaultGridParams()
		mod(&p)
		if _, err := NewGrid(p); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestGridStartsAtAmbient(t *testing.T) {
	g := newGrid(t)
	if g.Tiles() != 8 {
		t.Fatalf("tiles = %d", g.Tiles())
	}
	for i := 0; i < g.Tiles(); i++ {
		tc, err := g.Temperature(i)
		if err != nil || tc != 45 {
			t.Errorf("tile %d at %v", i, tc)
		}
	}
}

func TestGridBounds(t *testing.T) {
	g := newGrid(t)
	if err := g.SetPower(-1, 1); err == nil {
		t.Error("negative index accepted")
	}
	if err := g.SetPower(8, 1); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := g.SetPower(0, -1); err == nil {
		t.Error("negative power accepted")
	}
	if _, err := g.Temperature(99); err == nil {
		t.Error("out-of-range temperature accepted")
	}
}

func TestGridSelfHeating(t *testing.T) {
	g := newGrid(t)
	if err := g.SetPower(0, 10); err != nil {
		t.Fatal(err)
	}
	temps := g.SteadyState(0.001, 10000)
	if temps[0] <= 45 {
		t.Fatalf("powered tile did not heat: %v", temps[0])
	}
	// A hot core should reach server-class junction temperatures.
	if temps[0] < 60 || temps[0] > 110 {
		t.Errorf("powered tile at %v, want 60–110 °C", temps[0])
	}
}

// TestGridNeighborHeating is the paper's Section 6.2 mechanism: an idle
// tile surrounded by busy tiles runs hot, much hotter than an idle tile
// in an idle corner.
func TestGridNeighborHeating(t *testing.T) {
	g := newGrid(t)
	// 2×4 grid: tile 1 (row 0, col 1) idle, neighbours 0, 2, 5 busy.
	for _, busy := range []int{0, 2, 5} {
		if err := g.SetPower(busy, 10); err != nil {
			t.Fatal(err)
		}
	}
	temps := g.SteadyState(0.001, 10000)
	idleSurrounded := float64(temps[1])
	idleCorner := float64(temps[7]) // far corner, no powered neighbour
	if idleSurrounded <= idleCorner+5 {
		t.Errorf("neighbour heating weak: surrounded idle %v vs corner idle %v",
			temps[1], temps[7])
	}
	// The surrounded sleeper should sit meaningfully above ambient —
	// the free "recovery oven".
	if idleSurrounded < 55 {
		t.Errorf("surrounded idle tile only %v", temps[1])
	}
}

func TestGridCoolsBackToAmbient(t *testing.T) {
	g := newGrid(t)
	g.SetPower(3, 10)
	g.SteadyState(0.001, 10000)
	g.SetPower(3, 0)
	temps := g.SteadyState(0.0001, 100000)
	for i, tc := range temps {
		if math.Abs(float64(tc)-45) > 0.5 {
			t.Errorf("tile %d stuck at %v after power-off", i, tc)
		}
	}
}

func TestGridEnergyMonotonicity(t *testing.T) {
	// More power never lowers any tile's steady-state temperature.
	a := newGrid(t)
	b := newGrid(t)
	a.SetPower(0, 5)
	b.SetPower(0, 10)
	ta := a.SteadyState(0.001, 10000)
	tb := b.SteadyState(0.001, 10000)
	for i := range ta {
		if tb[i] < ta[i] {
			t.Errorf("tile %d cooler at higher power: %v < %v", i, tb[i], ta[i])
		}
	}
}

func TestGridStepStability(t *testing.T) {
	// A huge step must not oscillate or blow up thanks to sub-stepping.
	g := newGrid(t)
	g.SetPower(0, 10)
	g.Step(1000)
	for i := 0; i < g.Tiles(); i++ {
		tc, _ := g.Temperature(i)
		if math.IsNaN(float64(tc)) || tc < 40 || tc > 200 {
			t.Fatalf("unstable integration: tile %d at %v", i, tc)
		}
	}
}

func TestGridPanicsOnNegativeStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	newGrid(t).Step(-1)
}

func BenchmarkGridStep(b *testing.B) {
	g, err := NewGrid(DefaultGridParams())
	if err != nil {
		b.Fatal(err)
	}
	g.SetPower(0, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Step(1)
	}
}
