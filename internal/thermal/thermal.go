// Package thermal provides the two temperature models the reproduction
// needs: the laboratory thermal chamber of the paper's accelerated
// tests (Section 4.3 — setpoints of 100/110 °C, fluctuation of ±0.3 °C,
// finite ramp rate), and an on-chip lumped-RC floorplan model used by
// the multi-core exploration (Section 6.2 — active cores acting as
// "on-chip heaters" for sleeping neighbours).
package thermal

import (
	"errors"
	"fmt"
	"math"

	"selfheal/internal/rng"
	"selfheal/internal/units"
)

// ChamberParams configures a laboratory thermal chamber.
type ChamberParams struct {
	// FluctuationC is the peak temperature fluctuation around the
	// setpoint in °C (the paper's chamber holds ±0.3 °C).
	FluctuationC float64
	// RampCPerMin is the heating/cooling slew rate in °C per minute.
	RampCPerMin float64
	// MinC and MaxC bound the reachable setpoints.
	MinC, MaxC units.Celsius
}

// DefaultChamberParams matches the paper's setup: ±0.3 °C stability and
// a chamber able to span −40 °C (the part's rated minimum) up to 150 °C
// (well above the 110 °C accelerated setpoint, below destruction).
func DefaultChamberParams() ChamberParams {
	return ChamberParams{
		FluctuationC: 0.3,
		RampCPerMin:  5,
		MinC:         -40,
		MaxC:         150,
	}
}

// Validate reports whether the chamber parameters are usable.
func (p ChamberParams) Validate() error {
	switch {
	case p.FluctuationC < 0:
		return errors.New("thermal: fluctuation must be non-negative")
	case p.RampCPerMin <= 0:
		return errors.New("thermal: ramp rate must be positive")
	case p.MaxC <= p.MinC:
		return errors.New("thermal: MaxC must exceed MinC")
	}
	return nil
}

// Chamber is a thermal chamber holding a device under test.
type Chamber struct {
	params   ChamberParams
	setpoint units.Celsius
	current  units.Celsius
	src      *rng.Source
}

// NewChamber returns a chamber idling at 20 °C ambient.
func NewChamber(p ChamberParams, src *rng.Source) (*Chamber, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Chamber{params: p, setpoint: 20, current: 20, src: src}, nil
}

// SetTarget programs a new setpoint. It returns an error if the target
// is outside the chamber's range; the chamber then keeps its previous
// setpoint.
func (c *Chamber) SetTarget(t units.Celsius) error {
	if t < c.params.MinC || t > c.params.MaxC {
		return fmt.Errorf("thermal: setpoint %v outside chamber range [%v, %v]",
			t, c.params.MinC, c.params.MaxC)
	}
	c.setpoint = t
	return nil
}

// Target returns the programmed setpoint.
func (c *Chamber) Target() units.Celsius { return c.setpoint }

// Step advances the chamber by dt: it slews toward the setpoint at the
// ramp rate and, once settled, wobbles within the fluctuation band.
// It returns the new plate temperature.
func (c *Chamber) Step(dt units.Seconds) units.Celsius {
	if dt < 0 {
		panic("thermal: negative chamber step")
	}
	maxMove := units.Celsius(c.params.RampCPerMin * dt.Hours() * 60)
	diff := c.setpoint - c.current
	switch {
	case diff > maxMove:
		c.current += maxMove
	case diff < -maxMove:
		c.current -= maxMove
	default:
		f := c.params.FluctuationC
		c.current = c.setpoint + units.Celsius(c.src.Uniform(-f, f))
	}
	return c.current
}

// Temperature returns the present plate temperature.
func (c *Chamber) Temperature() units.Celsius { return c.current }

// Settled reports whether the chamber is within the fluctuation band of
// its setpoint (plus a microkelvin guard for float comparisons).
func (c *Chamber) Settled() bool {
	return math.Abs(float64(c.current-c.setpoint)) <= c.params.FluctuationC+1e-6
}

// SettleTime returns how long the chamber needs to ramp from its
// current temperature to the setpoint.
func (c *Chamber) SettleTime() units.Seconds {
	diff := math.Abs(float64(c.setpoint - c.current))
	return units.Seconds(diff / c.params.RampCPerMin * 60)
}

// GridParams configures the on-chip lumped-RC thermal model: a grid of
// tiles (cores), each with a heat capacity, a conductance to its
// neighbours, and a conductance to ambient through the package.
type GridParams struct {
	Rows, Cols int
	AmbientC   units.Celsius
	// CapJPerC is each tile's heat capacity in joules per °C.
	CapJPerC float64
	// GNeighborWPerC is the lateral thermal conductance between
	// adjacent tiles in watts per °C.
	GNeighborWPerC float64
	// GAmbientWPerC is each tile's conductance to ambient (heat
	// spreader + package) in watts per °C.
	GAmbientWPerC float64
}

// DefaultGridParams returns constants for a 2×4 eight-core floorplan
// (the paper's Fig. 10) with time constants of a few seconds and a
// steady-state self-heating of roughly 40 °C at a 10 W core power —
// representative of a commercial multi-core part.
func DefaultGridParams() GridParams {
	return GridParams{
		Rows:           2,
		Cols:           4,
		AmbientC:       45, // inside-case ambient
		CapJPerC:       20,
		GNeighborWPerC: 0.10,
		GAmbientWPerC:  0.15,
	}
}

// Validate reports whether the grid parameters are usable.
func (p GridParams) Validate() error {
	switch {
	case p.Rows <= 0 || p.Cols <= 0:
		return errors.New("thermal: grid dimensions must be positive")
	case p.CapJPerC <= 0:
		return errors.New("thermal: heat capacity must be positive")
	case p.GNeighborWPerC < 0 || p.GAmbientWPerC <= 0:
		return errors.New("thermal: conductances must be positive (lateral may be zero)")
	}
	return nil
}

// Grid is the lumped-RC floorplan simulator. Tiles are indexed
// row-major.
type Grid struct {
	params GridParams
	tempC  []float64 // per tile
	powerW []float64 // per tile, set by the scheduler
}

// NewGrid returns a grid settled at ambient with zero power everywhere.
func NewGrid(p GridParams) (*Grid, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.Rows * p.Cols
	g := &Grid{params: p, tempC: make([]float64, n), powerW: make([]float64, n)}
	for i := range g.tempC {
		g.tempC[i] = float64(p.AmbientC)
	}
	return g, nil
}

// Tiles returns the number of tiles.
func (g *Grid) Tiles() int { return len(g.tempC) }

// SetPower programs tile i's dissipation in watts.
func (g *Grid) SetPower(i int, watts float64) error {
	if i < 0 || i >= len(g.powerW) {
		return fmt.Errorf("thermal: tile %d out of range", i)
	}
	if watts < 0 {
		return fmt.Errorf("thermal: negative power %v", watts)
	}
	g.powerW[i] = watts
	return nil
}

// Temperature returns tile i's temperature.
func (g *Grid) Temperature(i int) (units.Celsius, error) {
	if i < 0 || i >= len(g.tempC) {
		return 0, fmt.Errorf("thermal: tile %d out of range", i)
	}
	return units.Celsius(g.tempC[i]), nil
}

// Temperatures returns a copy of all tile temperatures.
func (g *Grid) Temperatures() []units.Celsius {
	out := make([]units.Celsius, len(g.tempC))
	for i, t := range g.tempC {
		out[i] = units.Celsius(t)
	}
	return out
}

// neighbors calls f with each in-grid neighbor of tile i.
func (g *Grid) neighbors(i int, f func(j int)) {
	r, c := i/g.params.Cols, i%g.params.Cols
	if r > 0 {
		f(i - g.params.Cols)
	}
	if r < g.params.Rows-1 {
		f(i + g.params.Cols)
	}
	if c > 0 {
		f(i - 1)
	}
	if c < g.params.Cols-1 {
		f(i + 1)
	}
}

// maxStableStep is the largest explicit-Euler step that keeps the
// integration stable: dt < C / Gtotal with a 2× safety margin.
func (g *Grid) maxStableStep() float64 {
	gTot := g.params.GAmbientWPerC + 4*g.params.GNeighborWPerC
	return g.params.CapJPerC / gTot / 2
}

// Step advances the grid by dt using sub-stepped explicit Euler
// integration of C·dT/dt = P + ΣG·(Tj−Ti) + Ga·(Tamb−Ti).
func (g *Grid) Step(dt units.Seconds) {
	if dt < 0 {
		panic("thermal: negative grid step")
	}
	remaining := float64(dt)
	maxStep := g.maxStableStep()
	next := make([]float64, len(g.tempC))
	for remaining > 0 {
		h := math.Min(remaining, maxStep)
		remaining -= h
		for i, ti := range g.tempC {
			flux := g.powerW[i] + g.params.GAmbientWPerC*(float64(g.params.AmbientC)-ti)
			g.neighbors(i, func(j int) {
				flux += g.params.GNeighborWPerC * (g.tempC[j] - ti)
			})
			next[i] = ti + h*flux/g.params.CapJPerC
		}
		copy(g.tempC, next)
	}
}

// SteadyState iterates until the largest per-tile change over one
// second falls below epsC (or maxIter seconds pass) and returns the
// settled temperatures.
func (g *Grid) SteadyState(epsC float64, maxIter int) []units.Celsius {
	for iter := 0; iter < maxIter; iter++ {
		before := append([]float64(nil), g.tempC...)
		g.Step(1)
		worst := 0.0
		for i := range before {
			worst = math.Max(worst, math.Abs(g.tempC[i]-before[i]))
		}
		if worst < epsC {
			break
		}
	}
	return g.Temperatures()
}
