// Package sram applies accelerated self-healing to the system the
// paper's ref [14] (Shin et al., ISCA'08) targets: cache SRAM. A 6T
// cell's two PMOS pull-ups age asymmetrically under NBTI — whichever
// side holds a '0' at its gate is stressed — so data that sits still
// (real cache contents are heavily biased) skews the cell and erodes
// its static noise margin (SNM), the classic SRAM aging failure mode.
//
// The package models the cell-level asymmetric aging, a cache way as an
// array of cells holding (biased) data, and three maintenance policies:
//
//   - None: data sits as written; the baseline.
//   - BitFlip: periodically invert stored contents so both pull-ups
//     share the stress (the symmetrization idea of ref [14]) —
//     *passive* balancing, no healing.
//   - ProactiveRecovery: rotate one way at a time onto a gated island
//     under accelerated recovery conditions (the paper's contribution
//     transplanted to SRAM), needing one spare way of redundancy.
//
// Metrics follow the SRAM literature: the array's worst-cell SNM, which
// must stay above a functional threshold over the service life.
package sram

import (
	"errors"
	"fmt"
	"math"

	"selfheal/internal/rng"
	"selfheal/internal/td"
	"selfheal/internal/units"
)

// CellParams holds the 6T-cell electrical constants.
type CellParams struct {
	TD td.Params
	// Vdd is the array supply during operation.
	Vdd units.Volt
	// SNM0MV is the fresh static noise margin in millivolts.
	SNM0MV float64
	// AsymMVPerV and CommonMVPerV convert the pull-up ΔVth asymmetry
	// and common mode (in volts) into SNM loss (in millivolts):
	// asymmetry is the dominant term.
	AsymMVPerV, CommonMVPerV float64
	// MinSNMMV is the functional limit: below it reads become
	// unreliable.
	MinSNMMV float64
}

// DefaultCellParams returns 40 nm-class constants: a 300 mV fresh SNM,
// a 220 mV functional floor, and the literature's strong sensitivity to
// pull-up asymmetry.
func DefaultCellParams() CellParams {
	return CellParams{
		TD:           td.DefaultParams(),
		Vdd:          1.2,
		SNM0MV:       300,
		AsymMVPerV:   800,
		CommonMVPerV: 300,
		MinSNMMV:     220,
	}
}

// Validate reports whether the parameters are usable.
func (p CellParams) Validate() error {
	switch {
	case p.Vdd <= 0:
		return errors.New("sram: Vdd must be positive")
	case p.SNM0MV <= 0:
		return errors.New("sram: fresh SNM must be positive")
	case p.AsymMVPerV < 0 || p.CommonMVPerV < 0:
		return errors.New("sram: SNM sensitivities must be non-negative")
	case p.MinSNMMV < 0 || p.MinSNMMV >= p.SNM0MV:
		return errors.New("sram: MinSNMMV must be in [0, SNM0)")
	}
	return p.TD.Validate()
}

// Cell is one 6T bit cell: the two PMOS pull-ups carry the
// NBTI-relevant aging state (the NMOS PBTI contribution is folded into
// the calibrated sensitivities).
type Cell struct {
	// pl ages while the cell stores 1 (left pull-up gate low);
	// pr ages while it stores 0.
	pl, pr td.State
	value  bool
}

// Store writes a value into the cell.
func (c *Cell) Store(v bool) { c.value = v }

// Value returns the stored bit.
func (c *Cell) Value() bool { return c.value }

// Flip inverts the stored bit (data remains recoverable by the
// controller's flip flag — standard practice in ref [14]).
func (c *Cell) Flip() { c.value = !c.value }

// StoreBalancing stores the polarity that puts the *less worn* pull-up
// under stress — wear-aware restore. After a deep heal, re-stress
// refills the stressed side quickly (the TD fast component), so letting
// the controller pick the polarity turns that refill into a
// symmetrizing force instead of an asymmetry spike.
func (c *Cell) StoreBalancing() { c.value = c.pl.Vth() <= c.pr.Vth() }

// Stress ages the cell for dt while powered at temperature t: the
// pull-up opposite the stored value's low node is under DC NBTI
// stress, the other recovers passively.
func (c *Cell) Stress(p CellParams, t units.Kelvin, dt units.Seconds) {
	sc := td.StressCond{V: p.Vdd, T: t, Duty: 1}
	rc := td.RecoveryCond{VRev: 0, T: t}
	if c.value {
		c.pl.Stress(p.TD, sc, dt)
		if c.pr.Vth() > 0 {
			c.pr.Recover(p.TD, rc, dt)
		}
	} else {
		c.pr.Stress(p.TD, sc, dt)
		if c.pl.Vth() > 0 {
			c.pl.Recover(p.TD, rc, dt)
		}
	}
}

// Recover heals both pull-ups for dt under the sleep condition (the
// way is power-islanded; contents are lost and must be refetched —
// acceptable for a clean cache way).
func (c *Cell) Recover(p CellParams, cond td.RecoveryCond, dt units.Seconds) {
	c.pl.Recover(p.TD, cond, dt)
	c.pr.Recover(p.TD, cond, dt)
}

// SNMMV returns the cell's present static noise margin in millivolts.
func (c *Cell) SNMMV(p CellParams) float64 {
	vl, vr := c.pl.Vth(), c.pr.Vth()
	asym := math.Abs(vl - vr)
	common := (vl + vr) / 2
	return p.SNM0MV - p.AsymMVPerV*asym - p.CommonMVPerV*common
}

// Functional reports whether the cell still meets the SNM floor.
func (c *Cell) Functional(p CellParams) bool { return c.SNMMV(p) >= p.MinSNMMV }

// Policy selects the maintenance strategy for a cache array.
type Policy uint8

// The maintenance policies. BitFlip attacks the *asymmetry* term of the
// SNM loss (it balances which pull-up is stressed but heals nothing);
// ProactiveRecovery attacks the *common-mode* term (it heals both
// pull-ups but biased data re-skews the same side between rotations);
// FlipAndRecover combines them — the two mechanisms are orthogonal.
const (
	None Policy = iota
	BitFlip
	ProactiveRecovery
	FlipAndRecover
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case BitFlip:
		return "bit-flip"
	case ProactiveRecovery:
		return "proactive-recovery"
	case FlipAndRecover:
		return "flip+recover"
	default:
		return "none"
	}
}

// ArrayParams configures a cache array simulation.
type ArrayParams struct {
	Cell CellParams
	// Ways and CellsPerWay shape the array. ProactiveRecovery keeps
	// one way offline at any time, so delivered capacity is Ways−1;
	// the other policies use all ways (capacity comparisons in the
	// artifact normalize for this).
	Ways, CellsPerWay int
	// OneBias is the probability a stored bit is 1 — cache contents
	// are heavily skewed (zeros dominate real data).
	OneBias float64
	// ChurnPerSlot is the fraction of cells rewritten with fresh data
	// each slot (cache line replacement).
	ChurnPerSlot float64
	// TempC is the array's operating temperature.
	TempC units.Celsius
	// MaintenanceEvery is how often maintenance acts (a flip pass or a
	// way rotation).
	MaintenanceEvery units.Seconds
	// RecoveryCond is the island condition for ProactiveRecovery.
	RecoveryTempC units.Celsius
	RecoveryVRev  units.Volt
}

// DefaultArrayParams returns an 8-way, 512-cells-per-way array holding
// zero-skewed data at a hot 85 °C, with daily maintenance and the
// paper's accelerated island condition.
func DefaultArrayParams() ArrayParams {
	return ArrayParams{
		Cell:             DefaultCellParams(),
		Ways:             8,
		CellsPerWay:      512,
		OneBias:          0.25,
		ChurnPerSlot:     0.02,
		TempC:            85,
		MaintenanceEvery: units.Day,
		RecoveryTempC:    110,
		RecoveryVRev:     0.3,
	}
}

// Validate reports whether the array parameters are usable.
func (p ArrayParams) Validate() error {
	switch {
	case p.Ways < 2 || p.CellsPerWay <= 0:
		return errors.New("sram: need at least 2 ways and 1 cell per way")
	case p.OneBias < 0 || p.OneBias > 1:
		return errors.New("sram: OneBias must be in [0,1]")
	case p.ChurnPerSlot < 0 || p.ChurnPerSlot > 1:
		return errors.New("sram: ChurnPerSlot must be in [0,1]")
	case p.MaintenanceEvery <= 0:
		return errors.New("sram: maintenance period must be positive")
	case p.RecoveryVRev < 0:
		return errors.New("sram: recovery reverse bias must be non-negative")
	}
	return p.Cell.Validate()
}

// Array is a cache data array under one maintenance policy.
type Array struct {
	params  ArrayParams
	policy  Policy
	ways    [][]Cell
	offline int // way index under recovery (ProactiveRecovery), else −1
	src     *rng.Source
	elapsed units.Seconds
	sinceMx units.Seconds
}

// NewArray builds the array with freshly drawn biased contents.
func NewArray(p ArrayParams, policy Policy, src *rng.Source) (*Array, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	a := &Array{params: p, policy: policy, ways: make([][]Cell, p.Ways), offline: -1, src: src}
	for w := range a.ways {
		a.ways[w] = make([]Cell, p.CellsPerWay)
		for i := range a.ways[w] {
			a.ways[w][i].Store(src.Bernoulli(p.OneBias))
		}
	}
	if policy == ProactiveRecovery || policy == FlipAndRecover {
		a.offline = 0
	}
	return a, nil
}

// Policy returns the maintenance policy.
func (a *Array) Policy() Policy { return a.policy }

// Elapsed returns the simulated time.
func (a *Array) Elapsed() units.Seconds { return a.elapsed }

// OfflineWay returns the way currently under recovery, or −1.
func (a *Array) OfflineWay() int { return a.offline }

// Step advances the array by dt: online ways hold and churn data under
// stress; the offline way (if any) heals; maintenance fires on its
// period.
func (a *Array) Step(dt units.Seconds) {
	if dt <= 0 {
		return
	}
	hot := a.params.TempC.Kelvin()
	island := td.RecoveryCond{VRev: a.params.RecoveryVRev, T: a.params.RecoveryTempC.Kelvin()}
	for w := range a.ways {
		if w == a.offline {
			for i := range a.ways[w] {
				a.ways[w][i].Recover(a.params.Cell, island, dt)
			}
			continue
		}
		for i := range a.ways[w] {
			cell := &a.ways[w][i]
			if a.src.Bernoulli(a.params.ChurnPerSlot) {
				cell.Store(a.src.Bernoulli(a.params.OneBias))
			}
			cell.Stress(a.params.Cell, hot, dt)
		}
	}
	a.elapsed += dt
	a.sinceMx += dt
	if a.sinceMx >= a.params.MaintenanceEvery {
		a.sinceMx = 0
		a.maintain()
	}
}

// maintain performs one maintenance action per the policy.
func (a *Array) maintain() {
	if a.policy == BitFlip || a.policy == FlipAndRecover {
		// The flip flag is controller metadata, so it advances for
		// offline ways too — their image alternates on restore, which
		// keeps every cell's stress alternation strictly periodic (a
		// bounded asymmetry, not a random walk).
		for w := range a.ways {
			for i := range a.ways[w] {
				a.ways[w][i].Flip()
			}
		}
	}
	if a.policy == ProactiveRecovery || a.policy == FlipAndRecover {
		// Bring the healed way back online and take the next one
		// offline. Without flipping, the restored way is refilled with
		// fresh (biased) data; with flipping, the controller restores
		// each cell at the wear-balancing polarity (it owns the flip
		// flag, so the logical data is unchanged).
		next := (a.offline + 1) % a.params.Ways
		for i := range a.ways[next] {
			if a.policy == ProactiveRecovery {
				a.ways[next][i].Store(a.src.Bernoulli(a.params.OneBias))
			} else {
				a.ways[next][i].StoreBalancing()
			}
		}
		a.offline = next
	}
}

// MinSNMMV returns the worst cell's SNM across all ways — the array's
// functional margin.
func (a *Array) MinSNMMV() float64 {
	worst := math.Inf(1)
	for w := range a.ways {
		for i := range a.ways[w] {
			worst = math.Min(worst, a.ways[w][i].SNMMV(a.params.Cell))
		}
	}
	return worst
}

// MeanSNMMV returns the array-average SNM.
func (a *Array) MeanSNMMV() float64 {
	sum, n := 0.0, 0
	for w := range a.ways {
		for i := range a.ways[w] {
			sum += a.ways[w][i].SNMMV(a.params.Cell)
			n++
		}
	}
	return sum / float64(n)
}

// FailingCells counts cells below the SNM floor.
func (a *Array) FailingCells() int {
	n := 0
	for w := range a.ways {
		for i := range a.ways[w] {
			if !a.ways[w][i].Functional(a.params.Cell) {
				n++
			}
		}
	}
	return n
}

// Outcome summarizes a simulated service interval.
type Outcome struct {
	Policy       string
	Days         float64
	MinSNMMV     float64
	MeanSNMMV    float64
	FailingCells int
	// MarginConsumedPct is the share of the SNM guard band
	// (SNM0 − floor) eaten by the worst cell.
	MarginConsumedPct float64
}

// Simulate runs the array for the given number of days in the given
// slot length and returns the outcome.
func Simulate(p ArrayParams, policy Policy, days float64, slot units.Seconds, seed uint64) (Outcome, error) {
	if days <= 0 || slot <= 0 {
		return Outcome{}, errors.New("sram: days and slot must be positive")
	}
	a, err := NewArray(p, policy, rng.New(seed))
	if err != nil {
		return Outcome{}, err
	}
	horizon := units.Seconds(days) * units.Day
	for t := units.Seconds(0); t < horizon-1e-9; t += slot {
		a.Step(slot)
	}
	min := a.MinSNMMV()
	band := p.Cell.SNM0MV - p.Cell.MinSNMMV
	return Outcome{
		Policy:            policy.String(),
		Days:              days,
		MinSNMMV:          min,
		MeanSNMMV:         a.MeanSNMMV(),
		FailingCells:      a.FailingCells(),
		MarginConsumedPct: (p.Cell.SNM0MV - min) / band * 100,
	}, nil
}

// Compare simulates all four policies on identically seeded arrays.
func Compare(p ArrayParams, days float64, slot units.Seconds, seed uint64) ([]Outcome, error) {
	policies := []Policy{None, BitFlip, ProactiveRecovery, FlipAndRecover}
	outs := make([]Outcome, len(policies))
	for i, pol := range policies {
		o, err := Simulate(p, pol, days, slot, seed)
		if err != nil {
			return nil, fmt.Errorf("sram: %s: %w", pol, err)
		}
		outs[i] = o
	}
	return outs, nil
}
