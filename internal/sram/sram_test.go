package sram

import (
	"math"
	"testing"

	"selfheal/internal/rng"
	"selfheal/internal/td"
	"selfheal/internal/units"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultCellParams().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultArrayParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCellParamsValidation(t *testing.T) {
	mods := []func(*CellParams){
		func(p *CellParams) { p.Vdd = 0 },
		func(p *CellParams) { p.SNM0MV = 0 },
		func(p *CellParams) { p.AsymMVPerV = -1 },
		func(p *CellParams) { p.CommonMVPerV = -1 },
		func(p *CellParams) { p.MinSNMMV = p.SNM0MV },
		func(p *CellParams) { p.MinSNMMV = -1 },
		func(p *CellParams) { p.TD.K1 = 0 },
	}
	for i, mod := range mods {
		p := DefaultCellParams()
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("cell mutation %d not rejected", i)
		}
	}
}

func TestArrayParamsValidation(t *testing.T) {
	mods := []func(*ArrayParams){
		func(p *ArrayParams) { p.Ways = 1 },
		func(p *ArrayParams) { p.CellsPerWay = 0 },
		func(p *ArrayParams) { p.OneBias = 1.5 },
		func(p *ArrayParams) { p.ChurnPerSlot = -0.1 },
		func(p *ArrayParams) { p.MaintenanceEvery = 0 },
		func(p *ArrayParams) { p.RecoveryVRev = -0.3 },
	}
	for i, mod := range mods {
		p := DefaultArrayParams()
		mod(&p)
		if _, err := NewArray(p, None, rng.New(1)); err == nil {
			t.Errorf("array mutation %d not rejected", i)
		}
	}
}

func TestFreshCellSNM(t *testing.T) {
	p := DefaultCellParams()
	var c Cell
	if got := c.SNMMV(p); got != p.SNM0MV {
		t.Errorf("fresh SNM = %v, want %v", got, p.SNM0MV)
	}
	if !c.Functional(p) {
		t.Error("fresh cell not functional")
	}
}

// TestStaticDataSkewsCell is the NBTI-SRAM failure mode: a cell holding
// the same value continuously develops pull-up asymmetry and loses SNM.
func TestStaticDataSkewsCell(t *testing.T) {
	p := DefaultCellParams()
	var c Cell
	c.Store(true)
	hot := units.Celsius(85).Kelvin()
	for i := 0; i < 30; i++ {
		c.Stress(p, hot, units.Day)
	}
	if got := c.SNMMV(p); got >= p.SNM0MV {
		t.Errorf("static cell did not lose SNM: %v", got)
	}
}

// TestFlippedDataBalances: alternating the stored value daily splits
// the stress across both pull-ups, so asymmetry (the dominant SNM
// killer) stays small relative to a static cell.
func TestFlippedDataBalances(t *testing.T) {
	p := DefaultCellParams()
	hot := units.Celsius(85).Kelvin()
	var static, flipped Cell
	static.Store(true)
	flipped.Store(true)
	for d := 0; d < 30; d++ {
		static.Stress(p, hot, units.Day)
		flipped.Stress(p, hot, units.Day)
		flipped.Flip()
	}
	if flipped.SNMMV(p) <= static.SNMMV(p) {
		t.Errorf("flipping did not help: flipped %v vs static %v",
			flipped.SNMMV(p), static.SNMMV(p))
	}
}

// TestRecoveryRestoresSNM: an accelerated island heals a skewed cell.
func TestRecoveryRestoresSNM(t *testing.T) {
	p := DefaultCellParams()
	var c Cell
	c.Store(true)
	hot := units.Celsius(85).Kelvin()
	for i := 0; i < 10; i++ {
		c.Stress(p, hot, units.Day)
	}
	before := c.SNMMV(p)
	c.Recover(p, td.RecoveryCond{VRev: 0.3, T: units.Celsius(110).Kelvin()}, 12*units.Hour)
	after := c.SNMMV(p)
	if after <= before {
		t.Errorf("recovery did not restore SNM: %v -> %v", before, after)
	}
	if after > p.SNM0MV {
		t.Errorf("SNM above fresh: %v", after)
	}
}

func TestPolicyString(t *testing.T) {
	if None.String() != "none" || BitFlip.String() != "bit-flip" ||
		ProactiveRecovery.String() != "proactive-recovery" {
		t.Error("policy names wrong")
	}
}

func TestArrayConstruction(t *testing.T) {
	p := DefaultArrayParams()
	p.Ways, p.CellsPerWay = 4, 64
	a, err := NewArray(p, ProactiveRecovery, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.OfflineWay() != 0 {
		t.Errorf("initial offline way = %d", a.OfflineWay())
	}
	b, err := NewArray(p, None, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if b.OfflineWay() != -1 {
		t.Errorf("None policy offline way = %d", b.OfflineWay())
	}
	if a.MinSNMMV() != p.Cell.SNM0MV {
		t.Errorf("fresh array min SNM = %v", a.MinSNMMV())
	}
}

func TestWayRotation(t *testing.T) {
	p := DefaultArrayParams()
	p.Ways, p.CellsPerWay = 4, 16
	p.MaintenanceEvery = units.Day
	a, err := NewArray(p, ProactiveRecovery, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{a.OfflineWay(): true}
	for d := 0; d < 4; d++ {
		a.Step(units.Day)
		seen[a.OfflineWay()] = true
	}
	if len(seen) != 4 {
		t.Errorf("rotation covered %d of 4 ways", len(seen))
	}
}

func TestStepZeroNoOp(t *testing.T) {
	p := DefaultArrayParams()
	p.Ways, p.CellsPerWay = 2, 8
	a, err := NewArray(p, None, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	a.Step(0)
	if a.Elapsed() != 0 || a.MinSNMMV() != p.Cell.SNM0MV {
		t.Error("zero step changed state")
	}
}

// TestPolicyComparison pins what the model robustly shows across seeds
// and horizons:
//
//   - every maintenance policy beats doing nothing on the worst cell;
//   - the combined policy has the best *average* SNM (it is the only
//     one that both balances asymmetry and heals the common mode);
//   - the combined policy beats recovery-alone on the worst cell
//     (biased data re-skews unbalanced arrays between rotations);
//   - bit-flip holds the tightest worst case at these horizons: the
//     deep heal's re-stress refills one pull-up quickly (the TD fast
//     component), so recently returned ways carry a transient skew —
//     a genuine cost of combining healing with day-granular flipping.
func TestPolicyComparison(t *testing.T) {
	p := DefaultArrayParams()
	p.Ways, p.CellsPerWay = 4, 64 // keep the test fast
	outs, err := Compare(p, 30, 6*units.Hour, 5)
	if err != nil {
		t.Fatal(err)
	}
	none, flip, pro, both := outs[0], outs[1], outs[2], outs[3]
	for _, o := range []Outcome{flip, pro, both} {
		if o.MinSNMMV <= none.MinSNMMV {
			t.Errorf("%s min (%v) not above none (%v)", o.Policy, o.MinSNMMV, none.MinSNMMV)
		}
	}
	if both.MeanSNMMV <= flip.MeanSNMMV || both.MeanSNMMV <= pro.MeanSNMMV {
		t.Errorf("combined mean (%v) not the best: flip %v, proactive %v",
			both.MeanSNMMV, flip.MeanSNMMV, pro.MeanSNMMV)
	}
	if both.MinSNMMV <= pro.MinSNMMV {
		t.Errorf("combined min (%v) not above recovery-alone (%v)", both.MinSNMMV, pro.MinSNMMV)
	}
	// The refill-transient cost: combined trails flip's worst case,
	// but only by a bounded few millivolts.
	if gap := flip.MinSNMMV - both.MinSNMMV; gap < 0 || gap > 5 {
		t.Errorf("flip-vs-combined worst-case gap = %v mV, expected 0..5", gap)
	}
	if none.MarginConsumedPct <= both.MarginConsumedPct {
		t.Error("margin accounting inverted")
	}
	for _, o := range outs {
		if o.MeanSNMMV < o.MinSNMMV {
			t.Errorf("%s: mean below min", o.Policy)
		}
		if o.MinSNMMV > p.Cell.SNM0MV {
			t.Errorf("%s: SNM above fresh", o.Policy)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	p := DefaultArrayParams()
	if _, err := Simulate(p, None, 0, units.Hour, 1); err == nil {
		t.Error("zero days accepted")
	}
	if _, err := Simulate(p, None, 1, 0, 1); err == nil {
		t.Error("zero slot accepted")
	}
	bad := p
	bad.Ways = 0
	if _, err := Simulate(bad, None, 1, units.Hour, 1); err == nil {
		t.Error("bad params accepted")
	}
}

func TestDeterministicReplay(t *testing.T) {
	p := DefaultArrayParams()
	p.Ways, p.CellsPerWay = 2, 32
	a, err := Simulate(p, BitFlip, 10, 6*units.Hour, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(p, BitFlip, 10, 6*units.Hour, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.MinSNMMV != b.MinSNMMV || a.MeanSNMMV != b.MeanSNMMV {
		t.Error("replay differs")
	}
}

func TestSNMSymmetryProperty(t *testing.T) {
	// Cells stressed on opposite values for equal times have equal SNM.
	p := DefaultCellParams()
	hot := units.Celsius(85).Kelvin()
	var one, zero Cell
	one.Store(true)
	zero.Store(false)
	for i := 0; i < 10; i++ {
		one.Stress(p, hot, units.Day)
		zero.Stress(p, hot, units.Day)
	}
	if math.Abs(one.SNMMV(p)-zero.SNMMV(p)) > 1e-9 {
		t.Errorf("value symmetry broken: %v vs %v", one.SNMMV(p), zero.SNMMV(p))
	}
}

func BenchmarkArrayStepDay(b *testing.B) {
	p := DefaultArrayParams()
	a, err := NewArray(p, ProactiveRecovery, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Step(units.Day)
	}
}
