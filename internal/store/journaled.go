package store

import (
	"context"

	"selfheal/internal/journal"
)

// journaled decorates any Store with durability through a Log: the map
// operations delegate to the inner store untouched, while Commit
// blocks until the record is durable. Because the fleet layer commits
// while holding the affected chip's lock, the log's record order
// always matches the application order per chip — and because the Log
// group-commits, concurrent commits (a batch request's worker pool,
// independent API calls) share fsyncs instead of paying one each.
type journaled[E any] struct {
	Store[E] // the wrapped table; map operations pass through
	log      Log
}

// NewJournaled wraps inner with durable commits through log. The
// returned store owns the log: Close closes both.
func NewJournaled[E any](inner Store[E], log Log) Store[E] {
	return &journaled[E]{Store: inner, log: log}
}

// Commit appends rec to the log, returning once it is durable.
func (s *journaled[E]) Commit(ctx context.Context, rec Record) error {
	return s.log.Append(ctx, rec)
}

// Replay returns the log's live history in sequence order.
func (s *journaled[E]) Replay() []Record { return s.log.Records() }

// Probe rechecks whether the log can write durably again.
func (s *journaled[E]) Probe() error { return s.log.Probe() }

// Stats reports the log's counters.
func (s *journaled[E]) Stats() (Stats, bool) { return s.log.Stats(), true }

// Durable reports true.
func (s *journaled[E]) Durable() bool { return true }

// Close closes the inner store, then the log.
func (s *journaled[E]) Close() error {
	err := s.Store.Close()
	if cerr := s.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// Open assembles the standard durable configuration: a sharded
// in-memory table wrapped with a journaling decorator over the
// operation log in dir. The repair reports from the journal open (if
// Options.Repair salvaged anything) are returned for logging.
func Open[E any](dir string, opts JournalOptions) (Store[E], []RepairReport, error) {
	jl, err := journal.Open(dir, opts)
	if err != nil {
		return nil, nil, err
	}
	return NewJournaled[E](NewMem[E](), jl), jl.Repairs(), nil
}
