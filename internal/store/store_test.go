package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// collidingIDs generates n distinct ids that all hash onto the shard
// of anchor, so concurrency tests can hammer one shard lock.
func collidingIDs(t *testing.T, anchor string, n int) []string {
	t.Helper()
	want := ShardOf(anchor)
	ids := make([]string, 0, n)
	for i := 0; len(ids) < n; i++ {
		id := fmt.Sprintf("%s-%d", anchor, i)
		if ShardOf(id) == want {
			ids = append(ids, id)
		}
		if i > 100000 {
			t.Fatalf("could not find %d colliding ids (have %d)", n, len(ids))
		}
	}
	return ids
}

func TestMemBasics(t *testing.T) {
	s := NewMem[int]()
	if !s.Insert("a", 1) {
		t.Fatal("first insert refused")
	}
	if s.Insert("a", 2) {
		t.Fatal("duplicate insert accepted")
	}
	if v, ok := s.Lookup("a"); !ok || v != 1 {
		t.Fatalf("Lookup(a) = %d, %v", v, ok)
	}
	if _, ok := s.Lookup("b"); ok {
		t.Fatal("phantom entry")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	s.Remove("a")
	if _, ok := s.Lookup("a"); ok {
		t.Fatal("entry survives Remove")
	}
	if s.Durable() {
		t.Fatal("Mem claims durability")
	}
	if s.Commit(context.Background(), Record{Op: OpCreate, ID: "a"}) != nil {
		t.Fatal("Mem.Commit errored")
	}
	if s.Replay() != nil {
		t.Fatal("Mem.Replay returned history")
	}
	if _, ok := s.Stats(); ok {
		t.Fatal("Mem reports backend stats")
	}
}

func TestMemForEachEarlyStopAndCoverage(t *testing.T) {
	s := NewMem[int]()
	for i := 0; i < 100; i++ {
		s.Insert(fmt.Sprintf("id-%d", i), i)
	}
	seen := map[string]bool{}
	s.ForEach(func(id string, v int) bool {
		seen[id] = true
		return true
	})
	if len(seen) != 100 {
		t.Fatalf("ForEach visited %d entries, want 100", len(seen))
	}
	calls := 0
	s.ForEach(func(string, int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early stop made %d calls, want 1", calls)
	}
}

// TestShardCollisionHammer asserts the lock hierarchy under the race
// detector: create/delete/lookup/iterate traffic confined to ids that
// collide onto a single shard, with ForEach visitors that grab a
// per-entry lock — the chip-lock-over-shard-lock pattern the fleet
// layer uses. Any ordering violation (visitor under a shard lock, two
// shard locks at once) deadlocks or races here.
func TestShardCollisionHammer(t *testing.T) {
	type entry struct {
		mu sync.Mutex
		n  int
	}
	s := NewMem[*entry]()
	ids := collidingIDs(t, "hammer", 8)
	for _, id := range ids {
		want := ShardOf(ids[0])
		if got := ShardOf(id); got != want {
			t.Fatalf("id %q on shard %d, want %d", id, got, want)
		}
	}

	const workers = 8
	const rounds = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := ids[w%len(ids)]
			for i := 0; i < rounds; i++ {
				switch i % 4 {
				case 0:
					s.Insert(id, &entry{})
				case 1:
					if e, ok := s.Lookup(id); ok {
						e.mu.Lock()
						e.n++
						e.mu.Unlock()
					}
				case 2:
					// Visitor takes entry locks while the store holds none —
					// the hierarchy ForEach's snapshot buys.
					s.ForEach(func(_ string, e *entry) bool {
						e.mu.Lock()
						e.n++
						e.mu.Unlock()
						return true
					})
				case 3:
					s.Remove(id)
				}
			}
		}(w)
	}
	wg.Wait()
}

// failLog satisfies Log with scripted failures, for decorator tests.
type failLog struct {
	mu      sync.Mutex
	appends []Record
	failN   int // fail the next N appends
	probeOK bool
	closed  bool
}

func (l *failLog) Append(_ context.Context, rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failN > 0 {
		l.failN--
		return errors.New("disk on fire")
	}
	l.appends = append(l.appends, rec)
	return nil
}

func (l *failLog) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.appends...)
}

func (l *failLog) Probe() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.probeOK {
		return errors.New("still on fire")
	}
	return nil
}

func (l *failLog) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Appends: uint64(len(l.appends))}
}

func (l *failLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}

func TestJournaledDecorator(t *testing.T) {
	log := &failLog{appends: []Record{{Seq: 1, Op: OpCreate, ID: "c0"}}}
	s := NewJournaled[int](NewMem[int](), log)

	if !s.Durable() {
		t.Fatal("journaled store not durable")
	}
	if got := s.Replay(); len(got) != 1 || got[0].ID != "c0" {
		t.Fatalf("Replay = %+v", got)
	}
	// Map operations pass through to the inner store.
	if !s.Insert("c0", 7) {
		t.Fatal("insert refused")
	}
	if v, ok := s.Lookup("c0"); !ok || v != 7 {
		t.Fatalf("Lookup = %d, %v", v, ok)
	}
	// Commit goes to the log — and surfaces its failures.
	if err := s.Commit(context.Background(), Record{Op: OpStress, ID: "c0"}); err != nil {
		t.Fatal(err)
	}
	log.failN = 1
	if err := s.Commit(context.Background(), Record{Op: OpStress, ID: "c0"}); err == nil {
		t.Fatal("failed append not surfaced")
	}
	if err := s.Probe(); err == nil {
		t.Fatal("failed probe not surfaced")
	}
	log.probeOK = true
	if err := s.Probe(); err != nil {
		t.Fatal(err)
	}
	if st, ok := s.Stats(); !ok || st.Appends != 2 {
		t.Fatalf("Stats = %+v, %v", st, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !log.closed {
		t.Fatal("Close did not reach the log")
	}
}

// TestOpenRoundTrip exercises the standard durable assembly: commits
// through a real journal, then a fresh Open replays them.
func TestOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, repairs, err := Open[int](dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) != 0 {
		t.Fatalf("fresh dir reported repairs: %+v", repairs)
	}
	if err := s.Commit(context.Background(), Record{Op: OpCreate, ID: "c0", Seed: 7, Kind: "bench"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(context.Background(), Record{Op: OpStress, ID: "c0", Hours: 24}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, _, err := Open[int](dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs := s2.Replay()
	if len(recs) != 2 || recs[0].Op != OpCreate || recs[1].Op != OpStress || recs[1].Hours != 24 {
		t.Fatalf("replay = %+v", recs)
	}
}
