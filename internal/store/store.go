// Package store is the fleet's persistence layer: the chip table that
// the domain layer (internal/fleet) reads and writes, behind a small
// interface so the backend is pluggable. Two implementations ship:
//
//   - Mem, a lock-sharded in-memory table (32 shards keyed by FNV-1a
//     of the chip id), so independent chips never contend on one map
//     mutex under heavy traffic.
//   - Journaled, a decorator that wraps any Store and makes commits
//     durable through a Log (the append-only operation journal). The
//     journal stops being code threaded through the registry and
//     becomes a backend; a future replicated log or SQL history table
//     plugs in the same way, by satisfying Log or Store.
//
// # Lock hierarchy
//
// This package is the single place the fleet's lock order is defined.
// Three lock levels exist in the serving stack, and they are always
// acquired top-down:
//
//	chip lock (fleet.ChipEntry.mu)  →  shard lock (Mem)  →  nothing
//
// Shard locks are leaves: a Store implementation must never invoke
// caller code or acquire another lock while holding one. Concretely,
// ForEach snapshots a shard's entries under its read lock and releases
// it before calling the visitor, so a visitor that takes chip locks
// (Usage does) cannot invert the order. No operation ever holds two
// shard locks at once. The domain layer, for its part, may call any
// Store method while holding a chip lock — that is how the
// commit-while-chip-locked replay invariant is kept (see Commit) —
// but must never take a chip lock from inside a visitor that could
// still be under a store lock.
//
// The hierarchy is asserted by TestShardCollisionHammer (and the fleet
// package's collision test), which drive create/delete/op traffic onto
// ids that collide onto one shard under the race detector.
package store

import (
	"context"

	"selfheal/internal/journal"
)

// Record, Op and Stats are the persistence record types, re-exported
// so the layers above the store (fleet, serve) never import the
// journal package directly.
type (
	Record = journal.Record
	Op     = journal.Op
	Stats  = journal.Stats
)

// JournalOptions and RepairReport are re-exported for callers opening
// a journal-backed store (see Open).
type (
	JournalOptions = journal.Options
	RepairReport   = journal.RepairReport
)

// The journaled fleet operations, re-exported from the journal.
const (
	OpCreate     = journal.OpCreate
	OpStress     = journal.OpStress
	OpRejuvenate = journal.OpRejuvenate
	OpDelete     = journal.OpDelete
	OpMeasure    = journal.OpMeasure
	OpOdometer   = journal.OpOdometer
)

// The journaled guard operations (see internal/guard): durable per-chip
// quarantine transitions, re-exported from the journal.
const (
	OpQuarantine = journal.OpQuarantine
	OpRelease    = journal.OpRelease
)

// The journaled engine operations (see internal/engine), re-exported
// from the journal. The fleet replay skips these (IsEngineOp); the
// engine replay consumes them alongside the fleet's create/delete
// records, which double as engine membership changes.
const (
	OpEngineReg      = journal.OpEngineReg
	OpEngineRemove   = journal.OpEngineRemove
	OpEngineSet      = journal.OpEngineSet
	OpEngineSchedule = journal.OpEngineSchedule
	OpEngineEpoch    = journal.OpEngineEpoch
)

// IsEngineOp reports whether op belongs to the engine subsystem.
func IsEngineOp(op Op) bool { return journal.IsEngineOp(op) }

// Log is the durable operation history the Journaled decorator writes
// through — the interface extracted from *journal.Journal, which
// satisfies it. Any backend that can append records durably, replay
// them in order, and report on its own health can stand in for the
// file journal.
type Log interface {
	// Append makes one record durable, returning only once it would
	// survive a crash. Concurrent appends may share a group commit. The
	// context carries the request's trace (if any) so the append's
	// stage/fsync phases land in it; it does not cancel the write.
	Append(ctx context.Context, rec Record) error
	// Records returns the live history in sequence order — the replay
	// list that reconstructs the fleet.
	Records() []Record
	// Probe rechecks whether the log can write durably again after a
	// failure; nil means appends work.
	Probe() error
	// Stats snapshots the log's counters.
	Stats() Stats
	// Close releases the log.
	Close() error
}

var _ Log = (*journal.Journal)(nil)

// Store is the fleet's chip table plus its persistence seam. E is the
// entry type (the fleet layer uses *fleet.ChipEntry).
//
// The map operations (Insert, Lookup, Remove, ForEach, Len) are pure
// bookkeeping and must be safe for concurrent use. The persistence
// operations (Commit, Replay, Probe, Stats) exist so durability is a
// property of the store you assemble, not of the code calling it: an
// in-memory store answers Commit with nil and the fleet runs exactly
// as before, while a Journaled store blocks until the record is
// fsync'd.
type Store[E any] interface {
	// Insert registers e under id, reporting false when the id is
	// already taken (the entry is then not stored).
	Insert(id string, e E) bool
	// Lookup returns the entry registered under id.
	Lookup(id string) (E, bool)
	// Remove unregisters id; unknown ids are a no-op.
	Remove(id string)
	// ForEach visits every entry. The visitor runs with no store locks
	// held (entries are snapshotted per shard first), so it may take
	// per-entry locks without inverting the lock hierarchy. Returning
	// false stops the iteration early.
	ForEach(fn func(id string, e E) bool)
	// Len reports the number of registered entries.
	Len() int

	// Commit makes rec durable. The fleet layer calls it while holding
	// the affected chip's lock, so the persisted order always matches
	// the order operations were applied in — the invariant replay
	// depends on. Non-durable stores return nil immediately. The
	// context carries the request's trace for span annotation; it does
	// not cancel the commit (a half-cancelled durable write would
	// desync the journal from memory).
	Commit(ctx context.Context, rec Record) error
	// Replay returns the durable history to re-apply on startup, in
	// sequence order. Non-durable stores return nil.
	Replay() []Record
	// Probe rechecks durability during a degraded episode; nil means
	// commits work. Non-durable stores always return nil.
	Probe() error
	// Stats reports the persistence backend's counters; ok is false
	// for stores with no durable backend.
	Stats() (st Stats, ok bool)
	// Durable reports whether Commit provides crash durability.
	Durable() bool
	// Close releases the store and any backend it owns.
	Close() error
}
