package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// singleMutexMap is the registry shape the sharded Mem replaced: one
// RWMutex over one map. It exists only as the benchmark baseline.
type singleMutexMap[E any] struct {
	mu sync.RWMutex
	m  map[string]E
}

func (s *singleMutexMap[E]) Insert(id string, e E) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[id]; ok {
		return false
	}
	s.m[id] = e
	return true
}

func (s *singleMutexMap[E]) Lookup(id string) (E, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.m[id]
	return e, ok
}

func (s *singleMutexMap[E]) Remove(id string) {
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}

// BenchmarkRegistryContention compares the single-mutex registry map
// (the pre-refactor shape) against the sharded Mem under the access
// mix a busy fleet sees: mostly Lookup with a sprinkle of
// Insert/Remove churn, across a working set large enough that shards
// actually spread. The delta justifies ShardCount with numbers.
func BenchmarkRegistryContention(b *testing.B) {
	const keys = 1024
	ids := make([]string, keys)
	for i := range ids {
		ids[i] = fmt.Sprintf("chip-%04d", i)
	}

	type table interface {
		Insert(string, int) bool
		Lookup(string) (int, bool)
		Remove(string)
	}
	run := func(b *testing.B, tab table) {
		for _, id := range ids {
			tab.Insert(id, 1)
		}
		var ctr atomic.Uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			n := ctr.Add(1) * 7919 // decorrelate workers' key streams
			for pb.Next() {
				n++
				id := ids[n%keys]
				if n%10 == 0 {
					tab.Remove(id)
					tab.Insert(id, int(n))
				} else {
					tab.Lookup(id)
				}
			}
		})
	}

	b.Run("single-mutex", func(b *testing.B) {
		run(b, &singleMutexMap[int]{m: make(map[string]int)})
	})
	b.Run("sharded", func(b *testing.B) {
		run(b, NewMem[int]())
	})
}
