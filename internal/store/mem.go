package store

import (
	"context"
	"sync"
)

// ShardCount is the number of independent locks (and maps) a Mem store
// spreads the fleet over. 32 keeps per-shard contention negligible up
// to a few thousand concurrent chip operations while costing ~32 map
// headers of memory; BenchmarkRegistryContention justifies the number
// against the single-mutex map it replaced.
const ShardCount = 32

// ShardOf maps a chip id onto its shard with FNV-1a. Exported so
// tests can construct colliding ids and hammer one shard's lock.
func ShardOf(id string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return int(h % ShardCount)
}

// Mem is the lock-sharded in-memory Store: a fixed array of
// independently-locked maps. Operations on chips that hash to
// different shards never touch the same mutex, so a busy fleet scales
// with cores instead of serializing on one registry lock. Mem provides
// no durability — Commit is a no-op; wrap it with NewJournaled for a
// durable fleet.
type Mem[E any] struct {
	shards [ShardCount]memShard[E]
}

type memShard[E any] struct {
	mu sync.RWMutex
	m  map[string]E
}

// NewMem returns an empty sharded store.
func NewMem[E any]() *Mem[E] {
	s := &Mem[E]{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]E)
	}
	return s
}

func (s *Mem[E]) shard(id string) *memShard[E] { return &s.shards[ShardOf(id)] }

// Insert registers e under id, reporting false when the id is taken.
func (s *Mem[E]) Insert(id string, e E) bool {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, exists := sh.m[id]; exists {
		return false
	}
	sh.m[id] = e
	return true
}

// Lookup returns the entry registered under id.
func (s *Mem[E]) Lookup(id string) (E, bool) {
	sh := s.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.m[id]
	return e, ok
}

// Remove unregisters id.
func (s *Mem[E]) Remove(id string) {
	sh := s.shard(id)
	sh.mu.Lock()
	delete(sh.m, id)
	sh.mu.Unlock()
}

// ForEach visits every entry, shard by shard. Each shard's entries are
// snapshotted under its read lock and the visitor runs after the lock
// is released, so visitors may take per-entry locks without inverting
// the chip-lock → shard-lock hierarchy. Entries inserted or removed
// concurrently may or may not be visited.
func (s *Mem[E]) ForEach(fn func(id string, e E) bool) {
	type kv struct {
		id string
		e  E
	}
	var batch []kv
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		batch = batch[:0]
		for id, e := range sh.m {
			batch = append(batch, kv{id, e})
		}
		sh.mu.RUnlock()
		for _, it := range batch {
			if !fn(it.id, it.e) {
				return
			}
		}
	}
}

// Len reports the number of registered entries.
func (s *Mem[E]) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Commit is a no-op: a bare Mem store provides no durability.
func (s *Mem[E]) Commit(context.Context, Record) error { return nil }

// Replay returns nil: an in-memory fleet always starts empty.
func (s *Mem[E]) Replay() []Record { return nil }

// Probe reports nil: there is no backend to fail.
func (s *Mem[E]) Probe() error { return nil }

// Stats reports no backend counters.
func (s *Mem[E]) Stats() (Stats, bool) { return Stats{}, false }

// Durable reports false.
func (s *Mem[E]) Durable() bool { return false }

// Close is a no-op.
func (s *Mem[E]) Close() error { return nil }
