package tsdb

import (
	"fmt"
	"sync"
	"testing"
)

func TestAppendSelect(t *testing.T) {
	db := New(8)
	for e := uint64(1); e <= 5; e++ {
		db.AppendAt("margin_p50_v", e, float64(e)*0.1, int64(1000+e))
	}
	got := db.Select("margin_p50_v", Query{})
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5", len(got))
	}
	for i, sm := range got {
		if sm.Epoch != uint64(i+1) {
			t.Fatalf("sample %d epoch = %d (not oldest-first)", i, sm.Epoch)
		}
	}
	last, ok := db.Latest("margin_p50_v")
	if !ok || last.Epoch != 5 || last.Unix != 1005 {
		t.Fatalf("Latest = %+v, %v", last, ok)
	}
	if db.Select("nope", Query{}) != nil {
		t.Fatal("missing series should yield nil")
	}
}

func TestRingEviction(t *testing.T) {
	db := New(4)
	for e := uint64(1); e <= 10; e++ {
		db.Append("s", e, float64(e))
	}
	got := db.Select("s", Query{})
	if len(got) != 4 {
		t.Fatalf("len = %d, want capacity 4", len(got))
	}
	if got[0].Epoch != 7 || got[3].Epoch != 10 {
		t.Fatalf("kept epochs %d..%d, want 7..10", got[0].Epoch, got[3].Epoch)
	}
}

func TestQueryFilters(t *testing.T) {
	db := New(64)
	for e := uint64(0); e < 20; e++ {
		db.Append("s", e, float64(e))
	}
	since := db.Select("s", Query{SinceEpoch: 15})
	if len(since) != 5 || since[0].Epoch != 15 {
		t.Fatalf("SinceEpoch: %+v", since)
	}
	limited := db.Select("s", Query{Limit: 3})
	if len(limited) != 3 || limited[2].Epoch != 19 {
		t.Fatalf("Limit should keep the newest: %+v", limited)
	}
}

func TestDownsample(t *testing.T) {
	db := New(64)
	for e := uint64(0); e < 10; e++ {
		db.Append("s", e, float64(e))
	}
	got := db.Select("s", Query{Step: 5})
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2 buckets", len(got))
	}
	// Bucket 0 holds epochs 0..4 (mean 2), bucket 1 epochs 5..9 (mean 7);
	// each reports at its last epoch.
	if got[0].Epoch != 4 || got[0].Value != 2 {
		t.Fatalf("bucket 0 = %+v", got[0])
	}
	if got[1].Epoch != 9 || got[1].Value != 7 {
		t.Fatalf("bucket 1 = %+v", got[1])
	}
}

func TestMaxSeriesCap(t *testing.T) {
	db := New(2)
	for i := 0; i < MaxSeries+10; i++ {
		db.Append(fmt.Sprintf("s%d", i), 1, 1)
	}
	st := db.Stats()
	if st.Series != MaxSeries {
		t.Fatalf("series = %d, want cap %d", st.Series, MaxSeries)
	}
	if st.Rejected != 10 {
		t.Fatalf("rejected = %d, want 10", st.Rejected)
	}
}

func TestConcurrentAppendSelect(t *testing.T) {
	db := New(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("s%d", g%3)
			for e := uint64(0); e < 200; e++ {
				db.Append(name, e, float64(e))
				if e%10 == 0 {
					db.Select(name, Query{Step: 4, Limit: 8})
					db.Latest(name)
					db.Names()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := len(db.Names()); got != 3 {
		t.Fatalf("names = %d, want 3", got)
	}
}
