// Package tsdb is a fixed-memory, in-process time-series store for
// per-epoch fleet telemetry. Each named series is an independent ring
// buffer of (epoch, value, wall-time) samples: appending is O(1),
// memory is bounded at construction (capacity samples per series,
// MaxSeries series), and the oldest samples are overwritten in place —
// the same discipline as the obs trace ring and the guard alert ring.
//
// The store deliberately does not know what the series mean. The serve
// layer's per-epoch recorder feeds it fleet aggregates (margin
// percentiles, aging-rate distribution, quarantine counts, epoch and
// replication lag, mutation throughput); GET /v1/telemetry and the
// fleet federation endpoint read it back with optional downsampling.
//
// Lock hierarchy: DB.mu guards the series map; each series has its own
// mutex guarding its ring. DB.mu is never held while a series mutex is
// taken for reads, and no callback runs under either — tsdb locks are
// leaves, safe to use from engine OnEpoch hooks and HTTP handlers
// concurrently.
package tsdb

import (
	"sort"
	"sync"
	"time"
)

// MaxSeries bounds the number of distinct series a DB will hold, so a
// typo'd or attacker-controlled series name cannot grow memory without
// bound. Appends past the cap are counted in Stats().Rejected and
// dropped.
const MaxSeries = 256

// DefaultCapacity is the per-series ring capacity when New is given a
// non-positive one: at one sample per epoch it retains the last 512
// epochs of history.
const DefaultCapacity = 512

// Sample is one recorded point. Epoch is the engine epoch the value
// describes; Unix is the wall clock at record time (what staleness
// checks compare against).
type Sample struct {
	Epoch uint64  `json:"epoch"`
	Unix  int64   `json:"unix"`
	Value float64 `json:"value"`
}

// series is one ring buffer. n is the count of valid samples (<= cap),
// next the slot the next append overwrites.
type series struct {
	mu   sync.Mutex
	buf  []Sample
	next int
	n    int
}

// DB is a set of named ring-buffer series. All methods are safe for
// concurrent use.
type DB struct {
	capacity int

	mu       sync.RWMutex
	series   map[string]*series
	rejected uint64
}

// New returns a DB retaining capacity samples per series (<= 0 means
// DefaultCapacity).
func New(capacity int) *DB {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &DB{capacity: capacity, series: make(map[string]*series)}
}

// Capacity reports the per-series ring capacity.
func (db *DB) Capacity() int { return db.capacity }

// Append records one sample for name at the current wall time.
func (db *DB) Append(name string, epoch uint64, value float64) {
	db.AppendAt(name, epoch, value, time.Now().Unix())
}

// AppendAt is Append with an explicit wall time (tests).
func (db *DB) AppendAt(name string, epoch uint64, value float64, unix int64) {
	db.mu.RLock()
	s := db.series[name]
	db.mu.RUnlock()
	if s == nil {
		db.mu.Lock()
		s = db.series[name]
		if s == nil {
			if len(db.series) >= MaxSeries {
				db.rejected++
				db.mu.Unlock()
				return
			}
			s = &series{buf: make([]Sample, db.capacity)}
			db.series[name] = s
		}
		db.mu.Unlock()
	}
	s.mu.Lock()
	s.buf[s.next] = Sample{Epoch: epoch, Unix: unix, Value: value}
	s.next = (s.next + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.mu.Unlock()
}

// Names returns the series names, sorted.
func (db *DB) Names() []string {
	db.mu.RLock()
	names := make([]string, 0, len(db.series))
	for name := range db.series {
		names = append(names, name)
	}
	db.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Stats summarizes the store for /metrics.
type Stats struct {
	Series   int    `json:"series"`
	Capacity int    `json:"capacity"`
	Rejected uint64 `json:"rejected,omitempty"` // appends dropped at the MaxSeries cap
}

// Stats returns store-level counters.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return Stats{Series: len(db.series), Capacity: db.capacity, Rejected: db.rejected}
}

// Query selects samples. The zero value returns every retained sample
// of the queried series, oldest first.
type Query struct {
	// SinceEpoch keeps only samples with Epoch >= SinceEpoch.
	SinceEpoch uint64
	// Step > 1 downsamples: consecutive samples are grouped into
	// buckets of Step epochs (by Epoch/Step) and each bucket collapses
	// to one sample holding the bucket's mean value, the bucket's last
	// epoch and last wall time.
	Step uint64
	// Limit caps the returned samples, keeping the newest (<= 0 means
	// no cap).
	Limit int
}

// Select returns name's samples matching q, oldest first. A series
// that does not exist yields nil.
func (db *DB) Select(name string, q Query) []Sample {
	db.mu.RLock()
	s := db.series[name]
	db.mu.RUnlock()
	if s == nil {
		return nil
	}
	s.mu.Lock()
	raw := make([]Sample, 0, s.n)
	start := s.next - s.n
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < s.n; i++ {
		raw = append(raw, s.buf[(start+i)%len(s.buf)])
	}
	s.mu.Unlock()

	out := raw[:0]
	for _, sm := range raw {
		if sm.Epoch >= q.SinceEpoch {
			out = append(out, sm)
		}
	}
	if q.Step > 1 {
		out = downsample(out, q.Step)
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[len(out)-q.Limit:]
	}
	return out
}

// Latest returns name's newest sample, if any.
func (db *DB) Latest(name string) (Sample, bool) {
	db.mu.RLock()
	s := db.series[name]
	db.mu.RUnlock()
	if s == nil {
		return Sample{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Sample{}, false
	}
	i := s.next - 1
	if i < 0 {
		i += len(s.buf)
	}
	return s.buf[i], true
}

// downsample collapses samples (oldest first) into Epoch/step buckets,
// each bucket reporting its mean value at its last epoch.
func downsample(in []Sample, step uint64) []Sample {
	if len(in) == 0 {
		return in
	}
	out := make([]Sample, 0, len(in)/int(step)+1)
	bucket := in[0].Epoch / step
	sum, n := 0.0, 0
	last := in[0]
	flush := func() {
		out = append(out, Sample{Epoch: last.Epoch, Unix: last.Unix, Value: sum / float64(n)})
	}
	for _, sm := range in {
		if sm.Epoch/step != bucket {
			flush()
			bucket = sm.Epoch / step
			sum, n = 0, 0
		}
		sum += sm.Value
		n++
		last = sm
	}
	flush()
	return out
}
