package obs

import (
	"io"
	"math"
	"runtime"
	"strconv"
	"strings"
)

// Label is one Prometheus label pair.
type Label struct{ Name, Value string }

// PromWriter renders the Prometheus text exposition format (version
// 0.0.4): `# HELP` / `# TYPE` headers followed by samples. Errors are
// sticky — callers write the whole family and check Err once, the
// bytes.Buffer-backed callers never see one.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err reports the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) writeString(s string) {
	if p.err == nil {
		_, p.err = io.WriteString(p.w, s)
	}
}

// Header emits the HELP and TYPE comment lines for one metric family.
// typ is "counter", "gauge" or "histogram".
func (p *PromWriter) Header(name, help, typ string) {
	p.writeString("# HELP " + name + " " + escapeHelp(help) + "\n# TYPE " + name + " " + typ + "\n")
}

// Sample emits one sample line: name{labels} value.
func (p *PromWriter) Sample(name string, labels []Label, v float64) {
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Name)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabelValue(l.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(FormatPromValue(v))
	sb.WriteByte('\n')
	p.writeString(sb.String())
}

// FormatPromValue renders a float the way the exposition format wants:
// "+Inf"/"-Inf"/"NaN" specials, shortest round-trip decimal otherwise.
func FormatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP string: backslash and newline only (quotes
// are legal there).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// WriteRuntimeMetrics emits the Go runtime gauges a production scrape
// wants: goroutine count, heap residency, allocation volume and GC
// pause totals. One runtime.ReadMemStats per scrape is the accepted
// cost of a /metrics hit.
func WriteRuntimeMetrics(p *PromWriter) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	p.Header("go_goroutines", "Number of goroutines that currently exist.", "gauge")
	p.Sample("go_goroutines", nil, float64(runtime.NumGoroutine()))

	p.Header("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", "gauge")
	p.Sample("go_memstats_heap_alloc_bytes", nil, float64(ms.HeapAlloc))

	p.Header("go_memstats_heap_objects", "Number of allocated heap objects.", "gauge")
	p.Sample("go_memstats_heap_objects", nil, float64(ms.HeapObjects))

	p.Header("go_memstats_alloc_bytes_total", "Cumulative bytes allocated for heap objects.", "counter")
	p.Sample("go_memstats_alloc_bytes_total", nil, float64(ms.TotalAlloc))

	p.Header("go_gc_cycles_total", "Number of completed GC cycles.", "counter")
	p.Sample("go_gc_cycles_total", nil, float64(ms.NumGC))

	p.Header("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", "counter")
	p.Sample("go_gc_pause_seconds_total", nil, float64(ms.PauseTotalNs)/1e9)
}
