package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds the service's structured logger: level-filtered,
// "text" (logfmt-ish, the default) or "json" (one object per line, the
// machine-scrapable form), with trace ids injected from the context of
// every ctx-aware log call (see WithTraceIDs).
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	return slog.New(WithTraceIDs(h)), nil
}

// WithTraceIDs wraps a slog.Handler so every record logged through a
// context that carries a trace (slog's ...Context methods, LogAttrs)
// gains a trace_id attribute — the join key between the request log
// and GET /debug/traces. Records logged without a traced context pass
// through untouched.
func WithTraceIDs(h slog.Handler) slog.Handler {
	if _, ok := h.(traceHandler); ok {
		return h // already wrapped; don't stack trace_id attrs
	}
	return traceHandler{h}
}

type traceHandler struct{ inner slog.Handler }

func (t traceHandler) Enabled(ctx context.Context, lvl slog.Level) bool {
	return t.inner.Enabled(ctx, lvl)
}

func (t traceHandler) Handle(ctx context.Context, r slog.Record) error {
	if id := TraceIDFrom(ctx); id != "" {
		r = r.Clone()
		r.AddAttrs(slog.String("trace_id", id))
	}
	return t.inner.Handle(ctx, r)
}

func (t traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return traceHandler{t.inner.WithAttrs(attrs)}
}

func (t traceHandler) WithGroup(name string) slog.Handler {
	return traceHandler{t.inner.WithGroup(name)}
}
