// Package obs is the service's observability layer: request-scoped
// tracing, structured-logging helpers and Prometheus text exposition,
// standard library only. It is the software analog of the paper's
// measurement apparatus — the ring-oscillator sensors observed silicon
// aging from outside the die; this package observes the fleet service
// from outside its layers, without changing what they compute.
//
// The pieces compose but do not require each other:
//
//   - A Tracer mints one Trace per request (serve middleware calls
//     Start); every layer below annotates it with Spans via StartSpan,
//     which reads the active span from the context and is a cheap
//     no-op when no trace is attached (replay, CLIs, tests). Completed
//     traces land in a fixed-size lock-sharded ring buffer and are
//     queried with Snapshot — the data behind GET /debug/traces.
//   - WithTraceIDs wraps any slog.Handler so every context-aware log
//     line automatically carries the trace_id of the request that
//     emitted it, correlating logs with traces.
//   - PromWriter renders metrics in the Prometheus text exposition
//     format (version 0.0.4); WriteRuntimeMetrics adds the Go runtime
//     gauges every production scrape wants.
//
// Nothing here imports the rest of the repository, so any layer — the
// journal included — may create spans without dependency cycles.
package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// MaxSpansPerTrace bounds one trace's span list so a huge batch request
// (1024 items × several spans each) cannot balloon the ring's memory.
// Spans past the cap are counted, not stored — TraceView.SpansDropped
// reports how many.
const MaxSpansPerTrace = 512

// Attr is one key/value annotation on a span. Values are strings on
// purpose: spans are for reading, not aggregating, and a string keeps
// the snapshot JSON trivial.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: strconv.FormatBool(v)} }

// Duration builds a duration attribute (human-readable Go form).
func Duration(k string, d time.Duration) Attr { return Attr{Key: k, Value: d.String()} }

// spanKey carries the active *Span through the context.
type spanKey struct{}

// Tracer retains the last N completed traces in a lock-sharded ring
// buffer: finished traces are spread over ringShards independent
// buffers, so concurrent request completions do not serialize on one
// mutex. All methods are safe for concurrent use.
type Tracer struct {
	shards   [ringShards]ringShard
	perShard int
	seq      atomic.Uint64 // completed traces ever, also the shard picker
	node     atomic.Value  // node id string; stamped onto every view
}

const ringShards = 8

type ringShard struct {
	mu   sync.Mutex
	buf  []*Trace // ring storage; nil slots are not-yet-filled
	next int
}

// NewTracer returns a tracer retaining roughly capacity completed
// traces (rounded up to a multiple of the shard count; capacity <= 0
// defaults to 256).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	per := (capacity + ringShards - 1) / ringShards
	t := &Tracer{perShard: per}
	for i := range t.shards {
		t.shards[i].buf = make([]*Trace, per)
	}
	return t
}

// Capacity reports how many completed traces the ring retains.
func (t *Tracer) Capacity() int { return t.perShard * ringShards }

// Total reports how many traces have completed since construction
// (retained or since evicted).
func (t *Tracer) Total() uint64 { return t.seq.Load() }

// SetNode labels every trace and span view this tracer emits with the
// fleet node id, so /debug/traces output from different nodes stitches
// into one cross-node timeline. Safe to call at any time; typically set
// once at server construction.
func (t *Tracer) SetNode(id string) { t.node.Store(id) }

// Node returns the node id set with SetNode, or "".
func (t *Tracer) Node() string {
	id, _ := t.node.Load().(string)
	return id
}

// newTraceID mints a 16-hex-digit trace id.
func newTraceID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return "trace-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// Start begins a new trace for one request and returns the context
// carrying its root span. The caller must End the root span — that is
// what finalizes the trace and files it into the ring. route labels
// the trace for filtering (use the route *pattern*, not the raw path,
// so cardinality stays bounded).
func (t *Tracer) Start(ctx context.Context, route string) (context.Context, *Span) {
	return t.StartRemote(ctx, route, "")
}

// StartRemote begins a trace that adopts traceID — the id a remote hop
// (client or forwarding node) propagated in a trace-context header — so
// every node touched by one logical request files its local trace under
// the same id. An empty or malformed traceID falls back to minting a
// fresh one, making StartRemote("") identical to Start.
func (t *Tracer) StartRemote(ctx context.Context, route, traceID string) (context.Context, *Span) {
	if !ValidTraceID(traceID) {
		traceID = newTraceID()
	}
	tr := &Trace{
		tracer: t,
		id:     traceID,
		route:  route,
		start:  time.Now(),
	}
	root := &Span{trace: tr, id: "s1", name: route, start: tr.start, root: true}
	tr.spans = append(tr.spans, root)
	tr.nextID = 2
	return context.WithValue(ctx, spanKey{}, root), root
}

// StartSpan opens a child span under the context's active span and
// returns a context carrying it (so further StartSpan calls nest).
// Without a trace in ctx it returns ctx unchanged and a nil span —
// every Span method is nil-safe, so instrumented code needs no guards.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	tr := parent.trace
	now := time.Now()
	tr.mu.Lock()
	if len(tr.spans) >= MaxSpansPerTrace {
		tr.dropped++
		tr.mu.Unlock()
		return ctx, nil
	}
	s := &Span{
		trace:  tr,
		id:     "s" + strconv.Itoa(tr.nextID),
		parent: parent.id,
		name:   name,
		start:  now,
		attrs:  attrs,
	}
	tr.nextID++
	tr.spans = append(tr.spans, s)
	tr.mu.Unlock()
	return context.WithValue(ctx, spanKey{}, s), s
}

// TraceIDFrom returns the context's trace id — from the active span
// if one is attached, else from a remote trace id carried by
// ContextWithRemoteTrace (the client side of propagation, where no
// local span exists) — or "" outside both.
func TraceIDFrom(ctx context.Context) string {
	if s, _ := ctx.Value(spanKey{}).(*Span); s != nil {
		return s.trace.id
	}
	if id, _ := ctx.Value(remoteTraceKey{}).(string); id != "" {
		return id
	}
	return ""
}

// Trace is one request's span collection while it is being built and
// after it is retained in the ring. All mutation happens under mu, so
// a snapshot taken while a straggler span is still running (a handler
// that outlived its route timeout) is race-free.
type Trace struct {
	tracer *Tracer
	id     string
	route  string
	start  time.Time

	mu      sync.Mutex
	spans   []*Span
	nextID  int
	dropped int
	status  int
	done    bool
	endNS   int64 // duration, set when the root span ends
}

// Span is one timed operation inside a trace. The zero of use is:
//
//	ctx, sp := obs.StartSpan(ctx, "journal.stage", obs.String("op", op))
//	defer sp.End()
//
// Fields after construction are guarded by the owning trace's mutex.
type Span struct {
	trace  *Trace
	id     string
	parent string
	name   string
	start  time.Time

	attrs  []Attr
	errMsg string
	endNS  int64 // duration; 0 while the span is open
	root   bool
}

// Annotate appends attributes to the span. Nil-safe.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.trace.mu.Unlock()
}

// SetError marks the span failed. A nil error or nil span is a no-op.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.trace.mu.Lock()
	s.errMsg = err.Error()
	s.trace.mu.Unlock()
}

// SetStatus records the trace's terminal HTTP status; meaningful on
// the root span only. Nil-safe.
func (s *Span) SetStatus(code int) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.trace.status = code
	s.trace.mu.Unlock()
}

// End closes the span. Ending the root span finalizes the trace and
// files it into the tracer's ring; spans that end after that (work
// that outlived the request) still record their duration and remain
// visible in later snapshots. End is nil-safe and idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	tr := s.trace
	now := time.Now()
	tr.mu.Lock()
	if s.endNS == 0 {
		s.endNS = now.Sub(s.start).Nanoseconds()
		if s.endNS <= 0 {
			s.endNS = 1 // a closed span is distinguishable from an open one
		}
	}
	finalize := s.root && !tr.done
	if finalize {
		tr.done = true
		tr.endNS = now.Sub(tr.start).Nanoseconds()
	}
	tr.mu.Unlock()
	if finalize {
		tr.tracer.retain(tr)
	}
}

// retain files a completed trace into the ring, evicting the oldest
// entry of its shard.
func (t *Tracer) retain(tr *Trace) {
	sh := &t.shards[t.seq.Add(1)%ringShards]
	sh.mu.Lock()
	sh.buf[sh.next] = tr
	sh.next = (sh.next + 1) % len(sh.buf)
	sh.mu.Unlock()
}

// Filter selects traces for Snapshot. The zero value returns the
// newest DefaultSnapshotLimit traces.
type Filter struct {
	// Route keeps only traces whose route equals this (exact match on
	// the route pattern, e.g. "POST /v1/ops:batch").
	Route string
	// MinDuration keeps only traces at least this long.
	MinDuration time.Duration
	// ErrorsOnly keeps only traces that failed: terminal status >= 500
	// or any span with an error.
	ErrorsOnly bool
	// Limit caps the returned traces, newest first (<= 0 means
	// DefaultSnapshotLimit).
	Limit int
}

// DefaultSnapshotLimit is the trace count Snapshot returns when the
// filter sets none.
const DefaultSnapshotLimit = 20

// TraceView is one completed trace as exposed by GET /debug/traces.
type TraceView struct {
	TraceID      string     `json:"trace_id"`
	NodeID       string     `json:"node_id,omitempty"`
	Route        string     `json:"route"`
	Start        time.Time  `json:"start"`
	DurationMS   float64    `json:"duration_ms"`
	Status       int        `json:"status,omitempty"`
	Error        bool       `json:"error"`
	SpansDropped int        `json:"spans_dropped,omitempty"`
	Spans        []SpanView `json:"spans"`
}

// SpanView is one span inside a TraceView. StartUS is the offset from
// the trace start, so a reader can lay the spans on one timeline.
type SpanView struct {
	ID         string            `json:"id"`
	Parent     string            `json:"parent,omitempty"`
	NodeID     string            `json:"node_id,omitempty"`
	Name       string            `json:"name"`
	StartUS    int64             `json:"start_us"`
	DurationUS int64             `json:"duration_us"`
	Unfinished bool              `json:"unfinished,omitempty"`
	Error      string            `json:"error,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Snapshot returns the retained traces matching f, newest first.
func (t *Tracer) Snapshot(f Filter) []TraceView {
	limit := f.Limit
	if limit <= 0 {
		limit = DefaultSnapshotLimit
	}
	var all []*Trace
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, tr := range sh.buf {
			if tr != nil {
				all = append(all, tr)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].start.After(all[j].start) })
	views := make([]TraceView, 0, limit)
	for _, tr := range all {
		if f.Route != "" && tr.route != f.Route {
			continue
		}
		v := tr.view()
		if f.MinDuration > 0 && v.DurationMS < float64(f.MinDuration)/float64(time.Millisecond) {
			continue
		}
		if f.ErrorsOnly && !v.Error {
			continue
		}
		views = append(views, v)
		if len(views) >= limit {
			break
		}
	}
	return views
}

// view snapshots the trace under its mutex.
func (tr *Trace) view() TraceView {
	node := tr.tracer.Node()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	v := TraceView{
		TraceID:      tr.id,
		NodeID:       node,
		Route:        tr.route,
		Start:        tr.start,
		DurationMS:   float64(tr.endNS) / float64(time.Millisecond),
		Status:       tr.status,
		Error:        tr.status >= 500,
		SpansDropped: tr.dropped,
		Spans:        make([]SpanView, 0, len(tr.spans)),
	}
	for _, s := range tr.spans {
		sv := SpanView{
			ID:         s.id,
			Parent:     s.parent,
			NodeID:     node,
			Name:       s.name,
			StartUS:    s.start.Sub(tr.start).Microseconds(),
			DurationUS: s.endNS / int64(time.Microsecond),
			Unfinished: s.endNS == 0,
			Error:      s.errMsg,
		}
		if s.errMsg != "" {
			v.Error = true
		}
		if len(s.attrs) > 0 {
			sv.Attrs = make(map[string]string, len(s.attrs))
			for _, a := range s.attrs {
				sv.Attrs[a.Key] = a.Value
			}
		}
		v.Spans = append(v.Spans, sv)
	}
	return v
}
