package obs

import (
	"context"
	"strings"
)

// Trace-context propagation. One logical request crosses a client
// router, possibly a 307 wrong_node forward, the owning node, and (for
// durable mutations) the replication stream — each hop runs its own
// Tracer with its own ring. Stitching those local traces into one
// cross-node timeline only needs the trace *id* to survive the hops,
// so the wire format is a minimal traceparent-style header:
//
//	Traceparent: 00-<trace-id>-<parent-span-id>-01
//
// The trace id is 16 lowercase hex digits (newTraceID); the parent
// span id is this package's short span id ("s3") or "0" when the
// sender has no active span (a client originating the request). Only
// the trace id is adopted on the receiving side — span parentage stays
// node-local, which keeps every Tracer's ring self-contained while
// /debug/traces output from any set of nodes merges by trace_id.

// TraceContextHeader is the HTTP header carrying trace context between
// client, forwarding node and owner node.
const TraceContextHeader = "Traceparent"

const traceContextVersion = "00"

// NewTraceID mints a fresh trace id for a caller that originates a
// trace outside any Tracer — the cluster client does this once per
// logical request so every retry, redirect hop and batch partition
// shares one id.
func NewTraceID() string { return newTraceID() }

// ValidTraceID reports whether id is usable as a trace id on the wire:
// 8–64 lowercase hex digits, not all zeros.
func ValidTraceID(id string) bool {
	if len(id) < 8 || len(id) > 64 {
		return false
	}
	zeros := true
	for i := 0; i < len(id); i++ {
		c := id[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zeros = false
		}
	}
	return !zeros
}

// FormatTraceContext renders the Traceparent header value for traceID.
// parentSpan is the sender's active span id, or "" when there is none.
// An invalid traceID yields "" (send nothing).
func FormatTraceContext(traceID, parentSpan string) string {
	if !ValidTraceID(traceID) {
		return ""
	}
	if parentSpan == "" {
		parentSpan = "0"
	}
	return traceContextVersion + "-" + traceID + "-" + parentSpan + "-01"
}

// ParseTraceContext extracts the trace id from a Traceparent header
// value. Unknown versions and malformed values are rejected — the
// receiver then mints its own id, so a garbage header can never poison
// the ring.
func ParseTraceContext(v string) (traceID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) != 4 || parts[0] != traceContextVersion {
		return "", false
	}
	if !ValidTraceID(parts[1]) {
		return "", false
	}
	return parts[1], true
}

// remoteTraceKey carries a trace id through a context that has no
// local span — the client side of propagation.
type remoteTraceKey struct{}

// ContextWithRemoteTrace returns a context carrying traceID for
// TraceIDFrom and TraceContextValue. The cluster client seeds one per
// logical fan-out call so every partition's sub-request shares the id.
// An invalid id returns ctx unchanged.
func ContextWithRemoteTrace(ctx context.Context, traceID string) context.Context {
	if !ValidTraceID(traceID) {
		return ctx
	}
	return context.WithValue(ctx, remoteTraceKey{}, traceID)
}

// TraceContextValue renders the Traceparent header value for the
// context's trace — the active span's trace id and span id when one is
// attached (a server making an outbound call, e.g. a federation
// scrape), else a remote id carried by ContextWithRemoteTrace — or ""
// when the context carries no trace at all.
func TraceContextValue(ctx context.Context) string {
	if s, _ := ctx.Value(spanKey{}).(*Span); s != nil {
		return FormatTraceContext(s.trace.id, s.id)
	}
	if id, _ := ctx.Value(remoteTraceKey{}).(string); id != "" {
		return FormatTraceContext(id, "")
	}
	return ""
}
