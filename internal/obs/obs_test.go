package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAndSnapshot(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.Start(context.Background(), "POST /v1/ops:batch")
	if got := TraceIDFrom(ctx); got == "" {
		t.Fatal("TraceIDFrom returned empty inside a trace")
	}

	bctx, batch := StartSpan(ctx, "fleet.batch", Int("items", 2))
	_, item := StartSpan(bctx, "batch.item", Int("index", 0))
	item.Annotate(String("chip_id", "c0"))
	item.End()
	batch.End()
	root.SetStatus(200)
	root.End()

	views := tr.Snapshot(Filter{})
	if len(views) != 1 {
		t.Fatalf("Snapshot returned %d traces, want 1", len(views))
	}
	v := views[0]
	if v.Route != "POST /v1/ops:batch" || v.Status != 200 || v.Error {
		t.Fatalf("unexpected trace view: %+v", v)
	}
	if len(v.Spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(v.Spans), v.Spans)
	}
	byName := map[string]SpanView{}
	for _, s := range v.Spans {
		byName[s.Name] = s
	}
	rootV := byName["POST /v1/ops:batch"]
	batchV := byName["fleet.batch"]
	itemV := byName["batch.item"]
	if rootV.Parent != "" {
		t.Fatalf("root span has parent %q", rootV.Parent)
	}
	if batchV.Parent != rootV.ID {
		t.Fatalf("fleet.batch parent = %q, want %q", batchV.Parent, rootV.ID)
	}
	if itemV.Parent != batchV.ID {
		t.Fatalf("batch.item parent = %q, want %q", itemV.Parent, batchV.ID)
	}
	if itemV.Attrs["chip_id"] != "c0" || itemV.Attrs["index"] != "0" {
		t.Fatalf("batch.item attrs = %v", itemV.Attrs)
	}
	if itemV.Unfinished || batchV.Unfinished || rootV.Unfinished {
		t.Fatalf("all spans ended but some marked unfinished: %+v", v.Spans)
	}
}

func TestStartSpanWithoutTraceIsNop(t *testing.T) {
	ctx := context.Background()
	c2, sp := StartSpan(ctx, "anything", String("k", "v"))
	if sp != nil {
		t.Fatal("StartSpan outside a trace returned a non-nil span")
	}
	if c2 != ctx {
		t.Fatal("StartSpan outside a trace changed the context")
	}
	// Every method must be nil-safe.
	sp.Annotate(String("a", "b"))
	sp.SetError(errors.New("x"))
	sp.SetStatus(500)
	sp.End()
	if got := TraceIDFrom(ctx); got != "" {
		t.Fatalf("TraceIDFrom outside a trace = %q, want empty", got)
	}
}

func TestSpanCapCountsDrops(t *testing.T) {
	tr := NewTracer(4)
	ctx, root := tr.Start(context.Background(), "GET /x")
	for i := 0; i < MaxSpansPerTrace+10; i++ {
		_, sp := StartSpan(ctx, "s")
		sp.End()
	}
	root.End()
	v := tr.Snapshot(Filter{})[0]
	if len(v.Spans) != MaxSpansPerTrace {
		t.Fatalf("retained %d spans, want %d", len(v.Spans), MaxSpansPerTrace)
	}
	if v.SpansDropped != 11 { // 10 over cap + the one that hit the cap exactly
		t.Fatalf("SpansDropped = %d, want 11", v.SpansDropped)
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(8) // one slot per shard
	for i := 0; i < 100; i++ {
		_, root := tr.Start(context.Background(), "GET /x")
		root.End()
	}
	if tr.Total() != 100 {
		t.Fatalf("Total = %d, want 100", tr.Total())
	}
	views := tr.Snapshot(Filter{Limit: 1000})
	if len(views) != tr.Capacity() {
		t.Fatalf("retained %d traces, want capacity %d", len(views), tr.Capacity())
	}
}

func TestSnapshotFilters(t *testing.T) {
	tr := NewTracer(32)

	_, a := tr.Start(context.Background(), "GET /a")
	a.SetStatus(200)
	a.End()

	_, b := tr.Start(context.Background(), "GET /b")
	b.SetStatus(500)
	b.End()

	ctx, c := tr.Start(context.Background(), "GET /a")
	_, child := StartSpan(ctx, "journal.commit")
	child.SetError(errors.New("fsync: injected"))
	child.End()
	c.SetStatus(503)
	c.End()

	if got := tr.Snapshot(Filter{Route: "GET /a"}); len(got) != 2 {
		t.Fatalf("route filter returned %d, want 2", len(got))
	}
	errs := tr.Snapshot(Filter{ErrorsOnly: true})
	if len(errs) != 2 {
		t.Fatalf("errors filter returned %d, want 2", len(errs))
	}
	for _, v := range errs {
		if !v.Error {
			t.Fatalf("errors-only snapshot contains non-error trace %+v", v)
		}
	}
	both := tr.Snapshot(Filter{Route: "GET /a", ErrorsOnly: true})
	if len(both) != 1 || both[0].Status != 503 {
		t.Fatalf("combined filter = %+v, want the one failing GET /a", both)
	}
	// The failing trace carries the failing span's message.
	var found bool
	for _, s := range both[0].Spans {
		if s.Name == "journal.commit" && strings.Contains(s.Error, "injected") {
			found = true
		}
	}
	if !found {
		t.Fatalf("failing span not in view: %+v", both[0].Spans)
	}

	if got := tr.Snapshot(Filter{MinDuration: time.Hour}); len(got) != 0 {
		t.Fatalf("min-duration filter returned %d, want 0", len(got))
	}
	if got := tr.Snapshot(Filter{Limit: 1}); len(got) != 1 {
		t.Fatalf("limit filter returned %d, want 1", len(got))
	}
}

func TestUnfinishedSpanVisible(t *testing.T) {
	tr := NewTracer(8)
	ctx, root := tr.Start(context.Background(), "GET /slow")
	_, straggler := StartSpan(ctx, "slow.child")
	root.End() // request finished; child still running (post-timeout work)

	v := tr.Snapshot(Filter{})[0]
	var sv SpanView
	for _, s := range v.Spans {
		if s.Name == "slow.child" {
			sv = s
		}
	}
	if !sv.Unfinished {
		t.Fatalf("open span not marked unfinished: %+v", sv)
	}
	straggler.End()
	v = tr.Snapshot(Filter{})[0]
	for _, s := range v.Spans {
		if s.Name == "slow.child" && s.Unfinished {
			t.Fatalf("ended straggler still unfinished: %+v", s)
		}
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	// Hammer trace creation, span churn and snapshots concurrently; the
	// -race build is the assertion.
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, root := tr.Start(context.Background(), fmt.Sprintf("GET /w%d", w%2))
				c2, sp := StartSpan(ctx, "child", Int("i", i))
				sp.Annotate(String("k", "v"))
				if i%3 == 0 {
					sp.SetError(errors.New("boom"))
				}
				_, g := StartSpan(c2, "grandchild")
				g.End()
				sp.End()
				root.SetStatus(200)
				root.End()
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Snapshot(Filter{ErrorsOnly: i%2 == 0, Limit: 50})
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 8*200 {
		t.Fatalf("Total = %d, want %d", tr.Total(), 8*200)
	}
}

func TestPromWriterOutput(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Header("selfheal_requests_total", "Total requests.", "counter")
	p.Sample("selfheal_requests_total", []Label{{"route", `GET /v1/chips`}, {"status", "200"}}, 42)
	p.Header("selfheal_request_duration_seconds", "Latency.", "histogram")
	p.Sample("selfheal_request_duration_seconds_bucket", []Label{{"le", "+Inf"}}, 7)
	p.Sample("selfheal_weird", []Label{{"v", "a\\b\"c\nd"}}, 0.5)
	if err := p.Err(); err != nil {
		t.Fatalf("PromWriter error: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP selfheal_requests_total Total requests.\n",
		"# TYPE selfheal_requests_total counter\n",
		`selfheal_requests_total{route="GET /v1/chips",status="200"} 42` + "\n",
		"# TYPE selfheal_request_duration_seconds histogram\n",
		`selfheal_request_duration_seconds_bucket{le="+Inf"} 7` + "\n",
		`selfheal_weird{v="a\\b\"c\nd"} 0.5` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be name[{labels}] value — a cheap
	// structural validation of the exposition format.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
	}
}

func TestFormatPromValue(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.025:        "0.025",
		3:            "3",
	}
	for in, want := range cases {
		if got := FormatPromValue(in); got != want {
			t.Fatalf("FormatPromValue(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatPromValue(math.NaN()); got != "NaN" {
		t.Fatalf("FormatPromValue(NaN) = %q", got)
	}
}

func TestWriteRuntimeMetrics(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	WriteRuntimeMetrics(p)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"go_goroutines ", "go_memstats_heap_alloc_bytes ", "go_gc_pause_seconds_total "} {
		if !strings.Contains(out, want) {
			t.Fatalf("runtime metrics missing %q:\n%s", want, out)
		}
	}
}

func TestLoggerTraceIDInjection(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, slog.LevelInfo, "json")
	if err != nil {
		t.Fatal(err)
	}

	tr := NewTracer(4)
	ctx, root := tr.Start(context.Background(), "GET /x")
	logger.InfoContext(ctx, "inside", slog.String("chip_id", "c0"))
	logger.Info("outside")
	root.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2:\n%s", len(lines), buf.String())
	}
	var inside, outside map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &inside); err != nil {
		t.Fatalf("bad json log line %q: %v", lines[0], err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &outside); err != nil {
		t.Fatalf("bad json log line %q: %v", lines[1], err)
	}
	if inside["trace_id"] != TraceIDFrom(ctx) {
		t.Fatalf("trace_id = %v, want %q", inside["trace_id"], TraceIDFrom(ctx))
	}
	if inside["chip_id"] != "c0" {
		t.Fatalf("chip_id attr lost: %v", inside)
	}
	if _, ok := outside["trace_id"]; ok {
		t.Fatalf("untraced log line gained a trace_id: %v", outside)
	}
}

func TestLoggerTextFormatAndLevel(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, slog.LevelWarn, "text")
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("dropped")
	logger.Warn("kept")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Fatalf("level filtering wrong:\n%s", out)
	}
	if _, err := NewLogger(&buf, slog.LevelInfo, "yaml"); err == nil {
		t.Fatal("NewLogger accepted bogus format")
	}
}

func TestWithTraceIDsIdempotentAndGrouped(t *testing.T) {
	var buf bytes.Buffer
	base := slog.NewJSONHandler(&buf, nil)
	h := WithTraceIDs(WithTraceIDs(base)) // double wrap must not stack
	logger := slog.New(h).With(slog.String("svc", "selfheal")).WithGroup("g")

	tr := NewTracer(4)
	ctx, root := tr.Start(context.Background(), "GET /x")
	logger.InfoContext(ctx, "m", slog.String("k", "v"))
	root.End()

	var rec map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &rec); err != nil {
		t.Fatalf("bad log json: %v\n%s", err, buf.String())
	}
	if rec["svc"] != "selfheal" {
		t.Fatalf("WithAttrs lost through wrapper: %v", rec)
	}
	g, _ := rec["g"].(map[string]any)
	if g == nil || g["k"] != "v" {
		t.Fatalf("WithGroup lost through wrapper: %v", rec)
	}
	// trace_id must appear exactly once (inside the open group is where
	// slog puts record attrs; either placement is fine, but not both).
	n := strings.Count(buf.String(), "trace_id")
	if n != 1 {
		t.Fatalf("trace_id appears %d times, want 1:\n%s", n, buf.String())
	}
}
