package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	id := NewTraceID()
	if !ValidTraceID(id) {
		t.Fatalf("NewTraceID produced invalid id %q", id)
	}
	hv := FormatTraceContext(id, "s3")
	if hv != "00-"+id+"-s3-01" {
		t.Fatalf("header value = %q", hv)
	}
	got, ok := ParseTraceContext(hv)
	if !ok || got != id {
		t.Fatalf("ParseTraceContext(%q) = %q, %v", hv, got, ok)
	}
	// No active span: parent slot is "0".
	if hv := FormatTraceContext(id, ""); hv != "00-"+id+"-0-01" {
		t.Fatalf("no-parent header = %q", hv)
	}
}

func TestParseTraceContextRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"banana",
		"00-xyz!-0-01",             // non-hex id
		"00-abc-0-01",              // too short
		"00-0000000000000000-0-01", // all zeros
		"ff-deadbeefdeadbeef-0-01", // unknown version
		"00-deadbeefdeadbeef-0",    // missing flags
		"00-" + strings.Repeat("a", 65) + "-0-01", // oversized
	}
	for _, v := range bad {
		if id, ok := ParseTraceContext(v); ok {
			t.Fatalf("ParseTraceContext(%q) accepted %q", v, id)
		}
	}
}

func TestStartRemoteAdoptsID(t *testing.T) {
	tr := NewTracer(8)
	tr.SetNode("n1")
	id := "deadbeef01234567"
	ctx, root := tr.StartRemote(context.Background(), "GET /x", id)
	if got := TraceIDFrom(ctx); got != id {
		t.Fatalf("TraceIDFrom = %q, want %q", got, id)
	}
	// Outbound header from inside the handler carries id + span id.
	if hv := TraceContextValue(ctx); hv != "00-"+id+"-s1-01" {
		t.Fatalf("TraceContextValue = %q", hv)
	}
	root.End()
	views := tr.Snapshot(Filter{})
	if len(views) != 1 || views[0].TraceID != id {
		t.Fatalf("snapshot = %+v, want adopted id %q", views, id)
	}
	if views[0].NodeID != "n1" || views[0].Spans[0].NodeID != "n1" {
		t.Fatalf("node id missing from views: %+v", views[0])
	}
}

func TestStartRemoteFallsBackOnBadID(t *testing.T) {
	tr := NewTracer(8)
	ctx, root := tr.StartRemote(context.Background(), "GET /x", "not-hex!!")
	defer root.End()
	id := TraceIDFrom(ctx)
	if !ValidTraceID(id) || id == "not-hex!!" {
		t.Fatalf("bad remote id not replaced: %q", id)
	}
}

func TestContextWithRemoteTrace(t *testing.T) {
	id := NewTraceID()
	ctx := ContextWithRemoteTrace(context.Background(), id)
	if got := TraceIDFrom(ctx); got != id {
		t.Fatalf("TraceIDFrom(remote) = %q, want %q", got, id)
	}
	if hv := TraceContextValue(ctx); hv != FormatTraceContext(id, "") {
		t.Fatalf("TraceContextValue(remote) = %q", hv)
	}
	// Invalid ids are refused, leaving the context untouched.
	if ctx2 := ContextWithRemoteTrace(context.Background(), "zz"); TraceIDFrom(ctx2) != "" {
		t.Fatal("invalid remote id leaked into context")
	}
	// An active span wins over the carried remote id.
	tr := NewTracer(8)
	ctx3, sp := tr.Start(ctx, "GET /y")
	defer sp.End()
	if got := TraceIDFrom(ctx3); got == id {
		t.Fatal("span trace id should shadow the remote carrier")
	}
}
