package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestNewValidation(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		if _, err := New[string, int](capacity); err == nil {
			t.Errorf("capacity %d: want error", capacity)
		}
	}
}

func TestGetAddRoundTrip(t *testing.T) {
	c, err := New[string, int](4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Add("a", 1)
	v, ok := c.Get("a")
	if !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v; want 1, true", v, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 1, 1", hits, misses)
	}
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	c, err := New[int, int](2)
	if err != nil {
		t.Fatal(err)
	}
	c.Add(1, 1)
	c.Add(2, 2)
	c.Get(1) // 2 is now the LRU entry
	c.Add(3, 3)
	if _, ok := c.Get(2); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("recently used entry 1 was evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestAddRefreshesExisting(t *testing.T) {
	c, err := New[string, int](2)
	if err != nil {
		t.Fatal(err)
	}
	c.Add("a", 1)
	c.Add("a", 2)
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("refreshed value = %d, want 2", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, err := New[string, int](16)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				if _, ok := c.Get(key); !ok {
					c.Add(key, g*1000+i)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("Len = %d exceeds capacity 16", c.Len())
	}
}
