// Package lru is a small, thread-safe, bounded least-recently-used
// cache with hit/miss accounting. It memoizes the service's prediction
// endpoints (internal/serve): every simulation in this repository is
// deterministic given its parameters, so a cache entry never goes
// stale — the only reason to evict is the capacity bound.
package lru

import (
	"container/list"
	"fmt"
	"sync"
)

// Cache maps K to V, evicting the least-recently-used entry once more
// than its capacity are resident. The zero value is not usable; create
// with New.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	items    map[K]*list.Element
	hits     uint64
	misses   uint64
}

type entry[K comparable, V any] struct {
	key   K
	value V
}

// New returns an empty cache holding at most capacity entries.
func New[K comparable, V any](capacity int) (*Cache[K, V], error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("lru: capacity must be positive, got %d", capacity)
	}
	return &Cache[K, V]{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[K]*list.Element, capacity),
	}, nil
}

// Get returns the cached value and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		return el.Value.(*entry[K, V]).value, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Add inserts or refreshes key, evicting the LRU entry if needed.
func (c *Cache[K, V]) Add(key K, value V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[K, V]).value = value
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&entry[K, V]{key: key, value: value})
	if c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[K, V]).key)
	}
}

// Len returns the number of resident entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Capacity returns the configured bound.
func (c *Cache[K, V]) Capacity() int { return c.capacity }

// Stats returns the cumulative hit and miss counts.
func (c *Cache[K, V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
