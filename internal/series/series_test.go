package series

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"selfheal/internal/units"
)

func TestAddKeepsOrder(t *testing.T) {
	s := New("x")
	s.Add(10, 1)
	s.Add(5, 2)
	s.Add(20, 3)
	s.Add(5, 4) // duplicate timestamp, stable after the first 5
	times := s.Times()
	if !sort.Float64sAreSorted(times) {
		t.Fatalf("times not sorted: %v", times)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Stability: the second sample at t=5 must come after the first.
	if s.Points[0].T != 5 || s.Points[0].V != 2 || s.Points[1].V != 4 {
		t.Errorf("duplicate-timestamp order wrong: %+v", s.Points)
	}
}

func TestFromFunc(t *testing.T) {
	s := FromFunc("lin", 10, 5, func(tt units.Seconds) float64 { return float64(tt) * 2 })
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	if s.Points[0].T != 0 || s.Points[5].T != 10 {
		t.Errorf("endpoints: %+v", s.Points)
	}
	if s.Points[3].V != 12 {
		t.Errorf("sample at t=6: %v", s.Points[3].V)
	}
}

func TestFromFuncPanics(t *testing.T) {
	for _, c := range []struct {
		span units.Seconds
		n    int
	}{{0, 5}, {10, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FromFunc(span=%v,n=%d) did not panic", c.span, c.n)
				}
			}()
			FromFunc("bad", c.span, c.n, func(units.Seconds) float64 { return 0 })
		}()
	}
}

func TestAtInterpolation(t *testing.T) {
	s := New("x")
	s.Add(0, 0)
	s.Add(10, 100)
	got, err := s.At(5)
	if err != nil || got != 50 {
		t.Errorf("At(5) = %v, %v", got, err)
	}
	// Clamping outside the range.
	if v, _ := s.At(-1); v != 0 {
		t.Errorf("At(-1) = %v", v)
	}
	if v, _ := s.At(99); v != 100 {
		t.Errorf("At(99) = %v", v)
	}
	// Exact hit.
	if v, _ := s.At(10); v != 100 {
		t.Errorf("At(10) = %v", v)
	}
}

func TestAtEmpty(t *testing.T) {
	if _, err := New("e").At(1); err == nil {
		t.Error("At on empty series should fail")
	}
}

func TestAtDuplicateTimestamp(t *testing.T) {
	s := New("x")
	s.Add(0, 1)
	s.Add(5, 2)
	s.Add(5, 8)
	s.Add(10, 8)
	v, err := s.At(5)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 && v != 8 {
		t.Errorf("At(duplicate) = %v, want one of the recorded values", v)
	}
}

func TestLast(t *testing.T) {
	s := New("x")
	if _, ok := s.Last(); ok {
		t.Error("Last on empty should be !ok")
	}
	s.Add(1, 10)
	s.Add(2, 20)
	p, ok := s.Last()
	if !ok || p.T != 2 || p.V != 20 {
		t.Errorf("Last = %+v, %v", p, ok)
	}
}

func TestMapAndShift(t *testing.T) {
	s := New("x")
	s.Add(0, 1)
	s.Add(1, 2)
	m := s.Map("double", func(v float64) float64 { return v * 2 })
	if m.Points[1].V != 4 || m.Name != "double" {
		t.Errorf("Map result: %+v", m)
	}
	sh := s.Shift(100)
	if sh.Points[0].T != 100 || sh.Points[1].T != 101 {
		t.Errorf("Shift result: %+v", sh.Points)
	}
	// Original untouched.
	if s.Points[0].T != 0 || s.Points[1].V != 2 {
		t.Error("Map/Shift mutated the source")
	}
}

func TestSub(t *testing.T) {
	a := New("a")
	a.Add(0, 10)
	a.Add(10, 20)
	b := New("b")
	b.Add(0, 1)
	b.Add(10, 2)
	d, err := Sub("a-b", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Points[0].V != 9 || d.Points[1].V != 18 {
		t.Errorf("Sub = %+v", d.Points)
	}
	if _, err := Sub("bad", a, New("empty")); err == nil {
		t.Error("Sub with empty b should fail")
	}
}

func TestResample(t *testing.T) {
	s := New("x")
	s.Add(0, 0)
	s.Add(4, 8)
	r, err := s.Resample(4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 5 {
		t.Fatalf("resampled len = %d", r.Len())
	}
	for i, p := range r.Points {
		want := float64(i) * 2
		if math.Abs(p.V-want) > 1e-12 {
			t.Errorf("point %d = %v, want %v", i, p.V, want)
		}
	}
	if _, err := New("e").Resample(4); err == nil {
		t.Error("Resample empty should fail")
	}
	if _, err := s.Resample(0); err == nil {
		t.Error("Resample(0) should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := New("delta_ns")
	s.Add(0, 0.5)
	s.Add(1800, 1.25)
	s.Add(3600, 2.125)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "delta_ns" || got.Len() != 3 {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range s.Points {
		if got.Points[i] != s.Points[i] {
			t.Errorf("point %d: %+v != %+v", i, got.Points[i], s.Points[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                         // no header
		"t,v\nabc,1\n",             // bad time
		"t,v\n1,abc\n",             // bad value
		"t,v\n1\n",                 // wrong field count
		"t,v\n1,2\nnot,a,number\n", // wrong field count later
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q) should fail", c)
		}
	}
}

func TestAddOrderProperty(t *testing.T) {
	f := func(ts []float64) bool {
		s := New("p")
		for i, tt := range ts {
			if math.IsNaN(tt) || math.IsInf(tt, 0) {
				continue
			}
			s.Add(units.Seconds(tt), float64(i))
		}
		return sort.Float64sAreSorted(s.Times())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAtWithinRangeProperty(t *testing.T) {
	// Interpolation never leaves the [min,max] envelope of the values.
	f := func(vals []float64, q float64) bool {
		if math.IsNaN(q) || math.IsInf(q, 0) {
			return true
		}
		s := New("p")
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(units.Seconds(i), v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if s.Len() == 0 {
			return true
		}
		got, err := s.At(units.Seconds(q))
		return err == nil && got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
