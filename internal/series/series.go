// Package series provides the time-series container shared by the
// measurement harness, the model evaluators and the figure generators.
// A Series is an ordered list of (time, value) samples; the package adds
// the operations the experiments need — evaluation of a model over the
// same time base, alignment, arithmetic, resampling — plus CSV round-trip
// so `cmd/selfheal-fit` can consume externally recorded data.
package series

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"

	"selfheal/internal/units"
)

// Point is a single timestamped sample.
type Point struct {
	T units.Seconds
	V float64
}

// Series is an ordered sequence of samples. Construct with New or by
// appending through Add, which keeps the time axis sorted.
type Series struct {
	Name   string
	Points []Point
}

// New returns an empty named series.
func New(name string) *Series { return &Series{Name: name} }

// FromFunc samples f at n+1 evenly spaced instants across [0, span]
// (inclusive of both endpoints). It panics if n < 1 or span <= 0, which
// indicate programming errors in figure generators.
func FromFunc(name string, span units.Seconds, n int, f func(units.Seconds) float64) *Series {
	if n < 1 || span <= 0 {
		panic("series: FromFunc requires n >= 1 and span > 0")
	}
	s := New(name)
	for i := 0; i <= n; i++ {
		t := span * units.Seconds(float64(i)/float64(n))
		s.Add(t, f(t))
	}
	return s
}

// Add appends a sample, maintaining ascending time order. Samples with
// duplicate timestamps are kept in insertion order (stable).
func (s *Series) Add(t units.Seconds, v float64) {
	p := Point{T: t, V: v}
	n := len(s.Points)
	if n == 0 || s.Points[n-1].T <= t {
		s.Points = append(s.Points, p)
		return
	}
	i := sort.Search(n, func(i int) bool { return s.Points[i].T > t })
	s.Points = append(s.Points, Point{})
	copy(s.Points[i+1:], s.Points[i:])
	s.Points[i] = p
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Times returns the time axis as a float slice (seconds).
func (s *Series) Times() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = float64(p.T)
	}
	return out
}

// Values returns the sample values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Last returns the final sample. ok is false for an empty series.
func (s *Series) Last() (Point, bool) {
	if len(s.Points) == 0 {
		return Point{}, false
	}
	return s.Points[len(s.Points)-1], true
}

// At linearly interpolates the series at time t, clamping to the end
// values outside the sampled range. It returns an error for an empty
// series.
func (s *Series) At(t units.Seconds) (float64, error) {
	n := len(s.Points)
	if n == 0 {
		return 0, errors.New("series: empty")
	}
	if t <= s.Points[0].T {
		return s.Points[0].V, nil
	}
	if t >= s.Points[n-1].T {
		return s.Points[n-1].V, nil
	}
	i := sort.Search(n, func(i int) bool { return s.Points[i].T >= t })
	a, b := s.Points[i-1], s.Points[i]
	if a.T == b.T {
		return b.V, nil
	}
	frac := float64(t-a.T) / float64(b.T-a.T)
	return a.V + frac*(b.V-a.V), nil
}

// Map returns a new series with f applied to every value.
func (s *Series) Map(name string, f func(float64) float64) *Series {
	out := New(name)
	for _, p := range s.Points {
		out.Add(p.T, f(p.V))
	}
	return out
}

// Shift returns a new series with every timestamp offset by dt.
func (s *Series) Shift(dt units.Seconds) *Series {
	out := New(s.Name)
	for _, p := range s.Points {
		out.Add(p.T+dt, p.V)
	}
	return out
}

// Sub returns a − b evaluated on a's time base (b interpolated).
func Sub(name string, a, b *Series) (*Series, error) {
	out := New(name)
	for _, p := range a.Points {
		bv, err := b.At(p.T)
		if err != nil {
			return nil, fmt.Errorf("series: subtracting %q: %w", b.Name, err)
		}
		out.Add(p.T, p.V-bv)
	}
	return out, nil
}

// Resample returns the series re-evaluated at n+1 evenly spaced instants
// across its own time range, by linear interpolation.
func (s *Series) Resample(n int) (*Series, error) {
	if len(s.Points) == 0 {
		return nil, errors.New("series: empty")
	}
	if n < 1 {
		return nil, errors.New("series: Resample requires n >= 1")
	}
	t0 := s.Points[0].T
	t1 := s.Points[len(s.Points)-1].T
	out := New(s.Name)
	for i := 0; i <= n; i++ {
		t := t0 + (t1-t0)*units.Seconds(float64(i)/float64(n))
		v, err := s.At(t)
		if err != nil {
			return nil, err
		}
		out.Add(t, v)
	}
	return out, nil
}

// WriteCSV emits the series as "t_seconds,value" rows with a header.
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_seconds", s.Name}); err != nil {
		return err
	}
	for _, p := range s.Points {
		rec := []string{
			strconv.FormatFloat(float64(p.T), 'g', -1, 64),
			strconv.FormatFloat(p.V, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a two-column CSV written by WriteCSV (or any file with
// a header row and "time,value" records) into a Series named after the
// second column header.
func ReadCSV(r io.Reader) (*Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("series: reading header: %w", err)
	}
	s := New(header[1])
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("series: line %d: %w", line, err)
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("series: line %d: bad time %q: %w", line, rec[0], err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("series: line %d: bad value %q: %w", line, rec[1], err)
		}
		s.Add(units.Seconds(t), v)
	}
	return s, nil
}
