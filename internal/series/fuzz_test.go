package series

import (
	"bytes"
	"math"
	"testing"

	"selfheal/internal/units"
)

// FuzzCSVRoundTrip feeds arbitrary sample pairs through the CSV
// encoder/decoder and requires a lossless round trip with a sorted time
// axis.
func FuzzCSVRoundTrip(f *testing.F) {
	f.Add(0.0, 0.5, 1800.0, 1.25, 3600.0, 2.125)
	f.Add(-5.0, -1e-9, 0.0, 0.0, 1e12, 42.0)
	f.Add(1.5, 2.5, 1.5, 3.5, 1.5, 4.5) // duplicate timestamps
	f.Fuzz(func(t *testing.T, t1, v1, t2, v2, t3, v3 float64) {
		for _, x := range []float64{t1, v1, t2, v2, t3, v3} {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Skip()
			}
		}
		s := New("fuzz")
		s.Add(units.Seconds(t1), v1)
		s.Add(units.Seconds(t2), v2)
		s.Add(units.Seconds(t3), v3)

		var buf bytes.Buffer
		if err := s.WriteCSV(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Len() != s.Len() {
			t.Fatalf("length changed: %d -> %d", s.Len(), got.Len())
		}
		for i := range s.Points {
			if got.Points[i] != s.Points[i] {
				t.Fatalf("point %d: %+v != %+v", i, got.Points[i], s.Points[i])
			}
		}
	})
}
