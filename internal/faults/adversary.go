// Adversary is the domain-fault half of the chaos harness: where the
// Injector breaks infrastructure (latency, 500s, torn writes), the
// Adversary breaks *chips* — a seeded wearout red team that picks
// victim chips and drives worst-case aging through the engine's own
// condition and schedule events. Like the Injector, it only decides;
// the guard package applies the actions (and reports back the ones a
// quarantine blocked), so a run is reproducible from its seed.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// AdversaryActionKind classifies one red-team move.
type AdversaryActionKind uint8

const (
	// AdvStress drives the victim to dc-stress at the attack
	// temperature and voltage. It both opens the attack and implements
	// sleep-window denial: re-asserted over a sleep phase it yanks the
	// chip back under worst-case stress.
	AdvStress AdversaryActionKind = iota
	// AdvCancel cancels the victim's stress/sleep schedule —
	// cancellation spam that strips any protective circadian rhythm so
	// the chip never reaches a recovery window on its own.
	AdvCancel
)

// String names the action kind for logs and alerts.
func (k AdversaryActionKind) String() string {
	if k == AdvCancel {
		return "cancel"
	}
	return "stress"
}

// AdversaryAction is one decided move against one victim chip.
type AdversaryAction struct {
	Epoch uint64
	Chip  string
	Kind  AdversaryActionKind
}

// AdversaryConfig parameterizes the red team. The zero config is
// inactive; NewAdversary fills attack-condition defaults (110C, 1.32V,
// duty 1 — the engine's worst case) when victims are requested.
type AdversaryConfig struct {
	// Seed fixes victim choice and the per-epoch action stream.
	Seed uint64
	// Victims is how many chips to target; 0 disables the adversary.
	Victims int
	// TempC and Vdd are the attack stress condition (defaults 110, 1.32).
	TempC float64
	Vdd   float64
	// Duty is the attack duty cycle (default 1: dc-stress).
	Duty float64
	// Start is the epoch the attack opens at (stress + cancel on every
	// victim); earlier epochs draw no actions.
	Start uint64
	// CancelP is the per-victim per-epoch probability of schedule-
	// cancellation spam after the attack opens.
	CancelP float64
	// DenyP is the per-victim per-epoch probability of sleep-window
	// denial (re-asserting dc-stress) after the attack opens.
	DenyP float64
}

// Active reports whether the config attacks anything at all.
func (c AdversaryConfig) Active() bool { return c.Victims > 0 }

func (c AdversaryConfig) validate() error {
	if c.Victims < 0 {
		return fmt.Errorf("faults: adversary victims must be ≥ 0, got %d", c.Victims)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"cancel_p", c.CancelP}, {"deny_p", c.DenyP}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: adversary %s must be in [0,1], got %v", p.name, p.v)
		}
	}
	if c.Duty < 0 || c.Duty > 1 {
		return fmt.Errorf("faults: adversary duty must be in [0,1], got %v", c.Duty)
	}
	return nil
}

// ParseAdversary parses the -adversary CLI spec: comma-separated
// key=value pairs with keys seed, victims, temp_c, vdd, duty, start,
// cancel_p and deny_p, e.g.
//
//	seed=7,victims=4,temp_c=110,vdd=1.32,start=20,cancel_p=0.5,deny_p=0.5
func ParseAdversary(spec string) (AdversaryConfig, error) {
	var cfg AdversaryConfig
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return AdversaryConfig{}, fmt.Errorf("faults: bad adversary spec entry %q (want key=value)", kv)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(val, 10, 64)
		case "victims":
			cfg.Victims, err = strconv.Atoi(val)
		case "temp_c":
			cfg.TempC, err = strconv.ParseFloat(val, 64)
		case "vdd":
			cfg.Vdd, err = strconv.ParseFloat(val, 64)
		case "duty":
			cfg.Duty, err = strconv.ParseFloat(val, 64)
		case "start":
			cfg.Start, err = strconv.ParseUint(val, 10, 64)
		case "cancel_p":
			cfg.CancelP, err = strconv.ParseFloat(val, 64)
		case "deny_p":
			cfg.DenyP, err = strconv.ParseFloat(val, 64)
		default:
			return AdversaryConfig{}, fmt.Errorf("faults: unknown adversary spec key %q", key)
		}
		if err != nil {
			return AdversaryConfig{}, fmt.Errorf("faults: adversary spec %s: %w", key, err)
		}
	}
	if err := cfg.validate(); err != nil {
		return AdversaryConfig{}, err
	}
	return cfg, nil
}

// String re-emits the config in ParseAdversary's grammar, mirroring
// Config.String: ParseAdversary(c.String()) reproduces c for any valid
// config, and the zero config renders as "".
func (c AdversaryConfig) String() string {
	var parts []string
	emit := func(key, val string) { parts = append(parts, key+"="+val) }
	if c.Seed != 0 {
		emit("seed", strconv.FormatUint(c.Seed, 10))
	}
	if c.Victims != 0 {
		emit("victims", strconv.Itoa(c.Victims))
	}
	if c.TempC != 0 {
		emit("temp_c", strconv.FormatFloat(c.TempC, 'g', -1, 64))
	}
	if c.Vdd != 0 {
		emit("vdd", strconv.FormatFloat(c.Vdd, 'g', -1, 64))
	}
	if c.Duty != 0 {
		emit("duty", strconv.FormatFloat(c.Duty, 'g', -1, 64))
	}
	if c.Start != 0 {
		emit("start", strconv.FormatUint(c.Start, 10))
	}
	if c.CancelP != 0 {
		emit("cancel_p", strconv.FormatFloat(c.CancelP, 'g', -1, 64))
	}
	if c.DenyP != 0 {
		emit("deny_p", strconv.FormatFloat(c.DenyP, 'g', -1, 64))
	}
	return strings.Join(parts, ",")
}

// AdversaryStats counts the moves actually decided, and how many of
// them the blue team blocked (reported back by the applier).
type AdversaryStats struct {
	VictimsPicked int    `json:"victims_picked"`
	StressActs    uint64 `json:"stress_acts"`
	CancelActs    uint64 `json:"cancel_acts"`
	Blocked       uint64 `json:"blocked"`
}

// Adversary draws red-team actions from a seeded PRNG. Construction
// with the same config and the same call sequence (PickVictims over the
// same id set, Actions per epoch in order) replays the same attack.
type Adversary struct {
	cfg AdversaryConfig

	mu      sync.Mutex
	rng     *rand.Rand
	victims []string
	opened  bool

	stress, cancels, blocked atomic.Uint64
}

// NewAdversary validates the config, fills attack defaults, and returns
// the decision core (nil, nil when the config is inactive).
func NewAdversary(cfg AdversaryConfig) (*Adversary, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if !cfg.Active() {
		return nil, nil
	}
	if cfg.TempC == 0 {
		cfg.TempC = 110
	}
	if cfg.Vdd == 0 {
		cfg.Vdd = 1.32
	}
	if cfg.Duty == 0 {
		cfg.Duty = 1
	}
	return &Adversary{cfg: cfg, rng: rand.New(rand.NewSource(int64(cfg.Seed)))}, nil
}

// Config returns the (default-filled) attack configuration; the applier
// reads the stress condition from it. A nil adversary is inactive.
func (a *Adversary) Config() AdversaryConfig {
	if a == nil {
		return AdversaryConfig{}
	}
	return a.cfg
}

// PickVictims chooses the victim set from the candidate ids: a seeded
// shuffle over the sorted candidates, so the same fleet and seed always
// condemn the same chips. Calling it again re-picks (e.g. after fleet
// churn); actions only ever target the latest set.
func (a *Adversary) PickVictims(ids []string) []string {
	if a == nil || len(ids) == 0 {
		return nil
	}
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rng.Shuffle(len(sorted), func(i, j int) { sorted[i], sorted[j] = sorted[j], sorted[i] })
	n := a.cfg.Victims
	if n > len(sorted) {
		n = len(sorted)
	}
	a.victims = append([]string(nil), sorted[:n]...)
	sort.Strings(a.victims)
	return append([]string(nil), a.victims...)
}

// Victims returns a copy of the current victim set (sorted).
func (a *Adversary) Victims() []string {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.victims...)
}

// Actions draws the red-team moves for one epoch. Before the start
// epoch it returns nil. At the start epoch the attack opens: every
// victim gets dc-stress plus cancellation of any protective schedule.
// After that, each epoch draws per-victim cancellation spam (CancelP)
// and sleep-window denial (DenyP, re-asserted stress).
func (a *Adversary) Actions(epoch uint64) []AdversaryAction {
	if a == nil || epoch < a.cfg.Start {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var acts []AdversaryAction
	add := func(chip string, kind AdversaryActionKind) {
		acts = append(acts, AdversaryAction{Epoch: epoch, Chip: chip, Kind: kind})
		if kind == AdvCancel {
			a.cancels.Add(1)
		} else {
			a.stress.Add(1)
		}
	}
	if !a.opened {
		a.opened = true
		for _, v := range a.victims {
			add(v, AdvStress)
			add(v, AdvCancel)
		}
		return acts
	}
	for _, v := range a.victims {
		if a.cfg.CancelP > 0 && a.rng.Float64() < a.cfg.CancelP {
			add(v, AdvCancel)
		}
		if a.cfg.DenyP > 0 && a.rng.Float64() < a.cfg.DenyP {
			add(v, AdvStress)
		}
	}
	return acts
}

// RecordBlocked is how the applier reports actions the blue team's
// quarantine refused — the adversary decides, the guard applies, and
// blocked moves still count toward the attack narrative.
func (a *Adversary) RecordBlocked(n int) {
	if a == nil || n <= 0 {
		return
	}
	a.blocked.Add(uint64(n))
}

// Stats snapshots the decision counters.
func (a *Adversary) Stats() AdversaryStats {
	if a == nil {
		return AdversaryStats{}
	}
	a.mu.Lock()
	picked := len(a.victims)
	a.mu.Unlock()
	return AdversaryStats{
		VictimsPicked: picked,
		StressActs:    a.stress.Load(),
		CancelActs:    a.cancels.Load(),
		Blocked:       a.blocked.Load(),
	}
}
