package faults

import (
	"errors"
	"testing"
	"time"
)

func TestParseConfigNetModes(t *testing.T) {
	cases := []struct {
		spec    string
		mode    NetMode
		latency time.Duration
		n       int
	}{
		{"net=drop", NetDrop, 0, 0},
		{"net=drop:5", NetDrop, 0, 5},
		{"net=partition", NetPartition, 0, 0},
		{"net=partition:3", NetPartition, 0, 3},
		{"net=delay", NetDelay, 0, 0}, // latency defaults at New()
		{"net=delay:50ms", NetDelay, 50 * time.Millisecond, 0},
		{"net=delay:50ms:7", NetDelay, 50 * time.Millisecond, 7},
	}
	for _, tc := range cases {
		cfg, err := ParseConfig(tc.spec)
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", tc.spec, err)
		}
		if cfg.Net != tc.mode || cfg.NetLatency != tc.latency || cfg.NetN != tc.n {
			t.Fatalf("ParseConfig(%q) = %+v", tc.spec, cfg)
		}
		if !cfg.Active() {
			t.Fatalf("%q not Active", tc.spec)
		}
		// String must re-emit a spec that parses back to the same config.
		re, err := ParseConfig(cfg.String())
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", cfg.String(), tc.spec, err)
		}
		if re != cfg {
			t.Fatalf("round trip %q -> %q -> %+v != %+v", tc.spec, cfg.String(), re, cfg)
		}
	}
	for _, bad := range []string{
		"net=flood", "net=drop:-1", "net=drop:x", "net=delay:abc",
		"net=drop:5:6", "net=delay:50ms:2:9",
	} {
		if _, err := ParseConfig(bad); err == nil {
			t.Fatalf("ParseConfig(%q) accepted", bad)
		}
	}
}

func TestNetFaultCountsDownAndRecovers(t *testing.T) {
	in, err := New(Config{Net: NetDrop, NetN: 2})
	if err != nil {
		t.Fatal(err)
	}
	hook := in.ReplSendHook()
	for i := 0; i < 2; i++ {
		drop, _, herr := hook(100)
		if !drop || herr != nil {
			t.Fatalf("frame %d: drop=%v err=%v, want dropped", i, drop, herr)
		}
	}
	// Budget exhausted: the link heals.
	for i := 0; i < 5; i++ {
		drop, delay, herr := hook(100)
		if drop || delay != 0 || herr != nil {
			t.Fatalf("post-recovery frame %d faulted: drop=%v delay=%v err=%v", i, drop, delay, herr)
		}
	}
	if st := in.Stats(); st.NetDrops != 2 {
		t.Fatalf("NetDrops = %d, want 2", st.NetDrops)
	}
}

func TestNetPartitionAndDelay(t *testing.T) {
	in, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	hook := in.ReplSendHook()
	in.SetNetFault(NetPartition, 0, 1)
	if _, _, herr := hook(1); !errors.Is(herr, ErrInjected) {
		t.Fatalf("partition: err = %v, want ErrInjected", herr)
	}
	if _, _, herr := hook(1); herr != nil {
		t.Fatalf("partition after budget: %v", herr)
	}
	in.SetNetFault(NetDelay, 5*time.Millisecond, 0)
	for i := 0; i < 3; i++ {
		drop, delay, herr := hook(1)
		if drop || herr != nil || delay != 5*time.Millisecond {
			t.Fatalf("delay frame %d: drop=%v delay=%v err=%v", i, drop, delay, herr)
		}
	}
	in.SetNetFault(NetNone, 0, 0)
	if _, delay, _ := hook(1); delay != 0 {
		t.Fatal("cleared net fault still delaying")
	}
	st := in.Stats()
	if st.NetPartitions != 1 || st.NetDelays != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNetFaultDisabledInjectorInert(t *testing.T) {
	in, err := New(Config{Net: NetDrop})
	if err != nil {
		t.Fatal(err)
	}
	in.SetEnabled(false)
	if drop, _, herr := in.ReplSendHook()(1); drop || herr != nil {
		t.Fatal("disabled injector still injecting net faults")
	}
	var nilIn *Injector
	if drop, delay, herr := nilIn.ReplSendHook()(1); drop || delay != 0 || herr != nil {
		t.Fatal("nil injector not inert")
	}
}
