package faults

import (
	"errors"
	"testing"
	"time"
)

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig("seed=7,latency_p=0.2,latency=50ms,error_p=0.05,panic_p=0.01,partial_p=0.1")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, LatencyP: 0.2, Latency: 50 * time.Millisecond, ErrorP: 0.05, PanicP: 0.01, PartialP: 0.1}
	if cfg != want {
		t.Fatalf("parsed %+v, want %+v", cfg, want)
	}
	if !cfg.Active() {
		t.Fatal("parsed config reports inactive")
	}
	if cfg, err := ParseConfig("  "); err != nil || cfg.Active() {
		t.Fatalf("blank spec: cfg=%+v err=%v", cfg, err)
	}
	for _, bad := range []string{"seed", "bogus=1", "error_p=2", "latency=fast", "panic_p=-0.1"} {
		if _, err := ParseConfig(bad); err == nil {
			t.Errorf("ParseConfig(%q) accepted", bad)
		}
	}
}

func TestDeterministicDecisionStream(t *testing.T) {
	cfg := Config{Seed: 42, LatencyP: 0.5, Latency: time.Millisecond, ErrorP: 0.3, PanicP: 0.2}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(cfg)
	for i := 0; i < 200; i++ {
		da, db := a.Request(), b.Request()
		if da != db {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, da, db)
		}
	}
}

func TestProbabilityEdges(t *testing.T) {
	never, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if d := never.Request(); d != (Decision{}) {
			t.Fatalf("zero-probability injector decided %+v", d)
		}
	}
	always, err := New(Config{Seed: 1, ErrorP: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if d := always.Request(); !d.Err {
			t.Fatal("error_p=1 produced a clean request")
		}
	}
	if _, err := New(Config{ErrorP: 1.5}); err == nil {
		t.Fatal("New accepted error_p > 1")
	}
}

func TestDisabledInjectorIsClean(t *testing.T) {
	in, err := New(Config{Seed: 1, ErrorP: 1, PanicP: 1, PartialP: 1})
	if err != nil {
		t.Fatal(err)
	}
	in.SetEnabled(false)
	if d := in.Request(); d != (Decision{}) {
		t.Fatalf("disabled injector decided %+v", d)
	}
	if d := in.Write(100); d.Err || d.Keep != -1 {
		t.Fatalf("disabled injector write decision %+v", d)
	}
	var nilIn *Injector
	if nilIn.Enabled() || nilIn.Request() != (Decision{}) {
		t.Fatal("nil injector is not inert")
	}
}

func TestJournalHookTearsWrites(t *testing.T) {
	in, err := New(Config{Seed: 3, PartialP: 1})
	if err != nil {
		t.Fatal(err)
	}
	hook := in.JournalHook()
	record := []byte(`{"seq":1,"op":"stress","id":"c0"}` + "\n")
	b, err := hook("stress", record)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write error = %v, want ErrInjected", err)
	}
	if len(b) == 0 || len(b) >= len(record) {
		t.Fatalf("torn write kept %d of %d bytes, want a strict non-empty prefix", len(b), len(record))
	}
	if st := in.Stats(); st.PartialWrites == 0 {
		t.Fatalf("stats = %+v, want partial writes counted", st)
	}
}
