package faults

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig("seed=7,latency_p=0.2,latency=50ms,error_p=0.05,panic_p=0.01,partial_p=0.1")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, LatencyP: 0.2, Latency: 50 * time.Millisecond, ErrorP: 0.05, PanicP: 0.01, PartialP: 0.1}
	if cfg != want {
		t.Fatalf("parsed %+v, want %+v", cfg, want)
	}
	if !cfg.Active() {
		t.Fatal("parsed config reports inactive")
	}
	if cfg, err := ParseConfig("  "); err != nil || cfg.Active() {
		t.Fatalf("blank spec: cfg=%+v err=%v", cfg, err)
	}
	for _, bad := range []string{"seed", "bogus=1", "error_p=2", "latency=fast", "panic_p=-0.1"} {
		if _, err := ParseConfig(bad); err == nil {
			t.Errorf("ParseConfig(%q) accepted", bad)
		}
	}
}

func TestDeterministicDecisionStream(t *testing.T) {
	cfg := Config{Seed: 42, LatencyP: 0.5, Latency: time.Millisecond, ErrorP: 0.3, PanicP: 0.2}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(cfg)
	for i := 0; i < 200; i++ {
		da, db := a.Request(), b.Request()
		if da != db {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, da, db)
		}
	}
}

func TestProbabilityEdges(t *testing.T) {
	never, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if d := never.Request(); d != (Decision{}) {
			t.Fatalf("zero-probability injector decided %+v", d)
		}
	}
	always, err := New(Config{Seed: 1, ErrorP: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if d := always.Request(); !d.Err {
			t.Fatal("error_p=1 produced a clean request")
		}
	}
	if _, err := New(Config{ErrorP: 1.5}); err == nil {
		t.Fatal("New accepted error_p > 1")
	}
}

func TestDisabledInjectorIsClean(t *testing.T) {
	in, err := New(Config{Seed: 1, ErrorP: 1, PanicP: 1, PartialP: 1})
	if err != nil {
		t.Fatal(err)
	}
	in.SetEnabled(false)
	if d := in.Request(); d != (Decision{}) {
		t.Fatalf("disabled injector decided %+v", d)
	}
	if d := in.Write(100); d.Err || d.Keep != -1 {
		t.Fatalf("disabled injector write decision %+v", d)
	}
	var nilIn *Injector
	if nilIn.Enabled() || nilIn.Request() != (Decision{}) {
		t.Fatal("nil injector is not inert")
	}
}

func TestJournalHookTearsWrites(t *testing.T) {
	in, err := New(Config{Seed: 3, PartialP: 1})
	if err != nil {
		t.Fatal(err)
	}
	hook := in.JournalHook()
	record := []byte(`{"seq":1,"op":"stress","id":"c0"}` + "\n")
	b, err := hook("stress", record)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write error = %v, want ErrInjected", err)
	}
	if len(b) == 0 || len(b) >= len(record) {
		t.Fatalf("torn write kept %d of %d bytes, want a strict non-empty prefix", len(b), len(record))
	}
	if st := in.Stats(); st.PartialWrites == 0 {
		t.Fatalf("stats = %+v, want partial writes counted", st)
	}
}

func TestParseConfigDiskModes(t *testing.T) {
	cfg, err := ParseConfig("seed=9,disk=fail-fsync:3")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Disk != DiskFailFsync || cfg.DiskN != 3 {
		t.Fatalf("parsed %+v, want disk=fail-fsync n=3", cfg)
	}
	if !cfg.Active() {
		t.Fatal("disk-only spec reports inactive")
	}
	if cfg, err := ParseConfig("seed=1,disk=corrupt-on-write"); err != nil || cfg.Disk != DiskCorrupt || cfg.DiskN != 0 {
		t.Fatalf("unbounded corrupt mode: cfg=%+v err=%v", cfg, err)
	}
	for _, bad := range []string{"disk=melt", "disk=fail-fsync:x", "disk=fail-append:-2"} {
		if _, err := ParseConfig(bad); err == nil {
			t.Errorf("ParseConfig(%q) accepted", bad)
		}
	}
}

// TestDiskFailAppendCountsDownAndRecovers: disk=fail-append:2 fails
// exactly two appends, then the disk "recovers" and writes flow again
// — the deterministic recover-after-N contract.
func TestDiskFailAppendCountsDownAndRecovers(t *testing.T) {
	in, err := New(Config{Seed: 1, Disk: DiskFailAppend, DiskN: 2})
	if err != nil {
		t.Fatal(err)
	}
	hook := in.JournalHook()
	record := []byte(`{"seq":1,"op":"stress","id":"c0"}` + "\n")
	for i := 0; i < 2; i++ {
		if _, err := hook("stress", record); !errors.Is(err, ErrInjected) {
			t.Fatalf("append %d: err = %v, want ErrInjected", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		b, err := hook("stress", record)
		if err != nil || string(b) != string(record) {
			t.Fatalf("post-recovery append %d altered: err=%v", i, err)
		}
	}
	if st := in.Stats(); st.DiskFaults != 2 {
		t.Fatalf("disk faults = %d, want 2", st.DiskFaults)
	}
}

func TestDiskFailFsync(t *testing.T) {
	in, err := New(Config{Seed: 1, Disk: DiskFailFsync, DiskN: 1})
	if err != nil {
		t.Fatal(err)
	}
	sync := in.JournalSyncHook()
	if err := sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("first fsync err = %v, want ErrInjected", err)
	}
	if err := sync(); err != nil {
		t.Fatalf("fsync after countdown: %v", err)
	}
	// SetDiskFault re-arms at runtime (how tests drive degraded mode).
	in.SetDiskFault(DiskFailFsync, 0)
	for i := 0; i < 3; i++ {
		if err := sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("re-armed fsync %d: err = %v", i, err)
		}
	}
	in.SetDiskFault(DiskNone, 0)
	if err := sync(); err != nil {
		t.Fatalf("fsync after clearing: %v", err)
	}
}

// TestDiskCorruptOnWrite: corrupt-on-write returns nil error (the
// write "succeeds") but the bytes differ from what was handed in,
// keep the same length, and never gain a newline — silent bit rot for
// the checksum layer to catch on replay.
func TestDiskCorruptOnWrite(t *testing.T) {
	in, err := New(Config{Seed: 1, Disk: DiskCorrupt, DiskN: 0})
	if err != nil {
		t.Fatal(err)
	}
	hook := in.JournalHook()
	record := []byte(`{"seq":1,"op":"stress","id":"c0"}` + "\tc1a2b3c4d\n")
	for i := 0; i < 4; i++ {
		b, err := hook("stress", append([]byte(nil), record...))
		if err != nil {
			t.Fatalf("corrupt-on-write %d surfaced error %v, want silent corruption", i, err)
		}
		if len(b) != len(record) {
			t.Fatalf("corrupted length %d, want %d", len(b), len(record))
		}
		if string(b) == string(record) {
			t.Fatalf("write %d not corrupted", i)
		}
		if bytes.Count(b, []byte("\n")) != 1 || b[len(b)-1] != '\n' {
			t.Fatalf("corruption minted or moved a newline: %q", b)
		}
	}
	if st := in.Stats(); st.DiskFaults != 4 {
		t.Fatalf("disk faults = %d, want 4", st.DiskFaults)
	}
}

func TestDiskFaultDisabledInjectorInert(t *testing.T) {
	in, err := New(Config{Seed: 1, Disk: DiskFailAppend, DiskN: 0})
	if err != nil {
		t.Fatal(err)
	}
	in.SetEnabled(false)
	record := []byte(`{"seq":1,"op":"stress","id":"c0"}` + "\n")
	if b, err := in.JournalHook()("stress", record); err != nil || string(b) != string(record) {
		t.Fatalf("disabled injector touched the write: err=%v", err)
	}
	if err := in.JournalSyncHook()(); err != nil {
		t.Fatalf("disabled injector failed fsync: %v", err)
	}
	var nilIn *Injector
	if err := nilIn.JournalSyncHook()(); err != nil {
		t.Fatalf("nil injector sync hook: %v", err)
	}
}
