package faults

import "testing"

// FuzzConfigRoundTrip checks that String is a total inverse of
// ParseConfig on the accepted spec language: any spec ParseConfig
// accepts must re-emit to a spec that parses back to the identical
// config — otherwise a logged -faults line could replay a different
// chaos run than the one it claims to describe.
func FuzzConfigRoundTrip(f *testing.F) {
	f.Add("")
	f.Add("seed=7")
	f.Add("seed=7,latency_p=0.2,latency=50ms,error_p=0.05,panic_p=0.01,partial_p=0.1")
	f.Add("disk=fail-fsync:3")
	f.Add("disk=corrupt-on-write")
	f.Add("latency_p=1e-3,latency=1h30m")
	f.Add("seed=18446744073709551615,disk=fail-append:2147483647")
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseConfig(spec)
		if err != nil {
			return
		}
		emitted := cfg.String()
		cfg2, err := ParseConfig(emitted)
		if err != nil {
			t.Fatalf("String of parsed %q emitted unparseable %q: %v", spec, emitted, err)
		}
		if cfg != cfg2 {
			t.Fatalf("round trip mutated config: %q -> %+v -> %q -> %+v", spec, cfg, emitted, cfg2)
		}
	})
}

// FuzzAdversaryRoundTrip is the same property for the -adversary spec.
func FuzzAdversaryRoundTrip(f *testing.F) {
	f.Add("")
	f.Add("seed=7,victims=4")
	f.Add("seed=7,victims=4,temp_c=110,vdd=1.32,start=20,cancel_p=0.5,deny_p=0.5")
	f.Add("victims=1,duty=0.5,deny_p=1")
	f.Add("temp_c=-40,vdd=-0.3")
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseAdversary(spec)
		if err != nil {
			return
		}
		emitted := cfg.String()
		cfg2, err := ParseAdversary(emitted)
		if err != nil {
			t.Fatalf("String of parsed %q emitted unparseable %q: %v", spec, emitted, err)
		}
		if cfg != cfg2 {
			t.Fatalf("round trip mutated config: %q -> %+v -> %q -> %+v", spec, cfg, emitted, cfg2)
		}
	})
}
