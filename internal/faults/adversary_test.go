package faults

import (
	"reflect"
	"testing"
)

func TestConfigStringRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"",
		"seed=9",
		"seed=7,latency_p=0.2,latency=50ms,error_p=0.05,panic_p=0.01,partial_p=0.1",
		"disk=fail-append",
		"disk=fail-fsync:3",
		"latency_p=0.001,latency=1h2m3s,disk=corrupt-on-write:1",
	} {
		cfg, err := ParseConfig(spec)
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", spec, err)
		}
		cfg2, err := ParseConfig(cfg.String())
		if err != nil {
			t.Fatalf("reparse String of %q (%q): %v", spec, cfg.String(), err)
		}
		if cfg != cfg2 {
			t.Errorf("round trip %q: %+v != %+v", spec, cfg, cfg2)
		}
	}
}

func TestAdversaryDeterministic(t *testing.T) {
	ids := []string{"c07", "c03", "c09", "c01", "c05", "c02"}
	mk := func() *Adversary {
		a, err := NewAdversary(AdversaryConfig{Seed: 42, Victims: 2, Start: 3, CancelP: 0.5, DenyP: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		a.PickVictims(ids)
		return a
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a.Victims(), b.Victims()) {
		t.Fatalf("same seed picked different victims: %v vs %v", a.Victims(), b.Victims())
	}
	if len(a.Victims()) != 2 {
		t.Fatalf("picked %d victims, want 2", len(a.Victims()))
	}
	for epoch := uint64(0); epoch < 20; epoch++ {
		av, bv := a.Actions(epoch), b.Actions(epoch)
		if !reflect.DeepEqual(av, bv) {
			t.Fatalf("epoch %d: same seed drew different actions: %v vs %v", epoch, av, bv)
		}
		if epoch < 3 && av != nil {
			t.Fatalf("epoch %d is before start, but drew %v", epoch, av)
		}
		if epoch == 3 && len(av) != 4 {
			t.Fatalf("attack opening should stress+cancel both victims, got %v", av)
		}
	}
	st := a.Stats()
	if st.VictimsPicked != 2 || st.StressActs == 0 || st.CancelActs == 0 {
		t.Fatalf("unexpected stats after attack: %+v", st)
	}
	a.RecordBlocked(3)
	if got := a.Stats().Blocked; got != 3 {
		t.Fatalf("Blocked = %d, want 3", got)
	}
}

func TestAdversaryInactive(t *testing.T) {
	a, err := NewAdversary(AdversaryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a != nil {
		t.Fatalf("inactive config built a live adversary")
	}
	// nil receivers are inert, like the Injector.
	if a.Actions(5) != nil || a.Victims() != nil || a.PickVictims([]string{"x"}) != nil {
		t.Fatal("nil adversary acted")
	}
	a.RecordBlocked(1)
	if a.Stats() != (AdversaryStats{}) {
		t.Fatal("nil adversary has stats")
	}
	if _, err := NewAdversary(AdversaryConfig{Victims: 1, CancelP: 1.5}); err == nil {
		t.Fatal("want error for cancel_p out of range")
	}
}
