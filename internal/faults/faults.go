// Package faults is a seeded, deterministic fault injector for chaos
// testing the fleet service. It makes two kinds of decisions: per-HTTP-
// request (added latency, an injected 500, a panic) and per-journal-
// write (latency, a failed write, a torn partial write). The decisions
// come from one seeded PRNG, so a chaos run is reproducible: the same
// seed and the same sequence of draws yield the same faults.
//
// The injector only decides; the caller applies. The serve package
// turns Request decisions into slept latency, JSON 500s and recovered
// panics, and the journal applies Write decisions via its write hook.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected marks a deliberately injected failure, so handlers and
// the journal can classify it (and tests can assert on it).
var ErrInjected = errors.New("faults: injected error")

// DiskMode selects a deterministic storage fault. Unlike the seeded
// probabilistic faults, disk modes fire on *every* matching operation
// until cleared (or until a recover-after-N budget runs out), which is
// what acceptance tests for degraded mode need: the transition must
// happen on a known operation, not eventually.
type DiskMode string

const (
	// DiskNone injects no disk faults.
	DiskNone DiskMode = ""
	// DiskFailAppend fails every journal record write cleanly (nothing
	// reaches the disk), like a full disk returning ENOSPC.
	DiskFailAppend DiskMode = "fail-append"
	// DiskFailFsync lets record writes through but fails the fsync —
	// the write-back failure shape of a dying device (EIO).
	DiskFailFsync DiskMode = "fail-fsync"
	// DiskCorrupt flips a byte mid-record and reports success: silent
	// bit rot, detected only by the journal's checksums on the next
	// open.
	DiskCorrupt DiskMode = "corrupt-on-write"
)

func parseDiskMode(s string) (DiskMode, error) {
	switch m := DiskMode(s); m {
	case DiskNone, DiskFailAppend, DiskFailFsync, DiskCorrupt:
		return m, nil
	default:
		return DiskNone, fmt.Errorf("faults: unknown disk mode %q (want fail-append, fail-fsync or corrupt-on-write)", s)
	}
}

// NetMode selects a deterministic fault on the replication link. Like
// disk modes these fire on every matching send until cleared or until
// a recover-after-N budget runs out — chaos tests for follower lag,
// partition, and reconnect need the transition on a known frame, not
// eventually.
type NetMode string

const (
	// NetNone injects no network faults.
	NetNone NetMode = ""
	// NetDrop silently discards outbound tail frames: the follower sees
	// a sequence gap and resyncs.
	NetDrop NetMode = "drop"
	// NetDelay delays every outbound tail frame by the configured
	// latency: follower lag without loss.
	NetDelay NetMode = "delay"
	// NetPartition fails outbound sends outright, cutting the
	// connection: the follower reconnects (and the primary degrades in
	// semisync until it does).
	NetPartition NetMode = "partition"
)

func parseNetMode(s string) (NetMode, error) {
	switch m := NetMode(s); m {
	case NetNone, NetDrop, NetDelay, NetPartition:
		return m, nil
	default:
		return NetNone, fmt.Errorf("faults: unknown net mode %q (want drop, delay or partition)", s)
	}
}

// Config sets the independent per-event probabilities (all in [0,1])
// and the injected latency ceiling.
type Config struct {
	// Seed fixes the decision stream; the same seed replays the same
	// faults for the same sequence of draws.
	Seed uint64
	// LatencyP is the probability of injecting latency, drawn uniformly
	// from (0, Latency].
	LatencyP float64
	// Latency is the injected latency ceiling (default 25 ms when
	// LatencyP > 0 and no ceiling is given).
	Latency time.Duration
	// ErrorP is the probability of failing the event with ErrInjected.
	ErrorP float64
	// PanicP is the probability of panicking an HTTP request (journal
	// writes fail with ErrInjected instead — a storage layer reports
	// errors, it does not panic).
	PanicP float64
	// PartialP is the probability that a failed journal write is torn:
	// a strict prefix of the record reaches the disk before the error.
	PartialP float64
	// Disk arms a deterministic disk-fault mode at construction; see
	// SetDiskFault.
	Disk DiskMode
	// DiskN bounds the armed disk fault: after DiskN injections the
	// mode auto-clears (recover-after-N). Zero or negative means the
	// fault persists until SetDiskFault clears it.
	DiskN int
	// Net arms a deterministic replication-link fault at construction;
	// see SetNetFault.
	Net NetMode
	// NetLatency is the per-frame delay for the delay mode (default
	// 25 ms when the mode is armed without one).
	NetLatency time.Duration
	// NetN bounds the armed net fault like DiskN bounds Disk.
	NetN int
}

// Active reports whether the config injects anything at all.
func (c Config) Active() bool {
	return c.LatencyP > 0 || c.ErrorP > 0 || c.PanicP > 0 || c.PartialP > 0 ||
		c.Disk != DiskNone || c.Net != NetNone
}

func (c Config) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"latency_p", c.LatencyP}, {"error_p", c.ErrorP},
		{"panic_p", c.PanicP}, {"partial_p", c.PartialP},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s must be in [0,1], got %v", p.name, p.v)
		}
	}
	if c.Latency < 0 {
		return fmt.Errorf("faults: latency must be ≥ 0, got %v", c.Latency)
	}
	if c.NetLatency < 0 {
		return fmt.Errorf("faults: net latency must be ≥ 0, got %v", c.NetLatency)
	}
	if c.NetLatency > 0 && c.Net != NetDelay {
		return fmt.Errorf("faults: net latency set but net mode is %q, not delay", c.Net)
	}
	return nil
}

// ParseConfig parses the CLI spec: comma-separated key=value pairs
// with keys seed, latency_p, latency (a Go duration), error_p,
// panic_p, partial_p and disk (`<mode>` or `<mode>:<n>` for
// recover-after-N), e.g.
//
//	seed=7,latency_p=0.2,latency=50ms,error_p=0.05,panic_p=0.01,partial_p=0.1
//	disk=fail-fsync:3
func ParseConfig(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Config{}, fmt.Errorf("faults: bad spec entry %q (want key=value)", kv)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(val, 10, 64)
		case "latency_p":
			cfg.LatencyP, err = strconv.ParseFloat(val, 64)
		case "latency":
			cfg.Latency, err = time.ParseDuration(val)
		case "error_p":
			cfg.ErrorP, err = strconv.ParseFloat(val, 64)
		case "panic_p":
			cfg.PanicP, err = strconv.ParseFloat(val, 64)
		case "partial_p":
			cfg.PartialP, err = strconv.ParseFloat(val, 64)
		case "disk":
			mode, budget, hasN := strings.Cut(val, ":")
			cfg.Disk, err = parseDiskMode(mode)
			if err == nil && hasN {
				cfg.DiskN, err = strconv.Atoi(budget)
				if err == nil && cfg.DiskN < 0 {
					err = fmt.Errorf("negative recover-after budget %d", cfg.DiskN)
				}
			}
		case "net":
			cfg.Net, cfg.NetLatency, cfg.NetN, err = parseNetSpec(val)
		default:
			return Config{}, fmt.Errorf("faults: unknown spec key %q", key)
		}
		if err != nil {
			return Config{}, fmt.Errorf("faults: spec %s: %w", key, err)
		}
	}
	if err := cfg.validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// parseNetSpec parses the net spec value: `drop[:N]`, `partition[:N]`,
// or `delay:<duration>[:N]` — N is the recover-after budget.
func parseNetSpec(val string) (NetMode, time.Duration, int, error) {
	parts := strings.Split(val, ":")
	mode, err := parseNetMode(parts[0])
	if err != nil {
		return NetNone, 0, 0, err
	}
	var (
		latency time.Duration
		n       int
	)
	rest := parts[1:]
	if mode == NetDelay && len(rest) > 0 {
		if latency, err = time.ParseDuration(rest[0]); err != nil {
			return NetNone, 0, 0, fmt.Errorf("net delay %q: %w", rest[0], err)
		}
		rest = rest[1:]
	}
	if len(rest) > 0 {
		if n, err = strconv.Atoi(rest[0]); err != nil {
			return NetNone, 0, 0, fmt.Errorf("net recover-after budget %q: %w", rest[0], err)
		}
		if n < 0 {
			return NetNone, 0, 0, fmt.Errorf("negative recover-after budget %d", n)
		}
		rest = rest[1:]
	}
	if len(rest) > 0 {
		return NetNone, 0, 0, fmt.Errorf("trailing net spec fields %q", strings.Join(rest, ":"))
	}
	return mode, latency, n, nil
}

// String re-emits the config in ParseConfig's grammar, so a spec can be
// logged and replayed verbatim: ParseConfig(c.String()) reproduces c for
// any valid config (the zero config renders as ""). Keys appear in the
// documented order; zero-valued fields are omitted. A DiskN with no armed
// mode is meaningless and is not emitted.
func (c Config) String() string {
	var parts []string
	emit := func(key, val string) { parts = append(parts, key+"="+val) }
	if c.Seed != 0 {
		emit("seed", strconv.FormatUint(c.Seed, 10))
	}
	if c.LatencyP != 0 {
		emit("latency_p", strconv.FormatFloat(c.LatencyP, 'g', -1, 64))
	}
	if c.Latency != 0 {
		emit("latency", c.Latency.String())
	}
	if c.ErrorP != 0 {
		emit("error_p", strconv.FormatFloat(c.ErrorP, 'g', -1, 64))
	}
	if c.PanicP != 0 {
		emit("panic_p", strconv.FormatFloat(c.PanicP, 'g', -1, 64))
	}
	if c.PartialP != 0 {
		emit("partial_p", strconv.FormatFloat(c.PartialP, 'g', -1, 64))
	}
	if c.Disk != DiskNone {
		v := string(c.Disk)
		if c.DiskN > 0 {
			v += ":" + strconv.Itoa(c.DiskN)
		}
		emit("disk", v)
	}
	if c.Net != NetNone {
		v := string(c.Net)
		// The delay duration is positional, so it must be present
		// whenever a budget follows (delay:0s:3, never delay:3).
		if c.Net == NetDelay && (c.NetLatency > 0 || c.NetN > 0) {
			v += ":" + c.NetLatency.String()
		}
		if c.NetN > 0 {
			v += ":" + strconv.Itoa(c.NetN)
		}
		emit("net", v)
	}
	return strings.Join(parts, ",")
}

// Stats counts the faults actually injected.
type Stats struct {
	Latencies     uint64 `json:"latencies"`
	Errors        uint64 `json:"errors"`
	Panics        uint64 `json:"panics"`
	PartialWrites uint64 `json:"partial_writes"`
	DiskFaults    uint64 `json:"disk_faults"`
	NetDrops      uint64 `json:"net_drops"`
	NetDelays     uint64 `json:"net_delays"`
	NetPartitions uint64 `json:"net_partitions"`
}

// Injector makes fault decisions. A nil *Injector is inert, so callers
// can thread it through unconditionally.
type Injector struct {
	cfg     Config
	enabled atomic.Bool

	mu  sync.Mutex
	rng *rand.Rand

	diskMu        sync.Mutex
	diskMode      DiskMode
	diskRemaining int // >0: injections left before auto-recovery; 0: unlimited

	netMu        sync.Mutex
	netMode      NetMode
	netLatency   time.Duration
	netRemaining int // same recover-after-N countdown as disk

	latencies, errors, panics, partials, disk atomic.Uint64
	netDrops, netDelays, netPartitions        atomic.Uint64
}

// New validates the config and returns an enabled injector.
func New(cfg Config) (*Injector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.LatencyP > 0 && cfg.Latency == 0 {
		cfg.Latency = 25 * time.Millisecond
	}
	if cfg.Net == NetDelay && cfg.NetLatency == 0 {
		cfg.NetLatency = 25 * time.Millisecond
	}
	in := &Injector{cfg: cfg, rng: rand.New(rand.NewSource(int64(cfg.Seed)))}
	in.SetDiskFault(cfg.Disk, cfg.DiskN)
	in.SetNetFault(cfg.Net, cfg.NetLatency, cfg.NetN)
	in.enabled.Store(true)
	return in, nil
}

// SetDiskFault arms (or, with DiskNone, clears) a deterministic disk
// fault. With n > 0 the mode auto-clears after n injections — the
// recover-after-N shape, which lets a test drive "the disk heals on
// its own" without a second control call. n ≤ 0 keeps the fault armed
// until explicitly cleared.
func (in *Injector) SetDiskFault(mode DiskMode, n int) {
	if in == nil {
		return
	}
	in.diskMu.Lock()
	in.diskMode = mode
	if n < 0 {
		n = 0
	}
	in.diskRemaining = n
	in.diskMu.Unlock()
}

// takeDisk consumes one injection of mode if it is armed, handling the
// recover-after-N countdown.
func (in *Injector) takeDisk(mode DiskMode) bool {
	if !in.Enabled() {
		return false
	}
	in.diskMu.Lock()
	defer in.diskMu.Unlock()
	if in.diskMode != mode {
		return false
	}
	if in.diskRemaining > 0 {
		in.diskRemaining--
		if in.diskRemaining == 0 {
			in.diskMode = DiskNone
		}
	}
	in.disk.Add(1)
	return true
}

// SetNetFault arms (or, with NetNone, clears) a deterministic
// replication-link fault. latency applies to the delay mode; n > 0 is
// the recover-after-N budget (the mode auto-clears after n frames),
// n ≤ 0 keeps the fault armed until explicitly cleared.
func (in *Injector) SetNetFault(mode NetMode, latency time.Duration, n int) {
	if in == nil {
		return
	}
	in.netMu.Lock()
	in.netMode = mode
	in.netLatency = latency
	if n < 0 {
		n = 0
	}
	in.netRemaining = n
	in.netMu.Unlock()
}

// takeNet consumes one injection of mode if it is armed, handling the
// recover-after-N countdown.
func (in *Injector) takeNet(mode NetMode) bool {
	if !in.Enabled() {
		return false
	}
	in.netMu.Lock()
	defer in.netMu.Unlock()
	if in.netMode != mode {
		return false
	}
	if in.netRemaining > 0 {
		in.netRemaining--
		if in.netRemaining == 0 {
			in.netMode = NetNone
		}
	}
	return true
}

// ReplSendHook adapts the injector to the replication primary's
// outbound tail-frame seam (repl.SendHook): partition fails the send
// (cutting the connection), drop discards the frame (the follower
// detects the sequence gap and resyncs), delay stalls the frame. The
// decisions are deterministic — armed mode plus countdown, no dice —
// so a chaos test knows exactly which frames were hit.
func (in *Injector) ReplSendHook() func(size int) (drop bool, delay time.Duration, err error) {
	return func(int) (bool, time.Duration, error) {
		if in.takeNet(NetPartition) {
			in.netPartitions.Add(1)
			return false, 0, fmt.Errorf("%w (net: partition)", ErrInjected)
		}
		if in.takeNet(NetDrop) {
			in.netDrops.Add(1)
			return true, 0, nil
		}
		if in.takeNet(NetDelay) {
			in.netDelays.Add(1)
			in.netMu.Lock()
			d := in.netLatency
			in.netMu.Unlock()
			return false, d, nil
		}
		return false, 0, nil
	}
}

// SetEnabled flips injection on or off (off: every decision is clean).
// Chaos tests use it to set up fixtures through a quiet service before
// turning the noise on.
func (in *Injector) SetEnabled(v bool) { in.enabled.Store(v) }

// Enabled reports whether the injector is live.
func (in *Injector) Enabled() bool { return in != nil && in.enabled.Load() }

// Stats snapshots the injected-fault counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{
		Latencies:     in.latencies.Load(),
		Errors:        in.errors.Load(),
		Panics:        in.panics.Load(),
		PartialWrites: in.partials.Load(),
		DiskFaults:    in.disk.Load(),
		NetDrops:      in.netDrops.Load(),
		NetDelays:     in.netDelays.Load(),
		NetPartitions: in.netPartitions.Load(),
	}
}

// Decision is the fault plan for one HTTP request.
type Decision struct {
	Latency time.Duration
	Err     bool
	Panic   bool
}

// Request draws the fault plan for one HTTP request. Panic and error
// are exclusive (panic wins); latency composes with either.
func (in *Injector) Request() Decision {
	if !in.Enabled() {
		return Decision{}
	}
	in.mu.Lock()
	var d Decision
	if in.cfg.LatencyP > 0 && in.rng.Float64() < in.cfg.LatencyP {
		d.Latency = time.Duration(in.rng.Int63n(int64(in.cfg.Latency))) + 1
	}
	switch {
	case in.cfg.PanicP > 0 && in.rng.Float64() < in.cfg.PanicP:
		d.Panic = true
	case in.cfg.ErrorP > 0 && in.rng.Float64() < in.cfg.ErrorP:
		d.Err = true
	}
	in.mu.Unlock()
	if d.Latency > 0 {
		in.latencies.Add(1)
	}
	if d.Panic {
		in.panics.Add(1)
	}
	if d.Err {
		in.errors.Add(1)
	}
	return d
}

// WriteDecision is the fault plan for one journal write. Keep < 0
// means the full record; 0 ≤ Keep < n means a torn write of the first
// Keep bytes (always paired with Err).
type WriteDecision struct {
	Latency time.Duration
	Err     bool
	Keep    int
}

// Write draws the fault plan for one journal write of n bytes.
func (in *Injector) Write(n int) WriteDecision {
	d := WriteDecision{Keep: -1}
	if !in.Enabled() {
		return d
	}
	in.mu.Lock()
	if in.cfg.LatencyP > 0 && in.rng.Float64() < in.cfg.LatencyP {
		d.Latency = time.Duration(in.rng.Int63n(int64(in.cfg.Latency))) + 1
	}
	if in.cfg.ErrorP > 0 && in.rng.Float64() < in.cfg.ErrorP {
		d.Err = true
	}
	if in.cfg.PartialP > 0 && in.rng.Float64() < in.cfg.PartialP {
		d.Err = true
		if n > 1 {
			d.Keep = in.rng.Intn(n-1) + 1 // a strict, non-empty prefix
		} else {
			d.Keep = 0
		}
	}
	in.mu.Unlock()
	if d.Latency > 0 {
		in.latencies.Add(1)
	}
	if d.Keep >= 0 {
		in.partials.Add(1)
	} else if d.Err {
		in.errors.Add(1)
	}
	return d
}

// JournalHook adapts the injector to the journal's write hook. Armed
// disk modes fire first (deterministically): fail-append fails with
// nothing written, corrupt-on-write returns a silently bit-flipped
// line with no error. Otherwise the seeded probabilistic plan applies:
// injected latency is slept, then the write fails cleanly or is torn
// (returning the surviving prefix with the error).
func (in *Injector) JournalHook() func(op string, encoded []byte) ([]byte, error) {
	return func(_ string, encoded []byte) ([]byte, error) {
		if in.takeDisk(DiskFailAppend) {
			return nil, fmt.Errorf("%w (disk: fail-append)", ErrInjected)
		}
		if in.takeDisk(DiskCorrupt) {
			return corruptLine(encoded), nil
		}
		d := in.Write(len(encoded))
		if d.Latency > 0 {
			time.Sleep(d.Latency)
		}
		if !d.Err {
			return encoded, nil
		}
		if d.Keep >= 0 && d.Keep < len(encoded) {
			return encoded[:d.Keep], fmt.Errorf("%w (torn write: %d of %d bytes)", ErrInjected, d.Keep, len(encoded))
		}
		return nil, ErrInjected
	}
}

// JournalSyncHook adapts the injector to the journal's fsync seam:
// with fail-fsync armed the record write succeeds but its durability
// barrier reports EIO-shaped failure.
func (in *Injector) JournalSyncHook() func() error {
	return func() error {
		if in.takeDisk(DiskFailFsync) {
			return fmt.Errorf("%w (disk: fail-fsync)", ErrInjected)
		}
		return nil
	}
}

// corruptLine flips one low bit mid-payload and keeps the length (so
// the write itself looks clean). XOR with 0x01 can never mint a
// newline from a JSON byte, so the damage stays inside the one record.
func corruptLine(encoded []byte) []byte {
	c := make([]byte, len(encoded))
	copy(c, encoded)
	end := len(c)
	if i := strings.LastIndexByte(string(c), '\t'); i > 0 {
		end = i // corrupt the JSON payload, not the checksum suffix
	}
	if end > 0 {
		c[end/2] ^= 0x01
	}
	return c
}
