package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCelsiusKelvinRoundTrip(t *testing.T) {
	cases := []Celsius{-40, 0, 20, 25, 85, 100, 110}
	for _, c := range cases {
		k := c.Kelvin()
		if got := k.Celsius(); math.Abs(float64(got-c)) > 1e-9 {
			t.Errorf("round trip %v -> %v -> %v", c, k, got)
		}
	}
}

func TestKelvinValues(t *testing.T) {
	if got := Celsius(0).Kelvin(); math.Abs(float64(got)-273.15) > 1e-9 {
		t.Errorf("0°C = %v, want 273.15K", got)
	}
	if got := Celsius(110).Kelvin(); math.Abs(float64(got)-383.15) > 1e-9 {
		t.Errorf("110°C = %v, want 383.15K", got)
	}
}

func TestKT(t *testing.T) {
	// Room temperature thermal energy is the canonical ~25.85 meV.
	kt := KT(Celsius(27).Kelvin())
	if math.Abs(kt-0.02585) > 1e-4 {
		t.Errorf("kT(300.15K) = %v, want ~0.02585 eV", kt)
	}
	// kT must increase with temperature (drives acceleration factors).
	if KT(Celsius(110).Kelvin()) <= KT(Celsius(20).Kelvin()) {
		t.Error("kT not monotonic in temperature")
	}
}

func TestKTPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("KT(0) did not panic")
		}
	}()
	KT(0)
}

func TestKTPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("KT(-1) did not panic")
		}
	}()
	KT(-1)
}

func TestDurationConstants(t *testing.T) {
	if Hour != 3600 {
		t.Errorf("Hour = %v", float64(Hour))
	}
	if Day != 86400 {
		t.Errorf("Day = %v", float64(Day))
	}
	if Seconds(7200).Hours() != 2 {
		t.Errorf("7200s = %v hours", Seconds(7200).Hours())
	}
	if Seconds(43200).Days() != 0.5 {
		t.Errorf("43200s = %v days", Seconds(43200).Days())
	}
	if HoursToSeconds(24) != Day {
		t.Errorf("HoursToSeconds(24) = %v", HoursToSeconds(24))
	}
}

func TestStringFormats(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{Celsius(110).String(), "110.0°C"},
		{Kelvin(383.15).String(), "383.15K"},
		{Volt(-0.3).String(), "-0.300V"},
		{Seconds(30).String(), "30.0s"},
		{Seconds(1800).String(), "30.0min"},
		{Seconds(21600).String(), "6.0h"},
		{Seconds(172800).String(), "2.00d"},
		{Hertz(5e6).String(), "5.000MHz"},
		{Hertz(500).String(), "500.0Hz"},
		{Hertz(2.5e9).String(), "2.500GHz"},
		{Hertz(1.2e3).String(), "1.200kHz"},
	}
	for _, tc := range tests {
		if tc.got != tc.want {
			t.Errorf("got %q, want %q", tc.got, tc.want)
		}
	}
}

func TestNegativeDurationString(t *testing.T) {
	// Negative durations should still pick the unit by magnitude.
	if s := Seconds(-7200).String(); !strings.HasPrefix(s, "-2.0") {
		t.Errorf("Seconds(-7200) = %q", s)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		x, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-5, 0, 10, 0},
		{15, 0, 10, 10},
		{0, 0, 10, 0},
		{10, 0, 10, 10},
	}
	for _, tc := range tests {
		if got := Clamp(tc.x, tc.lo, tc.hi); got != tc.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tc.x, tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestClampProperty(t *testing.T) {
	f := func(x, a, b float64) bool {
		if math.IsNaN(x) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		got := Clamp(x, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKelvinConversionProperty(t *testing.T) {
	f := func(c float64) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return true
		}
		cc := Celsius(c)
		back := cc.Kelvin().Celsius()
		return math.Abs(float64(back-cc)) < 1e-6*math.Max(1, math.Abs(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
