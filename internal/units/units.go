// Package units provides the physical quantities and constants used
// throughout the self-healing library: voltages, temperatures, times and
// frequencies, plus the Boltzmann constant and unit conversions.
//
// All quantities are thin named float64 types. They exist to make API
// signatures self-documenting and to prevent the classic Celsius/Kelvin
// and volt/millivolt mix-ups that plague reliability modeling code, while
// still allowing ordinary arithmetic after an explicit conversion.
package units

import (
	"fmt"
	"math"
)

// BoltzmannEV is the Boltzmann constant in electronvolts per kelvin.
// BTI activation energies are conventionally quoted in eV, so working in
// eV/K keeps exp(-E0/kT) terms dimensionless without unit juggling.
const BoltzmannEV = 8.617333262e-5

// ZeroCelsiusK is the kelvin value of 0 °C.
const ZeroCelsiusK = 273.15

// Volt is an electric potential in volts. Negative values are meaningful:
// the accelerated-recovery supply is −0.3 V.
type Volt float64

// Celsius is a temperature on the Celsius scale.
type Celsius float64

// Kelvin is an absolute temperature.
type Kelvin float64

// Seconds is a duration in seconds. The aging models are closed-form in
// time, so a plain float duration is more convenient than time.Duration
// (which would overflow for multi-year lifetimes and force ns rounding).
type Seconds float64

// Hertz is a frequency.
type Hertz float64

// Common time spans used by the experiment schedules.
const (
	Minute Seconds = 60
	Hour   Seconds = 3600
	Day    Seconds = 24 * Hour
	Year   Seconds = 365.25 * Day
)

// Kelvin converts a Celsius temperature to kelvin.
func (c Celsius) Kelvin() Kelvin { return Kelvin(float64(c) + ZeroCelsiusK) }

// Celsius converts a kelvin temperature to Celsius.
func (k Kelvin) Celsius() Celsius { return Celsius(float64(k) - ZeroCelsiusK) }

// String formats the temperature as, e.g., "110.0°C".
func (c Celsius) String() string { return fmt.Sprintf("%.1f°C", float64(c)) }

// String formats the temperature as, e.g., "383.15K".
func (k Kelvin) String() string { return fmt.Sprintf("%.2fK", float64(k)) }

// String formats the voltage as, e.g., "-0.300V".
func (v Volt) String() string { return fmt.Sprintf("%.3fV", float64(v)) }

// String formats a duration using the largest natural unit:
// "36.0s", "30.0min", "6.0h" or "2.00d".
func (s Seconds) String() string {
	abs := math.Abs(float64(s))
	switch {
	case abs >= float64(Day):
		return fmt.Sprintf("%.2fd", float64(s)/float64(Day))
	case abs >= float64(Hour):
		return fmt.Sprintf("%.1fh", float64(s)/float64(Hour))
	case abs >= float64(Minute):
		return fmt.Sprintf("%.1fmin", float64(s)/float64(Minute))
	default:
		return fmt.Sprintf("%.1fs", float64(s))
	}
}

// String formats a frequency with an SI prefix: "5.000MHz", "500.0Hz".
func (f Hertz) String() string {
	abs := math.Abs(float64(f))
	switch {
	case abs >= 1e9:
		return fmt.Sprintf("%.3fGHz", float64(f)/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.3fMHz", float64(f)/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.3fkHz", float64(f)/1e3)
	default:
		return fmt.Sprintf("%.1fHz", float64(f))
	}
}

// Hours returns the duration expressed in hours.
func (s Seconds) Hours() float64 { return float64(s) / float64(Hour) }

// Days returns the duration expressed in days.
func (s Seconds) Days() float64 { return float64(s) / float64(Day) }

// HoursToSeconds converts a duration in hours to Seconds.
func HoursToSeconds(h float64) Seconds { return Seconds(h * float64(Hour)) }

// KT returns the thermal energy k·T in eV for an absolute temperature.
// It panics on non-positive absolute temperatures, which can only arise
// from a programming error upstream (e.g. passing Celsius where Kelvin
// was meant).
func KT(t Kelvin) float64 {
	if t <= 0 {
		panic(fmt.Sprintf("units: non-positive absolute temperature %v", t))
	}
	return BoltzmannEV * float64(t)
}

// Clamp returns x limited to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
