// Package stats implements the small statistical toolkit the experiment
// harness needs: summary statistics, simple linear regression and
// goodness-of-fit measures for comparing model curves against simulated
// measurements. Everything is written against plain []float64 to stay
// composable with the series package.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty input")

// ErrMismatched is returned when paired inputs differ in length.
var ErrMismatched = errors.New("stats: mismatched input lengths")

// Mean returns the arithmetic mean. It returns ErrEmpty for no samples.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the unbiased sample variance (n−1 denominator).
// A single sample has zero variance by convention.
func Variance(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) == 1 {
		return 0, nil
	}
	m, _ := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// MinMax returns the smallest and largest sample.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// LinearFit holds the result of a simple least-squares line fit
// y = Slope·x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination
}

// LinearRegression fits a straight line to (x, y) pairs by ordinary
// least squares. It requires at least two points and non-degenerate x.
func LinearRegression(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, ErrMismatched
	}
	if len(x) < 2 {
		return LinearFit{}, errors.New("stats: need at least 2 points")
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}, errors.New("stats: degenerate x values")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n

	// R² = 1 − SS_res/SS_tot; define R² = 1 for constant y (perfect fit
	// by the horizontal line).
	ssTot := syy - sy*sy/n
	r2 := 1.0
	if ssTot > 0 {
		ssRes := 0.0
		for i := range x {
			d := y[i] - (slope*x[i] + intercept)
			ssRes += d * d
		}
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// RMSE returns the root-mean-square error between paired samples.
func RMSE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrMismatched
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	ss := 0.0
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(a))), nil
}

// MAPE returns the mean absolute percentage error of b relative to a,
// skipping points where the reference a is zero. If every reference is
// zero it returns ErrEmpty.
func MAPE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrMismatched
	}
	sum, n := 0.0, 0
	for i := range a {
		if a[i] == 0 {
			continue
		}
		sum += math.Abs((b[i] - a[i]) / a[i])
		n++
	}
	if n == 0 {
		return 0, ErrEmpty
	}
	return sum / float64(n) * 100, nil
}

// Correlation returns the Pearson correlation coefficient of the pairs.
// Zero-variance inputs yield an error since r is undefined.
func Correlation(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrMismatched
	}
	if len(x) < 2 {
		return 0, errors.New("stats: need at least 2 points")
	}
	mx, _ := Mean(x)
	my, _ := Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance input")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
