package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Errorf("Mean = %v, %v", m, err)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	v, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	// Sample variance with n-1: 32/7.
	if !almostEq(v, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7)
	}
	sd, _ := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(sd, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", sd)
	}
	if v, _ := Variance([]float64{42}); v != 0 {
		t.Errorf("Variance of single sample = %v", v)
	}
	if _, err := Variance(nil); err != ErrEmpty {
		t.Error("Variance(nil) should fail")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v %v %v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Error("MinMax(nil) should fail")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {90, 4.6},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil || !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, %v, want %v", c.p, got, err, c.want)
		}
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("Percentile(-1) should fail")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) should fail")
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Error("Percentile(nil) should fail")
	}
	if got, _ := Percentile([]float64{9}, 75); got != 9 {
		t.Errorf("single-sample percentile = %v", got)
	}
	// Input must not be modified.
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 || unsorted[1] != 1 || unsorted[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestMedian(t *testing.T) {
	m, err := Median([]float64{5, 1, 3})
	if err != nil || m != 3 {
		t.Errorf("Median = %v, %v", m, err)
	}
}

func TestLinearRegressionExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	fit, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 2, 1e-12) || !almostEq(fit.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if !almostEq(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestLinearRegressionNoisy(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5}
	y := []float64{0.1, 0.9, 2.1, 2.9, 4.1, 4.9} // ~y = x
	fit, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 1, 0.05) {
		t.Errorf("slope = %v", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should fail")
	}
	if _, err := LinearRegression([]float64{1, 2}, []float64{1}); err != ErrMismatched {
		t.Error("mismatched lengths should fail")
	}
	if _, err := LinearRegression([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x should fail")
	}
}

func TestLinearRegressionConstantY(t *testing.T) {
	fit, err := LinearRegression([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 0, 1e-12) || !almostEq(fit.R2, 1, 1e-12) {
		t.Errorf("constant-y fit = %+v", fit)
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || got != 0 {
		t.Errorf("RMSE identical = %v, %v", got, err)
	}
	got, _ = RMSE([]float64{0, 0}, []float64{3, 4})
	if !almostEq(got, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMSE = %v", got)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err != ErrMismatched {
		t.Error("mismatched RMSE should fail")
	}
	if _, err := RMSE(nil, nil); err != ErrEmpty {
		t.Error("empty RMSE should fail")
	}
}

func TestMAPE(t *testing.T) {
	got, err := MAPE([]float64{100, 200}, []float64{110, 180})
	if err != nil || !almostEq(got, 10, 1e-9) {
		t.Errorf("MAPE = %v, %v", got, err)
	}
	// Zero references skipped.
	got, err = MAPE([]float64{0, 100}, []float64{5, 110})
	if err != nil || !almostEq(got, 10, 1e-9) {
		t.Errorf("MAPE with zero ref = %v, %v", got, err)
	}
	if _, err := MAPE([]float64{0}, []float64{1}); err != ErrEmpty {
		t.Error("all-zero reference should fail")
	}
	if _, err := MAPE([]float64{1}, []float64{1, 2}); err != ErrMismatched {
		t.Error("mismatched MAPE should fail")
	}
}

func TestCorrelation(t *testing.T) {
	r, err := Correlation([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil || !almostEq(r, 1, 1e-12) {
		t.Errorf("perfect corr = %v, %v", r, err)
	}
	r, _ = Correlation([]float64{1, 2, 3}, []float64{6, 4, 2})
	if !almostEq(r, -1, 1e-12) {
		t.Errorf("perfect anti-corr = %v", r)
	}
	if _, err := Correlation([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero-variance should fail")
	}
	if _, err := Correlation([]float64{1}, []float64{2}); err == nil {
		t.Error("single point should fail")
	}
	if _, err := Correlation([]float64{1, 2}, []float64{2}); err != ErrMismatched {
		t.Error("mismatched should fail")
	}
}

func TestPercentileWithinBoundsProperty(t *testing.T) {
	f := func(raw []float64, p uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pct := float64(p % 101)
		v, err := Percentile(xs, pct)
		if err != nil {
			return false
		}
		lo, hi, _ := MinMax(xs)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRMSETriangleProperty(t *testing.T) {
	// RMSE is a metric: symmetric and non-negative.
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				return true
			}
			// Keep magnitudes sane to avoid float overflow in squares.
			if math.Abs(a[i]) > 1e100 || math.Abs(b[i]) > 1e100 {
				return true
			}
		}
		if n == 0 {
			return true
		}
		ab, err1 := RMSE(a, b)
		ba, err2 := RMSE(b, a)
		return err1 == nil && err2 == nil && ab >= 0 && ab == ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
