package lut

import (
	"math"
	"testing"
	"testing/quick"

	"selfheal/internal/device"
	"selfheal/internal/td"
	"selfheal/internal/units"
)

func newLUT(t *testing.T) *LUT2 {
	t.Helper()
	return New("L0", device.DefaultParams())
}

// TestEvalExhaustive checks Eval against the truth table for all 16
// configurations and all 4 input patterns.
func TestEvalExhaustive(t *testing.T) {
	l := newLUT(t)
	for c := 0; c < 16; c++ {
		var cfg [4]bool
		for b := 0; b < 4; b++ {
			cfg[b] = c>>b&1 == 1
		}
		l.Configure(cfg)
		for i := 0; i < 4; i++ {
			in0, in1 := i>>1 == 1, i&1 == 1
			want := cfg[i]
			if got := l.Eval(in0, in1); got != want {
				t.Errorf("cfg %04b Eval(%v,%v) = %v, want %v", c, in0, in1, got, want)
			}
		}
	}
}

func TestConfigureFunc(t *testing.T) {
	l := newLUT(t)
	l.ConfigureFunc(func(in0, in1 bool) bool { return in0 != in1 }) // XOR
	for i := 0; i < 4; i++ {
		in0, in1 := i>>1 == 1, i&1 == 1
		if got := l.Eval(in0, in1); got != (in0 != in1) {
			t.Errorf("XOR Eval(%v,%v) = %v", in0, in1, got)
		}
	}
}

func TestConfigureInverter(t *testing.T) {
	l := newLUT(t)
	l.ConfigureInverter()
	if l.Eval(false, true) != true || l.Eval(true, true) != false {
		t.Error("inverter truth table wrong with in1 high")
	}
	// Robust to in1 low as well.
	if l.Eval(false, false) != true || l.Eval(true, false) != false {
		t.Error("inverter truth table wrong with in1 low")
	}
}

// TestInverterStressSets pins down the paper's Section 3.2 example: the
// DC stress sets for the LUT inverter are distinct for the two input
// values, have constant size (Hypothesis 1), and always include the
// statically stressed level-1 device.
func TestInverterStressSets(t *testing.T) {
	l := newLUT(t)
	l.ConfigureInverter()

	high := l.StressedMask(true, true)
	wantHigh := [NumTransistors]bool{M1: true, BufN: true, Route: true}
	if high != wantHigh {
		t.Errorf("stress mask in0=1: %v, want %v", high, wantHigh)
	}
	low := l.StressedMask(false, true)
	wantLow := [NumTransistors]bool{M1: true, M6: true, BufP: true}
	if low != wantLow {
		t.Errorf("stress mask in0=0: %v, want %v", low, wantLow)
	}

	// Hypothesis 1: constant stressed count once inputs are fixed.
	if len(l.StressSet(true, true)) != 3 || len(l.StressSet(false, true)) != 3 {
		t.Error("stress set size not constant")
	}
}

// TestStressSetDeterministic is Hypothesis 1 as a property: for any
// configuration and static inputs the stressed subset is a fixed
// function of (cfg, inputs).
func TestStressSetDeterministic(t *testing.T) {
	f := func(c uint8, i uint8) bool {
		l := New("p", device.DefaultParams())
		var cfg [4]bool
		for b := 0; b < 4; b++ {
			cfg[b] = c>>b&1 == 1
		}
		l.Configure(cfg)
		in0, in1 := i&1 == 1, i&2 == 2
		return l.StressedMask(in0, in1) == l.StressedMask(in0, in1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStressMaskBufferComplement checks exactly one buffer device is
// stressed for any static pattern (its input is always driven).
func TestStressMaskBufferComplement(t *testing.T) {
	f := func(c uint8, i uint8) bool {
		l := New("p", device.DefaultParams())
		var cfg [4]bool
		for b := 0; b < 4; b++ {
			cfg[b] = c>>b&1 == 1
		}
		l.Configure(cfg)
		m := l.StressedMask(i&1 == 1, i&2 == 2)
		return m[BufP] != m[BufN]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConductingPathDepth4(t *testing.T) {
	l := newLUT(t)
	l.ConfigureInverter()
	for i := 0; i < 4; i++ {
		in0, in1 := i>>1 == 1, i&1 == 1
		path := l.ConductingPath(in0, in1)
		if len(path) != 4 {
			t.Fatalf("POI depth = %d, want 4 (LD in the paper's Eq. 7)", len(path))
		}
		// Route is always the last element.
		if path[3] != l.Transistors()[Route] {
			t.Error("routing switch not on POI")
		}
	}
	// Different input selects a different level-1 device.
	p1 := l.ConductingPath(true, true)
	p0 := l.ConductingPath(false, true)
	if p1[0] == p0[0] {
		t.Error("level-1 selection insensitive to inputs")
	}
}

func TestFreshPathDelayCalibration(t *testing.T) {
	l := newLUT(t)
	l.ConfigureInverter()
	d, err := l.PathDelay(1.2, true, true)
	if err != nil {
		t.Fatal(err)
	}
	// 4 transistors × Td0 = stage delay ≈ 1.3333 ns → 75-stage RO at
	// 5 MHz.
	if math.Abs(d-1.3333) > 1e-3 {
		t.Errorf("fresh stage delay = %v ns, want ≈1.3333", d)
	}
}

func TestPathDelayErrorPropagates(t *testing.T) {
	l := newLUT(t)
	l.ConfigureInverter()
	if _, err := l.PathDelay(0.1, true, true); err == nil {
		t.Error("sub-threshold supply accepted")
	}
}

func TestStressDutiesDC(t *testing.T) {
	l := newLUT(t)
	l.ConfigureInverter()
	duties, err := l.StressDuties(DCPhase(true, true))
	if err != nil {
		t.Fatal(err)
	}
	want := [NumTransistors]float64{M1: 1, BufN: 1, Route: 1}
	if duties != want {
		t.Errorf("DC duties = %v, want %v", duties, want)
	}
}

// TestStressDutiesAC pins the structural insight: under AC stress the
// level-1 mux transistor M1 stays at duty 1 (its config cell never
// toggles) while the downstream devices toggle at duty 0.5.
func TestStressDutiesAC(t *testing.T) {
	l := newLUT(t)
	l.ConfigureInverter()
	duties, err := l.StressDuties(ACPhase())
	if err != nil {
		t.Fatal(err)
	}
	want := [NumTransistors]float64{M1: 1, M6: 0.5, BufP: 0.5, BufN: 0.5, Route: 0.5}
	if duties != want {
		t.Errorf("AC duties = %v, want %v", duties, want)
	}
}

func TestStressDutiesBadPhases(t *testing.T) {
	l := newLUT(t)
	cases := [][]Phase{
		nil,
		{{Weight: 0.4}},
		{{Weight: -0.5}, {Weight: 1.5}},
		{{Weight: 0.7}, {Weight: 0.7}},
	}
	for i, phases := range cases {
		if _, err := l.StressDuties(phases); err == nil {
			t.Errorf("case %d: bad phases accepted", i)
		}
		if _, err := l.MeasuredDelay(1.2, phases); err == nil {
			t.Errorf("case %d: MeasuredDelay accepted bad phases", i)
		}
	}
}

// TestHypothesis2RecoveryOnlyAffectsStressed: healing a LUT whose
// stress touched only some devices leaves the fresh devices exactly
// fresh.
func TestHypothesis2RecoveryOnlyAffectsStressed(t *testing.T) {
	l := newLUT(t)
	l.ConfigureInverter()
	tp := td.DefaultParams()
	hot := units.Celsius(110).Kelvin()

	duties, err := l.StressDuties(DCPhase(true, true))
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range l.Transistors() {
		if duties[i] > 0 {
			tr.Stress(tp, 1.2, hot, duties[i], 24*units.Hour)
		}
	}
	// All devices "recover" (the whole chip sleeps).
	for _, tr := range l.Transistors() {
		tr.Recover(tp, 0.3, hot, 6*units.Hour)
	}
	for i, tr := range l.Transistors() {
		if duties[i] == 0 && tr.VthShift() != 0 {
			t.Errorf("fresh transistor %s acquired shift %v during recovery",
				tr.Name, tr.VthShift())
		}
		if duties[i] > 0 && tr.VthShift() <= 0 {
			t.Errorf("stressed transistor %s lost its entire shift", tr.Name)
		}
	}
}

// TestMeasuredDelayAveragesPhases: the RO-visible delay is the
// phase-weighted average, so a stress pattern that only slows one phase
// shows up at half weight.
func TestMeasuredDelayAveragesPhases(t *testing.T) {
	l := newLUT(t)
	l.ConfigureInverter()
	fresh, err := l.MeasuredDelay(1.2, ACPhase())
	if err != nil {
		t.Fatal(err)
	}
	tp := td.DefaultParams()
	hot := units.Celsius(110).Kelvin()
	// Stress only BufN (on the in0=1 phase path).
	l.Transistors()[BufN].Stress(tp, 1.2, hot, 1, 24*units.Hour)
	aged, err := l.MeasuredDelay(1.2, ACPhase())
	if err != nil {
		t.Fatal(err)
	}
	full, err := l.PathDelay(1.2, true, true)
	if err != nil {
		t.Fatal(err)
	}
	freshPhase, err := l.PathDelay(1.2, false, true)
	if err != nil {
		t.Fatal(err)
	}
	wantAvg := (full + freshPhase) / 2
	if math.Abs(aged-wantAvg) > 1e-12 {
		t.Errorf("measured delay %v, want %v", aged, wantAvg)
	}
	if aged <= fresh {
		t.Error("aging invisible in measured delay")
	}
}

func TestLeakageAndReset(t *testing.T) {
	l := newLUT(t)
	l.ConfigureInverter()
	fresh := l.Leakage()
	if fresh <= 0 {
		t.Fatal("no fresh leakage")
	}
	tp := td.DefaultParams()
	hot := units.Celsius(110).Kelvin()
	l.Transistors()[M1].Stress(tp, 1.2, hot, 1, 24*units.Hour)
	if aged := l.Leakage(); aged >= fresh {
		t.Errorf("leakage did not drop: %v -> %v", fresh, aged)
	}
	l.Reset()
	if got := l.Leakage(); got != fresh {
		t.Errorf("reset leakage = %v, want %v", got, fresh)
	}
	for _, tr := range l.Transistors() {
		if tr.VthShift() != 0 {
			t.Errorf("%s not reset", tr.Name)
		}
	}
}

// TestXorStressSets pins the stress analysis for a second realistic
// configuration: a XOR gate's stressed subset depends on both inputs,
// and every static pattern stresses exactly one level-1, one level-2
// and one buffer device plus possibly the routing switch.
func TestXorStressSets(t *testing.T) {
	l := newLUT(t)
	l.ConfigureFunc(func(a, b bool) bool { return a != b })
	for i := 0; i < 4; i++ {
		in0, in1 := i>>1 == 1, i&1 == 1
		mask := l.StressedMask(in0, in1)
		level1 := btoi(mask[M1]) + btoi(mask[M2]) + btoi(mask[M3]) + btoi(mask[M4])
		level2 := btoi(mask[M5]) + btoi(mask[M6])
		bufs := btoi(mask[BufP]) + btoi(mask[BufN])
		// XOR's complemented cells alternate, so for any static input
		// exactly one of the two conducting level-1 devices passes a
		// low, the conducting level-2 device may or may not, and
		// exactly one buffer device is biased.
		if level1 != 1 {
			t.Errorf("in=(%v,%v): %d level-1 devices stressed, want 1", in0, in1, level1)
		}
		if level2 > 1 {
			t.Errorf("in=(%v,%v): %d level-2 devices stressed", in0, in1, level2)
		}
		if bufs != 1 {
			t.Errorf("in=(%v,%v): %d buffer devices stressed, want 1", in0, in1, bufs)
		}
		// Route is stressed exactly when the XOR output is low.
		if mask[Route] != !l.Eval(in0, in1) {
			t.Errorf("in=(%v,%v): route stress %v, output %v", in0, in1, mask[Route], l.Eval(in0, in1))
		}
	}
}

// TestConstantConfigStressSets: a constant-false LUT never stresses its
// routing switch's high path and always stresses the same buffer device
// regardless of inputs — frozen logic has frozen wear.
func TestConstantConfigStressSets(t *testing.T) {
	l := newLUT(t)
	l.ConfigureFunc(func(a, b bool) bool { return false })
	first := l.StressedMask(false, false)
	for i := 1; i < 4; i++ {
		in0, in1 := i>>1 == 1, i&1 == 1
		mask := l.StressedMask(in0, in1)
		if mask[BufP] != first[BufP] || mask[BufN] != first[BufN] || mask[Route] != first[Route] {
			t.Errorf("in=(%v,%v): output-side stress changed for constant logic", in0, in1)
		}
	}
	// Constant-false output: route carries a low → stressed; buffer
	// input high (complemented store) → BufN stressed.
	if !first[Route] || !first[BufN] || first[BufP] {
		t.Errorf("constant-false stress pattern wrong: %v", first)
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestTransistorNaming(t *testing.T) {
	l := New("X3Y7", device.DefaultParams())
	if got := l.Transistors()[Route].Name; got != "X3Y7.Route" {
		t.Errorf("Route name = %q", got)
	}
	if l.Name() != "X3Y7" {
		t.Errorf("Name = %q", l.Name())
	}
}

func BenchmarkStressDuties(b *testing.B) {
	l := New("b", device.DefaultParams())
	l.ConfigureInverter()
	phases := ACPhase()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.StressDuties(phases); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeasuredDelay(b *testing.B) {
	l := New("b", device.DefaultParams())
	l.ConfigureInverter()
	phases := ACPhase()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.MeasuredDelay(1.2, phases); err != nil {
			b.Fatal(err)
		}
	}
}
