// Package lut models the pass-transistor 2-input look-up table of the
// paper's Fig. 2 — the unit cell of the 40 nm FPGA fabric — at the level
// the paper's cross-layer model needs: which transistors a given input
// pattern places under BTI stress, which transistors form the conducting
// path of interest (POI), and the resulting path delay.
//
// # Netlist
//
// The exact gate-level netlist of the commercial FPGA is proprietary
// (the paper says as much); like the paper, we use a generic
// pass-transistor mux tree that any 2-input LUT reduces to:
//
//	         in1      !in1         in0    !in0
//	!C1 ──[M1]──┐  ┌──[M2]── !C0
//	            n0 ┘              └n0──[M6]──┐
//	         in1      !in1                    m ──▷buf▷── q ──[Route]── out
//	!C3 ──[M3]──┐  ┌──[M4]── !C2  ┌n1──[M5]──┘
//	            n1 ┘
//
// Four configuration cells hold the truth table complemented (the level
// restorer is an inverter), level 1 of the tree is selected by in1,
// level 2 by in0, the CMOS buffer (BufP/BufN) restores the degraded
// pass-transistor level, and an always-on NMOS routing switch carries
// the output into the routing fabric. Evaluating inputs (in0, in1)
// yields truth-table entry C[2·in0+in1].
//
// # Stress rules (Hypotheses 1 & 2 of the paper)
//
// An NMOS pass transistor is under PBTI stress exactly when its gate is
// high and it is passing a logic low (Vgs ≈ Vdd); passing a weak high
// leaves Vgs ≈ Vth, which is negligible. The buffer PMOS is under NBTI
// stress when the buffer input is low, the buffer NMOS under PBTI
// stress when it is high. Consequently — Hypothesis 1 — once the inputs
// are static (DC stress), the stressed subset is fixed and its size is
// constant; and — Hypothesis 2 — recovery acts only on transistors that
// have accumulated stress, never on fresh ones.
//
// A structural consequence the tests pin down: the level-1 transistor
// selected by a static in1 passes a constant configuration-cell value,
// so it stays under DC stress even when in0 toggles ("AC stress") —
// LUT configuration cells never switch in normal operation.
package lut

import (
	"errors"
	"fmt"

	"selfheal/internal/device"
	"selfheal/internal/units"
)

// Transistor indices into LUT2.Transistors(), in netlist order.
const (
	M1    = iota // level 1, gate in1, passes !C1
	M2           // level 1, gate !in1, passes !C0
	M3           // level 1, gate in1, passes !C3
	M4           // level 1, gate !in1, passes !C2
	M5           // level 2, gate in0, passes n1
	M6           // level 2, gate !in0, passes n0
	BufP         // output buffer PMOS (NBTI)
	BufN         // output buffer NMOS (PBTI)
	Route        // routing switch, gate tied high
	NumTransistors
)

// LUT2 is one 2-input pass-transistor look-up table plus its slice of
// the routing fabric. Create with New and program with Configure.
type LUT2 struct {
	name string
	cfg  [4]bool // truth table: cfg[2·in0+in1]
	trs  [NumTransistors]*device.Transistor
}

// New returns a LUT with all configuration cells zero (constant-false).
func New(name string, dp device.Params) *LUT2 {
	l := &LUT2{name: name}
	kinds := [NumTransistors]device.Kind{
		M1: device.NMOS, M2: device.NMOS, M3: device.NMOS, M4: device.NMOS,
		M5: device.NMOS, M6: device.NMOS,
		BufP: device.PMOS, BufN: device.NMOS,
		Route: device.NMOS,
	}
	labels := [NumTransistors]string{"M1", "M2", "M3", "M4", "M5", "M6", "BufP", "BufN", "Route"}
	for i := range l.trs {
		l.trs[i] = device.New(fmt.Sprintf("%s.%s", name, labels[i]), kinds[i], dp)
	}
	return l
}

// Name returns the instance name given at construction.
func (l *LUT2) Name() string { return l.name }

// Configure programs the truth table; cfg[2·in0+in1] is the output for
// inputs (in0, in1).
func (l *LUT2) Configure(cfg [4]bool) { l.cfg = cfg }

// ConfigureFunc programs the truth table from a boolean function.
func (l *LUT2) ConfigureFunc(f func(in0, in1 bool) bool) {
	for i := 0; i < 4; i++ {
		l.cfg[i] = f(i>>1 == 1, i&1 == 1)
	}
}

// ConfigureInverter programs out = !in0 (in1 must be driven high), the
// paper's running example. The in1=0 entries are programmed to the same
// values so a floating in1 cannot glitch the output.
func (l *LUT2) ConfigureInverter() {
	// idx = 2·in0+in1: out must be 1 for in0=0, 0 for in0=1.
	l.cfg = [4]bool{true, true, false, false}
}

// Config returns the current truth table.
func (l *LUT2) Config() [4]bool { return l.cfg }

// Eval returns the LUT output for the given inputs.
func (l *LUT2) Eval(in0, in1 bool) bool { return l.cfg[idx(in0, in1)] }

func idx(in0, in1 bool) int {
	i := 0
	if in0 {
		i += 2
	}
	if in1 {
		i++
	}
	return i
}

// Transistors returns all nine devices in netlist order (index with the
// M1…Route constants). The returned slice aliases the LUT's devices.
func (l *LUT2) Transistors() []*device.Transistor { return l.trs[:] }

// muxOut returns the internal (complemented) mux output for the inputs.
func (l *LUT2) muxOut(in0, in1 bool) bool { return !l.cfg[idx(in0, in1)] }

// StressedMask reports, per transistor, whether the given static input
// pattern places it under BTI stress (the paper's DC-stress analysis).
func (l *LUT2) StressedMask(in0, in1 bool) [NumTransistors]bool {
	var m [NumTransistors]bool
	// Level 1: gate high ⇒ conducting; stressed iff passing a low.
	// Mi passes the complemented cell !Cj, so it passes a low iff the
	// truth-table entry Cj is true.
	if in1 {
		m[M1] = l.cfg[idx(false, true)]
		m[M3] = l.cfg[idx(true, true)]
	} else {
		m[M2] = l.cfg[idx(false, false)]
		m[M4] = l.cfg[idx(true, false)]
	}
	// Level 2: the conducting one passes the selected internal node.
	mo := l.muxOut(in0, in1)
	if in0 {
		m[M5] = !mo
	} else {
		m[M6] = !mo
	}
	// Buffer: input low stresses the PMOS (NBTI), high the NMOS (PBTI).
	m[BufP] = !mo
	m[BufN] = mo
	// Routing switch: always on, stressed when carrying a low.
	q := !mo
	m[Route] = !q
	return m
}

// StressSet returns the transistors under stress for a static input
// pattern, in netlist order.
func (l *LUT2) StressSet(in0, in1 bool) []*device.Transistor {
	mask := l.StressedMask(in0, in1)
	var out []*device.Transistor
	for i, stressed := range mask {
		if stressed {
			out = append(out, l.trs[i])
		}
	}
	return out
}

// ConductingPath returns the path of interest for the given inputs: the
// transistors a transition propagates through, from the selected level-1
// pass transistor to the routing switch (logic depth 4).
func (l *LUT2) ConductingPath(in0, in1 bool) []*device.Transistor {
	var level1, level2 *device.Transistor
	switch {
	case in0 && in1:
		level1, level2 = l.trs[M3], l.trs[M5]
	case in0 && !in1:
		level1, level2 = l.trs[M4], l.trs[M5]
	case !in0 && in1:
		level1, level2 = l.trs[M1], l.trs[M6]
	default:
		level1, level2 = l.trs[M2], l.trs[M6]
	}
	// The buffer device that drives the output edge: mux output low
	// drives through the PMOS (pull-up of the inverted signal), high
	// through the NMOS.
	buf := l.trs[BufN]
	if l.muxOut(in0, in1) == false {
		buf = l.trs[BufP]
	}
	return []*device.Transistor{level1, level2, buf, l.trs[Route]}
}

// PathDelay returns the POI propagation delay in nanoseconds for the
// given inputs at supply vdd.
func (l *LUT2) PathDelay(vdd units.Volt, in0, in1 bool) (float64, error) {
	return device.PathDelay(vdd, l.ConductingPath(in0, in1))
}

// Phase is an input pattern held for a fraction of the operating time,
// used to describe switching activity (the paper's AC stress) and to
// average the measured delay over an oscillation period.
type Phase struct {
	In0, In1 bool
	Weight   float64
}

// ValidatePhases checks that weights are non-negative and sum to ≈1.
func ValidatePhases(phases []Phase) error {
	if len(phases) == 0 {
		return errors.New("lut: no phases")
	}
	sum := 0.0
	for _, ph := range phases {
		if ph.Weight < 0 {
			return fmt.Errorf("lut: negative phase weight %v", ph.Weight)
		}
		sum += ph.Weight
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("lut: phase weights sum to %v, want 1", sum)
	}
	return nil
}

// DCPhase describes a static input pattern (weight 1).
func DCPhase(in0, in1 bool) []Phase { return []Phase{{In0: in0, In1: in1, Weight: 1}} }

// ACPhase describes in0 toggling symmetrically with in1 held high — the
// paper's AC-stress pattern for the LUT inverter.
func ACPhase() []Phase {
	return []Phase{
		{In0: false, In1: true, Weight: 0.5},
		{In0: true, In1: true, Weight: 0.5},
	}
}

// StressDuties returns, per transistor (netlist order), the fraction of
// time the given activity pattern keeps it under stress. A DC pattern
// yields duties of exactly 0 or 1; the AC pattern yields 0.5 for the
// toggling devices and 1 for the statically stressed level-1 device.
func (l *LUT2) StressDuties(phases []Phase) ([NumTransistors]float64, error) {
	var duties [NumTransistors]float64
	if err := ValidatePhases(phases); err != nil {
		return duties, err
	}
	for _, ph := range phases {
		mask := l.StressedMask(ph.In0, ph.In1)
		for i, stressed := range mask {
			if stressed {
				duties[i] += ph.Weight
			}
		}
	}
	for i := range duties {
		duties[i] = units.Clamp(duties[i], 0, 1)
	}
	return duties, nil
}

// MeasuredDelay returns the phase-weighted average POI delay in
// nanoseconds — what a ring oscillator built from this LUT actually
// exhibits, since an oscillation period exercises every phase.
func (l *LUT2) MeasuredDelay(vdd units.Volt, phases []Phase) (float64, error) {
	if err := ValidatePhases(phases); err != nil {
		return 0, err
	}
	total := 0.0
	for _, ph := range phases {
		d, err := l.PathDelay(vdd, ph.In0, ph.In1)
		if err != nil {
			return 0, err
		}
		total += ph.Weight * d
	}
	return total, nil
}

// Leakage returns the summed subthreshold leakage of all nine devices
// in nanoamps.
func (l *LUT2) Leakage() float64 {
	sum := 0.0
	for _, tr := range l.trs {
		sum += tr.Leakage()
	}
	return sum
}

// Reset restores every device to the fresh state.
func (l *LUT2) Reset() {
	for _, tr := range l.trs {
		tr.Reset()
	}
}
